// Run all three tracing algorithms on the same topology and compare what
// they discover and what they spend — the Sec. 2.4 story in one program.
// Choose a topology with --topology {simplest,fig1,fig1-meshed,wide,
// symmetric,asymmetric,meshed}.
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "core/validation.h"
#include "topology/reference.h"

using namespace mmlpt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    const auto name = flags.get("topology", "fig1");
    topo::MultipathGraph graph;
    if (name == "simplest") {
      graph = topo::simplest_diamond();
    } else if (name == "fig1") {
      graph = topo::fig1_unmeshed();
    } else if (name == "fig1-meshed") {
      graph = topo::fig1_meshed();
    } else if (name == "wide") {
      graph = topo::max_length_2_diamond();
    } else if (name == "symmetric") {
      graph = topo::symmetric_diamond();
    } else if (name == "asymmetric") {
      graph = topo::asymmetric_diamond();
    } else if (name == "meshed") {
      graph = topo::meshed_diamond();
    } else {
      std::fprintf(stderr, "unknown topology '%s'\n", name.c_str());
      return 1;
    }
    const auto truth = core::plain_ground_truth(topo::prepend_source(
        graph, net::Ipv4Address(192, 168, 0, 1)));
    const auto seed = flags.get_uint("seed", 1);

    std::printf("topology '%s': %zu vertices, %zu edges\n\n", name.c_str(),
                truth.graph.vertex_count(), truth.graph.edge_count());

    AsciiTable table({"algorithm", "vertices", "edges", "packets",
                      "full discovery", "switched"});
    table.set_title("One run of each algorithm (same simulated network)");
    const struct {
      const char* label;
      core::Algorithm algorithm;
    } rows[] = {{"MDA", core::Algorithm::kMda},
                {"MDA-Lite", core::Algorithm::kMdaLite},
                {"Single flow", core::Algorithm::kSingleFlow}};
    for (const auto& [label, algorithm] : rows) {
      const auto result = core::run_trace(truth, algorithm, {}, {}, seed);
      table.add_row(
          {label, std::to_string(result.graph.vertex_count()),
           std::to_string(result.graph.edge_count()),
           std::to_string(result.packets),
           topo::same_topology(result.graph, truth.graph) ? "yes" : "no",
           result.switched_to_mda ? "yes" : "-"});
    }
    std::fputs(table.render().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
