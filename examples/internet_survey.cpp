// A miniature Sec. 5.1 survey: generate a synthetic Internet, trace many
// routes with the MDA, and print the diamond statistics the paper
// reports (length, width, asymmetry, meshing).
#include <cstdio>

#include "common/flags.h"
#include "common/table.h"
#include "survey/ip_survey.h"

using namespace mmlpt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    survey::IpSurveyConfig config;
    config.routes = flags.get_uint("routes", 300);
    config.distinct_diamonds = flags.get_uint("distinct", 120);
    config.seed = flags.get_uint("seed", 1);
    config.algorithm = flags.get("algorithm", "mda") == "lite"
                           ? core::Algorithm::kMdaLite
                           : core::Algorithm::kMda;

    std::printf("surveying %zu routes over %zu distinct diamonds...\n\n",
                config.routes, config.distinct_diamonds);
    const auto result = survey::run_ip_survey(config);
    const auto& m = result.accounting.measured();
    const auto& d = result.accounting.distinct();

    std::printf("routes traced:            %llu\n",
                static_cast<unsigned long long>(result.routes_traced));
    std::printf("routes with diamonds:     %llu\n",
                static_cast<unsigned long long>(result.routes_with_diamonds));
    std::printf("measured diamonds:        %llu\n",
                static_cast<unsigned long long>(m.total));
    std::printf("distinct diamonds:        %llu\n",
                static_cast<unsigned long long>(d.total));
    std::printf("total probe packets:      %llu\n\n",
                static_cast<unsigned long long>(result.total_packets));

    AsciiTable table({"statistic", "measured", "distinct"});
    table.set_title("Diamond population");
    table.add_row({"max length 2 portion", fmt_percent(m.max_length.portion(2)),
                   fmt_percent(d.max_length.portion(2))});
    table.add_row({"zero-asymmetry portion",
                   fmt_percent(m.width_asymmetry.portion(0)),
                   fmt_percent(d.width_asymmetry.portion(0))});
    table.add_row(
        {"meshed portion",
         fmt_percent(static_cast<double>(m.meshed) /
                     static_cast<double>(m.total ? m.total : 1)),
         fmt_percent(static_cast<double>(d.meshed) /
                     static_cast<double>(d.total ? d.total : 1))});
    table.add_row({"simplest 2x2 portion",
                   fmt_percent(m.joint_length_width.portion(2, 2)),
                   fmt_percent(d.joint_length_width.portion(2, 2))});
    std::fputs(table.render().c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
