// Validate a multipath tracer against a Fakeroute topology, the Sec. 3
// way: compute the exact theoretical MDA failure probability, run the
// tool repeatedly, and compare with a confidence interval.
//
// Pass a topology file (the text format of topology/serialize.h) as the
// first argument, or run without arguments for the paper's simplest
// diamond.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/flags.h"
#include "core/validation.h"
#include "topology/reference.h"
#include "topology/serialize.h"

using namespace mmlpt;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    topo::MultipathGraph graph;
    if (!flags.positional().empty()) {
      std::ifstream in(flags.positional().front());
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n",
                     flags.positional().front().c_str());
        return 1;
      }
      std::ostringstream text;
      text << in.rdbuf();
      graph = topo::deserialize(text.str());
      std::printf("topology: %s\n", flags.positional().front().c_str());
    } else {
      graph = topo::simplest_diamond();
      std::printf("topology: built-in simplest diamond\n");
    }

    core::ValidationConfig config;
    config.samples = static_cast<int>(flags.get_int("samples", 10));
    config.runs_per_sample = static_cast<int>(flags.get_int("runs", 300));
    config.trace.alpha = flags.get_double("alpha", 0.05);
    config.trace.max_branching =
        static_cast<int>(flags.get_int("branching", 1));
    config.algorithm = flags.get("algorithm", "mda") == "lite"
                           ? core::Algorithm::kMdaLite
                           : core::Algorithm::kMda;
    config.seed = flags.get_uint("seed", 42);

    const auto truth = core::plain_ground_truth(std::move(graph));
    const auto report = core::validate(truth, config);

    std::printf("algorithm:        %s\n",
                config.algorithm == core::Algorithm::kMda ? "MDA"
                                                          : "MDA-Lite");
    std::printf("theoretical fail: %.5f\n", report.theoretical_failure);
    std::printf("measured fail:    %.5f +/- %.5f (95%% CI, %d x %d runs)\n",
                report.mean_failure, report.ci95_half_width, report.samples,
                report.runs_per_sample);
    std::printf("verdict:          %s\n",
                report.consistent()
                    ? "implementation honours its failure bound"
                    : "INCONSISTENT with the claimed bound");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
