// Quickstart: trace a load-balanced topology with MDA-Lite Paris
// Traceroute and print the multipath view, hop by hop.
//
// By default the probe stream runs against an in-process Fakeroute
// simulator (no privileges needed). On a host with CAP_NET_RAW and
// Internet access, pass --real --destination <ip> to use raw sockets —
// the probing engine and algorithms are identical either way.
#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "core/mda_lite.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/raw_socket_network.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

using namespace mmlpt;

namespace {

void print_trace(const core::TraceResult& result) {
  const auto& g = result.graph;
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    std::printf("%3d  ", h);
    const auto vertices = g.vertices_at(h);
    if (vertices.empty()) {
      std::printf("*\n");
      continue;
    }
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      if (i > 0) std::printf("     ");
      const auto v = vertices[i];
      std::printf("%-16s", g.vertex(v).addr.to_string().c_str());
      const auto succ = g.successors(v);
      if (!succ.empty()) {
        std::printf(" ->");
        for (const auto s : succ) {
          std::printf(" %s", g.vertex(s).addr.to_string().c_str());
        }
      }
      std::printf("\n");
    }
  }
  std::printf("\npackets sent: %llu   reached destination: %s%s\n",
              static_cast<unsigned long long>(result.packets),
              result.reached_destination ? "yes" : "no",
              result.switched_to_mda ? "   (switched to full MDA)" : "");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    if (flags.get_bool("real", false)) {
      // Real-network mode: requires root; traces toward --destination.
      const auto destination = net::Ipv4Address::parse_or_throw(
          flags.get("destination", "192.0.2.1"));
      const auto source = net::Ipv4Address::parse_or_throw(
          flags.get("source", "0.0.0.0"));
      probe::RawSocketNetwork network({});
      probe::ProbeEngine::Config config;
      config.source = source;
      config.destination = destination;
      probe::ProbeEngine engine(network, config);
      core::MdaLiteTracer tracer(engine, {});
      print_trace(tracer.run());
      return 0;
    }

    // Simulated mode: the Fig. 1 unmeshed diamond behind a vantage point.
    std::printf("tracing a simulated Fig. 1 diamond (4-wide, unmeshed)\n\n");
    const auto truth = core::plain_ground_truth(topo::prepend_source(
        topo::fig1_unmeshed(), net::Ipv4Address(192, 168, 0, 1)));
    fakeroute::Simulator simulator(truth, {}, flags.get_uint("seed", 1));
    probe::SimulatedNetwork network(simulator);
    probe::ProbeEngine::Config config;
    config.source = truth.source;
    config.destination = truth.destination;
    probe::ProbeEngine engine(network, config);
    core::MdaLiteTracer tracer(engine, {});
    print_trace(tracer.run());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
