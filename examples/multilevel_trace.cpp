// Multilevel MDA-Lite Paris Traceroute in action: trace a route whose
// wide hop hides two physical routers, then print both the IP-level and
// the router-level views — the paper's headline capability (Sec. 4).
#include <cstdio>

#include "common/flags.h"
#include "core/multilevel.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"

using namespace mmlpt;

namespace {

void print_graph(const char* title, const topo::MultipathGraph& g) {
  std::printf("%s\n", title);
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    std::printf("%3d ", h);
    for (const auto v : g.vertices_at(h)) {
      std::printf(" %s", g.vertex(v).addr.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  try {
    // Generate a route whose diamonds carry router-level ground truth
    // with shared-IP-ID-counter aliases the tool can actually recover.
    topo::GeneratorConfig gconfig;
    gconfig.class_no_change = 0.0;
    gconfig.class_single_smaller = 1.0;
    gconfig.class_multiple_smaller = 0.0;
    gconfig.class_one_path = 0.0;
    gconfig.alias_ipid_shared = 1.0;
    gconfig.alias_ipid_per_interface = 0.0;
    gconfig.alias_ipid_constant_zero = 0.0;
    gconfig.alias_ipid_zero_error_counter_echo = 0.0;
    gconfig.alias_ipid_echo_probe = 0.0;
    gconfig.alias_ipid_random = 0.0;
    topo::RouteGenerator generator(gconfig, flags.get_uint("seed", 7));
    const auto route = generator.make_route();

    fakeroute::Simulator simulator(route, {}, flags.get_uint("seed", 7));
    probe::SimulatedNetwork network(simulator);
    probe::ProbeEngine::Config config;
    config.source = route.source;
    config.destination = route.destination;
    probe::ProbeEngine engine(network, config);

    core::MultilevelConfig ml_config;
    ml_config.rounds =
        static_cast<int>(flags.get_int("rounds", 10));
    core::MultilevelTracer tracer(engine, ml_config);
    const auto result = tracer.run();

    print_graph("=== IP-level multipath view ===", result.trace.graph);
    print_graph("=== Router-level view (after alias resolution) ===",
                result.router_graph);
    print_graph("=== Ground truth at router level ===",
                route.router_level_graph());

    std::printf("alias sets accepted per hop:\n");
    for (const auto& [hop, sets] : result.final_round().sets_by_hop) {
      for (const auto& set : sets) {
        if (set.outcome != alias::Outcome::kAccept) continue;
        std::printf("  hop %d:", hop);
        for (const auto a : set.members) {
          std::printf(" %s", a.to_string().c_str());
        }
        std::printf("  (one router)\n");
      }
    }
    std::printf("\ntrace packets: %llu, with alias refinement: %llu\n",
                static_cast<unsigned long long>(result.trace.packets),
                static_cast<unsigned long long>(result.total_packets));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
