// MUST COMPILE CLEAN under -Wthread-safety -Werror=thread-safety: the
// positive control for the two tsa_fail_* snippets. Exercises the whole
// wrapper surface — scoped locking, REQUIRES helpers, condition-variable
// wait loops, relockable MutexLock — so a regression in
// common/mutex.h's annotations (not just in the analysis flag) turns
// this test red.
#include <deque>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void push(int v) {
    const mmlpt::MutexLock lock(mutex_);
    items_.push_back(v);
    cv_.notify_one();
  }

  [[nodiscard]] int pop() {
    mmlpt::MutexLock lock(mutex_);
    while (items_.empty()) cv_.wait(mutex_);
    return pop_locked();
  }

  [[nodiscard]] int drain_count() {
    mmlpt::MutexLock lock(mutex_);
    int drained = 0;
    while (!items_.empty()) {
      (void)pop_locked();
      lock.unlock();  // relock cycle: the annotated unlock/lock pair
      ++drained;
      lock.lock();
    }
    return drained;
  }

 private:
  [[nodiscard]] int pop_locked() MMLPT_REQUIRES(mutex_) {
    const int v = items_.front();
    items_.pop_front();
    return v;
  }

  mmlpt::Mutex mutex_;
  mmlpt::CondVar cv_;
  std::deque<int> items_ MMLPT_GUARDED_BY(mutex_);
};

}  // namespace

int main() {
  Queue queue;
  queue.push(1);
  queue.push(2);
  if (queue.pop() != 1) return 1;
  return queue.drain_count() == 1 ? 0 : 1;
}
