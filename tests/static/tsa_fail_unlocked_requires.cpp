// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: calls a
// MMLPT_REQUIRES(mutex_) function without holding the mutex. Registered
// WILL_FAIL in tests/static/CMakeLists.txt (see
// tsa_fail_unguarded_access.cpp for the rationale).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Store {
 public:
  // BAD: bump_locked requires mutex_, which the caller never takes.
  void bump() { bump_locked(); }

  [[nodiscard]] int value() {
    const mmlpt::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void bump_locked() MMLPT_REQUIRES(mutex_) { ++value_; }

  mmlpt::Mutex mutex_;
  int value_ MMLPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Store store;
  store.bump();
  return store.value();
}
