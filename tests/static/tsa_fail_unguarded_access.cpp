// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: reads a
// MMLPT_GUARDED_BY field without holding its mutex. The ctest
// registration in tests/static/CMakeLists.txt runs this through the
// compiler with WILL_FAIL, proving the thread-safety gate in the main
// build is actually live — if the analysis ever silently turns off,
// this test is the canary. A companion control test compiles the same
// file with the analysis disabled, proving it is otherwise valid C++.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void bump() {
    const mmlpt::MutexLock lock(mutex_);
    ++value_;
  }

  // BAD: touches value_ with mutex_ not held.
  [[nodiscard]] int read_unlocked() const { return value_; }

 private:
  mutable mmlpt::Mutex mutex_;
  int value_ MMLPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.read_unlocked();
}
