// ShutdownSignal: the self-pipe signal seam mmlptd, mmlpt_fleet and
// mmlpt_survey drain through. The latch is process-global by design, so
// these tests run in a deliberate order within this binary: the plain
// first-delivery test latches the state the death test then relies on
// being escalation-proof (second delivery must _exit(128+sig)).
#include <gtest/gtest.h>

#include <csignal>

#include <poll.h>

#include "daemon/signals.h"
#include "probe/cancel.h"

namespace mmlpt::daemon {
namespace {

bool readable_now(int fd) {
  struct pollfd p {};
  p.fd = fd;
  p.events = POLLIN;
  return ::poll(&p, 1, 0) == 1 && (p.revents & POLLIN) != 0;
}

TEST(ShutdownSignal, InstallIsIdempotent) {
  auto& first = ShutdownSignal::install();
  auto& second = ShutdownSignal::install();
  EXPECT_EQ(&first, &second);
  EXPECT_GE(first.fd(), 0);
}

TEST(ShutdownSignal, FirstDeliveryLatchesFiresTokenAndWakesThePipe) {
  auto& shutdown = ShutdownSignal::install();
  probe::CancelToken token;
  shutdown.link(&token);

  EXPECT_FALSE(shutdown.requested());
  EXPECT_EQ(shutdown.exit_code(), 0);
  EXPECT_FALSE(readable_now(shutdown.fd()));

  ASSERT_EQ(std::raise(SIGTERM), 0);

  EXPECT_TRUE(shutdown.requested());
  EXPECT_EQ(shutdown.signal(), SIGTERM);
  EXPECT_EQ(shutdown.exit_code(), 128 + SIGTERM);
  EXPECT_TRUE(token.requested()) << "linked token must fire in the handler";
  // Level-triggered: the pipe stays readable forever, it is never drained.
  EXPECT_TRUE(readable_now(shutdown.fd()));
  EXPECT_TRUE(readable_now(shutdown.fd()));

  shutdown.link(nullptr);
}

TEST(ShutdownSignalDeathTest, SecondDeliveryExitsImmediately) {
  (void)ShutdownSignal::install();
  // Two raises make the test self-contained: the first latches (or is
  // already latched from the test above), the second must _exit(128+sig)
  // — an insistent ^C^C always wins over a wedged drain.
  EXPECT_EXIT(
      {
        (void)std::raise(SIGINT);
        (void)std::raise(SIGINT);
      },
      ::testing::ExitedWithCode(128 + SIGINT), "");
}

}  // namespace
}  // namespace mmlpt::daemon
