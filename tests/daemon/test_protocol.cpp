// Wire-protocol codec gates: round-trips for every frame kind, the
// truncation/torn-frame/oversize behaviour the daemon's robustness rests
// on, unknown-frame-type forward compatibility, handshake version
// negotiation, and a fuzz loop asserting random bytes can never crash a
// decoder (only throw ParseError).
#include <cstdint>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "daemon/protocol.h"

namespace mmlpt::daemon {
namespace {

Frame round_trip(const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::size_t offset = 0;
  const auto decoded = decode_frame(bytes, offset);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(offset, bytes.size());
  return *decoded;
}

FleetJobSpec sample_spec() {
  FleetJobSpec spec;
  spec.labels = {"198.51.100.7", "203.0.113.9"};
  spec.routes = 77;  // ignored while labels is non-empty
  spec.algorithm = core::Algorithm::kMda;
  spec.family = net::Family::kIpv6;
  spec.seed = 424242;
  spec.distinct = 17;
  spec.shared_prefix = 3;
  spec.window = 4;
  return spec;
}

TEST(FrameCodec, RoundTripsFrameHeaderAndPayload) {
  const Frame frame{static_cast<std::uint8_t>(FrameType::kResultLine),
                    std::string("hello\x00world", 11)};
  const Frame decoded = round_trip(frame);
  EXPECT_EQ(decoded, frame);
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const Frame frame{static_cast<std::uint8_t>(FrameType::kStatusRequest), ""};
  EXPECT_EQ(round_trip(frame), frame);
}

TEST(FrameCodec, TruncatedFrameMeansNeedMoreBytesNeverGarbage) {
  const std::string bytes = encode_frame(
      {static_cast<std::uint8_t>(FrameType::kProgress), "payload-bytes"});
  // EVERY proper prefix must decode as incomplete, without advancing.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::size_t offset = 0;
    const auto decoded = decode_frame(bytes.substr(0, cut), offset);
    EXPECT_FALSE(decoded.has_value()) << "prefix length " << cut;
    EXPECT_EQ(offset, 0u) << "prefix length " << cut;
  }
}

TEST(FrameCodec, TornPayloadIsAParseError) {
  std::string bytes = encode_frame(
      {static_cast<std::uint8_t>(FrameType::kResultLine), "payload"});
  bytes[bytes.size() - 3] ^= 0x01;  // flip one payload bit: CRC mismatch
  std::size_t offset = 0;
  EXPECT_THROW((void)decode_frame(bytes, offset), ParseError);
}

TEST(FrameCodec, TornHeaderCrcIsAParseError) {
  std::string bytes = encode_frame(
      {static_cast<std::uint8_t>(FrameType::kResultLine), "payload"});
  bytes[5] ^= 0x40;  // corrupt the stored CRC itself
  std::size_t offset = 0;
  EXPECT_THROW((void)decode_frame(bytes, offset), ParseError);
}

TEST(FrameCodec, OversizedLengthRejectedWithoutWaitingForPayload) {
  // A corrupt length prefix claiming 64 MiB must be refused from the
  // header alone — the daemon must not buffer toward it.
  std::string bytes;
  const std::uint32_t huge = 64u << 20;
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  bytes.push_back(static_cast<char>(FrameType::kResultLine));
  bytes.append(4, '\0');  // CRC field present, payload absent
  std::size_t offset = 0;
  EXPECT_THROW((void)decode_frame(bytes, offset), ParseError);
}

TEST(FrameCodec, DecodesBackToBackFramesFromOneBuffer) {
  const Frame first{static_cast<std::uint8_t>(FrameType::kProgress), "one"};
  const Frame second{static_cast<std::uint8_t>(FrameType::kError), "two"};
  const std::string bytes = encode_frame(first) + encode_frame(second);
  std::size_t offset = 0;
  EXPECT_EQ(*decode_frame(bytes, offset), first);
  EXPECT_EQ(*decode_frame(bytes, offset), second);
  EXPECT_EQ(offset, bytes.size());
  EXPECT_FALSE(decode_frame(bytes, offset).has_value());
}

TEST(FrameCodec, UnknownFrameTypeDecodesCleanlyForSkipping) {
  // Receivers skip unknown types; the codec must deliver them intact so
  // the protocol can grow frame kinds without a version bump.
  const Frame unknown{0x7F, "future-frame-kind"};
  EXPECT_FALSE(is_known_frame_type(0x7F));
  EXPECT_EQ(round_trip(unknown), unknown);
}

TEST(FrameCodec, KnownFrameTypesAreKnown) {
  for (const auto type :
       {FrameType::kHello, FrameType::kJobRequest, FrameType::kCancel,
        FrameType::kStatusRequest, FrameType::kMetricsRequest,
        FrameType::kHelloAck, FrameType::kProgress, FrameType::kResultLine,
        FrameType::kStopSetSummary, FrameType::kJobStatus, FrameType::kError,
        FrameType::kServerStatus, FrameType::kMetrics}) {
    EXPECT_TRUE(is_known_frame_type(static_cast<std::uint8_t>(type)));
  }
  EXPECT_FALSE(is_known_frame_type(0));
  EXPECT_FALSE(is_known_frame_type(255));
}

TEST(PayloadCodec, HelloRoundTrips) {
  Hello hello;
  hello.min_version = 1;
  hello.max_version = 3;
  hello.tenant = "team-alpha";
  const Hello decoded = decode_hello(encode_hello(hello));
  EXPECT_EQ(decoded.min_version, 1u);
  EXPECT_EQ(decoded.max_version, 3u);
  EXPECT_EQ(decoded.tenant, "team-alpha");
}

TEST(PayloadCodec, HelloMagicMismatchIsAParseError) {
  Frame frame = encode_hello({});
  frame.payload[0] ^= 0x01;  // not "MLPD" anymore
  EXPECT_THROW((void)decode_hello(frame), ParseError);
}

TEST(PayloadCodec, JobRequestRoundTripsEveryField) {
  const JobRequest request{981234, sample_spec()};
  const JobRequest decoded = decode_job_request(encode_job_request(request));
  EXPECT_EQ(decoded.job_id, request.job_id);
  EXPECT_EQ(decoded.spec, request.spec);
}

TEST(PayloadCodec, JobRequestRejectsBadEnums) {
  Frame frame = encode_job_request({1, sample_spec()});
  // The family byte lives right after the u64 job id.
  frame.payload[8] = 7;
  EXPECT_THROW((void)decode_job_request(frame), ParseError);
}

TEST(PayloadCodec, ProgressAndResultLineAndSummaryRoundTrip) {
  const Progress progress{7, 12, 64, 5000};
  const auto p = decode_progress(encode_progress(progress));
  EXPECT_EQ(p.job_id, 7u);
  EXPECT_EQ(p.completed, 12u);
  EXPECT_EQ(p.total, 64u);
  EXPECT_EQ(p.packets, 5000u);

  const ResultLine line{9, R"({"index":0,"destination":"10.0.0.1"})"};
  const auto l = decode_result_line(encode_result_line(line));
  EXPECT_EQ(l.job_id, 9u);
  EXPECT_EQ(l.line, line.line);

  const StopSetSummary summary{3, "stop-set visible_hops=10"};
  const auto s = decode_stop_set_summary(encode_stop_set_summary(summary));
  EXPECT_EQ(s.job_id, 3u);
  EXPECT_EQ(s.text, summary.text);
}

TEST(PayloadCodec, JobStatusRoundTripsEveryOutcome) {
  for (const auto outcome : {JobOutcome::kOk, JobOutcome::kRejected,
                             JobOutcome::kCanceled, JobOutcome::kFailed}) {
    const JobStatus status{11, outcome, "because", 42, 4242};
    const auto decoded = decode_job_status(encode_job_status(status));
    EXPECT_EQ(decoded.outcome, outcome);
    EXPECT_EQ(decoded.job_id, 11u);
    EXPECT_EQ(decoded.message, "because");
    EXPECT_EQ(decoded.lines, 42u);
    EXPECT_EQ(decoded.packets, 4242u);
  }
}

TEST(PayloadCodec, CancelErrorServerStatusRoundTrip) {
  EXPECT_EQ(decode_cancel(encode_cancel({77})).job_id, 77u);
  EXPECT_EQ(decode_error(encode_error({"boom"})).message, "boom");
  EXPECT_EQ(decode_server_status(encode_server_status({"{\"a\":1}"})).json,
            "{\"a\":1}");
}

TEST(PayloadCodec, MetricsRequestAndMetricsRoundTrip) {
  const Frame request = encode_metrics_request();
  EXPECT_EQ(request.type,
            static_cast<std::uint8_t>(FrameType::kMetricsRequest));
  EXPECT_TRUE(request.payload.empty());
  EXPECT_EQ(round_trip(request), request);

  // A realistic multi-line Prometheus exposition, embedded quotes and
  // all, must survive the wire byte for byte.
  const std::string exposition =
      "# HELP mmlpt_transport_probes_sent_total Probes handed to the "
      "transport\n"
      "# TYPE mmlpt_transport_probes_sent_total counter\n"
      "mmlpt_transport_probes_sent_total{transport=\"poll\"} 4242\n";
  const auto decoded = decode_metrics(encode_metrics({exposition}));
  EXPECT_EQ(decoded.text, exposition);
  EXPECT_EQ(decode_metrics(encode_metrics({""})).text, "");
}

TEST(PayloadCodec, TrailingBytesAreRejected) {
  Frame frame = encode_cancel({5});
  frame.payload += '\0';  // smuggled byte past the schema
  EXPECT_THROW((void)decode_cancel(frame), ParseError);
}

TEST(Handshake, NegotiatesTheCommonVersion) {
  Hello hello;
  hello.min_version = 1;
  hello.max_version = 9;
  const auto version = negotiate_version(hello);
  ASSERT_TRUE(version.has_value());
  EXPECT_EQ(*version, kProtocolVersion);
}

TEST(Handshake, RefusesDisjointVersionRanges) {
  Hello future;
  future.min_version = kProtocolVersion + 1;
  future.max_version = kProtocolVersion + 5;
  EXPECT_FALSE(negotiate_version(future).has_value());

  Hello ancient;
  ancient.min_version = 0;
  ancient.max_version = 0;
  EXPECT_FALSE(negotiate_version(ancient).has_value());

  Hello inverted;
  inverted.min_version = 3;
  inverted.max_version = 1;
  EXPECT_FALSE(negotiate_version(inverted).has_value());
}

TEST(FrameCodecFuzz, RandomBytesNeverCrashTheFrameDecoder) {
  Rng rng(20260807);
  for (int round = 0; round < 2000; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform(0, 64));
    std::string bytes;
    bytes.reserve(size);
    for (std::size_t i = 0; i < size; ++i) {
      bytes.push_back(static_cast<char>(rng.uniform(0, 255)));
    }
    std::size_t offset = 0;
    try {
      while (decode_frame(bytes, offset).has_value()) {
      }
    } catch (const ParseError&) {
      // The only legal failure mode.
    }
    EXPECT_LE(offset, bytes.size());
  }
}

TEST(FrameCodecFuzz, CorruptedRealFramesNeverCrashThePayloadDecoders) {
  Rng rng(7);
  const Frame original = encode_job_request({123, sample_spec()});
  for (int round = 0; round < 2000; ++round) {
    Frame frame = original;
    // Corrupt 1-4 payload bytes, then decode: either a valid JobRequest
    // (the corruption hit don't-care bits) or ParseError — never a crash.
    const int flips = static_cast<int>(rng.uniform(1, 4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(frame.payload.size()) - 1));
      frame.payload[pos] =
          static_cast<char>(rng.uniform(0, 255));
    }
    try {
      (void)decode_job_request(frame);
    } catch (const ParseError&) {
    }
  }
}

TEST(FrameCodecFuzz, CorruptedMetricsFramesNeverCrashTheDecoder) {
  Rng rng(20260807);
  const Frame original = encode_metrics(
      {"# TYPE mmlpt_admission_jobs_active gauge\n"
       "mmlpt_admission_jobs_active 3\n"});
  for (int round = 0; round < 2000; ++round) {
    Frame frame = original;
    const int flips = static_cast<int>(rng.uniform(1, 4));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform(0, static_cast<int>(frame.payload.size()) - 1));
      frame.payload[pos] = static_cast<char>(rng.uniform(0, 255));
    }
    try {
      (void)decode_metrics(frame);
    } catch (const ParseError&) {
      // The only legal failure mode.
    }
  }
}

}  // namespace
}  // namespace mmlpt::daemon
