// mmlptd end to end, in process: a real Daemon on a temp unix socket and
// real Clients speaking the framed protocol over it. Gates the PR's
// acceptance criteria — concurrent clients each byte-identical to a
// standalone run_fleet_job of the same spec, one client's mid-trace
// cancel leaving other tenants untouched, admission control refusing the
// over-cap job with an observable kRejected status, and the status
// document carrying the admission counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/error.h"
#include "daemon/admission.h"
#include "daemon/client.h"
#include "daemon/fleet_job.h"
#include "daemon/server.h"
#include "orchestrator/fleet.h"

namespace mmlpt::daemon {
namespace {

std::string temp_socket_path() {
  // sockaddr_un paths are short; keep these tight and per-process.
  static int counter = 0;
  return "/tmp/mmlptd-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(++counter) + ".sock";
}

FleetJobSpec small_spec(std::uint64_t routes, std::uint64_t seed,
                        net::Family family = net::Family::kIpv4) {
  FleetJobSpec spec;
  spec.routes = routes;
  spec.seed = seed;
  spec.family = family;
  spec.distinct = 6;
  return spec;
}

/// The standalone reference: run the spec through a fresh single-worker
/// scheduler, exactly `mmlpt_fleet --jobs 1`, and collect the lines.
std::vector<std::string> reference_lines(const FleetJobSpec& spec) {
  orchestrator::FleetConfig config;
  config.jobs = 1;
  orchestrator::FleetScheduler fleet(config);
  std::vector<std::string> lines;
  FleetJobHooks hooks;
  hooks.on_line = [&](std::size_t, std::string line) {
    lines.push_back(std::move(line));
  };
  (void)run_fleet_job(fleet, nullptr, spec, fakeroute::SimConfig{}, hooks);
  return lines;
}

struct ClientRun {
  std::vector<std::string> lines;
  ClientJobResult result;
};

ClientRun run_client_job(const std::string& socket, const std::string& tenant,
                         const FleetJobSpec& spec,
                         ClientRunOptions options = {}) {
  Client client(socket, tenant);
  ClientRun run;
  options.on_line = [&](const std::string& line) {
    run.lines.push_back(line);
  };
  run.result = client.run_job(spec, options);
  return run;
}

TEST(Admission, EnforcesTotalAndPerTenantCapsAndCounts) {
  AdmissionController admission({/*max_jobs_total=*/3,
                                 /*max_jobs_per_tenant=*/2,
                                 /*tenant_pps=*/0.0, /*tenant_burst=*/64});
  EXPECT_TRUE(admission.try_admit("a").admitted);
  EXPECT_TRUE(admission.try_admit("a").admitted);
  const auto third_a = admission.try_admit("a");
  EXPECT_FALSE(third_a.admitted);
  EXPECT_NE(third_a.reason.find("max_jobs_per_tenant"), std::string::npos);

  EXPECT_TRUE(admission.try_admit("b").admitted);
  const auto over_total = admission.try_admit("c");
  EXPECT_FALSE(over_total.admitted);
  EXPECT_NE(over_total.reason.find("max_jobs_total"), std::string::npos);

  EXPECT_EQ(admission.jobs_active(), 3);
  EXPECT_EQ(admission.jobs_admitted(), 3u);
  EXPECT_EQ(admission.jobs_rejected(), 2u);

  admission.release("a");
  EXPECT_TRUE(admission.try_admit("c").admitted);
  EXPECT_EQ(admission.jobs_active(), 3);

  const auto status = admission.status_json();
  EXPECT_NE(status.find("\"jobs_admitted\":4"), std::string::npos);
  EXPECT_NE(status.find("\"jobs_rejected\":2"), std::string::npos);
  EXPECT_NE(status.find("\"tenant\":\"a\""), std::string::npos);
}

TEST(Admission, ZeroCapsMeanUnlimitedAndLimiterIsPerTenant) {
  AdmissionController admission(
      {/*max_jobs_total=*/0, /*max_jobs_per_tenant=*/0,
       /*tenant_pps=*/1000.0, /*tenant_burst=*/8});
  const auto first = admission.try_admit("t");
  ASSERT_TRUE(first.admitted);
  ASSERT_NE(first.limiter, nullptr);
  admission.release("t");
  // The bucket persists across the tenant's jobs: same limiter object.
  const auto second = admission.try_admit("t");
  EXPECT_EQ(second.limiter, first.limiter);
  const auto other = admission.try_admit("u");
  EXPECT_NE(other.limiter, first.limiter);
}

TEST(DaemonE2E, ConcurrentClientsAreByteIdenticalToStandaloneRuns) {
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.fleet.jobs = 2;
  Daemon daemon(config);
  daemon.start();

  const std::vector<FleetJobSpec> specs = {
      small_spec(12, 5),
      small_spec(10, 9),
      small_spec(8, 5, net::Family::kIpv6),
  };
  std::vector<ClientRun> runs(specs.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    clients.emplace_back([&, i] {
      runs[i] = run_client_job(config.socket_path,
                               "tenant-" + std::to_string(i), specs[i]);
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(runs[i].result.outcome, JobOutcome::kOk) << "client " << i;
    EXPECT_EQ(runs[i].lines, reference_lines(specs[i])) << "client " << i;
    EXPECT_EQ(runs[i].result.lines, runs[i].lines.size());
    EXPECT_GT(runs[i].result.packets, 0u);
  }

  daemon.stop();
  // Drain-and-exit removed the socket and the daemon is restart-safe.
  EXPECT_FALSE(daemon.running());
  EXPECT_NE(daemon.status_json().find("\"jobs_admitted\":3"),
            std::string::npos);
}

TEST(DaemonE2E, HandshakeNegotiatesTheProtocolVersion) {
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  Daemon daemon(config);
  daemon.start();
  Client client(config.socket_path, "v");
  EXPECT_EQ(client.negotiated_version(), kProtocolVersion);
}

TEST(DaemonE2E, MidTraceCancelLeavesOtherTenantsUntouched) {
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.fleet.jobs = 2;
  // Slow the shared fleet down enough that the canceled job is genuinely
  // mid-flight when its Cancel frame lands.
  config.fleet.pps = 600;
  config.fleet.burst = 16;
  Daemon daemon(config);
  daemon.start();

  const auto long_spec = small_spec(64, 3);
  const auto other_spec = small_spec(6, 11);
  ClientRun canceled, other;
  std::thread cancel_thread([&] {
    ClientRunOptions options;
    options.cancel_after_lines = 2;
    canceled = run_client_job(config.socket_path, "victim", long_spec,
                              options);
  });
  std::thread other_thread([&] {
    other = run_client_job(config.socket_path, "bystander", other_spec);
  });
  cancel_thread.join();
  other_thread.join();

  EXPECT_EQ(canceled.result.outcome, JobOutcome::kCanceled)
      << canceled.result.message;
  EXPECT_LT(canceled.lines.size(), long_spec.destination_count());
  // The bystander's stream is bit-for-bit what a standalone run yields.
  EXPECT_EQ(other.result.outcome, JobOutcome::kOk) << other.result.message;
  EXPECT_EQ(other.lines, reference_lines(other_spec));

  // The daemon survives the cancel: the same tenant can run again and
  // still gets byte-identical output.
  const auto again = run_client_job(config.socket_path, "victim",
                                    other_spec);
  EXPECT_EQ(again.result.outcome, JobOutcome::kOk);
  EXPECT_EQ(again.lines, reference_lines(other_spec));
}

TEST(DaemonE2E, OverCapJobIsRejectedWithoutDisturbingTheRunningOne) {
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.fleet.jobs = 2;
  config.fleet.pps = 400;  // hold the running job in flight for a while
  config.fleet.burst = 16;
  config.admission.max_jobs_per_tenant = 1;
  Daemon daemon(config);
  daemon.start();

  // An fd-driven cancel lets the main thread end the long job the moment
  // the rejection has been observed — no sleeps, no flakiness.
  int cancel_pipe[2];
  ASSERT_EQ(::pipe(cancel_pipe), 0);

  const auto long_spec = small_spec(64, 7);
  ClientRun running;
  std::thread running_thread([&] {
    ClientRunOptions options;
    options.cancel_fd = cancel_pipe[0];
    running = run_client_job(config.socket_path, "capped", long_spec,
                             options);
  });

  // Wait for the long job to occupy the tenant's single slot.
  while (daemon.admission().jobs_active() < 1) {
    std::this_thread::yield();
  }

  const auto rejected =
      run_client_job(config.socket_path, "capped", small_spec(4, 1));
  EXPECT_EQ(rejected.result.outcome, JobOutcome::kRejected);
  EXPECT_NE(rejected.result.message.find("max_jobs_per_tenant"),
            std::string::npos);
  EXPECT_TRUE(rejected.lines.empty());

  // A different tenant is not affected by the capped tenant's limit.
  const auto bystander_spec = small_spec(5, 2);
  const auto bystander =
      run_client_job(config.socket_path, "free", bystander_spec);
  EXPECT_EQ(bystander.result.outcome, JobOutcome::kOk);
  EXPECT_EQ(bystander.lines, reference_lines(bystander_spec));

  ASSERT_EQ(::write(cancel_pipe[1], "x", 1), 1);
  running_thread.join();
  EXPECT_EQ(running.result.outcome, JobOutcome::kCanceled)
      << running.result.message;
  ::close(cancel_pipe[0]);
  ::close(cancel_pipe[1]);

  EXPECT_EQ(daemon.admission().jobs_rejected(), 1u);
  EXPECT_EQ(daemon.admission().jobs_active(), 0);
}

TEST(DaemonE2E, StatusDocumentExposesAdmissionState) {
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.admission.tenant_pps = 5000.0;
  Daemon daemon(config);
  daemon.start();

  Client client(config.socket_path, "ops");
  const auto spec = small_spec(4, 1);
  const auto result = client.run_job(spec);
  EXPECT_EQ(result.outcome, JobOutcome::kOk);

  const auto status = client.server_status();
  EXPECT_NE(status.find("\"daemon\":\"mmlptd\""), std::string::npos);
  EXPECT_NE(status.find("\"protocol_version\":1"), std::string::npos);
  EXPECT_NE(status.find("\"jobs_admitted\":1"), std::string::npos);
  EXPECT_NE(status.find("\"tenant\":\"ops\""), std::string::npos);
  // The per-tenant bucket really metered the job's probes.
  EXPECT_EQ(status.find("\"tokens_granted\":0"), std::string::npos);
}

TEST(DaemonE2E, StopSetSummaryTravelsOverTheSocket) {
  const auto cache = "/tmp/mmlptd-test-" + std::to_string(::getpid()) +
                     "-stopset.mtps";
  std::remove(cache.c_str());
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.topology_cache = cache;
  Daemon daemon(config);
  daemon.start();

  Client client(config.socket_path, "dt");
  auto spec = small_spec(8, 4);
  spec.shared_prefix = 3;  // common first hops: the stop set pays off
  const auto result = client.run_job(spec);
  EXPECT_EQ(result.outcome, JobOutcome::kOk);
  EXPECT_NE(result.stop_set_summary.find("stop-set visible_hops="),
            std::string::npos)
      << result.stop_set_summary;
  EXPECT_NE(result.stop_set_summary.find("union_digest="),
            std::string::npos);

  daemon.stop();
  std::remove(cache.c_str());
}

TEST(DaemonE2E, MetricsFrameServesThePrometheusRegistry) {
  const auto cache = "/tmp/mmlptd-test-" + std::to_string(::getpid()) +
                     "-metrics.mtps";
  std::remove(cache.c_str());
  DaemonConfig config;
  config.socket_path = temp_socket_path();
  config.topology_cache = cache;  // stop-set families join the registry
  Daemon daemon(config);
  daemon.start();

  Client client(config.socket_path, "obs");
  auto spec = small_spec(6, 2);
  spec.shared_prefix = 3;
  const auto result = client.run_job(spec);
  EXPECT_EQ(result.outcome, JobOutcome::kOk);

  const auto text = client.metrics();
  // Prometheus text with the acceptance families: transport, admission,
  // stop-set, and the daemon's own job outcomes.
  EXPECT_NE(text.find("# TYPE mmlpt_transport_probes_sent_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("mmlpt_transport_probes_sent_total{transport=\"sim\"} "),
      std::string::npos);
  EXPECT_NE(text.find("mmlpt_admission_jobs_admitted_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_admission_jobs_active 0\n"), std::string::npos);
  EXPECT_NE(text.find("mmlpt_daemon_jobs_total{outcome=\"ok\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_stop_set_records_total"), std::string::npos);

  // A second job's counters accumulate in the same registry.
  const auto again = client.run_job(spec);
  EXPECT_EQ(again.outcome, JobOutcome::kOk);
  const auto after = client.metrics();
  EXPECT_NE(after.find("mmlpt_admission_jobs_admitted_total 2\n"),
            std::string::npos);
  EXPECT_NE(after.find("mmlpt_daemon_jobs_total{outcome=\"ok\"} 2\n"),
            std::string::npos);

  daemon.stop();
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace mmlpt::daemon
