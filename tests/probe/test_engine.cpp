#include "probe/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::probe {
namespace {

struct Rig {
  topo::GroundTruth truth;
  fakeroute::Simulator simulator;
  SimulatedNetwork network;
  ProbeEngine engine;

  explicit Rig(topo::MultipathGraph graph, fakeroute::SimConfig sim = {},
               std::uint64_t seed = 1)
      : truth(core::plain_ground_truth(std::move(graph))),
        simulator(truth, sim, seed),
        network(simulator),
        engine(network, make_config(truth)) {}

  static ProbeEngine::Config make_config(const topo::GroundTruth& t) {
    ProbeEngine::Config c;
    c.source = t.source;
    c.destination = t.destination;
    return c;
  }
};

TEST(ProbeEngine, ProbeGetsTimeExceeded) {
  Rig rig(topo::simplest_diamond());
  const auto r = rig.engine.probe(0, 1);
  EXPECT_TRUE(r.answered);
  EXPECT_FALSE(r.from_destination);
  EXPECT_FALSE(r.responder.is_unspecified());
  EXPECT_GT(r.recv_time, r.send_time);
}

TEST(ProbeEngine, DestinationDetected) {
  Rig rig(topo::simplest_diamond());
  const auto r = rig.engine.probe(0, 10);
  EXPECT_TRUE(r.answered);
  EXPECT_TRUE(r.from_destination);
  EXPECT_EQ(r.responder, rig.truth.destination);
}

TEST(ProbeEngine, SameFlowSamePath) {
  Rig rig(topo::max_length_2_diamond());
  const auto a = rig.engine.probe(42, 1);
  const auto b = rig.engine.probe(42, 1);
  EXPECT_EQ(a.responder, b.responder);
}

TEST(ProbeEngine, DifferentFlowsSpread) {
  Rig rig(topo::max_length_2_diamond());
  std::set<std::uint32_t> responders;
  for (FlowId f = 0; f < 64; ++f) {
    responders.insert(rig.engine.probe(f, 1).responder.value());
  }
  EXPECT_GT(responders.size(), 10u);  // 64 flows over 28 vertices
}

TEST(ProbeEngine, PacketAccounting) {
  Rig rig(topo::simplest_diamond());
  EXPECT_EQ(rig.engine.packets_sent(), 0u);
  (void)rig.engine.probe(0, 1);
  (void)rig.engine.probe(1, 1);
  EXPECT_EQ(rig.engine.packets_sent(), 2u);
  EXPECT_EQ(rig.engine.trace_probes_sent(), 2u);
  (void)rig.engine.ping(rig.truth.destination);
  EXPECT_EQ(rig.engine.packets_sent(), 3u);
  EXPECT_EQ(rig.engine.echo_probes_sent(), 1u);
}

TEST(ProbeEngine, RetriesCountAsPackets) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 1.0;  // nothing ever answers
  Rig rig(topo::simplest_diamond(), sim);
  const auto r = rig.engine.probe(0, 1);
  EXPECT_FALSE(r.answered);
  // 1 initial + 2 retries (default max_retries = 2).
  EXPECT_EQ(rig.engine.packets_sent(), 3u);
}

TEST(ProbeEngine, RetryRecoversFromLoss) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 0.4;
  Rig rig(topo::simplest_diamond(), sim, 5);
  int answered = 0;
  for (FlowId f = 0; f < 100; ++f) {
    if (rig.engine.probe(f, 1).answered) ++answered;
  }
  // P(3 losses in a row) = 0.064: nearly everything answered.
  EXPECT_GT(answered, 85);
}

TEST(ProbeEngine, VirtualClockAdvances) {
  Rig rig(topo::simplest_diamond());
  const auto t0 = rig.engine.now();
  (void)rig.engine.probe(0, 1);
  EXPECT_GT(rig.engine.now(), t0);
}

TEST(ProbeEngine, PingCollectsIpId) {
  Rig rig(topo::simplest_diamond());
  const auto target = topo::reference_addr(1, 1, 0);
  const auto a = rig.engine.ping(target);
  ASSERT_TRUE(a.answered);
  EXPECT_EQ(a.responder, target);
}

TEST(ProbeEngine, FlowPortsBijective) {
  Rig rig(topo::simplest_diamond());
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (FlowId f = 0; f < 100000; f += 997) {
    EXPECT_TRUE(seen.insert(rig.engine.flow_ports(f)).second);
  }
  // Crossing the source-port cycle boundary bumps the dst port.
  const std::uint32_t cycle = 65536u - rig.engine.config().base_src_port;
  const auto before = rig.engine.flow_ports(cycle - 1);
  const auto after = rig.engine.flow_ports(cycle);
  EXPECT_EQ(after.second, before.second + 1);
}

TEST(ProbeEngine, FlowPortsWrapAt16Bits) {
  Rig rig(topo::simplest_diamond());
  const auto base_src = rig.engine.config().base_src_port;
  const auto base_dst = rig.engine.config().base_dst_port;
  const std::uint32_t cycle = 65536u - base_src;

  // The last flow of the first cycle pins the source port to 65535...
  const auto last = rig.engine.flow_ports(cycle - 1);
  EXPECT_EQ(last.first, 65535);
  EXPECT_EQ(last.second, base_dst);
  // ...and the next flow wraps the source port back to base while the
  // destination port steps up, opening a fresh cycle of 5-tuples.
  const auto wrapped = rig.engine.flow_ports(cycle);
  EXPECT_EQ(wrapped.first, base_src);
  EXPECT_EQ(wrapped.second, base_dst + 1);
  // Same shape at every later cycle boundary.
  const auto far = rig.engine.flow_ports(1000 * cycle);
  EXPECT_EQ(far.first, base_src);
  EXPECT_EQ(far.second, static_cast<std::uint16_t>(base_dst + 1000));
}

TEST(ProbeEngine, FlowPortsAddressBillionsOfFlows) {
  // The claim in engine.h: source port cycles, destination port steps
  // once per cycle, so cycle * 65536 (~2.1 billion with the default
  // base) distinct flows map to distinct (src, dst) pairs. Exhaustive
  // enumeration is out; instead check injectivity structurally — flow
  // a + b*cycle maps to (base_src + a, base_dst + b), so distinct
  // (a, b) pairs give distinct port pairs across the whole range.
  Rig rig(topo::simplest_diamond());
  const auto base_src = rig.engine.config().base_src_port;
  const auto base_dst = rig.engine.config().base_dst_port;
  const std::uint32_t cycle = 65536u - base_src;
  const std::uint64_t addressable =
      static_cast<std::uint64_t>(cycle) * 65536ULL;
  EXPECT_GT(addressable, 2'000'000'000ULL);  // billions, literally

  for (const std::uint32_t a : {0u, 1u, 12345u, cycle - 1}) {
    for (const std::uint32_t b : {0u, 1u, 777u, 65535u - base_dst}) {
      const FlowId flow = a + b * cycle;
      const auto [src, dst] = rig.engine.flow_ports(flow);
      EXPECT_EQ(src, base_src + a);
      EXPECT_EQ(dst, static_cast<std::uint16_t>(base_dst + b));
    }
  }

  // A sample of far-apart flows across the full range stays collision
  // free (spot check of the bijection).
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (std::uint64_t flow = 0; flow < addressable;
       flow += 7'368'787ULL) {  // prime stride, ~285 samples
    EXPECT_TRUE(
        seen.insert(rig.engine.flow_ports(static_cast<FlowId>(flow))).second)
        << "collision at flow " << flow;
  }
}

TEST(ProbeEngine, MplsLabelsSurface) {
  auto truth = core::plain_ground_truth(topo::simplest_diamond());
  truth.routers[1].mpls_label = 777;
  truth.routers[2].mpls_label = 778;
  fakeroute::Simulator simulator(truth, {}, 1);
  SimulatedNetwork network(simulator);
  ProbeEngine::Config config;
  config.source = truth.source;
  config.destination = truth.destination;
  ProbeEngine engine(network, config);
  const auto r = engine.probe(0, 1);
  ASSERT_TRUE(r.answered);
  ASSERT_EQ(r.mpls_labels.size(), 1u);
  EXPECT_TRUE(r.mpls_labels[0].label == 777 || r.mpls_labels[0].label == 778);
}

}  // namespace
}  // namespace mmlpt::probe
