// The batched transport contract: Network::transact_batch's default
// serial fallback, the SimulatedNetwork override, the ThrottledNetwork /
// BlockingLatencyNetwork decorators, and ProbeEngine::probe_batch on top.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "orchestrator/latency_network.h"
#include "orchestrator/rate_limiter.h"
#include "orchestrator/throttled_network.h"
#include "probe/engine.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::probe {
namespace {

struct Rig {
  topo::GroundTruth truth;
  fakeroute::Simulator simulator;
  SimulatedNetwork network;
  ProbeEngine engine;

  explicit Rig(topo::MultipathGraph graph, fakeroute::SimConfig sim = {},
               std::uint64_t seed = 1)
      : truth(core::plain_ground_truth(std::move(graph))),
        simulator(truth, sim, seed),
        network(simulator),
        engine(network, make_config(truth)) {}

  static ProbeEngine::Config make_config(const topo::GroundTruth& t) {
    ProbeEngine::Config c;
    c.source = t.source;
    c.destination = t.destination;
    return c;
  }
};

/// Minimal Network spy: counts calls, answers nothing.
class DeadNetwork final : public Network {
 public:
  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t>, Nanos) override {
    ++transacts;
    return std::nullopt;
  }
  int transacts = 0;
};

TEST(TransactBatch, DefaultFallbackTransactsEachDatagramInOrder) {
  DeadNetwork network;
  std::vector<Datagram> batch(5);
  const auto replies = network.transact_batch(batch);
  EXPECT_EQ(network.transacts, 5);
  ASSERT_EQ(replies.size(), 5u);
  for (const auto& reply : replies) EXPECT_FALSE(reply.has_value());
}

TEST(TransactBatch, SimulatedBatchMatchesSerialTransacts) {
  // Same topology, same seed: a batched window and a serial loop must
  // produce identical replies datagram-for-datagram.
  Rig serial(topo::simplest_diamond());
  Rig batched(topo::simplest_diamond());

  // Craft the windows through engines so the datagrams are identical.
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 8; ++f) requests.push_back({f, 1});

  std::vector<TraceProbeResult> one_by_one;
  one_by_one.reserve(requests.size());
  for (const auto& r : requests) {
    one_by_one.push_back(serial.engine.probe(r.flow, r.ttl));
  }
  const auto window = batched.engine.probe_batch(requests);

  ASSERT_EQ(window.size(), one_by_one.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].answered, one_by_one[i].answered);
    EXPECT_EQ(window[i].responder, one_by_one[i].responder);
    EXPECT_EQ(window[i].from_destination, one_by_one[i].from_destination);
  }
  EXPECT_EQ(batched.engine.packets_sent(), serial.engine.packets_sent());
}

TEST(ProbeBatch, AnswersWholeWindowAndAccountsPackets) {
  Rig rig(topo::simplest_diamond());
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 12; ++f) requests.push_back({f, 1});
  const auto results = rig.engine.probe_batch(requests);
  ASSERT_EQ(results.size(), 12u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.answered);
    EXPECT_FALSE(r.from_destination);
    EXPECT_GT(r.recv_time, r.send_time);
  }
  EXPECT_EQ(rig.engine.packets_sent(), 12u);
  EXPECT_EQ(rig.engine.trace_probes_sent(), 12u);
}

TEST(ProbeBatch, ReachesDestinationAtHighTtl) {
  Rig rig(topo::simplest_diamond());
  const auto results =
      rig.engine.probe_batch(std::vector<ProbeEngine::ProbeRequest>{
          {0, 1}, {0, 10}});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0].from_destination);
  EXPECT_TRUE(results[1].from_destination);
  EXPECT_EQ(results[1].responder, rig.truth.destination);
}

TEST(ProbeBatch, RetriesOnlyUnansweredSlots) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 1.0;  // nothing ever answers
  Rig rig(topo::simplest_diamond(), sim);
  const auto results = rig.engine.probe_batch(
      std::vector<ProbeEngine::ProbeRequest>{{0, 1}, {1, 1}, {2, 1}});
  for (const auto& r : results) EXPECT_FALSE(r.answered);
  // 3 probes x (1 initial + 2 retries).
  EXPECT_EQ(rig.engine.packets_sent(), 9u);
}

TEST(ProbeBatch, RetryRoundsRecoverFromLoss) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 0.4;
  Rig rig(topo::simplest_diamond(), sim, 5);
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 100; ++f) requests.push_back({f, 1});
  const auto results = rig.engine.probe_batch(requests);
  int answered = 0;
  for (const auto& r : results) {
    if (r.answered) ++answered;
  }
  // P(3 losses in a row) = 0.064: nearly everything answered, and the
  // retry rounds sent strictly fewer datagrams than 3x the window.
  EXPECT_GT(answered, 85);
  EXPECT_LT(rig.engine.packets_sent(), 300u);
  EXPECT_GT(rig.engine.packets_sent(), 100u);
}

TEST(ProbeBatch, EmptyWindowIsANoOp) {
  Rig rig(topo::simplest_diamond());
  const auto t0 = rig.engine.now();
  const auto results =
      rig.engine.probe_batch(std::vector<ProbeEngine::ProbeRequest>{});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(rig.engine.packets_sent(), 0u);
  EXPECT_EQ(rig.engine.now(), t0);  // no datagram, no virtual time
}

TEST(ProbeBatch, DuplicateRequestsGetIndependentProbes) {
  Rig rig(topo::simplest_diamond());
  const auto results = rig.engine.probe_batch(
      std::vector<ProbeEngine::ProbeRequest>{{3, 1}, {3, 1}, {3, 1}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(rig.engine.packets_sent(), 3u);  // one datagram per slot
  std::set<std::uint16_t> probe_ids;
  for (const auto& r : results) {
    EXPECT_TRUE(r.answered);
    probe_ids.insert(r.probe_ip_id);
    // Same flow, same ttl: per-flow load balancing pins the path.
    EXPECT_EQ(r.responder, results[0].responder);
  }
  EXPECT_EQ(probe_ids.size(), 3u);  // distinct wire datagrams
}

TEST(ProbeBatch, WindowWhereEveryProbeExhaustsMaxRetries) {
  DeadNetwork network;
  ProbeEngine::Config config;
  config.source = net::Ipv4Address(192, 168, 0, 1);
  config.destination = net::Ipv4Address(10, 0, 0, 1);
  config.max_retries = 2;
  ProbeEngine engine(network, config);
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 4; ++f) requests.push_back({f, 2});
  const auto results = engine.probe_batch(requests);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.answered);
    EXPECT_EQ(r.attempts, 3);  // 1 initial + max_retries, all spent
  }
  // Every slot stays in every retry round: 4 probes x 3 attempts, sent
  // as 3 shrinking-to-nothing windows of 4.
  EXPECT_EQ(engine.packets_sent(), 12u);
  EXPECT_EQ(network.transacts, 12);
}

TEST(ProbeBatch, AttemptsCountRetriesActuallyUsed) {
  Rig rig(topo::simplest_diamond());
  const auto results = rig.engine.probe_batch(
      std::vector<ProbeEngine::ProbeRequest>{{0, 1}, {1, 1}});
  for (const auto& r : results) EXPECT_EQ(r.attempts, 1);
}

TEST(PingBatch, AnswersSweepWithEchoEvidence) {
  Rig rig(topo::simplest_diamond());
  // Ping every interface of the diamond in one sweep.
  std::vector<net::Ipv4Address> targets;
  const auto& g = rig.truth.graph;
  for (topo::VertexId v = 0; v < g.vertex_count(); ++v) {
    const auto addr = g.vertex(v).addr;
    if (!addr.is_unspecified() && addr != rig.truth.source) {
      targets.push_back(addr);
    }
  }
  const auto echoes = rig.engine.ping_batch(targets);
  ASSERT_EQ(echoes.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_TRUE(echoes[i].answered);
    EXPECT_EQ(echoes[i].responder, targets[i]);
    EXPECT_EQ(echoes[i].attempts, 1);
  }
  EXPECT_EQ(rig.engine.echo_probes_sent(), targets.size());
}

TEST(PingBatch, EmptySweepIsANoOp) {
  Rig rig(topo::simplest_diamond());
  EXPECT_TRUE(rig.engine.ping_batch({}).empty());
  EXPECT_EQ(rig.engine.packets_sent(), 0u);
}

TEST(ProbeBatch, VirtualClockAdvancesToSlowestReply) {
  Rig rig(topo::simplest_diamond());
  const auto t0 = rig.engine.now();
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 6; ++f) requests.push_back({f, 1});
  const auto results = rig.engine.probe_batch(requests);
  Nanos slowest = 0;
  for (const auto& r : results) slowest = std::max(slowest, r.recv_time);
  EXPECT_GT(rig.engine.now(), t0);
  EXPECT_EQ(rig.engine.now(), slowest);
}

TEST(ThrottledNetwork, ChargesOneTokenPerProbe) {
  topo::GroundTruth truth = core::plain_ground_truth(topo::simplest_diamond());
  fakeroute::Simulator simulator(truth, {}, 1);
  SimulatedNetwork network(simulator);
  orchestrator::RateLimiter limiter(1e9, 1 << 20);  // effectively unlimited
  orchestrator::ThrottledNetwork throttled(network, limiter);

  ProbeEngine::Config config;
  config.source = truth.source;
  config.destination = truth.destination;
  ProbeEngine engine(throttled, config);
  (void)engine.probe(0, 1);
  (void)engine.probe(1, 1);
  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 5; ++f) requests.push_back({f, 1});
  (void)engine.probe_batch(requests);
  EXPECT_EQ(limiter.granted(), engine.packets_sent());
}

TEST(ThrottledNetwork, ThrottledTraceIsBitIdenticalToUnthrottled) {
  const auto truth = core::plain_ground_truth(topo::max_length_2_diamond());
  const auto plain = core::run_trace(truth, core::Algorithm::kMda, {}, {}, 3);

  fakeroute::Simulator simulator(truth, {}, 3);
  SimulatedNetwork network(simulator);
  orchestrator::RateLimiter limiter(1e9, 1 << 20);
  orchestrator::ThrottledNetwork throttled(network, limiter);
  const auto gated = core::run_trace_with_network(
      throttled, truth.source, truth.destination, core::Algorithm::kMda, {});

  EXPECT_EQ(gated.packets, plain.packets);
  EXPECT_TRUE(topo::same_topology(gated.graph, plain.graph));
}

TEST(BlockingLatencyNetwork, PassesRepliesThroughUnchanged) {
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  const auto plain = core::run_trace(truth, core::Algorithm::kMdaLite, {}, {},
                                     7);

  fakeroute::Simulator simulator(truth, {}, 7);
  SimulatedNetwork network(simulator);
  orchestrator::BlockingLatencyNetwork::Config config;
  config.scale = 1e-7;  // sleep ~0: the test only checks transparency
  orchestrator::BlockingLatencyNetwork blocking(network, config);
  const auto slowed = core::run_trace_with_network(
      blocking, truth.source, truth.destination, core::Algorithm::kMdaLite,
      {});

  EXPECT_EQ(slowed.packets, plain.packets);
  EXPECT_TRUE(topo::same_topology(slowed.graph, plain.graph));
}

}  // namespace
}  // namespace mmlpt::probe
