// The raw-syscall io_uring shim under IoUringNetwork: capability probe,
// SQE hand-out / SQ-full behaviour, flush/reap round trips, and the
// buffer-lifetime discipline the ASan/UBSan CI leg leans on (the
// __kernel_timespec an IORING_OP_TIMEOUT points at must stay alive until
// its CQE is reaped — these tests keep such ops in flight across several
// reaps). Hosts without io_uring (pre-5.1 kernel, seccomp lockdown,
// missing uapi header) SKIP visibly.
#include <gtest/gtest.h>

#include "probe/uring.h"

#include <cerrno>
#include <vector>

#if MMLPT_HAS_IO_URING
#include <cstring>
#include <memory>

#include <linux/time_types.h>
#endif

namespace mmlpt::probe::uring {
namespace {

TEST(UringShim, CapabilityProbeIsCallableEverywhere) {
  // Must be safe to call (and cached) on every platform, including ones
  // compiled without the uapi header.
  const bool first = kernel_supported();
  EXPECT_EQ(kernel_supported(), first);
}

#if MMLPT_HAS_IO_URING

class UringShimRing : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kernel_supported()) {
      GTEST_SKIP() << "kernel lacks io_uring (io_uring_setup failed)";
    }
  }
};

/// Prepare an IORING_OP_TIMEOUT that fires after `ns` nanoseconds. The
/// timespec is heap-pinned by the caller and must outlive the CQE.
void prep_timeout(Sqe* sqe, __kernel_timespec* ts, std::uint64_t ns,
                  std::uint64_t user_data) {
  ts->tv_sec = static_cast<long long>(ns / 1'000'000'000ULL);
  ts->tv_nsec = static_cast<long long>(ns % 1'000'000'000ULL);
  sqe->opcode = IORING_OP_TIMEOUT;
  sqe->fd = -1;
  sqe->addr = reinterpret_cast<std::uint64_t>(ts);
  sqe->len = 1;
  sqe->off = 0;  // count=0: pure timer, fires with -ETIME
  sqe->user_data = user_data;
}

TEST_F(UringShimRing, TimeoutRoundTripsThroughFlushAndReap) {
  Ring ring(8);
  ASSERT_GE(ring.fd(), 0);

  auto ts = std::make_unique<__kernel_timespec>();
  Sqe* sqe = ring.get_sqe();
  ASSERT_NE(sqe, nullptr);
  prep_timeout(sqe, ts.get(), 1'000'000 /* 1 ms */, /*user_data=*/42);
  EXPECT_EQ(ring.unflushed(), 1u);

  EXPECT_EQ(ring.flush(/*wait_for=*/1), 1u);
  EXPECT_EQ(ring.unflushed(), 0u);

  std::vector<Cqe> cqes;
  ASSERT_GE(ring.reap(cqes), 1u);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].user_data, 42u);
  EXPECT_EQ(cqes[0].res, -ETIME);  // a pure timer expires with ETIME
}

TEST_F(UringShimRing, TryGetSqeReportsFullQueueInsteadOfOverwriting) {
  Ring ring(4);
  std::vector<Sqe*> granted;
  // Drain the SQ without flushing: exactly `entries` slots, then null.
  for (int i = 0; i < 64; ++i) {
    Sqe* sqe = ring.try_get_sqe();
    if (sqe == nullptr) break;
    granted.push_back(sqe);
  }
  EXPECT_GE(granted.size(), 4u);
  EXPECT_EQ(ring.try_get_sqe(), nullptr);
  EXPECT_EQ(ring.unflushed(), granted.size());

  // The granted slots are distinct (no silent aliasing when full).
  for (std::size_t i = 0; i < granted.size(); ++i) {
    for (std::size_t j = i + 1; j < granted.size(); ++j) {
      EXPECT_NE(granted[i], granted[j]);
    }
  }

  // Make the prepared SQEs harmless no-ops and drain them, proving the
  // ring recovers from a full SQ.
  auto timespecs = std::make_unique<__kernel_timespec[]>(granted.size());
  for (std::size_t i = 0; i < granted.size(); ++i) {
    prep_timeout(granted[i], &timespecs[i], 100'000, /*user_data=*/i);
  }
  EXPECT_EQ(ring.flush(), granted.size());

  // Space again after the flush. A zero-initialised SQE is a NOP, so
  // publish it too and expect its CQE alongside the timers'.
  Sqe* nop = ring.try_get_sqe();
  ASSERT_NE(nop, nullptr);
  nop->user_data = 999;

  std::vector<Cqe> cqes;
  while (cqes.size() < granted.size() + 1) {
    ring.flush(/*wait_for=*/1);
    ring.reap(cqes);
  }
  EXPECT_EQ(cqes.size(), granted.size() + 1);
  bool nop_seen = false;
  for (const auto& cqe : cqes) {
    if (cqe.user_data == 999) {
      nop_seen = true;
      EXPECT_EQ(cqe.res, 0);  // NOP succeeds
    }
  }
  EXPECT_TRUE(nop_seen);
}

TEST_F(UringShimRing, ReapAppendsAcrossMultipleCompletions) {
  Ring ring(8);
  // Three timers with distinct deadlines and user_data; their timespecs
  // live in one heap block that stays pinned until every CQE is reaped —
  // exactly the lifetime rule IoUringNetwork's op structs follow (and
  // the pattern the ASan leg would flag if the shim used the buffers
  // after free).
  constexpr std::size_t kTimers = 3;
  auto timespecs = std::make_unique<__kernel_timespec[]>(kTimers);
  for (std::size_t i = 0; i < kTimers; ++i) {
    Sqe* sqe = ring.get_sqe();
    ASSERT_NE(sqe, nullptr);
    prep_timeout(sqe, &timespecs[i], 500'000 * (i + 1), /*user_data=*/i);
  }
  EXPECT_EQ(ring.flush(), kTimers);

  std::vector<Cqe> cqes;
  while (cqes.size() < kTimers) {
    ring.flush(/*wait_for=*/1);
    ring.reap(cqes);  // appends, never clears
  }
  ASSERT_EQ(cqes.size(), kTimers);
  bool seen[kTimers] = {};
  for (const auto& cqe : cqes) {
    ASSERT_LT(cqe.user_data, kTimers);
    EXPECT_FALSE(seen[cqe.user_data]) << "duplicate CQE";
    seen[cqe.user_data] = true;
    EXPECT_EQ(cqe.res, -ETIME);
  }
}

#else   // !MMLPT_HAS_IO_URING

TEST(UringShim, BuildsWithoutUapiHeader) {
  GTEST_SKIP() << "compiled without <linux/io_uring.h>; shim is the "
                  "not-supported stub";
}

#endif  // MMLPT_HAS_IO_URING

}  // namespace
}  // namespace mmlpt::probe::uring
