// The TransportQueue contract: submit/poll/cancel semantics of the
// default (transact-derived) queue and the SimulatedNetwork queue, the
// transact_batch compatibility shim layered on top, and the
// deadline-arithmetic helper the raw-socket receive loop leans on.
#include <gtest/gtest.h>

#include <chrono>
#include <climits>
#include <vector>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "net/packet.h"
#include "probe/engine.h"
#include "probe/raw_socket_network.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::probe {
namespace {

/// Minimal transact-only backend: counts calls, answers nothing — it
/// exercises the base class's default queue implementation.
class DeadNetwork final : public Network {
 public:
  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t>, Nanos) override {
    ++transacts;
    return std::nullopt;
  }
  int transacts = 0;
};

std::vector<Datagram> window_of(std::size_t n) {
  return std::vector<Datagram>(n);
}

TEST(TransportQueue, DefaultQueueResolvesSlotsInSubmissionOrder) {
  DeadNetwork network;
  const auto first = window_of(2);
  const auto second = window_of(3);
  network.submit(first, /*ticket=*/7);
  network.submit(second, /*ticket=*/9);
  EXPECT_EQ(network.pending(), 5u);
  EXPECT_EQ(network.transacts, 0);  // nothing sent until the poll

  const auto completions = network.poll_completions();
  EXPECT_EQ(network.transacts, 5);
  EXPECT_EQ(network.pending(), 0u);
  ASSERT_EQ(completions.size(), 5u);
  const Ticket tickets[] = {7, 7, 9, 9, 9};
  const std::size_t slots[] = {0, 1, 0, 1, 2};
  for (std::size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i].ticket, tickets[i]);
    EXPECT_EQ(completions[i].slot, slots[i]);
    EXPECT_FALSE(completions[i].reply.has_value());
    EXPECT_FALSE(completions[i].canceled);
  }
}

TEST(TransportQueue, CancelResolvesWithoutTouchingTheWire) {
  DeadNetwork network;
  const auto window = window_of(3);
  network.submit(window, /*ticket=*/1);
  network.cancel(1);
  const auto completions = network.poll_completions();
  EXPECT_EQ(network.transacts, 0);  // canceled probes never transact
  ASSERT_EQ(completions.size(), 3u);
  for (const auto& completion : completions) {
    EXPECT_TRUE(completion.canceled);
    EXPECT_FALSE(completion.reply.has_value());
  }
}

TEST(TransportQueue, CancelIsPerTicket) {
  DeadNetwork network;
  const auto doomed = window_of(2);
  const auto kept = window_of(1);
  network.submit(doomed, 1);
  network.submit(kept, 2);
  network.cancel(1);
  const auto completions = network.poll_completions();
  EXPECT_EQ(network.transacts, 1);  // only ticket 2's probe went out
  ASSERT_EQ(completions.size(), 3u);
  for (const auto& completion : completions) {
    EXPECT_EQ(completion.canceled, completion.ticket == 1);
  }
}

TEST(TransportQueue, PollWithNothingPendingReturnsEmpty) {
  DeadNetwork network;
  EXPECT_TRUE(network.poll_completions().empty());
  EXPECT_EQ(network.pending(), 0u);
}

TEST(TransportQueue, ShimReDerivesBlockingBatchSemantics) {
  DeadNetwork network;
  std::vector<Datagram> batch(5);
  const auto replies = network.transact_batch(batch);
  EXPECT_EQ(network.transacts, 5);
  ASSERT_EQ(replies.size(), 5u);
  for (const auto& reply : replies) EXPECT_FALSE(reply.has_value());
  EXPECT_EQ(network.pending(), 0u);  // the shim drains what it submits
}

/// Build a Paris probe towards the simplest-diamond world.
std::vector<std::uint8_t> udp_probe(const topo::GroundTruth& truth,
                                    std::uint16_t src_port, std::uint8_t ttl,
                                    std::uint16_t ip_id) {
  net::ProbeSpec spec;
  spec.src = truth.source;
  spec.dst = truth.destination;
  spec.src_port = src_port;
  spec.dst_port = 33434;
  spec.ttl = ttl;
  spec.ip_id = ip_id;
  return net::build_udp_probe(spec);
}

TEST(TransportQueue, SimulatedQueueMatchesSerialTransacts) {
  // Twin simulators, same seed: the queue path must hand the simulator
  // the same datagrams in the same order as a serial transact loop, so
  // the completions must be byte-identical.
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  fakeroute::Simulator serial_sim(truth, {}, 11);
  fakeroute::Simulator queued_sim(truth, {}, 11);
  SimulatedNetwork serial(serial_sim);
  SimulatedNetwork queued(queued_sim);

  std::vector<Datagram> window;
  for (std::uint16_t f = 0; f < 6; ++f) {
    window.push_back(
        Datagram{udp_probe(truth, static_cast<std::uint16_t>(33434 + f), 2,
                           static_cast<std::uint16_t>(f + 1)),
                 1'000'000ULL * (f + 1)});
  }

  queued.submit(window, /*ticket=*/3);
  EXPECT_EQ(queued.pending(), window.size());
  const auto completions = queued.poll_completions();
  EXPECT_EQ(queued.pending(), 0u);
  ASSERT_EQ(completions.size(), window.size());
  for (std::size_t i = 0; i < window.size(); ++i) {
    const auto reply = serial.transact(window[i].bytes, window[i].at);
    EXPECT_EQ(completions[i].ticket, 3u);
    EXPECT_EQ(completions[i].slot, i);
    ASSERT_EQ(completions[i].reply.has_value(), reply.has_value());
    if (reply) {
      EXPECT_EQ(completions[i].reply->datagram, reply->datagram);
      EXPECT_EQ(completions[i].reply->rtt, reply->rtt);
    }
  }
}

TEST(TransportQueue, EngineProbeBatchRidesTheQueue) {
  // The engine submits one ticket per retry round and drains it; on a
  // lossless world a window resolves in one round with full accounting.
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  fakeroute::Simulator simulator(truth, {}, 1);
  SimulatedNetwork network(simulator);
  ProbeEngine::Config config;
  config.source = truth.source;
  config.destination = truth.destination;
  ProbeEngine engine(network, config);

  std::vector<ProbeEngine::ProbeRequest> requests;
  for (FlowId f = 0; f < 8; ++f) requests.push_back({f, 1});
  const auto results = engine.probe_batch(requests);
  ASSERT_EQ(results.size(), 8u);
  for (const auto& result : results) EXPECT_TRUE(result.answered);
  EXPECT_EQ(network.pending(), 0u);  // the engine drains every ticket
}

TEST(PollBudget, RoundsRemainingTimeUpToWholeMilliseconds) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now{};
  EXPECT_EQ(poll_budget_ms(now, now + std::chrono::milliseconds(5)), 5);
  // 1.5 ms remaining: waiting only 1 ms would expire the deadline early.
  EXPECT_EQ(poll_budget_ms(now, now + std::chrono::microseconds(1500)), 2);
  // A sub-millisecond remainder still waits instead of spinning at 0.
  EXPECT_EQ(poll_budget_ms(now, now + std::chrono::microseconds(200)), 1);
  EXPECT_EQ(poll_budget_ms(now, now + std::chrono::nanoseconds(1)), 1);
}

TEST(PollBudget, ExpiredDeadlinesPollZero) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now{std::chrono::hours(1)};
  EXPECT_EQ(poll_budget_ms(now, now), 0);
  EXPECT_EQ(poll_budget_ms(now, now - std::chrono::milliseconds(3)), 0);
}

TEST(PollBudget, ClampsHugeDeadlinesToIntRange) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point now{};
  EXPECT_EQ(poll_budget_ms(now, now + std::chrono::hours(24 * 365)),
            INT_MAX);
}

}  // namespace
}  // namespace mmlpt::probe
