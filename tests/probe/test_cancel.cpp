// CancelToken / CancellableNetwork: the cooperative-cancellation seam
// the daemon's client-disconnect path and the CLIs' SIGINT path both
// ride on. A recording fake inner queue verifies the decorator refuses
// new work once the token fires AND resolves the trace's in-flight
// tickets through the inner cancel() before aborting — an abandoned
// trace must stop spending probes, not drain its deadlines.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "probe/cancel.h"

namespace mmlpt::probe {
namespace {

/// Recording inner queue: holds every submitted slot pending until
/// cancel() resolves it, and logs which tickets the decorator canceled.
class RecordingNetwork final : public Network {
 public:
  [[nodiscard]] std::optional<Received> transact(
      std::span<const std::uint8_t>, Nanos) override {
    ++transacts;
    return std::nullopt;
  }

  void submit(std::span<const Datagram> window, Ticket ticket,
              const SubmitOptions&) override {
    for (std::size_t slot = 0; slot < window.size(); ++slot) {
      pending_.push_back({ticket, slot});
    }
  }
  using Network::submit;

  [[nodiscard]] std::vector<Completion> poll_completions() override {
    // Only canceled slots ever resolve — this backend never answers, so
    // a trace abandoned here would otherwise hang on its deadlines.
    std::vector<Completion> out;
    auto it = pending_.begin();
    while (it != pending_.end()) {
      if (it->canceled) {
        out.push_back({it->ticket, it->slot, std::nullopt, true});
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  void cancel(Ticket ticket) override {
    canceled_tickets.push_back(ticket);
    for (auto& slot : pending_) {
      if (slot.ticket == ticket) slot.canceled = true;
    }
  }

  [[nodiscard]] std::size_t pending() const override {
    return pending_.size();
  }

  int transacts = 0;
  std::vector<Ticket> canceled_tickets;

 private:
  struct PendingSlot {
    Ticket ticket = 0;
    std::size_t slot = 0;
    bool canceled = false;
  };
  std::vector<PendingSlot> pending_;
};

std::vector<Datagram> window_of(std::size_t slots) {
  std::vector<Datagram> window(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    window[i].bytes = {static_cast<std::uint8_t>(i)};
  }
  return window;
}

TEST(CancelToken, IsAOneWayLatch) {
  CancelToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
}

TEST(CancellableNetwork, ForwardsUntouchedWhileTokenIsQuiet) {
  RecordingNetwork inner;
  CancelToken token;
  CancellableNetwork network(inner, token);

  const auto window = window_of(3);
  network.submit(window, 7);
  EXPECT_EQ(network.pending(), 3u);

  inner.cancel(7);  // resolve via the backend, not the decorator
  const auto completions = network.poll_completions();
  EXPECT_EQ(completions.size(), 3u);
  EXPECT_EQ(network.pending(), 0u);
  EXPECT_EQ(network.tickets_canceled(), 0u);

  const std::vector<std::uint8_t> probe{1, 2, 3};
  (void)network.transact(probe, 0);
  EXPECT_EQ(inner.transacts, 1);
}

TEST(CancellableNetwork, RefusesTransactAndSubmitOnceFired) {
  RecordingNetwork inner;
  CancelToken token;
  CancellableNetwork network(inner, token);
  token.request();

  const std::vector<std::uint8_t> probe{1};
  EXPECT_THROW((void)network.transact(probe, 0), CanceledError);
  const auto window = window_of(1);
  EXPECT_THROW(network.submit(window, 1), CanceledError);
  // Nothing reached the backend: nothing to cancel, nothing pending.
  EXPECT_EQ(inner.transacts, 0);
  EXPECT_EQ(inner.pending(), 0u);
  EXPECT_TRUE(inner.canceled_tickets.empty());
}

TEST(CancellableNetwork, AbortResolvesInFlightTicketsThroughInnerCancel) {
  RecordingNetwork inner;
  CancelToken token;
  CancellableNetwork network(inner, token);

  const auto first = window_of(4);
  const auto second = window_of(2);
  network.submit(first, 11);
  network.submit(second, 22);
  ASSERT_EQ(inner.pending(), 6u);

  // Fire mid-trace: the next poll must cancel BOTH in-flight tickets
  // through the inner queue, drain the completions, and only then throw.
  token.request();
  EXPECT_THROW((void)network.poll_completions(), CanceledError);
  EXPECT_EQ(network.tickets_canceled(), 2u);
  EXPECT_EQ(inner.canceled_tickets.size(), 2u);
  EXPECT_EQ(inner.pending(), 0u) << "abort must leave the backend clean";
}

TEST(CancellableNetwork, FullyResolvedTicketsAreNotReCanceled) {
  RecordingNetwork inner;
  CancelToken token;
  CancellableNetwork network(inner, token);

  const auto window = window_of(2);
  network.submit(window, 5);
  inner.cancel(5);  // backend resolves the ticket on its own
  EXPECT_EQ(network.poll_completions().size(), 2u);
  inner.canceled_tickets.clear();

  // The decorator saw ticket 5 fully resolve, so the abort path has
  // nothing left to cancel.
  token.request();
  EXPECT_THROW((void)network.poll_completions(), CanceledError);
  EXPECT_EQ(network.tickets_canceled(), 0u);
  EXPECT_TRUE(inner.canceled_tickets.empty());
}

TEST(CancellableNetwork, EveryPollAfterAbortKeepsThrowing) {
  RecordingNetwork inner;
  CancelToken token;
  CancellableNetwork network(inner, token);
  token.request();
  EXPECT_THROW((void)network.poll_completions(), CanceledError);
  EXPECT_THROW((void)network.poll_completions(), CanceledError);
}

}  // namespace
}  // namespace mmlpt::probe
