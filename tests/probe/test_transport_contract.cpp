// Backend-conformance suite: one contract, every transport. The
// TransportQueue promises — each submitted slot resolves exactly once
// (reply, unanswered or canceled), poll_completions() blocks until at
// least one pending slot resolves and returns empty only when nothing is
// pending, per-ticket deadlines expire unanswered slots, duplicate
// probes resolve distinct slots, EINTR never wedges the receive loop —
// are exercised against SimulatedNetwork, RawSocketNetwork (real kernel
// loopback: a UDP probe at a closed port draws an ICMP port-unreachable,
// a bound-but-unread UDP socket is a blackhole) and IoUringNetwork.
// The raw backends need CAP_NET_RAW and the ring backend a kernel with
// io_uring; when the environment lacks either, the leg SKIPS visibly
// instead of silently passing.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <netinet/in.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "net/packet.h"
#include "probe/io_uring_network.h"
#include "probe/raw_socket_network.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::probe {
namespace {

/// One transport under test. `blackhole` selects whether probes built by
/// probe() will draw replies (false) or vanish on the wire (true) — for
/// the simulator that is a lossy world, for the loopback backends it is
/// the destination port (closed port replies, a bound-but-unread UDP
/// socket swallows).
class TransportHarness {
 public:
  virtual ~TransportHarness() = default;
  /// Prepare a fresh backend; empty return = ready, otherwise the skip
  /// reason (missing privilege / kernel capability).
  [[nodiscard]] virtual std::string setup(bool blackhole) = 0;
  [[nodiscard]] virtual Network& network() = 0;
  /// A well-formed IPv4 UDP Paris probe, flow-distinguished by `flow`
  /// and per-probe-discriminated by `ip_id`.
  [[nodiscard]] virtual std::vector<std::uint8_t> probe(
      std::uint16_t flow, std::uint16_t ip_id) = 0;
};

class SimulatedHarness final : public TransportHarness {
 public:
  std::string setup(bool blackhole) override {
    truth_ = core::plain_ground_truth(topo::simplest_diamond());
    fakeroute::SimConfig config;
    if (blackhole) config.loss_prob = 1.0;  // every reply vanishes
    simulator_ = std::make_unique<fakeroute::Simulator>(truth_, config, 7);
    network_ = std::make_unique<SimulatedNetwork>(*simulator_);
    return "";
  }
  Network& network() override { return *network_; }
  std::vector<std::uint8_t> probe(std::uint16_t flow,
                                  std::uint16_t ip_id) override {
    net::ProbeSpec spec;
    spec.src = truth_.source;
    spec.dst = truth_.destination;
    spec.src_port = static_cast<std::uint16_t>(33434 + flow);
    spec.dst_port = 33434;
    spec.ttl = 2;
    spec.ip_id = ip_id;
    return net::build_udp_probe(spec);
  }

 private:
  topo::GroundTruth truth_;
  std::unique_ptr<fakeroute::Simulator> simulator_;
  std::unique_ptr<SimulatedNetwork> network_;
};

/// Shared loopback plumbing for the two raw backends: probes travel
/// 127.0.0.1 -> 127.0.0.1 (loopback ICMP generation is not rate-limited
/// by Linux). The blackhole mode binds a UDP socket and never reads it:
/// delivered datagrams are consumed without any ICMP.
class LoopbackHarness : public TransportHarness {
 public:
  ~LoopbackHarness() override {
    if (sink_fd_ >= 0) ::close(sink_fd_);
  }

  std::string setup(bool blackhole) override {
    if (blackhole) {
      sink_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
      if (sink_fd_ < 0) return "cannot open UDP blackhole socket";
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = 0;
      if (::bind(sink_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        return "cannot bind UDP blackhole socket";
      }
      socklen_t len = sizeof(addr);
      ::getsockname(sink_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
      dst_port_ = ntohs(addr.sin_port);
    } else {
      // A high port with nothing listening: the kernel answers each UDP
      // datagram with ICMP destination-unreachable (port).
      dst_port_ = 48879;
    }
    return make_network();
  }

  std::vector<std::uint8_t> probe(std::uint16_t flow,
                                  std::uint16_t ip_id) override {
    net::ProbeSpec spec;
    spec.src = net::IpAddress::parse_or_throw("127.0.0.1");
    spec.dst = net::IpAddress::parse_or_throw("127.0.0.1");
    spec.src_port = static_cast<std::uint16_t>(40000 + flow);
    spec.dst_port = dst_port_;
    spec.ttl = 64;
    spec.ip_id = ip_id;
    return net::build_udp_probe(spec);
  }

 protected:
  /// Construct the backend; empty return = ready, else the skip reason.
  [[nodiscard]] virtual std::string make_network() = 0;

  std::chrono::milliseconds reply_timeout_{2000};

 private:
  int sink_fd_ = -1;
  std::uint16_t dst_port_ = 0;
};

class RawSocketHarness final : public LoopbackHarness {
 public:
  Network& network() override { return *network_; }
  [[nodiscard]] RawSocketNetwork& raw() { return *network_; }

 protected:
  std::string make_network() override {
    RawSocketNetwork::Config config;
    config.reply_timeout = reply_timeout_;
    try {
      network_ = std::make_unique<RawSocketNetwork>(config);
    } catch (const SystemError& e) {
      return std::string("raw sockets unavailable (needs CAP_NET_RAW): ") +
             e.what();
    }
    return "";
  }

 private:
  std::unique_ptr<RawSocketNetwork> network_;
};

class IoUringHarness final : public LoopbackHarness {
 public:
  Network& network() override { return *network_; }

 protected:
  std::string make_network() override {
    if (!IoUringNetwork::supported()) {
      return "kernel lacks io_uring (io_uring_setup capability probe "
             "failed) — poll fallback covers this host";
    }
    IoUringNetwork::Config config;
    config.reply_timeout = reply_timeout_;
    try {
      network_ = std::make_unique<IoUringNetwork>(config);
    } catch (const SystemError& e) {
      return std::string("io_uring backend unavailable: ") + e.what();
    }
    return "";
  }

 private:
  std::unique_ptr<IoUringNetwork> network_;
};

struct BackendParam {
  const char* name;
  std::unique_ptr<TransportHarness> (*make)();
};

class TransportContract : public ::testing::TestWithParam<BackendParam> {
 protected:
  /// Build the harness in the requested mode or SKIP with its reason.
  void setup(bool blackhole) {
    harness_ = GetParam().make();
    const auto reason = harness_->setup(blackhole);
    if (!reason.empty()) GTEST_SKIP() << reason;
  }

  /// Poll until every submitted slot of `expected` (ticket -> slots) has
  /// resolved, asserting the exactly-once contract along the way. Output
  /// parameter because ASSERT_* needs a void-returning function.
  void drain_all(Network& network, std::size_t expected,
                 std::vector<Completion>& all) {
    std::map<std::pair<Ticket, std::size_t>, int> seen;
    while (all.size() < expected) {
      ASSERT_GT(network.pending(), 0u)
          << "pending() hit 0 with slots still unresolved";
      auto batch = network.poll_completions();
      ASSERT_FALSE(batch.empty())
          << "poll_completions returned empty with slots pending";
      for (auto& completion : batch) {
        ++seen[{completion.ticket, completion.slot}];
        all.push_back(std::move(completion));
      }
    }
    for (const auto& [key, count] : seen) {
      EXPECT_EQ(count, 1) << "slot resolved " << count << " times (ticket "
                          << key.first << ", slot " << key.second << ")";
    }
    EXPECT_EQ(network.pending(), 0u);
    EXPECT_TRUE(network.poll_completions().empty());
  }

  std::vector<Datagram> window(std::size_t n, std::uint16_t flow_base = 0) {
    std::vector<Datagram> datagrams;
    for (std::size_t i = 0; i < n; ++i) {
      datagrams.push_back(Datagram{
          harness_->probe(static_cast<std::uint16_t>(flow_base + i),
                          static_cast<std::uint16_t>(flow_base + i + 1)),
          static_cast<Nanos>(i + 1) * 1'000'000});
    }
    return datagrams;
  }

  std::unique_ptr<TransportHarness> harness_;
};

TEST_P(TransportContract, EverySlotResolvesExactlyOnceWithReplies) {
  setup(/*blackhole=*/false);
  auto& network = harness_->network();
  const auto probes = window(6);
  network.submit(probes, /*ticket=*/21);
  EXPECT_EQ(network.pending(), probes.size());

  std::vector<Completion> completions;
  drain_all(network, probes.size(), completions);
  std::size_t answered = 0;
  for (const auto& completion : completions) {
    EXPECT_EQ(completion.ticket, 21u);
    EXPECT_LT(completion.slot, probes.size());
    EXPECT_FALSE(completion.canceled);
    if (completion.reply) {
      ++answered;
      EXPECT_FALSE(completion.reply->datagram.empty());
    }
  }
  // Loopback and the lossless simulator both answer everything.
  EXPECT_EQ(answered, probes.size());
}

TEST_P(TransportContract, DeadlineExpiresBlackholedSlotsUnanswered) {
  setup(/*blackhole=*/true);
  auto& network = harness_->network();
  const auto probes = window(3);
  SubmitOptions options;
  options.deadline = 150'000'000;  // 150 ms, well under reply_timeout
  const auto start = std::chrono::steady_clock::now();
  network.submit(probes, /*ticket=*/5, options);
  std::vector<Completion> completions;
  drain_all(network, probes.size(), completions);
  const auto waited = std::chrono::steady_clock::now() - start;
  for (const auto& completion : completions) {
    EXPECT_EQ(completion.ticket, 5u);
    EXPECT_FALSE(completion.reply.has_value());
    EXPECT_FALSE(completion.canceled);
  }
  // The expiry must come from the per-ticket deadline, not the (much
  // longer) config reply timeout.
  EXPECT_LT(waited, std::chrono::milliseconds(1500));
}

TEST_P(TransportContract, CancelInFlightResolvesEverySlot) {
  setup(/*blackhole=*/true);
  auto& network = harness_->network();
  const auto doomed = window(2, /*flow_base=*/0);
  const auto kept = window(2, /*flow_base=*/8);
  SubmitOptions options;
  options.deadline = 200'000'000;
  network.submit(doomed, /*ticket=*/1, options);
  network.submit(kept, /*ticket=*/2, options);
  network.cancel(1);

  std::vector<Completion> completions;
  drain_all(network, doomed.size() + kept.size(), completions);
  for (const auto& completion : completions) {
    EXPECT_FALSE(completion.reply.has_value());
    if (completion.canceled) {
      EXPECT_EQ(completion.ticket, 1u);
    }
    // The SimulatedNetwork resolves at submit, so ticket 1's slots may
    // legally surface resolved-not-canceled; ticket 2 must never be
    // canceled.
    if (completion.ticket == 2u) {
      EXPECT_FALSE(completion.canceled);
    }
  }
}

TEST_P(TransportContract, DuplicateProbesResolveDistinctSlots) {
  setup(/*blackhole=*/false);
  auto& network = harness_->network();
  // Two byte-identical probes in one window: two replies quote the same
  // flow AND the same per-probe id, and attribution must spread them
  // over both slots instead of resolving one slot twice.
  std::vector<Datagram> probes;
  probes.push_back(Datagram{harness_->probe(0, 1), 1'000'000});
  probes.push_back(Datagram{harness_->probe(0, 1), 2'000'000});
  network.submit(probes, /*ticket=*/3);
  std::vector<Completion> completions;
  drain_all(network, probes.size(), completions);
  EXPECT_EQ(completions.size(), 2u);
}

TEST_P(TransportContract, PollSurvivesEintrStorm) {
  setup(/*blackhole=*/true);
  auto& network = harness_->network();

  // A 5 ms SIGALRM drumbeat without SA_RESTART: every blocking wait in
  // the receive loop keeps getting interrupted and must re-derive its
  // remaining budget instead of wedging or throwing.
  struct sigaction action{};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGALRM, &action, &previous), 0);
  itimerval timer{};
  timer.it_interval.tv_usec = 5'000;
  timer.it_value.tv_usec = 5'000;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &timer, nullptr), 0);

  const auto probes = window(2);
  SubmitOptions options;
  options.deadline = 120'000'000;  // 120 ms: ~24 interruptions
  network.submit(probes, /*ticket=*/11, options);
  std::vector<Completion> completions;
  drain_all(network, probes.size(), completions);

  itimerval off{};
  ::setitimer(ITIMER_REAL, &off, nullptr);
  ::sigaction(SIGALRM, &previous, nullptr);

  for (const auto& completion : completions) {
    EXPECT_FALSE(completion.reply.has_value());
  }
}

TEST_P(TransportContract, TransactBackToBackReusesTicketSafely) {
  setup(/*blackhole=*/false);
  auto& network = harness_->network();
  // transact() reuses ticket 0 on every call — contract-legal, the
  // previous window fully resolved. The ring backend reaps a settled
  // ticket's in-kernel deadline lazily, so the canceled timeout's CQE
  // can surface AFTER the ticket is reused; it must be dropped as stale
  // instead of expiring the fresh window (regression: every transact
  // after the first resolved unanswered).
  for (std::uint16_t round = 0; round < 3; ++round) {
    const auto bytes =
        harness_->probe(round, static_cast<std::uint16_t>(round + 1));
    const auto reply = network.transact(bytes, /*now=*/1);
    ASSERT_TRUE(reply.has_value()) << "round " << round;
    EXPECT_FALSE(reply->datagram.empty());
  }
}

TEST_P(TransportContract, SubmitReusingASettledTicketDrawsFreshReplies) {
  setup(/*blackhole=*/false);
  auto& network = harness_->network();
  // Same stale-deadline hazard as above, through the queue path: a
  // ticket whose window settled may be reused by the next submit while
  // its canceled timeout op is still in flight in the ring.
  for (std::uint16_t round = 0; round < 2; ++round) {
    const auto probes = window(3, static_cast<std::uint16_t>(round * 4));
    network.submit(probes, /*ticket=*/9);
    std::vector<Completion> completions;
    drain_all(network, probes.size(), completions);
    for (const auto& completion : completions) {
      EXPECT_EQ(completion.ticket, 9u);
      EXPECT_TRUE(completion.reply.has_value()) << "round " << round;
    }
  }
}

TEST_P(TransportContract, PollWithNothingPendingReturnsEmpty) {
  setup(/*blackhole=*/false);
  auto& network = harness_->network();
  EXPECT_EQ(network.pending(), 0u);
  EXPECT_TRUE(network.poll_completions().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportContract,
    ::testing::Values(
        BackendParam{"Simulated",
                     +[]() -> std::unique_ptr<TransportHarness> {
                       return std::make_unique<SimulatedHarness>();
                     }},
        BackendParam{"RawSocket",
                     +[]() -> std::unique_ptr<TransportHarness> {
                       return std::make_unique<RawSocketHarness>();
                     }},
        BackendParam{"IoUring",
                     +[]() -> std::unique_ptr<TransportHarness> {
                       return std::make_unique<IoUringHarness>();
                     }}),
    [](const ::testing::TestParamInfo<BackendParam>& info) {
      return info.param.name;
    });

// ---- poll-backend syscall-shape regressions (loopback only) ------------

TEST(RawSocketSyscallShape, WindowGoesOutInOneSendBatch) {
  RawSocketHarness harness;
  const auto reason = harness.setup(/*blackhole=*/false);
  if (!reason.empty()) GTEST_SKIP() << reason;
  auto& network = harness.raw();

  std::vector<Datagram> probes;
  for (std::uint16_t i = 0; i < 16; ++i) {
    probes.push_back(Datagram{
        harness.probe(i, static_cast<std::uint16_t>(i + 1)),
        static_cast<Nanos>(i + 1) * 1'000'000});
  }
  network.submit(probes, /*ticket=*/1);
  EXPECT_EQ(network.stats().send_datagrams, probes.size());
  // sendmmsg ships the whole window; allow a partial-send retry but not
  // a per-datagram loop.
  EXPECT_LE(network.stats().sendmmsg_calls, 2u);

  while (network.pending() > 0) {
    if (network.poll_completions().empty()) break;
  }
  EXPECT_GE(network.stats().recv_datagrams, probes.size());
}

TEST(RawSocketSyscallShape, BudgetRecomputedPerWakeupNotPerDatagram) {
  RawSocketHarness harness;
  const auto reason = harness.setup(/*blackhole=*/false);
  if (!reason.empty()) GTEST_SKIP() << reason;
  auto& network = harness.raw();

  std::vector<Datagram> probes;
  for (std::uint16_t i = 0; i < 24; ++i) {
    probes.push_back(Datagram{
        harness.probe(i, static_cast<std::uint16_t>(i + 1)),
        static_cast<Nanos>(i + 1) * 1'000'000});
  }
  network.submit(probes, /*ticket=*/1);
  while (network.pending() > 0) {
    if (network.poll_completions().empty()) break;
  }
  const auto& stats = network.stats();
  EXPECT_GE(stats.recv_datagrams, probes.size());
  // The regression this guards: the old loop re-derived the poll budget
  // for every received datagram. The discipline is once per wakeup —
  // exactly one recompute per poll() call, however many datagrams the
  // recvmmsg drain scoops up.
  EXPECT_EQ(stats.budget_recomputes, stats.poll_calls);
}

}  // namespace
}  // namespace mmlpt::probe
