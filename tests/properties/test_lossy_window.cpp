// Lossy-path window semantics (ROADMAP item): under the responsive model
// probe counts are window-invariant, but when the Fakeroute loss model
// drops replies, serial probing (window 1) retries a loss immediately
// while windowed probing (window 32) retries in rounds — the RNG stream
// meets a different probe order, so individual traces legitimately
// diverge. This property suite BOUNDS that divergence:
//
//   - per run: |p32 - p1| / p1 stays under 2.0 (observed worst over 400
//     sampled (loss, world, seed) triples: ~1.2 at 15% loss; typical runs
//     sit near 0);
//   - in aggregate over many runs, the two schedules cost the same
//     probes: the summed ratio stays within [0.80, 1.25] (observed:
//     within +-6% across loss rates 5%..30%).
//
// The observed numbers are documented in README.md ("Lossy paths and the
// window" section); tighten the asserted bounds only together with it.
#include <gtest/gtest.h>

#include <cmath>

#include "core/validation.h"
#include "topology/generator.h"

namespace mmlpt {
namespace {

struct LossyOutcome {
  std::uint64_t window1 = 0;
  std::uint64_t window32 = 0;
};

LossyOutcome run_pair(const topo::GroundTruth& route, double loss,
                      std::uint64_t seed) {
  fakeroute::SimConfig sim;
  sim.loss_prob = loss;
  core::TraceConfig serial;
  serial.window = 1;
  core::TraceConfig windowed;
  windowed.window = 32;
  LossyOutcome outcome;
  outcome.window1 =
      core::run_trace(route, core::Algorithm::kMdaLite, serial, sim, seed)
          .packets;
  outcome.window32 =
      core::run_trace(route, core::Algorithm::kMdaLite, windowed, sim, seed)
          .packets;
  return outcome;
}

TEST(LossyWindowProperty, DivergenceIsBoundedPerRunAndInAggregate) {
  for (const double loss : {0.10, 0.30}) {
    double sum1 = 0.0;
    double sum32 = 0.0;
    for (std::uint64_t world = 0; world < 4; ++world) {
      topo::RouteGenerator gen(topo::GeneratorConfig{}, 100 + world);
      const auto route = gen.make_route();
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const auto outcome = run_pair(route, loss, 7000 + seed);
        ASSERT_GT(outcome.window1, 0u);
        ASSERT_GT(outcome.window32, 0u);
        const auto p1 = static_cast<double>(outcome.window1);
        const auto p32 = static_cast<double>(outcome.window32);
        // Per-run bound: retry rescheduling may reroute one trace's
        // exploration, but never past 3x / below 1/3 of the serial cost.
        EXPECT_LE(std::abs(p32 - p1) / p1, 2.0)
            << "loss " << loss << " world " << world << " seed " << seed
            << ": " << outcome.window1 << " vs " << outcome.window32;
        sum1 += p1;
        sum32 += p32;
      }
    }
    // Aggregate bound: the schedules face the same loss process, so the
    // averaged probe cost agrees much more tightly than any single run.
    const double aggregate = sum32 / sum1;
    EXPECT_GE(aggregate, 0.80) << "loss " << loss;
    EXPECT_LE(aggregate, 1.25) << "loss " << loss;
  }
}

TEST(LossyWindowProperty, LosslessRunsStayExactlyInvariant) {
  // The contrast case: with loss off, the divergence is exactly zero —
  // the PR 3 invariance contract, restated against this suite's worlds.
  for (std::uint64_t world = 0; world < 3; ++world) {
    topo::RouteGenerator gen(topo::GeneratorConfig{}, 100 + world);
    const auto route = gen.make_route();
    const auto outcome = run_pair(route, /*loss=*/0.0, 4242);
    EXPECT_EQ(outcome.window1, outcome.window32) << "world " << world;
  }
}

TEST(LossyWindowProperty, HoldsOnIpv6Worlds) {
  // The bound is family-blind: same property on a v6 world.
  topo::GeneratorConfig config;
  config.family = net::Family::kIpv6;
  topo::RouteGenerator gen(config, 77);
  const auto route = gen.make_route();
  double sum1 = 0.0;
  double sum32 = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto outcome = run_pair(route, 0.15, 9000 + seed);
    const auto p1 = static_cast<double>(outcome.window1);
    const auto p32 = static_cast<double>(outcome.window32);
    EXPECT_LE(std::abs(p32 - p1) / p1, 2.0) << "seed " << seed;
    sum1 += p1;
    sum32 += p32;
  }
  const double aggregate = sum32 / sum1;
  EXPECT_GE(aggregate, 0.75);
  EXPECT_LE(aggregate, 1.30);
}

}  // namespace
}  // namespace mmlpt
