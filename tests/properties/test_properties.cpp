// Parameterised property tests: invariants swept across parameter grids.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/stopping_points.h"
#include "core/validation.h"
#include "fakeroute/failure.h"
#include "net/packet.h"
#include "topology/generator.h"
#include "topology/metrics.h"
#include "topology/reference.h"
#include "topology/serialize.h"

namespace mmlpt {
namespace {

// ---------------------------------------------------------------------
// Stopping points: for every (epsilon, k), the computed n_k is the least
// n meeting the bound, and the miss probability is monotone in n and K.
class StoppingPointBound
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(StoppingPointBound, NkIsLeastSufficientN) {
  const auto [eps, k] = GetParam();
  const auto sp = core::StoppingPoints::from_epsilon(eps);
  const int n = sp.n(k);
  EXPECT_LE(core::StoppingPoints::miss_probability(n, k + 1), eps);
  EXPECT_GT(core::StoppingPoints::miss_probability(n - 1, k + 1), eps);
}

TEST_P(StoppingPointBound, MissProbabilityMonotoneInN) {
  const auto [eps, k] = GetParam();
  (void)eps;
  double prev = 1.0;
  for (int n = 1; n <= 40; ++n) {
    const double p = core::StoppingPoints::miss_probability(n, k + 1);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StoppingPointBound,
    ::testing::Combine(::testing::Values(0.1, 0.05, 0.01, 0.004, 0.001),
                       ::testing::Values(1, 2, 3, 5, 8, 13, 21)));

// ---------------------------------------------------------------------
// Exact failure DP vs the closed form for K = 2 across stopping points,
// and vs Monte Carlo for larger K.
class FailureDp : public ::testing::TestWithParam<int> {};

TEST_P(FailureDp, MatchesClosedFormK2) {
  const int n1 = GetParam();
  const int nk[] = {0, n1, n1 + 8};
  EXPECT_NEAR(fakeroute::vertex_failure_probability(2, nk),
              std::pow(0.5, n1 - 1), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FailureDp,
                         ::testing::Values(3, 4, 6, 8, 9, 12, 16));

class FailureMonteCarlo : public ::testing::TestWithParam<int> {};

TEST_P(FailureMonteCarlo, DpAgreesWithSimulation) {
  const int K = GetParam();
  const auto sp = core::StoppingPoints::from_epsilon(0.05);
  const auto table = sp.table(K + 1);
  const double dp = fakeroute::vertex_failure_probability(K, table);

  Rng rng(static_cast<std::uint64_t>(K) * 7919);
  const int runs = 60000;
  int failures = 0;
  for (int r = 0; r < runs; ++r) {
    int found = 1;
    int sent = 1;
    while (found < K) {
      if (sent >= table[static_cast<std::size_t>(found)]) {
        ++failures;
        break;
      }
      ++sent;
      if (rng.real() <
          static_cast<double>(K - found) / static_cast<double>(K)) {
        ++found;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / runs, dp,
              0.004 + 3 * std::sqrt(dp * (1 - dp) / runs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FailureMonteCarlo,
                         ::testing::Values(2, 3, 4, 5, 6, 8));

// ---------------------------------------------------------------------
// Wire round trips: UDP probes across TTL / port / payload grids.
class ProbeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ProbeRoundTrip, FieldsSurviveSerialization) {
  const auto [ttl, port, payload] = GetParam();
  net::ProbeSpec spec;
  spec.src = net::Ipv4Address(192, 168, 3, 4);
  spec.dst = net::Ipv4Address(11, 22, 33, 44);
  spec.src_port = static_cast<std::uint16_t>(port);
  spec.ttl = static_cast<std::uint8_t>(ttl);
  spec.payload_bytes = static_cast<std::uint16_t>(payload);
  spec.ip_id = static_cast<std::uint16_t>(ttl * 131 + port);
  const auto parsed = net::parse_probe(net::build_udp_probe(spec));
  EXPECT_EQ(parsed.ip.ttl, ttl);
  EXPECT_EQ(parsed.udp.src_port, port);
  EXPECT_EQ(parsed.ip.identification, spec.ip_id);
  EXPECT_EQ(parsed.ip.total_length,
            net::kIpv4HeaderSize + net::kUdpHeaderSize + payload);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProbeRoundTrip,
    ::testing::Combine(::testing::Values(1, 32, 64, 255),
                       ::testing::Values(1024, 33434, 65535),
                       ::testing::Values(0, 12, 64)));

// ---------------------------------------------------------------------
// Reach probabilities sum to 1 per hop and serialization round-trips on
// every reference topology.
class ReferenceTopology
    : public ::testing::TestWithParam<topo::MultipathGraph (*)()> {};

TEST_P(ReferenceTopology, ProbabilitiesPartitionUnity) {
  const auto g = GetParam()();
  const auto p = g.reach_probabilities();
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    double sum = 0.0;
    for (const auto v : g.vertices_at(h)) sum += p[v];
    EXPECT_NEAR(sum, 1.0, 1e-9) << "hop " << h;
  }
}

TEST_P(ReferenceTopology, SerializationRoundTrips) {
  const auto g = GetParam()();
  EXPECT_TRUE(topo::same_topology(g, topo::deserialize(topo::serialize(g))));
}

TEST_P(ReferenceTopology, MdaDiscoversEverythingAtTightBound) {
  const auto g = GetParam()();
  core::TraceConfig config;
  config.alpha = 0.01;
  config.max_branching = 60;
  const auto truth = core::plain_ground_truth(GetParam()());
  const auto result = core::run_trace(truth, core::Algorithm::kMda, config,
                                      {}, 12345);
  EXPECT_TRUE(topo::same_topology(result.graph, g));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReferenceTopology,
    ::testing::Values(&topo::simplest_diamond, &topo::fig1_unmeshed,
                      &topo::fig1_meshed, &topo::max_length_2_diamond,
                      &topo::symmetric_diamond, &topo::asymmetric_diamond,
                      &topo::fig6_left, &topo::fig6_right));

// ---------------------------------------------------------------------
// Eq. (1): the analytic meshing-miss probability matches a Monte Carlo
// simulation of the phi-probe test on the Fig. 1 meshed diamond.
class MeshingMissPhi : public ::testing::TestWithParam<int> {};

TEST_P(MeshingMissPhi, AnalyticMatchesSimulation) {
  const int phi = GetParam();
  const auto g = topo::fig1_meshed();
  const auto analytic = topo::meshing_miss_probability(g, 1, phi);
  ASSERT_TRUE(analytic.has_value());

  Rng rng(static_cast<std::uint64_t>(phi) * 104729);
  const int runs = 40000;
  int missed = 0;
  for (int r = 0; r < runs; ++r) {
    bool detected = false;
    for (int v = 0; v < 4 && !detected; ++v) {  // four 2-successor vertices
      int first = -1;
      for (int probe = 0; probe < phi; ++probe) {
        const int exit = static_cast<int>(rng.uniform(0, 1));
        if (first < 0) {
          first = exit;
        } else if (exit != first) {
          detected = true;
          break;
        }
      }
    }
    if (!detected) ++missed;
  }
  EXPECT_NEAR(static_cast<double>(missed) / runs, *analytic,
              0.003 + 3 * std::sqrt(*analytic / runs));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MeshingMissPhi, ::testing::Values(2, 3, 4));

// ---------------------------------------------------------------------
// Generator: every seed yields structurally valid worlds whose diamonds
// have coherent metrics.
class GeneratorSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeed, RoutesAlwaysValid) {
  topo::SurveyWorld world(topo::GeneratorConfig{}, 20, GetParam());
  for (int i = 0; i < 20; ++i) {
    const auto route = world.next_route();
    route.graph.validate();
    EXPECT_EQ(route.vertex_router.size(), route.graph.vertex_count());
    for (const auto& d : topo::extract_diamonds(route.graph)) {
      const auto m = topo::compute_metrics(route.graph, d);
      EXPECT_GE(m.max_width, 2);
      EXPECT_GE(m.max_length, 2);
      EXPECT_GE(m.meshed_hop_ratio, 0.0);
      EXPECT_LE(m.meshed_hop_ratio, 1.0);
      EXPECT_EQ(m.meshed, m.meshed_hop_ratio > 0.0);
      if (m.max_width_asymmetry == 0) {
        // Uniformity is exactly zero probability difference only for
        // symmetric wiring; asymmetry zero implies uniform here because
        // the generator wires evenly when not injecting asymmetry.
        EXPECT_LE(m.max_probability_difference, 0.51);
      }
    }
  }
}

TEST_P(GeneratorSeed, RouterGroundTruthConsistent) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, GetParam());
  for (int i = 0; i < 30; ++i) {
    const auto tmpl = gen.make_diamond();
    const auto merged = tmpl.truth.router_level_graph();
    // Router-level graph never has more vertices than IP level, and the
    // endpoints survive.
    EXPECT_LE(merged.vertex_count(), tmpl.truth.graph.vertex_count());
    EXPECT_EQ(merged.hop_count(), tmpl.truth.graph.hop_count());
    EXPECT_EQ(merged.vertices_at(0).size(), 1u);
    const auto sizes = tmpl.truth.router_sizes();
    std::size_t total = 0;
    for (const auto s : sizes) total += s;
    EXPECT_EQ(total, tmpl.truth.graph.vertex_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GeneratorSeed,
                         ::testing::Values(1, 17, 4242, 99991, 123456789));

// ---------------------------------------------------------------------
// MDA-Lite discovery holds its ground across loss rates on the simplest
// diamond (retries mask moderate loss).
class LiteUnderLoss : public ::testing::TestWithParam<double> {};

TEST_P(LiteUnderLoss, MostlyFullDiscovery) {
  fakeroute::SimConfig sim;
  sim.loss_prob = GetParam();
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  int full = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto result =
        core::run_trace(truth, core::Algorithm::kMdaLite, {}, sim, seed);
    if (topo::same_topology(result.graph, truth.graph)) ++full;
  }
  EXPECT_GE(full, 9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LiteUnderLoss,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace mmlpt
