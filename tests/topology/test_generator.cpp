#include "topology/generator.h"

#include <gtest/gtest.h>

#include <set>

#include "topology/metrics.h"

namespace mmlpt::topo {
namespace {

TEST(RouteGenerator, DiamondsValidateAndMatchMetrics) {
  RouteGenerator gen(GeneratorConfig{}, 1);
  for (int i = 0; i < 200; ++i) {
    const auto d = gen.make_diamond();
    EXPECT_GE(d.metrics.max_length, 2);
    EXPECT_GE(d.metrics.max_width, 2);
    EXPECT_EQ(d.truth.graph.vertices_at(0).size(), 1u);
    EXPECT_EQ(
        d.truth.graph
            .vertices_at(static_cast<std::uint16_t>(
                d.truth.graph.hop_count() - 1))
            .size(),
        1u);
    // Router map covers every vertex.
    EXPECT_EQ(d.truth.vertex_router.size(), d.truth.graph.vertex_count());
    for (const auto r : d.truth.vertex_router) {
      EXPECT_LT(r, d.truth.routers.size());
    }
  }
}

TEST(RouteGenerator, Length2DiamondsHaveNoMeshingOrAsymmetry) {
  RouteGenerator gen(GeneratorConfig{}, 2);
  for (int i = 0; i < 200; ++i) {
    const auto d = gen.make_diamond();
    if (d.metrics.max_length == 2) {
      EXPECT_FALSE(d.metrics.meshed);
      EXPECT_EQ(d.metrics.max_width_asymmetry, 0);
      EXPECT_TRUE(d.metrics.uniform);
    }
  }
}

TEST(RouteGenerator, PopulationMarginalsRoughlyCalibrated) {
  RouteGenerator gen(GeneratorConfig{}, 3);
  int length2 = 0;
  int meshed = 0;
  int zero_asym = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto d = gen.make_diamond();
    if (d.metrics.max_length == 2) ++length2;
    if (d.metrics.meshed) ++meshed;
    if (d.metrics.max_width_asymmetry == 0) ++zero_asym;
  }
  // Paper: ~45% of distinct diamonds max length 2.
  EXPECT_NEAR(length2 / static_cast<double>(n), 0.45, 0.08);
  // Paper: 19138/60921 ~ 31% of distinct diamonds meshed.
  EXPECT_NEAR(meshed / static_cast<double>(n), 0.31, 0.10);
  // Paper: 89% of diamonds have zero width asymmetry.
  EXPECT_NEAR(zero_asym / static_cast<double>(n), 0.89, 0.08);
}

TEST(RouteGenerator, RouteEmbedsDiamondAndDestination) {
  RouteGenerator gen(GeneratorConfig{}, 4);
  const auto d = gen.make_diamond();
  const auto route = gen.make_route({&d});
  route.graph.validate();
  EXPECT_EQ(route.vertex_router.size(), route.graph.vertex_count());
  // Source at hop 0, destination at the last hop, both single.
  EXPECT_EQ(route.graph.vertices_at(0).size(), 1u);
  const auto last = static_cast<std::uint16_t>(route.graph.hop_count() - 1);
  EXPECT_EQ(route.graph.vertices_at(last).size(), 1u);
  EXPECT_EQ(route.graph.vertex(route.graph.vertices_at(0)[0]).addr,
            route.source);
  EXPECT_EQ(route.graph.vertex(route.graph.vertices_at(last)[0]).addr,
            route.destination);
  // The diamond's divergence address appears somewhere inside.
  EXPECT_NE(route.graph.find(d.truth.source), kInvalidVertex);
  // Extracted diamonds include one with the template's key.
  const auto diamonds = extract_diamonds(route.graph);
  bool found = false;
  for (const auto& dd : diamonds) {
    if (diamond_key(route.graph, dd).divergence == d.truth.source) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RouteGenerator, RouteWithTwoDiamonds) {
  RouteGenerator gen(GeneratorConfig{}, 5);
  const auto d1 = gen.make_diamond();
  const auto d2 = gen.make_diamond();
  const auto route = gen.make_route({&d1, &d2});
  route.graph.validate();
  EXPECT_GE(extract_diamonds(route.graph).size(), 2u);
}

TEST(RouteGenerator, ResolutionClassesRealizable) {
  RouteGenerator gen(GeneratorConfig{}, 6);
  int one_path_seen = 0;
  int merged_seen = 0;
  for (int i = 0; i < 300; ++i) {
    const auto d = gen.make_diamond();
    const auto merged = d.truth.router_level_graph();
    const auto ip_width = d.metrics.max_width;
    const auto merged_metrics =
        merged.vertices_at(1).size() >= 1 && merged.hop_count() >= 3
            ? compute_metrics(merged,
                              Diamond{0, static_cast<std::uint16_t>(
                                             merged.hop_count() - 1)})
            : DiamondMetrics{};
    switch (d.resolution) {
      case ResolutionClass::kNoChange:
        EXPECT_TRUE(same_topology(merged, d.truth.graph));
        break;
      case ResolutionClass::kOnePath: {
        ++one_path_seen;
        for (std::uint16_t h = 1; h + 1 < merged.hop_count(); ++h) {
          EXPECT_EQ(merged.vertices_at(h).size(), 1u);
        }
        break;
      }
      case ResolutionClass::kSingleSmallerDiamond:
      case ResolutionClass::kMultipleSmallerDiamonds:
        ++merged_seen;
        EXPECT_LE(merged_metrics.max_width, ip_width);
        break;
    }
  }
  EXPECT_GT(one_path_seen, 0);
  EXPECT_GT(merged_seen, 0);
}

TEST(SurveyWorld, ReencountersTemplates) {
  SurveyWorld world(GeneratorConfig{}, 50, 7);
  std::set<std::size_t> used;
  int routes_with_two = 0;
  for (int i = 0; i < 200; ++i) {
    const auto route = world.next_route();
    route.graph.validate();
    for (const auto t : world.last_route_templates()) used.insert(t);
    if (world.last_route_templates().size() == 2) ++routes_with_two;
  }
  // Zipf re-encounter: some templates seen many times, most at least one
  // distinct subset used.
  EXPECT_GE(used.size(), 15u);
  EXPECT_LT(used.size(), 51u);
  EXPECT_GT(routes_with_two, 20);
}

TEST(SurveyWorld, TemplateAddressesStableAcrossRoutes) {
  SurveyWorld world(GeneratorConfig{}, 3, 8);
  // Force many routes; diamond addresses must recur (same templates).
  std::set<net::IpAddress> divergences;
  for (int i = 0; i < 30; ++i) {
    const auto route = world.next_route();
    for (const auto& d : extract_diamonds(route.graph)) {
      divergences.insert(diamond_key(route.graph, d).divergence);
    }
  }
  // Only 3 templates exist, so at most 3 distinct divergence addresses
  // (plus none from prefixes which are single hops).
  EXPECT_LE(divergences.size(), 3u);
}

}  // namespace
}  // namespace mmlpt::topo
