#include "topology/reference.h"

#include <gtest/gtest.h>

namespace mmlpt::topo {
namespace {

TEST(Reference, AllValidate) {
  // Construction validates internally; additionally check shapes.
  EXPECT_EQ(simplest_diamond().hop_count(), 3);
  EXPECT_EQ(fig1_unmeshed().hop_count(), 4);
  EXPECT_EQ(fig1_meshed().hop_count(), 4);
  EXPECT_EQ(max_length_2_diamond().hop_count(), 3);
  EXPECT_EQ(symmetric_diamond().hop_count(), 5);
  EXPECT_EQ(asymmetric_diamond().hop_count(), 11);
  EXPECT_EQ(meshed_diamond().hop_count(), 7);
  EXPECT_EQ(fig6_left().hop_count(), 5);
  EXPECT_EQ(fig6_right().hop_count(), 6);
}

TEST(Reference, Fig1Widths) {
  const auto g = fig1_unmeshed();
  EXPECT_EQ(g.vertices_at(0).size(), 1u);
  EXPECT_EQ(g.vertices_at(1).size(), 4u);
  EXPECT_EQ(g.vertices_at(2).size(), 2u);
  EXPECT_EQ(g.vertices_at(3).size(), 1u);
}

TEST(Reference, Fig1EdgeStructureDiffers) {
  // Unmeshed: 1*4 + 4 + 2 = 10 edges; meshed: 4 + 8 + 2 = 14.
  EXPECT_EQ(fig1_unmeshed().edge_count(), 10u);
  EXPECT_EQ(fig1_meshed().edge_count(), 14u);
}

TEST(Reference, MaxLength2Has28Vertices) {
  const auto g = max_length_2_diamond();
  EXPECT_EQ(g.vertices_at(1).size(), 28u);
  EXPECT_EQ(g.vertex_count(), 30u);
}

TEST(Reference, MeshedDiamondWidths) {
  const auto g = meshed_diamond();
  EXPECT_EQ(g.vertices_at(1).size(), 48u);
  EXPECT_EQ(g.vertices_at(2).size(), 48u);
  EXPECT_EQ(g.vertices_at(3).size(), 24u);
  EXPECT_EQ(g.vertices_at(5).size(), 6u);
}

TEST(Reference, DistinctAddressBlocks) {
  // Different reference topologies must not share addresses, so they can
  // coexist in one survey.
  const auto a = fig1_unmeshed();
  const auto b = fig1_meshed();
  for (VertexId v = 0; v < a.vertex_count(); ++v) {
    EXPECT_EQ(b.find(a.vertex(v).addr), kInvalidVertex);
  }
}

TEST(Reference, AddressHelper) {
  EXPECT_EQ(reference_addr(3, 2, 7), net::Ipv4Address(10, 3, 2, 7));
}

}  // namespace
}  // namespace mmlpt::topo
