// GeneratorConfig::shared_prefix_hops — the fleet-from-one-site knob the
// Doubletree warm-cache gates probe against: every route leaves the same
// vantage point through the same leading routers.
#include "topology/generator.h"

#include <gtest/gtest.h>

#include <vector>

namespace mmlpt::topo {
namespace {

std::vector<GroundTruth> make_routes(const GeneratorConfig& config, int count,
                                     std::uint64_t seed) {
  RouteGenerator generator(config, seed);
  std::vector<GroundTruth> routes;
  for (int i = 0; i < count; ++i) routes.push_back(generator.make_route());
  return routes;
}

TEST(SharedPrefix, EveryRouteLeavesThroughTheSameChain) {
  GeneratorConfig config;
  config.shared_prefix_hops = 3;
  const auto routes = make_routes(config, 4, 7);

  const auto& first = routes.front();
  for (const auto& route : routes) {
    route.graph.validate();
    EXPECT_EQ(route.source, first.source);
    // The shared chain is single-interface: hops 1..3 hold exactly the
    // same address (and the same underlying router) on every route.
    for (std::uint16_t hop = 1; hop <= 3; ++hop) {
      const auto vertices = route.graph.vertices_at(hop);
      ASSERT_EQ(vertices.size(), 1u) << "hop " << hop;
      const auto reference = first.graph.vertices_at(hop);
      EXPECT_EQ(route.graph.vertex(vertices[0]).addr,
                first.graph.vertex(reference[0]).addr)
          << "hop " << hop;
      EXPECT_EQ(route.router_of(vertices[0]).id,
                first.router_of(reference[0]).id)
          << "hop " << hop;
    }
  }

  // Only the prefix is shared: the routes still go somewhere different.
  EXPECT_NE(routes[0].destination, routes[1].destination);
}

TEST(SharedPrefix, ZeroKeepsTheFullyRandomPrefix) {
  const auto routes = make_routes(GeneratorConfig{}, 2, 7);
  EXPECT_NE(routes[0].source, routes[1].source);
}

TEST(SharedPrefix, ComposesWithIpv6Worlds) {
  GeneratorConfig config;
  config.family = net::Family::kIpv6;
  config.shared_prefix_hops = 2;
  const auto routes = make_routes(config, 3, 11);
  for (const auto& route : routes) {
    EXPECT_EQ(route.source.family(), net::Family::kIpv6);
    EXPECT_EQ(route.source, routes.front().source);
  }
}

TEST(SharedPrefix, SurveyWorldRoutesShareThePrefixToo) {
  GeneratorConfig config;
  config.shared_prefix_hops = 2;
  SurveyWorld world(config, 3, 13);
  const auto a = world.next_route();
  const auto b = world.next_route();
  EXPECT_EQ(a.source, b.source);
  ASSERT_EQ(a.graph.vertices_at(1).size(), 1u);
  ASSERT_EQ(b.graph.vertices_at(1).size(), 1u);
  EXPECT_EQ(a.graph.vertex(a.graph.vertices_at(1)[0]).addr,
            b.graph.vertex(b.graph.vertices_at(1)[0]).addr);
}

}  // namespace
}  // namespace mmlpt::topo
