#include "topology/serialize.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "topology/metrics.h"
#include "topology/reference.h"

namespace mmlpt::topo {
namespace {

TEST(Serialize, RoundTripReferenceTopologies) {
  for (const auto& g : {simplest_diamond(), fig1_unmeshed(), fig1_meshed(),
                        symmetric_diamond(), fig6_right()}) {
    const auto text = serialize(g);
    const auto back = deserialize(text);
    EXPECT_TRUE(same_topology(g, back)) << text;
  }
}

TEST(Serialize, HandComposedInput) {
  const char* text = R"(# a comment
hops 3
vertex 0 10.0.0.1
vertex 1 10.0.0.2
vertex 1 10.0.0.3

vertex 2 10.0.0.4
edge 10.0.0.1 10.0.0.2
edge 10.0.0.1 10.0.0.3
edge 10.0.0.2 10.0.0.4
edge 10.0.0.3 10.0.0.4
)";
  const auto g = deserialize(text);
  EXPECT_EQ(g.hop_count(), 3);
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.max_width, 2);
}

TEST(Serialize, RejectsUnknownDirective) {
  EXPECT_THROW((void)deserialize("hops 2\nfrobnicate 1"), ParseError);
}

TEST(Serialize, RejectsVertexBeforeHops) {
  EXPECT_THROW((void)deserialize("vertex 0 10.0.0.1"), ParseError);
}

TEST(Serialize, RejectsOutOfRangeHop) {
  EXPECT_THROW((void)deserialize("hops 2\nvertex 5 10.0.0.1"), ParseError);
}

TEST(Serialize, RejectsEdgeToUnknownVertex) {
  EXPECT_THROW(
      (void)deserialize("hops 2\nvertex 0 10.0.0.1\nedge 10.0.0.1 10.0.0.9"),
      ParseError);
}

TEST(Serialize, RejectsInvalidStructure) {
  // Dangling vertex at hop 1 fails validation.
  EXPECT_THROW((void)deserialize("hops 2\nvertex 0 10.0.0.1\nvertex 1 "
                                 "10.0.0.2\nvertex 1 10.0.0.3\nedge 10.0.0.1 "
                                 "10.0.0.2"),
               TopologyError);
}

}  // namespace
}  // namespace mmlpt::topo
