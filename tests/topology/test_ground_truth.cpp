#include "topology/ground_truth.h"

#include <gtest/gtest.h>

#include "topology/reference.h"

namespace mmlpt::topo {
namespace {

/// Simplest diamond whose two middle interfaces belong to one router.
GroundTruth merged_middle_truth() {
  GroundTruth t;
  t.graph = simplest_diamond();
  // vertices: 0 = divergence, 1,2 = middle, 3 = convergence.
  t.vertex_router = {0, 1, 1, 2};
  t.routers.resize(3);
  for (std::uint32_t i = 0; i < 3; ++i) t.routers[i].id = i;
  t.source = t.graph.vertex(t.graph.vertices_at(0)[0]).addr;
  t.destination = t.graph.vertex(t.graph.vertices_at(2)[0]).addr;
  return t;
}

TEST(GroundTruth, RouterSizes) {
  const auto t = merged_middle_truth();
  const auto sizes = t.router_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(GroundTruth, RouterLevelGraphCollapsesDiamond) {
  const auto t = merged_middle_truth();
  const auto merged = t.router_level_graph();
  EXPECT_EQ(merged.hop_count(), 3);
  EXPECT_EQ(merged.vertices_at(1).size(), 1u);  // diamond resolved away
  EXPECT_EQ(merged.edge_count(), 2u);
  // Representative address is the lowest member interface.
  const auto rep = merged.vertex(merged.vertices_at(1)[0]).addr;
  EXPECT_EQ(rep, reference_addr(1, 1, 0));
}

TEST(GroundTruth, RouterLevelGraphIdentityWhenNoAliases) {
  GroundTruth t;
  t.graph = fig1_unmeshed();
  t.vertex_router.resize(t.graph.vertex_count());
  t.routers.resize(t.graph.vertex_count());
  for (VertexId v = 0; v < t.graph.vertex_count(); ++v) {
    t.vertex_router[v] = v;
    t.routers[v].id = v;
  }
  const auto merged = t.router_level_graph();
  EXPECT_TRUE(same_topology(t.graph, merged));
}

TEST(GroundTruth, AliasSetsAtHop) {
  const auto t = merged_middle_truth();
  const auto sets = t.alias_sets_at(1);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].size(), 2u);

  const auto hop0 = t.alias_sets_at(0);
  ASSERT_EQ(hop0.size(), 1u);
  EXPECT_EQ(hop0[0].size(), 1u);
}

TEST(GroundTruth, RouterOf) {
  const auto t = merged_middle_truth();
  EXPECT_EQ(t.router_of(1).id, 1u);
  EXPECT_EQ(t.router_of(3).id, 2u);
}

}  // namespace
}  // namespace mmlpt::topo
