#include "topology/graph.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "topology/reference.h"

namespace mmlpt::topo {
namespace {

MultipathGraph two_hop_chain() {
  MultipathGraph g;
  g.add_hop();
  g.add_hop();
  const auto a = g.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  const auto b = g.add_vertex(1, net::Ipv4Address(10, 0, 0, 2));
  g.add_edge(a, b);
  return g;
}

TEST(MultipathGraph, BasicConstruction) {
  const auto g = two_hop_chain();
  EXPECT_EQ(g.hop_count(), 2);
  EXPECT_EQ(g.vertex_count(), 2u);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.vertices_at(0).size(), 1u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(1), 1u);
}

TEST(MultipathGraph, DuplicateAddressRejected) {
  MultipathGraph g;
  g.add_hop();
  g.add_hop();
  (void)g.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  EXPECT_THROW((void)g.add_vertex(1, net::Ipv4Address(10, 0, 0, 1)),
               TopologyError);
}

TEST(MultipathGraph, StarsMayRepeat) {
  MultipathGraph g;
  g.add_hop();
  g.add_hop();
  EXPECT_NO_THROW((void)g.add_vertex(0, {}));
  EXPECT_NO_THROW((void)g.add_vertex(1, {}));
}

TEST(MultipathGraph, NonAdjacentEdgeRejected) {
  MultipathGraph g;
  g.add_hop();
  g.add_hop();
  g.add_hop();
  const auto a = g.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  const auto c = g.add_vertex(2, net::Ipv4Address(10, 0, 0, 3));
  EXPECT_THROW(g.add_edge(a, c), TopologyError);
  EXPECT_THROW(g.add_edge(c, a), TopologyError);
}

TEST(MultipathGraph, DuplicateEdgeIgnored) {
  auto g = two_hop_chain();
  g.add_edge(0, 1);
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(MultipathGraph, FindByAddress) {
  const auto g = two_hop_chain();
  EXPECT_EQ(g.find(net::Ipv4Address(10, 0, 0, 2)), 1u);
  EXPECT_EQ(g.find(net::Ipv4Address(9, 9, 9, 9)), kInvalidVertex);
  EXPECT_EQ(g.find_at(1, net::Ipv4Address(10, 0, 0, 2)), 1u);
  EXPECT_EQ(g.find_at(0, net::Ipv4Address(10, 0, 0, 2)), kInvalidVertex);
}

TEST(MultipathGraph, ReachProbabilitiesUniformDiamond) {
  const auto g = simplest_diamond();
  const auto p = g.reach_probabilities();
  // Divergence 1.0; two middle vertices 0.5 each; convergence 1.0.
  EXPECT_DOUBLE_EQ(p[g.vertices_at(0)[0]], 1.0);
  EXPECT_DOUBLE_EQ(p[g.vertices_at(1)[0]], 0.5);
  EXPECT_DOUBLE_EQ(p[g.vertices_at(1)[1]], 0.5);
  EXPECT_DOUBLE_EQ(p[g.vertices_at(2)[0]], 1.0);
}

TEST(MultipathGraph, ReachProbabilitiesSumToOnePerHop) {
  const auto g = symmetric_diamond();
  const auto p = g.reach_probabilities();
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    double sum = 0.0;
    for (const auto v : g.vertices_at(h)) sum += p[v];
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(MultipathGraph, ValidateCatchesDanglingVertex) {
  MultipathGraph g;
  g.add_hop();
  g.add_hop();
  (void)g.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  (void)g.add_vertex(1, net::Ipv4Address(10, 0, 0, 2));
  EXPECT_THROW(g.validate(), TopologyError);  // no edge, both dangling
}

TEST(MultipathGraph, SameTopologyIgnoresInsertionOrder) {
  MultipathGraph a;
  a.add_hop();
  a.add_hop();
  const auto a0 = a.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  const auto a1 = a.add_vertex(1, net::Ipv4Address(10, 0, 0, 2));
  const auto a2 = a.add_vertex(1, net::Ipv4Address(10, 0, 0, 3));
  a.add_edge(a0, a1);
  a.add_edge(a0, a2);

  MultipathGraph b;
  b.add_hop();
  b.add_hop();
  const auto b0 = b.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  const auto b2 = b.add_vertex(1, net::Ipv4Address(10, 0, 0, 3));
  const auto b1 = b.add_vertex(1, net::Ipv4Address(10, 0, 0, 2));
  b.add_edge(b0, b2);
  b.add_edge(b0, b1);

  EXPECT_TRUE(same_topology(a, b));
}

TEST(MultipathGraph, SameTopologyDetectsMissingEdge) {
  const auto full = fig1_meshed();
  auto partial = fig1_unmeshed();
  EXPECT_FALSE(same_topology(full, partial));
}

TEST(MultipathGraph, CountDiscovered) {
  const auto truth = simplest_diamond();
  // A partial discovery: divergence + one middle vertex + the edge.
  MultipathGraph found;
  found.add_hop();
  found.add_hop();
  const auto d = found.add_vertex(0, reference_addr(1, 0, 0));
  const auto m = found.add_vertex(1, reference_addr(1, 1, 0));
  found.add_edge(d, m);
  const auto count = count_discovered(truth, found);
  EXPECT_EQ(count.vertices, 2u);
  EXPECT_EQ(count.edges, 1u);
}

TEST(MultipathGraph, CountDiscoveredIgnoresPhantoms) {
  const auto truth = simplest_diamond();
  MultipathGraph found;
  found.add_hop();
  (void)found.add_vertex(0, net::Ipv4Address(99, 9, 9, 9));  // not in truth
  const auto count = count_discovered(truth, found);
  EXPECT_EQ(count.vertices, 0u);
}

TEST(MultipathGraph, ToStringShowsHops) {
  const auto g = two_hop_chain();
  const auto text = g.to_string();
  EXPECT_NE(text.find("hop 0:"), std::string::npos);
  EXPECT_NE(text.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(text.find("->[10.0.0.2]"), std::string::npos);
}

}  // namespace
}  // namespace mmlpt::topo
