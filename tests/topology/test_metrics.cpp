#include "topology/metrics.h"

#include <gtest/gtest.h>

#include "topology/reference.h"

namespace mmlpt::topo {
namespace {

TEST(Metrics, SimplestDiamond) {
  const auto g = simplest_diamond();
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.max_width, 2);
  EXPECT_EQ(m.max_length, 2);
  EXPECT_EQ(m.max_width_asymmetry, 0);
  EXPECT_FALSE(m.meshed);
  EXPECT_TRUE(m.uniform);
  EXPECT_EQ(m.multi_vertex_hops, 1);
}

TEST(Metrics, Fig1UnmeshedVsMeshed) {
  const auto unmeshed = compute_metrics(fig1_unmeshed());
  EXPECT_FALSE(unmeshed.meshed);
  EXPECT_TRUE(unmeshed.uniform);
  EXPECT_EQ(unmeshed.max_width, 4);
  EXPECT_EQ(unmeshed.max_length, 3);

  const auto meshed = compute_metrics(fig1_meshed());
  EXPECT_TRUE(meshed.meshed);
  EXPECT_TRUE(meshed.uniform);  // full mesh keeps probabilities equal
  EXPECT_EQ(meshed.max_width, 4);
}

// Fig. 6 left diamond is annotated in the paper with max length 4,
// max width 5, max width asymmetry 1.
TEST(Metrics, Fig6LeftMatchesPaperAnnotations) {
  const auto g = fig6_left();
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.max_length, 4);
  EXPECT_EQ(m.max_width, 5);
  EXPECT_EQ(m.max_width_asymmetry, 1);
  EXPECT_FALSE(m.meshed);
  EXPECT_FALSE(m.uniform);
}

// Fig. 6 right diamond: ratio of meshed hops 0.4 (two of five pairs).
TEST(Metrics, Fig6RightMeshedRatio) {
  const auto g = fig6_right();
  const auto m = compute_metrics(g);
  EXPECT_EQ(m.max_length, 5);
  EXPECT_TRUE(m.meshed);
  EXPECT_DOUBLE_EQ(m.meshed_hop_ratio, 0.4);
}

TEST(Metrics, SimulationDiamondShapes) {
  const auto ml2 = compute_metrics(max_length_2_diamond());
  EXPECT_EQ(ml2.max_length, 2);
  EXPECT_EQ(ml2.max_width, 28);
  EXPECT_FALSE(ml2.meshed);
  EXPECT_TRUE(ml2.uniform);
  EXPECT_EQ(ml2.multi_vertex_hops, 1);

  const auto sym = compute_metrics(symmetric_diamond());
  EXPECT_EQ(sym.max_width, 10);
  EXPECT_EQ(sym.multi_vertex_hops, 3);
  EXPECT_FALSE(sym.meshed);
  EXPECT_TRUE(sym.uniform);
  EXPECT_EQ(sym.max_width_asymmetry, 0);

  const auto asym = compute_metrics(asymmetric_diamond());
  EXPECT_EQ(asym.max_width, 19);
  EXPECT_EQ(asym.multi_vertex_hops, 9);
  EXPECT_FALSE(asym.meshed);
  EXPECT_FALSE(asym.uniform);
  EXPECT_EQ(asym.max_width_asymmetry, 17);

  const auto mesh = compute_metrics(meshed_diamond());
  EXPECT_EQ(mesh.max_width, 48);
  EXPECT_EQ(mesh.multi_vertex_hops, 5);
  EXPECT_TRUE(mesh.meshed);
}

TEST(Metrics, ExtractDiamondsFindsBoundedSegments) {
  // Build a route: single, single, diamond(2 wide), single, single.
  MultipathGraph g;
  for (int h = 0; h < 6; ++h) g.add_hop();
  const auto v0 = g.add_vertex(0, net::Ipv4Address(10, 0, 0, 1));
  const auto v1 = g.add_vertex(1, net::Ipv4Address(10, 0, 0, 2));
  const auto v2a = g.add_vertex(2, net::Ipv4Address(10, 0, 0, 3));
  const auto v2b = g.add_vertex(2, net::Ipv4Address(10, 0, 0, 4));
  const auto v3 = g.add_vertex(3, net::Ipv4Address(10, 0, 0, 5));
  const auto v4 = g.add_vertex(4, net::Ipv4Address(10, 0, 0, 6));
  const auto v5 = g.add_vertex(5, net::Ipv4Address(10, 0, 0, 7));
  g.add_edge(v0, v1);
  g.add_edge(v1, v2a);
  g.add_edge(v1, v2b);
  g.add_edge(v2a, v3);
  g.add_edge(v2b, v3);
  g.add_edge(v3, v4);
  g.add_edge(v4, v5);

  const auto diamonds = extract_diamonds(g);
  ASSERT_EQ(diamonds.size(), 1u);
  EXPECT_EQ(diamonds[0].divergence_hop, 1);
  EXPECT_EQ(diamonds[0].convergence_hop, 3);
  EXPECT_EQ(diamonds[0].length(), 2);

  const auto key = diamond_key(g, diamonds[0]);
  EXPECT_EQ(key.divergence, net::Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(key.convergence, net::Ipv4Address(10, 0, 0, 5));
}

TEST(Metrics, ExtractDiamondsFindsMultiple) {
  // source - d1(2 hops) - mid - d2(3 hops) - dest as one route.
  MultipathGraph g;
  for (int h = 0; h < 7; ++h) g.add_hop();
  std::vector<VertexId> hop_first;
  int next = 1;
  const auto addr = [&]() { return net::Ipv4Address(10, 0, 1, next++); };
  const auto s = g.add_vertex(0, addr());
  const auto a1 = g.add_vertex(1, addr());
  const auto b1 = g.add_vertex(1, addr());
  const auto c = g.add_vertex(2, addr());
  const auto a2 = g.add_vertex(3, addr());
  const auto b2 = g.add_vertex(3, addr());
  const auto a3 = g.add_vertex(4, addr());
  const auto b3 = g.add_vertex(4, addr());
  const auto e = g.add_vertex(5, addr());
  const auto f = g.add_vertex(6, addr());
  g.add_edge(s, a1);
  g.add_edge(s, b1);
  g.add_edge(a1, c);
  g.add_edge(b1, c);
  g.add_edge(c, a2);
  g.add_edge(c, b2);
  g.add_edge(a2, a3);
  g.add_edge(b2, b3);
  g.add_edge(a3, e);
  g.add_edge(b3, e);
  g.add_edge(e, f);

  const auto diamonds = extract_diamonds(g);
  ASSERT_EQ(diamonds.size(), 2u);
  EXPECT_EQ(diamonds[0].length(), 2);
  EXPECT_EQ(diamonds[1].length(), 3);
}

TEST(Metrics, NoDiamondOnPlainPath) {
  MultipathGraph g;
  for (int h = 0; h < 4; ++h) g.add_hop();
  VertexId prev = kInvalidVertex;
  for (int h = 0; h < 4; ++h) {
    const auto v = g.add_vertex(static_cast<std::uint16_t>(h),
                                net::Ipv4Address(10, 0, 2, h + 1));
    if (h > 0) g.add_edge(prev, v);
    prev = v;
  }
  EXPECT_TRUE(extract_diamonds(g).empty());
}

TEST(Metrics, MeshingMissProbabilityEquation1) {
  // Fig. 1 meshed diamond pair (1,2): four lower vertices with out-degree
  // 2, tracing forward with phi = 2 -> (1/2)^4 = 1/16.
  const auto g = fig1_meshed();
  const auto miss = meshing_miss_probability(g, 1, 2);
  ASSERT_TRUE(miss.has_value());
  EXPECT_NEAR(*miss, 1.0 / 16.0, 1e-12);

  // phi = 3 -> (1/4)^4.
  const auto miss3 = meshing_miss_probability(g, 1, 3);
  EXPECT_NEAR(*miss3, 1.0 / 256.0, 1e-12);
}

TEST(Metrics, MeshingMissUnmeshedIsNullopt) {
  const auto g = fig1_unmeshed();
  EXPECT_FALSE(meshing_miss_probability(g, 1, 2).has_value());
}

TEST(Metrics, DiamondMeshingMissWorstPair) {
  const auto g = fig6_right();
  const auto worst = diamond_meshing_miss_probability(
      g, Diamond{0, static_cast<std::uint16_t>(g.hop_count() - 1)}, 2);
  ASSERT_TRUE(worst.has_value());
  // Ring of 3: (1/2)^3 = 0.125; ring of 4: (1/2)^4 = 0.0625. Worst 0.125.
  EXPECT_NEAR(*worst, 0.125, 1e-12);
}

TEST(Metrics, HopPairAsymmetryDirections) {
  const auto g = asymmetric_diamond();
  // Pair (1,2): widths 2 -> 19, successor counts 1 and 18 -> spread 17.
  EXPECT_EQ(hop_pair_width_asymmetry(g, 1), 17);
  // Pair (0,1): single divergence vertex -> spread 0.
  EXPECT_EQ(hop_pair_width_asymmetry(g, 0), 0);
}

}  // namespace
}  // namespace mmlpt::topo
