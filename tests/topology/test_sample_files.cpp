// The shipped sample topology files must stay loadable and keep their
// documented properties (they are user-facing example data).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/stopping_points.h"
#include "core/validation.h"
#include "fakeroute/failure.h"
#include "topology/metrics.h"
#include "topology/serialize.h"

namespace mmlpt::topo {
namespace {

MultipathGraph load(const std::string& name) {
  const std::string path = std::string(MMLPT_SOURCE_DIR) +
                           "/examples/topologies/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return deserialize(text.str());
}

TEST(SampleTopologies, SimplestMatchesDocumentedFailure) {
  const auto g = load("simplest.topo");
  EXPECT_EQ(g.hop_count(), 3);
  const auto sp = core::StoppingPoints::from_epsilon(0.05);
  EXPECT_NEAR(fakeroute::topology_failure_probability(g, sp.table(4)),
              0.03125, 1e-12);
}

TEST(SampleTopologies, DoubleDiamondHasTwoDiamonds) {
  const auto g = load("double_diamond.topo");
  const auto diamonds = extract_diamonds(g);
  ASSERT_EQ(diamonds.size(), 2u);
  EXPECT_EQ(compute_metrics(g, diamonds[0]).max_width, 2);
  EXPECT_EQ(compute_metrics(g, diamonds[1]).max_width, 3);
}

TEST(SampleTopologies, MeshedRingIsMeshedAndTriggersSwitch) {
  const auto g = load("meshed_ring.topo");
  const auto m = compute_metrics(g);
  EXPECT_TRUE(m.meshed);
  EXPECT_TRUE(m.uniform);  // ring wiring keeps probabilities equal

  const auto truth = core::plain_ground_truth(load("meshed_ring.topo"));
  int switched = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    if (core::run_trace(truth, core::Algorithm::kMdaLite, {}, {}, seed)
            .switched_to_mda) {
      ++switched;
    }
  }
  // Miss probability (1/2)^4 per Eq. 1; nearly always detected.
  EXPECT_GE(switched, 5);
}

TEST(SampleTopologies, AllTraceCleanly) {
  for (const auto* name :
       {"simplest.topo", "double_diamond.topo", "meshed_ring.topo",
        "simplest6.topo", "double_diamond6.topo"}) {
    const auto graph = load(name);
    const auto truth = core::plain_ground_truth(load(name));
    const auto result =
        core::run_trace(truth, core::Algorithm::kMda, {}, {}, 3);
    EXPECT_TRUE(result.reached_destination) << name;
    EXPECT_TRUE(same_topology(result.graph, graph)) << name;
  }
}

TEST(SampleTopologiesIpv6, SimplestMirrorsV4FailureProbability) {
  // The v6 variant is the same shape as simplest.topo, so the documented
  // exact failure probability carries over — the stopping rule is
  // family-blind.
  const auto g = load("simplest6.topo");
  EXPECT_EQ(g.hop_count(), 3);
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (const auto v : g.vertices_at(h)) {
      EXPECT_TRUE(g.vertex(v).addr.is_v6());
    }
  }
  const auto sp = core::StoppingPoints::from_epsilon(0.05);
  EXPECT_NEAR(fakeroute::topology_failure_probability(g, sp.table(4)),
              0.03125, 1e-12);
}

TEST(SampleTopologiesIpv6, DoubleDiamondHasTwoDiamonds) {
  const auto g = load("double_diamond6.topo");
  const auto diamonds = extract_diamonds(g);
  ASSERT_EQ(diamonds.size(), 2u);
  EXPECT_EQ(compute_metrics(g, diamonds[0]).max_width, 2);
  EXPECT_EQ(compute_metrics(g, diamonds[1]).max_width, 3);
}

TEST(SampleTopologiesIpv6, RoundTripsThroughSerializer) {
  // v6 literals survive serialize -> deserialize (RFC 5952 canonical
  // text both ways).
  for (const auto* name : {"simplest6.topo", "double_diamond6.topo"}) {
    const auto g = load(name);
    const auto round_tripped = deserialize(serialize(g));
    EXPECT_TRUE(same_topology(g, round_tripped)) << name;
  }
}

}  // namespace
}  // namespace mmlpt::topo
