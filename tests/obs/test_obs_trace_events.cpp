// TraceRecorder gates: Chrome trace-event JSON well-formedness (checked
// with a small in-test JSON parser — no external deps), complete/instant
// event shape, the global recorder() install/clear contract and the
// zero-overhead-when-disabled Span behaviour.
#include <cctype>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_events.h"

namespace mmlpt::obs {
namespace {

// Minimal recursive-descent JSON validator: accepts exactly the grammar
// (objects, arrays, strings with escapes, numbers, true/false/null) and
// nothing else. Returns false on trailing garbage.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') return ++pos_, true;
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character inside a string
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (peek() != *p) return false;
    }
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

class GlobalRecorderGuard {
 public:
  explicit GlobalRecorderGuard(TraceRecorder* r) { set_recorder(r); }
  ~GlobalRecorderGuard() { set_recorder(nullptr); }
};

TEST(TraceRecorder, EmptyRecorderIsValidEmptyDocument) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.event_count(), 0u);
  const std::string text = recorder.json();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceRecorder, CompleteAndInstantEventsRenderValidJson) {
  TraceRecorder recorder;
  const auto begin = TraceRecorder::Clock::now();
  recorder.complete("burst", "fleet", begin,
                    begin + std::chrono::microseconds(1500),
                    {{"probes", 64.0}, {"overlap", 2.0}});
  recorder.instant("stop_set_hit", "stopset", {{"ttl", 7.0}});
  EXPECT_EQ(recorder.event_count(), 2u);

  const std::string text = recorder.json();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"name\":\"burst\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"fleet\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\":1500"), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"probes\":64"), std::string::npos);
  EXPECT_NE(text.find("\"ttl\":7"), std::string::npos);
}

TEST(TraceRecorder, ConcurrentAppendsAllLand) {
  TraceRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.instant("tick", "test", {{"i", static_cast<double>(i)}});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.event_count(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_TRUE(JsonValidator(recorder.json()).valid());
}

TEST(GlobalRecorder, NullByDefaultAndSpanIsNoOp) {
  ASSERT_EQ(recorder(), nullptr);
  {
    Span span("ignored", "test");
    span.arg("count", 1.0);
    instant("also_ignored");
  }  // nothing to assert beyond "does not crash / does not leak"
  EXPECT_EQ(recorder(), nullptr);
}

TEST(GlobalRecorder, SpanRecordsCompleteEventWithArgs) {
  TraceRecorder recorder_instance;
  GlobalRecorderGuard guard(&recorder_instance);
  {
    Span span("window", "engine");
    span.arg("replies", 12.0);
  }
  instant("deadline", "engine", {{"ttl", 3.0}});
  EXPECT_EQ(recorder_instance.event_count(), 2u);
  const std::string text = recorder_instance.json();
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"name\":\"window\""), std::string::npos);
  EXPECT_NE(text.find("\"replies\":12"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"deadline\""), std::string::npos);
}

TEST(GlobalRecorder, SpanFinishIsIdempotent) {
  TraceRecorder recorder_instance;
  GlobalRecorderGuard guard(&recorder_instance);
  Span span("once", "test");
  span.finish();
  span.finish();          // second call: no-op
  span.arg("late", 1.0);  // after finish: dropped, not recorded
  EXPECT_EQ(recorder_instance.event_count(), 1u);
  EXPECT_EQ(recorder_instance.json().find("\"late\""), std::string::npos);
}

TEST(GlobalRecorder, ClearStopsRecording) {
  TraceRecorder recorder_instance;
  set_recorder(&recorder_instance);
  instant("before");
  set_recorder(nullptr);
  instant("after");
  EXPECT_EQ(recorder_instance.event_count(), 1u);
}

TEST(TraceRecorder, WriteProducesLoadableFile) {
  TraceRecorder recorder;
  recorder.instant("marker", "test");
  const std::string path =
      testing::TempDir() + "/mmlpt_trace_events_test.json";
  recorder.write(path);

  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  EXPECT_TRUE(JsonValidator(text).valid()) << text;
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mmlpt::obs
