// MetricsRegistry gates: idempotent registration, the striped-counter /
// histogram fast paths under heavy thread concurrency (run under TSan in
// CI), bucket boundary and overflow behaviour, Prometheus-text rendering
// (cumulative le buckets, +Inf, label escaping) and the scalar snapshot
// the CLIs' summary line is built from.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mmlpt::obs {
namespace {

TEST(MetricsRegistry, RegistrationIsIdempotentPerNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.counter("mmlpt_test_total", "help");
  Counter* b = registry.counter("mmlpt_test_total", "different help text");
  EXPECT_EQ(a, b);

  Counter* poll =
      registry.counter("mmlpt_labeled_total", "h", {{"transport", "poll"}});
  Counter* uring =
      registry.counter("mmlpt_labeled_total", "h", {{"transport", "uring"}});
  Counter* poll_again =
      registry.counter("mmlpt_labeled_total", "h", {{"transport", "poll"}});
  EXPECT_NE(poll, uring);
  EXPECT_EQ(poll, poll_again);

  Gauge* g = registry.gauge("mmlpt_test_gauge", "h");
  EXPECT_EQ(g, registry.gauge("mmlpt_test_gauge", "h"));

  Histogram* h =
      registry.histogram("mmlpt_test_seconds", "h", {0.1, 1.0, 10.0});
  EXPECT_EQ(h, registry.histogram("mmlpt_test_seconds", "h", {0.5}));
  // On a re-lookup the EXISTING bounds win.
  EXPECT_EQ(h->bounds().size(), 3u);
}

TEST(MetricsRegistry, CounterSumsStripesExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("mmlpt_sum_total", "h");
  counter->add();
  counter->add(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsRegistry, GaugeSetAddAndRecordMax) {
  MetricsRegistry registry;
  Gauge* gauge = registry.gauge("mmlpt_level", "h");
  gauge->set(7);
  EXPECT_EQ(gauge->value(), 7);
  gauge->add(-3);
  EXPECT_EQ(gauge->value(), 4);
  gauge->record_max(10);
  EXPECT_EQ(gauge->value(), 10);
  gauge->record_max(2);  // below the max: no change
  EXPECT_EQ(gauge->value(), 10);
}

TEST(MetricsRegistry, ConcurrentCountersAreExactOnceWritersQuiesce) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("mmlpt_hot_total", "h");
  Histogram* histogram =
      registry.histogram("mmlpt_hot_seconds", "h", {1.0, 2.0});
  Gauge* high_water = registry.gauge("mmlpt_hot_max", "h");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->add();
        histogram->observe(static_cast<double>(i % 3));
        high_water->record_max(t * kPerThread + i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram->count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(high_water->value(), kThreads * kPerThread - 1);
}

TEST(MetricsRegistry, ConcurrentRegistrationReturnsOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Counter* counter =
          registry.counter("mmlpt_race_total", "h", {{"k", "v"}});
      counter->add();
      seen[static_cast<std::size_t>(t)] = counter;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->value(), static_cast<std::uint64_t>(kThreads));
}

TEST(Histogram, BoundaryValuesLandInTheLowerBucket) {
  Histogram h({1.0, 2.0, 4.0});
  h.observe(1.0);  // v <= bound: boundary is inclusive
  h.observe(2.0);
  h.observe(4.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 0u);
}

TEST(Histogram, ValuesAboveEveryBoundOverflowToInf) {
  Histogram h({1.0, 2.0});
  h.observe(2.0000001);
  h.observe(1e12);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, SumTracksObservationsInNanoUnits) {
  Histogram h({1.0});
  h.observe(0.25);
  h.observe(0.5);
  EXPECT_NEAR(h.sum(), 0.75, 1e-9);
}

TEST(Render, EmitsHelpTypeAndSortedFamilies) {
  MetricsRegistry registry;
  registry.counter("mmlpt_b_total", "second family")->add(2);
  registry.counter("mmlpt_a_total", "first family")->add(1);
  const std::string text = registry.render();
  const auto a = text.find("# HELP mmlpt_a_total first family\n");
  const auto b = text.find("# HELP mmlpt_b_total second family\n");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // families sorted by name
  EXPECT_NE(text.find("# TYPE mmlpt_a_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("mmlpt_a_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("mmlpt_b_total 2\n"), std::string::npos);
}

TEST(Render, HistogramBucketsAreCumulativeWithInfSumAndCount) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("mmlpt_rtt_seconds", "h", {0.5, 1.0});
  h->observe(0.25);
  h->observe(0.75);
  h->observe(9.0);  // overflow
  const std::string text = registry.render();
  EXPECT_NE(text.find("# TYPE mmlpt_rtt_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_rtt_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_rtt_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_rtt_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mmlpt_rtt_seconds_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("mmlpt_rtt_seconds_count 3\n"), std::string::npos);
}

TEST(Render, LabeledHistogramKeepsLabelsBeforeLe) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("mmlpt_sizes", "h", {1.0},
                                    {{"transport", "poll"}});
  h->observe(1.0);
  const std::string text = registry.render();
  EXPECT_NE(
      text.find("mmlpt_sizes_bucket{transport=\"poll\",le=\"1\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("mmlpt_sizes_count{transport=\"poll\"} 1\n"),
            std::string::npos);
}

TEST(Render, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.counter("mmlpt_esc_total", "h", {{"tenant", "a\"b\\c\nd"}})
      ->add();
  const std::string text = registry.render();
  EXPECT_NE(
      text.find("mmlpt_esc_total{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"),
      std::string::npos);
}

TEST(ScalarSnapshot, ListsCountersAndGaugesSkipsHistograms) {
  MetricsRegistry registry;
  registry.counter("mmlpt_c_total", "h", {{"transport", "sim"}})->add(5);
  registry.gauge("mmlpt_g", "h")->set(-2);
  registry.histogram("mmlpt_h_seconds", "h", {1.0})->observe(0.5);
  const auto snapshot = registry.scalar_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "mmlpt_c_total{transport=\"sim\"}");
  EXPECT_EQ(snapshot[0].second, 5);
  EXPECT_EQ(snapshot[1].first, "mmlpt_g");
  EXPECT_EQ(snapshot[1].second, -2);
}

TEST(SeriesKey, UnlabeledIsBareName) {
  EXPECT_EQ(series_key("mmlpt_x_total", {}), "mmlpt_x_total");
  EXPECT_EQ(series_key("mmlpt_x_total", {{"a", "b"}, {"c", "d"}}),
            "mmlpt_x_total{a=\"b\",c=\"d\"}");
}

}  // namespace
}  // namespace mmlpt::obs
