// Pipelined fleet bursts: with pipeline_depth > 1 the hub launches a new
// merged burst while the previous burst's stragglers are still on the
// wire, and with depth 1 it reproduces the strict
// resolve-before-next-burst discipline of the original flusher. The
// simulated backends resolve at submit, so genuine overlap needs a
// backend that actually KEEPS slots in flight — GatedBackend below
// blocks poll_completions() until the test releases slots one by one,
// letting the test freeze a burst mid-flight and watch what the hub
// does with the next one.
#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "orchestrator/fleet_transport.h"

namespace mmlpt::orchestrator {
namespace {

using namespace std::chrono_literals;

/// A transport whose completions are hand-cranked by the test: submitted
/// slots stay in flight until release()d, then resolve unanswered in
/// submission order. Thread-safe because the test thread cranks it while
/// a hub wire owner polls it.
class GatedBackend final : public probe::TransportQueue {
 public:
  void submit(std::span<const probe::Datagram> window, probe::Ticket ticket,
              const probe::SubmitOptions&) override {
    const MutexLock lock(mutex_);
    for (std::size_t slot = 0; slot < window.size(); ++slot) {
      slots_.push_back({ticket, slot});
    }
    ++windows_;
    cv_.notify_all();
  }
  using probe::TransportQueue::submit;

  [[nodiscard]] std::vector<probe::Completion> poll_completions() override {
    MutexLock lock(mutex_);
    if (slots_.empty()) return {};
    while (released_ == 0) cv_.wait(mutex_);
    std::vector<probe::Completion> out;
    while (released_ > 0 && !slots_.empty()) {
      const auto [ticket, slot] = slots_.front();
      slots_.pop_front();
      --released_;
      probe::Completion completion;
      completion.ticket = ticket;
      completion.slot = slot;
      out.push_back(std::move(completion));
    }
    return out;
  }

  void cancel(probe::Ticket) override {}

  [[nodiscard]] std::size_t pending() const override {
    const MutexLock lock(mutex_);
    return slots_.size();
  }

  /// Let the next `n` in-flight slots resolve (in submission order).
  void release(std::size_t n) {
    const MutexLock lock(mutex_);
    released_ += n;
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t submitted_windows() const {
    const MutexLock lock(mutex_);
    return windows_;
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<std::pair<probe::Ticket, std::size_t>> slots_
      MMLPT_GUARDED_BY(mutex_);
  std::size_t released_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::size_t windows_ MMLPT_GUARDED_BY(mutex_) = 0;
};

std::vector<probe::Datagram> window_of(std::size_t n) {
  std::vector<probe::Datagram> window(n);
  for (std::size_t i = 0; i < n; ++i) window[i].at = (i + 1) * 1'000'000;
  return window;
}

/// Spin (with a generous ceiling) until `ready` holds; the hub has no
/// hooks to wait on, and the conditions are monotone.
template <typename Predicate>
[[nodiscard]] bool eventually(Predicate ready) {
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!ready()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(1ms);
  }
  return true;
}

/// Completion sink shared between a drain worker and the test thread's
/// eventually() polls — the cross-thread reads need the lock too.
struct DrainSink {
  mutable Mutex mutex;
  std::vector<probe::Completion> completions MMLPT_GUARDED_BY(mutex);

  [[nodiscard]] std::size_t size() const {
    const MutexLock lock(mutex);
    return completions.size();
  }
  [[nodiscard]] std::vector<probe::Completion> snapshot() const {
    const MutexLock lock(mutex);
    return completions;
  }
};

/// Drain `expect` completions from a channel on the calling thread.
void drain(probe::Network& channel, std::size_t expect, DrainSink& sink) {
  while (sink.size() < expect) {
    auto batch = channel.poll_completions();
    if (batch.empty() && channel.pending() == 0) break;
    const MutexLock lock(sink.mutex);
    for (auto& completion : batch) {
      sink.completions.push_back(std::move(completion));
    }
  }
}

TEST(PipelineDepth, DepthTwoDispatchesOverTheFirstBurstsStragglers) {
  FleetTransportHub::Config config;
  config.gather_timeout = std::chrono::milliseconds(1);
  config.pipeline_depth = 2;
  FleetTransportHub hub(config);
  GatedBackend backend_a;
  GatedBackend backend_b;
  auto channel_a = hub.open_channel(backend_a);
  auto channel_b = hub.open_channel(backend_b);

  // Tracer A commits a 2-probe window; the gather deadline stages it as
  // burst 1 and A's poll dispatches it, then blocks sweeping backend A.
  DrainSink got_a;
  std::thread worker_a([&] {
    channel_a->submit(window_of(2), /*ticket=*/100);
    drain(*channel_a, 2, got_a);
  });
  ASSERT_TRUE(eventually([&] { return backend_a.submitted_windows() == 1; }))
      << "burst 1 never reached backend A";

  // Tracer B commits its window while burst 1 is frozen mid-flight. At
  // depth 2 the hub may stage it immediately (bursts counted at stage).
  DrainSink got_b;
  std::thread worker_b([&] {
    channel_b->submit(window_of(1), /*ticket=*/200);
    drain(*channel_b, 1, got_b);
  });
  ASSERT_TRUE(eventually([&] { return hub.stats().bursts == 2; }))
      << "burst 2 was not staged over burst 1's stragglers";
  EXPECT_EQ(backend_b.submitted_windows(), 0u);  // staged, wire still busy

  // Resolve ONE of burst 1's two slots: the wire owner routes it, hands
  // the wire over, and the next owner must dispatch burst 2 even though
  // burst 1 still has a straggler in flight.
  backend_a.release(1);
  ASSERT_TRUE(eventually([&] { return backend_b.submitted_windows() == 1; }))
      << "burst 2 never dispatched while burst 1 had a straggler";
  {
    const auto stats = hub.stats();
    EXPECT_EQ(stats.overlapped_bursts, 1u);
    EXPECT_EQ(stats.max_bursts_in_flight, 2u);
  }

  // Let everything finish; every slot must resolve exactly once, on the
  // right channel.
  backend_a.release(1);
  backend_b.release(1);
  worker_a.join();
  worker_b.join();
  const auto completions_a = got_a.snapshot();
  ASSERT_EQ(completions_a.size(), 2u);
  bool slot_seen[2] = {};
  for (const auto& completion : completions_a) {
    EXPECT_EQ(completion.ticket, 100u);
    ASSERT_LT(completion.slot, 2u);
    EXPECT_FALSE(slot_seen[completion.slot]) << "slot resolved twice";
    slot_seen[completion.slot] = true;
    EXPECT_FALSE(completion.canceled);
  }
  const auto completions_b = got_b.snapshot();
  ASSERT_EQ(completions_b.size(), 1u);
  EXPECT_EQ(completions_b[0].ticket, 200u);
  EXPECT_EQ(completions_b[0].slot, 0u);
  EXPECT_EQ(channel_a->pending(), 0u);
  EXPECT_EQ(channel_b->pending(), 0u);
}

TEST(PipelineDepth, DepthOneHoldsTheNextBurstUntilTheWireIsClear) {
  FleetTransportHub::Config config;
  config.gather_timeout = std::chrono::milliseconds(1);
  config.pipeline_depth = 1;
  FleetTransportHub hub(config);
  GatedBackend backend_a;
  GatedBackend backend_b;
  auto channel_a = hub.open_channel(backend_a);
  auto channel_b = hub.open_channel(backend_b);

  DrainSink got_a;
  std::thread worker_a([&] {
    channel_a->submit(window_of(2), /*ticket=*/100);
    drain(*channel_a, 2, got_a);
  });
  ASSERT_TRUE(eventually([&] { return backend_a.submitted_windows() == 1; }));

  DrainSink got_b;
  std::thread worker_b([&] {
    channel_b->submit(window_of(1), /*ticket=*/200);
    drain(*channel_b, 1, got_b);
  });

  // Resolve half of burst 1. The straggler still holds the depth-1
  // slot: burst 2 must neither stage nor dispatch while it is on the
  // wire — the strict discipline the pre-pipelining hub enforced.
  backend_a.release(1);
  ASSERT_TRUE(eventually([&] { return got_a.size() == 1; }));
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(hub.stats().bursts, 1u);
  EXPECT_EQ(backend_b.submitted_windows(), 0u);

  // Clear the wire: only now may burst 2 go out.
  backend_a.release(1);
  ASSERT_TRUE(eventually([&] { return backend_b.submitted_windows() == 1; }));
  backend_b.release(1);
  worker_a.join();
  worker_b.join();

  const auto stats = hub.stats();
  EXPECT_EQ(stats.bursts, 2u);
  EXPECT_EQ(stats.overlapped_bursts, 0u);
  EXPECT_EQ(stats.max_bursts_in_flight, 1u);
  ASSERT_EQ(got_a.size(), 2u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_b.snapshot()[0].ticket, 200u);
}

TEST(PipelineDepth, DepthMustBePositive) {
  FleetTransportHub::Config config;
  config.pipeline_depth = 1;
  FleetTransportHub hub(config);  // 1 is the floor and must construct
  EXPECT_EQ(hub.config().pipeline_depth, 1);
}

}  // namespace
}  // namespace mmlpt::orchestrator
