#include "orchestrator/result_sink.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"

namespace mmlpt::orchestrator {
namespace {

TEST(ResultSink, WritesInOrderImmediately) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(0, "a");
  EXPECT_EQ(out.str(), "a\n");
  sink.emit(1, "b");
  EXPECT_EQ(out.str(), "a\nb\n");
  EXPECT_EQ(sink.lines_written(), 2u);
  EXPECT_EQ(sink.buffered(), 0u);
}

TEST(ResultSink, HoldsBackOutOfOrderCompletions) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(2, "c");
  sink.emit(1, "b");
  EXPECT_EQ(out.str(), "");  // nothing until index 0 lands
  EXPECT_EQ(sink.buffered(), 2u);
  sink.emit(0, "a");  // unblocks the whole contiguous prefix
  EXPECT_EQ(out.str(), "a\nb\nc\n");
  EXPECT_EQ(sink.buffered(), 0u);
  EXPECT_EQ(sink.lines_written(), 3u);
}

TEST(ResultSink, DrainsOnlyTheContiguousPrefix) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(3, "d");
  sink.emit(0, "a");
  EXPECT_EQ(out.str(), "a\n");  // 3 still waits for 1 and 2
  EXPECT_EQ(sink.buffered(), 1u);
  sink.emit(1, "b");
  sink.emit(2, "c");
  EXPECT_EQ(out.str(), "a\nb\nc\nd\n");
}

TEST(ResultSink, ConcurrentEmittersProduceOrderedOutput) {
  std::ostringstream out;
  ResultSink sink(out);
  constexpr int kLines = 200;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = w; i < kLines; i += 4) {
        sink.emit(static_cast<std::size_t>(i), std::to_string(i));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::string expected;
  for (int i = 0; i < kLines; ++i) {
    expected += std::to_string(i);
    expected += '\n';
  }
  EXPECT_EQ(out.str(), expected);
  EXPECT_EQ(sink.lines_written(), static_cast<std::size_t>(kLines));
}

/// A temp path that cleans up after itself.
struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

TEST(ResultSinkFsync, EveryCommittedLineIsDurableOnDisk) {
  TempPath temp("result_sink_fsync.jsonl");
  FdJsonlFile file(temp.path);
  ASSERT_GE(file.fd(), 0);
  ResultSink sink(file.stream(), ResultSink::Options{true, file.fd()});

  // Out-of-order emit: the drained prefix must be ON DISK (not just in a
  // userspace buffer) the moment emit() returns — read it back through
  // an independent descriptor without any flush of our own.
  sink.emit(1, "{\"index\":1}");
  sink.emit(0, "{\"index\":0}");
  {
    std::ifstream readback(temp.path);
    std::stringstream content;
    content << readback.rdbuf();
    EXPECT_EQ(content.str(), "{\"index\":0}\n{\"index\":1}\n");
  }
  sink.emit(2, "{\"index\":2}");
  std::ifstream readback(temp.path);
  std::stringstream content;
  content << readback.rdbuf();
  EXPECT_EQ(content.str(), "{\"index\":0}\n{\"index\":1}\n{\"index\":2}\n");
  EXPECT_EQ(sink.lines_written(), 3u);
}

TEST(ResultSinkFsync, WriteFailureSurfacesAsSystemError) {
  // /dev/full accepts the open but fails every write with ENOSPC — the
  // canonical long-fleet-run disk-full scenario. The sink must throw, not
  // silently drop committed lines.
  if (::access("/dev/full", W_OK) != 0) {
    GTEST_SKIP() << "/dev/full not available";
  }
  FdJsonlFile file("/dev/full");
  ResultSink sink(file.stream(), ResultSink::Options{true, file.fd()});
  EXPECT_THROW(sink.emit(0, "{\"index\":0}"), SystemError);
}

TEST(ResultSinkFsync, FsyncWithoutDescriptorStillFlushes) {
  // fd = -1: flush-only durability (no descriptor available). The lines
  // must still reach the stream immediately.
  std::ostringstream out;
  ResultSink sink(out, ResultSink::Options{true, -1});
  sink.emit(0, "a");
  EXPECT_EQ(out.str(), "a\n");
}

}  // namespace
}  // namespace mmlpt::orchestrator
