#include "orchestrator/result_sink.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mmlpt::orchestrator {
namespace {

TEST(ResultSink, WritesInOrderImmediately) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(0, "a");
  EXPECT_EQ(out.str(), "a\n");
  sink.emit(1, "b");
  EXPECT_EQ(out.str(), "a\nb\n");
  EXPECT_EQ(sink.lines_written(), 2u);
  EXPECT_EQ(sink.buffered(), 0u);
}

TEST(ResultSink, HoldsBackOutOfOrderCompletions) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(2, "c");
  sink.emit(1, "b");
  EXPECT_EQ(out.str(), "");  // nothing until index 0 lands
  EXPECT_EQ(sink.buffered(), 2u);
  sink.emit(0, "a");  // unblocks the whole contiguous prefix
  EXPECT_EQ(out.str(), "a\nb\nc\n");
  EXPECT_EQ(sink.buffered(), 0u);
  EXPECT_EQ(sink.lines_written(), 3u);
}

TEST(ResultSink, DrainsOnlyTheContiguousPrefix) {
  std::ostringstream out;
  ResultSink sink(out);
  sink.emit(3, "d");
  sink.emit(0, "a");
  EXPECT_EQ(out.str(), "a\n");  // 3 still waits for 1 and 2
  EXPECT_EQ(sink.buffered(), 1u);
  sink.emit(1, "b");
  sink.emit(2, "c");
  EXPECT_EQ(out.str(), "a\nb\nc\nd\n");
}

TEST(ResultSink, ConcurrentEmittersProduceOrderedOutput) {
  std::ostringstream out;
  ResultSink sink(out);
  constexpr int kLines = 200;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = w; i < kLines; i += 4) {
        sink.emit(static_cast<std::size_t>(i), std::to_string(i));
      }
    });
  }
  for (auto& worker : workers) worker.join();
  std::string expected;
  for (int i = 0; i < kLines; ++i) {
    expected += std::to_string(i);
    expected += '\n';
  }
  EXPECT_EQ(out.str(), expected);
  EXPECT_EQ(sink.lines_written(), static_cast<std::size_t>(kLines));
}

}  // namespace
}  // namespace mmlpt::orchestrator
