#include "orchestrator/stop_set.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mmlpt::orchestrator {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

const net::IpAddress kA(10, 0, 0, 1);
const net::IpAddress kB(10, 0, 0, 2);
const net::IpAddress kDest(10, 9, 9, 9);

TEST(SharedStopSet, FrozenEpochHidesThisRunsDiscoveries) {
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.hops.push_back({kA, 3});
  set.seed(seed);

  EXPECT_TRUE(set.contains(kA, 3));
  EXPECT_FALSE(set.contains(kA, 4));  // distance is part of the key

  // record() goes to pending: never visible to this run's queries.
  set.record(kB, 5);
  EXPECT_FALSE(set.contains(kB, 5));
  EXPECT_EQ(set.pending_hop_count(), 1u);
  EXPECT_EQ(set.visible_hop_count(), 1u);
}

TEST(SharedStopSet, RecordDeduplicatesAgainstVisibleAndItself) {
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.hops.push_back({kA, 3});
  set.seed(seed);
  set.record(kA, 3);  // already durable: not pending again
  set.record(kB, 5);
  set.record(kB, 5);
  EXPECT_EQ(set.pending_hop_count(), 1u);
  const auto delta = set.delta();
  ASSERT_EQ(delta.hops.size(), 1u);
  EXPECT_EQ(delta.hops[0], (store::HopRecord{kB, 5}));
}

TEST(SharedStopSet, DuplicateRecordsCountOnce) {
  // Regression: records_->add() used to run on EVERY record() call, so
  // mmlpt_stop_set_records_total double-counted re-recorded hops (every
  // trace crossing a shared interface reports it once). The counter's
  // contract is "discoveries recorded into the pending set", so it must
  // track pending_hop_count(), not call volume.
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.hops.push_back({kA, 3});
  set.seed(seed);
  obs::MetricsRegistry registry;
  set.instrument(registry);

  set.record(kB, 5);
  set.record(kB, 5);  // duplicate pending discovery
  set.record(kA, 3);  // already in the frozen visible epoch
  EXPECT_EQ(set.pending_hop_count(), 1u);

  std::optional<std::int64_t> counted;
  for (const auto& [name, value] : registry.scalar_snapshot()) {
    if (name == "mmlpt_stop_set_records_total") counted = value;
  }
  ASSERT_TRUE(counted.has_value());
  EXPECT_EQ(*counted, 1);
}

TEST(SharedStopSet, DestinationRecordsFollowTheSameEpochRule) {
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.destinations.push_back({kDest, {10, 200}});
  set.seed(seed);

  const auto prior = set.destination(kDest);
  ASSERT_TRUE(prior.has_value());
  EXPECT_EQ(prior->distance, 10);
  EXPECT_EQ(prior->probes, 200u);

  // A visible destination is frozen; a new one is pending-only.
  set.record_destination(kDest, {9, 100});
  EXPECT_EQ(set.destination(kDest)->probes, 200u);
  set.record_destination(kB, {4, 50});
  EXPECT_FALSE(set.destination(kB).has_value());
  const auto delta = set.delta();
  ASSERT_EQ(delta.destinations.size(), 1u);
  EXPECT_EQ(delta.destinations[0].addr, kB);
}

TEST(SharedStopSet, MidpointIsHalfTheMedianDestinationDistance) {
  SharedStopSet empty;
  EXPECT_EQ(empty.midpoint_ttl(), 0);  // no data, no adaptive start

  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.destinations.push_back({net::IpAddress(10, 0, 0, 10), {8, 1}});
  seed.destinations.push_back({net::IpAddress(10, 0, 0, 11), {12, 1}});
  seed.destinations.push_back({net::IpAddress(10, 0, 0, 12), {20, 1}});
  set.seed(seed);
  EXPECT_EQ(set.midpoint_ttl(), 6);  // median 12 / 2

  SharedStopSet shallow;
  store::TopologySnapshot shallow_seed;
  shallow_seed.destinations.push_back({kDest, {1, 1}});
  shallow.seed(shallow_seed);
  EXPECT_EQ(shallow.midpoint_ttl(), 1);  // clamped to a probeable TTL
}

TEST(SharedStopSet, UnionDigestIsOrderAndSplitInvariant) {
  // Same hops, discovered differently: all from disk vs all recorded vs
  // half and half — one digest.
  store::TopologySnapshot all;
  all.hops.push_back({kA, 1});
  all.hops.push_back({kB, 2});

  SharedStopSet from_disk;
  from_disk.seed(all);

  SharedStopSet recorded;
  recorded.record(kB, 2);
  recorded.record(kA, 1);

  SharedStopSet split;
  store::TopologySnapshot half;
  half.hops.push_back({kA, 1});
  split.seed(half);
  split.record(kB, 2);

  EXPECT_EQ(from_disk.union_digest(), recorded.union_digest());
  EXPECT_EQ(from_disk.union_digest(), split.union_digest());

  SharedStopSet different;
  different.record(kA, 2);  // same address, different distance
  different.record(kB, 2);
  EXPECT_NE(from_disk.union_digest(), different.union_digest());
}

TEST(SharedStopSet, ConcurrentRecordsAllLand) {
  SharedStopSet set;
  constexpr int kThreads = 8;
  constexpr int kRecords = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRecords; ++i) {
        set.record(net::IpAddress(10, 2, static_cast<std::uint8_t>(t),
                                  static_cast<std::uint8_t>(i)),
                   i + 1);
        set.record_destination(
            net::IpAddress(10, 3, static_cast<std::uint8_t>(t),
                           static_cast<std::uint8_t>(i)),
            {i + 1, static_cast<std::uint64_t>(i) + 1});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(set.pending_hop_count(),
            static_cast<std::size_t>(kThreads * kRecords));
  EXPECT_EQ(set.delta().destinations.size(),
            static_cast<std::size_t>(kThreads * kRecords));
}

TEST(StopSetSession, InactiveWithoutCachePath) {
  StopSetSession session("", true);
  EXPECT_FALSE(session.active());
  EXPECT_EQ(session.stop_set(), nullptr);
  core::TraceConfig config;
  session.configure(config);
  EXPECT_EQ(config.stop_set, nullptr);
  session.flush();  // no-op, no file
}

TEST(StopSetSession, PersistsDiscoveriesAcrossSessions) {
  TempPath file("stop_set_session.mtps");

  {
    StopSetSession first(file.path, /*consult=*/false);
    ASSERT_TRUE(first.active());
    core::TraceConfig config;
    first.configure(config);
    ASSERT_EQ(config.stop_set, first.stop_set());
    EXPECT_EQ(config.consulted_stop_set(), nullptr);  // record-only
    config.stop_set->record(kA, 2);
    config.stop_set->record_destination(kDest, {7, 40});
    first.flush();
  }

  StopSetSession second(file.path, /*consult=*/true);
  EXPECT_EQ(second.loaded().blocks, 1u);
  core::TraceConfig config;
  second.configure(config);
  ASSERT_NE(config.consulted_stop_set(), nullptr);
  // Last session's pending is this session's frozen visible epoch.
  EXPECT_TRUE(config.stop_set->contains(kA, 2));
  const auto prior = config.stop_set->destination(kDest);
  ASSERT_TRUE(prior.has_value());
  EXPECT_EQ(prior->probes, 40u);
  // Flushing with nothing new appends nothing.
  second.flush();
  StopSetSession third(file.path, true);
  EXPECT_EQ(third.loaded().blocks, 1u);
}

}  // namespace
}  // namespace mmlpt::orchestrator
