#include "orchestrator/rate_limiter.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace mmlpt::orchestrator {
namespace {

using Clock = RateLimiter::Clock;

/// Manually-advanced clock for deterministic token math.
struct FakeClock {
  Clock::time_point now = Clock::time_point{};
  [[nodiscard]] RateLimiter::NowFn fn() {
    return [this] { return now; };
  }
  void advance(std::chrono::nanoseconds d) { now += d; }
};

TEST(RateLimiter, StartsWithAFullBurst) {
  FakeClock clock;
  RateLimiter limiter(100.0, 8, clock.fn());
  EXPECT_TRUE(limiter.try_acquire(8));
  EXPECT_FALSE(limiter.try_acquire(1));  // bucket drained
}

TEST(RateLimiter, RefillsAtTheConfiguredRate) {
  FakeClock clock;
  RateLimiter limiter(100.0, 8, clock.fn());  // one token per 10 ms
  EXPECT_TRUE(limiter.try_acquire(8));
  clock.advance(std::chrono::milliseconds(10));
  EXPECT_TRUE(limiter.try_acquire(1));
  EXPECT_FALSE(limiter.try_acquire(1));
  clock.advance(std::chrono::milliseconds(35));
  EXPECT_TRUE(limiter.try_acquire(3));
  EXPECT_FALSE(limiter.try_acquire(1));
}

TEST(RateLimiter, BurstCapsAccrual) {
  FakeClock clock;
  RateLimiter limiter(1000.0, 4, clock.fn());
  EXPECT_TRUE(limiter.try_acquire(4));
  clock.advance(std::chrono::seconds(60));  // would be 60000 tokens
  EXPECT_TRUE(limiter.try_acquire(4));
  EXPECT_FALSE(limiter.try_acquire(1));  // capped at burst, not 60000
}

TEST(RateLimiter, TryAcquireBeyondBurstAlwaysFails) {
  FakeClock clock;
  RateLimiter limiter(100.0, 4, clock.fn());
  EXPECT_FALSE(limiter.try_acquire(5));  // can never hold 5 tokens at once
  EXPECT_TRUE(limiter.try_acquire(4));   // ...and nothing was spent above
}

TEST(RateLimiter, UnlimitedGrantsEverything) {
  RateLimiter limiter(0.0, 1);
  EXPECT_TRUE(limiter.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(limiter.try_acquire(1));
  limiter.acquire(1 << 20);  // returns immediately
}

TEST(RateLimiter, CountsGrantedTokens) {
  FakeClock clock;
  RateLimiter limiter(100.0, 8, clock.fn());
  EXPECT_TRUE(limiter.try_acquire(3));
  EXPECT_TRUE(limiter.try_acquire(2));
  EXPECT_FALSE(limiter.try_acquire(8));
  EXPECT_EQ(limiter.granted(), 5u);
}

TEST(RateLimiter, AcquireBlocksUntilTokensAccrue) {
  // Real clock: 2 kpps, burst 8. Spending 8 + 12 tokens needs ~6 ms of
  // accrual; assert the elapsed wall time reflects the wait (coarse
  // bounds — CI machines are noisy).
  RateLimiter limiter(2000.0, 8);
  const auto start = Clock::now();
  limiter.acquire(8);   // immediate: full burst
  limiter.acquire(12);  // chunked 8 + 4, waits for accrual
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - start);
  EXPECT_GE(elapsed.count(), 4);
  EXPECT_EQ(limiter.granted(), 20u);
}

TEST(RateLimiter, SharedAcrossThreadsBoundsTheTotalRate) {
  // 4 workers hammer one limiter configured for 2000 pps / burst 10.
  // In ~250 ms they can collectively win at most burst + rate * time
  // tokens, regardless of thread count.
  RateLimiter limiter(2000.0, 10);
  std::atomic<std::uint64_t> acquired{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (!stop.load()) {
        if (limiter.try_acquire(1)) {
          acquired.fetch_add(1);
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  stop.store(true);
  for (auto& worker : workers) worker.join();
  // Upper bound with generous slack for scheduling jitter: 10 burst +
  // 2000 pps * 0.4 s.
  EXPECT_LE(acquired.load(), 10u + 800u);
  EXPECT_GE(acquired.load(), 100u);  // and the fleet did make progress
}

TEST(RateLimiter, InstrumentMidFlightNeverLosesGrants) {
  // Regression: instrument() used to publish its counter pointers and
  // mirror the pre-instrument grant count WITHOUT holding mutex_, racing
  // with workers inside take_locked(). A grant landing in that window
  // could be counted twice (mirrored AND added) or hit a half-published
  // pointer. The fix moves publish + mirror under mutex_, making
  // "registry counter == granted()" an exact invariant once quiesced.
  //
  // Real clock on purpose: FakeClock cannot be advanced while workers
  // run, and an unlimited limiter skips the counting path entirely.
  RateLimiter limiter(200000.0, 64);
  ASSERT_TRUE(limiter.try_acquire(5));  // pre-instrument grants to mirror

  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (!stop.load()) {
        if (!limiter.try_acquire(1)) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  limiter.instrument(registry, "race");  // mid-flight: the regression point
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& worker : workers) worker.join();

  std::optional<std::int64_t> counted;
  for (const auto& [name, value] : registry.scalar_snapshot()) {
    if (name == "mmlpt_rate_limiter_tokens_granted_total{scope=\"race\"}") {
      counted = value;
    }
  }
  ASSERT_TRUE(counted.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*counted), limiter.granted());
  EXPECT_GE(limiter.granted(), 5u);  // the mirrored pre-instrument grants
}

}  // namespace
}  // namespace mmlpt::orchestrator
