// FleetTransportHub: merged fleet windows must change only the wire's
// burst composition — never a byte of any trace — while demultiplexing
// completions across channels (including channels sharing one backend)
// and charging the fleet limiter once per merged burst.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "core/trace_json.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "orchestrator/fleet.h"
#include "orchestrator/fleet_transport.h"
#include "orchestrator/rate_limiter.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"

namespace mmlpt::orchestrator {
namespace {

std::vector<topo::GroundTruth> make_routes(std::size_t n,
                                           std::uint64_t seed = 5) {
  topo::GeneratorConfig generator;
  topo::SurveyWorld world(generator, 16, seed);
  std::vector<topo::GroundTruth> routes;
  routes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) routes.push_back(world.next_route());
  return routes;
}

/// Trace route i over `transport_of(i)`'s stack and return its JSON.
std::vector<std::string> trace_all_merged(
    const std::vector<topo::GroundTruth>& routes, int jobs,
    FleetTransportHub::Config hub_config, RateLimiter* limiter,
    FleetTransportHub::Stats* stats_out = nullptr) {
  hub_config.limiter = limiter;
  FleetTransportHub hub(hub_config);
  FleetScheduler fleet({jobs, /*seed=*/1});
  auto traces =
      fleet.run(routes.size(), [&](WorkerContext& context) {
        const auto& route = routes[context.task_index];
        fakeroute::Simulator simulator(route, {}, 77 + context.task_index);
        probe::SimulatedNetwork network(simulator);
        const auto channel = hub.open_channel(network);
        core::TraceConfig config;
        config.window = 4;
        return core::run_trace_with_network(*channel, route.source,
                                            route.destination,
                                            core::Algorithm::kMdaLite,
                                            config);
      });
  if (stats_out) *stats_out = hub.stats();
  std::vector<std::string> json;
  json.reserve(traces.size());
  for (const auto& trace : traces) json.push_back(core::trace_to_json(trace));
  return json;
}

TEST(FleetTransport, MergedTracesAreByteIdenticalToUnmerged) {
  const auto routes = make_routes(8);
  // Unmerged baseline: plain per-trace stacks, serial.
  std::vector<std::string> baseline;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    fakeroute::Simulator simulator(routes[i], {}, 77 + i);
    probe::SimulatedNetwork network(simulator);
    core::TraceConfig config;
    config.window = 4;
    baseline.push_back(core::trace_to_json(core::run_trace_with_network(
        network, routes[i].source, routes[i].destination,
        core::Algorithm::kMdaLite, config)));
  }

  FleetTransportHub::Stats stats;
  const auto merged =
      trace_all_merged(routes, /*jobs=*/4, {}, nullptr, &stats);
  ASSERT_EQ(merged.size(), baseline.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i], baseline[i]) << "trace " << i;
  }
  EXPECT_GT(stats.bursts, 0u);
  // Every probe of every trace crossed the hub.
  EXPECT_GT(stats.probes, 0u);
}

TEST(FleetTransport, BurstsMergeWindowsOfConcurrentDestinations) {
  // All channels open before any trace starts, and the flush needs every
  // open channel blocked (or a generous deadline): the first burst must
  // merge all four destinations.
  const auto routes = make_routes(4);
  FleetTransportHub::Config config;
  config.gather_timeout = std::chrono::milliseconds(100);
  FleetTransportHub hub(config);

  std::vector<std::unique_ptr<fakeroute::Simulator>> simulators;
  std::vector<std::unique_ptr<probe::SimulatedNetwork>> networks;
  std::vector<std::unique_ptr<FleetTransportHub::Channel>> channels;
  for (const auto& route : routes) {
    simulators.push_back(std::make_unique<fakeroute::Simulator>(
        route, fakeroute::SimConfig{}, 3));
    networks.push_back(
        std::make_unique<probe::SimulatedNetwork>(*simulators.back()));
    channels.push_back(hub.open_channel(*networks.back()));
  }

  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    workers.emplace_back([&, i] {
      core::TraceConfig config_i;
      config_i.window = 4;
      (void)core::run_trace_with_network(*channels[i], routes[i].source,
                                         routes[i].destination,
                                         core::Algorithm::kMdaLite,
                                         config_i);
      // Close this trace's channel so the remaining workers' "everyone
      // is blocked" flush condition keeps firing without the deadline.
      channels[i].reset();
    });
  }
  for (auto& worker : workers) worker.join();

  const auto stats = hub.stats();
  EXPECT_GE(stats.merged_bursts, 1u);
  EXPECT_GE(stats.max_channels_in_burst, 2u);
  EXPECT_GT(stats.windows, stats.bursts);  // bursts carry several windows
}

TEST(FleetTransport, LimiterChargedExactlyOncePerProbeAcrossMergedTraces) {
  const auto routes = make_routes(6);
  RateLimiter limiter(1e9, 1 << 20);  // effectively unlimited, counts grants
  FleetTransportHub::Stats stats;
  (void)trace_all_merged(routes, /*jobs=*/3, {}, &limiter, &stats);
  // One token per probe that crossed the hub — no matter how windows
  // were gathered into bursts or how completions interleaved.
  EXPECT_EQ(limiter.granted(), stats.probes);
  EXPECT_GT(stats.probes, 0u);
}

/// Backend double shared by two channels: resolves every slot at submit
/// but hands completions back in REVERSE submission order, so correct
/// per-ticket demultiplexing is observable.
class ReversingQueue final : public probe::TransportQueue {
 public:
  void submit(std::span<const probe::Datagram> window, probe::Ticket ticket,
              const probe::SubmitOptions&) override {
    for (std::size_t slot = 0; slot < window.size(); ++slot) {
      probe::Completion completion;
      completion.ticket = ticket;
      completion.slot = slot;
      completion.reply =
          probe::Received{{}, ticket * 1000 + slot};  // recognisable rtt
      ready_.push_back(std::move(completion));
    }
  }
  [[nodiscard]] std::vector<probe::Completion> poll_completions() override {
    std::vector<probe::Completion> out(ready_.rbegin(), ready_.rend());
    ready_.clear();
    return out;
  }
  void cancel(probe::Ticket) override {}
  [[nodiscard]] std::size_t pending() const override { return ready_.size(); }

 private:
  std::vector<probe::Completion> ready_;
};

TEST(FleetTransport, SharedBackendCompletionsDemultiplexByTicket) {
  FleetTransportHub::Config config;
  config.gather_timeout = std::chrono::milliseconds(100);
  FleetTransportHub hub(config);
  ReversingQueue backend;
  auto first = hub.open_channel(backend);
  auto second = hub.open_channel(backend);

  const auto drain = [](probe::TransportQueue& queue, std::size_t slots) {
    std::vector<probe::Completion> all;
    while (all.size() < slots) {
      auto batch = queue.poll_completions();
      if (batch.empty()) {
        ADD_FAILURE() << "poll_completions returned empty mid-drain";
        break;
      }
      for (auto& completion : batch) all.push_back(std::move(completion));
    }
    return all;
  };

  std::vector<probe::Completion> got_first;
  std::vector<probe::Completion> got_second;
  std::thread worker_first([&] {
    const std::vector<probe::Datagram> window(3);
    first->submit(window, /*ticket=*/1);
    drain(*first, 3).swap(got_first);
  });
  std::thread worker_second([&] {
    const std::vector<probe::Datagram> window(2);
    second->submit(window, /*ticket=*/1);  // SAME caller ticket on purpose
    drain(*second, 2).swap(got_second);
  });
  worker_first.join();
  worker_second.join();

  // Each channel saw exactly its own slots, under its own caller ticket,
  // even though both used ticket 1 over one shared backend and the
  // backend reversed completion order.
  ASSERT_EQ(got_first.size(), 3u);
  ASSERT_EQ(got_second.size(), 2u);
  std::vector<std::uint64_t> slots_first;
  for (const auto& completion : got_first) {
    EXPECT_EQ(completion.ticket, 1u);
    ASSERT_TRUE(completion.reply.has_value());
    slots_first.push_back(completion.reply->rtt % 1000);
  }
  std::sort(slots_first.begin(), slots_first.end());
  EXPECT_EQ(slots_first, (std::vector<std::uint64_t>{0, 1, 2}));
  std::vector<std::uint64_t> slots_second;
  for (const auto& completion : got_second) {
    EXPECT_EQ(completion.ticket, 1u);
    ASSERT_TRUE(completion.reply.has_value());
    slots_second.push_back(completion.reply->rtt % 1000);
  }
  std::sort(slots_second.begin(), slots_second.end());
  EXPECT_EQ(slots_second, (std::vector<std::uint64_t>{0, 1}));
  // And the two backend tickets were distinct on the wire.
  const auto base_first = got_first.front().reply->rtt / 1000;
  const auto base_second = got_second.front().reply->rtt / 1000;
  EXPECT_NE(base_first, base_second);

  first.reset();
  second.reset();
}

TEST(FleetTransport, CancelResolvesGatheredWindowsAsCanceled) {
  FleetTransportHub::Config config;
  config.gather_timeout = std::chrono::hours(1);  // never fire on time
  FleetTransportHub hub(config);
  ReversingQueue backend;
  auto channel = hub.open_channel(backend);

  const std::vector<probe::Datagram> window(4);
  channel->submit(window, /*ticket=*/9);
  EXPECT_EQ(channel->pending(), 4u);
  channel->cancel(9);
  const auto completions = channel->poll_completions();
  ASSERT_EQ(completions.size(), 4u);
  for (const auto& completion : completions) {
    EXPECT_EQ(completion.ticket, 9u);
    EXPECT_TRUE(completion.canceled);
    EXPECT_FALSE(completion.reply.has_value());
  }
  EXPECT_EQ(channel->pending(), 0u);
  EXPECT_EQ(backend.pending(), 0u);  // the window never reached the wire
  channel.reset();
}

TEST(FleetTransport, SchedulerOwnsHubWhenMergeWindowsIsOn) {
  FleetScheduler plain({1, 1});
  EXPECT_EQ(plain.hub(), nullptr);
  FleetScheduler merged({2, 1, 0.0, 64, true});
  EXPECT_NE(merged.hub(), nullptr);
}

}  // namespace
}  // namespace mmlpt::orchestrator
