#include "orchestrator/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "orchestrator/result_sink.h"

namespace mmlpt::orchestrator {
namespace {

TEST(FleetScheduler, RunsEveryTaskExactlyOnce) {
  FleetScheduler fleet({/*jobs=*/4, /*seed=*/1});
  std::atomic<int> calls{0};
  const auto results = fleet.run(100, [&](WorkerContext& context) {
    calls.fetch_add(1);
    return context.task_index * 2;
  });
  EXPECT_EQ(calls.load(), 100);
  ASSERT_EQ(results.size(), 100u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 2);  // results land in task order
  }
}

TEST(FleetScheduler, SerialAndParallelResultsMatch) {
  const auto run_with = [](int jobs) {
    FleetScheduler fleet({jobs, /*seed=*/42});
    return fleet.run(64, [](WorkerContext& context) {
      // Task-private randomness: pure in (seed, task_index).
      std::uint64_t acc = 0;
      for (int i = 0; i < 10; ++i) acc ^= context.rng.uniform(0, 1u << 30);
      return acc;
    });
  };
  EXPECT_EQ(run_with(1), run_with(8));
}

TEST(FleetScheduler, OnResultFiresInIndexOrder) {
  FleetScheduler fleet({/*jobs=*/8, /*seed=*/1});
  std::vector<std::size_t> emitted;
  const auto results = fleet.run(
      50, [](WorkerContext& context) { return context.task_index; },
      [&](std::size_t index, std::size_t& result) {
        EXPECT_EQ(index, result);
        emitted.push_back(index);  // serialized: no lock needed
      });
  ASSERT_EQ(emitted.size(), 50u);
  for (std::size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(results.size(), 50u);
}

TEST(FleetScheduler, StreamsThroughResultSinkDeterministically) {
  const auto run_with = [](int jobs) {
    std::ostringstream out;
    {
      ResultSink sink(out);
      FleetScheduler fleet({jobs, /*seed=*/7});
      const auto results = fleet.run(
          30,
          [](WorkerContext& context) {
            return "task-" + std::to_string(context.task_index) + "-" +
                   std::to_string(context.rng.uniform(0, 999));
          },
          [&](std::size_t index, std::string& line) {
            sink.emit(index, line);
          });
      EXPECT_EQ(results.size(), 30u);
    }
    return out.str();
  };
  const auto serial = run_with(1);
  EXPECT_EQ(serial, run_with(4));
  EXPECT_EQ(serial, run_with(16));
}

TEST(FleetScheduler, WorkerRngStreamsAreTaskNotWorkerBound) {
  // With 1 task per worker vs all tasks on one worker, task i's stream
  // must be identical — the context RNG is forked by task index.
  FleetScheduler fleet({/*jobs=*/1, /*seed=*/5});
  const auto draws = fleet.run(8, [](WorkerContext& context) {
    return context.rng.uniform(0, 1u << 30);
  });
  const std::set<std::uint64_t> unique(draws.begin(), draws.end());
  EXPECT_EQ(unique.size(), draws.size());  // distinct streams per task
  FleetScheduler wide({/*jobs=*/8, /*seed=*/5});
  EXPECT_EQ(draws, wide.run(8, [](WorkerContext& context) {
    return context.rng.uniform(0, 1u << 30);
  }));
}

TEST(FleetScheduler, RunStreamingConsumesEveryResultInOrder) {
  FleetScheduler fleet({/*jobs=*/8, /*seed=*/3});
  std::vector<std::size_t> emitted;
  std::uint64_t sum = 0;
  fleet.run_streaming(
      60, [](WorkerContext& context) { return context.task_index + 1; },
      [&](std::size_t index, std::size_t& result) {
        EXPECT_EQ(result, index + 1);
        emitted.push_back(index);  // serialized: no lock needed
        sum += result;
      });
  ASSERT_EQ(emitted.size(), 60u);
  for (std::size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], i);
  EXPECT_EQ(sum, 60u * 61u / 2u);
}

TEST(FleetScheduler, PropagatesTheFirstTaskException) {
  FleetScheduler fleet({/*jobs=*/4, /*seed=*/1});
  EXPECT_THROW(
      (void)fleet.run(32,
                      [](WorkerContext& context) -> int {
                        if (context.task_index == 13) {
                          throw std::runtime_error("boom");
                        }
                        return 0;
                      }),
      std::runtime_error);
}

TEST(FleetScheduler, JobsOneNeverSpawnsThreads) {
  // The serial path runs on the calling thread, in order — observable
  // via strictly increasing task indices with no interleaving.
  FleetScheduler fleet({/*jobs=*/1, /*seed=*/1});
  std::vector<std::size_t> order;
  (void)fleet.run(20, [&](WorkerContext& context) {
    order.push_back(context.task_index);  // unsynchronized: safe iff serial
    EXPECT_EQ(context.worker_id, 0);
    return 0;
  });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(FleetScheduler, BuildsALimiterOnlyWhenRateLimited) {
  FleetScheduler unlimited({/*jobs=*/2, /*seed=*/1, /*pps=*/0.0});
  EXPECT_EQ(unlimited.limiter(), nullptr);
  FleetScheduler limited({/*jobs=*/2, /*seed=*/1, /*pps=*/100.0,
                          /*burst=*/16});
  ASSERT_NE(limited.limiter(), nullptr);
  EXPECT_DOUBLE_EQ(limited.limiter()->packets_per_second(), 100.0);
  EXPECT_EQ(limited.limiter()->burst(), 16);
  (void)limited.run(4, [](WorkerContext& context) {
    EXPECT_NE(context.limiter, nullptr);
    context.limiter->acquire(1);
    return 0;
  });
}

}  // namespace
}  // namespace mmlpt::orchestrator
