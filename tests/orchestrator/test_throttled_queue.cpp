// Decorator composition on the completion-queue seam: ThrottledNetwork
// over a TransportQueue must charge EXACTLY one limiter token per
// submitted probe, no matter how submissions and completions interleave
// across tickets — and the same exactness must survive end-to-end when
// the FleetTransportHub merges many traces' windows into shared bursts.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/validation.h"
#include "orchestrator/fleet.h"
#include "orchestrator/rate_limiter.h"
#include "orchestrator/throttled_network.h"
#include "probe/network.h"
#include "probe/simulated_network.h"
#include "survey/ip_survey.h"
#include "topology/generator.h"

namespace mmlpt::orchestrator {
namespace {

/// Transact-only inner backend (the base class's default queue buffers
/// submissions and resolves them at poll): answers nothing, counts
/// datagrams that reached the wire.
class CountingNetwork final : public probe::Network {
 public:
  [[nodiscard]] std::optional<probe::Received> transact(
      std::span<const std::uint8_t>, probe::Nanos) override {
    ++wire_datagrams;
    return std::nullopt;
  }
  std::uint64_t wire_datagrams = 0;
};

TEST(ThrottledQueue, PropertyOneTokenPerSubmittedProbe) {
  // 64 random schedules: interleave submits of random windows (several
  // in-flight tickets at once) with polls that surface completions in
  // bursts. The token count must always equal the probes submitted —
  // never re-charged at poll, never skipped under interleaving.
  Rng rng(20260729);
  for (int schedule = 0; schedule < 64; ++schedule) {
    CountingNetwork inner;
    RateLimiter limiter(1e9, 1 << 20);
    ThrottledNetwork throttled(inner, limiter);

    std::uint64_t submitted = 0;
    std::size_t unresolved = 0;
    probe::Ticket next_ticket = 1;
    const int steps = 3 + static_cast<int>(rng.index(20));
    for (int step = 0; step < steps; ++step) {
      if (rng.index(3) != 0) {  // submit, ~2/3 of steps
        const auto size = 1 + rng.index(8);
        const std::vector<probe::Datagram> window(size);
        throttled.submit(window, next_ticket++);
        submitted += size;
        unresolved += size;
        EXPECT_EQ(limiter.granted(), submitted);  // charged at submit
      } else if (unresolved > 0) {  // poll, surfacing a completion burst
        const auto completions = throttled.poll_completions();
        EXPECT_FALSE(completions.empty());
        unresolved -= completions.size();
      }
    }
    while (unresolved > 0) {
      unresolved -= throttled.poll_completions().size();
    }
    EXPECT_EQ(limiter.granted(), submitted);
    EXPECT_EQ(inner.wire_datagrams, submitted);
    EXPECT_EQ(throttled.pending(), 0u);
  }
}

TEST(ThrottledQueue, EmptyWindowCostsNothing) {
  CountingNetwork inner;
  RateLimiter limiter(1e9, 16);
  ThrottledNetwork throttled(inner, limiter);
  const std::vector<probe::Datagram> empty;
  throttled.submit(empty, 1);
  EXPECT_EQ(limiter.granted(), 0u);
}

TEST(ThrottledQueue, MergedFleetChargesMatchWireProbesExactly) {
  // End-to-end composition: a merged fleet (hub owns the limiter, one
  // acquire per burst) over real traces. Whatever way the scheduler
  // interleaved the workers' windows into bursts, tokens == wire probes.
  topo::GeneratorConfig generator;
  topo::SurveyWorld world(generator, 12, 9);
  std::vector<topo::GroundTruth> routes;
  for (int i = 0; i < 6; ++i) routes.push_back(world.next_route());

  // pps high enough to never stall the test, low enough to be "on".
  FleetScheduler fleet({/*jobs=*/3, /*seed=*/1, /*pps=*/1e8, /*burst=*/256,
                        /*merge_windows=*/true});
  ASSERT_NE(fleet.hub(), nullptr);
  ASSERT_NE(fleet.limiter(), nullptr);
  core::TraceConfig trace_config;
  trace_config.window = 4;
  const auto traces = fleet.run(routes.size(), [&](WorkerContext& context) {
    return survey::trace_route_task(routes[context.task_index],
                                    core::Algorithm::kMdaLite, trace_config,
                                    {}, 100 + context.task_index,
                                    context.limiter, context.hub);
  });
  ASSERT_EQ(traces.size(), routes.size());

  const auto stats = fleet.hub()->stats();
  EXPECT_EQ(fleet.limiter()->granted(), stats.probes);
  EXPECT_GT(stats.probes, 0u);
}

}  // namespace
}  // namespace mmlpt::orchestrator
