#include "net/checksum.h"

#include <gtest/gtest.h>

namespace mmlpt::net {
namespace {

// Classic worked example from RFC 1071 discussions: the checksum of this
// IPv4 header (checksum field zeroed) is 0xB861.
TEST(InternetChecksum, Rfc1071WorkedExample) {
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                                 0x00, 0x40, 0x11, 0x00, 0x00, 0xC0, 0xA8,
                                 0x00, 0x01, 0xC0, 0xA8, 0x00, 0xC7};
  EXPECT_EQ(internet_checksum(header), 0xB861);
}

TEST(InternetChecksum, SumWithChecksumFoldsToZero) {
  const std::uint8_t header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40,
                                 0x00, 0x40, 0x11, 0xB8, 0x61, 0xC0, 0xA8,
                                 0x00, 0x01, 0xC0, 0xA8, 0x00, 0xC7};
  EXPECT_EQ(internet_checksum(header), 0x0000);
}

TEST(InternetChecksum, EmptyIsAllOnesComplement) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t odd[] = {0x01};
  // Sum = 0x0100 -> checksum = ~0x0100 = 0xFEFF.
  EXPECT_EQ(internet_checksum(odd), 0xFEFF);
}

TEST(UdpChecksum, NeverZero) {
  // Craft a segment whose checksum would come out 0; RFC 768 requires it
  // to be transmitted as 0xFFFF. It is difficult to hand-craft; instead
  // verify the invariant on many segments.
  const Ipv4Address src(10, 0, 0, 1);
  const Ipv4Address dst(10, 0, 0, 2);
  for (std::uint16_t i = 0; i < 200; ++i) {
    const std::uint8_t segment[] = {
        static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i),
        0x82, 0x9A, 0x00, 0x08, 0x00, 0x00};
    EXPECT_NE(udp_checksum(src, dst, segment), 0);
  }
}

TEST(UdpChecksum, DependsOnPseudoHeader) {
  const std::uint8_t segment[] = {0x82, 0x9A, 0x82, 0x9B,
                                  0x00, 0x08, 0x00, 0x00};
  const auto a =
      udp_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), segment);
  const auto b =
      udp_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 3), segment);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mmlpt::net
