// Robustness: arbitrary byte soup must yield ParseError, never a crash
// or silent garbage — the property a real deployment needs when the
// Internet sends it malformed ICMP.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "net/packet.h"

namespace mmlpt::net {
namespace {

class RandomBytes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomBytes, ParseProbeNeverCrashes) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const auto size = rng.index(120);
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    try {
      (void)parse_probe(bytes);
    } catch (const ParseError&) {
      // expected for nearly all inputs
    }
  }
}

TEST_P(RandomBytes, ParseReplyNeverCrashes) {
  Rng rng(GetParam() ^ 0xABCDEF);
  for (int i = 0; i < 2000; ++i) {
    const auto size = rng.index(200);
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
    try {
      (void)parse_reply(bytes);
    } catch (const ParseError&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RandomBytes, ::testing::Values(1, 2, 3, 4));

class TruncatedPacket : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncatedPacket, EveryPrefixRejectedCleanly) {
  ProbeSpec spec;
  spec.src = Ipv4Address(192, 168, 0, 1);
  spec.dst = Ipv4Address(10, 0, 0, 9);
  const auto full = build_udp_probe(spec);
  const auto cut = GetParam();
  if (cut >= full.size()) GTEST_SKIP();
  const std::span<const std::uint8_t> prefix(full.data(), cut);
  EXPECT_THROW((void)parse_probe(prefix), ParseError);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TruncatedPacket,
                         ::testing::Values(0, 1, 5, 10, 19, 21, 25, 27));

TEST(BitFlips, CorruptedRepliesDetectedOrRejected) {
  // Build a valid reply, flip each byte in turn: the parser must either
  // throw ParseError (checksum / structure) or return a parse — never
  // crash. Flips in the checksum-protected region must be detected.
  ProbeSpec spec;
  spec.src = Ipv4Address(192, 168, 0, 1);
  spec.dst = Ipv4Address(10, 0, 0, 9);
  const auto probe = build_udp_probe(spec);
  const auto reply = build_icmp_datagram(
      make_time_exceeded(probe), Ipv4Address(10, 0, 0, 5),
      Ipv4Address(192, 168, 0, 1), 250, 77);

  int detected = 0;
  for (std::size_t i = 0; i < reply.size(); ++i) {
    auto corrupted = reply;
    corrupted[i] ^= 0x01;
    try {
      (void)parse_reply(corrupted);
    } catch (const ParseError&) {
      ++detected;
    }
  }
  // Every header byte is covered by the IP or ICMP checksum.
  EXPECT_GE(detected, static_cast<int>(reply.size() * 9 / 10));
}

}  // namespace
}  // namespace mmlpt::net
