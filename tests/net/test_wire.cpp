#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mmlpt::net {
namespace {

TEST(WireWriter, BigEndianLayout) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const auto bytes = std::move(w).take();
  const std::vector<std::uint8_t> expected{0xAB, 0x12, 0x34,
                                           0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(bytes, expected);
}

TEST(WireWriter, PatchU16) {
  WireWriter w;
  w.u16(0);
  w.u16(0xFFFF);
  w.patch_u16(0, 0xBEEF);
  const auto bytes = std::move(w).take();
  EXPECT_EQ(bytes[0], 0xBE);
  EXPECT_EQ(bytes[1], 0xEF);
  EXPECT_EQ(bytes[2], 0xFF);
}

TEST(WireWriter, PatchOutOfRangeThrows) {
  WireWriter w;
  w.u8(0);
  EXPECT_THROW(w.patch_u16(0, 1), ParseError);
}

TEST(WireWriter, ZerosAndBytes) {
  WireWriter w;
  w.zeros(3);
  const std::uint8_t data[] = {1, 2};
  w.bytes(data);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.view()[2], 0);
  EXPECT_EQ(w.view()[4], 2);
}

TEST(WireReader, ReadsBackWhatWriterWrote) {
  WireWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(70000);
  const auto bytes = std::move(w).take();
  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireReader, TruncatedThrows) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  WireReader r(bytes);
  (void)r.u16();
  EXPECT_THROW((void)r.u16(), ParseError);
}

TEST(WireReader, SkipAndOffset) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4, 5};
  WireReader r(bytes);
  r.skip(2);
  EXPECT_EQ(r.offset(), 2u);
  EXPECT_EQ(r.u8(), 3);
  EXPECT_THROW(r.skip(5), ParseError);
}

TEST(WireReader, BytesView) {
  const std::vector<std::uint8_t> bytes{9, 8, 7, 6};
  WireReader r(bytes);
  const auto view = r.bytes(2);
  EXPECT_EQ(view[0], 9);
  EXPECT_EQ(view[1], 8);
  EXPECT_EQ(r.rest()[0], 7);
}

TEST(WireReader, Window) {
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  WireReader r(bytes);
  r.skip(3);
  const auto win = r.window(1, 2);
  EXPECT_EQ(win[0], 2);
  EXPECT_EQ(win[1], 3);
  EXPECT_THROW((void)r.window(2, 3), ParseError);
}

}  // namespace
}  // namespace mmlpt::net
