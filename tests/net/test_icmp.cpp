#include "net/icmp.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "net/checksum.h"

namespace mmlpt::net {
namespace {

TEST(Icmp, EchoRequestRoundTrip) {
  const auto request = make_echo_request(0x1234, 7, 8);
  const auto bytes = request.serialize();
  ASSERT_GE(bytes.size(), 16u);
  EXPECT_EQ(bytes[0], 8);  // type
  EXPECT_EQ(internet_checksum(bytes), 0);  // self-verifying

  WireReader r(bytes);
  const auto parsed = IcmpMessage::parse(r);
  EXPECT_EQ(parsed.type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed.identifier, 0x1234);
  EXPECT_EQ(parsed.sequence, 7);
  EXPECT_EQ(parsed.echo_payload.size(), 8u);
}

TEST(Icmp, EchoReplyMirrorsRequest) {
  const auto request = make_echo_request(42, 1);
  const auto reply = make_echo_reply(request);
  EXPECT_EQ(reply.type, IcmpType::kEchoReply);
  EXPECT_EQ(reply.identifier, 42);
  EXPECT_EQ(reply.echo_payload, request.echo_payload);
}

TEST(Icmp, TimeExceededQuotesDatagram) {
  const std::vector<std::uint8_t> quoted(28, 0x5A);
  const auto message = make_time_exceeded(quoted);
  const auto bytes = message.serialize();

  WireReader r(bytes);
  const auto parsed = IcmpMessage::parse(r);
  EXPECT_EQ(parsed.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(parsed.code, kCodeTtlExceeded);
  EXPECT_EQ(parsed.quoted, quoted);
  EXPECT_TRUE(parsed.mpls_labels.empty());
}

TEST(Icmp, PortUnreachable) {
  const std::vector<std::uint8_t> quoted(28, 0x11);
  const auto bytes = make_port_unreachable(quoted).serialize();
  WireReader r(bytes);
  const auto parsed = IcmpMessage::parse(r);
  EXPECT_EQ(parsed.type, IcmpType::kDestUnreachable);
  EXPECT_EQ(parsed.code, kCodePortUnreachable);
  EXPECT_TRUE(parsed.is_error());
}

TEST(Icmp, MplsExtensionRoundTrip) {
  const std::vector<std::uint8_t> quoted(28, 0x33);
  const std::vector<MplsLabelEntry> labels{{1048575, 5, false, 254},
                                           {17, 0, true, 3}};
  const auto bytes = make_time_exceeded(quoted, labels).serialize();

  WireReader r(bytes);
  const auto parsed = IcmpMessage::parse(r);
  ASSERT_EQ(parsed.mpls_labels.size(), 2u);
  EXPECT_EQ(parsed.mpls_labels[0].label, 1048575u);
  EXPECT_EQ(parsed.mpls_labels[0].traffic_class, 5);
  EXPECT_FALSE(parsed.mpls_labels[0].bottom_of_stack);
  EXPECT_EQ(parsed.mpls_labels[0].ttl, 254);
  EXPECT_EQ(parsed.mpls_labels[1], labels[1]);
  // RFC 4884: quoted region padded to 128 bytes when extensions present.
  EXPECT_EQ(parsed.quoted.size(), 128u);
  EXPECT_EQ(parsed.quoted[0], 0x33);
  EXPECT_EQ(parsed.quoted[28], 0x00);  // padding
}

TEST(Icmp, ChecksumCorruptionDetected) {
  auto bytes = make_echo_request(1, 1).serialize();
  bytes[4] ^= 0x80;
  WireReader r(bytes);
  EXPECT_THROW((void)IcmpMessage::parse(r), ParseError);
}

TEST(Icmp, UnsupportedTypeRejected) {
  std::vector<std::uint8_t> bytes{13, 0, 0, 0, 0, 0, 0, 0};  // timestamp
  const auto sum = internet_checksum(bytes);
  bytes[2] = static_cast<std::uint8_t>(sum >> 8);
  bytes[3] = static_cast<std::uint8_t>(sum & 0xFF);
  WireReader r(bytes);
  EXPECT_THROW((void)IcmpMessage::parse(r), ParseError);
}

TEST(Icmp, LegacyZeroLengthQuoted) {
  // Old-style error message: length field 0, quoted runs to the end.
  const std::vector<std::uint8_t> quoted(36, 0x77);
  const auto bytes = make_time_exceeded(quoted).serialize();
  EXPECT_EQ(bytes[5], 0);  // no RFC 4884 length without extensions
  WireReader r(bytes);
  const auto parsed = IcmpMessage::parse(r);
  EXPECT_EQ(parsed.quoted.size(), 36u);
}

TEST(Icmp, ExtensionChecksumCorruptionDetected) {
  const std::vector<std::uint8_t> quoted(28, 0x33);
  const std::vector<MplsLabelEntry> labels{{99, 0, true, 10}};
  auto bytes = make_time_exceeded(quoted, labels).serialize();
  // The extension begins after header (8) + padded quote (128).
  const std::size_t ext = 8 + 128;
  bytes[ext + 4] ^= 0x01;  // corrupt object length
  // Fix the outer ICMP checksum so only the extension checksum fails.
  bytes[2] = bytes[3] = 0;
  const auto sum = internet_checksum(bytes);
  bytes[2] = static_cast<std::uint8_t>(sum >> 8);
  bytes[3] = static_cast<std::uint8_t>(sum & 0xFF);
  WireReader r(bytes);
  EXPECT_THROW((void)IcmpMessage::parse(r), ParseError);
}

}  // namespace
}  // namespace mmlpt::net
