#include "net/ip_address.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/error.h"

namespace mmlpt::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  const auto a = Ipv4Address::parse("192.168.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0xC0A801C8u);
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, ParseOrThrow) {
  EXPECT_EQ(Ipv4Address::parse_or_throw("10.0.0.1").value(), 0x0A000001u);
  EXPECT_THROW((void)Ipv4Address::parse_or_throw("nope"), ParseError);
}

TEST(Ipv4Address, RoundTrip) {
  for (const auto text : {"1.2.3.4", "10.255.0.1", "172.16.254.3"}) {
    EXPECT_EQ(Ipv4Address::parse_or_throw(text).to_string(), text);
  }
}

TEST(Ipv4Address, OctetConstructor) {
  EXPECT_EQ(Ipv4Address(10, 1, 2, 3).to_string(), "10.1.2.3");
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), Ipv4Address::parse_or_throw("1.2.3.4"));
}

TEST(Ipv4Address, Unspecified) {
  EXPECT_TRUE(Ipv4Address().is_unspecified());
  EXPECT_FALSE(Ipv4Address(1, 0, 0, 0).is_unspecified());
}

TEST(Ipv4Address, StreamOutput) {
  std::ostringstream os;
  os << Ipv4Address(8, 8, 4, 4);
  EXPECT_EQ(os.str(), "8.8.4.4");
}

TEST(Ipv4Address, Hashable) {
  std::unordered_set<Ipv4Address> set;
  set.insert(Ipv4Address(1, 1, 1, 1));
  set.insert(Ipv4Address(1, 1, 1, 1));
  set.insert(Ipv4Address(1, 1, 1, 2));
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace mmlpt::net
