#include <gtest/gtest.h>

#include "common/error.h"
#include "net/checksum.h"
#include "net/ipv4.h"
#include "net/udp.h"

namespace mmlpt::net {
namespace {

TEST(Ipv4Header, SerializeParseRoundTrip) {
  Ipv4Header h;
  h.tos = 0x10;
  h.identification = 0xBEEF;
  h.dont_fragment = true;
  h.ttl = 17;
  h.protocol = IpProto::kUdp;
  h.src = Ipv4Address(10, 1, 2, 3);
  h.dst = Ipv4Address(10, 4, 5, 6);
  const std::uint8_t payload[] = {1, 2, 3, 4};
  const auto bytes = h.serialize(payload);
  ASSERT_EQ(bytes.size(), kIpv4HeaderSize + 4);

  WireReader r(bytes);
  const auto parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.tos, 0x10);
  EXPECT_EQ(parsed.identification, 0xBEEF);
  EXPECT_TRUE(parsed.dont_fragment);
  EXPECT_EQ(parsed.ttl, 17);
  EXPECT_EQ(parsed.protocol, IpProto::kUdp);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.total_length, bytes.size());
  EXPECT_EQ(r.remaining(), 4u);  // reader positioned at payload
}

TEST(Ipv4Header, ChecksumVerified) {
  Ipv4Header h;
  h.src = Ipv4Address(1, 1, 1, 1);
  h.dst = Ipv4Address(2, 2, 2, 2);
  auto bytes = h.serialize({});
  bytes[8] ^= 0xFF;  // corrupt the TTL
  WireReader r(bytes);
  EXPECT_THROW((void)Ipv4Header::parse(r), ParseError);

  WireReader lenient(bytes);
  EXPECT_NO_THROW((void)Ipv4Header::parse(lenient, false));
}

TEST(Ipv4Header, RejectsNonIpv4) {
  std::vector<std::uint8_t> bytes(20, 0);
  bytes[0] = 0x65;  // version 6
  WireReader r(bytes);
  EXPECT_THROW((void)Ipv4Header::parse(r), ParseError);
}

TEST(Ipv4Header, ParsesOptionsViaIhl) {
  Ipv4Header h;
  h.src = Ipv4Address(1, 1, 1, 1);
  h.dst = Ipv4Address(2, 2, 2, 2);
  auto bytes = h.serialize({});
  // Expand to IHL 6 (24-byte header) with a no-op option word.
  bytes[0] = 0x46;
  bytes.insert(bytes.begin() + 20, {0x01, 0x01, 0x01, 0x01});
  // Fix total length and checksum.
  bytes[2] = 0;
  bytes[3] = 24;
  bytes[10] = 0;
  bytes[11] = 0;
  const auto sum = internet_checksum({bytes.data(), 24});
  bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes[11] = static_cast<std::uint8_t>(sum & 0xFF);

  WireReader r(bytes);
  const auto parsed = Ipv4Header::parse(r);
  EXPECT_EQ(parsed.header_length, 24);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(UdpHeader, SerializeParseRoundTrip) {
  UdpHeader u;
  u.src_port = 33434;
  u.dst_port = 33435;
  const std::uint8_t payload[] = {0xAA, 0xBB};
  const auto bytes =
      u.serialize(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), payload);
  ASSERT_EQ(bytes.size(), kUdpHeaderSize + 2);

  WireReader r(bytes);
  const auto parsed = UdpHeader::parse(r);
  EXPECT_EQ(parsed.src_port, 33434);
  EXPECT_EQ(parsed.dst_port, 33435);
  EXPECT_EQ(parsed.length, bytes.size());
  EXPECT_NE(parsed.checksum, 0);
}

TEST(UdpHeader, ChecksumValidatesAgainstPseudoHeader) {
  UdpHeader u;
  u.src_port = 1000;
  u.dst_port = 2000;
  const auto bytes =
      u.serialize(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), {});
  // Recompute: zero the checksum field and verify it matches.
  auto copy = bytes;
  const std::uint16_t stored = (copy[6] << 8) | copy[7];
  copy[6] = copy[7] = 0;
  EXPECT_EQ(
      udp_checksum(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), copy),
      stored);
}

}  // namespace
}  // namespace mmlpt::net
