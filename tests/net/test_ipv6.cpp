// IPv6 wire subsystem: the dual-stack address type, the fixed 40-byte
// header, and the Paris flow-label contract — across flows a v6 UDP
// probe varies in NOTHING but the 20-bit flow label.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "net/ipv6.h"
#include "net/packet.h"
#include "probe/engine.h"
#include "probe/network.h"

namespace mmlpt::net {
namespace {

// ---------------------------------------------------------------- address

TEST(Ipv6Address, ParsesCanonicalForms) {
  const struct {
    const char* text;
    const char* canonical;
  } cases[] = {
      {"::", "::"},
      {"::1", "::1"},
      {"1::", "1::"},
      {"2001:db8::1", "2001:db8::1"},
      {"2001:DB8::1", "2001:db8::1"},  // case-insensitive input
      {"2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"},
      {"1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"},
      {"fe80::1:2:3:4", "fe80::1:2:3:4"},
      {"::ffff:192.0.2.7", "::ffff:c000:207"},  // embedded dotted-quad
      {"1:0:0:2:0:0:0:3", "1:0:0:2::3"},  // longest zero run compressed
      {"1:0:0:0:2:0:0:3", "1::2:0:0:3"},  // leftmost run on a tie
  };
  for (const auto& c : cases) {
    const auto parsed = IpAddress::parse(c.text);
    ASSERT_TRUE(parsed.has_value()) << c.text;
    EXPECT_TRUE(parsed->is_v6()) << c.text;
    EXPECT_EQ(parsed->to_string(), c.canonical) << c.text;
    // Canonical text round-trips to the same address.
    EXPECT_EQ(IpAddress::parse(parsed->to_string()), *parsed) << c.text;
  }
}

TEST(Ipv6Address, RejectsMalformedText) {
  for (const char* text :
       {":", ":::", "1:::2", "1::2::3", "12345::", "g::1", "1:2:3:4:5:6:7",
        "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7:8::", "::1:2:3:4:5:6:7:8",
        "2001:db8:", ":2001:db8", "1.2.3.4::", "::1.2.3", "::1.2.3.4.5",
        "2001:db8::1.2.3.4:5", ""}) {
    EXPECT_FALSE(IpAddress::parse(text).has_value()) << "'" << text << "'";
  }
  EXPECT_THROW((void)IpAddress::parse_or_throw("1:::2"), ParseError);
}

TEST(Ipv6Address, FamilyTagAndAccessors) {
  const auto v4 = IpAddress(192, 0, 2, 7);
  EXPECT_TRUE(v4.is_v4());
  EXPECT_FALSE(v4.is_v6());
  EXPECT_EQ(v4.family(), Family::kIpv4);

  const auto v6 = IpAddress::parse_or_throw("2001:db8::42");
  EXPECT_TRUE(v6.is_v6());
  EXPECT_EQ(v6.family(), Family::kIpv6);
  EXPECT_EQ(v6.hi64(), 0x20010db800000000ULL);
  EXPECT_EQ(v6.lo64(), 0x42ULL);
  EXPECT_EQ(IpAddress::v6(0x20010db800000000ULL, 0x42ULL), v6);

  EXPECT_TRUE(IpAddress::parse_or_throw("::").is_unspecified());
  EXPECT_FALSE(v6.is_unspecified());
  EXPECT_TRUE(IpAddress().is_unspecified());
}

TEST(Ipv6Address, V4AndV6NeverCompareEqual) {
  // 2001:db8::c000:207 has the same low bytes as 192.0.2.7's storage
  // prefix would suggest; the family tag keeps the spaces disjoint.
  const auto v4 = IpAddress(0x20010db8);  // v4 whose uint32 equals a v6 hi
  const auto v6 = IpAddress::parse_or_throw("2001:db8::");
  EXPECT_NE(v4, v6);
  EXPECT_LT(v4, v6);  // family tag orders v4 before v6
}

TEST(Ipv6Address, OrderingIsBytewiseWithinV6) {
  const auto a = IpAddress::parse_or_throw("2001:db8::1");
  const auto b = IpAddress::parse_or_throw("2001:db8::2");
  const auto c = IpAddress::parse_or_throw("2001:db9::");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Ipv6Address, HashSpreadsAndV4HashUnchanged) {
  // v4 hashing must equal the historical std::hash<uint32> so container
  // layouts (and anything keyed on them) survive the dual-stack refactor.
  const auto v4 = IpAddress(10, 0, 0, 1);
  EXPECT_EQ(std::hash<IpAddress>{}(v4),
            std::hash<std::uint32_t>{}(v4.value()));

  std::unordered_set<std::size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<IpAddress>{}(
        IpAddress::v6(0x20010db800000000ULL, static_cast<std::uint64_t>(i))));
  }
  EXPECT_GT(hashes.size(), 990u);  // no mass collisions
}

// ----------------------------------------------------------------- header

TEST(Ipv6Header, SerializeParseRoundTrip) {
  Ipv6Header h;
  h.traffic_class = 0xA5;
  h.flow_label = 0xABCDE;
  h.next_header = IpProto::kUdp;
  h.hop_limit = 7;
  h.src = IpAddress::parse_or_throw("2001:db8::1");
  h.dst = IpAddress::parse_or_throw("2001:db8::2");
  const std::uint8_t payload[] = {1, 2, 3, 4, 5};
  const auto bytes = h.serialize(payload);
  ASSERT_EQ(bytes.size(), kIpv6HeaderSize + 5);
  EXPECT_EQ(bytes[0] >> 4, 6);  // version nibble

  WireReader r(bytes);
  const auto parsed = Ipv6Header::parse(r);
  EXPECT_EQ(parsed.traffic_class, 0xA5);
  EXPECT_EQ(parsed.flow_label, 0xABCDEu);
  EXPECT_EQ(parsed.next_header, IpProto::kUdp);
  EXPECT_EQ(parsed.hop_limit, 7);
  EXPECT_EQ(parsed.src, h.src);
  EXPECT_EQ(parsed.dst, h.dst);
  EXPECT_EQ(parsed.payload_length, 5);
  EXPECT_EQ(r.remaining(), 5u);  // reader positioned at payload
}

TEST(Ipv6Header, RejectsWrongVersion) {
  Ipv4Header v4;
  v4.src = IpAddress(1, 1, 1, 1);
  v4.dst = IpAddress(2, 2, 2, 2);
  const auto bytes = v4.serialize({});
  WireReader r(bytes);
  EXPECT_THROW((void)Ipv6Header::parse(r), ParseError);
}

TEST(Ipv6Header, RejectsTruncated) {
  std::vector<std::uint8_t> bytes(kIpv6HeaderSize - 1, 0);
  bytes[0] = 0x60;
  WireReader r(bytes);
  EXPECT_THROW((void)Ipv6Header::parse(r), ParseError);
}

// ------------------------------------------------- Paris flow-label wire

ProbeSpec v6_spec(std::uint32_t flow_label, std::uint8_t ttl = 5) {
  ProbeSpec spec;
  spec.src = IpAddress::parse_or_throw("2001:db8::aaaa");
  spec.dst = IpAddress::parse_or_throw("2001:db8::bbbb");
  spec.src_port = 33434;
  spec.dst_port = 33434;
  spec.ttl = ttl;
  spec.flow_label = flow_label;
  return spec;
}

/// Byte indices where two equal-length datagrams differ.
std::vector<std::size_t> diff_offsets(std::span<const std::uint8_t> a,
                                      std::span<const std::uint8_t> b) {
  EXPECT_EQ(a.size(), b.size());
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] != b[i]) offsets.push_back(i);
  }
  return offsets;
}

TEST(ParisIpv6Wire, ProbesVaryOnlyTheFlowLabelAcrossFlows) {
  // The acceptance-criterion test: across flows, a v6 Paris probe varies
  // in NOTHING but the 20-bit flow label (bytes 1..3 of the header).
  // Ports, checksums, payload, hop limit — all byte-identical.
  const auto base = build_udp_probe(v6_spec(0x00001));
  for (const std::uint32_t label : {0x00002u, 0x00FFFu, 0xABCDEu, 0xFFFFFu}) {
    const auto other = build_udp_probe(v6_spec(label));
    const auto offsets = diff_offsets(base, other);
    ASSERT_FALSE(offsets.empty());
    for (const auto offset : offsets) {
      EXPECT_GE(offset, 1u);
      EXPECT_LE(offset, 3u);  // flow label lives in bytes 1..3
    }
    // And the differing bits decode to exactly the two labels.
    WireReader r(other);
    EXPECT_EQ(Ipv6Header::parse(r).flow_label, label);
  }
}

TEST(ParisIpv6Wire, UdpBytesIdenticalAcrossFlows) {
  // The label is outside the UDP checksum's pseudo-header, so the entire
  // transport segment is constant across flows.
  const auto a = build_udp_probe(v6_spec(0x00001));
  const auto b = build_udp_probe(v6_spec(0xFFFFF));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin() + kIpv6HeaderSize, a.end(),
                         b.begin() + kIpv6HeaderSize));
}

/// Transport that records every datagram and answers nothing.
class CapturingNetwork final : public probe::Network {
 public:
  std::optional<probe::Received> transact(
      std::span<const std::uint8_t> datagram, probe::Nanos) override {
    captured.emplace_back(datagram.begin(), datagram.end());
    return std::nullopt;
  }
  std::vector<std::vector<std::uint8_t>> captured;
};

TEST(ParisIpv6Wire, EngineEncodesFlowIdInLabelWithConstantPorts) {
  CapturingNetwork network;
  probe::ProbeEngine::Config config;
  config.source = IpAddress::parse_or_throw("2001:db8::aaaa");
  config.destination = IpAddress::parse_or_throw("2001:db8::bbbb");
  config.max_retries = 0;
  probe::ProbeEngine engine(network, config);
  EXPECT_EQ(engine.family(), Family::kIpv6);

  const std::vector<probe::ProbeEngine::ProbeRequest> requests = {
      {0, 5}, {1, 5}, {7, 5}, {41, 5}};
  (void)engine.probe_batch(requests);
  ASSERT_EQ(network.captured.size(), requests.size());

  std::set<std::uint32_t> labels;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const auto parsed = parse_probe(network.captured[i]);
    EXPECT_EQ(parsed.family, Family::kIpv6);
    EXPECT_EQ(parsed.ip6.flow_label, requests[i].flow);
    labels.insert(parsed.ip6.flow_label);
    // Ports constant at their bases — the v4 Paris fields do not move.
    EXPECT_EQ(parsed.udp.src_port, config.base_src_port);
    EXPECT_EQ(parsed.udp.dst_port, config.base_dst_port);
    // Across flows at one TTL the wire differs only in the label bytes.
    const auto offsets = diff_offsets(network.captured[0],
                                      network.captured[i]);
    for (const auto offset : offsets) {
      EXPECT_GE(offset, 1u);
      EXPECT_LE(offset, 3u);
    }
  }
  EXPECT_EQ(labels.size(), requests.size());
}

TEST(ParisIpv6Wire, FlowTupleDigestSeesTheLabel) {
  const auto a = parse_probe(build_udp_probe(v6_spec(1))).flow();
  const auto b = parse_probe(build_udp_probe(v6_spec(2))).flow();
  EXPECT_NE(a, b);
  EXPECT_NE(a.digest(), b.digest());
  // Same label, same digest: the identity is deterministic.
  const auto a2 = parse_probe(build_udp_probe(v6_spec(1))).flow();
  EXPECT_EQ(a.digest(), a2.digest());
}

TEST(ParisIpv6Wire, V4DigestUnchangedByRefactor) {
  // The v4 digest formula is load-bearing: simulated load balancers hash
  // it, so any change would silently re-route every v4 simulation.
  FlowTuple t;
  t.src = IpAddress(10, 0, 0, 1);
  t.dst = IpAddress(10, 0, 0, 2);
  t.src_port = 33434;
  t.dst_port = 33434;
  t.protocol = 17;
  // Golden value computed with the pre-dual-stack implementation.
  const std::uint64_t x =
      (std::uint64_t{t.src.value()} << 32) | t.dst.value();
  const std::uint64_t y = (std::uint64_t{t.src_port} << 32) |
                          (std::uint64_t{t.dst_port} << 16) | t.protocol;
  const auto mix = [](std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  EXPECT_EQ(t.digest(), mix(mix(x) ^ y));
}

}  // namespace
}  // namespace mmlpt::net
