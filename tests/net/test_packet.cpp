#include "net/packet.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mmlpt::net {
namespace {

ProbeSpec sample_spec() {
  ProbeSpec spec;
  spec.src = Ipv4Address(10, 0, 0, 1);
  spec.dst = Ipv4Address(10, 9, 9, 9);
  spec.src_port = 33500;
  spec.dst_port = 33434;
  spec.ttl = 5;
  spec.ip_id = 777;
  return spec;
}

TEST(Packet, UdpProbeRoundTrip) {
  const auto bytes = build_udp_probe(sample_spec());
  const auto parsed = parse_probe(bytes);
  EXPECT_EQ(parsed.ip.src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(parsed.ip.dst, Ipv4Address(10, 9, 9, 9));
  EXPECT_EQ(parsed.ip.ttl, 5);
  EXPECT_EQ(parsed.ip.identification, 777);
  EXPECT_EQ(parsed.udp.src_port, 33500);
  EXPECT_EQ(parsed.udp.dst_port, 33434);
}

TEST(Packet, FlowTupleFromProbe) {
  const auto parsed = parse_probe(build_udp_probe(sample_spec()));
  const auto flow = parsed.flow();
  EXPECT_EQ(flow.src_port, 33500);
  EXPECT_EQ(flow.dst_port, 33434);
  EXPECT_EQ(flow.protocol, 17);
}

TEST(Packet, FlowDigestSensitivity) {
  auto spec = sample_spec();
  const auto base = parse_probe(build_udp_probe(spec)).flow().digest();
  spec.src_port++;
  EXPECT_NE(parse_probe(build_udp_probe(spec)).flow().digest(), base);
  spec.src_port--;
  spec.ttl = 9;  // TTL must NOT affect the flow
  EXPECT_EQ(parse_probe(build_udp_probe(spec)).flow().digest(), base);
}

TEST(Packet, EchoProbeRoundTrip) {
  const auto bytes = build_echo_probe(Ipv4Address(10, 0, 0, 1),
                                      Ipv4Address(10, 2, 2, 2), 99, 3);
  const auto parsed = parse_probe(bytes);
  EXPECT_EQ(parsed.ip.protocol, IpProto::kIcmp);
  EXPECT_EQ(parsed.icmp.type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed.icmp.identifier, 99);
  EXPECT_EQ(parsed.icmp.sequence, 3);
}

TEST(Packet, TimeExceededReplyRoundTrip) {
  const auto probe = build_udp_probe(sample_spec());
  const std::span<const std::uint8_t> quoted(probe.data(),
                                             kIpv4HeaderSize + 8);
  const auto message = make_time_exceeded(quoted);
  const auto reply_bytes = build_icmp_datagram(
      message, Ipv4Address(10, 5, 5, 5), Ipv4Address(10, 0, 0, 1), 250, 4242);

  const auto reply = parse_reply(reply_bytes);
  EXPECT_TRUE(reply.is_time_exceeded());
  EXPECT_FALSE(reply.is_port_unreachable());
  EXPECT_EQ(reply.responder(), Ipv4Address(10, 5, 5, 5));
  EXPECT_EQ(reply.outer.identification, 4242);
  EXPECT_EQ(reply.outer.ttl, 250);
  ASSERT_TRUE(reply.quoted_ip.has_value());
  EXPECT_EQ(reply.quoted_ip->dst, Ipv4Address(10, 9, 9, 9));
  ASSERT_TRUE(reply.quoted_udp.has_value());
  EXPECT_EQ(reply.quoted_udp->src_port, 33500);
}

TEST(Packet, PortUnreachableFromDestination) {
  const auto probe = build_udp_probe(sample_spec());
  const auto message = make_port_unreachable(probe);
  const auto reply_bytes = build_icmp_datagram(
      message, Ipv4Address(10, 9, 9, 9), Ipv4Address(10, 0, 0, 1), 60, 1);
  const auto reply = parse_reply(reply_bytes);
  EXPECT_TRUE(reply.is_port_unreachable());
  EXPECT_EQ(reply.responder(), Ipv4Address(10, 9, 9, 9));
}

TEST(Packet, ReplyWithMplsLabels) {
  const auto probe = build_udp_probe(sample_spec());
  const std::vector<MplsLabelEntry> labels{{1001, 0, true, 9}};
  const auto message = make_time_exceeded(probe, labels);
  const auto reply_bytes = build_icmp_datagram(
      message, Ipv4Address(10, 5, 5, 5), Ipv4Address(10, 0, 0, 1), 250, 1);
  const auto reply = parse_reply(reply_bytes);
  ASSERT_EQ(reply.icmp.mpls_labels.size(), 1u);
  EXPECT_EQ(reply.icmp.mpls_labels[0].label, 1001u);
  // Quoted datagram still parses despite the 128-byte padding.
  ASSERT_TRUE(reply.quoted_udp.has_value());
  EXPECT_EQ(reply.quoted_udp->dst_port, 33434);
}

TEST(Packet, EchoReplyParse) {
  const auto request_bytes = build_echo_probe(Ipv4Address(10, 0, 0, 1),
                                              Ipv4Address(10, 2, 2, 2), 7, 8);
  const auto request = parse_probe(request_bytes);
  const auto reply_bytes =
      build_icmp_datagram(make_echo_reply(request.icmp),
                          Ipv4Address(10, 2, 2, 2), Ipv4Address(10, 0, 0, 1),
                          61, 555);
  const auto reply = parse_reply(reply_bytes);
  EXPECT_TRUE(reply.is_echo_reply());
  EXPECT_EQ(reply.icmp.identifier, 7);
  EXPECT_EQ(reply.outer.identification, 555);
}

TEST(Packet, GarbageRejected) {
  const std::vector<std::uint8_t> garbage(10, 0xFF);
  EXPECT_THROW((void)parse_probe(garbage), ParseError);
  EXPECT_THROW((void)parse_reply(garbage), ParseError);
}

TEST(Packet, ReplyMustBeIcmp) {
  const auto probe = build_udp_probe(sample_spec());
  EXPECT_THROW((void)parse_reply(probe), ParseError);
}

}  // namespace
}  // namespace mmlpt::net
