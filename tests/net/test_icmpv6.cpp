// ICMPv6 craft / parse: echo pairs, Time Exceeded / Dest Unreachable
// with quoted datagrams, the pseudo-header checksum, RFC 4884 multipart
// MPLS extensions, and the full v6 probe -> reply wire cycle.
#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "net/icmpv6.h"
#include "net/packet.h"

namespace mmlpt::net {
namespace {

const IpAddress kSrc = IpAddress::parse_or_throw("2001:db8::1");
const IpAddress kDst = IpAddress::parse_or_throw("2001:db8::2");

TEST(Icmpv6, EchoRoundTrip) {
  const auto request = make_echo_request_v6(0x4D4C, 9, 8);
  const auto bytes = request.serialize(kSrc, kDst);
  WireReader r(bytes);
  const auto parsed = Icmpv6Message::parse(r, kSrc, kDst);
  EXPECT_EQ(parsed.type, Icmpv6Type::kEchoRequest);
  EXPECT_EQ(parsed.identifier, 0x4D4C);
  EXPECT_EQ(parsed.sequence, 9);
  EXPECT_EQ(parsed.echo_payload.size(), 8u);

  const auto reply = make_echo_reply_v6(parsed);
  EXPECT_EQ(reply.type, Icmpv6Type::kEchoReply);
  EXPECT_EQ(reply.identifier, parsed.identifier);
  EXPECT_EQ(reply.sequence, parsed.sequence);
}

TEST(Icmpv6, ChecksumUsesPseudoHeader) {
  // The same message bytes from different endpoints must fail
  // verification: the v6 pseudo-header binds the checksum to src/dst.
  const auto bytes = make_echo_request_v6(7, 1).serialize(kSrc, kDst);
  WireReader ok(bytes);
  EXPECT_NO_THROW((void)Icmpv6Message::parse(ok, kSrc, kDst));

  const auto other = IpAddress::parse_or_throw("2001:db8::dead");
  WireReader bad(bytes);
  EXPECT_THROW((void)Icmpv6Message::parse(bad, kSrc, other), ParseError);

  // ...unless verification is explicitly disabled (quoted-probe path).
  WireReader lenient(bytes);
  EXPECT_NO_THROW(
      (void)Icmpv6Message::parse(lenient, kSrc, other,
                                 /*verify_checksum=*/false));
}

TEST(Icmpv6, CorruptionDetected) {
  auto bytes = make_echo_request_v6(7, 1).serialize(kSrc, kDst);
  bytes[6] ^= 0x01;  // flip an identifier bit
  WireReader r(bytes);
  EXPECT_THROW((void)Icmpv6Message::parse(r, kSrc, kDst), ParseError);
}

std::vector<std::uint8_t> sample_quoted() {
  ProbeSpec spec;
  spec.src = kSrc;
  spec.dst = kDst;
  spec.flow_label = 0xBEEF;
  spec.ttl = 3;
  const auto probe = build_udp_probe(spec);
  // Header + 8, as routers quote.
  return {probe.begin(), probe.begin() + kIpv6HeaderSize + 8};
}

TEST(Icmpv6, TimeExceededQuotesTheProbe) {
  const auto quoted = sample_quoted();
  const auto bytes = make_time_exceeded_v6(quoted).serialize(kSrc, kDst);
  WireReader r(bytes);
  const auto parsed = Icmpv6Message::parse(r, kSrc, kDst);
  EXPECT_EQ(parsed.type, Icmpv6Type::kTimeExceeded);
  EXPECT_EQ(parsed.code, kCodeHopLimitExceeded);
  EXPECT_TRUE(parsed.is_error());
  EXPECT_EQ(parsed.quoted, quoted);
  EXPECT_TRUE(parsed.mpls_labels.empty());
}

TEST(Icmpv6, MultipartMplsExtensionRoundTrip) {
  const std::vector<MplsLabelEntry> labels = {{0x12345, 3, false, 7},
                                              {0x00042, 0, true, 8}};
  const auto quoted = sample_quoted();
  const auto bytes =
      make_time_exceeded_v6(quoted, labels).serialize(kSrc, kDst);
  WireReader r(bytes);
  const auto parsed = Icmpv6Message::parse(r, kSrc, kDst);
  ASSERT_EQ(parsed.mpls_labels.size(), 2u);
  EXPECT_EQ(parsed.mpls_labels[0], labels[0]);
  EXPECT_EQ(parsed.mpls_labels[1], labels[1]);
  // RFC 4884 for ICMPv6: the quoted region is padded to a multiple of 8
  // and the parser recovers the original bytes at its head.
  ASSERT_GE(parsed.quoted.size(), quoted.size());
  EXPECT_TRUE(std::equal(quoted.begin(), quoted.end(),
                         parsed.quoted.begin()));
}

TEST(Icmpv6, FullReplyCycleThroughDatagramBuilders) {
  // probe -> Time Exceeded datagram -> parse_reply: what the engine and
  // Fakeroute do per hop, end to end on v6.
  ProbeSpec spec;
  spec.src = kSrc;
  spec.dst = kDst;
  spec.flow_label = 0x00ABC;
  spec.src_port = 33434;
  spec.dst_port = 33434;
  spec.ttl = 2;
  const auto probe = build_udp_probe(spec);

  const auto router = IpAddress::parse_or_throw("2001:db8:0:7::1");
  const std::vector<std::uint8_t> quoted(
      probe.begin(), probe.begin() + kIpv6HeaderSize + 8);
  const auto reply_datagram = build_icmpv6_datagram(
      make_time_exceeded_v6(quoted), router, kSrc, /*hop_limit=*/253);

  const auto reply = parse_reply(reply_datagram);
  EXPECT_EQ(reply.family, Family::kIpv6);
  EXPECT_EQ(reply.responder(), router);
  EXPECT_TRUE(reply.is_time_exceeded());
  EXPECT_FALSE(reply.is_port_unreachable());
  EXPECT_EQ(reply.reply_ttl(), 253);
  EXPECT_EQ(reply.reply_ip_id(), 0);  // v6 has no identification
  ASSERT_TRUE(reply.quoted_ip6.has_value());
  EXPECT_EQ(reply.quoted_ip6->flow_label, 0x00ABCu);
  ASSERT_TRUE(reply.quoted_udp.has_value());
  EXPECT_EQ(reply.quoted_udp->src_port, 33434);

  // Port Unreachable marks destination arrival, exactly as on v4.
  const auto unreachable = parse_reply(build_icmpv6_datagram(
      make_port_unreachable_v6(quoted), kDst, kSrc, 64));
  EXPECT_TRUE(unreachable.is_port_unreachable());
  EXPECT_FALSE(unreachable.is_time_exceeded());
}

TEST(Icmpv6, EchoReplyCycleThroughDatagramBuilders) {
  const auto probe = build_echo_probe(kSrc, kDst, 0x4D4C, 3);
  const auto parsed_probe = parse_probe(probe);
  EXPECT_EQ(parsed_probe.family, Family::kIpv6);
  EXPECT_TRUE(parsed_probe.is_echo_request());
  EXPECT_FALSE(parsed_probe.is_udp());

  const auto reply_datagram = build_icmpv6_datagram(
      make_echo_reply_v6(parsed_probe.icmp6), kDst, kSrc, 64);
  const auto reply = parse_reply(reply_datagram);
  EXPECT_TRUE(reply.is_echo_reply());
  EXPECT_EQ(reply.responder(), kDst);
  EXPECT_EQ(reply.icmp6.identifier, 0x4D4C);
}

TEST(Icmpv6, RejectsUnsupportedType) {
  auto bytes = make_echo_request_v6(1, 1).serialize(kSrc, kDst);
  bytes[0] = 200;  // private experimentation type
  bytes[2] = 0;    // zero checksum: skip verification, hit the type check
  bytes[3] = 0;
  WireReader r(bytes);
  EXPECT_THROW((void)Icmpv6Message::parse(r, kSrc, kDst), ParseError);
}

}  // namespace
}  // namespace mmlpt::net
