#include "fakeroute/simulator.h"

#include <gtest/gtest.h>

#include <set>

#include "core/validation.h"
#include "net/packet.h"
#include "topology/reference.h"

namespace mmlpt::fakeroute {
namespace {

topo::GroundTruth diamond_truth() {
  return core::plain_ground_truth(topo::simplest_diamond());
}

std::vector<std::uint8_t> probe_bytes(const topo::GroundTruth& truth,
                                      std::uint16_t src_port,
                                      std::uint8_t ttl) {
  net::ProbeSpec spec;
  spec.src = net::Ipv4Address(192, 168, 0, 1);
  spec.dst = truth.destination;
  spec.src_port = src_port;
  spec.ttl = ttl;
  return net::build_udp_probe(spec);
}

TEST(Simulator, Ttl1HitsDivergencePoint) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 1);
  const auto reply = sim.handle(probe_bytes(truth, 40000, 1), 1'000'000'000);
  ASSERT_TRUE(reply.has_value());
  const auto parsed = net::parse_reply(reply->datagram);
  EXPECT_TRUE(parsed.is_time_exceeded());
  // Hop 1 from the divergence point (hop 0) is one of the two middle
  // vertices... wait: hop 0 of a bare diamond IS the divergence point, so
  // TTL 1 expires at hop 1: a middle vertex.
  const auto responder = parsed.responder();
  EXPECT_TRUE(responder == topo::reference_addr(1, 1, 0) ||
              responder == topo::reference_addr(1, 1, 1));
}

TEST(Simulator, HighTtlReachesDestinationPortUnreachable) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 1);
  const auto reply = sim.handle(probe_bytes(truth, 40000, 30), 1'000'000'000);
  ASSERT_TRUE(reply.has_value());
  const auto parsed = net::parse_reply(reply->datagram);
  EXPECT_TRUE(parsed.is_port_unreachable());
  EXPECT_EQ(parsed.responder(), truth.destination);
}

TEST(Simulator, PerFlowForwardingIsDeterministic) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 7);
  for (std::uint16_t port = 40000; port < 40020; ++port) {
    const auto first = sim.handle(probe_bytes(truth, port, 1), 1'000'000'000);
    const auto second = sim.handle(probe_bytes(truth, port, 1), 2'000'000'000);
    ASSERT_TRUE(first && second);
    EXPECT_EQ(net::parse_reply(first->datagram).responder(),
              net::parse_reply(second->datagram).responder());
  }
}

TEST(Simulator, FlowsSpreadAcrossBothBranches) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 7);
  std::set<std::uint32_t> seen;
  for (std::uint16_t port = 40000; port < 40032; ++port) {
    const auto reply = sim.handle(probe_bytes(truth, port, 1), 1'000'000'000);
    ASSERT_TRUE(reply.has_value());
    seen.insert(net::parse_reply(reply->datagram).responder().value());
  }
  EXPECT_EQ(seen.size(), 2u);  // 32 flows across 2 branches: both seen
}

TEST(Simulator, QuotedProbeComesBack) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 1);
  const auto probe = probe_bytes(truth, 41555, 1);
  const auto reply = sim.handle(probe, 1'000'000'000);
  ASSERT_TRUE(reply.has_value());
  const auto parsed = net::parse_reply(reply->datagram);
  ASSERT_TRUE(parsed.quoted_udp.has_value());
  EXPECT_EQ(parsed.quoted_udp->src_port, 41555);
  ASSERT_TRUE(parsed.quoted_ip.has_value());
  EXPECT_EQ(parsed.quoted_ip->dst, truth.destination);
}

TEST(Simulator, EchoProbeAnswered) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 1);
  const auto target = topo::reference_addr(1, 1, 0);
  const auto probe = net::build_echo_probe(net::Ipv4Address(192, 168, 0, 1),
                                           target, 9, 1);
  const auto reply = sim.handle(probe, 1'000'000'000);
  ASSERT_TRUE(reply.has_value());
  const auto parsed = net::parse_reply(reply->datagram);
  EXPECT_TRUE(parsed.is_echo_reply());
  EXPECT_EQ(parsed.responder(), target);
}

TEST(Simulator, EchoToUnknownAddressUnanswered) {
  const auto truth = diamond_truth();
  Simulator sim(truth, {}, 1);
  const auto probe = net::build_echo_probe(net::Ipv4Address(192, 168, 0, 1),
                                           net::Ipv4Address(9, 9, 9, 9), 9, 1);
  EXPECT_FALSE(sim.handle(probe, 1'000'000'000).has_value());
  EXPECT_EQ(sim.counters().dropped_unroutable, 1u);
}

TEST(Simulator, UnresponsiveRouterDropsIndirect) {
  auto truth = diamond_truth();
  truth.routers[1].responds_to_indirect = false;  // a middle vertex
  truth.routers[2].responds_to_indirect = false;  // the other one
  Simulator sim(truth, {}, 1);
  EXPECT_FALSE(sim.handle(probe_bytes(truth, 40000, 1), 1'000'000'000));
  EXPECT_GE(sim.counters().dropped_unresponsive, 1u);
}

TEST(Simulator, UnresponsiveToDirectStillAnswersIndirect) {
  auto truth = diamond_truth();
  for (auto& r : truth.routers) r.responds_to_direct = false;
  Simulator sim(truth, {}, 1);
  EXPECT_TRUE(sim.handle(probe_bytes(truth, 40000, 1), 1'000'000'000));
  const auto echo = net::build_echo_probe(net::Ipv4Address(192, 168, 0, 1),
                                          topo::reference_addr(1, 1, 0), 9, 1);
  EXPECT_FALSE(sim.handle(echo, 1'000'000'000));
}

TEST(Simulator, LossDropsSomeReplies) {
  const auto truth = diamond_truth();
  SimConfig config;
  config.loss_prob = 0.5;
  Simulator sim(truth, config, 3);
  int answered = 0;
  for (int i = 0; i < 200; ++i) {
    if (sim.handle(probe_bytes(truth, static_cast<std::uint16_t>(40000 + i), 1),
                   1'000'000'000 + i)) {
      ++answered;
    }
  }
  EXPECT_GT(answered, 60);
  EXPECT_LT(answered, 140);
  EXPECT_EQ(sim.counters().dropped_loss,
            200u - static_cast<unsigned>(answered));
}

TEST(Simulator, RateLimitingKicksIn) {
  const auto truth = diamond_truth();
  SimConfig config;
  config.icmp_rate_limit = 100.0;  // 100 replies/s
  config.rate_limit_burst = 4;
  Simulator sim(truth, config, 3);
  // Fire 20 probes within one millisecond at the same router.
  int answered = 0;
  for (int i = 0; i < 20; ++i) {
    if (sim.handle(probe_bytes(truth, 40000, 2), 1'000'000'000 + i * 10'000)) {
      ++answered;
    }
  }
  EXPECT_LE(answered, 5);
  EXPECT_GT(sim.counters().dropped_rate_limit, 0u);
}

TEST(Simulator, PerPacketLbVariesPath) {
  const auto truth = diamond_truth();
  SimConfig config;
  config.per_packet_lb = true;
  Simulator sim(truth, config, 11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 64; ++i) {
    const auto reply = sim.handle(probe_bytes(truth, 40000, 1),
                                  1'000'000'000 + i);
    ASSERT_TRUE(reply);
    seen.insert(net::parse_reply(reply->datagram).responder().value());
  }
  // Same flow, but per-packet balancing: both branches seen.
  EXPECT_EQ(seen.size(), 2u);
}

TEST(Simulator, PerDestinationLbIgnoresPorts) {
  const auto truth = diamond_truth();
  SimConfig config;
  config.per_destination_lb = true;
  Simulator sim(truth, config, 13);
  std::set<std::uint32_t> seen;
  for (std::uint16_t port = 40000; port < 40032; ++port) {
    const auto reply = sim.handle(probe_bytes(truth, port, 1), 1'000'000'000);
    ASSERT_TRUE(reply);
    seen.insert(net::parse_reply(reply->datagram).responder().value());
  }
  EXPECT_EQ(seen.size(), 1u);  // ports no longer matter
}

TEST(Simulator, MplsLabelsAttached) {
  auto truth = diamond_truth();
  truth.routers[1].mpls_label = 12345;
  Simulator sim(truth, {}, 1);
  // Find a flow hitting vertex 1 (addr 10.1.1.0).
  for (std::uint16_t port = 40000; port < 40100; ++port) {
    const auto reply = sim.handle(probe_bytes(truth, port, 1), 1'000'000'000);
    ASSERT_TRUE(reply);
    const auto parsed = net::parse_reply(reply->datagram);
    if (parsed.responder() == topo::reference_addr(1, 1, 0)) {
      ASSERT_EQ(parsed.icmp.mpls_labels.size(), 1u);
      EXPECT_EQ(parsed.icmp.mpls_labels[0].label, 12345u);
      return;
    }
  }
  FAIL() << "no flow reached the labelled vertex";
}

TEST(Simulator, ReplyTtlReflectsFingerprintAndDistance) {
  auto truth = diamond_truth();
  for (auto& r : truth.routers) r.fingerprint = {255, 64};
  Simulator sim(truth, {}, 1);
  const auto reply = sim.handle(probe_bytes(truth, 40000, 1), 1'000'000'000);
  ASSERT_TRUE(reply);
  // Hop 1 responder, initial 255 -> reply TTL 254.
  EXPECT_EQ(net::parse_reply(reply->datagram).outer.ttl, 254);
}

TEST(Simulator, RttGrowsWithHop) {
  const auto truth = diamond_truth();
  SimConfig config;
  config.jitter_ms = 0.0;
  Simulator sim(truth, config, 1);
  const auto near = sim.handle(probe_bytes(truth, 40000, 1), 1'000'000'000);
  const auto far = sim.handle(probe_bytes(truth, 40000, 30), 1'000'000'000);
  ASSERT_TRUE(near && far);
  EXPECT_LT(near->rtt, far->rtt);
}

}  // namespace
}  // namespace mmlpt::fakeroute
