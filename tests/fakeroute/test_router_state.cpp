#include "fakeroute/router_state.h"

#include <gtest/gtest.h>

namespace mmlpt::fakeroute {
namespace {

topo::RouterSpec spec_with(topo::IpIdPolicy policy, double velocity = 1000.0) {
  topo::RouterSpec spec;
  spec.ip_id_policy = policy;
  spec.ip_id_velocity = velocity;
  return spec;
}

TEST(RateLimiter, AllowsBurstThenBlocks) {
  RateLimiter limiter(10.0, 3);
  const Nanos t0 = 1'000'000'000;
  EXPECT_TRUE(limiter.allow(t0));
  EXPECT_TRUE(limiter.allow(t0));
  EXPECT_TRUE(limiter.allow(t0));
  EXPECT_FALSE(limiter.allow(t0));
}

TEST(RateLimiter, RefillsOverTime) {
  RateLimiter limiter(10.0, 1);
  const Nanos t0 = 1'000'000'000;
  EXPECT_TRUE(limiter.allow(t0));
  EXPECT_FALSE(limiter.allow(t0 + 1'000'000));       // 1 ms: no token yet
  EXPECT_TRUE(limiter.allow(t0 + 200'000'000));      // 200 ms: refilled
}

TEST(RouterState, SharedCounterMonotonicAndVelocityDriven) {
  const auto spec = spec_with(topo::IpIdPolicy::kSharedCounter, 1000.0);
  RouterState state(spec, Rng(1));
  const net::Ipv4Address a(10, 0, 0, 1);
  const net::Ipv4Address b(10, 0, 0, 2);

  Nanos t = 1'000'000'000;
  std::uint16_t prev = state.next_ip_id(a, t, 0, ReplyKind::kError);
  for (int i = 1; i < 50; ++i) {
    t += 2'000'000;  // 2 ms -> ~2 IDs of velocity + 1 per emission
    // Alternate interfaces: a shared counter ignores the interface.
    const auto id = state.next_ip_id(i % 2 ? b : a, t, 0, ReplyKind::kError);
    const auto delta = static_cast<std::uint16_t>(id - prev);
    EXPECT_GE(delta, 1);
    EXPECT_LE(delta, 20);
    prev = id;
  }
}

TEST(RouterState, PerInterfaceCountersIndependentForErrors) {
  const auto spec = spec_with(topo::IpIdPolicy::kPerInterface, 500.0);
  RouterState state(spec, Rng(2));
  const net::Ipv4Address a(10, 0, 0, 1);
  const net::Ipv4Address b(10, 0, 0, 2);

  Nanos t = 1'000'000'000;
  // Interleave: if counters were shared, B's IDs would interleave with
  // A's; with independent counters each sequence is separately monotonic
  // but their absolute values are unrelated (random start).
  std::vector<std::uint16_t> ids_a, ids_b;
  for (int i = 0; i < 20; ++i) {
    t += 2'000'000;
    ids_a.push_back(state.next_ip_id(a, t, 0, ReplyKind::kError));
    t += 2'000'000;
    ids_b.push_back(state.next_ip_id(b, t, 0, ReplyKind::kError));
  }
  for (std::size_t i = 1; i < ids_a.size(); ++i) {
    EXPECT_LT(static_cast<std::uint16_t>(ids_a[i] - ids_a[i - 1]), 0x7FFF);
    EXPECT_LT(static_cast<std::uint16_t>(ids_b[i] - ids_b[i - 1]), 0x7FFF);
  }
}

TEST(RouterState, PerInterfacePolicyUsesSharedCounterForEcho) {
  const auto spec = spec_with(topo::IpIdPolicy::kPerInterface, 500.0);
  RouterState state(spec, Rng(3));
  const net::Ipv4Address a(10, 0, 0, 1);
  const net::Ipv4Address b(10, 0, 0, 2);
  Nanos t = 1'000'000'000;
  // Echo replies from different interfaces share one counter: merged
  // sequence is monotonic.
  std::uint16_t prev = state.next_ip_id(a, t, 0, ReplyKind::kEcho);
  for (int i = 1; i < 30; ++i) {
    t += 2'000'000;
    const auto id =
        state.next_ip_id(i % 2 ? b : a, t, 0, ReplyKind::kEcho);
    EXPECT_LT(static_cast<std::uint16_t>(id - prev), 0x7FFF);
    prev = id;
  }
}

TEST(RouterState, ConstantZero) {
  const auto spec = spec_with(topo::IpIdPolicy::kConstantZero);
  RouterState state(spec, Rng(4));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(state.next_ip_id(net::Ipv4Address(10, 0, 0, 1),
                               1'000'000'000 + i * 1'000'000, 777,
                               ReplyKind::kError),
              0);
  }
}

TEST(RouterState, EchoProbeCopiesProbeId) {
  const auto spec = spec_with(topo::IpIdPolicy::kEchoProbe);
  RouterState state(spec, Rng(5));
  EXPECT_EQ(state.next_ip_id(net::Ipv4Address(10, 0, 0, 1), 1'000'000'000,
                             0xBEEF, ReplyKind::kError),
            0xBEEF);
}

TEST(RouterState, RandomPolicyNotMonotonic) {
  const auto spec = spec_with(topo::IpIdPolicy::kRandom);
  RouterState state(spec, Rng(6));
  int backwards = 0;
  std::uint16_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto id = state.next_ip_id(net::Ipv4Address(10, 0, 0, 1),
                                     1'000'000'000 + i * 1'000'000, 0,
                                     ReplyKind::kError);
    if (i > 0 && static_cast<std::uint16_t>(id - prev) > 0x7FFF) ++backwards;
    prev = id;
  }
  EXPECT_GT(backwards, 10);
}

TEST(RouterState, CounterWrapsAround16Bits) {
  auto spec = spec_with(topo::IpIdPolicy::kSharedCounter, 60000.0);
  RouterState state(spec, Rng(7));
  const net::Ipv4Address a(10, 0, 0, 1);
  Nanos t = 1'000'000'000;
  std::uint16_t prev = state.next_ip_id(a, t, 0, ReplyKind::kError);
  bool wrapped = false;
  for (int i = 0; i < 300; ++i) {
    t += 10'000'000;  // 10 ms at 60k/s ~ 600 per step
    const auto id = state.next_ip_id(a, t, 0, ReplyKind::kError);
    if (id < prev) wrapped = true;
    // Forward delta must stay small even across the wrap.
    EXPECT_LT(static_cast<std::uint16_t>(id - prev), 2000);
    prev = id;
  }
  EXPECT_TRUE(wrapped);
}

}  // namespace
}  // namespace mmlpt::fakeroute
