#include "fakeroute/failure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/stopping_points.h"
#include "topology/reference.h"

namespace mmlpt::fakeroute {
namespace {

TEST(Failure, SingleSuccessorNeverFails) {
  const int nk[] = {0, 6, 11};
  EXPECT_DOUBLE_EQ(vertex_failure_probability(1, nk), 0.0);
  EXPECT_DOUBLE_EQ(vertex_failure_probability(0, nk), 0.0);
}

// The paper's Sec. 3 example: two successors, n1 = 6 (per-vertex bound
// 0.05) -> failure (1/2)^(n1-1) = 0.03125.
TEST(Failure, PaperSection3Example) {
  const int nk[] = {0, 6, 11, 16};
  EXPECT_NEAR(vertex_failure_probability(2, nk), 0.03125, 1e-12);
}

TEST(Failure, TwoSuccessorsClosedForm) {
  // P(fail) = (1/2)^(n1-1) for K = 2 regardless of later stopping points.
  for (int n1 = 3; n1 <= 12; ++n1) {
    const int nk[] = {0, n1, n1 + 10};
    EXPECT_NEAR(vertex_failure_probability(2, nk),
                std::pow(0.5, n1 - 1), 1e-12)
        << "n1=" << n1;
  }
}

TEST(Failure, MoreSuccessorsHarder) {
  const int nk[] = {0, 6, 11, 16, 21, 27};
  double prev = 0.0;
  for (int k = 2; k <= 5; ++k) {
    const double p = vertex_failure_probability(k, nk);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Failure, LargerStoppingPointsLowerFailure) {
  const int loose[] = {0, 6, 11, 16};
  const int tight[] = {0, 9, 17, 25};
  EXPECT_GT(vertex_failure_probability(3, loose),
            vertex_failure_probability(3, tight));
}

TEST(Failure, MonteCarloAgreement) {
  // Cross-check the DP against brute-force simulation of the stopping
  // process for K = 3.
  const int nk[] = {0, 6, 11, 16};
  const double dp = vertex_failure_probability(3, nk);

  Rng rng(99);
  const int runs = 200000;
  int failures = 0;
  for (int r = 0; r < runs; ++r) {
    int found = 1;  // first probe finds one
    int sent = 1;
    while (true) {
      if (found == 3) break;
      if (sent >= nk[found]) {
        ++failures;
        break;
      }
      ++sent;
      if (rng.real() < (3.0 - found) / 3.0) ++found;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / runs, dp, 0.003);
}

TEST(Failure, TopologyProductRule) {
  const int nk[] = {0, 6, 11, 16, 21, 27};
  // simplest diamond: only the divergence point branches (K=2).
  EXPECT_NEAR(
      topology_failure_probability(topo::simplest_diamond(), nk), 0.03125,
      1e-12);
  // fig1 unmeshed: divergence K=4 plus 4 vertices with K=1, 2 with K=1.
  const double div4 = vertex_failure_probability(4, nk);
  EXPECT_NEAR(topology_failure_probability(topo::fig1_unmeshed(), nk),
              div4, 1e-12);
  // fig1 meshed: divergence K=4 and four K=2 vertices.
  const double k2 = vertex_failure_probability(2, nk);
  const double expected = 1.0 - (1.0 - div4) * std::pow(1.0 - k2, 4);
  EXPECT_NEAR(topology_failure_probability(topo::fig1_meshed(), nk),
              expected, 1e-12);
}

TEST(Failure, UsesStoppingPointsFromCore) {
  // Veitch Table 1 stopping points keep the simplest diamond failure
  // under the per-vertex epsilon.
  const auto stopping = core::StoppingPoints::veitch_table1();
  const auto table = stopping.table(8);
  const double p = topology_failure_probability(topo::simplest_diamond(),
                                                table);
  EXPECT_LE(p, stopping.epsilon());
  EXPECT_GT(p, 0.0);
}

}  // namespace
}  // namespace mmlpt::fakeroute
