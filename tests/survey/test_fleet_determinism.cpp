// The fleet determinism contract (the property the whole orchestrator is
// built around): for a fixed seed, jobs=1 and jobs=8 produce identical
// merged DiamondAccounting and byte-identical per-destination JSON.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "orchestrator/result_sink.h"
#include "survey/ip_survey.h"
#include "survey/router_survey.h"

namespace mmlpt::survey {
namespace {

/// Everything observable about one side of the accounting, flattened for
/// equality comparison.
std::string accounting_fingerprint(const DiamondDistributions& d) {
  std::ostringstream out;
  out << d.total << '|' << d.meshed << '|' << d.asymmetric << '|'
      << d.asymmetric_unmeshed << '|' << d.length2 << '\n';
  for (const auto& [key, count] : d.max_width.bins()) {
    out << 'w' << key << ':' << count << ' ';
  }
  for (const auto& [key, count] : d.max_length.bins()) {
    out << 'l' << key << ':' << count << ' ';
  }
  for (const auto& [key, count] : d.width_asymmetry.bins()) {
    out << 'a' << key << ':' << count << ' ';
  }
  for (const auto& [cell, count] : d.joint_length_width.cells()) {
    out << 'j' << cell.first << ',' << cell.second << ':' << count << ' ';
  }
  for (const auto& [value, fraction] : d.meshed_hop_ratio.points()) {
    out << 'm' << value << ':' << fraction << ' ';
  }
  for (const auto& [value, fraction] : d.probability_difference.points()) {
    out << 'p' << value << ':' << fraction << ' ';
  }
  for (const auto& [value, fraction] : d.meshing_miss.points()) {
    out << 'x' << value << ':' << fraction << ' ';
  }
  return std::move(out).str();
}

struct IpRun {
  IpSurveyResult result;
  std::string jsonl;
};

IpRun run_ip(int jobs) {
  IpSurveyConfig config;
  config.routes = 40;
  config.distinct_diamonds = 12;
  config.seed = 21;
  config.jobs = jobs;
  IpRun run;
  std::ostringstream out;
  {
    orchestrator::ResultSink sink(out);
    run.result = run_ip_survey(config, &sink);
  }
  run.jsonl = out.str();
  return run;
}

TEST(FleetDeterminism, IpSurveyIdenticalAcrossJobCounts) {
  const auto serial = run_ip(1);
  const auto fleet = run_ip(8);

  // Identical per-destination JSON, byte for byte, in the same order.
  EXPECT_FALSE(serial.jsonl.empty());
  EXPECT_EQ(serial.jsonl, fleet.jsonl);

  // Identical merged accounting on both the measured and distinct sides.
  EXPECT_EQ(serial.result.routes_traced, fleet.result.routes_traced);
  EXPECT_EQ(serial.result.routes_with_diamonds,
            fleet.result.routes_with_diamonds);
  EXPECT_EQ(serial.result.total_packets, fleet.result.total_packets);
  EXPECT_EQ(accounting_fingerprint(serial.result.accounting.measured()),
            accounting_fingerprint(fleet.result.accounting.measured()));
  EXPECT_EQ(accounting_fingerprint(serial.result.accounting.distinct()),
            accounting_fingerprint(fleet.result.accounting.distinct()));
}

TEST(FleetDeterminism, IpSurveyJsonlHasOneOrderedLinePerRoute) {
  const auto fleet = run_ip(4);
  std::istringstream lines(fleet.jsonl);
  std::string line;
  std::size_t index = 0;
  while (std::getline(lines, line)) {
    const auto expected_prefix = "{\"index\":" + std::to_string(index) + ",";
    EXPECT_EQ(line.rfind(expected_prefix, 0), 0u)
        << "line " << index << " starts with: " << line.substr(0, 40);
    ++index;
  }
  EXPECT_EQ(index, 40u);
}

TEST(FleetDeterminism, RouterSurveyIdenticalAcrossJobCounts) {
  const auto run_with = [](int jobs) {
    RouterSurveyConfig config;
    config.routes = 8;
    config.distinct_diamonds = 6;
    config.multilevel.rounds = 2;
    config.seed = 11;
    config.jobs = jobs;
    std::ostringstream out;
    RouterSurveyResult result;
    {
      orchestrator::ResultSink sink(out);
      result = run_router_survey(config, &sink);
    }
    return std::pair<RouterSurveyResult, std::string>(std::move(result),
                                                      out.str());
  };
  const auto [serial, serial_jsonl] = run_with(1);
  const auto [fleet, fleet_jsonl] = run_with(8);

  EXPECT_FALSE(serial_jsonl.empty());
  EXPECT_EQ(serial_jsonl, fleet_jsonl);
  EXPECT_EQ(serial.routes_traced, fleet.routes_traced);
  EXPECT_EQ(serial.total_packets, fleet.total_packets);
  EXPECT_EQ(serial.unique_diamonds, fleet.unique_diamonds);
  EXPECT_EQ(serial.resolution_counts, fleet.resolution_counts);
  EXPECT_EQ(serial.distinct_router_size.bins(),
            fleet.distinct_router_size.bins());
  EXPECT_EQ(serial.aggregated_router_size.bins(),
            fleet.aggregated_router_size.bins());
  EXPECT_EQ(serial.ip_width.bins(), fleet.ip_width.bins());
  EXPECT_EQ(serial.router_width.bins(), fleet.router_width.bins());
  EXPECT_EQ(serial.width_before_after.cells(),
            fleet.width_before_after.cells());
}

TEST(FleetDeterminism, RateLimitedSurveyTracesIdentically) {
  // A (generous) pps budget slows the survey down but must not change a
  // single trace: throttling gates WHEN probes go out, not what they are.
  IpSurveyConfig config;
  config.routes = 6;
  config.distinct_diamonds = 5;
  config.seed = 9;
  const auto unlimited = run_ip_survey(config);
  config.jobs = 4;
  config.pps = 50000.0;
  config.burst = 256;
  const auto limited = run_ip_survey(config);
  EXPECT_EQ(unlimited.total_packets, limited.total_packets);
  EXPECT_EQ(accounting_fingerprint(unlimited.accounting.measured()),
            accounting_fingerprint(limited.accounting.measured()));
}

}  // namespace
}  // namespace mmlpt::survey
