#include <gtest/gtest.h>

#include "survey/accounting.h"
#include "survey/alias_eval.h"
#include "survey/evaluation.h"
#include "survey/ip_survey.h"
#include "survey/route_feeder.h"
#include "survey/router_survey.h"
#include "topology/reference.h"

namespace mmlpt::survey {
namespace {

TEST(Accounting, MeasuredVsDistinct) {
  DiamondAccounting acc(2);
  const auto g = topo::simplest_diamond();
  acc.record_all(g);
  acc.record_all(g);  // same key: measured twice, distinct once
  EXPECT_EQ(acc.measured().total, 2u);
  EXPECT_EQ(acc.distinct().total, 1u);
  EXPECT_EQ(acc.measured().max_width.count(2), 2u);
  EXPECT_EQ(acc.distinct().max_width.count(2), 1u);
}

TEST(Accounting, ClassifiesShapes) {
  DiamondAccounting acc(2);
  acc.record_all(topo::fig1_meshed());
  acc.record_all(topo::fig6_left());
  const auto& d = acc.distinct();
  EXPECT_EQ(d.total, 2u);
  EXPECT_EQ(d.meshed, 1u);
  EXPECT_EQ(d.asymmetric, 1u);
  EXPECT_EQ(d.asymmetric_unmeshed, 1u);
  EXPECT_FALSE(d.meshing_miss.empty());
  EXPECT_FALSE(d.probability_difference.empty());
}

TEST(IpSurvey, SmallSurveyRuns) {
  IpSurveyConfig config;
  config.routes = 30;
  config.distinct_diamonds = 10;
  config.seed = 5;
  const auto result = run_ip_survey(config);
  EXPECT_EQ(result.routes_traced, 30u);
  EXPECT_GT(result.routes_with_diamonds, 20u);
  EXPECT_GT(result.accounting.measured().total,
            result.accounting.distinct().total);
  EXPECT_GT(result.total_packets, 0u);
}

TEST(IpSurvey, DistinctBoundedByWorldSize) {
  IpSurveyConfig config;
  config.routes = 40;
  config.distinct_diamonds = 5;
  const auto result = run_ip_survey(config);
  // At most 5 distinct templates exist in the world.
  EXPECT_LE(result.accounting.distinct().total, 5u);
}

TEST(RouteFeeder, LazyGenerationMatchesTheSerialSequence) {
  const topo::GeneratorConfig generator;
  topo::SurveyWorld direct(generator, 6, 42);
  std::vector<std::uint32_t> expected;
  for (int i = 0; i < 10; ++i) {
    expected.push_back(direct.next_route().destination.value());
  }

  topo::SurveyWorld lazy(generator, 6, 42);
  RouteFeeder feeder(lazy, 10);
  // Out-of-order first access still yields the in-order sequence: asking
  // for route 7 generates 0..7 behind the scenes.
  EXPECT_EQ(feeder.route(7).destination.value(), expected[7]);
  EXPECT_EQ(feeder.route(2).destination.value(), expected[2]);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(feeder.route(i).destination.value(), expected[i]);
  }
}

TEST(RouteFeeder, ReleaseShrinksTheLiveWindow) {
  const topo::GeneratorConfig generator;
  topo::SurveyWorld world(generator, 4, 7);
  RouteFeeder feeder(world, 8);
  EXPECT_EQ(feeder.live(), 0u);
  (void)feeder.route(3);  // generates 0..3
  EXPECT_EQ(feeder.live(), 4u);
  feeder.release(0);
  feeder.release(1);
  EXPECT_EQ(feeder.live(), 2u);
  (void)feeder.route(7);
  EXPECT_EQ(feeder.live(), 6u);
  EXPECT_EQ(feeder.count(), 8u);
}

TEST(Evaluation, VariantsBehaveAsExpected) {
  EvaluationConfig config;
  config.pairs = 12;
  config.distinct_diamonds = 8;
  config.seed = 3;
  const auto result = run_evaluation(config);
  ASSERT_EQ(result.pairs.size(), 12u);

  // Single flow discovers far less and sends far fewer packets.
  EXPECT_LT(result.aggregate_vertex_ratio(Variant::kSingleFlow), 0.95);
  EXPECT_LT(result.aggregate_edge_ratio(Variant::kSingleFlow),
            result.aggregate_vertex_ratio(Variant::kSingleFlow));
  EXPECT_LT(result.aggregate_packet_ratio(Variant::kSingleFlow), 0.2);

  // The MDA-Lite discovers about as much as the second MDA run.
  EXPECT_NEAR(result.aggregate_vertex_ratio(Variant::kMdaLitePhi2), 1.0,
              0.05);
  // ... while saving packets on average.
  EXPECT_LT(result.aggregate_packet_ratio(Variant::kMdaLitePhi2), 1.0);

  // First MDA against itself is exactly 1.
  EXPECT_DOUBLE_EQ(result.aggregate_vertex_ratio(Variant::kMda1), 1.0);
  EXPECT_DOUBLE_EQ(result.aggregate_packet_ratio(Variant::kMda1), 1.0);
}

TEST(Evaluation, RatioCdfHasOneEntryPerPair) {
  EvaluationConfig config;
  config.pairs = 6;
  config.distinct_diamonds = 4;
  const auto result = run_evaluation(config);
  const auto cdf =
      result.ratio_cdf(Variant::kMdaLitePhi2, &PairOutcome::packet_ratio);
  EXPECT_EQ(cdf.size(), 6u);
}

TEST(RouterSurvey, ClassifyResolutionCases) {
  const auto ip = topo::simplest_diamond();
  const topo::Diamond d{0, 2};

  // No change.
  EXPECT_EQ(classify_resolution(ip, ip, d),
            topo::ResolutionClass::kNoChange);

  // One path: middle hop collapses.
  topo::MultipathGraph collapsed;
  collapsed.add_hop();
  collapsed.add_hop();
  collapsed.add_hop();
  const auto a = collapsed.add_vertex(0, topo::reference_addr(1, 0, 0));
  const auto b = collapsed.add_vertex(1, topo::reference_addr(1, 1, 0));
  const auto c = collapsed.add_vertex(2, topo::reference_addr(1, 2, 0));
  collapsed.add_edge(a, b);
  collapsed.add_edge(b, c);
  EXPECT_EQ(classify_resolution(ip, collapsed, d),
            topo::ResolutionClass::kOnePath);
}

TEST(RouterSurvey, ClassifySingleVsMultipleSmaller) {
  // Length-4 diamond, widths 1,4,4,4,1.
  topo::MultipathGraph ip;
  for (int h = 0; h < 5; ++h) ip.add_hop();
  std::vector<std::vector<topo::VertexId>> ids(5);
  int next = 1;
  for (int h = 0; h < 5; ++h) {
    const int w = (h == 0 || h == 4) ? 1 : 4;
    for (int i = 0; i < w; ++i) {
      ids[h].push_back(ip.add_vertex(static_cast<std::uint16_t>(h),
                                     net::Ipv4Address(10, 7, h, next++)));
    }
  }
  // (Edges are irrelevant to the width-based classification; skip them.)
  const topo::Diamond d{0, 4};

  // Merge the middle hop into 2: still one (smaller) diamond.
  topo::MultipathGraph smaller;
  for (int h = 0; h < 5; ++h) smaller.add_hop();
  next = 1;
  for (int h = 0; h < 5; ++h) {
    const int w = (h == 0 || h == 4) ? 1 : (h == 2 ? 2 : 4);
    for (int i = 0; i < w; ++i) {
      (void)smaller.add_vertex(static_cast<std::uint16_t>(h),
                               net::Ipv4Address(10, 8, h, next++));
    }
  }
  EXPECT_EQ(classify_resolution(ip, smaller, d),
            topo::ResolutionClass::kSingleSmallerDiamond);

  // Collapse ONLY the middle hop to 1: splits into two diamonds.
  topo::MultipathGraph split;
  for (int h = 0; h < 5; ++h) split.add_hop();
  next = 1;
  for (int h = 0; h < 5; ++h) {
    const int w = (h == 0 || h == 4 || h == 2) ? 1 : 4;
    for (int i = 0; i < w; ++i) {
      (void)split.add_vertex(static_cast<std::uint16_t>(h),
                             net::Ipv4Address(10, 9, h, next++));
    }
  }
  EXPECT_EQ(classify_resolution(ip, split, d),
            topo::ResolutionClass::kMultipleSmallerDiamonds);
}

TEST(RouterSurvey, SmallRouterSurveyRuns) {
  RouterSurveyConfig config;
  config.routes = 10;
  config.distinct_diamonds = 6;
  config.multilevel.rounds = 3;
  config.seed = 11;
  const auto result = run_router_survey(config);
  EXPECT_EQ(result.routes_traced, 10u);
  EXPECT_GT(result.unique_diamonds, 0u);
  // Every unique diamond lands in exactly one class.
  std::uint64_t classified = 0;
  for (const auto& [cls, count] : result.resolution_counts) {
    classified += count;
  }
  EXPECT_EQ(classified, result.unique_diamonds);
  EXPECT_EQ(result.ip_width.total(), result.unique_diamonds);
}

TEST(AliasEval, RoundsStatsShape) {
  AliasEvalConfig config;
  config.routes = 4;
  config.distinct_diamonds = 4;
  config.multilevel.rounds = 3;
  config.direct.rounds = 1;
  config.direct.samples_per_round = 10;
  config.seed = 13;
  const auto result = run_alias_eval(config);
  ASSERT_EQ(result.multilevel_results.size(), 4u);

  const auto stats = alias_rounds_stats(result.multilevel_results);
  ASSERT_EQ(stats.precision.size(), 4u);  // rounds 0..3
  // Final round is its own reference.
  EXPECT_DOUBLE_EQ(stats.precision.back(), 1.0);
  EXPECT_DOUBLE_EQ(stats.recall.back(), 1.0);
  // Probe ratio grows monotonically from 1.0.
  EXPECT_DOUBLE_EQ(stats.probe_ratio.front(), 1.0);
  for (std::size_t r = 1; r < stats.probe_ratio.size(); ++r) {
    EXPECT_GE(stats.probe_ratio[r], stats.probe_ratio[r - 1]);
  }
}

TEST(AliasEval, Table2CellsConsistent) {
  AliasEvalConfig config;
  config.routes = 6;
  config.distinct_diamonds = 5;
  config.multilevel.rounds = 2;
  config.direct.rounds = 1;
  config.direct.samples_per_round = 15;
  config.seed = 17;
  const auto result = run_alias_eval(config);
  const auto& t = result.table2;
  EXPECT_EQ(t.accept_accept + t.accept_indirect_reject_direct +
                t.accept_indirect_unable_direct +
                t.reject_indirect_accept_direct +
                t.unable_indirect_accept_direct,
            t.total_sets);
}

}  // namespace
}  // namespace mmlpt::survey
