// The shared CLI helpers in tools/cli_common.h: usage blocks rendered
// from one option table (so the three tools cannot drift), and the
// stop-set flag-pair validation.
#include "cli_common.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

namespace mmlpt::tools {
namespace {

Flags make_flags(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test"));
  for (auto& arg : args) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

std::string padded_flag(const std::string& flag) {
  std::string line = "  " + flag;
  line.append(kUsageHelpColumn - line.size(), ' ');
  return line;
}

TEST(FormatOptionBlock, AlignsHelpAtTheSharedColumn) {
  const OptionSpec table[] = {{"--jobs N", "worker count"}};
  const auto block = format_option_block(table);
  EXPECT_EQ(block, padded_flag("--jobs N") + "worker count\n");
  // Two-space indent + flag + padding lands exactly on the help column.
  EXPECT_EQ(block.find("worker"), kUsageHelpColumn);
}

TEST(FormatOptionBlock, ContinuationLinesShareTheColumn) {
  const OptionSpec table[] = {{"--pps X", "first line\nsecond line"}};
  const auto block = format_option_block(table);
  const std::string indent(kUsageHelpColumn, ' ');
  EXPECT_EQ(block, padded_flag("--pps X") + "first line\n" + indent +
                       "second line\n");
}

TEST(FormatOptionBlock, WideFlagDropsHelpToTheNextLine) {
  // Flag + indent + two mandatory spaces exceeds the column: the help
  // starts on its own line rather than drifting right.
  const OptionSpec table[] = {
      {"--a-very-long-flag NAME", "does a thing"}};
  const auto block = format_option_block(table);
  const std::string indent(kUsageHelpColumn, ' ');
  EXPECT_EQ(block, "  --a-very-long-flag NAME\n" + indent + "does a thing\n");
}

TEST(UsageBlocks, FleetUsageListsEveryFlagExactlyOnce) {
  // Match the flag column only ("\n  --flag"): help text legitimately
  // cross-references other flags.
  const auto usage = "\n" + fleet_options_usage();
  for (const char* flag :
       {"--jobs", "--window", "--pps", "--burst", "--merge-windows",
        "--pipeline-depth", "--transport", "--fsync", "--topology-cache",
        "--stop-set", "--metrics-out", "--trace-events"}) {
    const auto entry = std::string("\n  ") + flag;
    const auto first = usage.find(entry);
    ASSERT_NE(first, std::string::npos) << flag;
    EXPECT_EQ(usage.find(entry, first + 1), std::string::npos)
        << flag << " documented twice";
  }
  // The trace-only blocks are the stop-set + observability tail of the
  // fleet block.
  const auto tail = stop_set_options_usage() + obs_options_usage();
  EXPECT_EQ(usage.substr(usage.size() - tail.size()), tail);
}

TEST(StopSetOptionsParsing, DefaultsToFeatureOff) {
  const auto options = parse_stop_set_options(make_flags({}));
  EXPECT_TRUE(options.topology_cache.empty());
  EXPECT_FALSE(options.consult);
}

TEST(StopSetOptionsParsing, CachePathAloneMeansRecordOnly) {
  const auto options = parse_stop_set_options(
      make_flags({"--topology-cache", "warm.mtps"}));
  EXPECT_EQ(options.topology_cache, "warm.mtps");
  EXPECT_FALSE(options.consult);
}

TEST(StopSetOptionsParsing, ConsultRequiresACachePath) {
  EXPECT_THROW((void)parse_stop_set_options(make_flags({"--stop-set"})),
               ConfigError);
  const auto options = parse_stop_set_options(
      make_flags({"--stop-set", "--topology-cache", "warm.mtps"}));
  EXPECT_TRUE(options.consult);
}

TEST(FleetOptionsParsing, CarriesTheStopSetPair) {
  const auto options = parse_fleet_options(make_flags(
      {"--jobs", "3", "--topology-cache", "warm.mtps", "--stop-set"}));
  EXPECT_EQ(options.jobs, 3);
  EXPECT_EQ(options.stop_set.topology_cache, "warm.mtps");
  EXPECT_TRUE(options.stop_set.consult);
}

TEST(ParseTransport, DefaultsToAutoAndRejectsUnknownBackends) {
  EXPECT_EQ(parse_transport(make_flags({})), probe::TransportKind::kAuto);
  EXPECT_EQ(parse_transport(make_flags({"--transport", "auto"})),
            probe::TransportKind::kAuto);
  EXPECT_EQ(parse_transport(make_flags({"--transport", "poll"})),
            probe::TransportKind::kPoll);
  EXPECT_EQ(parse_transport(make_flags({"--transport", "uring"})),
            probe::TransportKind::kUring);
  EXPECT_THROW((void)parse_transport(make_flags({"--transport", "dpdk"})),
               ConfigError);
}

TEST(ParsePipelineDepth, DefaultsToOneAndRejectsNonPositive) {
  EXPECT_EQ(parse_pipeline_depth(make_flags({})), 1);
  EXPECT_EQ(parse_pipeline_depth(make_flags({"--pipeline-depth", "4"})), 4);
  EXPECT_THROW(
      (void)parse_pipeline_depth(make_flags({"--pipeline-depth", "0"})),
      ConfigError);
  EXPECT_THROW(
      (void)parse_pipeline_depth(make_flags({"--pipeline-depth", "-2"})),
      ConfigError);
}

TEST(FleetOptionsParsing, CarriesTransportAndPipelineDepth) {
  const auto defaults = parse_fleet_options(make_flags({}));
  EXPECT_EQ(defaults.transport, probe::TransportKind::kAuto);
  EXPECT_EQ(defaults.pipeline_depth, 1);

  const auto tuned = parse_fleet_options(make_flags(
      {"--transport", "poll", "--pipeline-depth", "3"}));
  EXPECT_EQ(tuned.transport, probe::TransportKind::kPoll);
  EXPECT_EQ(tuned.pipeline_depth, 3);
}

TEST(TransportNames, RoundTripAndResolveToARealBackend) {
  EXPECT_EQ(probe::transport_name(probe::TransportKind::kPoll),
            std::string("poll"));
  EXPECT_EQ(probe::transport_name(probe::TransportKind::kUring),
            std::string("uring"));
  // auto resolves to whatever this kernel supports — never "auto".
  const std::string resolved(
      probe::resolved_transport_name(probe::TransportKind::kAuto));
  EXPECT_TRUE(resolved == "poll" || resolved == "uring") << resolved;
}

TEST(ParseAlgorithm, KnowsEveryNameAndRejectsTheRest) {
  EXPECT_EQ(parse_algorithm(make_flags({})), core::Algorithm::kMdaLite);
  EXPECT_EQ(parse_algorithm(make_flags({"--algorithm", "mda"})),
            core::Algorithm::kMda);
  EXPECT_EQ(parse_algorithm(make_flags({"--algorithm", "mda-lite"})),
            core::Algorithm::kMdaLite);
  EXPECT_EQ(parse_algorithm(make_flags({"--algorithm", "single-flow"})),
            core::Algorithm::kSingleFlow);
  EXPECT_THROW((void)parse_algorithm(make_flags({"--algorithm", "dfs"})),
               ConfigError);
}

/// Writes `content` to a temp file, removes it on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& content)
      : path_("/tmp/mmlpt-cli-test-" + std::to_string(::getpid()) + "-" +
              std::to_string(++counter_) + ".txt") {
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(ReadDestinationLabels, SkipsBlanksCommentsAndCarriageReturns) {
  const TempFile file("10.0.0.1\r\n\n# a comment\n10.0.0.2\n");
  const auto labels = read_destination_labels(file.path());
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "10.0.0.1");
  EXPECT_EQ(labels[1], "10.0.0.2");
}

TEST(ReadDestinationLabels, MissingFileIsASystemError) {
  EXPECT_THROW((void)read_destination_labels("/nonexistent/dests.txt"),
               SystemError);
}

TEST(ParseJobSpec, DefaultsMatchTheFleetJobSpecDefaults) {
  const auto spec = parse_job_spec(make_flags({}));
  EXPECT_EQ(spec, daemon::FleetJobSpec{});
}

TEST(ParseJobSpec, CarriesEveryFlagIntoTheSpec) {
  const auto spec = parse_job_spec(make_flags(
      {"--routes", "12", "--family", "6", "--algorithm", "mda", "--seed",
       "42", "--distinct", "7", "--shared-prefix", "3", "--window", "4"}));
  EXPECT_TRUE(spec.labels.empty());
  EXPECT_EQ(spec.routes, 12u);
  EXPECT_EQ(spec.family, net::Family::kIpv6);
  EXPECT_EQ(spec.algorithm, core::Algorithm::kMda);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.distinct, 7u);
  EXPECT_EQ(spec.shared_prefix, 3);
  EXPECT_EQ(spec.window, 4);
}

TEST(ParseJobSpec, DestinationsFileOverridesRoutes) {
  const TempFile file("a\nb\nc\n");
  const auto spec = parse_job_spec(
      make_flags({"--destinations", file.path(), "--routes", "99"}));
  EXPECT_EQ(spec.labels, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(spec.destination_count(), 3u);
}

TEST(ParseJobSpec, RejectsEmptyListAndNegativePrefix) {
  const TempFile empty("# only comments\n\n");
  EXPECT_THROW(
      (void)parse_job_spec(make_flags({"--destinations", empty.path()})),
      ConfigError);
  EXPECT_THROW((void)parse_job_spec(make_flags({"--shared-prefix", "-1"})),
               ConfigError);
  EXPECT_THROW((void)parse_job_spec(make_flags({"--window", "0"})),
               ConfigError);
}

TEST(ParseDaemonOptions, RequiresTheSocketPath) {
  EXPECT_THROW((void)parse_daemon_options(make_flags({})), ConfigError);
}

TEST(ParseDaemonOptions, DefaultsAndOverrides) {
  const auto defaults =
      parse_daemon_options(make_flags({"--socket", "/tmp/d.sock"}));
  EXPECT_EQ(defaults.socket, "/tmp/d.sock");
  EXPECT_EQ(defaults.admission.max_jobs_total, 8);
  EXPECT_EQ(defaults.admission.max_jobs_per_tenant, 2);
  EXPECT_EQ(defaults.admission.tenant_pps, 0.0);
  EXPECT_EQ(defaults.admission.tenant_burst, 64);
  EXPECT_EQ(defaults.queue, 4);

  const auto tuned = parse_daemon_options(make_flags(
      {"--socket", "/tmp/d.sock", "--max-jobs", "16",
       "--max-jobs-per-tenant", "4", "--tenant-pps", "250.5",
       "--tenant-burst", "8", "--queue", "0"}));
  EXPECT_EQ(tuned.admission.max_jobs_total, 16);
  EXPECT_EQ(tuned.admission.max_jobs_per_tenant, 4);
  EXPECT_DOUBLE_EQ(tuned.admission.tenant_pps, 250.5);
  EXPECT_EQ(tuned.admission.tenant_burst, 8);
  EXPECT_EQ(tuned.queue, 0);
}

TEST(ParseDaemonOptions, RejectsOutOfRangeValues) {
  EXPECT_THROW((void)parse_daemon_options(make_flags(
                   {"--socket", "s", "--tenant-pps", "-1"})),
               ConfigError);
  EXPECT_THROW((void)parse_daemon_options(make_flags(
                   {"--socket", "s", "--tenant-burst", "0"})),
               ConfigError);
  EXPECT_THROW((void)parse_daemon_options(
                   make_flags({"--socket", "s", "--queue", "-1"})),
               ConfigError);
}

TEST(UsageBlocks, DaemonAndClientBlocksListEveryFlagExactlyOnce) {
  const struct {
    std::string usage;
    std::vector<const char*> flags;
  } blocks[] = {
      {job_spec_options_usage(),
       {"--destinations", "--routes", "-6 | --family", "--algorithm",
        "--distinct", "--shared-prefix", "--seed", "--window"}},
      {daemon_options_usage(),
       {"--socket", "--max-jobs N", "--max-jobs-per-tenant", "--tenant-pps",
        "--tenant-burst", "--queue"}},
      {client_options_usage(),
       {"--socket", "--tenant", "--output", "--status", "--metrics",
        "--cancel-after-lines"}},
  };
  for (const auto& block : blocks) {
    const auto usage = "\n" + block.usage;
    for (const char* flag : block.flags) {
      const auto entry = std::string("\n  ") + flag;
      const auto first = usage.find(entry);
      ASSERT_NE(first, std::string::npos) << flag;
      EXPECT_EQ(usage.find(entry, first + 1), std::string::npos)
          << flag << " documented twice";
    }
  }
}

TEST(ObsOptionsParsing, DefaultsToDisabled) {
  const auto options = parse_obs_options(make_flags({}));
  EXPECT_TRUE(options.metrics_out.empty());
  EXPECT_TRUE(options.trace_events.empty());
  const auto enabled = parse_obs_options(make_flags(
      {"--metrics-out", "m.prom", "--trace-events", "t.json"}));
  EXPECT_EQ(enabled.metrics_out, "m.prom");
  EXPECT_EQ(enabled.trace_events, "t.json");
}

TEST(ObsSession, InstallsAndClearsTheGlobalRecorder) {
  ASSERT_EQ(obs::recorder(), nullptr);
  {
    ObsOptions options;
    options.trace_events = "/tmp/mmlpt-cli-obs-" +
                           std::to_string(::getpid()) + "-unwritten.json";
    ObsSession session(std::move(options));
    EXPECT_NE(obs::recorder(), nullptr);
    // finish() was never called (the interrupt/throw path): the
    // destructor must still clear the global pointer.
  }
  EXPECT_EQ(obs::recorder(), nullptr);

  // No --trace-events: no recorder is ever installed.
  ObsSession off{ObsOptions{}};
  EXPECT_EQ(obs::recorder(), nullptr);
}

TEST(ObsSession, FinishWritesBothArtifacts) {
  const auto base =
      "/tmp/mmlpt-cli-obs-" + std::to_string(::getpid());
  ObsOptions options;
  options.metrics_out = base + ".prom";
  options.trace_events = base + ".json";
  {
    ObsSession session(std::move(options));
    session.registry()
        .counter("mmlpt_test_probes_total", "test series")
        ->add(7);
    obs::instant("marker", "test");
    session.finish();
    EXPECT_EQ(obs::recorder(), nullptr);  // cleared before the write
  }

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
  };
  const auto prom = slurp(base + ".prom");
  EXPECT_NE(prom.find("mmlpt_test_probes_total 7\n"), std::string::npos);
  const auto trace = slurp(base + ".json");
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"marker\""), std::string::npos);
  std::remove((base + ".prom").c_str());
  std::remove((base + ".json").c_str());
}

TEST(SummaryLine, PrintsOneJsonObjectListingNonZeroSeries) {
  obs::MetricsRegistry registry;
  registry
      .counter("mmlpt_transport_probes_sent_total", "h",
               {{"transport", "sim"}})
      ->add(64);
  (void)registry.counter("mmlpt_probe_retries_total", "h");  // stays 0

  testing::internal::CaptureStderr();
  SummaryLine("mmlpt_test")
      .field("destinations", std::uint64_t{8})
      .field("transport", "sim")
      .metrics(registry)
      .print();
  const auto line = testing::internal::GetCapturedStderr();

  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.substr(line.size() - 2), "}\n");
  EXPECT_NE(line.find("\"tool\":\"mmlpt_test\""), std::string::npos);
  EXPECT_NE(line.find("\"destinations\":8"), std::string::npos);
  EXPECT_NE(line.find("\"transport\":\"sim\""), std::string::npos);
  EXPECT_NE(line.find("\"mmlpt_transport_probes_sent_total"
                      "{transport=\\\"sim\\\"}\":64"),
            std::string::npos)
      << line;
  // Zero series are elided, not printed as noise.
  EXPECT_EQ(line.find("mmlpt_probe_retries_total"), std::string::npos);
}

}  // namespace
}  // namespace mmlpt::tools
