// The shared CLI helpers in tools/cli_common.h: usage blocks rendered
// from one option table (so the three tools cannot drift), and the
// stop-set flag-pair validation.
#include "cli_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mmlpt::tools {
namespace {

Flags make_flags(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("test"));
  for (auto& arg : args) argv.push_back(arg.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

std::string padded_flag(const std::string& flag) {
  std::string line = "  " + flag;
  line.append(kUsageHelpColumn - line.size(), ' ');
  return line;
}

TEST(FormatOptionBlock, AlignsHelpAtTheSharedColumn) {
  const OptionSpec table[] = {{"--jobs N", "worker count"}};
  const auto block = format_option_block(table);
  EXPECT_EQ(block, padded_flag("--jobs N") + "worker count\n");
  // Two-space indent + flag + padding lands exactly on the help column.
  EXPECT_EQ(block.find("worker"), kUsageHelpColumn);
}

TEST(FormatOptionBlock, ContinuationLinesShareTheColumn) {
  const OptionSpec table[] = {{"--pps X", "first line\nsecond line"}};
  const auto block = format_option_block(table);
  const std::string indent(kUsageHelpColumn, ' ');
  EXPECT_EQ(block, padded_flag("--pps X") + "first line\n" + indent +
                       "second line\n");
}

TEST(FormatOptionBlock, WideFlagDropsHelpToTheNextLine) {
  // Flag + indent + two mandatory spaces exceeds the column: the help
  // starts on its own line rather than drifting right.
  const OptionSpec table[] = {
      {"--a-very-long-flag NAME", "does a thing"}};
  const auto block = format_option_block(table);
  const std::string indent(kUsageHelpColumn, ' ');
  EXPECT_EQ(block, "  --a-very-long-flag NAME\n" + indent + "does a thing\n");
}

TEST(UsageBlocks, FleetUsageListsEveryFlagExactlyOnce) {
  // Match the flag column only ("\n  --flag"): help text legitimately
  // cross-references other flags.
  const auto usage = "\n" + fleet_options_usage();
  for (const char* flag :
       {"--jobs", "--window", "--pps", "--burst", "--merge-windows",
        "--fsync", "--topology-cache", "--stop-set"}) {
    const auto entry = std::string("\n  ") + flag;
    const auto first = usage.find(entry);
    ASSERT_NE(first, std::string::npos) << flag;
    EXPECT_EQ(usage.find(entry, first + 1), std::string::npos)
        << flag << " documented twice";
  }
  // The trace-only block is the stop-set tail of the fleet block.
  const auto stop_set = stop_set_options_usage();
  EXPECT_EQ(usage.substr(usage.size() - stop_set.size()), stop_set);
}

TEST(StopSetOptionsParsing, DefaultsToFeatureOff) {
  const auto options = parse_stop_set_options(make_flags({}));
  EXPECT_TRUE(options.topology_cache.empty());
  EXPECT_FALSE(options.consult);
}

TEST(StopSetOptionsParsing, CachePathAloneMeansRecordOnly) {
  const auto options = parse_stop_set_options(
      make_flags({"--topology-cache", "warm.mtps"}));
  EXPECT_EQ(options.topology_cache, "warm.mtps");
  EXPECT_FALSE(options.consult);
}

TEST(StopSetOptionsParsing, ConsultRequiresACachePath) {
  EXPECT_THROW((void)parse_stop_set_options(make_flags({"--stop-set"})),
               ConfigError);
  const auto options = parse_stop_set_options(
      make_flags({"--stop-set", "--topology-cache", "warm.mtps"}));
  EXPECT_TRUE(options.consult);
}

TEST(FleetOptionsParsing, CarriesTheStopSetPair) {
  const auto options = parse_fleet_options(make_flags(
      {"--jobs", "3", "--topology-cache", "warm.mtps", "--stop-set"}));
  EXPECT_EQ(options.jobs, 3);
  EXPECT_EQ(options.stop_set.topology_cache, "warm.mtps");
  EXPECT_TRUE(options.stop_set.consult);
}

}  // namespace
}  // namespace mmlpt::tools
