// IPv6 end-to-end integration: v6 ground truths through the full stack —
// flow-label Paris probes on the wire, ICMPv6 replies, every tracer, the
// multilevel degradation contract, and window invariance per family.
#include <gtest/gtest.h>

#include "core/multilevel.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"
#include "topology/reference.h"

namespace mmlpt {
namespace {

topo::GeneratorConfig v6_config() {
  topo::GeneratorConfig config;
  config.family = net::Family::kIpv6;
  return config;
}

TEST(EndToEndIpv6, GeneratedWorldsAreV6) {
  topo::RouteGenerator gen(v6_config(), 5);
  const auto route = gen.make_route();
  EXPECT_TRUE(route.source.is_v6());
  EXPECT_TRUE(route.destination.is_v6());
  for (topo::VertexId v = 0; v < route.graph.vertex_count(); ++v) {
    EXPECT_TRUE(route.graph.vertex(v).addr.is_v6());
  }
}

TEST(EndToEndIpv6, AllTracersRecoverGroundTruth) {
  // The acceptance criterion: tracing a v6 Fakeroute topology recovers
  // the ground-truth IP-level topology — for every algorithm.
  for (const auto algorithm :
       {core::Algorithm::kMda, core::Algorithm::kMdaLite}) {
    topo::RouteGenerator gen(v6_config(), 31);
    int full = 0;
    const int n = 12;
    for (int i = 0; i < n; ++i) {
      const auto route = gen.make_route();
      const auto result = core::run_trace(
          route, algorithm, {}, {}, 4000 + static_cast<std::uint64_t>(i));
      EXPECT_TRUE(result.reached_destination) << "route " << i;
      if (topo::same_topology(result.graph, route.graph)) ++full;
    }
    EXPECT_GE(full, n - 3);  // bounded failure probability, as on v4
  }
}

TEST(EndToEndIpv6, SingleFlowTracesOnePath) {
  topo::RouteGenerator gen(v6_config(), 32);
  const auto route = gen.make_route();
  const auto result =
      core::run_trace(route, core::Algorithm::kSingleFlow, {}, {}, 7);
  EXPECT_TRUE(result.reached_destination);
  for (std::uint16_t h = 0; h < result.graph.hop_count(); ++h) {
    EXPECT_LE(result.graph.vertices_at(h).size(), 1u);
  }
}

TEST(EndToEndIpv6, MirrorsV4DiscoveryOnTheSameStructure) {
  // A v4 reference diamond and its map_to_ipv6 image are the same
  // structure; the family must not change what the tracer discovers.
  const auto v4_graph = topo::fig1_unmeshed();
  const auto v6_graph = topo::map_to_ipv6(v4_graph);
  const auto v4 = core::run_trace(core::plain_ground_truth(v4_graph),
                                  core::Algorithm::kMda, {}, {}, 5);
  const auto v6 = core::run_trace(core::plain_ground_truth(v6_graph),
                                  core::Algorithm::kMda, {}, {}, 5);
  EXPECT_TRUE(topo::same_topology(v4.graph, v4_graph));
  EXPECT_TRUE(topo::same_topology(v6.graph, v6_graph));
  EXPECT_TRUE(v6.reached_destination);
}

core::MultilevelResult run_multilevel_v6(int window, std::uint64_t seed) {
  topo::RouteGenerator gen(v6_config(), 33);
  const auto route = gen.make_route();
  fakeroute::Simulator simulator(route, {}, seed);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = route.source;
  engine_config.destination = route.destination;
  probe::ProbeEngine engine(network, engine_config);
  core::MultilevelConfig config;
  config.trace.window = window;
  core::MultilevelTracer tracer(engine, config);
  return tracer.run();
}

TEST(EndToEndIpv6, MultilevelDegradesToIpLevelWithExplicitMarker) {
  const auto result = run_multilevel_v6(/*window=*/1, /*seed=*/9);
  EXPECT_FALSE(result.alias_supported);
  // Degraded: exactly the round-0 snapshot, no alias sets, no extra
  // probing beyond the trace itself.
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_TRUE(result.rounds[0].sets_by_hop.empty());
  EXPECT_EQ(result.total_packets, result.trace.packets);
  EXPECT_TRUE(
      topo::same_topology(result.router_graph, result.trace.graph));
  // The JSON carries the explicit marker.
  const auto json = core::multilevel_to_json(result);
  EXPECT_NE(json.find("\"alias\":\"unsupported-family\""),
            std::string::npos);

  // v4 JSON does NOT carry the key at all (output stability).
  core::MultilevelResult v4_result;
  v4_result.alias_supported = true;
  EXPECT_EQ(core::multilevel_to_json(v4_result).find("unsupported-family"),
            std::string::npos);
}

TEST(EndToEndIpv6, WindowInvarianceHoldsOnV6) {
  // PR 3's contract, per family: topology, packet accounting and the
  // full JSON are identical for every window size.
  const auto w1 = run_multilevel_v6(1, 11);
  const auto w32 = run_multilevel_v6(32, 11);
  EXPECT_EQ(core::multilevel_to_json(w1), core::multilevel_to_json(w32));
  EXPECT_EQ(w1.total_packets, w32.total_packets);
}

TEST(EndToEndIpv6, PerDestinationLbIgnoresTheFlowLabel) {
  // A per-destination load balancer hashes addresses only: every flow
  // label must ride the same path (the Sec. 7 assumption-2 violation
  // model, v6 edition — the label is the Paris identifier here).
  const auto route =
      core::plain_ground_truth(topo::map_to_ipv6(topo::fig1_unmeshed()));
  fakeroute::SimConfig sim;
  sim.per_destination_lb = true;
  fakeroute::Simulator simulator(route, sim, 5);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = route.source;
  engine_config.destination = route.destination;
  probe::ProbeEngine engine(network, engine_config);

  net::IpAddress first;
  for (probe::FlowId flow = 0; flow < 24; ++flow) {
    const auto r = engine.probe(flow, 2);
    ASSERT_TRUE(r.answered);
    if (flow == 0) {
      first = r.responder;
    } else {
      EXPECT_EQ(r.responder, first) << "flow " << flow;
    }
  }
}

TEST(EndToEndIpv6, EchoProbingWorksOnV6) {
  // Plain ground truth: every router answers direct probes.
  const auto route =
      core::plain_ground_truth(topo::map_to_ipv6(topo::fig1_unmeshed()));
  fakeroute::Simulator simulator(route, {}, 3);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = route.source;
  engine_config.destination = route.destination;
  probe::ProbeEngine engine(network, engine_config);

  const auto result = engine.ping(route.destination);
  EXPECT_TRUE(result.answered);
  EXPECT_EQ(result.responder, route.destination);
  EXPECT_EQ(result.reply_ip_id, 0);  // no identification field on v6
}

}  // namespace
}  // namespace mmlpt
