// The paper's Sec. 7 future-work scenarios: Fakeroute simulating
// exceptions to the MDA model assumptions — unanswered probes, ICMP rate
// limiting, per-packet load balancing.
#include <gtest/gtest.h>

#include "core/validation.h"
#include "topology/reference.h"

namespace mmlpt {
namespace {

TEST(AssumptionViolations, RateLimitingDegradesDiscovery) {
  // fig1-meshed: each hop-2 vertex has two successors whose discovery
  // needs n1 answered probes; severe rate limiting at the successor
  // routers starves the stopping rule and edges go missing.
  const auto graph = topo::fig1_meshed();
  const auto truth = core::plain_ground_truth(graph);

  core::TraceConfig trace;
  trace.alpha = 0.05;
  trace.max_branching = 1;  // small budgets: n1 = 6

  fakeroute::SimConfig limited;
  limited.icmp_rate_limit = 3.0;
  limited.rate_limit_burst = 1;

  std::size_t with_limit = 0;
  std::size_t without_limit = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    with_limit +=
        topo::count_discovered(graph, core::run_trace(truth,
                                                      core::Algorithm::kMda,
                                                      trace, limited, seed)
                                          .graph)
            .edges;
    without_limit +=
        topo::count_discovered(
            graph,
            core::run_trace(truth, core::Algorithm::kMda, trace, {}, seed)
                .graph)
            .edges;
  }
  EXPECT_LT(with_limit, without_limit);
}

TEST(AssumptionViolations, HeavyLossStillTerminates) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 0.6;
  const auto truth = core::plain_ground_truth(topo::fig1_unmeshed());
  const auto result =
      core::run_trace(truth, core::Algorithm::kMdaLite, {}, sim, 3);
  // No hang, and something was discovered.
  EXPECT_GT(result.graph.vertex_count(), 1u);
}

TEST(AssumptionViolations, PerPacketLbBreaksFlowDeterminism) {
  // Under per-packet balancing the MDA's per-flow model is violated; the
  // tool still terminates and (conservatively) over-discovers edges.
  fakeroute::SimConfig sim;
  sim.per_packet_lb = true;
  const auto graph = topo::fig1_unmeshed();
  const auto truth = core::plain_ground_truth(graph);
  const auto result =
      core::run_trace(truth, core::Algorithm::kMda, {}, sim, 3);
  EXPECT_GE(result.graph.vertex_count(), graph.vertex_count() - 1);
}

TEST(AssumptionViolations, PerDestinationLbLooksLikeSinglePath) {
  fakeroute::SimConfig sim;
  sim.per_destination_lb = true;
  const auto truth = core::plain_ground_truth(topo::max_length_2_diamond());
  const auto result =
      core::run_trace(truth, core::Algorithm::kMda, {}, sim, 3);
  // All flows hash identically: only one middle vertex is reachable.
  EXPECT_EQ(result.graph.vertices_at(1).size(), 1u);
}

TEST(AssumptionViolations, SilentInteriorStillReachesDestination) {
  auto truth = core::plain_ground_truth(topo::simplest_diamond());
  truth.routers[1].responds_to_indirect = false;
  truth.routers[2].responds_to_indirect = false;
  const auto result =
      core::run_trace(truth, core::Algorithm::kSingleFlow, {}, {}, 1);
  EXPECT_TRUE(result.reached_destination);
}

}  // namespace
}  // namespace mmlpt
