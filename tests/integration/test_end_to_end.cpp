// End-to-end integration: generated worlds, full tracer stack, packet
// bytes on the wire, all layers together.
#include <gtest/gtest.h>

#include "core/multilevel.h"
#include "core/validation.h"
#include "fakeroute/failure.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"
#include "topology/metrics.h"
#include "topology/reference.h"

namespace mmlpt {
namespace {

TEST(EndToEnd, MdaDiscoversGeneratedRoutes) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 21);
  int full = 0;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    const auto route = gen.make_route();
    const auto result =
        core::run_trace(route, core::Algorithm::kMda, {}, {},
                        1000 + static_cast<std::uint64_t>(i));
    EXPECT_TRUE(result.reached_destination) << "route " << i;
    if (topo::same_topology(result.graph, route.graph)) ++full;
  }
  EXPECT_GE(full, n - 2);  // bounded failure probability
}

TEST(EndToEnd, MdaLiteDiscoversGeneratedRoutes) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 22);
  int full = 0;
  const int n = 15;
  for (int i = 0; i < n; ++i) {
    const auto route = gen.make_route();
    const auto result =
        core::run_trace(route, core::Algorithm::kMdaLite, {}, {},
                        2000 + static_cast<std::uint64_t>(i));
    EXPECT_TRUE(result.reached_destination) << "route " << i;
    if (topo::same_topology(result.graph, route.graph)) ++full;
  }
  EXPECT_GE(full, n - 3);
}

TEST(EndToEnd, LiteSavesPacketsOnUniformUnmeshedWorlds) {
  // Force a world of uniform, unmeshed diamonds and compare costs.
  topo::GeneratorConfig config;
  config.meshed_prob_given_long = 0.0;
  config.asym_given_meshed = 0.0;
  config.asym_given_unmeshed = 0.0;
  topo::RouteGenerator gen(config, 23);
  std::uint64_t lite = 0;
  std::uint64_t mda = 0;
  for (int i = 0; i < 10; ++i) {
    const auto route = gen.make_route();
    const auto seed = 3000 + static_cast<std::uint64_t>(i);
    const auto lite_result =
        core::run_trace(route, core::Algorithm::kMdaLite, {}, {}, seed);
    EXPECT_FALSE(lite_result.switched_to_mda);
    lite += lite_result.packets;
    mda += core::run_trace(route, core::Algorithm::kMda, {}, {}, seed + 1)
               .packets;
  }
  EXPECT_LT(lite, mda);
}

TEST(EndToEnd, SwitchRateTracksMeshedWorlds) {
  topo::GeneratorConfig config;
  config.meshed_prob_given_long = 1.0;
  config.length_weights = {0, 0, 0.0, 0.5, 0.5};  // all length 3-4
  topo::RouteGenerator gen(config, 24);
  int switched = 0;
  for (int i = 0; i < 10; ++i) {
    const auto route = gen.make_route();
    const auto result =
        core::run_trace(route, core::Algorithm::kMdaLite, {}, {},
                        4000 + static_cast<std::uint64_t>(i));
    if (result.switched_to_mda) ++switched;
  }
  EXPECT_GE(switched, 8);
}

TEST(EndToEnd, TheoreticalFailureMatchesEmpiricalOnGeneratedDiamond) {
  topo::GeneratorConfig config;
  config.meshed_prob_given_long = 0.0;
  config.asym_given_unmeshed = 0.0;
  topo::RouteGenerator gen(config, 25);
  const auto tmpl = gen.make_diamond();

  core::ValidationConfig vconfig;
  vconfig.algorithm = core::Algorithm::kMda;
  vconfig.trace.alpha = 0.05;
  vconfig.trace.max_branching = 1;
  vconfig.runs_per_sample = 150;
  vconfig.samples = 6;
  const auto report = core::validate(tmpl.truth, vconfig);
  EXPECT_NEAR(report.mean_failure, report.theoretical_failure,
              std::max(0.02, 4 * report.ci95_half_width));
}

TEST(EndToEnd, MultilevelOnGeneratedRouteRecoversRouters) {
  topo::GeneratorConfig config;
  // All shared counters so alias resolution has a fighting chance.
  config.ipid_shared = 1.0;
  config.ipid_per_interface = 0.0;
  config.ipid_constant_zero = 0.0;
  config.ipid_echo_probe = 0.0;
  config.ipid_random = 0.0;
  config.class_no_change = 0.0;
  config.class_single_smaller = 1.0;
  config.class_multiple_smaller = 0.0;
  config.class_one_path = 0.0;
  topo::RouteGenerator gen(config, 26);
  const auto route = gen.make_route();

  fakeroute::Simulator simulator(route, {}, 5);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = route.source;
  engine_config.destination = route.destination;
  probe::ProbeEngine engine(network, engine_config);
  core::MultilevelTracer tracer(engine, core::MultilevelConfig{});
  const auto result = tracer.run();

  // Compare against ground truth router level.
  const auto truth_router = route.router_level_graph();
  const auto found = topo::count_discovered(truth_router, result.router_graph);
  // Most of the router-level structure recovered.
  EXPECT_GE(found.vertices, truth_router.vertex_count() * 8 / 10);
}

TEST(EndToEnd, PacketCountsConsistentAcrossLayers) {
  const auto truth =
      core::plain_ground_truth(topo::symmetric_diamond());
  fakeroute::Simulator simulator(truth, {}, 5);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = truth.source;
  engine_config.destination = truth.destination;
  probe::ProbeEngine engine(network, engine_config);
  core::MdaTracer tracer(engine, {});
  const auto result = tracer.run();

  EXPECT_EQ(result.packets, engine.packets_sent());
  EXPECT_EQ(simulator.counters().probes_in, engine.packets_sent());
  EXPECT_EQ(simulator.counters().replies_out +
                simulator.counters().dropped_loss +
                simulator.counters().dropped_rate_limit +
                simulator.counters().dropped_unresponsive +
                simulator.counters().dropped_unroutable,
            simulator.counters().probes_in);
}

}  // namespace
}  // namespace mmlpt
