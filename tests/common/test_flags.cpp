#include "common/flags.h"

#include <gtest/gtest.h>

#include <array>

#include "common/error.h"

namespace mmlpt {
namespace {

Flags make_flags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const auto f = make_flags({"--pairs=100", "--seed=7"});
  EXPECT_EQ(f.get_int("pairs", 0), 100);
  EXPECT_EQ(f.get_uint("seed", 0), 7u);
}

TEST(Flags, SpaceForm) {
  const auto f = make_flags({"--name", "value"});
  EXPECT_EQ(f.get("name", ""), "value");
}

TEST(Flags, BareBoolean) {
  const auto f = make_flags({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", false));
}

TEST(Flags, Fallbacks) {
  const auto f = make_flags({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", -3), -3);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
}

TEST(Flags, Positional) {
  const auto f = make_flags({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(Flags, DoubleParsing) {
  const auto f = make_flags({"--alpha=0.05"});
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 1.0), 0.05);
}

TEST(Flags, MalformedNumberThrows) {
  const auto f = make_flags({"--n=abc"});
  EXPECT_THROW((void)f.get_int("n", 0), ConfigError);
}

TEST(Flags, Has) {
  const auto f = make_flags({"--x=1"});
  EXPECT_TRUE(f.has("x"));
  EXPECT_FALSE(f.has("y"));
}

TEST(Flags, FamilySwitchMapsToFamilyFlag) {
  EXPECT_EQ(make_flags({"-6"}).get("family", "4"), "6");
  EXPECT_EQ(make_flags({"-4"}).get("family", "6"), "4");
  // Last one wins, matching --family semantics.
  EXPECT_EQ(make_flags({"--family", "4", "-6"}).get("family", "4"), "6");
}

TEST(Flags, FamilySwitchIsNeverABareFlagsValue) {
  // "--real -6" must keep --real boolean AND set the family — the
  // single-dash switch is not up for grabs as a value.
  const auto f = make_flags({"--real", "-6", "--json"});
  EXPECT_TRUE(f.get_bool("real", false));
  EXPECT_TRUE(f.get_bool("json", false));
  EXPECT_EQ(f.get("family", "4"), "6");
  EXPECT_TRUE(f.positional().empty());
}

}  // namespace
}  // namespace mmlpt
