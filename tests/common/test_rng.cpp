#include "common/rng.h"

#include <gtest/gtest.h>

#include <array>

#include "common/error.h"

namespace mmlpt {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1'000'000), b.uniform(0, 1'000'000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0, 1'000'000) == b.uniform(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform(10, 5), ContractViolation);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(3);
  std::array<int, 5> seen{};
  for (int i = 0; i < 1000; ++i) ++seen[rng.index(5)];
  for (const int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, RealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(19);
  const double weights[] = {0.0, 1.0, 3.0};
  std::array<int, 3> seen{};
  for (int i = 0; i < 4000; ++i) ++seen[rng.weighted(weights)];
  EXPECT_EQ(seen[0], 0);
  EXPECT_NEAR(static_cast<double>(seen[2]) / seen[1], 3.0, 0.5);
}

TEST(Rng, WeightedRejectsAllZero) {
  Rng rng(23);
  const double weights[] = {0.0, 0.0};
  EXPECT_THROW((void)rng.weighted(weights), ContractViolation);
}

TEST(Rng, ParetoIntWithinBounds) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.pareto_int(1, 50, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 50u);
  }
}

TEST(Rng, ParetoIntHeavyTail) {
  Rng rng(31);
  int ones = 0;
  for (int i = 0; i < 1000; ++i) {
    if (rng.pareto_int(1, 1000, 1.5) == 1) ++ones;
  }
  // Shape 1.5 Pareto has P(X < 2) ~ 1 - 2^-1.5 ~ 0.65.
  EXPECT_GT(ones, 400);
  EXPECT_LT(ones, 900);
}

TEST(Rng, ForkIndependentStreams) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent.uniform(0, 1u << 30), child.uniform(0, 1u << 30));
}

TEST(Rng, SplittableForkIsPureInSeedAndStream) {
  // fork(stream_id) must not depend on parent draw state: a fresh parent
  // and a heavily-drawn parent with the same seed yield the same child.
  Rng fresh(99);
  Rng drawn(99);
  for (int i = 0; i < 1000; ++i) (void)drawn.uniform(0, 1000);
  Rng a = fresh.fork(7);
  Rng b = drawn.fork(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform(0, 1u << 30), b.uniform(0, 1u << 30));
  }
}

TEST(Rng, SplittableForkStreamsAreDistinct) {
  Rng parent(13);
  Rng s0 = parent.fork(0);
  Rng s1 = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (s0.uniform(0, 1u << 30) == s1.uniform(0, 1u << 30)) ++equal;
  }
  EXPECT_EQ(equal, 0);  // 64 collisions over 2^30 would be astronomical
}

TEST(Rng, SplittableForkDiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.fork(0).uniform(0, 1u << 30), b.fork(0).uniform(0, 1u << 30));
}

TEST(Rng, PickReturnsElement) {
  Rng rng(37);
  const std::vector<int> items{4, 8, 15, 16, 23, 42};
  for (int i = 0; i < 50; ++i) {
    const int v = rng.pick(items);
    EXPECT_NE(std::find(items.begin(), items.end(), v), items.end());
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

}  // namespace
}  // namespace mmlpt
