#include "common/strings.h"

#include <gtest/gtest.h>

namespace mmlpt {
namespace {

TEST(Split, Basic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyTokens) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, StripsWhitespace) {
  EXPECT_EQ(trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("hello", "world"));
  EXPECT_FALSE(starts_with("h", "hello"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

}  // namespace
}  // namespace mmlpt
