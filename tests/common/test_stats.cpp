#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mmlpt {
namespace {

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance (n-1)
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(EmpiricalCdf, AtAndQuantile) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(EmpiricalCdf, PointsAreCumulative) {
  EmpiricalCdf cdf({3.0, 1.0, 3.0, 2.0});
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.25);
  EXPECT_DOUBLE_EQ(pts[1].first, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].first, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(EmpiricalCdf, AddKeepsOrderCorrect) {
  EmpiricalCdf cdf;
  cdf.add(5.0);
  cdf.add(1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 1.0);
  cdf.add(0.5);
  EXPECT_DOUBLE_EQ(cdf.min(), 0.5);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(EmpiricalCdf, MeanMatches) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.mean(), 2.0);
}

TEST(EmpiricalCdf, EmptyThrows) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_THROW((void)cdf.at(1.0), ContractViolation);
  EXPECT_THROW((void)cdf.quantile(0.5), ContractViolation);
}

TEST(Histogram, PortionsSumToOne) {
  Histogram h;
  h.add(2, 3);
  h.add(5, 1);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.portion(2), 0.75);
  EXPECT_DOUBLE_EQ(h.portion(5), 0.25);
  EXPECT_DOUBLE_EQ(h.portion(99), 0.0);
}

TEST(Histogram2D, JointCounts) {
  Histogram2D h;
  h.add(2, 2, 10);
  h.add(2, 3, 5);
  h.add(4, 2, 5);
  EXPECT_EQ(h.total(), 20u);
  EXPECT_DOUBLE_EQ(h.portion(2, 2), 0.5);
  EXPECT_EQ(h.count(2, 3), 5u);
  EXPECT_EQ(h.count(3, 2), 0u);
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 3), 120.0);
  EXPECT_DOUBLE_EQ(binomial(3, 7), 0.0);
  EXPECT_NEAR(binomial(96, 48), 6.435067013866298e27, 1e13);
}

}  // namespace
}  // namespace mmlpt
