#include "common/json.h"

#include <gtest/gtest.h>

namespace mmlpt {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a");
  w.value(std::int64_t{1});
  w.key("b");
  w.value("two");
  w.key("c");
  w.value(true);
  w.end_object();
  EXPECT_EQ(w.view(), R"({"a":1,"b":"two","c":true})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.value(std::int64_t{1});
  w.begin_object();
  w.key("x");
  w.value_null();
  w.end_object();
  w.begin_array();
  w.end_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.view(), R"({"list":[1,{"x":null},[]]})");
}

TEST(JsonWriter, EscapesSpecials) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value("line\nquote\" slash\\ tab\t");
  w.end_object();
  EXPECT_EQ(w.view(), "{\"text\":\"line\\nquote\\\" slash\\\\ tab\\t\"}");
}

TEST(JsonWriter, EscapesControlBytes) {
  EXPECT_EQ(JsonWriter::escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, Doubles) {
  JsonWriter w;
  w.begin_array();
  w.value(0.5);
  w.value(std::uint64_t{12345678901234ULL});
  w.end_array();
  EXPECT_EQ(w.view(), "[0.5,12345678901234]");
}

TEST(JsonWriter, TopLevelArrayOfStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("a");
  w.value("b");
  w.end_array();
  EXPECT_EQ(w.view(), R"(["a","b"])");
}

}  // namespace
}  // namespace mmlpt
