#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"

namespace mmlpt {
namespace {

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable t({"name", "value"});
  t.set_title("demo");
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const auto out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| 22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(AsciiTable, RejectsMismatchedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(AsciiTable, ColumnsAligned) {
  AsciiTable t({"x"});
  t.add_row({"longer-cell"});
  const auto out = t.render();
  // Every line between rules must have the same length.
  std::size_t expected = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    auto end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const auto len = end - start;
    if (expected == 0) {
      expected = len;
    } else {
      EXPECT_EQ(len, expected);
    }
    start = end + 1;
  }
}

TEST(FmtHelpers, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
}

TEST(RenderCdf, ContainsEndpoints) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 10.0});
  const auto out = render_cdf("my cdf", cdf, 3);
  EXPECT_NE(out.find("my cdf"), std::string::npos);
  EXPECT_NE(out.find("1.0000"), std::string::npos);
  EXPECT_NE(out.find("10.0000"), std::string::npos);
}

TEST(RenderCdfComparison, MultipleSeries) {
  EmpiricalCdf a({1.0, 2.0});
  EmpiricalCdf b({3.0, 4.0});
  const auto out =
      render_cdf_comparison("cmp", {{"a", &a}, {"b", &b}}, {0.5, 1.0});
  EXPECT_NE(out.find("cmp"), std::string::npos);
  EXPECT_NE(out.find("| a"), std::string::npos);
  EXPECT_NE(out.find("4.0000"), std::string::npos);
}

}  // namespace
}  // namespace mmlpt
