#include "alias/direct_prober.h"

#include <gtest/gtest.h>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::alias {
namespace {

struct Rig {
  topo::GroundTruth truth;
  fakeroute::Simulator simulator;
  probe::SimulatedNetwork network;
  probe::ProbeEngine engine;

  explicit Rig(topo::GroundTruth t, std::uint64_t seed = 1)
      : truth(std::move(t)),
        simulator(truth, {}, seed),
        network(simulator),
        engine(network, make_config(truth)) {}

  static probe::ProbeEngine::Config make_config(const topo::GroundTruth& t) {
    probe::ProbeEngine::Config c;
    c.source = net::Ipv4Address(192, 168, 0, 1);
    c.destination = t.destination;
    return c;
  }
};

/// Simplest diamond whose middle interfaces share one router.
topo::GroundTruth aliased_truth(topo::IpIdPolicy policy) {
  auto truth = core::plain_ground_truth(topo::simplest_diamond());
  truth.vertex_router = {0, 1, 1, 2};
  truth.routers.resize(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    truth.routers[i].id = i;
    truth.routers[i].ip_id_policy = policy;
  }
  return truth;
}

TEST(DirectProber, DetectsRouterWideCounter) {
  Rig rig(aliased_truth(topo::IpIdPolicy::kSharedCounter));
  DirectProber prober(rig.engine);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  const auto resolver = prober.collect(addrs);
  const auto sets = resolver.resolve(addrs);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].outcome, Outcome::kAccept);
}

TEST(DirectProber, SplitsSeparateRouters) {
  // Each interface its own router: counters are independent.
  Rig rig(core::plain_ground_truth(topo::simplest_diamond()), 3);
  DirectProber prober(rig.engine);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  const auto resolver = prober.collect(addrs);
  const auto sets = resolver.resolve(addrs);
  EXPECT_EQ(sets.size(), 2u);
}

TEST(DirectProber, PerInterfacePolicyStillAcceptsViaEcho) {
  // The Sec. 4.2 phenomenon: routers with per-interface counters for
  // Time Exceeded use a router-wide counter for Echo Reply, so direct
  // probing accepts what indirect probing rejects.
  Rig rig(aliased_truth(topo::IpIdPolicy::kPerInterface));
  DirectProber prober(rig.engine);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  const auto resolver = prober.collect(addrs);
  const auto sets = resolver.resolve(addrs);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].outcome, Outcome::kAccept);
}

TEST(DirectProber, UnresponsiveTargetsUnable) {
  auto truth = aliased_truth(topo::IpIdPolicy::kSharedCounter);
  truth.routers[1].responds_to_direct = false;
  Rig rig(std::move(truth));
  DirectProber prober(rig.engine);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  const auto resolver = prober.collect(addrs);
  const auto sets = resolver.resolve(addrs);
  for (const auto& s : sets) {
    EXPECT_EQ(s.outcome, Outcome::kUnable);
  }
}

TEST(DirectProber, EchoIpIdCopyUnable) {
  Rig rig(aliased_truth(topo::IpIdPolicy::kEchoProbe));
  DirectProber prober(rig.engine);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  const auto resolver = prober.collect(addrs);
  const auto sets = resolver.resolve(addrs);
  for (const auto& s : sets) {
    EXPECT_EQ(s.outcome, Outcome::kUnable);
  }
}

TEST(DirectProber, PacketBudget) {
  Rig rig(aliased_truth(topo::IpIdPolicy::kSharedCounter));
  DirectProber::Config config;
  config.rounds = 2;
  config.samples_per_round = 5;
  DirectProber prober(rig.engine, config);
  const net::Ipv4Address addrs[] = {topo::reference_addr(1, 1, 0),
                                    topo::reference_addr(1, 1, 1)};
  (void)prober.collect(addrs);
  // 2 rounds x 5 samples x 2 addresses = 20 echo probes.
  EXPECT_EQ(rig.engine.echo_probes_sent(), 20u);
}

}  // namespace
}  // namespace mmlpt::alias
