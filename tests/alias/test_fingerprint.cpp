#include "alias/fingerprint.h"

#include <gtest/gtest.h>

namespace mmlpt::alias {
namespace {

TEST(Fingerprint, InferInitialTtlBuckets) {
  EXPECT_EQ(infer_initial_ttl(1), 32);
  EXPECT_EQ(infer_initial_ttl(32), 32);
  EXPECT_EQ(infer_initial_ttl(33), 64);
  EXPECT_EQ(infer_initial_ttl(64), 64);
  EXPECT_EQ(infer_initial_ttl(65), 128);
  EXPECT_EQ(infer_initial_ttl(128), 128);
  EXPECT_EQ(infer_initial_ttl(129), 255);
  EXPECT_EQ(infer_initial_ttl(255), 255);
}

TEST(Fingerprint, SignatureMerging) {
  Signature s;
  EXPECT_FALSE(s.error_initial.has_value());
  s.merge_error_ttl(250);
  ASSERT_TRUE(s.error_initial.has_value());
  EXPECT_EQ(*s.error_initial, 255);
  s.merge_echo_ttl(60);
  ASSERT_TRUE(s.echo_initial.has_value());
  EXPECT_EQ(*s.echo_initial, 64);
}

TEST(Fingerprint, IncompatibleOnErrorComponent) {
  Signature a;
  Signature b;
  a.merge_error_ttl(250);  // 255
  b.merge_error_ttl(60);   // 64
  EXPECT_TRUE(signatures_incompatible(a, b));
}

TEST(Fingerprint, IncompatibleOnEchoComponent) {
  Signature a;
  Signature b;
  a.merge_error_ttl(250);
  b.merge_error_ttl(251);
  a.merge_echo_ttl(60);
  b.merge_echo_ttl(120);
  EXPECT_TRUE(signatures_incompatible(a, b));
}

TEST(Fingerprint, MissingComponentsNeverIncompatible) {
  Signature a;
  Signature b;
  EXPECT_FALSE(signatures_incompatible(a, b));
  a.merge_error_ttl(250);
  EXPECT_FALSE(signatures_incompatible(a, b));
  b.merge_echo_ttl(60);
  EXPECT_FALSE(signatures_incompatible(a, b));  // disjoint components
}

TEST(Fingerprint, SameBucketsCompatible) {
  Signature a;
  Signature b;
  a.merge_error_ttl(250);
  b.merge_error_ttl(240);  // both infer 255
  EXPECT_FALSE(signatures_incompatible(a, b));
}

}  // namespace
}  // namespace mmlpt::alias
