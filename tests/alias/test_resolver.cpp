#include "alias/resolver.h"

#include <gtest/gtest.h>

namespace mmlpt::alias {
namespace {

const net::Ipv4Address kA(10, 0, 0, 1);
const net::Ipv4Address kB(10, 0, 0, 2);
const net::Ipv4Address kC(10, 0, 0, 3);
const net::Ipv4Address kD(10, 0, 0, 4);

/// Feed `resolver` interleaved samples: addresses in `group` share one
/// counter starting at `start` with `step` per sample.
void feed_shared(AliasResolver& resolver,
                 const std::vector<net::Ipv4Address>& group,
                 std::uint16_t start, int step, Nanos t0, int rounds = 15) {
  std::uint16_t id = start;
  Nanos t = t0;
  for (int i = 0; i < rounds; ++i) {
    for (const auto addr : group) {
      resolver.add_ip_id_sample(addr, t, id, 0);
      t += 1'000'000;
      id = static_cast<std::uint16_t>(id + step);
    }
  }
}

TEST(AliasResolver, AcceptsSharedCounterPair) {
  AliasResolver r;
  feed_shared(r, {kA, kB}, 100, 2, 1'000'000'000);
  const net::Ipv4Address candidates[] = {kA, kB};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].outcome, Outcome::kAccept);
  EXPECT_EQ(sets[0].members.size(), 2u);
}

TEST(AliasResolver, SplitsIndependentCounters) {
  AliasResolver r;
  feed_shared(r, {kA}, 100, 2, 1'000'000'000);
  feed_shared(r, {kB}, 40000, 5, 1'000'500'000);
  const net::Ipv4Address candidates[] = {kA, kB};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].outcome, Outcome::kReject);
  EXPECT_EQ(sets[1].outcome, Outcome::kReject);
}

TEST(AliasResolver, ConstantSeriesUnable) {
  AliasResolver r;
  for (int i = 0; i < 10; ++i) {
    r.add_ip_id_sample(kA, 1'000'000'000 + i * 1'000'000, 0, 0);
  }
  feed_shared(r, {kB, kC}, 500, 3, 1'000'000'000);
  const net::Ipv4Address candidates[] = {kA, kB, kC};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].outcome, Outcome::kUnable);  // kA: constant zero
  EXPECT_EQ(sets[0].members[0], kA);
  EXPECT_EQ(sets[1].outcome, Outcome::kAccept);  // kB,kC aliased
}

TEST(AliasResolver, FingerprintSplitsDespiteCompatibleCounters) {
  AliasResolver r;
  feed_shared(r, {kA, kB}, 100, 2, 1'000'000'000);
  r.add_error_reply_ttl(kA, 250);  // initial 255
  r.add_error_reply_ttl(kB, 60);   // initial 64
  const net::Ipv4Address candidates[] = {kA, kB};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].outcome, Outcome::kReject);
}

TEST(AliasResolver, MplsSplitsDespiteCompatibleCounters) {
  AliasResolver r;
  feed_shared(r, {kA, kB}, 100, 2, 1'000'000'000);
  const net::MplsLabelEntry la[] = {{111, 0, true, 3}};
  const net::MplsLabelEntry lb[] = {{222, 0, true, 3}};
  for (int i = 0; i < 3; ++i) {
    r.add_mpls(kA, la);
    r.add_mpls(kB, lb);
  }
  const net::Ipv4Address candidates[] = {kA, kB};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 2u);
}

TEST(AliasResolver, TwoRoutersTwoSets) {
  AliasResolver r;
  feed_shared(r, {kA, kB}, 100, 2, 1'000'000'000);
  feed_shared(r, {kC, kD}, 30000, 4, 1'000'250'000);
  const net::Ipv4Address candidates[] = {kA, kB, kC, kD};
  const auto sets = r.resolve(candidates);
  int accepted = 0;
  for (const auto& s : sets) {
    if (s.outcome == Outcome::kAccept) {
      ++accepted;
      EXPECT_EQ(s.members.size(), 2u);
    }
  }
  EXPECT_EQ(accepted, 2);
}

TEST(AliasResolver, LoneCandidateUnable) {
  AliasResolver r;
  feed_shared(r, {kA}, 100, 2, 1'000'000'000);
  const net::Ipv4Address candidates[] = {kA};
  const auto sets = r.resolve(candidates);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].outcome, Outcome::kUnable);
}

TEST(AliasResolver, ClassifySet) {
  AliasResolver r;
  feed_shared(r, {kA, kB}, 100, 2, 1'000'000'000);
  feed_shared(r, {kC}, 40000, 5, 1'000'500'000);
  for (int i = 0; i < 10; ++i) {
    r.add_ip_id_sample(kD, 1'000'000'000 + i * 1'000'000, 0, 0);
  }
  const net::Ipv4Address pair_ab[] = {kA, kB};
  EXPECT_EQ(r.classify_set(pair_ab), Outcome::kAccept);
  const net::Ipv4Address pair_ac[] = {kA, kC};
  EXPECT_EQ(r.classify_set(pair_ac), Outcome::kReject);
  const net::Ipv4Address pair_ad[] = {kA, kD};
  EXPECT_EQ(r.classify_set(pair_ad), Outcome::kUnable);
  const net::Ipv4Address single[] = {kA};
  EXPECT_EQ(r.classify_set(single), Outcome::kUnable);
}

TEST(AliasResolver, SeriesAccessor) {
  AliasResolver r;
  EXPECT_EQ(r.series_of(kA), nullptr);
  r.add_ip_id_sample(kA, 1'000'000'000, 5, 0);
  ASSERT_NE(r.series_of(kA), nullptr);
  EXPECT_EQ(r.series_of(kA)->size(), 1u);
}

}  // namespace
}  // namespace mmlpt::alias
