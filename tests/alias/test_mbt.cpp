#include "alias/mbt.h"

#include <gtest/gtest.h>

namespace mmlpt::alias {
namespace {

/// Interleaved samples of one shared counter observed via two addresses.
std::pair<IpIdSeries, IpIdSeries> shared_counter(std::uint16_t start,
                                                 int step, int n) {
  IpIdSeries a;
  IpIdSeries b;
  Nanos t = 1'000'000'000;
  std::uint16_t id = start;
  for (int i = 0; i < n; ++i) {
    ((i % 2 == 0) ? a : b).add(t, id, 0);
    t += 1'000'000;
    id = static_cast<std::uint16_t>(id + step);
  }
  return {std::move(a), std::move(b)};
}

/// Two independent counters at different phases.
std::pair<IpIdSeries, IpIdSeries> independent_counters() {
  IpIdSeries a;
  IpIdSeries b;
  Nanos t = 1'000'000'000;
  std::uint16_t ida = 100;
  std::uint16_t idb = 40000;
  for (int i = 0; i < 20; ++i) {
    a.add(t, ida, 0);
    t += 1'000'000;
    b.add(t, idb, 0);
    t += 1'000'000;
    ida += 3;
    idb += 5;
  }
  return {std::move(a), std::move(b)};
}

TEST(Mbt, SharedCounterCompatible) {
  const auto [a, b] = shared_counter(500, 2, 40);
  EXPECT_TRUE(mbt_compatible(a, b));
}

TEST(Mbt, SharedCounterAcrossWrapCompatible) {
  const auto [a, b] = shared_counter(65500, 3, 40);
  EXPECT_TRUE(mbt_compatible(a, b));
}

TEST(Mbt, IndependentCountersIncompatible) {
  const auto [a, b] = independent_counters();
  EXPECT_FALSE(mbt_compatible(a, b));
}

TEST(Mbt, SingleOutOfSequenceSampleSplits) {
  auto [a, b] = shared_counter(1000, 2, 40);
  // Corrupt one of b's samples backwards.
  IpIdSeries corrupted;
  bool first = true;
  for (const auto& s : b.samples()) {
    corrupted.add(s.time, first ? 900 : s.id, s.probe_id);
    first = false;
  }
  EXPECT_FALSE(mbt_compatible(a, corrupted));
}

TEST(Mbt, PartitionGroupsSharedCounters) {
  // Four addresses: {0,1} share counter X, {2,3} share counter Y.
  IpIdSeries s0, s1, s2, s3;
  Nanos t = 1'000'000'000;
  std::uint16_t x = 100;
  std::uint16_t y = 30000;
  for (int i = 0; i < 20; ++i) {
    s0.add(t, x, 0); t += 500'000; x += 2;
    s2.add(t, y, 0); t += 500'000; y += 4;
    s1.add(t, x, 0); t += 500'000; x += 2;
    s3.add(t, y, 0); t += 500'000; y += 4;
  }
  const IpIdSeries* series[] = {&s0, &s1, &s2, &s3};
  const auto groups = mbt_partition(series);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2, 3}));
}

TEST(Mbt, PartitionAllSeparate) {
  IpIdSeries s0, s1, s2;
  Nanos t = 1'000'000'000;
  // Deliberately conflicting phases.
  const std::uint16_t starts[] = {100, 40000, 20000};
  IpIdSeries* all[] = {&s0, &s1, &s2};
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 3; ++j) {
      all[j]->add(t, static_cast<std::uint16_t>(starts[j] + i * 7), 0);
      t += 400'000;
    }
  }
  const IpIdSeries* series[] = {&s0, &s1, &s2};
  EXPECT_EQ(mbt_partition(series).size(), 3u);
}

TEST(Mbt, EmptyInput) {
  EXPECT_TRUE(mbt_partition({}).empty());
}

TEST(Mbt, ThreeWaySharedCounter) {
  IpIdSeries s0, s1, s2;
  Nanos t = 1'000'000'000;
  std::uint16_t id = 9000;
  IpIdSeries* all[] = {&s0, &s1, &s2};
  for (int i = 0; i < 30; ++i) {
    all[i % 3]->add(t, id, 0);
    t += 700'000;
    id += 3;
  }
  const IpIdSeries* series[] = {&s0, &s1, &s2};
  const auto groups = mbt_partition(series);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

}  // namespace
}  // namespace mmlpt::alias
