#include "alias/mpls.h"

#include <gtest/gtest.h>

namespace mmlpt::alias {
namespace {

MplsEvidence with_labels(std::initializer_list<std::uint32_t> labels) {
  MplsEvidence e;
  for (const auto l : labels) {
    const net::MplsLabelEntry entry{l, 0, true, 5};
    const net::MplsLabelEntry stack[] = {entry};
    e.add(stack);
  }
  return e;
}

TEST(Mpls, NoLabels) {
  MplsEvidence e;
  EXPECT_FALSE(e.has_labels());
  EXPECT_FALSE(e.stable_label().has_value());
}

TEST(Mpls, StableLabel) {
  const auto e = with_labels({100, 100, 100});
  EXPECT_TRUE(e.has_labels());
  ASSERT_TRUE(e.stable_label().has_value());
  EXPECT_EQ(*e.stable_label(), 100u);
}

TEST(Mpls, UnstableLabelUnusable) {
  const auto e = with_labels({100, 101});
  EXPECT_TRUE(e.has_labels());
  EXPECT_FALSE(e.stable_label().has_value());
}

TEST(Mpls, EmptyStackIgnored) {
  MplsEvidence e;
  e.add({});
  EXPECT_FALSE(e.has_labels());
}

TEST(Mpls, IncompatibleDifferentLabels) {
  EXPECT_TRUE(mpls_incompatible(with_labels({1}), with_labels({2})));
  EXPECT_FALSE(mpls_incompatible(with_labels({1}), with_labels({1})));
}

TEST(Mpls, NoEvidenceNeverIncompatible) {
  EXPECT_FALSE(mpls_incompatible(MplsEvidence{}, with_labels({1})));
  EXPECT_FALSE(mpls_incompatible(MplsEvidence{}, MplsEvidence{}));
  // Unstable labels are unusable.
  EXPECT_FALSE(mpls_incompatible(with_labels({1, 2}), with_labels({3})));
}

TEST(Mpls, AliasHint) {
  EXPECT_TRUE(mpls_alias_hint(with_labels({9}), with_labels({9})));
  EXPECT_FALSE(mpls_alias_hint(with_labels({9}), with_labels({8})));
  EXPECT_FALSE(mpls_alias_hint(MplsEvidence{}, with_labels({9})));
}

TEST(Mpls, OnlyTopLabelConsidered) {
  MplsEvidence e;
  const net::MplsLabelEntry stack[] = {{100, 0, false, 5}, {7, 0, true, 5}};
  e.add(stack);
  const net::MplsLabelEntry stack2[] = {{100, 0, false, 5}, {8, 0, true, 4}};
  e.add(stack2);
  ASSERT_TRUE(e.stable_label().has_value());
  EXPECT_EQ(*e.stable_label(), 100u);
}

}  // namespace
}  // namespace mmlpt::alias
