#include "alias/ip_id_series.h"

#include <gtest/gtest.h>

namespace mmlpt::alias {
namespace {

IpIdSeries make_series(std::initializer_list<std::uint16_t> ids,
                       Nanos step = 1'000'000) {
  IpIdSeries s;
  Nanos t = 1'000'000'000;
  for (const auto id : ids) {
    s.add(t, id, 0);
    t += step;
  }
  return s;
}

TEST(IpIdSeries, TooFew) {
  EXPECT_EQ(make_series({1, 2}).classify(), SeriesClass::kTooFew);
  EXPECT_EQ(IpIdSeries{}.classify(), SeriesClass::kTooFew);
}

TEST(IpIdSeries, Constant) {
  EXPECT_EQ(make_series({7, 7, 7, 7}).classify(), SeriesClass::kConstant);
  EXPECT_EQ(make_series({0, 0, 0}).classify(), SeriesClass::kConstant);
}

TEST(IpIdSeries, Monotonic) {
  EXPECT_EQ(make_series({10, 20, 30, 35}).classify(),
            SeriesClass::kMonotonic);
}

TEST(IpIdSeries, MonotonicAcrossWraparound) {
  EXPECT_EQ(make_series({65500, 65530, 10, 40}).classify(),
            SeriesClass::kMonotonic);
}

TEST(IpIdSeries, NonMonotonic) {
  EXPECT_EQ(make_series({10, 50000, 20, 60000}).classify(),
            SeriesClass::kNonMonotonic);
}

TEST(IpIdSeries, EchoOfProbe) {
  IpIdSeries s;
  for (int i = 0; i < 10; ++i) {
    s.add(1'000'000'000 + i * 1'000'000, static_cast<std::uint16_t>(100 + i),
          static_cast<std::uint16_t>(100 + i));
  }
  EXPECT_EQ(s.classify(), SeriesClass::kEchoOfProbe);
}

TEST(IpIdSeries, VelocityEstimate) {
  // 100 IDs over 100 ms -> 1000 IDs/s.
  IpIdSeries s;
  for (int i = 0; i <= 10; ++i) {
    s.add(1'000'000'000 + static_cast<Nanos>(i) * 10'000'000,
          static_cast<std::uint16_t>(i * 10), 0);
  }
  EXPECT_NEAR(s.velocity(), 1000.0, 1.0);
}

TEST(IpIdSeries, VelocityAcrossWrap) {
  IpIdSeries s;
  s.add(1'000'000'000, 65530, 0);
  s.add(1'100'000'000, 20, 0);  // +26 over 100 ms
  EXPECT_NEAR(s.velocity(), 260.0, 1.0);
}

TEST(IpIdSeries, OutOfOrderInsertSorted) {
  IpIdSeries s;
  s.add(2'000'000'000, 20, 0);
  s.add(1'000'000'000, 10, 0);
  s.add(3'000'000'000, 30, 0);
  EXPECT_EQ(s.classify(), SeriesClass::kMonotonic);
  EXPECT_EQ(s.samples().front().id, 10);
}

TEST(Wrap16, Delta) {
  EXPECT_EQ(wrap16_delta(10, 15), 5);
  EXPECT_EQ(wrap16_delta(65530, 4), 10);
  EXPECT_EQ(wrap16_delta(15, 10), 65531);
}

TEST(Monotonic16, RespectsMaxStep) {
  IpIdSeries s = make_series({0, 1000});
  EXPECT_TRUE(monotonic_mod16(s.samples()));
  EXPECT_FALSE(monotonic_mod16(s.samples(), 500));
}

}  // namespace
}  // namespace mmlpt::alias
