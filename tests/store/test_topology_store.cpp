#include "store/topology_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"

namespace mmlpt::store {
namespace {

struct TempPath {
  std::string path;
  explicit TempPath(const char* name)
      : path(std::string(::testing::TempDir()) + name) {
    std::remove(path.c_str());
  }
  ~TempPath() { std::remove(path.c_str()); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << data;
}

TopologySnapshot sample_snapshot() {
  TopologySnapshot snapshot;
  snapshot.hops.push_back({net::IpAddress(10, 0, 0, 1), 1});
  snapshot.hops.push_back({net::IpAddress(10, 0, 0, 2), 2});
  snapshot.hops.push_back(
      {net::IpAddress::v6(0x20010db8'00000000ULL, 7), 3});
  snapshot.destinations.push_back({net::IpAddress(10, 9, 9, 9), {12, 345}});
  return snapshot;
}

TEST(Crc32, MatchesKnownVectors) {
  // The IEEE CRC-32 of "123456789" is the classic check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926U);
  EXPECT_EQ(crc32(""), 0x00000000U);
}

TEST(SnapshotCodec, RoundTripsHopsAndDestinations) {
  const auto snapshot = sample_snapshot();
  const auto decoded = decode_snapshot(encode_snapshot(snapshot));
  EXPECT_EQ(decoded.hops, snapshot.hops);
  EXPECT_EQ(decoded.destinations, snapshot.destinations);
}

TEST(SnapshotCodec, RejectsTruncatedPayload) {
  auto payload = encode_snapshot(sample_snapshot());
  payload.pop_back();
  EXPECT_THROW((void)decode_snapshot(payload), ParseError);
}

TEST(SnapshotCodec, RejectsTrailingBytes) {
  auto payload = encode_snapshot(sample_snapshot());
  payload += '\0';
  EXPECT_THROW((void)decode_snapshot(payload), ParseError);
}

TEST(SnapshotCodec, RejectsBadFamilyTag) {
  auto payload = encode_snapshot(sample_snapshot());
  payload[4] = 9;  // first hop's family byte
  EXPECT_THROW((void)decode_snapshot(payload), ParseError);
}

TEST(TopologyStore, MissingFileLoadsEmpty) {
  TempPath file("store_missing.mtps");
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_TRUE(loaded.snapshot.empty());
  EXPECT_EQ(loaded.blocks, 0u);
  EXPECT_FALSE(loaded.truncated_tail);
}

TEST(TopologyStore, AppendThenLoadRoundTrips) {
  TempPath file("store_roundtrip.mtps");
  const auto snapshot = sample_snapshot();
  TopologyStore::append(file.path, snapshot);
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_EQ(loaded.blocks, 1u);
  EXPECT_FALSE(loaded.truncated_tail);
  EXPECT_EQ(loaded.snapshot.hops, snapshot.hops);
  EXPECT_EQ(loaded.snapshot.destinations, snapshot.destinations);
}

TEST(TopologyStore, AppendsAccumulateAcrossOpens) {
  TempPath file("store_accumulate.mtps");
  TopologyStore::append(file.path, sample_snapshot());
  TopologySnapshot delta;
  delta.hops.push_back({net::IpAddress(172, 16, 0, 1), 5});
  TopologyStore::append(file.path, delta);
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_EQ(loaded.blocks, 2u);
  EXPECT_EQ(loaded.snapshot.hops.size(), 4u);
  EXPECT_EQ(loaded.snapshot.hops.back(), delta.hops[0]);
}

TEST(TopologyStore, EmptyDeltaWritesNothing) {
  TempPath file("store_empty_delta.mtps");
  TopologyStore::append(file.path, {});
  // Not even the header: the file does not exist.
  std::ifstream in(file.path);
  EXPECT_FALSE(in.good());
}

TEST(TopologyStore, RejectsBadMagic) {
  TempPath file("store_bad_magic.mtps");
  write_file(file.path, std::string("XXXXXXXX", 8));
  EXPECT_THROW((void)TopologyStore::load(file.path), TopologyError);
  EXPECT_THROW(TopologyStore::append(file.path, sample_snapshot()),
               TopologyError);
}

TEST(TopologyStore, RejectsUnsupportedVersion) {
  TempPath file("store_bad_version.mtps");
  TopologyStore::append(file.path, sample_snapshot());
  auto data = read_file(file.path);
  data[4] = 99;  // version field
  write_file(file.path, data);
  EXPECT_THROW((void)TopologyStore::load(file.path), TopologyError);
}

TEST(TopologyStore, TruncatedTailKeepsValidPrefix) {
  TempPath file("store_truncated.mtps");
  const auto snapshot = sample_snapshot();
  TopologyStore::append(file.path, snapshot);
  TopologySnapshot delta;
  delta.hops.push_back({net::IpAddress(172, 16, 0, 1), 5});
  TopologyStore::append(file.path, delta);
  auto data = read_file(file.path);
  write_file(file.path, data.substr(0, data.size() - 3));  // torn last block
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_TRUE(loaded.truncated_tail);
  EXPECT_EQ(loaded.blocks, 1u);
  EXPECT_EQ(loaded.snapshot.hops, snapshot.hops);
}

TEST(TopologyStore, CorruptBlockStopsAtValidPrefix) {
  TempPath file("store_corrupt.mtps");
  TopologyStore::append(file.path, sample_snapshot());
  TopologySnapshot delta;
  delta.hops.push_back({net::IpAddress(172, 16, 0, 1), 5});
  TopologyStore::append(file.path, delta);
  auto data = read_file(file.path);
  data.back() = static_cast<char>(data.back() ^ 0x5A);  // flip payload bits
  write_file(file.path, data);
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_TRUE(loaded.truncated_tail);
  EXPECT_EQ(loaded.blocks, 1u);
}

TEST(TopologyStore, HalfWrittenHeaderIsRecoverableGarbage) {
  TempPath file("store_torn_header.mtps");
  write_file(file.path, "MT");  // crash mid-first-append
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_TRUE(loaded.snapshot.empty());
  EXPECT_TRUE(loaded.truncated_tail);
}

TEST(TopologyStore, ConcurrentSingleWriterAppendsAllSurvive) {
  // The single-writer atomicity claim: appends from many threads (each
  // append is one write(2) to an O_APPEND fd) never tear; every block
  // loads. Header creation is the one non-concurrent step, so the file
  // is seeded first — matching real usage, where every session loads the
  // store before its single append.
  TempPath file("store_concurrent.mtps");
  TopologyStore::append(file.path, sample_snapshot());
  constexpr int kThreads = 4;
  constexpr int kAppendsPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAppendsPerThread; ++i) {
        TopologySnapshot delta;
        delta.hops.push_back(
            {net::IpAddress(10, 1, static_cast<std::uint8_t>(t),
                            static_cast<std::uint8_t>(i)),
             t * kAppendsPerThread + i + 1});
        TopologyStore::append(file.path, delta);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto loaded = TopologyStore::load(file.path);
  EXPECT_FALSE(loaded.truncated_tail);
  EXPECT_EQ(loaded.blocks,
            static_cast<std::size_t>(kThreads * kAppendsPerThread) + 1);
  EXPECT_EQ(loaded.snapshot.hops.size(),
            static_cast<std::size_t>(kThreads * kAppendsPerThread) + 3);
}

}  // namespace
}  // namespace mmlpt::store
