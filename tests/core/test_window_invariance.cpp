// Window-size invariance: the probing pipeline's central contract. Every
// tracer assembles rounds of probes its stopping rule has already
// committed to, so the discovered topology, the packet accounting (totals
// AND per-event discovery stamps, which trace_to_json serialises) and
// every stopping-rule decision are identical for every window size —
// batching collapses RTT waits, never changes what is sent or learned.
//
// The one caveat lives at the alias level: velocity-driven IP-ID counters
// advance with virtual time, so probing faster genuinely samples
// different IP-ID *values* (correct measurement behaviour, not an
// algorithmic divergence). The IP level and the packet accounting are
// asserted bitwise on fully random router models; the full multilevel
// JSON — alias sets included — is asserted bitwise on sequence-driven
// (zero-velocity) routers, where the evidence depends only on reply
// order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "alias/direct_prober.h"
#include "core/multilevel.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "orchestrator/rate_limiter.h"
#include "orchestrator/throttled_network.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"

namespace mmlpt::core {
namespace {

constexpr int kWindows[] = {1, 4, 32};

topo::GroundTruth random_route(std::uint64_t seed) {
  topo::RouteGenerator generator(topo::GeneratorConfig{}, seed);
  return generator.make_route();
}

/// Counters advancing purely by reply order: alias evidence becomes
/// timing-independent and the full multilevel output must be bitwise
/// window-invariant.
topo::GroundTruth sequence_driven(topo::GroundTruth truth) {
  for (auto& router : truth.routers) router.ip_id_velocity = 0.0;
  return truth;
}

std::string traced_json(const topo::GroundTruth& truth, Algorithm algorithm,
                        int window, std::uint64_t seed) {
  TraceConfig config;
  config.window = window;
  return trace_to_json(run_trace(truth, algorithm, config, {}, seed));
}

MultilevelResult run_multilevel(const topo::GroundTruth& truth, int window,
                                std::uint64_t seed) {
  fakeroute::Simulator simulator(truth, {}, seed);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config engine_config;
  engine_config.source = truth.source;
  engine_config.destination = truth.destination;
  probe::ProbeEngine engine(network, engine_config);
  MultilevelConfig config;
  config.trace.window = window;
  config.rounds = 3;
  return MultilevelTracer(engine, config).run();
}

TEST(WindowInvariance, AllTracersProduceIdenticalJsonOnRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto truth = random_route(seed);
    for (const auto algorithm :
         {Algorithm::kSingleFlow, Algorithm::kMdaLite, Algorithm::kMda}) {
      const auto baseline = traced_json(truth, algorithm, 1, seed);
      for (const int window : kWindows) {
        EXPECT_EQ(traced_json(truth, algorithm, window, seed), baseline)
            << "seed " << seed << " algorithm "
            << static_cast<int>(algorithm) << " window " << window;
      }
    }
  }
}

TEST(WindowInvariance, MultilevelIpLevelAndAccountingOnRandomTopologies) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto truth = random_route(seed);
    const auto baseline = run_multilevel(truth, 1, seed);
    for (const int window : kWindows) {
      const auto result = run_multilevel(truth, window, seed);
      EXPECT_EQ(trace_to_json(result.trace), trace_to_json(baseline.trace))
          << "seed " << seed << " window " << window;
      EXPECT_EQ(result.total_packets, baseline.total_packets);
      ASSERT_EQ(result.rounds.size(), baseline.rounds.size());
      for (std::size_t r = 0; r < result.rounds.size(); ++r) {
        EXPECT_EQ(result.rounds[r].packets, baseline.rounds[r].packets)
            << "seed " << seed << " window " << window << " round " << r;
      }
    }
  }
}

TEST(WindowInvariance, FullMultilevelJsonOnSequenceDrivenRouters) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto truth = sequence_driven(random_route(seed));
    const auto baseline = multilevel_to_json(run_multilevel(truth, 1, seed));
    for (const int window : kWindows) {
      EXPECT_EQ(multilevel_to_json(run_multilevel(truth, window, seed)),
                baseline)
          << "seed " << seed << " window " << window;
    }
  }
}

TEST(WindowInvariance, DirectProberOutcomesOnSequenceDrivenRouters) {
  const auto truth = sequence_driven(random_route(3));
  // Candidate set: every responding interface of one multi-vertex hop.
  std::vector<net::Ipv4Address> addrs;
  const auto& g = truth.graph;
  for (std::uint16_t h = 1; h + 1 < g.hop_count(); ++h) {
    std::vector<net::Ipv4Address> hop_addrs;
    for (const auto v : g.vertices_at(h)) {
      if (!g.vertex(v).addr.is_unspecified()) {
        hop_addrs.push_back(g.vertex(v).addr);
      }
    }
    if (hop_addrs.size() >= 2) {
      addrs = std::move(hop_addrs);
      break;
    }
  }
  ASSERT_GE(addrs.size(), 2u) << "route 3 should contain a diamond";

  const auto collect = [&](int window) {
    fakeroute::Simulator simulator(truth, {}, 9);
    probe::SimulatedNetwork network(simulator);
    probe::ProbeEngine::Config engine_config;
    engine_config.source = truth.source;
    engine_config.destination = truth.destination;
    probe::ProbeEngine engine(network, engine_config);
    alias::DirectProber::Config config;
    config.rounds = 2;
    config.samples_per_round = 10;
    config.window = window;
    return alias::DirectProber(engine, config).collect(addrs);
  };

  const auto baseline = collect(1).classify_set(addrs);
  for (const int window : kWindows) {
    EXPECT_EQ(collect(window).classify_set(addrs), baseline)
        << "window " << window;
  }
}

TEST(WindowInvariance, WindowedTraceComposesWithThrottledNetwork) {
  const auto truth = random_route(5);
  TraceConfig serial;
  const auto baseline =
      trace_to_json(run_trace(truth, Algorithm::kMdaLite, serial, {}, 5));

  fakeroute::Simulator simulator(truth, {}, 5);
  probe::SimulatedNetwork network(simulator);
  orchestrator::RateLimiter limiter(1e9, 64);  // fast enough for a test
  orchestrator::ThrottledNetwork throttled(network, limiter);
  TraceConfig windowed;
  windowed.window = 16;
  const auto result = run_trace_with_network(
      throttled, truth.source, truth.destination, Algorithm::kMdaLite,
      windowed);
  EXPECT_EQ(trace_to_json(result), baseline);
}

}  // namespace
}  // namespace mmlpt::core
