// Doubletree stopping through the tracers: record-only mode is
// byte-identical to no stop set at all; a warm consulting run halts
// forward on a confirmed hop, runs the single-flow backward phase from
// the adaptive midpoint, accounts its savings against the destination's
// prior full-trace record, and never changes the union topology.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "core/trace_json.h"
#include "core/validation.h"
#include "orchestrator/stop_set.h"
#include "topology/generator.h"

namespace mmlpt::core {
namespace {

using orchestrator::SharedStopSet;

topo::GroundTruth random_route(std::uint64_t seed) {
  topo::RouteGenerator generator(topo::GeneratorConfig{}, seed);
  return generator.make_route();
}

/// Linear chain: source at hop 0, destination at TTL `length`. Every
/// packet count below is exact, so the Doubletree arithmetic is too.
topo::GroundTruth chain(int length) {
  topo::MultipathGraph g;
  topo::VertexId previous = topo::kInvalidVertex;
  for (int h = 0; h <= length; ++h) {
    g.add_hop();
    const auto v =
        g.add_vertex(static_cast<std::uint16_t>(h),
                     net::IpAddress(10, 0, 1, static_cast<std::uint8_t>(h + 1)));
    if (h > 0) g.add_edge(previous, v);
    previous = v;
  }
  return plain_ground_truth(std::move(g));
}

struct ColdRun {
  TraceResult result;
  store::TopologySnapshot snapshot;  ///< everything the full probe saw
  std::uint64_t digest = 0;
};

/// Full-probe pass in record-only mode: warms a stop set without
/// changing anything about the trace itself.
ColdRun cold_run(const topo::GroundTruth& truth, Algorithm algorithm,
                 std::uint64_t seed) {
  SharedStopSet set;
  TraceConfig config;
  config.stop_set = &set;
  config.consult_stop_set = false;
  ColdRun cold;
  cold.result = run_trace(truth, algorithm, config, {}, seed);
  cold.snapshot = set.full_snapshot();
  cold.digest = set.union_digest();
  return cold;
}

TEST(StopSetTracing, RecordOnlyOutputIsByteIdenticalToDisabled) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto truth = random_route(seed);
    for (const auto algorithm :
         {Algorithm::kSingleFlow, Algorithm::kMdaLite, Algorithm::kMda}) {
      const auto baseline =
          run_trace(truth, algorithm, {}, {}, seed);

      SharedStopSet set;
      TraceConfig config;
      config.stop_set = &set;
      config.consult_stop_set = false;
      const auto recorded = run_trace(truth, algorithm, config, {}, seed);

      EXPECT_EQ(trace_to_json(recorded), trace_to_json(baseline))
          << "seed " << seed << " algorithm " << static_cast<int>(algorithm);
      EXPECT_FALSE(recorded.stop_set_active);
      EXPECT_EQ(recorded.probes_saved_by_stop_set, 0u);
      EXPECT_GT(set.pending_hop_count(), 0u)
          << "record-only mode must still feed the cache";
    }
  }
}

TEST(StopSetTracing, WarmSingleFlowStopsBothWaysFromTheMidpoint) {
  const auto truth = chain(10);
  const auto cold = cold_run(truth, Algorithm::kSingleFlow, 1);
  ASSERT_TRUE(cold.result.reached_destination);
  EXPECT_EQ(cold.result.packets, 10u);
  ASSERT_EQ(cold.snapshot.destinations.size(), 1u);
  EXPECT_EQ(cold.snapshot.destinations[0].record.distance, 10);

  SharedStopSet warm_set;
  warm_set.seed(cold.snapshot);
  EXPECT_EQ(warm_set.midpoint_ttl(), 5);  // half the destination distance

  TraceConfig config;
  config.stop_set = &warm_set;
  config.consult_stop_set = true;
  const auto warm = run_trace(truth, Algorithm::kSingleFlow, config, {}, 1);

  // One forward probe at TTL 5 hits the stop set; one backward probe at
  // TTL 4 hits it again. Two packets replace ten.
  EXPECT_TRUE(warm.stopped_on_hit);
  EXPECT_FALSE(warm.reached_destination);
  EXPECT_TRUE(warm.stop_set_active);
  EXPECT_EQ(warm.packets, 2u);
  EXPECT_EQ(warm.probes_saved_by_stop_set, 8u);
  EXPECT_EQ(warm.graph.vertices_at(5).size(), 1u);
  EXPECT_EQ(warm.graph.vertices_at(4).size(), 1u);

  // The warm run re-observed only hops the cold run already confirmed:
  // the fleet-wide union topology is exactly the full-probe topology.
  EXPECT_EQ(warm_set.union_digest(), cold.digest);
}

TEST(StopSetTracing, WarmHopByHopTracersHaltForwardOnConfirmedHops) {
  const auto truth = chain(10);
  for (const auto algorithm : {Algorithm::kMda, Algorithm::kMdaLite}) {
    const auto cold = cold_run(truth, algorithm, 2);
    ASSERT_TRUE(cold.result.reached_destination);

    SharedStopSet warm_set;
    warm_set.seed(cold.snapshot);
    TraceConfig config;
    config.stop_set = &warm_set;
    config.consult_stop_set = true;
    const auto warm = run_trace(truth, algorithm, config, {}, 2);

    EXPECT_TRUE(warm.stopped_on_hit)
        << "algorithm " << static_cast<int>(algorithm);
    EXPECT_TRUE(warm.stop_set_active);
    EXPECT_LT(warm.packets, cold.result.packets);
    EXPECT_EQ(warm.probes_saved_by_stop_set,
              cold.result.packets - warm.packets);
    EXPECT_EQ(warm_set.union_digest(), cold.digest);
  }
}

TEST(StopSetTracing, WarmRunsStayWindowInvariant) {
  const auto truth = chain(12);
  for (const auto algorithm :
       {Algorithm::kSingleFlow, Algorithm::kMdaLite, Algorithm::kMda}) {
    const auto cold = cold_run(truth, algorithm, 3);

    const auto warm_json = [&](int window) {
      SharedStopSet warm_set;
      warm_set.seed(cold.snapshot);
      TraceConfig config;
      config.window = window;
      config.stop_set = &warm_set;
      config.consult_stop_set = true;
      const auto result = run_trace(truth, algorithm, config, {}, 3);
      // Only CONSUMED probes feed the cache, so the recorded delta is as
      // window-invariant as the trace output.
      return std::pair(trace_to_json(result), warm_set.delta().hops);
    };

    const auto baseline = warm_json(1);
    for (const int window : {4, 32}) {
      EXPECT_EQ(warm_json(window), baseline)
          << "algorithm " << static_cast<int>(algorithm) << " window "
          << window;
    }
  }
}

TEST(StopSetTracing, FinalizeAccountsSavingsOnlyWhenConsultingAndStopped) {
  const net::IpAddress dest(10, 9, 9, 9);
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.destinations.push_back({dest, {10, 100}});
  set.seed(seed);

  TraceConfig config;
  config.stop_set = &set;
  config.consult_stop_set = true;

  TraceResult stopped;
  stopped.packets = 40;
  stopped.stopped_on_hit = true;
  finalize_stop_set(config, dest, 0, stopped);
  EXPECT_TRUE(stopped.stop_set_active);
  EXPECT_EQ(stopped.probes_saved_by_stop_set, 60u);

  // A stopped trace that cost MORE than the prior record saves nothing.
  TraceResult expensive;
  expensive.packets = 150;
  expensive.stopped_on_hit = true;
  finalize_stop_set(config, dest, 0, expensive);
  EXPECT_EQ(expensive.probes_saved_by_stop_set, 0u);

  // Record-only mode never claims savings and never marks the envelope.
  config.consult_stop_set = false;
  TraceResult record_only;
  record_only.packets = 40;
  record_only.stopped_on_hit = true;
  finalize_stop_set(config, dest, 0, record_only);
  EXPECT_FALSE(record_only.stop_set_active);
  EXPECT_EQ(record_only.probes_saved_by_stop_set, 0u);

  // A full trace feeds its own record back for future runs; a stopped
  // trace must not decay the baseline.
  TraceResult full;
  full.packets = 80;
  full.reached_destination = true;
  finalize_stop_set(config, net::IpAddress(10, 9, 9, 10), 9, full);
  const auto delta = set.delta();
  ASSERT_EQ(delta.destinations.size(), 1u);
  EXPECT_EQ(delta.destinations[0].addr, net::IpAddress(10, 9, 9, 10));
  EXPECT_EQ(delta.destinations[0].record,
            (DestinationRecord{9, 80}));
}

TEST(StopSetTracing, EmptyHopNeverSatisfiesTheHaltCondition) {
  SharedStopSet set;
  store::TopologySnapshot seed;
  seed.hops.push_back({net::IpAddress(10, 0, 0, 1), 3});
  set.seed(seed);
  EXPECT_FALSE(all_in_stop_set(set, {}, 3));
  EXPECT_TRUE(all_in_stop_set(set, {net::IpAddress(10, 0, 0, 1)}, 3));
  EXPECT_FALSE(all_in_stop_set(
      set, {net::IpAddress(10, 0, 0, 1), net::IpAddress(10, 0, 0, 2)}, 3));
}

}  // namespace
}  // namespace mmlpt::core
