#include "core/stopping_points.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace mmlpt::core {
namespace {

// The paper quotes Veitch et al.'s Table 1: n1 = 9, n2 = 17, n4 = 33
// (Sec. 2.1), and the MDA-Lite worked example requires n3 such that
// n4 + n2 + 2*n1 = 68.
TEST(StoppingPoints, VeitchTable1Values) {
  const auto sp = StoppingPoints::veitch_table1();
  EXPECT_EQ(sp.n(1), 9);
  EXPECT_EQ(sp.n(2), 17);
  EXPECT_EQ(sp.n(3), 25);
  EXPECT_EQ(sp.n(4), 33);
}

// The paper's worked example (Sec. 2.3.1): the MDA-Lite spends
// n4 + n2 + 2*n1 = 68 probes on the Fig. 1 diamonds.
TEST(StoppingPoints, MdaLiteWorkedExampleCost) {
  const auto sp = StoppingPoints::veitch_table1();
  EXPECT_EQ(sp.n(4) + sp.n(2) + 2 * sp.n(1), 68);
}

// Sec. 3: with per-vertex bound 0.05, n1 = 6 yields the simplest-diamond
// failure probability (1/2)^5 = 0.03125.
TEST(StoppingPoints, Section3Epsilon005) {
  const auto sp = StoppingPoints::from_epsilon(0.05);
  EXPECT_EQ(sp.n(1), 6);
}

// The intro's motivating example: "to bring the probability of failing to
// discover both interfaces under 1%, a total of eight probes would need
// to be sent" — epsilon 0.01 gives n1 = 8.
TEST(StoppingPoints, IntroEightProbesAtOnePercent) {
  const auto sp = StoppingPoints::from_epsilon(0.01);
  EXPECT_EQ(sp.n(1), 8);
}

TEST(StoppingPoints, MissProbabilityClosedForms) {
  // K = 2: P(n) = 2^(1-n).
  for (int n = 1; n <= 12; ++n) {
    EXPECT_NEAR(StoppingPoints::miss_probability(n, 2), std::pow(2.0, 1 - n),
                1e-12);
  }
  // K = 1: never misses after >= 1 probe.
  EXPECT_DOUBLE_EQ(StoppingPoints::miss_probability(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(StoppingPoints::miss_probability(0, 1), 1.0);
  // n = 0: certain miss.
  EXPECT_DOUBLE_EQ(StoppingPoints::miss_probability(0, 5), 1.0);
}

TEST(StoppingPoints, MissProbabilityMatchesMonteCarloK3) {
  // P(3 coupons not all seen in n draws).
  const double p = StoppingPoints::miss_probability(10, 3);
  // Analytic: 3*(2/3)^10 - 3*(1/3)^10.
  EXPECT_NEAR(p, 3 * std::pow(2.0 / 3.0, 10) - 3 * std::pow(1.0 / 3.0, 10),
              1e-12);
}

TEST(StoppingPoints, MonotoneInK) {
  const auto sp = StoppingPoints::for_global(0.05, 30);
  for (int k = 1; k < 40; ++k) {
    EXPECT_LT(sp.n(k), sp.n(k + 1));
  }
}

TEST(StoppingPoints, TighterEpsilonLargerN) {
  const auto loose = StoppingPoints::from_epsilon(0.05);
  const auto tight = StoppingPoints::from_epsilon(0.001);
  for (int k = 1; k <= 10; ++k) {
    EXPECT_GT(tight.n(k), loose.n(k));
  }
}

TEST(StoppingPoints, GlobalSplitsAcrossBranching) {
  // More branching vertices -> smaller per-vertex epsilon -> larger n_k.
  const auto few = StoppingPoints::for_global(0.05, 5);
  const auto many = StoppingPoints::for_global(0.05, 100);
  EXPECT_GT(many.n(1), few.n(1));
  EXPECT_NEAR(few.epsilon(), 1 - std::pow(0.95, 1.0 / 5), 1e-12);
}

TEST(StoppingPoints, TableLayout) {
  const auto sp = StoppingPoints::veitch_table1();
  const auto table = sp.table(4);
  ASSERT_EQ(table.size(), 5u);
  EXPECT_EQ(table[0], 0);  // unused slot
  EXPECT_EQ(table[1], 9);
  EXPECT_EQ(table[4], 33);
}

TEST(StoppingPoints, LargeKComputable) {
  // Hop widths up to 96 appear in the survey; n_k must be computable
  // far out without pathological run time.
  const auto sp = StoppingPoints::for_global(0.05, 30);
  EXPECT_GT(sp.n(96), sp.n(95));
  EXPECT_LT(sp.n(96), 3000);
}

TEST(StoppingPoints, StoppingGuaranteesBound) {
  // By construction P(miss at n_k with k+1 successors) <= epsilon and
  // P at n_k - 1 > epsilon.
  const auto sp = StoppingPoints::from_epsilon(0.01);
  for (int k = 1; k <= 20; ++k) {
    const int n = sp.n(k);
    EXPECT_LE(StoppingPoints::miss_probability(n, k + 1), 0.01);
    EXPECT_GT(StoppingPoints::miss_probability(n - 1, k + 1), 0.01);
  }
}

TEST(StoppingPoints, RejectsBadParameters) {
  EXPECT_THROW((void)StoppingPoints::from_epsilon(0.0), ContractViolation);
  EXPECT_THROW((void)StoppingPoints::from_epsilon(1.0), ContractViolation);
  EXPECT_THROW((void)StoppingPoints::for_global(0.05, 0), ContractViolation);
  const auto sp = StoppingPoints::from_epsilon(0.05);
  EXPECT_THROW((void)sp.n(0), ContractViolation);
}

}  // namespace
}  // namespace mmlpt::core
