#include "core/mda_lite.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

TraceResult trace_lite(const topo::MultipathGraph& graph,
                       std::uint64_t seed = 1, int phi = 2) {
  const auto truth = plain_ground_truth(graph);
  TraceConfig config;
  config.phi = phi;
  return run_trace(truth, Algorithm::kMdaLite, config, {}, seed);
}

TEST(MdaLite, DiscoversSimplestDiamondWithoutSwitching) {
  const auto graph = topo::simplest_diamond();
  const auto result = trace_lite(graph);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_FALSE(result.switched_to_mda);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(MdaLite, DiscoversMaxLength2WithoutSwitchingOrMeshingTest) {
  // Sec. 2.4.1: no adjacent multi-vertex hops -> no meshing test at all.
  const auto graph = topo::max_length_2_diamond();
  const auto result = trace_lite(graph);
  EXPECT_FALSE(result.switched_to_mda);
  EXPECT_EQ(result.meshing_test_probes, 0u);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(MdaLite, SymmetricDiamondNoSwitchLightNodeControl) {
  // Sec. 2.4.1: the symmetric diamond obliges a light meshing test but
  // no switch-over.
  const auto graph = topo::symmetric_diamond();
  const auto result = trace_lite(graph);
  EXPECT_FALSE(result.switched_to_mda);
  EXPECT_GT(result.meshing_test_probes, 0u);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(MdaLite, Fig1UnmeshedCheaperThanMda) {
  const auto graph = topo::fig1_unmeshed();
  const auto truth = plain_ground_truth(graph);
  RunningStats lite_packets;
  RunningStats mda_packets;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto lite = run_trace(truth, Algorithm::kMdaLite, {}, {}, seed);
    EXPECT_TRUE(topo::same_topology(lite.graph, graph)) << "seed " << seed;
    lite_packets.add(static_cast<double>(lite.packets));
    mda_packets.add(static_cast<double>(
        run_trace(truth, Algorithm::kMda, {}, {}, seed + 1000).packets));
  }
  EXPECT_LT(lite_packets.mean(), mda_packets.mean());
}

TEST(MdaLite, MeshedDiamondTriggersSwitch) {
  const auto graph = topo::fig1_meshed();
  // Meshing-miss probability is 1/16 per Fig. 1-meshed with phi = 2; over
  // seeds the switch must dominate.
  int switched = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    if (trace_lite(graph, seed).switched_to_mda) ++switched;
  }
  EXPECT_GE(switched, 9);
}

TEST(MdaLite, BigMeshedDiamondAlwaysSwitches) {
  // Sec. 2.4.1 meshed diamond (width 48 ring): miss probability 2^-48.
  const auto result = trace_lite(topo::meshed_diamond(), 5);
  EXPECT_TRUE(result.switched_to_mda);
  const auto truth_graph = topo::meshed_diamond();
  const auto found = topo::count_discovered(truth_graph, result.graph);
  EXPECT_EQ(found.vertices, truth_graph.vertex_count());
}

TEST(MdaLite, AsymmetricDiamondTriggersSwitch) {
  // Sec. 2.4.1: discovering the width asymmetry obliges the switch.
  const auto result = trace_lite(topo::asymmetric_diamond(), 2);
  EXPECT_TRUE(result.switched_to_mda);
}

TEST(MdaLite, SwitchStillDiscoversFullTopology) {
  const auto graph = topo::asymmetric_diamond();
  int full = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto result = trace_lite(graph, seed);
    if (topo::same_topology(result.graph, graph)) ++full;
  }
  EXPECT_GE(full, 4);
}

TEST(MdaLite, Phi4SendsMoreMeshingProbesThanPhi2) {
  const auto graph = topo::symmetric_diamond();
  const auto phi2 = trace_lite(graph, 1, 2);
  const auto phi4 = trace_lite(graph, 1, 4);
  EXPECT_GT(phi4.meshing_test_probes, phi2.meshing_test_probes);
}

// The Sec. 2.3.1 worked example: on the Fig. 1 unmeshed diamond the
// MDA-Lite spends n4 + n2 + 2*n1 = 68 probes on hop scanning (the
// divergence point sits at TTL 1, as in the figure).
TEST(MdaLite, HopScanBudgetMatchesWorkedExample) {
  // Veitch Table 1 stopping points via (alpha=0.05, B=13): 9/17/25/33.
  TraceConfig config;
  config.alpha = 0.05;
  config.max_branching = 13;
  const auto truth = plain_ground_truth(topo::prepend_source(
      topo::fig1_unmeshed(), net::Ipv4Address(192, 168, 0, 1)));
  RunningStats packets;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto result =
        run_trace(truth, Algorithm::kMdaLite, config, {}, seed);
    EXPECT_FALSE(result.switched_to_mda);
    packets.add(static_cast<double>(result.packets) -
                static_cast<double>(result.meshing_test_probes) -
                static_cast<double>(result.node_control_probes));
  }
  // n1 (divergence) + n4 (wide hop) + n2 (2-hop) + n1 (convergence) = 68,
  // plus the occasional edge-completion probe.
  EXPECT_NEAR(packets.mean(), 68.0, 4.0);
}

TEST(MdaLite, EventsAccumulate) {
  const auto result = trace_lite(topo::symmetric_diamond());
  EXPECT_EQ(result.events.size(),
            result.graph.vertex_count() + result.graph.edge_count());
}

TEST(MdaLite, LossToleratedOnSimpleDiamond) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 0.1;
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  int full = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto result = run_trace(truth, Algorithm::kMdaLite, {}, sim, seed);
    if (topo::same_topology(result.graph, truth.graph)) ++full;
  }
  EXPECT_GE(full, 8);
}

TEST(MdaLite, RejectsPhiBelow2) {
  TraceConfig config;
  config.phi = 1;
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  EXPECT_THROW((void)run_trace(truth, Algorithm::kMdaLite, config, {}, 1),
               ContractViolation);
}

}  // namespace
}  // namespace mmlpt::core
