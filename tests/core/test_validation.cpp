#include "core/validation.h"

#include <gtest/gtest.h>

#include "topology/reference.h"

namespace mmlpt::core {
namespace {

TEST(Validation, PlainGroundTruthShape) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  EXPECT_EQ(truth.routers.size(), truth.graph.vertex_count());
  EXPECT_EQ(truth.vertex_router.size(), truth.graph.vertex_count());
  EXPECT_EQ(truth.source, topo::reference_addr(1, 0, 0));
  EXPECT_EQ(truth.destination, topo::reference_addr(1, 2, 0));
}

TEST(Validation, RunTraceConvenience) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  for (const auto algorithm :
       {Algorithm::kMda, Algorithm::kMdaLite, Algorithm::kSingleFlow}) {
    const auto result = run_trace(truth, algorithm, {}, {}, 1);
    EXPECT_TRUE(result.reached_destination);
    EXPECT_GT(result.packets, 0u);
  }
}

// The Sec. 3 experiment, scaled down: simplest diamond, per-vertex bound
// 0.05 (n1 = 6), theoretical failure 0.03125; the empirical rate must sit
// near it.
TEST(Validation, SimplestDiamondFailureRateMatchesTheory) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  ValidationConfig config;
  config.algorithm = Algorithm::kMda;
  config.trace.alpha = 0.05;
  config.trace.max_branching = 1;  // per-vertex epsilon = 0.05 directly
  config.runs_per_sample = 200;
  config.samples = 10;
  config.seed = 42;
  const auto report = validate(truth, config);
  EXPECT_NEAR(report.theoretical_failure, 0.03125, 1e-12);
  EXPECT_NEAR(report.mean_failure, 0.03125, 0.012);
  EXPECT_GT(report.ci95_half_width, 0.0);
}

TEST(Validation, TighterBoundLowersFailures) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  ValidationConfig tight;
  tight.trace.alpha = 0.05;
  tight.trace.max_branching = 30;  // much smaller epsilon
  tight.runs_per_sample = 300;
  tight.samples = 4;
  const auto report = validate(truth, tight);
  EXPECT_LT(report.theoretical_failure, 0.01);
  EXPECT_LT(report.mean_failure, 0.01);
}

TEST(Validation, ConsistencyPredicate) {
  ValidationReport report;
  report.theoretical_failure = 0.03;
  report.mean_failure = 0.032;
  report.ci95_half_width = 0.005;
  EXPECT_TRUE(report.consistent());
  report.mean_failure = 0.05;
  EXPECT_FALSE(report.consistent());
}

}  // namespace
}  // namespace mmlpt::core
