#include "core/trace_json.h"

#include <gtest/gtest.h>

#include "core/validation.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

TEST(TraceJson, GraphExportContainsAddressesAndEdges) {
  const auto json = graph_to_json(topo::simplest_diamond());
  EXPECT_NE(json.find("\"hop_count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"vertex_count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"10.1.0.0\""), std::string::npos);
  EXPECT_NE(json.find("\"successors\":[\"10.1.2.0\"]"), std::string::npos);
}

TEST(TraceJson, StarsExportAsNull) {
  topo::MultipathGraph g;
  g.add_hop();
  (void)g.add_vertex(0, {});
  const auto json = graph_to_json(g);
  EXPECT_NE(json.find("\"addr\":null"), std::string::npos);
}

TEST(TraceJson, TraceResultExport) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  const auto result = run_trace(truth, Algorithm::kMdaLite, {}, {}, 1);
  const auto json = trace_to_json(result);
  EXPECT_NE(json.find("\"packets\":"), std::string::npos);
  EXPECT_NE(json.find("\"reached_destination\":true"), std::string::npos);
  EXPECT_NE(json.find("\"switched_to_mda\":false"), std::string::npos);
  EXPECT_NE(json.find("\"discovery_events\":["), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"vertex\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"edge\""), std::string::npos);
}

TEST(TraceJson, BalancedBrackets) {
  const auto truth = plain_ground_truth(topo::fig1_unmeshed());
  const auto json = trace_to_json(run_trace(truth, Algorithm::kMda, {}, {}, 2));
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceJson, MultilevelExport) {
  // Simplest diamond with both middle interfaces on one shared-counter
  // router.
  auto truth = plain_ground_truth(topo::simplest_diamond());
  truth.vertex_router = {0, 1, 1, 2};
  truth.routers.resize(3);
  for (std::uint32_t i = 0; i < 3; ++i) {
    truth.routers[i].id = i;
    truth.routers[i].ip_id_policy = topo::IpIdPolicy::kSharedCounter;
  }
  fakeroute::Simulator simulator(truth, {}, 1);
  probe::SimulatedNetwork network(simulator);
  probe::ProbeEngine::Config config;
  config.source = truth.source;
  config.destination = truth.destination;
  probe::ProbeEngine engine(network, config);
  MultilevelConfig ml;
  ml.rounds = 2;
  const auto result = MultilevelTracer(engine, ml).run();

  const auto json = multilevel_to_json(result);
  EXPECT_NE(json.find("\"ip_level\":"), std::string::npos);
  EXPECT_NE(json.find("\"router_level\":"), std::string::npos);
  EXPECT_NE(json.find("\"rounds\":["), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"accept\""), std::string::npos);
}

}  // namespace
}  // namespace mmlpt::core
