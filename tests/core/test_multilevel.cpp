#include "core/multilevel.h"

#include <gtest/gtest.h>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

struct Rig {
  topo::GroundTruth truth;
  fakeroute::Simulator simulator;
  probe::SimulatedNetwork network;
  probe::ProbeEngine engine;

  explicit Rig(topo::GroundTruth t, std::uint64_t seed = 1)
      : truth(std::move(t)),
        simulator(truth, {}, seed),
        network(simulator),
        engine(network, make_config(truth)) {}

  static probe::ProbeEngine::Config make_config(const topo::GroundTruth& t) {
    probe::ProbeEngine::Config c;
    c.source = t.source;
    c.destination = t.destination;
    return c;
  }
};

/// fig1-unmeshed diamond whose 4-wide hop is two routers of 2 interfaces.
topo::GroundTruth two_router_truth() {
  auto truth = plain_ground_truth(topo::fig1_unmeshed());
  // Vertices: 0 = div; 1..4 = wide hop; 5,6 = 2-hop; 7 = conv.
  truth.vertex_router = {0, 1, 1, 2, 2, 3, 4, 5};
  truth.routers.resize(6);
  for (std::uint32_t i = 0; i < truth.routers.size(); ++i) {
    truth.routers[i].id = i;
    truth.routers[i].ip_id_policy = topo::IpIdPolicy::kSharedCounter;
    truth.routers[i].ip_id_velocity = 400.0 + 300.0 * i;
  }
  return truth;
}

TEST(Multilevel, RecoversRouterLevelTopology) {
  Rig rig(two_router_truth());
  MultilevelConfig config;
  MultilevelTracer tracer(rig.engine, config);
  const auto result = tracer.run();

  EXPECT_TRUE(topo::same_topology(result.trace.graph, rig.truth.graph));
  // Router-level: wide hop collapses 4 -> 2.
  const auto merged_truth = rig.truth.router_level_graph();
  EXPECT_TRUE(topo::same_topology(result.router_graph, merged_truth));
}

TEST(Multilevel, RoundZeroThenRefinement) {
  Rig rig(two_router_truth());
  MultilevelConfig config;
  config.rounds = 4;
  MultilevelTracer tracer(rig.engine, config);
  const auto result = tracer.run();
  ASSERT_EQ(result.rounds.size(), 5u);  // rounds 0..4
  // Packets strictly increase round over round.
  for (std::size_t r = 1; r < result.rounds.size(); ++r) {
    EXPECT_GT(result.rounds[r].packets, result.rounds[r - 1].packets);
  }
}

TEST(Multilevel, NoAliasesMeansIdentityRouterGraph) {
  // Every interface its own router with distinct counters.
  auto truth = plain_ground_truth(topo::fig1_unmeshed());
  for (std::uint32_t i = 0; i < truth.routers.size(); ++i) {
    truth.routers[i].ip_id_policy = topo::IpIdPolicy::kSharedCounter;
    truth.routers[i].ip_id_velocity = 200.0 + 137.0 * i;
  }
  Rig rig(std::move(truth));
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  EXPECT_TRUE(topo::same_topology(result.router_graph, rig.truth.graph));
}

TEST(Multilevel, ConstantZeroIpIdsGiveUnableSets) {
  auto truth = two_router_truth();
  for (auto& r : truth.routers) {
    r.ip_id_policy = topo::IpIdPolicy::kConstantZero;
  }
  Rig rig(std::move(truth));
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  // No accepted sets: the router graph equals the IP graph.
  EXPECT_TRUE(topo::same_topology(result.router_graph, rig.truth.graph));
  for (const auto& [hop, sets] : result.final_round().sets_by_hop) {
    for (const auto& s : sets) {
      EXPECT_NE(s.outcome, alias::Outcome::kAccept);
    }
  }
}

TEST(Multilevel, PerInterfaceCountersRejected) {
  // Sec. 4.2: per-interface Time Exceeded counters make indirect MBT
  // split real aliases.
  auto truth = two_router_truth();
  truth.routers[1].ip_id_policy = topo::IpIdPolicy::kPerInterface;
  truth.routers[2].ip_id_policy = topo::IpIdPolicy::kPerInterface;
  Rig rig(std::move(truth));
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  EXPECT_TRUE(topo::same_topology(result.router_graph, rig.truth.graph));
}

TEST(Multilevel, MplsLabelsSeparateRouters) {
  auto truth = two_router_truth();
  // Same shared-counter velocity (hard for MBT alone if probes align),
  // but different MPLS labels pin them apart; same label within router.
  truth.routers[1].mpls_label = 100;
  truth.routers[2].mpls_label = 200;
  Rig rig(std::move(truth));
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  const auto merged_truth = rig.truth.router_level_graph();
  EXPECT_TRUE(topo::same_topology(result.router_graph, merged_truth));
}

TEST(Multilevel, RouterGraphPreservesHopsAndEdges) {
  Rig rig(two_router_truth());
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  EXPECT_EQ(result.router_graph.hop_count(), result.trace.graph.hop_count());
  EXPECT_LE(result.router_graph.vertex_count(),
            result.trace.graph.vertex_count());
}

TEST(Multilevel, MergeByAliasesStatic) {
  const auto graph = topo::simplest_diamond();
  std::map<int, std::vector<alias::AliasSet>> sets;
  sets[1].push_back(
      {{topo::reference_addr(1, 1, 0), topo::reference_addr(1, 1, 1)},
       alias::Outcome::kAccept});
  const auto merged = MultilevelTracer::merge_by_aliases(graph, sets);
  EXPECT_EQ(merged.vertices_at(1).size(), 1u);
  EXPECT_EQ(merged.edge_count(), 2u);
}

TEST(Multilevel, MergeIgnoresRejectedSets) {
  const auto graph = topo::simplest_diamond();
  std::map<int, std::vector<alias::AliasSet>> sets;
  sets[1].push_back(
      {{topo::reference_addr(1, 1, 0), topo::reference_addr(1, 1, 1)},
       alias::Outcome::kReject});
  const auto merged = MultilevelTracer::merge_by_aliases(graph, sets);
  EXPECT_TRUE(topo::same_topology(merged, graph));
}

TEST(Multilevel, TotalPacketsCoverTraceAndRounds) {
  Rig rig(two_router_truth());
  MultilevelTracer tracer(rig.engine, MultilevelConfig{});
  const auto result = tracer.run();
  EXPECT_GT(result.total_packets, result.trace.packets);
  EXPECT_EQ(result.total_packets, rig.engine.packets_sent());
}

}  // namespace
}  // namespace mmlpt::core
