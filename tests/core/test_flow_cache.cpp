#include "core/flow_cache.h"

#include <gtest/gtest.h>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "probe/simulated_network.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

struct Rig {
  topo::GroundTruth truth;
  fakeroute::Simulator simulator;
  probe::SimulatedNetwork network;
  probe::ProbeEngine engine;
  FlowCache cache;

  Rig()
      : truth(plain_ground_truth(topo::simplest_diamond())),
        simulator(truth, {}, 1),
        network(simulator),
        engine(network, make_config(truth)),
        cache(engine) {}

  static probe::ProbeEngine::Config make_config(const topo::GroundTruth& t) {
    probe::ProbeEngine::Config c;
    c.source = t.source;
    c.destination = t.destination;
    return c;
  }
};

TEST(FlowCache, MemoizesProbes) {
  Rig rig;
  const auto& first = rig.cache.probe(0, 1);
  const auto packets = rig.engine.packets_sent();
  const auto& second = rig.cache.probe(0, 1);
  EXPECT_EQ(rig.engine.packets_sent(), packets);  // no new packet
  EXPECT_EQ(&first, &second);
}

TEST(FlowCache, LookupOnlyFindsProbed) {
  Rig rig;
  EXPECT_EQ(rig.cache.lookup(0, 1), nullptr);
  (void)rig.cache.probe(0, 1);
  EXPECT_NE(rig.cache.lookup(0, 1), nullptr);
  EXPECT_EQ(rig.cache.lookup(0, 2), nullptr);
  EXPECT_EQ(rig.cache.lookup(1, 1), nullptr);
}

TEST(FlowCache, FlowsAtTracksProbeOrder) {
  Rig rig;
  (void)rig.cache.probe(5, 1);
  (void)rig.cache.probe(3, 1);
  (void)rig.cache.probe(5, 2);
  const auto& at1 = rig.cache.flows_at(1);
  ASSERT_EQ(at1.size(), 2u);
  EXPECT_EQ(at1[0], 5u);
  EXPECT_EQ(at1[1], 3u);
  EXPECT_EQ(rig.cache.flows_at(2).size(), 1u);
  EXPECT_TRUE(rig.cache.flows_at(9).empty());
}

TEST(FlowCache, FlowsReachingGrowsInPlace) {
  Rig rig;
  const auto& r0 = rig.cache.probe(0, 1);
  ASSERT_TRUE(r0.answered);
  const auto& reaching = rig.cache.flows_reaching(1, r0.responder);
  const auto before = reaching.size();
  // Probe more flows; every one that lands on the same vertex must
  // appear in the same (stable) vector.
  for (FlowId f = 1; f < 30; ++f) {
    (void)rig.cache.probe(f, 1);
  }
  EXPECT_GT(reaching.size(), before);
  for (const auto f : reaching) {
    EXPECT_EQ(rig.cache.lookup(f, 1)->responder, r0.responder);
  }
}

TEST(FlowCache, FreshFlowsNeverRepeat) {
  Rig rig;
  std::set<FlowId> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(rig.cache.fresh_flow()).second);
  }
}

TEST(FlowCache, ObserverFiresOncePerFreshAnsweredProbe) {
  Rig rig;
  int calls = 0;
  rig.cache.set_observer(
      [&](FlowId, int, const probe::TraceProbeResult&) { ++calls; });
  (void)rig.cache.probe(0, 1);
  (void)rig.cache.probe(0, 1);  // cached: no second call
  (void)rig.cache.probe(1, 1);
  EXPECT_EQ(calls, 2);
}

TEST(FlowCache, RejectsAbsurdTtl) {
  Rig rig;
  EXPECT_THROW((void)rig.cache.probe(0, 0), ContractViolation);
  EXPECT_THROW((void)rig.cache.probe(0, 300), ContractViolation);
}

TEST(FlowCache, PrefetchedEntriesStayInvisibleUntilConsumed) {
  Rig rig;
  const FlowCache::ProbeRequest requests[] = {{0, 1}, {1, 1}, {0, 2}};
  rig.cache.prefetch(requests);
  EXPECT_GT(rig.engine.packets_sent(), 0u);  // the window went out...
  EXPECT_EQ(rig.cache.lookup(0, 1), nullptr);  // ...but nothing is visible
  EXPECT_TRUE(rig.cache.flows_at(1).empty());
  EXPECT_EQ(rig.cache.packets_accounted(), 0u);

  const auto& r = rig.cache.probe(0, 1);  // consume: no new packet
  const auto wire = rig.engine.packets_sent();
  EXPECT_TRUE(r.answered);
  EXPECT_EQ(rig.engine.packets_sent(), wire);
  EXPECT_NE(rig.cache.lookup(0, 1), nullptr);
  EXPECT_EQ(rig.cache.flows_at(1).size(), 1u);
  EXPECT_EQ(rig.cache.packets_accounted(), 1u);
  EXPECT_EQ(rig.cache.lookup(1, 1), nullptr);  // others still unconsumed
}

TEST(FlowCache, PrefetchSkipsKnownEntriesAndWindowDuplicates) {
  Rig rig;
  (void)rig.cache.probe(0, 1);  // consumed entry
  const auto wire_before = rig.engine.packets_sent();
  const FlowCache::ProbeRequest requests[] = {
      {0, 1},  // already consumed: skipped
      {1, 1}, {1, 1},  // duplicate within the window: sent once
  };
  rig.cache.prefetch(requests);
  EXPECT_EQ(rig.engine.packets_sent(), wire_before + 1);
  rig.cache.prefetch(requests);  // everything known now: no packets
  EXPECT_EQ(rig.engine.packets_sent(), wire_before + 1);
}

TEST(FlowCache, ObserverFiresAtConsumptionInSerialOrder) {
  Rig rig;
  std::vector<FlowId> fired;
  rig.cache.set_observer(
      [&](FlowId flow, int, const probe::TraceProbeResult&) {
        fired.push_back(flow);
      });
  const FlowCache::ProbeRequest requests[] = {{0, 1}, {1, 1}, {2, 1}};
  rig.cache.prefetch(requests);
  EXPECT_TRUE(fired.empty());
  (void)rig.cache.probe(2, 1);  // consumption order, not fetch order
  (void)rig.cache.probe(0, 1);
  (void)rig.cache.probe(1, 1);
  EXPECT_EQ(fired, (std::vector<FlowId>{2, 0, 1}));
}

TEST(FlowCache, PacketsMatchesEngineWheneverEverythingIsConsumed) {
  Rig rig;
  const FlowCache::ProbeRequest requests[] = {{0, 1}, {1, 1}, {2, 2}};
  rig.cache.prefetch(requests);
  for (const auto& request : requests) {
    (void)rig.cache.probe(request.flow, request.ttl);
  }
  EXPECT_EQ(rig.cache.packets(), rig.engine.packets_sent());
}

}  // namespace
}  // namespace mmlpt::core
