#include "core/single_flow.h"

#include <gtest/gtest.h>

#include <set>

#include "core/validation.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

TEST(SingleFlow, TracesOnePathThroughDiamond) {
  const auto truth = plain_ground_truth(topo::simplest_diamond());
  const auto result = run_trace(truth, Algorithm::kSingleFlow, {}, {}, 1);
  EXPECT_TRUE(result.reached_destination);
  // Exactly one vertex per hop.
  for (std::uint16_t h = 0; h < result.graph.hop_count(); ++h) {
    EXPECT_EQ(result.graph.vertices_at(h).size(), 1u);
  }
  // Two probed hops (the source sits at hop 0), one packet each.
  EXPECT_EQ(result.packets, 2u);
}

TEST(SingleFlow, MissesMostOfAWideDiamond) {
  const auto graph = topo::max_length_2_diamond();
  const auto truth = plain_ground_truth(graph);
  const auto result = run_trace(truth, Algorithm::kSingleFlow, {}, {}, 1);
  const auto found = topo::count_discovered(graph, result.graph);
  EXPECT_EQ(found.vertices, 3u);  // div, one of 28, conv
  EXPECT_EQ(found.edges, 2u);
  EXPECT_EQ(result.packets, 2u);
}

TEST(SingleFlow, DifferentSeedsMayTakeDifferentBranches) {
  const auto graph = topo::max_length_2_diamond();
  const auto truth = plain_ground_truth(graph);
  std::set<std::uint32_t> middles;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto result = run_trace(truth, Algorithm::kSingleFlow, {}, {}, seed);
    middles.insert(
        result.graph.vertex(result.graph.vertices_at(1)[0]).addr.value());
  }
  EXPECT_GT(middles.size(), 4u);
}

TEST(SingleFlow, StarHopLeavesGap) {
  auto truth = plain_ground_truth(topo::simplest_diamond());
  // Both middle routers silent: hop 1 becomes a star.
  truth.routers[1].responds_to_indirect = false;
  truth.routers[2].responds_to_indirect = false;
  const auto result = run_trace(truth, Algorithm::kSingleFlow, {}, {}, 1);
  EXPECT_TRUE(result.reached_destination);
  // Hop 1 empty, destination present at hop 2, no edge across the gap.
  EXPECT_TRUE(result.graph.vertices_at(1).empty());
  EXPECT_EQ(result.graph.vertices_at(2).size(), 1u);
}

TEST(SingleFlow, UnreachableDestinationStopsAtMaxTtl) {
  auto truth = plain_ground_truth(topo::simplest_diamond());
  TraceConfig config;
  config.max_ttl = 10;
  // Destination never answers.
  truth.routers.back().responds_to_indirect = false;
  const auto result =
      run_trace(truth, Algorithm::kSingleFlow, config, {}, 1);
  EXPECT_FALSE(result.reached_destination);
  // 1 answered hop (the middle vertex) + 9 silent TTLs x (1 + 2 retries).
  EXPECT_EQ(result.packets, 1u + 9u * 3u);
}

}  // namespace
}  // namespace mmlpt::core
