#include "core/trace_log.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mmlpt::core {
namespace {

const net::Ipv4Address kA(10, 0, 0, 1);
const net::Ipv4Address kB(10, 0, 0, 2);
const net::Ipv4Address kC(10, 0, 0, 3);

TEST(DiscoveryRecorder, VertexDeduplication) {
  DiscoveryRecorder rec;
  EXPECT_TRUE(rec.add_vertex(0, kA, 1));
  EXPECT_FALSE(rec.add_vertex(0, kA, 2));
  EXPECT_EQ(rec.vertex_total(), 1u);
  EXPECT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].packets, 1u);
  EXPECT_FALSE(rec.events()[0].is_edge);
}

TEST(DiscoveryRecorder, StarsIgnored) {
  DiscoveryRecorder rec;
  EXPECT_FALSE(rec.add_vertex(0, {}, 1));
  EXPECT_EQ(rec.vertex_total(), 0u);
}

TEST(DiscoveryRecorder, EdgeNeedsBothVertices) {
  DiscoveryRecorder rec;
  rec.add_vertex(0, kA, 1);
  EXPECT_THROW(rec.add_edge(0, kA, kB, 2), ContractViolation);
  rec.add_vertex(1, kB, 2);
  EXPECT_TRUE(rec.add_edge(0, kA, kB, 3));
  EXPECT_FALSE(rec.add_edge(0, kA, kB, 4));  // dedup
  EXPECT_EQ(rec.edge_total(), 1u);
}

TEST(DiscoveryRecorder, DegreeQueries) {
  DiscoveryRecorder rec;
  rec.add_vertex(0, kA, 1);
  rec.add_vertex(1, kB, 1);
  rec.add_vertex(1, kC, 1);
  rec.add_edge(0, kA, kB, 2);
  rec.add_edge(0, kA, kC, 3);
  EXPECT_EQ(rec.successor_count(0, kA), 2u);
  EXPECT_EQ(rec.predecessor_count(1, kB), 1u);
  EXPECT_EQ(rec.predecessor_count(1, kC), 1u);
  EXPECT_EQ(rec.successor_count(1, kB), 0u);
  const auto succ = rec.successors(0, kA);
  EXPECT_EQ(succ.size(), 2u);
}

TEST(DiscoveryRecorder, OutOfRangeQueriesAreSafe) {
  DiscoveryRecorder rec;
  EXPECT_TRUE(rec.vertices(0).empty());
  EXPECT_TRUE(rec.vertices(-1).empty());
  EXPECT_FALSE(rec.has_vertex(5, kA));
  EXPECT_EQ(rec.successor_count(7, kA), 0u);
  EXPECT_EQ(rec.predecessor_count(-2, kA), 0u);
}

TEST(DiscoveryRecorder, ToGraphPreservesStructure) {
  DiscoveryRecorder rec;
  rec.add_vertex(0, kA, 1);
  rec.add_vertex(1, kB, 2);
  rec.add_vertex(1, kC, 3);
  rec.add_edge(0, kA, kB, 4);
  rec.add_edge(0, kA, kC, 5);
  const auto g = rec.to_graph();
  EXPECT_EQ(g.hop_count(), 2);
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_NE(g.find_at(1, kC), topo::kInvalidVertex);
}

TEST(DiscoveryRecorder, ToGraphToleratesPartialDiscovery) {
  DiscoveryRecorder rec;
  rec.add_vertex(0, kA, 1);
  rec.add_vertex(2, kB, 2);  // gap at hop 1 (silent hop)
  const auto g = rec.to_graph();
  EXPECT_EQ(g.hop_count(), 3);
  EXPECT_TRUE(g.vertices_at(1).empty());
}

TEST(DiscoveryRecorder, EventsInterleaveVerticesAndEdges) {
  DiscoveryRecorder rec;
  rec.add_vertex(0, kA, 10);
  rec.add_vertex(1, kB, 20);
  rec.add_edge(0, kA, kB, 20);
  ASSERT_EQ(rec.events().size(), 3u);
  EXPECT_FALSE(rec.events()[0].is_edge);
  EXPECT_TRUE(rec.events()[2].is_edge);
  EXPECT_EQ(rec.events()[2].packets, 20u);
}

}  // namespace
}  // namespace mmlpt::core
