#include "core/mda.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace mmlpt::core {
namespace {

TraceResult trace_mda(const topo::MultipathGraph& graph,
                      std::uint64_t seed = 1,
                      TraceConfig config = TraceConfig{}) {
  const auto truth = plain_ground_truth(graph);
  return run_trace(truth, Algorithm::kMda, config, {}, seed);
}

TEST(Mda, DiscoversSimplestDiamond) {
  const auto graph = topo::simplest_diamond();
  const auto result = trace_mda(graph);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(Mda, DiscoversFig1Unmeshed) {
  const auto graph = topo::fig1_unmeshed();
  const auto result = trace_mda(graph);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(Mda, DiscoversFig1Meshed) {
  const auto graph = topo::fig1_meshed();
  const auto result = trace_mda(graph);
  EXPECT_TRUE(topo::same_topology(result.graph, graph));
}

TEST(Mda, DiscoversSymmetricDiamondReliably) {
  const auto graph = topo::symmetric_diamond();
  int full = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    if (topo::same_topology(trace_mda(graph, seed).graph, graph)) ++full;
  }
  EXPECT_GE(full, 9);  // failure bound is ~0.05 for the whole topology
}

TEST(Mda, DiscoversAsymmetricDiamond) {
  // Node control makes the MDA robust to non-uniform topologies.
  const auto graph = topo::asymmetric_diamond();
  int full = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    if (topo::same_topology(trace_mda(graph, seed).graph, graph)) ++full;
  }
  EXPECT_GE(full, 4);
}

TEST(Mda, DiscoversMeshedDiamond) {
  const auto graph = topo::meshed_diamond();
  const auto result = trace_mda(graph, 3);
  const auto found = topo::count_discovered(graph, result.graph);
  // All 127 vertices and nearly all edges.
  EXPECT_EQ(found.vertices, graph.vertex_count());
  EXPECT_GE(found.edges, graph.edge_count() - 2);
}

// Fig. 1's worked example: the MDA spends 11*n1 + delta = 99 + delta
// probes on the unmeshed diamond. Check the right order of magnitude and
// that node control inflates the count beyond the MDA-Lite's 68.
TEST(Mda, UnmeshedDiamondProbeCostNearPaper) {
  const auto graph = topo::fig1_unmeshed();
  RunningStats packets;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    packets.add(static_cast<double>(trace_mda(graph, seed).packets));
  }
  // 99 + delta, plus convergence-point scanning beyond the paper's
  // illustration (it only counts probes within the diamond).
  EXPECT_GT(packets.mean(), 90.0);
  EXPECT_LT(packets.mean(), 200.0);
}

TEST(Mda, MeshedCostsMoreThanUnmeshed) {
  RunningStats unmeshed;
  RunningStats meshed;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    unmeshed.add(static_cast<double>(
        trace_mda(topo::fig1_unmeshed(), seed).packets));
    meshed.add(static_cast<double>(
        trace_mda(topo::fig1_meshed(), seed).packets));
  }
  // Paper: 99 + delta vs 163 + delta'.
  EXPECT_GT(meshed.mean(), unmeshed.mean() * 1.3);
}

TEST(Mda, NodeControlProbesReported) {
  const auto result = trace_mda(topo::fig1_unmeshed());
  EXPECT_GT(result.node_control_probes, 0u);
}

TEST(Mda, EventsMonotoneInPackets) {
  const auto result = trace_mda(topo::symmetric_diamond());
  std::uint64_t prev = 0;
  for (const auto& e : result.events) {
    EXPECT_GE(e.packets, prev);
    prev = e.packets;
  }
  EXPECT_EQ(result.events.size(),
            result.graph.vertex_count() + result.graph.edge_count());
}

TEST(Mda, PlainPathCheap) {
  // A route with no load balancing: MDA sends n1 probes per hop.
  topo::MultipathGraph g;
  for (int h = 0; h < 5; ++h) g.add_hop();
  topo::VertexId prev = topo::kInvalidVertex;
  for (int h = 0; h < 5; ++h) {
    const auto v = g.add_vertex(static_cast<std::uint16_t>(h),
                                net::Ipv4Address(10, 0, 3, h + 1));
    if (h > 0) g.add_edge(prev, v);
    prev = v;
  }
  const auto result = trace_mda(g);
  EXPECT_TRUE(result.reached_destination);
  EXPECT_TRUE(topo::same_topology(result.graph, g));
  // 4 probed hops, n1 = 16 for (0.05, 30) defaults.
  const auto sp = StoppingPoints::for_global(0.05, 30);
  EXPECT_EQ(result.packets, static_cast<std::uint64_t>(4 * sp.n(1)));
}

TEST(Mda, HandlesLoss) {
  fakeroute::SimConfig sim;
  sim.loss_prob = 0.1;
  const auto truth = plain_ground_truth(topo::fig1_unmeshed());
  const auto result = run_trace(truth, Algorithm::kMda, {}, sim, 7);
  // Retries make full discovery likely even with 10% loss.
  const auto found = topo::count_discovered(truth.graph, result.graph);
  EXPECT_EQ(found.vertices, truth.graph.vertex_count());
}

TEST(Mda, RespectsMaxTtl) {
  TraceConfig config;
  config.max_ttl = 2;
  const auto result = trace_mda(topo::symmetric_diamond(), 1, config);
  EXPECT_FALSE(result.reached_destination);
  EXPECT_LE(result.graph.hop_count(), 3);
}

}  // namespace
}  // namespace mmlpt::core
