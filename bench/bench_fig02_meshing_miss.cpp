// Fig. 2: the probability that the MDA-Lite's phi=2 meshing test fails to
// detect meshing, per meshed hop pair, over the survey's measured and
// distinct diamonds (Eq. 1). Paper: miss probability <= 0.1 for ~70% of
// meshed hop pairs and <= 0.25 for ~95%, in both weightings.
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 600);
  config.distinct_diamonds = flags.get_uint("distinct", 250);
  config.phi_for_meshing_analysis =
      static_cast<int>(flags.get_int("phi", 2));
  config.seed = seed;
  bench::print_header("Fig. 2: probability of failing to detect meshing",
                      flags, seed);

  const auto result = survey::run_ip_survey(config);
  const auto& measured = result.accounting.measured().meshing_miss;
  const auto& distinct = result.accounting.distinct().meshing_miss;

  std::printf("survey: %llu routes, %llu measured / %llu distinct diamonds, "
              "%llu packets\n",
              static_cast<unsigned long long>(result.routes_traced),
              static_cast<unsigned long long>(
                  result.accounting.measured().total),
              static_cast<unsigned long long>(
                  result.accounting.distinct().total),
              static_cast<unsigned long long>(result.total_packets));

  std::fputs(render_cdf_comparison(
                 "CDF of P(miss meshing), phi=" +
                     std::to_string(config.phi_for_meshing_analysis),
                 {{"measured", &measured}, {"distinct", &distinct}},
                 {0.1, 0.25, 0.5, 0.7, 0.9, 0.95, 1.0})
                 .c_str(),
             stdout);

  bench::PaperComparison cmp("Fig. 2 meshing-miss probability");
  if (!measured.empty()) {
    cmp.add("measured: portion of pairs with miss <= 0.1 (~0.70)", 0.70,
            measured.at(0.1), 2);
    cmp.add("measured: portion of pairs with miss <= 0.25 (~0.95)", 0.95,
            measured.at(0.25), 2);
  }
  if (!distinct.empty()) {
    cmp.add("distinct: portion of pairs with miss <= 0.1 (~0.70)", 0.70,
            distinct.at(0.1), 2);
    cmp.add("distinct: portion of pairs with miss <= 0.25 (~0.95)", 0.95,
            distinct.at(0.25), 2);
  }
  cmp.print();
}

void BM_MeshingMissAnalytic(benchmark::State& state) {
  const auto g = topo::fig6_right();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::meshing_miss_probability(g, 1, 2));
  }
}
BENCHMARK(BM_MeshingMissAnalytic);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
