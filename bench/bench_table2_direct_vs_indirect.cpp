// Table 2: address sets identified as routers by indirect probing
// (MMLPT) or direct probing (MIDAR-style), each classified by the other
// method, expressed as portions of the union.
//
// Paper (4798 sets):        Accept-D   Reject-D   Unable-D
//   Accept-Indirect         0.365      0.005      0.283
//   Reject-Indirect         0.144      N/A        N/A
//   Unable-Indirect         0.203      N/A        N/A
#include "bench_util.h"
#include "survey/alias_eval.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::AliasEvalConfig config;
  config.routes = flags.get_uint("routes", 80);
  config.distinct_diamonds = flags.get_uint("distinct", 50);
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 5));
  config.seed = seed;
  bench::print_header("Table 2: indirect (MMLPT) vs direct (MIDAR) probing",
                      flags, seed);

  const auto result = survey::run_alias_eval(config);
  const auto& t = result.table2;

  std::printf("address sets considered: %llu (indirect accepted %llu, "
              "direct accepted %llu)\n\n",
              static_cast<unsigned long long>(t.total_sets),
              static_cast<unsigned long long>(t.indirect_accepted),
              static_cast<unsigned long long>(t.direct_accepted));

  AsciiTable table({"", "Accept Direct", "Reject Direct", "Unable Direct"});
  table.set_title("Portions of all sets identified by either method");
  table.add_row({"Accept Indirect", fmt_double(t.portion(t.accept_accept), 3),
                 fmt_double(t.portion(t.accept_indirect_reject_direct), 3),
                 fmt_double(t.portion(t.accept_indirect_unable_direct), 3)});
  table.add_row({"Reject Indirect",
                 fmt_double(t.portion(t.reject_indirect_accept_direct), 3),
                 "N/A", "N/A"});
  table.add_row({"Unable Indirect",
                 fmt_double(t.portion(t.unable_indirect_accept_direct), 3),
                 "N/A", "N/A"});
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Table 2");
  cmp.add("accept/accept (0.365)", 0.365, t.portion(t.accept_accept));
  cmp.add("accept-I / reject-D (0.005)", 0.005,
          t.portion(t.accept_indirect_reject_direct));
  cmp.add("accept-I / unable-D (0.283)", 0.283,
          t.portion(t.accept_indirect_unable_direct));
  cmp.add("reject-I / accept-D (0.144)", 0.144,
          t.portion(t.reject_indirect_accept_direct));
  cmp.add("unable-I / accept-D (0.203)", 0.203,
          t.portion(t.unable_indirect_accept_direct));
  cmp.print();
}

void BM_DirectProbePass(benchmark::State& state) {
  survey::AliasEvalConfig config;
  config.routes = 1;
  config.distinct_diamonds = 5;
  config.multilevel.rounds = 2;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(survey::run_alias_eval(config));
  }
}
BENCHMARK(BM_DirectProbePass)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
