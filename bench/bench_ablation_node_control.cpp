// Ablation (Sec. 2.1/2.3): where the MDA's packets actually go — node
// control verification vs discovery — against the MDA-Lite's hop-by-hop
// budget, across diamond widths. This is the paper's core motivation:
// node control is the Multiple Coupon Collector cost that the MDA-Lite
// avoids on uniform unmeshed diamonds.
#include "bench_util.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

/// A uniform, unmeshed diamond of the given width and length 3
/// (divergence, W-wide hop, W/2-wide hop, convergence), which forces the
/// MDA to node-control the wide hop.
topo::MultipathGraph two_stage_diamond(int width, std::uint8_t block) {
  topo::MultipathGraph g;
  for (int h = 0; h < 4; ++h) g.add_hop();
  std::vector<topo::VertexId> wide;
  std::vector<topo::VertexId> narrow;
  const auto div = g.add_vertex(0, net::Ipv4Address(10, block, 0, 0));
  for (int i = 0; i < width; ++i) {
    wide.push_back(g.add_vertex(
        1, net::Ipv4Address(10, block, 1, static_cast<std::uint8_t>(i))));
    g.add_edge(div, wide.back());
  }
  for (int i = 0; i < width / 2; ++i) {
    narrow.push_back(g.add_vertex(
        2, net::Ipv4Address(10, block, 2, static_cast<std::uint8_t>(i))));
  }
  for (int i = 0; i < width; ++i) {
    g.add_edge(wide[static_cast<std::size_t>(i)],
               narrow[static_cast<std::size_t>(i / 2)]);
  }
  const auto conv = g.add_vertex(3, net::Ipv4Address(10, block, 3, 0));
  for (const auto v : narrow) g.add_edge(v, conv);
  g.validate();
  return g;
}

void experiment(const Flags& flags) {
  const int runs = static_cast<int>(flags.get_int("runs", 30));
  const std::uint64_t seed = flags.get_uint("seed", 1);
  bench::print_header("Ablation: node-control cost vs diamond width", flags,
                      seed);

  AsciiTable table({"width", "MDA packets", "MDA node-control", "Lite packets",
                    "Lite meshing-test", "Lite/MDA"});
  table.set_title("Uniform unmeshed length-3 diamonds, " +
                  std::to_string(runs) + " runs each");
  bench::PaperComparison cmp("node-control ablation");
  std::uint8_t block = 100;
  for (const int width : {4, 8, 16, 32, 48}) {
    const auto truth =
        core::plain_ground_truth(two_stage_diamond(width, block++));
    RunningStats mda_packets;
    RunningStats mda_nc;
    RunningStats lite_packets;
    RunningStats lite_mesh;
    for (int i = 0; i < runs; ++i) {
      const auto s = seed + static_cast<std::uint64_t>(i) * 11;
      const auto mda =
          core::run_trace(truth, core::Algorithm::kMda, {}, {}, s);
      const auto lite =
          core::run_trace(truth, core::Algorithm::kMdaLite, {}, {}, s + 3);
      mda_packets.add(static_cast<double>(mda.packets));
      mda_nc.add(static_cast<double>(mda.node_control_probes));
      lite_packets.add(static_cast<double>(lite.packets));
      lite_mesh.add(static_cast<double>(lite.meshing_test_probes));
    }
    const double ratio = lite_packets.mean() / mda_packets.mean();
    table.add_row({std::to_string(width), fmt_double(mda_packets.mean(), 0),
                   fmt_double(mda_nc.mean(), 0),
                   fmt_double(lite_packets.mean(), 0),
                   fmt_double(lite_mesh.mean(), 0), fmt_double(ratio, 3)});
    cmp.add("width " + std::to_string(width) + ": Lite saves packets",
            "< 1.0", fmt_double(ratio, 3));
  }
  std::fputs(table.render().c_str(), stdout);
  cmp.add("node-control share grows with width", "yes", "see table");
  cmp.print();
}

void BM_NodeControlWidth32(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(two_stage_diamond(32, 200));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_trace(truth, core::Algorithm::kMda, {}, {}, seed++));
  }
}
BENCHMARK(BM_NodeControlWidth32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
