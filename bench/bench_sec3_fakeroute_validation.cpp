// Sec. 3 validation experiment: run the real MDA implementation against
// Fakeroute's simplest diamond many times and verify the empirical
// failure rate matches the exact theoretical value. Paper: theory
// 0.03125; measured 0.03206 with a 95% CI of width 0.00156 over 50
// samples x 1000 runs (10 minutes on a 2018 laptop). Defaults here are
// scaled to 20 x 400; pass --samples/--runs for the full experiment.
#include "bench_util.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 42);
  core::ValidationConfig config;
  config.samples = static_cast<int>(flags.get_int("samples", 20));
  config.runs_per_sample = static_cast<int>(flags.get_int("runs", 400));
  config.trace.alpha = 0.05;
  config.trace.max_branching = 1;  // per-vertex epsilon 0.05, as in Sec. 3
  config.seed = seed;
  bench::print_header("Sec. 3: Fakeroute statistical validation of the MDA",
                      flags, seed);

  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  const auto report = core::validate(truth, config);

  std::printf("topology: simplest diamond (divergence, 2 vertices, "
              "convergence)\n");
  std::printf("samples=%d runs/sample=%d\n", report.samples,
              report.runs_per_sample);
  std::printf("theoretical failure probability: %.5f\n",
              report.theoretical_failure);
  std::printf("measured mean failure rate:      %.5f\n",
              report.mean_failure);
  std::printf("95%% confidence half-width:       %.5f\n",
              report.ci95_half_width);
  std::printf("theory within measured CI:       %s\n",
              report.consistent() ? "yes" : "no");

  // Also validate a larger topology, as the paper reports doing.
  core::ValidationConfig big = config;
  big.samples = std::max(4, config.samples / 4);
  big.runs_per_sample = std::max(100, config.runs_per_sample / 4);
  const auto big_truth = core::plain_ground_truth(topo::fig1_unmeshed());
  const auto big_report = core::validate(big_truth, big);
  std::printf("\nfig1-unmeshed: theory %.5f, measured %.5f +/- %.5f\n",
              big_report.theoretical_failure, big_report.mean_failure,
              big_report.ci95_half_width);

  bench::PaperComparison cmp("Sec. 3 Fakeroute validation");
  cmp.add("simplest diamond: theoretical failure", 0.03125,
          report.theoretical_failure, 5);
  cmp.add("simplest diamond: measured failure (paper 0.03206)", 0.03206,
          report.mean_failure, 5);
  cmp.add("theory consistent with measurement", "yes",
          report.consistent() ? "yes" : "no");
  cmp.print();
}

void BM_SingleValidationRun(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  core::TraceConfig trace;
  trace.alpha = 0.05;
  trace.max_branching = 1;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_trace(truth, core::Algorithm::kMda, trace, {}, seed++));
  }
}
BENCHMARK(BM_SingleValidationRun)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
