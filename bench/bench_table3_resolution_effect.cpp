// Table 3: what alias resolution does to each unique IP-level diamond.
// Paper: no change 0.579; single smaller diamond 0.355; multiple smaller
// diamonds 0.006; one path (diamond disappears) 0.058 — i.e. some router
// resolution takes place on 42.1% of unique diamonds.
#include "bench_util.h"
#include "survey/router_survey.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::RouterSurveyConfig config;
  config.routes = flags.get_uint("routes", 150);
  config.distinct_diamonds = flags.get_uint("distinct", 80);
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 6));
  config.seed = seed;
  bench::print_header("Table 3: effect of alias resolution on diamonds",
                      flags, seed);

  const auto result = survey::run_router_survey(config);

  AsciiTable table({"case", "fraction"});
  table.set_title("Unique diamonds: " +
                  std::to_string(result.unique_diamonds));
  table.add_row({"No change",
                 fmt_double(result.resolution_fraction(
                                topo::ResolutionClass::kNoChange), 3)});
  table.add_row({"Single smaller diamond",
                 fmt_double(result.resolution_fraction(
                                topo::ResolutionClass::kSingleSmallerDiamond),
                            3)});
  table.add_row(
      {"Multiple smaller diamonds",
       fmt_double(result.resolution_fraction(
                      topo::ResolutionClass::kMultipleSmallerDiamonds),
                  3)});
  table.add_row({"One path (no diamond)",
                 fmt_double(result.resolution_fraction(
                                topo::ResolutionClass::kOnePath), 3)});
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Table 3");
  cmp.add("no change (0.579)", 0.579,
          result.resolution_fraction(topo::ResolutionClass::kNoChange));
  cmp.add("single smaller (0.355)", 0.355,
          result.resolution_fraction(
              topo::ResolutionClass::kSingleSmallerDiamond));
  cmp.add("multiple smaller (0.006)", 0.006,
          result.resolution_fraction(
              topo::ResolutionClass::kMultipleSmallerDiamonds));
  cmp.add("one path (0.058)", 0.058,
          result.resolution_fraction(topo::ResolutionClass::kOnePath));
  cmp.print();
}

void BM_ClassifyResolution(benchmark::State& state) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 5);
  const auto tmpl = gen.make_diamond();
  const auto merged = tmpl.truth.router_level_graph();
  const topo::Diamond d{0, static_cast<std::uint16_t>(
                               tmpl.truth.graph.hop_count() - 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        survey::classify_resolution(tmpl.truth.graph, merged, d));
  }
}
BENCHMARK(BM_ClassifyResolution);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
