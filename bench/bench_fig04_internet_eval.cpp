// Fig. 4: the Sec. 2.4.2 comparative evaluation — CDFs of per-pair
// vertex / edge / packet ratios of each tool variant against a first MDA
// run, over source-destination pairs whose routes contain diamonds.
//
// Paper shape: second MDA and both MDA-Lite variants hug ratio 1.0 for
// vertices and edges (Lite indistinguishable between phi=2 and phi=4);
// the MDA-Lite's packet-ratio curve sits clearly left of 1 (savings on
// 89% of pairs; >= 40% savings on 30%); single-flow discovers ~54% of
// vertices / ~20% of edges and sends ~4% of the packets.
#include "bench_util.h"
#include "survey/evaluation.h"

namespace {

using namespace mmlpt;
using survey::Variant;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::EvaluationConfig config;
  config.pairs = flags.get_uint("pairs", 400);
  config.distinct_diamonds = flags.get_uint("distinct", 300);
  config.seed = seed;
  bench::print_header(
      "Fig. 4: per-pair ratios vs first MDA (" +
          std::to_string(config.pairs) + " pairs; paper used 10,000)",
      flags, seed);

  const auto result = survey::run_evaluation(config);

  const std::vector<double> quantiles{0.05, 0.1, 0.25, 0.5,
                                      0.75, 0.9, 0.95, 1.0};
  const auto report = [&](const char* title,
                          double (survey::PairOutcome::*metric)(Variant)
                              const) {
    const auto mda2 = result.ratio_cdf(Variant::kMda2, metric);
    const auto lite2 = result.ratio_cdf(Variant::kMdaLitePhi2, metric);
    const auto lite4 = result.ratio_cdf(Variant::kMdaLitePhi4, metric);
    const auto single = result.ratio_cdf(Variant::kSingleFlow, metric);
    std::fputs(render_cdf_comparison(title,
                                     {{"2nd MDA", &mda2},
                                      {"Lite phi=2", &lite2},
                                      {"Lite phi=4", &lite4},
                                      {"single flow", &single}},
                                     quantiles)
                   .c_str(),
               stdout);
  };
  report("Vertex ratio vs first MDA (values at quantiles)",
         &survey::PairOutcome::vertex_ratio);
  report("Edge ratio vs first MDA", &survey::PairOutcome::edge_ratio);
  report("Packet ratio vs first MDA", &survey::PairOutcome::packet_ratio);

  // Headline shape numbers.
  const auto lite_packets =
      result.ratio_cdf(Variant::kMdaLitePhi2, &survey::PairOutcome::packet_ratio);
  const auto single_v =
      result.ratio_cdf(Variant::kSingleFlow, &survey::PairOutcome::vertex_ratio);
  const auto single_e =
      result.ratio_cdf(Variant::kSingleFlow, &survey::PairOutcome::edge_ratio);

  bench::PaperComparison cmp("Fig. 4 comparative evaluation");
  cmp.add("pairs where MDA-Lite saves packets (~0.89)", 0.89,
          lite_packets.at(1.0 - 1e-9), 2);
  cmp.add("pairs with >= 40% Lite saving (~0.30)", 0.30,
          lite_packets.at(0.6), 2);
  cmp.add("single-flow pairs with >= 90% of vertices (~0.12)", 0.12,
          1.0 - single_v.at(0.9 - 1e-9), 2);
  cmp.add("single-flow pairs with >= 90% of edges (~0.10)", 0.10,
          1.0 - single_e.at(0.9 - 1e-9), 2);
  cmp.print();
}

void BM_EvaluationPair(benchmark::State& state) {
  survey::EvaluationConfig config;
  config.pairs = 1;
  config.distinct_diamonds = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(survey::run_evaluation(config));
  }
}
BENCHMARK(BM_EvaluationPair)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
