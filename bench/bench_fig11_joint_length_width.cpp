// Fig. 11: joint distribution of max length x max width.
// Paper: short-and-narrow dominates — the simplest 2x2 diamond alone is
// 24.2% of measured and 27.4% of distinct diamonds; the width-48/56
// modes appear across a variety of lengths.
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 800);
  config.distinct_diamonds = flags.get_uint("distinct", 300);
  config.seed = seed;
  bench::print_header("Fig. 11: joint max length x max width", flags, seed);

  const auto result = survey::run_ip_survey(config);
  const auto& m = result.accounting.measured();
  const auto& d = result.accounting.distinct();

  // Render the top-left corner of the heatmap (small lengths/widths) plus
  // the tall-width modes.
  AsciiTable table({"length", "width", "measured portion",
                    "distinct portion"});
  table.set_title("Joint distribution (selected cells)");
  const std::pair<int, int> cells[] = {{2, 2},  {2, 3},  {2, 4}, {3, 2},
                                       {3, 3},  {4, 2},  {2, 28}, {2, 48},
                                       {3, 48}, {2, 56}, {3, 56}};
  for (const auto& [l, w] : cells) {
    table.add_row({std::to_string(l), std::to_string(w),
                   fmt_double(m.joint_length_width.portion(l, w), 4),
                   fmt_double(d.joint_length_width.portion(l, w), 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Do the 48/56-wide diamonds appear at multiple lengths?
  int lengths_with_width48 = 0;
  for (const auto& [cell, count] : m.joint_length_width.cells()) {
    if (cell.second == 48 && count > 0) ++lengths_with_width48;
  }

  bench::PaperComparison cmp("Fig. 11 joint length x width");
  cmp.add("measured 2x2 portion (0.242)", 0.242,
          m.joint_length_width.portion(2, 2), 3);
  cmp.add("distinct 2x2 portion (0.274)", 0.274,
          d.joint_length_width.portion(2, 2), 3);
  cmp.add("width-48 at multiple lengths", ">= 2",
          std::to_string(lengths_with_width48));
  cmp.print();
}

void BM_JointAccounting(benchmark::State& state) {
  survey::DiamondAccounting acc(2);
  const auto g = topo::fig6_right();
  for (auto _ : state) {
    acc.record_all(g);
  }
}
BENCHMARK(BM_JointAccounting);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
