// Fig. 10: max length and max width distributions of measured and
// distinct diamonds. Paper: nearly half of diamonds have max length 2
// (48% measured / 45% distinct); widths reach 96 — far beyond the 16
// reported by earlier surveys — with distinctive peaks at 48 and 56.
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void print_histogram(const char* title, const Histogram& measured,
                     const Histogram& distinct,
                     const std::vector<std::int64_t>& keys) {
  AsciiTable table({"value", "measured portion", "distinct portion"});
  table.set_title(title);
  for (const auto k : keys) {
    table.add_row({std::to_string(k), fmt_double(measured.portion(k), 4),
                   fmt_double(distinct.portion(k), 4)});
  }
  std::fputs(table.render().c_str(), stdout);
}

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 800);
  config.distinct_diamonds = flags.get_uint("distinct", 300);
  config.seed = seed;
  bench::print_header("Fig. 10: max length and max width distributions",
                      flags, seed);

  const auto result = survey::run_ip_survey(config);
  const auto& m = result.accounting.measured();
  const auto& d = result.accounting.distinct();

  print_histogram("Max length", m.max_length, d.max_length,
                  {2, 3, 4, 5, 6, 8, 10, 15, 20});
  print_histogram("Max width", m.max_width, d.max_width,
                  {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 56, 96});

  std::int64_t max_width_seen = 0;
  for (const auto& [w, count] : m.max_width.bins()) {
    max_width_seen = std::max(max_width_seen, w);
  }

  bench::PaperComparison cmp("Fig. 10 length & width");
  cmp.add("measured length-2 portion (0.48)", 0.48,
          m.max_length.portion(2), 2);
  cmp.add("distinct length-2 portion (0.45)", 0.45,
          d.max_length.portion(2), 2);
  cmp.add("largest max width (96)", "96", std::to_string(max_width_seen));
  cmp.add("width-48 peak present", "yes",
          m.max_width.portion(48) > m.max_width.portion(47) ? "yes" : "no");
  cmp.add("width-56 peak present", "yes",
          m.max_width.portion(56) > m.max_width.portion(55) ? "yes" : "no");
  cmp.print();
}

void BM_DiamondExtraction(benchmark::State& state) {
  topo::SurveyWorld world(topo::GeneratorConfig{}, 50, 1);
  const auto route = world.next_route();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::extract_diamonds(route.graph));
  }
}
BENCHMARK(BM_DiamondExtraction);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
