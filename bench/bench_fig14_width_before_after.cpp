// Fig. 14: joint distribution of max width before and after alias
// resolution, over the diamonds whose width changed. Paper: large width
// reductions are rare but real; the width-56 diamonds form a distinct
// vertical series as they break into much smaller router-level diamonds.
#include "bench_util.h"
#include "survey/router_survey.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::RouterSurveyConfig config;
  config.routes = flags.get_uint("routes", 200);
  config.distinct_diamonds = flags.get_uint("distinct", 150);
  config.generator.width_weights[15].second = 0.03;  // sample 56s reliably
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 6));
  config.seed = seed;
  bench::print_header("Fig. 14: joint width before vs after resolution",
                      flags, seed);

  const auto result = survey::run_router_survey(config);
  const auto& joint = result.width_before_after;

  AsciiTable table({"width before", "width after", "count"});
  table.set_title("Diamonds that changed width: " +
                  std::to_string(joint.total()));
  std::uint64_t halved_or_more = 0;
  for (const auto& [cell, count] : joint.cells()) {
    table.add_row({std::to_string(cell.first), std::to_string(cell.second),
                   std::to_string(count)});
    if (cell.second * 2 <= cell.first) halved_or_more += count;
  }
  std::fputs(table.render().c_str(), stdout);

  // Width-56 breakdown series.
  std::uint64_t from56 = 0;
  std::int64_t smallest_after56 = 0;
  for (const auto& [cell, count] : joint.cells()) {
    if (cell.first == 56) {
      from56 += count;
      if (smallest_after56 == 0 || cell.second < smallest_after56) {
        smallest_after56 = cell.second;
      }
    }
  }

  bench::PaperComparison cmp("Fig. 14 width before/after");
  cmp.add("diamonds that changed width", ">= 1",
          std::to_string(joint.total()));
  cmp.add("width-56 diamonds broken down", ">= 1", std::to_string(from56));
  if (from56 > 0) {
    cmp.add("56 -> much smaller (paper: 2..49)", "< 56",
            std::to_string(smallest_after56));
  }
  cmp.add("halved-or-more reductions exist", ">= 1",
          std::to_string(halved_or_more));
  cmp.print();
}

void BM_Histogram2D(benchmark::State& state) {
  Histogram2D h;
  std::int64_t i = 0;
  for (auto _ : state) {
    h.add(i % 96, (i / 2) % 96);
    ++i;
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_Histogram2D);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
