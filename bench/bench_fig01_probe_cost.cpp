// Fig. 1 / Sec. 2.1-2.3 worked example: probe cost of the MDA vs the
// MDA-Lite on the unmeshed and meshed four-vertex diamonds, under Veitch
// et al.'s Table 1 stopping points (n1=9, n2=17, n3=25, n4=33).
//
// Paper numbers: MDA spends 99 + delta probes on the unmeshed diamond and
// 163 + delta' on the meshed one; the MDA-Lite's hop scan costs
// n4 + n2 + 2*n1 = 68 on both (plus its small meshing test).
#include "bench_util.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

core::TraceConfig veitch_config() {
  core::TraceConfig config;
  config.alpha = 0.05;
  config.max_branching = 13;  // reproduces Veitch Table 1 (9/17/25/33)
  return config;
}

struct CostStats {
  RunningStats packets;
  RunningStats scan_packets;  // minus meshing-test and node-control
  RunningStats switched;
};

CostStats measure(const topo::MultipathGraph& diamond,
                  core::Algorithm algorithm, int runs, std::uint64_t seed0) {
  const auto truth = core::plain_ground_truth(
      topo::prepend_source(diamond, net::Ipv4Address(192, 168, 0, 1)));
  CostStats stats;
  for (int i = 0; i < runs; ++i) {
    const auto result = core::run_trace(truth, algorithm, veitch_config(), {},
                                        seed0 + static_cast<std::uint64_t>(i));
    stats.packets.add(static_cast<double>(result.packets));
    stats.scan_packets.add(static_cast<double>(result.packets) -
                           static_cast<double>(result.meshing_test_probes) -
                           static_cast<double>(result.node_control_probes));
    stats.switched.add(result.switched_to_mda ? 1.0 : 0.0);
  }
  return stats;
}

void experiment(const Flags& flags) {
  const int runs = static_cast<int>(flags.get_int("runs", 200));
  const std::uint64_t seed = flags.get_uint("seed", 1);
  bench::print_header("Fig. 1 worked example: MDA vs MDA-Lite probe cost",
                      flags, seed);

  const auto unmeshed = topo::fig1_unmeshed();
  const auto meshed = topo::fig1_meshed();

  const auto mda_u = measure(unmeshed, core::Algorithm::kMda, runs, seed);
  const auto mda_m = measure(meshed, core::Algorithm::kMda, runs, seed + 7);
  const auto lite_u =
      measure(unmeshed, core::Algorithm::kMdaLite, runs, seed + 13);
  const auto lite_m =
      measure(meshed, core::Algorithm::kMdaLite, runs, seed + 23);

  AsciiTable table({"algorithm", "diamond", "mean packets", "ci95",
                    "hop-scan packets", "switch rate"});
  table.set_title("Measured probe costs (" + std::to_string(runs) +
                  " runs each)");
  const auto row = [&](const char* name, const char* diamond,
                       const CostStats& s) {
    table.add_row({name, diamond, fmt_double(s.packets.mean(), 1),
                   fmt_double(s.packets.ci95_half_width(), 2),
                   fmt_double(s.scan_packets.mean(), 1),
                   fmt_double(s.switched.mean(), 2)});
  };
  row("MDA", "unmeshed", mda_u);
  row("MDA", "meshed", mda_m);
  row("MDA-Lite", "unmeshed", lite_u);
  row("MDA-Lite", "meshed", lite_m);
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Fig. 1 probe cost");
  cmp.add("MDA unmeshed (99 + delta)", "99+", mmlpt::fmt_double(mda_u.packets.mean(), 1));
  cmp.add("MDA meshed (163 + delta')", "163+",
          mmlpt::fmt_double(mda_m.packets.mean(), 1));
  cmp.add("MDA-Lite hop scan (68)", "68",
          mmlpt::fmt_double(lite_u.scan_packets.mean(), 1));
  cmp.add("MDA-Lite switches on meshed", "yes",
          lite_m.switched.mean() > 0.5 ? "yes" : "no");
  cmp.add("Lite/MDA packet ratio, unmeshed (~0.6-0.7)", "<= 0.77",
          mmlpt::fmt_double(lite_u.packets.mean() / mda_u.packets.mean(), 2));
  cmp.print();
}

void BM_MdaTraceUnmeshed(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::prepend_source(
      topo::fig1_unmeshed(), net::Ipv4Address(192, 168, 0, 1)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_trace(truth, core::Algorithm::kMda,
                                             veitch_config(), {}, seed++));
  }
}
BENCHMARK(BM_MdaTraceUnmeshed)->Unit(benchmark::kMicrosecond);

void BM_MdaLiteTraceUnmeshed(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::prepend_source(
      topo::fig1_unmeshed(), net::Ipv4Address(192, 168, 0, 1)));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_trace(
        truth, core::Algorithm::kMdaLite, veitch_config(), {}, seed++));
  }
}
BENCHMARK(BM_MdaLiteTraceUnmeshed)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
