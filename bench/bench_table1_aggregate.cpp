// Table 1: comparative performance on the aggregated topology — the
// union of everything discovered across all measurements, as ratios with
// respect to the first MDA run.
//
// Paper:                 Vertices  Edges   Packets
//   MDA 2                0.998     0.999   1.005
//   MDA-Lite phi=2       1.002     1.007   0.696
//   MDA-Lite phi=4       1.004     1.005   0.711
//   Single flow ID       0.537     0.201   0.040
#include "bench_util.h"
#include "survey/evaluation.h"

namespace {

using namespace mmlpt;
using survey::Variant;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::EvaluationConfig config;
  config.pairs = flags.get_uint("pairs", 400);
  config.distinct_diamonds = flags.get_uint("distinct", 300);
  config.seed = seed;
  bench::print_header("Table 1: aggregate-topology ratios vs first MDA",
                      flags, seed);

  const auto result = survey::run_evaluation(config);

  AsciiTable table({"variant", "vertices", "edges", "packets"});
  table.set_title("Aggregated over " + std::to_string(config.pairs) +
                  " measurements");
  for (const auto v : {Variant::kMda2, Variant::kMdaLitePhi2,
                       Variant::kMdaLitePhi4, Variant::kSingleFlow}) {
    table.add_row({survey::variant_name(v),
                   fmt_double(result.aggregate_vertex_ratio(v), 3),
                   fmt_double(result.aggregate_edge_ratio(v), 3),
                   fmt_double(result.aggregate_packet_ratio(v), 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Table 1");
  cmp.add("MDA 2 vertices", 0.998,
          result.aggregate_vertex_ratio(Variant::kMda2));
  cmp.add("MDA 2 edges", 0.999, result.aggregate_edge_ratio(Variant::kMda2));
  cmp.add("MDA 2 packets", 1.005,
          result.aggregate_packet_ratio(Variant::kMda2));
  cmp.add("Lite phi=2 vertices", 1.002,
          result.aggregate_vertex_ratio(Variant::kMdaLitePhi2));
  cmp.add("Lite phi=2 edges", 1.007,
          result.aggregate_edge_ratio(Variant::kMdaLitePhi2));
  cmp.add("Lite phi=2 packets", 0.696,
          result.aggregate_packet_ratio(Variant::kMdaLitePhi2));
  cmp.add("Lite phi=4 packets", 0.711,
          result.aggregate_packet_ratio(Variant::kMdaLitePhi4));
  cmp.add("single flow vertices", 0.537,
          result.aggregate_vertex_ratio(Variant::kSingleFlow));
  cmp.add("single flow edges", 0.201,
          result.aggregate_edge_ratio(Variant::kSingleFlow));
  cmp.add("single flow packets", 0.040,
          result.aggregate_packet_ratio(Variant::kSingleFlow));
  cmp.print();
}

void BM_AggregateUnion(benchmark::State& state) {
  survey::EvaluationConfig config;
  config.pairs = 5;
  config.distinct_diamonds = 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(survey::run_evaluation(config));
  }
}
BENCHMARK(BM_AggregateUnion)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
