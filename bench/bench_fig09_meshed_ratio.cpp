// Fig. 9: CDF of the ratio of meshed hops among meshed diamonds.
// Paper: >80% of meshed diamonds have a ratio under 0.4 — i.e. even on
// meshed diamonds most hop pairs remain unmeshed and the MDA-Lite can
// realise savings there. Also reproduces the headline meshing counts
// (32,430 / 220,193 measured and 19,138 / 60,921 distinct diamonds).
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 600);
  config.distinct_diamonds = flags.get_uint("distinct", 250);
  config.seed = seed;
  bench::print_header("Fig. 9: ratio of meshed hops", flags, seed);

  const auto result = survey::run_ip_survey(config);
  const auto& m = result.accounting.measured();
  const auto& d = result.accounting.distinct();

  if (!m.meshed_hop_ratio.empty() && !d.meshed_hop_ratio.empty()) {
    std::fputs(render_cdf_comparison("CDF of ratio of meshed hops "
                                     "(meshed diamonds only)",
                                     {{"measured", &m.meshed_hop_ratio},
                                      {"distinct", &d.meshed_hop_ratio}},
                                     {0.2, 0.4, 0.6, 0.8, 1.0})
                   .c_str(),
               stdout);
  }
  const double measured_meshed =
      static_cast<double>(m.meshed) / static_cast<double>(m.total);
  const double distinct_meshed =
      static_cast<double>(d.meshed) / static_cast<double>(d.total);
  std::printf("meshed diamonds: measured %llu/%llu (%.3f), "
              "distinct %llu/%llu (%.3f)\n",
              static_cast<unsigned long long>(m.meshed),
              static_cast<unsigned long long>(m.total), measured_meshed,
              static_cast<unsigned long long>(d.meshed),
              static_cast<unsigned long long>(d.total), distinct_meshed);

  bench::PaperComparison cmp("Fig. 9 meshed-hop ratio");
  cmp.add("measured meshed fraction (32430/220193 = 0.147)", 0.147,
          measured_meshed, 3);
  cmp.add("distinct meshed fraction (19138/60921 = 0.314)", 0.314,
          distinct_meshed, 3);
  if (!m.meshed_hop_ratio.empty()) {
    cmp.add("measured: ratio < 0.4 for (>0.80)", 0.80,
            m.meshed_hop_ratio.at(0.4 - 1e-9), 2);
  }
  cmp.print();
}

void BM_MeshingPredicate(benchmark::State& state) {
  const auto g = topo::meshed_diamond();
  for (auto _ : state) {
    for (std::uint16_t h = 0; h + 1 < g.hop_count(); ++h) {
      benchmark::DoNotOptimize(topo::hops_meshed(g, h));
    }
  }
}
BENCHMARK(BM_MeshingPredicate);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
