// Performance microbenchmarks for the substrate layers: packet crafting
// and parsing, flow hashing, the simulator's forwarding walk, IP-ID
// machinery, the MBT, and statistics containers. These guard against
// regressions that would make the survey-scale experiments impractical.
#include "alias/mbt.h"
#include "bench_util.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "net/packet.h"
#include "topology/generator.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  bench::print_header("Microbenchmarks (substrate performance)", flags,
                      flags.get_uint("seed", 1));
  std::printf("google-benchmark results follow.\n");
}

net::ProbeSpec sample_spec() {
  net::ProbeSpec spec;
  spec.src = net::Ipv4Address(192, 168, 0, 1);
  spec.dst = net::Ipv4Address(11, 0, 0, 200);
  spec.src_port = 40000;
  spec.ttl = 7;
  return spec;
}

void BM_BuildUdpProbe(benchmark::State& state) {
  const auto spec = sample_spec();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::build_udp_probe(spec));
  }
}
BENCHMARK(BM_BuildUdpProbe);

void BM_ParseProbe(benchmark::State& state) {
  const auto bytes = net::build_udp_probe(sample_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_probe(bytes));
  }
}
BENCHMARK(BM_ParseProbe);

void BM_BuildTimeExceededWithMpls(benchmark::State& state) {
  const auto probe = net::build_udp_probe(sample_spec());
  const std::vector<net::MplsLabelEntry> labels{{1234, 0, true, 5}};
  for (auto _ : state) {
    const auto msg = net::make_time_exceeded(probe, labels);
    benchmark::DoNotOptimize(net::build_icmp_datagram(
        msg, net::Ipv4Address(10, 0, 0, 1), net::Ipv4Address(192, 168, 0, 1),
        250, 42));
  }
}
BENCHMARK(BM_BuildTimeExceededWithMpls);

void BM_ParseReplyWithMpls(benchmark::State& state) {
  const auto probe = net::build_udp_probe(sample_spec());
  const std::vector<net::MplsLabelEntry> labels{{1234, 0, true, 5}};
  const auto reply = net::build_icmp_datagram(
      net::make_time_exceeded(probe, labels), net::Ipv4Address(10, 0, 0, 1),
      net::Ipv4Address(192, 168, 0, 1), 250, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::parse_reply(reply));
  }
}
BENCHMARK(BM_ParseReplyWithMpls);

void BM_FlowDigest(benchmark::State& state) {
  net::FlowTuple flow;
  flow.src = net::Ipv4Address(192, 168, 0, 1);
  flow.dst = net::Ipv4Address(11, 0, 0, 200);
  flow.dst_port = 33434;
  std::uint16_t port = 0;
  for (auto _ : state) {
    flow.src_port = port++;
    benchmark::DoNotOptimize(flow.digest());
  }
}
BENCHMARK(BM_FlowDigest);

void BM_SimulatorRoundTrip(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::meshed_diamond());
  fakeroute::Simulator sim(truth, {}, 1);
  auto spec = sample_spec();
  spec.dst = truth.destination;
  spec.ttl = 3;
  fakeroute::Nanos now = 1'000'000'000;
  std::uint16_t port = 40000;
  for (auto _ : state) {
    spec.src_port = port++;
    const auto probe = net::build_udp_probe(spec);
    benchmark::DoNotOptimize(sim.handle(probe, now));
    now += 1'000'000;
  }
}
BENCHMARK(BM_SimulatorRoundTrip);

void BM_MbtPartition16(benchmark::State& state) {
  // 16 addresses: 8 routers of 2 interfaces.
  std::vector<alias::IpIdSeries> series(16);
  alias::Nanos t = 1'000'000'000;
  std::vector<std::uint16_t> counters(8);
  for (std::size_t i = 0; i < 8; ++i) {
    counters[i] = static_cast<std::uint16_t>(i * 8000);
  }
  for (int round = 0; round < 30; ++round) {
    for (std::size_t a = 0; a < 16; ++a) {
      auto& counter = counters[a / 2];
      series[a].add(t, counter, 0);
      counter = static_cast<std::uint16_t>(counter + 3);
      t += 500'000;
    }
  }
  std::vector<const alias::IpIdSeries*> ptrs;
  for (const auto& s : series) ptrs.push_back(&s);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias::mbt_partition(ptrs));
  }
}
BENCHMARK(BM_MbtPartition16);

void BM_GenerateDiamond(benchmark::State& state) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.make_diamond());
  }
}
BENCHMARK(BM_GenerateDiamond);

void BM_FullMdaLiteTraceGeneratedRoute(benchmark::State& state) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 2);
  const auto route = gen.make_route();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_trace(route, core::Algorithm::kMdaLite, {}, {}, seed++));
  }
}
BENCHMARK(BM_FullMdaLiteTraceGeneratedRoute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
