// Ablation (Sec. 2.1): the stopping-point table n_k across failure
// bounds, and how the bound trades probe cost against discovery failure.
// Prints the Veitch et al. Table 1 values the paper quotes (9/17/25/33)
// and validates the bound empirically at several epsilons.
#include "bench_util.h"
#include "core/validation.h"
#include "fakeroute/failure.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  const int runs = static_cast<int>(flags.get_int("runs", 600));
  bench::print_header("Ablation: stopping points n_k", flags, seed);

  // n_k tables at interesting parameterisations.
  AsciiTable table({"k", "eps=0.05", "eps=0.01", "alpha=.05,B=13 (Veitch)",
                    "alpha=.05,B=30 (default)"});
  table.set_title("Stopping points n_k");
  const auto e5 = core::StoppingPoints::from_epsilon(0.05);
  const auto e1 = core::StoppingPoints::from_epsilon(0.01);
  const auto veitch = core::StoppingPoints::veitch_table1();
  const auto dflt = core::StoppingPoints::for_global(0.05, 30);
  for (int k = 1; k <= 12; ++k) {
    table.add_row({std::to_string(k), std::to_string(e5.n(k)),
                   std::to_string(e1.n(k)), std::to_string(veitch.n(k)),
                   std::to_string(dflt.n(k))});
  }
  std::fputs(table.render().c_str(), stdout);

  // Cost/failure trade-off on the simplest diamond.
  AsciiTable trade({"epsilon", "theory fail", "measured fail",
                    "mean packets"});
  trade.set_title("Bound vs cost on the simplest diamond (" +
                  std::to_string(runs) + " runs each)");
  const auto truth = core::plain_ground_truth(topo::simplest_diamond());
  bench::PaperComparison cmp("stopping-point ablation");
  for (const double eps : {0.10, 0.05, 0.01, 0.001}) {
    core::TraceConfig config;
    // Encode the epsilon as (alpha = eps, B = 1).
    config.alpha = eps;
    config.max_branching = 1;
    const auto sp = core::StoppingPoints::from_epsilon(eps);
    const double theory = fakeroute::topology_failure_probability(
        truth.graph, sp.table(4));
    int failures = 0;
    RunningStats packets;
    for (int i = 0; i < runs; ++i) {
      const auto result =
          core::run_trace(truth, core::Algorithm::kMda, config, {},
                          seed + static_cast<std::uint64_t>(i));
      if (!topo::same_topology(result.graph, truth.graph)) ++failures;
      packets.add(static_cast<double>(result.packets));
    }
    const double measured = static_cast<double>(failures) / runs;
    trade.add_row({fmt_double(eps, 3), fmt_double(theory, 5),
                   fmt_double(measured, 5), fmt_double(packets.mean(), 1)});
    cmp.add("eps=" + fmt_double(eps, 3) + " empirical <= theory + noise",
            theory, measured, 4);
  }
  std::fputs(trade.render().c_str(), stdout);

  cmp.add("Veitch n1/n2/n3/n4", "9/17/25/33",
          std::to_string(veitch.n(1)) + "/" + std::to_string(veitch.n(2)) +
              "/" + std::to_string(veitch.n(3)) + "/" +
              std::to_string(veitch.n(4)));
  cmp.print();
}

void BM_StoppingPointTable(benchmark::State& state) {
  for (auto _ : state) {
    const auto sp = core::StoppingPoints::for_global(0.05, 30);
    benchmark::DoNotOptimize(sp.table(100));
  }
}
BENCHMARK(BM_StoppingPointTable);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
