// Fig. 13: max width of unique diamonds before (IP level) and after
// (router level) alias resolution. Paper: the IP-level width-48 peak
// survives resolution while the width-56 peak disappears (those
// diamonds resolve into several smaller router-level diamonds).
#include "bench_util.h"
#include "survey/router_survey.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::RouterSurveyConfig config;
  config.routes = flags.get_uint("routes", 200);
  config.distinct_diamonds = flags.get_uint("distinct", 150);
  config.generator.width_weights[15].second = 0.03;  // sample 56s reliably
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 6));
  config.seed = seed;
  bench::print_header("Fig. 13: max width at IP level vs router level",
                      flags, seed);

  const auto result = survey::run_router_survey(config);

  AsciiTable table({"max width", "IP-level portion", "router-level portion"});
  table.set_title("Unique diamonds: " +
                  std::to_string(result.unique_diamonds));
  for (const std::int64_t w :
       {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 56, 96}) {
    table.add_row({std::to_string(w), fmt_double(result.ip_width.portion(w), 4),
                   fmt_double(result.router_width.portion(w), 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Fig. 13 width before/after");
  cmp.add("IP level: width-56 peak present", "yes",
          result.ip_width.portion(56) > result.ip_width.portion(55)
              ? "yes"
              : "no");
  cmp.add("router level: width-56 peak gone", "yes",
          result.router_width.portion(56) < result.ip_width.portion(56)
              ? "yes"
              : "no");
  cmp.add("width-48 peak survives", "yes",
          result.router_width.portion(48) >=
                  result.ip_width.portion(48) * 0.5
              ? "yes"
              : "no");
  cmp.print();
}

void BM_RouterSurveyRoute(benchmark::State& state) {
  survey::RouterSurveyConfig config;
  config.routes = 1;
  config.distinct_diamonds = 6;
  config.multilevel.rounds = 3;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(survey::run_router_survey(config));
  }
}
BENCHMARK(BM_RouterSurveyRoute)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
