// bench_perf_fleet_throughput — wall-clock speedup of the fleet
// orchestrator over the serial survey loop, and of merged fleet windows
// over per-trace windows.
//
// Internet probing is latency-bound: a trace spends its life waiting for
// ICMP replies, not computing. The fleet's speedup therefore comes from
// OVERLAPPING the waits of independent destinations across workers. This
// bench reproduces that regime in-process: each worker's Fakeroute
// simulator is wrapped in a BlockingLatencyNetwork that converts the
// simulator's virtual RTTs into (scaled-down) real blocking, then the
// same destination set is traced with jobs=1 and jobs=N and the
// wall-clock ratio reported. Because every task is seeded by destination
// index, both runs produce identical traces — the bench asserts it — so
// the ratio measures scheduling alone.
//
// --merge-windows adds the cross-trace merger leg: the same fleet run
// again, but with every tracer's committed window merged into shared
// fleet bursts through a FleetTransportHub. The workload model charges a
// fixed "wire cost" per send burst + receive-loop pass (--wire-cost,
// virtual ns), SERIALIZED across workers in the unmerged runs the way
// concurrent tracers contend for one raw socket — merged bursts pay it
// once per burst instead of once per per-trace window, which is exactly
// the raw-socket economy of one send burst serving N tracers. Three hard
// gates protect the merger's contract:
//   * per-trace (packets, vertices, edges) identical across all legs,
//   * the merged run's JSONL byte-identical to the unmerged jobs=1 run,
//   * at least one merged burst carried probes of >= 2 distinct
//     destinations.
// The merged-vs-unmerged speedup itself is reported (and a soft target
// printed); like the fleet speedup it is only enforced where the
// hardware can express it.
//
// Unlike the per-figure benches this is a plain chrono binary (no
// google-benchmark dependency): the Release CI job runs it with --smoke
// and archives the JSON it writes via --output, for v4 and v6 worlds.
//
// --stop-set adds the Doubletree axis on a shared-prefix world (every
// route leaves the same vantage point through the same first hops): a
// cold record-only run (must be byte-identical to the baseline — the
// cache-warming invariance), then a warm consulted run seeded from the
// cold run's discoveries. Hard gates: the warm run's visible ∪ pending
// union digest equals the cold full-probe digest (no topology lost to
// stopping), strictly fewer probes warm than cold, savings ratio
// >= 1.2x, and warm jobs=N byte-identical to warm jobs=1.
//
// flags:
//   --smoke            small, CI-sized configuration (~seconds)
//   --routes N         destinations to trace        (default 48; smoke 16)
//   --jobs N           fleet worker count           (default 8)
//   --window N         per-trace probe window       (default 4)
//   --merge-windows    run + gate the merged-fleet leg
//   --stop-set         run + gate the Doubletree stop-set axis
//   --shared-prefix N  shared leading routers per route (default 4 with
//                      --stop-set, else 0)
//   --family 4|6       address family of the world  (default 4)
//   --latency-scale X  wall seconds per virtual RTT second
//                      (default 0.02; smoke 0.004)
//   --wire-cost N      virtual ns of fixed cost per send burst
//                      (default 20000000 = 20 ms with --merge-windows,
//                      else 0 — the historical latency-only model)
//   --transport T      workload model of the probing backend: uring
//                      (batched submission, no per-probe cost — the
//                      default, numerically identical to the historical
//                      bench) or poll (one syscall per probe: each probe
//                      adds --probe-cost to its burst's wire charge)
//   --probe-cost N     virtual ns per probe on the wire (default 0 for
//                      --transport uring, 10000000 = 10 ms for poll)
//   --pipeline-depth N merged bursts in flight at once (default 1)
//   --compare-transports
//                      run the merged leg under BOTH transport models at
//                      --jobs workers and gate: byte-identical JSONL for
//                      poll/uring and pipeline depths 1 and 4, and
//                      modeled uring throughput >= 1.5x poll
//   --obs-gate         run + gate the observability overhead axis: the
//                      fleet leg with a live MetricsRegistry + trace
//                      recorder vs bare, min-of-3 interleaved reps;
//                      gates byte-identical JSONL and <= 5% overhead
//   --metrics-out FILE write the obs leg's Prometheus text (--obs-gate)
//   --trace-events FILE
//                      write the obs leg's Chrome trace JSON (--obs-gate)
//   --distinct N       distinct diamond templates   (default 40)
//   --seed N           world + trace seed           (default 1)
//   --output FILE      write the JSON report to FILE (default stdout only)
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "net/ip_address.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "orchestrator/fleet.h"
#include "orchestrator/fleet_transport.h"
#include "orchestrator/latency_network.h"
#include "orchestrator/result_sink.h"
#include "orchestrator/stop_set.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"

using namespace mmlpt;

namespace {

struct BenchConfig {
  double latency_scale = 0.02;
  probe::Nanos wire_cost = 20'000'000;
  probe::Nanos probe_cost = 0;
  int pipeline_depth = 1;
  int window = 4;
  std::uint64_t seed = 1;
};

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  /// Per-destination (packets, vertices, edges) triples: the determinism
  /// gate compares these trace by trace, so compensating differences
  /// across destinations cannot slip through a total-only check.
  std::vector<std::array<std::uint64_t, 3>> per_trace;
  /// The run's JSONL (one destination line per route) — the merged leg
  /// must reproduce the unmerged jobs=1 run byte for byte.
  std::string jsonl;
  orchestrator::FleetTransportHub::Stats bursts;  ///< merged runs only
};

enum class Mode { kPerTraceWindows, kMergedWindows };

RunOutcome run_fleet(const std::vector<topo::GroundTruth>& routes, int jobs,
                     Mode mode, const BenchConfig& bench,
                     core::StopSet* stop_set = nullptr,
                     bool consult_stop_set = false,
                     obs::MetricsRegistry* metrics = nullptr) {
  orchestrator::FleetConfig config;
  config.jobs = jobs;
  config.seed = bench.seed;
  config.metrics = metrics;
  orchestrator::FleetScheduler fleet(config);
  const std::uint64_t base_seed = bench.seed ^ 0x5353ULL;
  core::TraceConfig trace_config;
  trace_config.window = bench.window;
  trace_config.stop_set = stop_set;
  trace_config.consult_stop_set = consult_stop_set;
  const fakeroute::SimConfig sim_config;

  // The single raw socket / receive loop every unmerged worker contends
  // for; the merged hub replaces it with one shared burst per flush.
  orchestrator::SharedWire wire;
  std::unique_ptr<orchestrator::FleetTransportHub> hub;
  if (mode == Mode::kMergedWindows) {
    orchestrator::FleetTransportHub::Config hub_config;
    hub_config.latency_scale = bench.latency_scale;
    hub_config.per_burst_cost = bench.wire_cost;
    hub_config.per_probe_cost = bench.probe_cost;
    hub_config.pipeline_depth = bench.pipeline_depth;
    hub_config.metrics = metrics;
    // Give late tracers one wire-pass to join the burst before it fires.
    hub_config.gather_timeout = std::chrono::nanoseconds(
        static_cast<std::int64_t>(static_cast<double>(bench.wire_cost) *
                                  bench.latency_scale));
    hub = std::make_unique<orchestrator::FleetTransportHub>(hub_config);
  }

  const auto start = std::chrono::steady_clock::now();
  const auto traces = fleet.run(
      routes.size(), [&](orchestrator::WorkerContext& context) {
        const auto& route = routes[context.task_index];
        fakeroute::Simulator simulator(route, sim_config,
                                       base_seed + context.task_index);
        probe::SimulatedNetwork network(simulator);
        if (hub) {
          const auto channel = hub->open_channel(network);
          return core::run_trace_with_network(*channel, route.source,
                                              route.destination,
                                              core::Algorithm::kMdaLite,
                                              trace_config);
        }
        orchestrator::BlockingLatencyNetwork::Config latency;
        latency.scale = bench.latency_scale;
        latency.per_window_cost = bench.wire_cost;
        latency.per_probe_cost = bench.probe_cost;
        latency.wire = &wire;
        orchestrator::BlockingLatencyNetwork blocking(network, latency);
        return core::run_trace_with_network(blocking, route.source,
                                            route.destination,
                                            core::Algorithm::kMdaLite,
                                            trace_config);
      });
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start);

  RunOutcome outcome;
  outcome.seconds = elapsed.count();
  if (hub) outcome.bursts = hub->stats();
  // Mirror the CLIs: simulated probes are counted on the registry at the
  // merge point (they never touch a real transport backend).
  obs::Counter* sim_probes =
      metrics != nullptr
          ? metrics->counter("mmlpt_transport_probes_sent_total",
                             "Probes handed to the transport",
                             {{"transport", "sim"}})
          : nullptr;
  outcome.per_trace.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const auto& trace = traces[i];
    outcome.packets += trace.packets;
    if (sim_probes != nullptr) sim_probes->add(trace.packets);
    outcome.per_trace.push_back(
        {trace.packets, trace.graph.vertex_count(), trace.graph.edge_count()});
    outcome.jsonl += orchestrator::destination_line(
        i, routes[i].destination.to_string(),
        core::stop_set_envelope_fields(trace), "trace",
        core::trace_to_json(trace));
    outcome.jsonl += '\n';
  }
  return outcome;
}

void print_run(const char* name, const RunOutcome& run) {
  std::printf("  %-8s: %7.3fs  %8llu packets  %9.0f pkt/s\n", name,
              run.seconds, static_cast<unsigned long long>(run.packets),
              static_cast<double>(run.packets) / run.seconds);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const bool compare_transports =
        flags.get_bool("compare-transports", false);
    const bool merge =
        flags.get_bool("merge-windows", false) || compare_transports;
    const bool stop_set_axis = flags.get_bool("stop-set", false);
    const auto routes_n = flags.get_uint("routes", smoke ? 16 : 48);
    const int jobs = static_cast<int>(flags.get_int("jobs", 8));

    // The transport axis is a workload MODEL, not a real backend: poll
    // pays --probe-cost virtual ns per probe on the wire (its
    // one-syscall-per-datagram submission loop), uring submits the whole
    // burst batched for free. uring is the default and is numerically
    // identical to the historical bench.
    const std::string transport = flags.get("transport", "uring");
    if (transport != "poll" && transport != "uring") {
      std::fprintf(stderr, "unknown --transport (poll|uring)\n");
      return 1;
    }
    const probe::Nanos poll_probe_cost =
        flags.get_uint("probe-cost", 10'000'000);

    BenchConfig bench;
    bench.latency_scale =
        flags.get_double("latency-scale", smoke ? 0.004 : 0.02);
    // The contended-wire model only matters when comparing against
    // merged bursts; the plain fleet-vs-serial leg keeps its historical
    // latency-only workload.
    bench.wire_cost = flags.get_uint("wire-cost", merge ? 20'000'000 : 0);
    bench.probe_cost = transport == "poll" ? poll_probe_cost : 0;
    bench.pipeline_depth =
        static_cast<int>(flags.get_int("pipeline-depth", 1));
    bench.window = static_cast<int>(flags.get_int("window", 4));
    bench.seed = flags.get_uint("seed", 1);

    topo::GeneratorConfig generator;
    const auto family = net::parse_family_name(flags.get("family", "4"));
    if (!family) {
      std::fprintf(stderr, "unknown --family (4|6)\n");
      return 1;
    }
    generator.family = *family;
    generator.shared_prefix_hops = static_cast<int>(
        flags.get_int("shared-prefix", stop_set_axis ? 4 : 0));
    topo::SurveyWorld world(generator, flags.get_uint("distinct", 40),
                            bench.seed);
    std::vector<topo::GroundTruth> routes;
    routes.reserve(routes_n);
    for (std::size_t i = 0; i < routes_n; ++i) {
      routes.push_back(world.next_route());
    }

    std::printf(
        "fleet throughput: %zu destinations (IPv%c), window %d, latency "
        "scale %.4g, wire cost %.1fms, jobs 1 vs %d%s\n",
        routes.size(), generator.family == net::Family::kIpv6 ? '6' : '4',
        bench.window, bench.latency_scale,
        static_cast<double>(bench.wire_cost) / 1e6, jobs,
        merge ? " (+ merged windows)" : "");

    const auto serial =
        run_fleet(routes, 1, Mode::kPerTraceWindows, bench);
    print_run("serial", serial);
    const auto unmerged =
        run_fleet(routes, jobs, Mode::kPerTraceWindows, bench);
    print_run("fleet", unmerged);

    bool deterministic = serial.per_trace == unmerged.per_trace;
    const double speedup =
        unmerged.seconds > 0.0 ? serial.seconds / unmerged.seconds : 0.0;
    std::printf("  speedup: %.2fx (%s%s)\n", speedup,
                deterministic ? "identical traces"
                              : "TRACES DIVERGED — determinism bug",
                merge ? "; wire contention bounds this leg"
                      : ", target >= 4x at 8 workers");

    bool merged_ok = true;
    double merged_speedup = 0.0;
    RunOutcome merged;
    if (merge) {
      merged = run_fleet(routes, jobs, Mode::kMergedWindows, bench);
      print_run("merged", merged);
      deterministic = deterministic && serial.per_trace == merged.per_trace;
      const bool jsonl_identical = merged.jsonl == serial.jsonl;
      const bool bursts_merged = merged.bursts.merged_bursts >= 1 &&
                                 merged.bursts.max_channels_in_burst >= 2;
      merged_speedup =
          merged.seconds > 0.0 ? unmerged.seconds / merged.seconds : 0.0;
      std::printf(
          "  merged : %.2fx vs fleet (soft target >= 1.3x); %llu bursts, "
          "%.1f probes/burst, %llu merged (max %llu destinations/burst)\n",
          merged_speedup,
          static_cast<unsigned long long>(merged.bursts.bursts),
          merged.bursts.bursts > 0
              ? static_cast<double>(merged.bursts.probes) /
                    static_cast<double>(merged.bursts.bursts)
              : 0.0,
          static_cast<unsigned long long>(merged.bursts.merged_bursts),
          static_cast<unsigned long long>(
              merged.bursts.max_channels_in_burst));
      if (!jsonl_identical) {
        std::printf("  MERGED JSONL DIVERGED from the unmerged jobs=1 run — "
                    "invariance bug\n");
      }
      if (!bursts_merged) {
        std::printf("  NO MERGED BURSTS — every burst carried a single "
                    "destination\n");
      }
      merged_ok = jsonl_identical && bursts_merged;
    }

    // ---- transport-model comparison axis ----
    bool compare_ok = true;
    RunOutcome poll_leg;
    RunOutcome uring_leg;
    double transport_speedup = 0.0;
    bool transports_identical = false;
    bool depths_identical = false;
    if (compare_transports) {
      // Same merged fleet, two wire models: poll charges every probe its
      // submission syscall, uring submits the burst batched. The JSONL
      // must not care; the throughput should.
      BenchConfig poll_bench = bench;
      poll_bench.probe_cost = poll_probe_cost;
      BenchConfig uring_bench = bench;
      uring_bench.probe_cost = 0;
      poll_leg = run_fleet(routes, jobs, Mode::kMergedWindows, poll_bench);
      print_run("poll", poll_leg);
      uring_leg = run_fleet(routes, jobs, Mode::kMergedWindows, uring_bench);
      print_run("uring", uring_leg);

      // Pipeline-depth invariance: the same uring model at depth 4 —
      // bursts overlap the previous burst's stragglers — must still be
      // byte-identical.
      BenchConfig deep_bench = uring_bench;
      deep_bench.pipeline_depth = 4;
      const auto deep =
          run_fleet(routes, jobs, Mode::kMergedWindows, deep_bench);
      print_run("depth4", deep);

      transports_identical =
          poll_leg.jsonl == serial.jsonl && uring_leg.jsonl == serial.jsonl;
      depths_identical = deep.jsonl == serial.jsonl;
      const double poll_pps =
          poll_leg.seconds > 0.0
              ? static_cast<double>(poll_leg.packets) / poll_leg.seconds
              : 0.0;
      const double uring_pps =
          uring_leg.seconds > 0.0
              ? static_cast<double>(uring_leg.packets) / uring_leg.seconds
              : 0.0;
      transport_speedup = poll_pps > 0.0 ? uring_pps / poll_pps : 0.0;
      std::printf(
          "  uring  : %.2fx probes/sec vs poll (gate >= 1.5x): %.0f vs "
          "%.0f pkt/s\n",
          transport_speedup, uring_pps, poll_pps);
      if (!transports_identical) {
        std::printf("  TRANSPORT JSONL DIVERGED from the serial run — "
                    "backend invariance bug\n");
      }
      if (!depths_identical) {
        std::printf("  PIPELINE-DEPTH JSONL DIVERGED from the serial run — "
                    "overlap invariance bug\n");
      }
      compare_ok = transports_identical && depths_identical &&
                   transport_speedup >= 1.5;
    }

    // ---- Doubletree stop-set axis ----
    bool stop_set_ok = true;
    RunOutcome cold;
    RunOutcome warm;
    double savings_ratio = 0.0;
    bool cold_identical = false;
    bool digest_match = false;
    bool warm_deterministic = false;
    if (stop_set_axis) {
      // Cold leg: record-only (never consulted). Its output must be
      // byte-identical to the baseline serial run — warming the cache is
      // free of observable effect.
      orchestrator::SharedStopSet recorder;
      cold = run_fleet(routes, 1, Mode::kPerTraceWindows, bench, &recorder,
                       /*consult_stop_set=*/false);
      print_run("cold", cold);
      cold_identical = cold.jsonl == serial.jsonl;
      const auto snapshot = recorder.full_snapshot();
      const auto full_probe_digest = recorder.union_digest();

      // Warm leg: a fresh epoch seeded from the cold run's discoveries,
      // consulted Doubletree-style.
      orchestrator::SharedStopSet warm_set;
      warm_set.seed(snapshot);
      warm = run_fleet(routes, 1, Mode::kPerTraceWindows, bench, &warm_set,
                       /*consult_stop_set=*/true);
      print_run("warm", warm);
      // Union gate: what the warm run knows (cache) plus what it probed
      // must be exactly the full-probe topology — stopping early lost
      // nothing.
      digest_match = warm_set.union_digest() == full_probe_digest;

      // Warm determinism: jobs=N byte-identical to jobs=1 given the same
      // seeded cache state (the frozen-epoch contract).
      orchestrator::SharedStopSet warm_set_jobs;
      warm_set_jobs.seed(snapshot);
      const auto warm_jobs = run_fleet(routes, jobs, Mode::kPerTraceWindows,
                                       bench, &warm_set_jobs,
                                       /*consult_stop_set=*/true);
      warm_deterministic = warm.per_trace == warm_jobs.per_trace &&
                           warm.jsonl == warm_jobs.jsonl;

      savings_ratio = warm.packets > 0
                          ? static_cast<double>(cold.packets) /
                                static_cast<double>(warm.packets)
                          : 0.0;
      std::printf(
          "  stop-set: %.2fx probe savings (gate >= 1.2x), cold %llu -> "
          "warm %llu packets\n",
          savings_ratio, static_cast<unsigned long long>(cold.packets),
          static_cast<unsigned long long>(warm.packets));
      if (!cold_identical) {
        std::printf("  RECORD-ONLY JSONL DIVERGED from the baseline — "
                    "cache warming is not invisible\n");
      }
      if (!digest_match) {
        std::printf("  UNION DIGEST MISMATCH — the warm run lost topology "
                    "to early stopping\n");
      }
      if (!warm_deterministic) {
        std::printf("  WARM TRACES DIVERGED across jobs — frozen-epoch "
                    "determinism bug\n");
      }
      stop_set_ok = cold_identical && digest_match && warm_deterministic &&
                    warm.packets < cold.packets && savings_ratio >= 1.2;
    }

    // ---- observability overhead axis ----
    // The same fleet leg with the full observability stack live: a
    // MetricsRegistry wired through the scheduler (and hub, when
    // merging) plus the global trace-event recorder, against the bare
    // run. Gates: byte-identical JSONL, and <= 5% wall-clock overhead.
    // Min-of-3 interleaved repetitions filters scheduler noise — the
    // workload is virtual-latency dominated, so the instrumented run's
    // extra relaxed fetch_adds should be far below the gate.
    const bool obs_gate = flags.get_bool("obs-gate", false);
    bool obs_ok = true;
    double obs_off_seconds = 0.0;
    double obs_on_seconds = 0.0;
    double obs_overhead = 0.0;
    bool obs_identical = false;
    std::size_t obs_series = 0;
    obs::MetricsRegistry obs_registry;
    obs::TraceRecorder obs_recorder;
    if (obs_gate) {
      const Mode mode =
          merge ? Mode::kMergedWindows : Mode::kPerTraceWindows;
      obs_off_seconds = unmerged.seconds;
      obs_on_seconds = 0.0;
      obs::set_recorder(&obs_recorder);
      for (int rep = 0; rep < 3; ++rep) {
        obs::set_recorder(nullptr);
        const auto off = run_fleet(routes, jobs, mode, bench);
        obs::set_recorder(&obs_recorder);
        const auto on = run_fleet(routes, jobs, mode, bench, nullptr, false,
                                  &obs_registry);
        if (rep == 0 || off.seconds < obs_off_seconds) {
          obs_off_seconds = off.seconds;
        }
        if (rep == 0 || on.seconds < obs_on_seconds) {
          obs_on_seconds = on.seconds;
        }
        obs_identical = on.jsonl == off.jsonl && off.jsonl == serial.jsonl;
        if (!obs_identical) break;
      }
      obs::set_recorder(nullptr);
      obs_overhead = obs_off_seconds > 0.0
                         ? obs_on_seconds / obs_off_seconds - 1.0
                         : 0.0;
      obs_series = obs_registry.scalar_snapshot().size();
      std::printf(
          "  obs    : %+.1f%% overhead (gate <= 5%%), %zu metric series, "
          "%zu trace events, JSONL %s\n",
          obs_overhead * 100.0, obs_series, obs_recorder.event_count(),
          obs_identical ? "identical" : "DIVERGED — observability leaked "
                                        "into the output");
      obs_ok = obs_identical && obs_overhead <= 0.05 && obs_series > 0 &&
               obs_recorder.event_count() > 0;
      if (flags.has("metrics-out")) {
        std::ofstream out(flags.get("metrics-out", ""));
        if (!out) {
          std::fprintf(stderr, "cannot open --metrics-out file\n");
          return 1;
        }
        out << obs_registry.render();
      }
      if (flags.has("trace-events")) {
        obs_recorder.write(flags.get("trace-events", ""));
      }
    }

    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("fleet_throughput");
    w.key("family");
    w.value(static_cast<std::int64_t>(
        generator.family == net::Family::kIpv6 ? 6 : 4));
    w.key("routes");
    w.value(static_cast<std::uint64_t>(routes.size()));
    w.key("jobs");
    w.value(static_cast<std::int64_t>(jobs));
    w.key("window");
    w.value(static_cast<std::int64_t>(bench.window));
    w.key("latency_scale");
    w.value(bench.latency_scale);
    w.key("wire_cost_ns");
    w.value(static_cast<std::uint64_t>(bench.wire_cost));
    w.key("transport");
    w.value(transport);
    w.key("probe_cost_ns");
    w.value(static_cast<std::uint64_t>(bench.probe_cost));
    w.key("pipeline_depth");
    w.value(static_cast<std::int64_t>(bench.pipeline_depth));
    w.key("serial_seconds");
    w.value(serial.seconds);
    w.key("fleet_seconds");
    w.value(unmerged.seconds);
    w.key("speedup");
    w.value(speedup);
    w.key("packets");
    w.value(serial.packets);
    w.key("probes_per_sec");
    w.value(unmerged.seconds > 0.0
                ? static_cast<double>(unmerged.packets) / unmerged.seconds
                : 0.0);
    w.key("deterministic");
    w.value(deterministic);
    if (merge) {
      w.key("merged_seconds");
      w.value(merged.seconds);
      w.key("merged_speedup_vs_fleet");
      w.value(merged_speedup);
      w.key("merged_jsonl_identical");
      w.value(merged.jsonl == serial.jsonl);
      w.key("bursts");
      w.value(merged.bursts.bursts);
      w.key("burst_windows");
      w.value(merged.bursts.windows);
      w.key("merged_bursts");
      w.value(merged.bursts.merged_bursts);
      w.key("max_destinations_in_burst");
      w.value(merged.bursts.max_channels_in_burst);
      w.key("max_probes_in_burst");
      w.value(merged.bursts.max_probes_in_burst);
      w.key("merged_probes_per_sec");
      w.value(merged.seconds > 0.0
                  ? static_cast<double>(merged.packets) / merged.seconds
                  : 0.0);
      w.key("overlapped_bursts");
      w.value(merged.bursts.overlapped_bursts);
      w.key("max_bursts_in_flight");
      w.value(merged.bursts.max_bursts_in_flight);
    }
    if (compare_transports) {
      w.key("poll_probes_per_sec");
      w.value(poll_leg.seconds > 0.0
                  ? static_cast<double>(poll_leg.packets) / poll_leg.seconds
                  : 0.0);
      w.key("uring_probes_per_sec");
      w.value(uring_leg.seconds > 0.0
                  ? static_cast<double>(uring_leg.packets) /
                        uring_leg.seconds
                  : 0.0);
      w.key("uring_speedup_vs_poll");
      w.value(transport_speedup);
      w.key("transports_jsonl_identical");
      w.value(transports_identical);
      w.key("pipeline_depth_jsonl_identical");
      w.value(depths_identical);
    }
    if (stop_set_axis) {
      w.key("shared_prefix_hops");
      w.value(static_cast<std::int64_t>(generator.shared_prefix_hops));
      w.key("cold_packets");
      w.value(cold.packets);
      w.key("warm_packets");
      w.value(warm.packets);
      w.key("probe_savings_ratio");
      w.value(savings_ratio);
      w.key("record_only_jsonl_identical");
      w.value(cold_identical);
      w.key("union_digest_match");
      w.value(digest_match);
      w.key("warm_deterministic");
      w.value(warm_deterministic);
    }
    if (obs_gate) {
      w.key("obs_off_seconds");
      w.value(obs_off_seconds);
      w.key("obs_on_seconds");
      w.value(obs_on_seconds);
      w.key("obs_overhead_ratio");
      w.value(obs_overhead);
      w.key("obs_jsonl_identical");
      w.value(obs_identical);
      w.key("obs_metric_series");
      w.value(static_cast<std::uint64_t>(obs_series));
      w.key("obs_trace_events");
      w.value(static_cast<std::uint64_t>(obs_recorder.event_count()));
    }
    w.end_object();
    const auto report = std::move(w).take();
    std::printf("%s\n", report.c_str());
    if (flags.has("output")) {
      std::ofstream out(flags.get("output", ""));
      if (!out) {
        std::fprintf(stderr, "cannot open --output file\n");
        return 1;
      }
      out << report << '\n';
    }
    // Determinism, merged-output invariance, burst composition and the
    // stop-set gates are hard invariants; the speedup targets are
    // reported but only enforced where the hardware can express them (CI
    // samples vary).
    return deterministic && merged_ok && compare_ok && stop_set_ok && obs_ok
               ? 0
               : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf_fleet_throughput: %s\n", e.what());
    return 1;
  }
}
