// bench_perf_fleet_throughput — wall-clock speedup of the fleet
// orchestrator over the serial survey loop.
//
// Internet probing is latency-bound: a trace spends its life waiting for
// ICMP replies, not computing. The fleet's speedup therefore comes from
// OVERLAPPING the waits of independent destinations across workers. This
// bench reproduces that regime in-process: each worker's Fakeroute
// simulator is wrapped in a BlockingLatencyNetwork that converts the
// simulator's virtual RTTs into (scaled-down) real blocking, then the
// same destination set is traced with jobs=1 and jobs=N and the
// wall-clock ratio reported. Because every task is seeded by destination
// index, both runs produce identical traces — the bench asserts it — so
// the ratio measures scheduling alone.
//
// Unlike the per-figure benches this is a plain chrono binary (no
// google-benchmark dependency): the Release CI job runs it with --smoke
// and archives the JSON it writes via --output.
//
// flags:
//   --smoke            small, CI-sized configuration (~seconds)
//   --routes N         destinations to trace        (default 48; smoke 16)
//   --jobs N           fleet worker count           (default 8)
//   --latency-scale X  wall seconds per virtual RTT second
//                      (default 0.02; smoke 0.004)
//   --distinct N       distinct diamond templates   (default 40)
//   --seed N           world + trace seed           (default 1)
//   --output FILE      write the JSON report to FILE (default stdout only)
#include <array>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "core/validation.h"
#include "orchestrator/fleet.h"
#include "orchestrator/latency_network.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"

using namespace mmlpt;

namespace {

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  /// Per-destination (packets, vertices, edges) triples: the determinism
  /// gate compares these trace by trace, so compensating differences
  /// across destinations cannot slip through a total-only check.
  std::vector<std::array<std::uint64_t, 3>> per_trace;
};

RunOutcome run_fleet(const std::vector<topo::GroundTruth>& routes, int jobs,
                     double latency_scale, std::uint64_t seed) {
  orchestrator::FleetConfig config;
  config.jobs = jobs;
  config.seed = seed;
  orchestrator::FleetScheduler fleet(config);
  const std::uint64_t base_seed = seed ^ 0x5353ULL;
  const core::TraceConfig trace_config;
  const fakeroute::SimConfig sim_config;

  const auto start = std::chrono::steady_clock::now();
  const auto traces = fleet.run(
      routes.size(), [&](orchestrator::WorkerContext& context) {
        const auto& route = routes[context.task_index];
        fakeroute::Simulator simulator(route, sim_config,
                                       base_seed + context.task_index);
        probe::SimulatedNetwork network(simulator);
        orchestrator::BlockingLatencyNetwork::Config latency;
        latency.scale = latency_scale;
        orchestrator::BlockingLatencyNetwork blocking(network, latency);
        return core::run_trace_with_network(blocking, route.source,
                                            route.destination,
                                            core::Algorithm::kMdaLite,
                                            trace_config);
      });
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start);

  RunOutcome outcome;
  outcome.seconds = elapsed.count();
  outcome.per_trace.reserve(traces.size());
  for (const auto& trace : traces) {
    outcome.packets += trace.packets;
    outcome.per_trace.push_back(
        {trace.packets, trace.graph.vertex_count(), trace.graph.edge_count()});
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const auto routes_n = flags.get_uint("routes", smoke ? 16 : 48);
    const int jobs = static_cast<int>(flags.get_int("jobs", 8));
    const double scale =
        flags.get_double("latency-scale", smoke ? 0.004 : 0.02);
    const auto seed = flags.get_uint("seed", 1);

    topo::GeneratorConfig generator;
    topo::SurveyWorld world(generator, flags.get_uint("distinct", 40), seed);
    std::vector<topo::GroundTruth> routes;
    routes.reserve(routes_n);
    for (std::size_t i = 0; i < routes_n; ++i) {
      routes.push_back(world.next_route());
    }

    std::printf(
        "fleet throughput: %zu destinations, latency scale %.4g, "
        "jobs 1 vs %d\n",
        routes.size(), scale, jobs);
    const auto serial = run_fleet(routes, 1, scale, seed);
    std::printf("  serial : %7.3fs  %8llu packets  %9.0f pkt/s\n",
                serial.seconds,
                static_cast<unsigned long long>(serial.packets),
                static_cast<double>(serial.packets) / serial.seconds);
    const auto fleet = run_fleet(routes, jobs, scale, seed);
    std::printf("  fleet  : %7.3fs  %8llu packets  %9.0f pkt/s\n",
                fleet.seconds, static_cast<unsigned long long>(fleet.packets),
                static_cast<double>(fleet.packets) / fleet.seconds);

    const bool deterministic = serial.per_trace == fleet.per_trace;
    const double speedup =
        fleet.seconds > 0.0 ? serial.seconds / fleet.seconds : 0.0;
    std::printf("  speedup: %.2fx (%s, target >= 4x at 8 workers)\n", speedup,
                deterministic ? "identical traces"
                              : "TRACES DIVERGED — determinism bug");

    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("fleet_throughput");
    w.key("routes");
    w.value(static_cast<std::uint64_t>(routes.size()));
    w.key("jobs");
    w.value(static_cast<std::int64_t>(jobs));
    w.key("latency_scale");
    w.value(scale);
    w.key("serial_seconds");
    w.value(serial.seconds);
    w.key("fleet_seconds");
    w.value(fleet.seconds);
    w.key("speedup");
    w.value(speedup);
    w.key("packets");
    w.value(serial.packets);
    w.key("deterministic");
    w.value(deterministic);
    w.end_object();
    const auto report = std::move(w).take();
    std::printf("%s\n", report.c_str());
    if (flags.has("output")) {
      std::ofstream out(flags.get("output", ""));
      if (!out) {
        std::fprintf(stderr, "cannot open --output file\n");
        return 1;
      }
      out << report << '\n';
    }
    // Determinism is a hard invariant; the speedup target is reported but
    // only enforced where the hardware can express it (CI samples vary).
    return deterministic ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf_fleet_throughput: %s\n", e.what());
    return 1;
  }
}
