// Shared scaffolding for the per-figure/per-table bench binaries: flag
// parsing, paper-vs-measured reporting, and google-benchmark glue. Every
// binary prints the rows/series its paper figure or table reports, then
// runs its registered microbenchmarks.
#ifndef MMLPT_BENCH_BENCH_UTIL_H
#define MMLPT_BENCH_BENCH_UTIL_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"

namespace mmlpt::bench {

/// One "paper says X, we measured Y" line; collected and rendered as a
/// closing table so EXPERIMENTS.md can be regenerated from bench output.
class PaperComparison {
 public:
  explicit PaperComparison(std::string experiment)
      : experiment_(std::move(experiment)) {}

  void add(const std::string& quantity, const std::string& paper,
           const std::string& measured) {
    rows_.push_back({quantity, paper, measured});
  }
  void add(const std::string& quantity, double paper, double measured,
           int digits = 3) {
    add(quantity, fmt_double(paper, digits), fmt_double(measured, digits));
  }

  void print() const {
    AsciiTable table({"quantity", "paper", "measured"});
    table.set_title("=== " + experiment_ + ": paper vs measured ===");
    for (const auto& row : rows_) {
      table.add_row({row.quantity, row.paper, row.measured});
    }
    std::fputs(table.render().c_str(), stdout);
  }

 private:
  struct Row {
    std::string quantity;
    std::string paper;
    std::string measured;
  };
  std::string experiment_;
  std::vector<Row> rows_;
};

inline void print_header(const std::string& title, const Flags& flags,
                         std::uint64_t seed) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("seed=%llu%s\n", static_cast<unsigned long long>(seed),
              flags.has("help") ? " (--help has no effect; see source)" : "");
  std::printf("==================================================\n");
}

/// Run the experiment body, then google-benchmark. `argc/argv` are handed
/// to google-benchmark after our flags are consumed (it ignores unknown
/// flags preceded by our own parsing).
inline int run_bench_main(int argc, char** argv,
                          const std::function<void(const Flags&)>& body) {
  const Flags flags(argc, argv);
  try {
    body(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment failed: %s\n", e.what());
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace mmlpt::bench

#endif  // MMLPT_BENCH_BENCH_UTIL_H
