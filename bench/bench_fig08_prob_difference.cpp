// Fig. 8: among asymmetric *unmeshed* diamonds (the risky case for the
// MDA-Lite, since meshing-triggered switching never happens there), the
// CDF of the maximum per-hop reach-probability difference.
// Paper: <= 0.25 for 90% of measured / 58% of distinct such diamonds;
// <= 0.5 for 99% of both.
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 800);
  config.distinct_diamonds = flags.get_uint("distinct", 300);
  config.seed = seed;
  bench::print_header(
      "Fig. 8: max probability difference in width-asymmetric diamonds",
      flags, seed);

  const auto result = survey::run_ip_survey(config);
  const auto& m = result.accounting.measured();
  const auto& d = result.accounting.distinct();

  std::printf("asymmetric+unmeshed: measured %llu (%.1f%% of %llu), "
              "distinct %llu (%.1f%% of %llu)\n",
              static_cast<unsigned long long>(m.asymmetric_unmeshed),
              100.0 * static_cast<double>(m.asymmetric_unmeshed) /
                  static_cast<double>(m.total),
              static_cast<unsigned long long>(m.total),
              static_cast<unsigned long long>(d.asymmetric_unmeshed),
              100.0 * static_cast<double>(d.asymmetric_unmeshed) /
                  static_cast<double>(d.total),
              static_cast<unsigned long long>(d.total));

  if (!m.probability_difference.empty() &&
      !d.probability_difference.empty()) {
    std::fputs(render_cdf_comparison(
                   "CDF of max probability difference",
                   {{"measured", &m.probability_difference},
                    {"distinct", &d.probability_difference}},
                   {0.25, 0.5, 0.75, 0.9, 0.99, 1.0})
                   .c_str(),
               stdout);

    bench::PaperComparison cmp("Fig. 8 probability difference");
    cmp.add("measured: portion <= 0.25 (0.90)", 0.90,
            m.probability_difference.at(0.25), 2);
    cmp.add("distinct: portion <= 0.25 (0.58)", 0.58,
            d.probability_difference.at(0.25), 2);
    cmp.add("measured: portion <= 0.5 (0.99)", 0.99,
            m.probability_difference.at(0.5), 2);
    cmp.add("distinct: portion <= 0.5 (0.99)", 0.99,
            d.probability_difference.at(0.5), 2);
    cmp.add("paper: 2.3% measured asymmetric+unmeshed", 0.023,
            static_cast<double>(m.asymmetric_unmeshed) /
                static_cast<double>(m.total),
            3);
    cmp.add("paper: 3.6% distinct asymmetric+unmeshed", 0.036,
            static_cast<double>(d.asymmetric_unmeshed) /
                static_cast<double>(d.total),
            3);
    cmp.print();
  }
}

void BM_ReachProbabilities(benchmark::State& state) {
  const auto g = topo::asymmetric_diamond();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.reach_probabilities());
  }
}
BENCHMARK(BM_ReachProbabilities);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
