// Ablation (Sec. 2.3.2): sweep the MDA-Lite's meshing-test effort phi.
// Larger phi lowers the probability of missing meshing (Eq. 1 scales as
// 1/|sigma(v)|^(phi-1)) at a modest probe cost that remains below the
// n_1 >= 9 flows per vertex the full MDA's node control requires.
#include "bench_util.h"
#include "core/validation.h"
#include "topology/metrics.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const int runs = static_cast<int>(flags.get_int("runs", 60));
  const std::uint64_t seed = flags.get_uint("seed", 1);
  bench::print_header("Ablation: MDA-Lite phi sweep", flags, seed);

  const auto meshed = core::plain_ground_truth(topo::fig1_meshed());
  const auto unmeshed = core::plain_ground_truth(topo::fig1_unmeshed());

  AsciiTable table({"phi", "analytic miss P", "measured switch rate",
                    "meshing probes (unmeshed)", "packets (unmeshed)"});
  table.set_title("fig1 diamonds, " + std::to_string(runs) + " runs per phi");

  bench::PaperComparison cmp("phi ablation");
  for (int phi = 2; phi <= 6; ++phi) {
    core::TraceConfig config;
    config.phi = phi;

    const auto analytic =
        topo::meshing_miss_probability(topo::fig1_meshed(), 1, phi);

    RunningStats switch_rate;
    RunningStats meshing_probes;
    RunningStats packets;
    for (int i = 0; i < runs; ++i) {
      const auto s = seed + static_cast<std::uint64_t>(i) * 31;
      switch_rate.add(
          core::run_trace(meshed, core::Algorithm::kMdaLite, config, {}, s)
                  .switched_to_mda
              ? 1.0
              : 0.0);
      const auto u =
          core::run_trace(unmeshed, core::Algorithm::kMdaLite, config, {}, s);
      meshing_probes.add(static_cast<double>(u.meshing_test_probes));
      packets.add(static_cast<double>(u.packets));
    }
    table.add_row({std::to_string(phi),
                   analytic ? fmt_double(*analytic, 4) : std::string("-"),
                   fmt_double(switch_rate.mean(), 3),
                   fmt_double(meshing_probes.mean(), 1),
                   fmt_double(packets.mean(), 1)});
    if (analytic) {
      cmp.add("phi=" + std::to_string(phi) + " detect rate (1 - Eq.1)",
              1.0 - *analytic, switch_rate.mean(), 3);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  cmp.print();
}

void BM_MeshingTestPhi4(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::symmetric_diamond());
  core::TraceConfig config;
  config.phi = 4;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_trace(truth, core::Algorithm::kMdaLite, config, {}, seed++));
  }
}
BENCHMARK(BM_MeshingTestPhi4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
