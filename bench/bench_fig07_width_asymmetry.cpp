// Fig. 7: distribution of max width asymmetry over measured and distinct
// diamonds. Paper: 89% of diamonds have zero asymmetry in both
// weightings, with a thin tail out to ~50.
#include "bench_util.h"
#include "survey/ip_survey.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::IpSurveyConfig config;
  config.routes = flags.get_uint("routes", 600);
  config.distinct_diamonds = flags.get_uint("distinct", 250);
  config.seed = seed;
  bench::print_header("Fig. 7: max width asymmetry distributions", flags,
                      seed);

  const auto result = survey::run_ip_survey(config);
  const auto& m = result.accounting.measured();
  const auto& d = result.accounting.distinct();

  AsciiTable table({"asymmetry", "measured portion", "distinct portion"});
  table.set_title("Portion of diamonds by max width asymmetry");
  for (const std::int64_t a : {0, 1, 2, 3, 4, 5, 10, 17, 20, 30, 46}) {
    table.add_row({std::to_string(a), fmt_double(m.width_asymmetry.portion(a), 4),
                   fmt_double(d.width_asymmetry.portion(a), 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("measured diamonds: %llu  distinct: %llu\n",
              static_cast<unsigned long long>(m.total),
              static_cast<unsigned long long>(d.total));

  bench::PaperComparison cmp("Fig. 7 width asymmetry");
  cmp.add("measured: zero asymmetry (0.89)", 0.89,
          m.width_asymmetry.portion(0), 2);
  cmp.add("distinct: zero asymmetry (0.89)", 0.89,
          d.width_asymmetry.portion(0), 2);
  cmp.print();
}

void BM_AsymmetryMetric(benchmark::State& state) {
  const auto g = topo::asymmetric_diamond();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::compute_metrics(g));
  }
}
BENCHMARK(BM_AsymmetryMetric);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
