// bench_perf_window_latency — wall-clock collapse of the window-based
// probing pipeline on a latency-bound transport.
//
// Internet probing pays one RTT per serial probe; the windowed pipeline
// assembles every probe its stopping rules have already committed to and
// ships it as one batched round trip, so a round of W probes costs the
// slowest RTT of the window instead of the sum. This bench reproduces
// that regime in-process: one Multilevel MDA-Lite trace of a wide
// symmetric diamond over a Fakeroute simulator wrapped in a
// BlockingLatencyNetwork (virtual RTTs become scaled-down real blocking),
// run at window = 1, 4, 16, 32.
//
// The window is a latency knob, not a probing knob: the bench HARD-GATES
// that every window size produces bit-identical multilevel JSON (IP and
// router level, alias sets, per-round packet accounting) before it
// reports any speedup. Routers are pinned to sequence-driven IP-ID
// counters (velocity 0) so the alias evidence depends only on reply
// order; with time-driven counters a faster tracer genuinely samples
// different IP-ID values.
//
// Like bench_perf_fleet_throughput this is a plain chrono binary (no
// google-benchmark): the Release CI job runs it with --smoke and
// archives the JSON written via --output.
//
// flags:
//   --smoke            small, CI-sized configuration (~seconds); the
//                      >= 5x speedup target is reported but not enforced
//                      (CI sleep granularity varies)
//   --family 4|6       address family (default 4). On 6 the diamond is
//                      mapped into 2001:db8:4::/64, probes are IPv6 with
//                      flow-label Paris identifiers, and the multilevel
//                      stage degrades to IP level ("unsupported-family")
//                      — the bit-identical gate covers that JSON too
//   --width N          diamond width per wide hop     (default 8)
//   --rounds N         alias-resolution rounds        (default 3; smoke 2)
//   --latency-scale X  wall seconds per virtual RTT second
//                      (default 0.1; smoke 0.02)
//   --seed N           simulator seed                 (default 1)
//   --output FILE      write the JSON report to FILE  (default stdout only)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "core/multilevel.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "orchestrator/latency_network.h"
#include "probe/simulated_network.h"

using namespace mmlpt;

namespace {

/// source - divergence - W parallel pairs - convergence - destination:
/// two full-width hops give the multilevel tracer 2W alias candidates,
/// the workload Sec. 4 spends its 30-probes-per-address rounds on.
topo::GroundTruth wide_diamond_truth(int width) {
  topo::MultipathGraph g;
  std::vector<std::vector<topo::VertexId>> ids;
  const std::vector<int> widths = {1, 1, width, width, 1, 1};
  for (std::size_t h = 0; h < widths.size(); ++h) {
    g.add_hop();
    std::vector<topo::VertexId> hop;
    for (int i = 0; i < widths[h]; ++i) {
      hop.push_back(g.add_vertex(
          static_cast<std::uint16_t>(h),
          net::Ipv4Address(10, 77, static_cast<std::uint8_t>(h),
                           static_cast<std::uint8_t>(i + 1))));
    }
    ids.push_back(std::move(hop));
  }
  g.add_edge(ids[0][0], ids[1][0]);
  for (int i = 0; i < width; ++i) {
    g.add_edge(ids[1][0], ids[2][static_cast<std::size_t>(i)]);
    g.add_edge(ids[2][static_cast<std::size_t>(i)],
               ids[3][static_cast<std::size_t>(i)]);
    g.add_edge(ids[3][static_cast<std::size_t>(i)], ids[4][0]);
  }
  g.add_edge(ids[4][0], ids[5][0]);
  g.validate();

  auto truth = core::plain_ground_truth(std::move(g));
  // Sequence-driven IP-ID counters: reply order alone decides the alias
  // evidence, so the bit-identical gate covers the full multilevel JSON.
  for (auto& router : truth.routers) router.ip_id_velocity = 0.0;
  return truth;
}

topo::GroundTruth family_truth(int width, net::Family family) {
  auto truth = wide_diamond_truth(width);
  if (family == net::Family::kIpv6) {
    truth = core::plain_ground_truth(topo::map_to_ipv6(truth.graph));
    for (auto& router : truth.routers) router.ip_id_velocity = 0.0;
  }
  return truth;
}

struct RunOutcome {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  std::string json;
};

RunOutcome run_once(const topo::GroundTruth& truth, int window, int rounds,
                    double latency_scale, std::uint64_t seed) {
  fakeroute::Simulator simulator(truth, {}, seed);
  probe::SimulatedNetwork network(simulator);
  orchestrator::BlockingLatencyNetwork::Config latency;
  latency.scale = latency_scale;
  orchestrator::BlockingLatencyNetwork blocking(network, latency);

  probe::ProbeEngine::Config engine_config;
  engine_config.source = truth.source;
  engine_config.destination = truth.destination;
  probe::ProbeEngine engine(blocking, engine_config);

  core::MultilevelConfig config;
  config.trace.window = window;
  config.rounds = rounds;

  const auto start = std::chrono::steady_clock::now();
  const auto result = core::MultilevelTracer(engine, config).run();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start);

  RunOutcome outcome;
  outcome.seconds = elapsed.count();
  outcome.packets = result.total_packets;
  outcome.json = core::multilevel_to_json(result);
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    const bool smoke = flags.has("smoke");
    const int width = static_cast<int>(flags.get_int("width", 8));
    const int rounds =
        static_cast<int>(flags.get_int("rounds", smoke ? 2 : 3));
    const double scale =
        flags.get_double("latency-scale", smoke ? 0.02 : 0.1);
    const auto seed = flags.get_uint("seed", 1);
    const auto family = net::parse_family_name(flags.get("family", "4"));
    if (!family) {
      std::fprintf(stderr, "unknown --family (4|6|ipv4|ipv6)\n");
      return 1;
    }
    const bool v6 = *family == net::Family::kIpv6;
    const std::vector<int> windows = {1, 4, 16, 32};

    const auto truth = family_truth(width, *family);
    std::printf(
        "window latency: IPv%c multilevel trace, diamond width %d, %d "
        "alias rounds, latency scale %.4g\n",
        v6 ? '6' : '4', width, rounds, scale);

    std::vector<RunOutcome> outcomes;
    for (const int window : windows) {
      outcomes.push_back(run_once(truth, window, rounds, scale, seed));
      const auto& o = outcomes.back();
      std::printf("  window %2d: %7.3fs  %6llu packets  %6.2fx\n", window,
                  o.seconds, static_cast<unsigned long long>(o.packets),
                  o.seconds > 0.0 ? outcomes.front().seconds / o.seconds
                                  : 0.0);
    }

    bool identical = true;
    for (const auto& o : outcomes) {
      identical = identical && o.json == outcomes.front().json &&
                  o.packets == outcomes.front().packets;
    }
    double best_at_16_plus = 0.0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (windows[i] >= 16 && outcomes[i].seconds > 0.0) {
        best_at_16_plus = std::max(
            best_at_16_plus, outcomes.front().seconds / outcomes[i].seconds);
      }
    }
    std::printf(
        "  RTT-round collapse: %.2fx at window >= 16 (target >= 5x), %s\n",
        best_at_16_plus,
        identical ? "bit-identical JSON + packets across windows"
                  : "OUTPUT DIVERGED — window invariance bug");

    JsonWriter w;
    w.begin_object();
    w.key("bench");
    w.value("window_latency");
    w.key("family");
    w.value(v6 ? "ipv6" : "ipv4");
    w.key("width");
    w.value(static_cast<std::int64_t>(width));
    w.key("rounds");
    w.value(static_cast<std::int64_t>(rounds));
    w.key("latency_scale");
    w.value(scale);
    w.key("packets");
    w.value(outcomes.front().packets);
    w.key("runs");
    w.begin_array();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      w.begin_object();
      w.key("window");
      w.value(static_cast<std::int64_t>(windows[i]));
      w.key("seconds");
      w.value(outcomes[i].seconds);
      w.key("speedup");
      w.value(outcomes[i].seconds > 0.0
                  ? outcomes.front().seconds / outcomes[i].seconds
                  : 0.0);
      w.end_object();
    }
    w.end_array();
    w.key("speedup_at_window_16_plus");
    w.value(best_at_16_plus);
    w.key("identical_output");
    w.value(identical);
    w.end_object();
    const auto report = std::move(w).take();
    std::printf("%s\n", report.c_str());
    if (flags.has("output")) {
      std::ofstream out(flags.get("output", ""));
      if (!out) {
        std::fprintf(stderr, "cannot open --output file\n");
        return 1;
      }
      out << report << '\n';
    }
    // Bit-identical output is a hard invariant at every scale; the >= 5x
    // latency target is enforced where sleeps are long enough to measure
    // (full runs), reported-only under --smoke.
    if (!identical) return 1;
    if (!smoke && best_at_16_plus < 5.0) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_perf_window_latency: %s\n", e.what());
    return 1;
  }
}
