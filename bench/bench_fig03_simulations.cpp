// Fig. 3: MDA-Lite vs MDA discovery curves on the four Sec. 2.4.1
// simulation topologies (max-length-2, symmetric, asymmetric, meshed),
// 30 Fakeroute runs each. The horizontal axis is packets sent,
// normalised so 1.0 = the MDA's total in the paired run; curves show the
// fraction of the topology's vertices (and edges) discovered.
//
// Paper shape: the MDA-Lite discovers the full topology sooner on all
// four; on max-length-2 and symmetric it stops ~40% cheaper; on
// asymmetric and meshed it switches to the full MDA and saves nothing.
#include <array>

#include "bench_util.h"
#include "core/validation.h"
#include "topology/reference.h"

namespace {

using namespace mmlpt;

double fraction_at(const std::vector<core::DiscoveryEvent>& events,
                   double budget, bool edges, std::size_t total) {
  std::size_t count = 0;
  for (const auto& e : events) {
    if (static_cast<double>(e.packets) > budget) break;
    if (e.is_edge == edges) ++count;
  }
  return total == 0 ? 0.0 : static_cast<double>(count) /
                                static_cast<double>(total);
}

void experiment(const Flags& flags) {
  const int runs = static_cast<int>(flags.get_int("runs", 30));
  const std::uint64_t seed = flags.get_uint("seed", 1);
  bench::print_header("Fig. 3: MDA-Lite vs MDA simulation discovery curves",
                      flags, seed);

  struct Topology {
    const char* name;
    topo::MultipathGraph graph;
  };
  std::array<Topology, 4> topologies{
      Topology{"max-length-2", topo::max_length_2_diamond()},
      Topology{"symmetric", topo::symmetric_diamond()},
      Topology{"asymmetric", topo::asymmetric_diamond()},
      Topology{"meshed", topo::meshed_diamond()}};

  const std::vector<double> grid{0.1, 0.2, 0.3, 0.4, 0.5,
                                 0.6, 0.7, 0.8, 0.9, 1.0};

  bench::PaperComparison cmp("Fig. 3 simulations");
  for (auto& [name, graph] : topologies) {
    const auto truth = core::plain_ground_truth(
        topo::prepend_source(graph, net::Ipv4Address(192, 168, 0, 1)));
    const auto v_total = truth.graph.vertex_count() - 1;  // minus source
    const auto e_total = truth.graph.edge_count() - 1;

    std::vector<RunningStats> mda_v(grid.size());
    std::vector<RunningStats> lite_v(grid.size());
    std::vector<RunningStats> mda_e(grid.size());
    std::vector<RunningStats> lite_e(grid.size());
    RunningStats packet_ratio;
    RunningStats switched;
    RunningStats lite_full;  // did Lite discover everything?

    for (int i = 0; i < runs; ++i) {
      const auto s = seed + static_cast<std::uint64_t>(i) * 17;
      const auto mda =
          core::run_trace(truth, core::Algorithm::kMda, {}, {}, s);
      const auto lite =
          core::run_trace(truth, core::Algorithm::kMdaLite, {}, {}, s + 7);
      const auto norm = static_cast<double>(mda.packets);
      for (std::size_t g = 0; g < grid.size(); ++g) {
        mda_v[g].add(fraction_at(mda.events, grid[g] * norm, false, v_total));
        lite_v[g].add(
            fraction_at(lite.events, grid[g] * norm, false, v_total));
        mda_e[g].add(fraction_at(mda.events, grid[g] * norm, true, e_total));
        lite_e[g].add(fraction_at(lite.events, grid[g] * norm, true, e_total));
      }
      packet_ratio.add(static_cast<double>(lite.packets) / norm);
      switched.add(lite.switched_to_mda ? 1.0 : 0.0);
      lite_full.add(topo::same_topology(lite.graph, truth.graph) ? 1.0 : 0.0);
    }

    AsciiTable table({"packets/MDA", "MDA vertices", "Lite vertices",
                      "MDA edges", "Lite edges"});
    table.set_title(std::string("--- ") + name + " diamond (" +
                    std::to_string(runs) + " runs) ---");
    for (std::size_t g = 0; g < grid.size(); ++g) {
      table.add_row({fmt_double(grid[g], 1), fmt_double(mda_v[g].mean(), 3),
                     fmt_double(lite_v[g].mean(), 3),
                     fmt_double(mda_e[g].mean(), 3),
                     fmt_double(lite_e[g].mean(), 3)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("lite/MDA packet ratio: %.3f   switch rate: %.2f   "
                "lite full-discovery rate: %.2f\n\n",
                packet_ratio.mean(), switched.mean(), lite_full.mean());

    const bool expects_switch =
        std::string(name) == "asymmetric" || std::string(name) == "meshed";
    cmp.add(std::string(name) + ": Lite switches to MDA",
            expects_switch ? "yes" : "no",
            switched.mean() > 0.5 ? "yes" : "no");
    if (!expects_switch) {
      cmp.add(std::string(name) + ": Lite probe saving (~40%)", "<= 0.75",
              fmt_double(packet_ratio.mean(), 2));
    }
    cmp.add(std::string(name) + ": Lite discovers full topology", ">= 0.9",
            fmt_double(lite_full.mean(), 2));
  }
  cmp.print();
}

void BM_MeshedDiamondMdaTrace(benchmark::State& state) {
  const auto truth = core::plain_ground_truth(topo::meshed_diamond());
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_trace(truth, core::Algorithm::kMda, {}, {}, seed++));
  }
}
BENCHMARK(BM_MeshedDiamondMdaTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
