// Fig. 5: MMLPT alias resolution refined over ten rounds of probing —
// precision and recall of each round's alias sets with respect to Round
// 10, and the probe count relative to Round 0.
//
// Paper: Round 0 (trace data only) ~68% precision / ~81% recall; Round 1
// jumps to ~92% for both; slow climb afterwards; the ten extra rounds
// cost ~75% more packets than the base trace.
#include "bench_util.h"
#include "survey/alias_eval.h"

namespace {

using namespace mmlpt;

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::AliasEvalConfig config;
  config.routes = flags.get_uint("routes", 60);
  config.distinct_diamonds = flags.get_uint("distinct", 40);
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 10));
  config.seed = seed;
  bench::print_header("Fig. 5: alias resolution over ten rounds", flags,
                      seed);

  const auto result = survey::run_alias_eval(config);
  const auto stats = survey::alias_rounds_stats(result.multilevel_results);

  AsciiTable table({"round", "precision", "recall", "probe ratio vs R0"});
  table.set_title("Alias resolution by round (" +
                  std::to_string(config.routes) + " multilevel traces)");
  for (std::size_t r = 0; r < stats.precision.size(); ++r) {
    table.add_row({std::to_string(r), fmt_double(stats.precision[r], 3),
                   fmt_double(stats.recall[r], 3),
                   fmt_double(stats.probe_ratio[r], 3)});
  }
  std::fputs(table.render().c_str(), stdout);

  bench::PaperComparison cmp("Fig. 5 alias rounds");
  cmp.add("round 0 precision (~0.68)", 0.68, stats.precision.front(), 2);
  cmp.add("round 0 recall (~0.81)", 0.81, stats.recall.front(), 2);
  if (stats.precision.size() > 1) {
    cmp.add("round 1 precision (~0.92)", 0.92, stats.precision[1], 2);
    cmp.add("round 1 recall (~0.92)", 0.92, stats.recall[1], 2);
  }
  cmp.add("final probe ratio (~1.75)", 1.75, stats.probe_ratio.back(), 2);
  cmp.print();
}

void BM_MultilevelTrace(benchmark::State& state) {
  survey::AliasEvalConfig config;
  config.routes = 1;
  config.distinct_diamonds = 6;
  config.multilevel.rounds = 10;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(survey::run_alias_eval(config));
  }
}
BENCHMARK(BM_MultilevelTrace)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
