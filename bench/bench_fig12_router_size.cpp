// Fig. 12: router "size" (number of IP interfaces identified as
// belonging to one router) from the router-level survey — per-trace
// distinct routers and cross-trace aggregation by transitive closure.
// Paper: 68% of routers have size 2; 97% size <= 10; a handful exceed 50
// interfaces (aggregation reveals more of those).
#include "bench_util.h"
#include "survey/router_survey.h"

namespace {

using namespace mmlpt;

double portion_at_most(const Histogram& h, std::int64_t limit) {
  if (h.total() == 0) return 0.0;
  std::uint64_t count = 0;
  for (const auto& [k, c] : h.bins()) {
    if (k <= limit) count += c;
  }
  return static_cast<double>(count) / static_cast<double>(h.total());
}

void experiment(const Flags& flags) {
  const std::uint64_t seed = flags.get_uint("seed", 1);
  survey::RouterSurveyConfig config;
  config.routes = flags.get_uint("routes", 120);
  config.distinct_diamonds = flags.get_uint("distinct", 60);
  config.multilevel.rounds =
      static_cast<int>(flags.get_int("rounds", 6));
  config.seed = seed;
  bench::print_header("Fig. 12: router sizes (distinct and aggregated)",
                      flags, seed);

  const auto result = survey::run_router_survey(config);

  AsciiTable table({"size", "distinct portion", "aggregated portion"});
  table.set_title("Router size distributions");
  for (const std::int64_t s : {2, 3, 4, 6, 8, 10, 16, 24, 48, 56}) {
    table.add_row({std::to_string(s),
                   fmt_double(result.distinct_router_size.portion(s), 3),
                   fmt_double(result.aggregated_router_size.portion(s), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("distinct routers: %llu  aggregated components: %llu  "
              "packets: %llu\n",
              static_cast<unsigned long long>(
                  result.distinct_router_size.total()),
              static_cast<unsigned long long>(
                  result.aggregated_router_size.total()),
              static_cast<unsigned long long>(result.total_packets));

  bench::PaperComparison cmp("Fig. 12 router size");
  cmp.add("distinct: size 2 portion (0.68)", 0.68,
          result.distinct_router_size.portion(2), 2);
  cmp.add("distinct: size <= 10 portion (0.97)", 0.97,
          portion_at_most(result.distinct_router_size, 10), 2);
  cmp.add("aggregated: size <= 10 portion (<= distinct's)", "<= 0.97",
          fmt_double(portion_at_most(result.aggregated_router_size, 10), 2));
  cmp.print();
}

void BM_RouterLevelMerge(benchmark::State& state) {
  topo::RouteGenerator gen(topo::GeneratorConfig{}, 5);
  const auto route = gen.make_route();
  for (auto _ : state) {
    benchmark::DoNotOptimize(route.router_level_graph());
  }
}
BENCHMARK(BM_RouterLevelMerge);

}  // namespace

int main(int argc, char** argv) {
  return mmlpt::bench::run_bench_main(argc, argv, experiment);
}
