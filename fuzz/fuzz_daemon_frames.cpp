// Fuzz target for the mmlptd wire codec (src/daemon/protocol.*).
//
// The input is treated as a raw byte stream a client could have sent:
// decode frame after frame, dispatch every decoded frame through its
// typed decoder, and round-trip whatever decodes cleanly. The contract
// under fuzzing is the one the daemon relies on per connection:
//
//   * decode_frame either yields a frame, asks for more bytes, or
//     throws ParseError — it never crashes, hangs, or over-allocates
//     (kMaxFramePayload bounds every allocation);
//   * typed decoders reject malformed payloads with ParseError only;
//   * encode(decode(bytes)) == the decoded frame's bytes (round-trip
//     stability for everything that was accepted).
//
// Built two ways (see fuzz/CMakeLists.txt): as a libFuzzer target under
// clang (-fsanitize=fuzzer defines MMLPT_FUZZ_LIBFUZZER), and as a
// standalone corpus replayer everywhere else so the checked-in corpus
// runs as a plain ctest under gcc too.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"
#include "daemon/protocol.h"

namespace {

using mmlpt::ParseError;
using namespace mmlpt::daemon;

void check_typed_decoders(const Frame& frame) {
  // Every decoder must either produce a value or throw ParseError; any
  // other escape (crash, std::bad_alloc from a hostile count, ...) is a
  // finding.
  try {
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::kHello:
        (void)decode_hello(frame);
        break;
      case FrameType::kJobRequest:
        (void)decode_job_request(frame);
        break;
      case FrameType::kCancel:
        (void)decode_cancel(frame);
        break;
      case FrameType::kHelloAck:
        (void)decode_hello_ack(frame);
        break;
      case FrameType::kProgress:
        (void)decode_progress(frame);
        break;
      case FrameType::kResultLine:
        (void)decode_result_line(frame);
        break;
      case FrameType::kStopSetSummary:
        (void)decode_stop_set_summary(frame);
        break;
      case FrameType::kJobStatus:
        (void)decode_job_status(frame);
        break;
      case FrameType::kError:
        (void)decode_error(frame);
        break;
      case FrameType::kServerStatus:
        (void)decode_server_status(frame);
        break;
      case FrameType::kMetrics:
        (void)decode_metrics(frame);
        break;
      default:
        break;  // kStatusRequest/kMetricsRequest carry no payload
    }
  } catch (const ParseError&) {
    // expected for malformed payloads
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view stream(reinterpret_cast<const char*>(data), size);
  std::size_t offset = 0;
  try {
    while (true) {
      const auto frame = decode_frame(stream, offset);
      if (!frame) break;  // torn tail: needs more bytes
      check_typed_decoders(*frame);
      // Round-trip: re-encoding an accepted frame must reproduce the
      // exact bytes the decoder consumed.
      const std::string encoded = encode_frame(*frame);
      std::size_t re_offset = 0;
      const auto redecoded = decode_frame(encoded, re_offset);
      if (!redecoded || !(*redecoded == *frame) ||
          re_offset != encoded.size()) {
        __builtin_trap();
      }
    }
  } catch (const ParseError&) {
    // expected: oversized length or CRC mismatch poisons the stream
  }
  return 0;
}

#ifndef MMLPT_FUZZ_LIBFUZZER
#include "replay_main.inc"
#endif
