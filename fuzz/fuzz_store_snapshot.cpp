// Fuzz target for the topology-store block codec
// (src/store/topology_store.*).
//
// The input is one block payload as it would sit on disk after the
// length/CRC framing already checked out — exactly what decode_snapshot
// receives from TopologyStore::load. Contract under fuzzing:
//
//   * decode_snapshot either returns a snapshot or throws ParseError
//     (bad family tag, short buffer, trailing bytes); nothing else —
//     hostile counts must not drive allocation past the payload size;
//   * encode(decode(payload)) decodes back to the same snapshot
//     (round-trip stability for accepted payloads).
//
// Built as a libFuzzer target under clang and as a standalone corpus
// replayer everywhere else — see fuzz/CMakeLists.txt.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.h"
#include "store/topology_store.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  mmlpt::store::TopologySnapshot snapshot;
  try {
    snapshot = mmlpt::store::decode_snapshot(payload);
  } catch (const mmlpt::ParseError&) {
    return 0;  // expected for malformed payloads
  }
  const std::string encoded = mmlpt::store::encode_snapshot(snapshot);
  const auto redecoded = mmlpt::store::decode_snapshot(encoded);
  if (!(redecoded.hops == snapshot.hops) ||
      !(redecoded.destinations == snapshot.destinations)) {
    __builtin_trap();
  }
  return 0;
}

#ifndef MMLPT_FUZZ_LIBFUZZER
#include "replay_main.inc"
#endif
