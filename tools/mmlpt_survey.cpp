// mmlpt_survey — run the paper's surveys from the command line and emit
// a JSON report: the Sec. 5.1 IP-level survey (diamond statistics), the
// Sec. 2.4.2 five-variant evaluation, or the Sec. 5.2 router-level
// survey.
//
// See kUsage below (printed by --help) for invocation examples and the
// option list.
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>

#include "cli_common.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/json.h"
#include "daemon/signals.h"
#include "orchestrator/result_sink.h"
#include "orchestrator/stop_set.h"
#include "probe/cancel.h"
#include "survey/evaluation.h"
#include "survey/ip_survey.h"
#include "survey/router_survey.h"

using namespace mmlpt;

namespace {

constexpr const char kUsagePrefix[] =
    "usage: mmlpt_survey [options]\n"
    "\n"
    "  mmlpt_survey --mode ip --routes 1000        # Sec. 5.1 IP survey\n"
    "  mmlpt_survey --mode evaluation --pairs 500  # Sec. 2.4.2 variants\n"
    "  mmlpt_survey --mode router --routes 200 --rounds 10  # Sec. 5.2\n"
    "\n"
    "options:\n"
    "  --mode ip|evaluation|router   (default ip)\n"
    "  -6 | --family 4|6             address family of the generated\n"
    "                                world (default IPv4; router mode\n"
    "                                alias sets are v4-only)\n"
    "  --routes N                    routes to trace (ip/router modes)\n"
    "  --pairs N                     source/destination pairs (evaluation)\n"
    "  --distinct N                  distinct diamonds to collect\n"
    "  --rounds N                    alias-resolution rounds (router mode)\n"
    "  --seed N                      simulator seed\n"
    "  --output FILE                 stream one JSON line per destination\n"
    "                                to FILE while the survey runs\n"
    "  --version                     print version and exit\n"
    "\n"
    "fleet options (ip/router modes):\n";

void print_usage() {
  std::fputs(kUsagePrefix, stdout);
  std::fputs(tools::fleet_options_usage().c_str(), stdout);
}

void emit_histogram(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  for (const auto& [key, count] : h.bins()) {
    w.key(std::to_string(key));
    w.value(count);
  }
  w.end_object();
}

/// Per-destination JSONL sink bound to --output; nullptr when absent.
/// With --fsync every committed line is flushed and fsynced so a crashed
/// survey keeps everything it already merged.
struct StreamingOutput {
  std::ofstream file;
  std::unique_ptr<orchestrator::FdJsonlFile> durable;
  std::optional<orchestrator::ResultSink> sink;

  StreamingOutput(const std::string& path, bool fsync_lines) {
    if (fsync_lines) {
      durable = std::make_unique<orchestrator::FdJsonlFile>(path);
      sink.emplace(durable->stream(),
                   orchestrator::ResultSink::Options{true, durable->fd()});
      return;
    }
    file.open(path);
    if (!file) throw SystemError("cannot open --output file: " + path);
    sink.emplace(file);
  }
};

std::unique_ptr<StreamingOutput> make_output(const Flags& flags) {
  const auto path = flags.get("output", "");
  const bool fsync_lines = flags.get_bool("fsync", false);
  if (path.empty()) {
    if (fsync_lines) throw ConfigError("--fsync requires --output FILE");
    return nullptr;
  }
  return std::make_unique<StreamingOutput>(path, fsync_lines);
}

/// The "stop_set" summary object — only emitted when a topology cache is
/// in use, so default output stays byte-stable.
void emit_stop_set_summary(JsonWriter& w,
                           const orchestrator::StopSetSession& session,
                           std::uint64_t probes_saved,
                           std::uint64_t traces_stopped) {
  const auto* set = session.stop_set();
  if (set == nullptr) return;
  w.key("stop_set");
  w.begin_object();
  w.key("consulted");
  w.value(session.consult());
  w.key("visible_hops");
  w.value(static_cast<std::uint64_t>(set->visible_hop_count()));
  w.key("pending_hops");
  w.value(static_cast<std::uint64_t>(set->pending_hop_count()));
  w.key("probes_saved_by_stop_set");
  w.value(probes_saved);
  w.key("traces_stopped");
  w.value(traces_stopped);
  w.end_object();
}

/// RAII link of a CancelToken to the ShutdownSignal: SIGINT/SIGTERM fire
/// the token, the survey unwinds as CanceledError, and the caller gets
/// the committed-results flush either way.
struct SignalCancelScope {
  daemon::ShutdownSignal& shutdown = daemon::ShutdownSignal::install();
  probe::CancelToken token;

  SignalCancelScope() { shutdown.link(&token); }
  ~SignalCancelScope() { shutdown.link(nullptr); }
};

/// Shared interrupt epilogue: flush what was committed, report, and turn
/// the signal into the conventional 128+N exit code.
int finish_interrupted(const SignalCancelScope& scope,
                       StreamingOutput* output,
                       orchestrator::StopSetSession& session) {
  if (output != nullptr) output->sink->flush();
  session.flush();
  std::fprintf(stderr,
               "mmlpt_survey: interrupted by signal %d, committed results "
               "flushed\n",
               scope.shutdown.signal());
  return scope.shutdown.exit_code();
}

int run_ip(const Flags& flags, JsonWriter& w) {
  survey::IpSurveyConfig config;
  config.generator.family = tools::parse_family(flags);
  config.routes = flags.get_uint("routes", 500);
  config.distinct_diamonds = flags.get_uint("distinct", 200);
  config.seed = flags.get_uint("seed", 1);
  const auto fleet_options = tools::parse_fleet_options(flags);
  config.jobs = fleet_options.jobs;
  config.pps = fleet_options.pps;
  config.burst = fleet_options.burst;
  config.merge_windows = fleet_options.merge_windows;
  config.pipeline_depth = fleet_options.pipeline_depth;
  config.trace.window = fleet_options.window;
  orchestrator::StopSetSession stop_set_session(
      fleet_options.stop_set.topology_cache, fleet_options.stop_set.consult);
  stop_set_session.configure(config.trace);
  tools::ObsSession obs(tools::parse_obs_options(flags));
  stop_set_session.instrument(obs.registry());
  config.metrics = &obs.registry();
  const auto output = make_output(flags);
  SignalCancelScope cancel_scope;
  config.cancel = &cancel_scope.token;
  std::optional<decltype(survey::run_ip_survey(config, nullptr))> maybe;
  try {
    maybe = survey::run_ip_survey(config, output ? &*output->sink : nullptr);
  } catch (const probe::CanceledError&) {
    obs.finish();  // partial artifacts beat none
    return finish_interrupted(cancel_scope, output.get(), stop_set_session);
  }
  const auto& result = *maybe;
  stop_set_session.flush();
  tools::SummaryLine("mmlpt_survey")
      .field("mode", "ip_survey")
      .field("transport",
             std::string(
                 probe::resolved_transport_name(fleet_options.transport)))
      .field("routes", result.routes_traced)
      .field("packets", result.total_packets)
      .stop_set(stop_set_session, result.probes_saved_by_stop_set,
                result.traces_stopped)
      .metrics(obs.registry())
      .print();
  obs.finish();

  w.begin_object();
  w.key("mode");
  w.value("ip_survey");
  w.key("transport");
  w.value(std::string(
      probe::resolved_transport_name(fleet_options.transport)));
  w.key("pipeline_depth");
  w.value(static_cast<std::int64_t>(config.pipeline_depth));
  w.key("routes");
  w.value(result.routes_traced);
  w.key("routes_with_diamonds");
  w.value(result.routes_with_diamonds);
  w.key("total_packets");
  w.value(result.total_packets);
  emit_stop_set_summary(w, stop_set_session, result.probes_saved_by_stop_set,
                        result.traces_stopped);
  for (const auto side : {"measured", "distinct"}) {
    const auto& d = side == std::string("measured")
                        ? result.accounting.measured()
                        : result.accounting.distinct();
    w.key(side);
    w.begin_object();
    w.key("total");
    w.value(d.total);
    w.key("meshed");
    w.value(d.meshed);
    w.key("asymmetric");
    w.value(d.asymmetric);
    w.key("length2");
    w.value(d.length2);
    w.key("max_width_histogram");
    emit_histogram(w, d.max_width);
    w.key("max_length_histogram");
    emit_histogram(w, d.max_length);
    w.key("width_asymmetry_histogram");
    emit_histogram(w, d.width_asymmetry);
    w.end_object();
  }
  w.end_object();
  return 0;
}

int run_evaluation(const Flags& flags, JsonWriter& w) {
  // The evaluation runs five tracer variants over shared per-pair state;
  // it is not fleet-wired (yet), so say so instead of silently ignoring
  // the fleet flags.
  for (const char* flag :
       {"jobs", "pps", "burst", "output", "window", "family",
        "merge-windows", "pipeline-depth", "transport", "fsync",
        "stop-set", "topology-cache", "metrics-out", "trace-events"}) {
    if (flags.has(flag)) {
      std::fprintf(stderr,
                   "mmlpt_survey: --%s is ignored in evaluation mode\n",
                   flag);
    }
  }
  survey::EvaluationConfig config;
  config.pairs = flags.get_uint("pairs", 300);
  config.distinct_diamonds = flags.get_uint("distinct", 200);
  config.seed = flags.get_uint("seed", 1);
  const auto result = survey::run_evaluation(config);

  w.begin_object();
  w.key("mode");
  w.value("evaluation");
  w.key("pairs");
  w.value(static_cast<std::uint64_t>(result.pairs.size()));
  w.key("aggregate");
  w.begin_array();
  for (std::size_t vi = 0; vi < survey::kVariantCount; ++vi) {
    const auto v = static_cast<survey::Variant>(vi);
    w.begin_object();
    w.key("variant");
    w.value(survey::variant_name(v));
    w.key("vertex_ratio");
    w.value(result.aggregate_vertex_ratio(v));
    w.key("edge_ratio");
    w.value(result.aggregate_edge_ratio(v));
    w.key("packet_ratio");
    w.value(result.aggregate_packet_ratio(v));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return 0;
}

int run_router(const Flags& flags, JsonWriter& w) {
  survey::RouterSurveyConfig config;
  config.generator.family = tools::parse_family(flags);
  config.routes = flags.get_uint("routes", 150);
  config.distinct_diamonds = flags.get_uint("distinct", 80);
  config.multilevel.rounds = static_cast<int>(flags.get_int("rounds", 10));
  config.seed = flags.get_uint("seed", 1);
  const auto fleet_options = tools::parse_fleet_options(flags);
  config.jobs = fleet_options.jobs;
  config.pps = fleet_options.pps;
  config.burst = fleet_options.burst;
  config.merge_windows = fleet_options.merge_windows;
  config.pipeline_depth = fleet_options.pipeline_depth;
  config.multilevel.trace.window = fleet_options.window;
  orchestrator::StopSetSession stop_set_session(
      fleet_options.stop_set.topology_cache, fleet_options.stop_set.consult);
  stop_set_session.configure(config.multilevel.trace);
  tools::ObsSession obs(tools::parse_obs_options(flags));
  stop_set_session.instrument(obs.registry());
  config.metrics = &obs.registry();
  const auto output = make_output(flags);
  SignalCancelScope cancel_scope;
  config.cancel = &cancel_scope.token;
  std::optional<decltype(survey::run_router_survey(config, nullptr))> maybe;
  try {
    maybe =
        survey::run_router_survey(config, output ? &*output->sink : nullptr);
  } catch (const probe::CanceledError&) {
    obs.finish();  // partial artifacts beat none
    return finish_interrupted(cancel_scope, output.get(), stop_set_session);
  }
  const auto& result = *maybe;
  stop_set_session.flush();
  tools::SummaryLine("mmlpt_survey")
      .field("mode", "router_survey")
      .field("transport",
             std::string(
                 probe::resolved_transport_name(fleet_options.transport)))
      .field("routes", result.routes_traced)
      .field("packets", result.total_packets)
      .stop_set(stop_set_session, result.probes_saved_by_stop_set,
                result.traces_stopped)
      .metrics(obs.registry())
      .print();
  obs.finish();

  w.begin_object();
  w.key("mode");
  w.value("router_survey");
  w.key("transport");
  w.value(std::string(
      probe::resolved_transport_name(fleet_options.transport)));
  w.key("pipeline_depth");
  w.value(static_cast<std::int64_t>(config.pipeline_depth));
  w.key("routes");
  w.value(result.routes_traced);
  w.key("unique_diamonds");
  w.value(result.unique_diamonds);
  emit_stop_set_summary(w, stop_set_session, result.probes_saved_by_stop_set,
                        result.traces_stopped);
  w.key("resolution");
  w.begin_object();
  w.key("no_change");
  w.value(result.resolution_fraction(topo::ResolutionClass::kNoChange));
  w.key("single_smaller");
  w.value(result.resolution_fraction(
      topo::ResolutionClass::kSingleSmallerDiamond));
  w.key("multiple_smaller");
  w.value(result.resolution_fraction(
      topo::ResolutionClass::kMultipleSmallerDiamonds));
  w.key("one_path");
  w.value(result.resolution_fraction(topo::ResolutionClass::kOnePath));
  w.end_object();
  w.key("distinct_router_sizes");
  emit_histogram(w, result.distinct_router_size);
  w.key("aggregated_router_sizes");
  emit_histogram(w, result.aggregated_router_size);
  w.end_object();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (tools::handle_version(flags, "mmlpt_survey")) return 0;
    const auto mode = flags.get("mode", "ip");
    JsonWriter w;
    int rc = 0;
    if (mode == "ip") {
      rc = run_ip(flags, w);
    } else if (mode == "evaluation") {
      rc = run_evaluation(flags, w);
    } else if (mode == "router") {
      rc = run_router(flags, w);
    } else {
      std::fprintf(stderr, "unknown --mode (ip|evaluation|router)\n");
      return 1;
    }
    // An interrupted survey (rc = 128+signal) has no report to print.
    if (rc == 0) std::printf("%s\n", w.view().c_str());
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlpt_survey: %s\n", e.what());
    return 1;
  }
}
