// mmlpt_client — the thin client for mmlptd. Connects to the daemon's
// unix socket, submits one fleet trace job (the same flags as
// mmlpt_fleet) and streams the result JSONL to stdout or --output; or,
// with --status, prints the daemon's machine-parsable status document.
//
// Exit codes: 0 job completed, 1 job failed / local error, 3 job
// rejected by admission control, 130 job canceled (SIGINT or
// --cancel-after-lines).
#include <cstdio>
#include <fstream>
#include <iostream>

#include "cli_common.h"
#include "common/error.h"
#include "common/flags.h"
#include "daemon/client.h"
#include "daemon/signals.h"

using namespace mmlpt;

namespace {

constexpr const char kUsagePrefix[] =
    "usage: mmlpt_client --socket PATH [options]\n"
    "\n"
    "  mmlpt_client --socket /tmp/mmlptd.sock --routes 64 --seed 7\n"
    "  mmlpt_client --socket /tmp/mmlptd.sock --status\n"
    "  mmlpt_client --socket /tmp/mmlptd.sock --metrics\n"
    "\n"
    "Submits one trace job to a running mmlptd and streams the JSONL\n"
    "result lines — byte-identical to `mmlpt_fleet --jobs 1` with the\n"
    "same job flags, but without owning a probing stack.\n"
    "\n"
    "options:\n";
constexpr const char kUsageSuffix[] =
    "  --version            print version and exit\n"
    "\n"
    "A summary line (outcome, lines, packets) goes to stderr; when the\n"
    "daemon runs a stop set, its machine-parsable stop-set summary is\n"
    "forwarded to stderr too. SIGINT cancels the in-flight job and exits\n"
    "130 once the daemon confirms the cancellation.\n";

void print_usage() {
  std::fputs(kUsagePrefix, stdout);
  std::fputs(tools::client_options_usage().c_str(), stdout);
  std::fputs(tools::job_spec_options_usage().c_str(), stdout);
  std::fputs(kUsageSuffix, stdout);
}

const char* outcome_name(daemon::JobOutcome outcome) {
  switch (outcome) {
    case daemon::JobOutcome::kOk:
      return "ok";
    case daemon::JobOutcome::kRejected:
      return "rejected";
    case daemon::JobOutcome::kCanceled:
      return "canceled";
    case daemon::JobOutcome::kFailed:
      return "failed";
  }
  return "unknown";
}

int run_client(const Flags& flags) {
  const std::string socket_path = flags.get("socket", "");
  if (socket_path.empty()) throw ConfigError("--socket PATH is required");
  const std::string tenant = flags.get("tenant", "default");

  daemon::Client client(socket_path, tenant);

  if (flags.get_bool("status", false)) {
    std::printf("%s\n", client.server_status().c_str());
    return 0;
  }

  if (flags.get_bool("metrics", false)) {
    // Prometheus text straight from the daemon's registry — what a
    // scrape job or an operator's curl-over-socat would ingest.
    std::fputs(client.metrics().c_str(), stdout);
    return 0;
  }

  const auto spec = tools::parse_job_spec(flags);

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (flags.has("output")) {
    const auto path = flags.get("output", "");
    file.open(path);
    if (!file) throw SystemError("cannot open --output file: " + path);
    out = &file;
  }

  // SIGINT mid-job turns into a Cancel frame: the daemon resolves the
  // trace's in-flight probes and answers with a canceled status.
  auto& shutdown = daemon::ShutdownSignal::install();

  daemon::ClientRunOptions options;
  options.cancel_fd = shutdown.fd();
  options.cancel_after_lines = flags.get_uint("cancel-after-lines", 0);
  options.on_line = [&](const std::string& line) { *out << line << '\n'; };

  const auto result = client.run_job(spec, options);
  out->flush();

  if (!result.stop_set_summary.empty()) {
    std::fprintf(stderr, "mmlpt_client: %s\n",
                 result.stop_set_summary.c_str());
  }
  std::fprintf(stderr, "mmlpt_client: job %s, %llu lines, %llu packets%s%s\n",
               outcome_name(result.outcome),
               static_cast<unsigned long long>(result.lines),
               static_cast<unsigned long long>(result.packets),
               result.message.empty() ? "" : ": ",
               result.message.c_str());
  switch (result.outcome) {
    case daemon::JobOutcome::kOk:
      return 0;
    case daemon::JobOutcome::kRejected:
      return 3;
    case daemon::JobOutcome::kCanceled:
      return 130;
    case daemon::JobOutcome::kFailed:
      return 1;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (tools::handle_version(flags, "mmlpt_client")) return 0;
    return run_client(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlpt_client: %s\n", e.what());
    return 1;
  }
}
