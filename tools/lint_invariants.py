#!/usr/bin/env python3
"""Repo-invariant linter: cheap, dependency-free checks for rules that
neither the compiler nor clang-tidy can see, wired into ctest (and CI)
as `lint.invariants`.

Checked invariants:

  1. Metric naming: every name registered through
     MetricsRegistry::counter/gauge/histogram starts with `mmlpt_`;
     counters end `_total`; histograms end with a unit token
     (`_seconds`, `_probes`, `_channels`, `_bytes`); gauges do neither.
     Label keys used at registration sites stay within the small
     vocabulary the dashboards key on.

  2. CLI option tables (tools/cli_common.h): within each
     *_option_table() the long flag names are unique, and every flag a
     table documents is actually consumed by a Flags parse call
     somewhere under tools/ — usage text and parser cannot drift apart.

  3. Frame-type completeness: the FrameType enumerators in
     src/daemon/protocol.h and the cases of is_known_frame_type() in
     src/daemon/protocol.cpp are exactly the same set, so a new frame
     kind cannot be added without teaching the skip/refuse logic about
     it.

  4. Include-guard hygiene: every header under src/ and tools/ opens
     with the canonical `#ifndef MMLPT_<PATH>_H` guard derived from its
     path (so guards cannot collide) and defines it on the next
     preprocessor line.

  5. Atomics discipline: every `memory_order_relaxed` use carries a
     justification — a comment mentioning "relaxed" on the same line or
     within the three lines above. Relaxed is correct surprisingly
     rarely; the comment is the reviewer's handle on *why* it is here.

Exit status: 0 clean, 1 violations (each printed as file:line: rule:
message), 2 internal error (e.g. a parsed file moved).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

VIOLATIONS: list[str] = []


def violation(path: Path, line: int, rule: str, message: str) -> None:
    rel = path.relative_to(REPO)
    VIOLATIONS.append(f"{rel}:{line}: {rule}: {message}")


def line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def source_files(*roots: str, suffixes: tuple[str, ...]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        base = REPO / root
        if not base.exists():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                files.append(path)
    return files


# ---- 1. metric naming ---------------------------------------------------

METRIC_CALL = re.compile(
    r"\b(counter|gauge|histogram)\s*\(\s*\"([^\"]+)\"", re.S
)
HISTOGRAM_UNITS = ("_seconds", "_probes", "_channels", "_bytes")
ALLOWED_LABEL_KEYS = {"transport", "scope", "outcome"}
LABEL_KEY = re.compile(r"\{\{\s*\"([a-z0-9_]+)\"")


def check_metric_naming() -> None:
    for path in source_files("src", "tools", suffixes=(".cpp", ".h")):
        text = path.read_text()
        for match in METRIC_CALL.finditer(text):
            kind, name = match.group(1), match.group(2)
            at = line_of(text, match.start())
            if not re.fullmatch(r"mmlpt_[a-z0-9_]+", name):
                violation(path, at, "metric-naming",
                          f"{kind} name '{name}' must match mmlpt_[a-z0-9_]+")
                continue
            if kind == "counter" and not name.endswith("_total"):
                violation(path, at, "metric-naming",
                          f"counter '{name}' must end in _total")
            if kind == "histogram" and not name.endswith(HISTOGRAM_UNITS):
                violation(path, at, "metric-naming",
                          f"histogram '{name}' must end in a unit token "
                          f"{HISTOGRAM_UNITS}")
            if kind == "gauge" and name.endswith("_total"):
                violation(path, at, "metric-naming",
                          f"gauge '{name}' must not end in _total "
                          "(reserved for counters)")
        # Label keys appear in obs::Labels declarations and inline in
        # registration calls; trace-event args reuse the same brace
        # syntax and are exempt, so only scan those two contexts.
        label_regions: list[tuple[int, str]] = []
        for match in re.finditer(r"obs::Labels[^;]*;", text, re.S):
            label_regions.append((match.start(), match.group(0)))
        for match in METRIC_CALL.finditer(text):
            end = text.find(";", match.start())
            label_regions.append((match.start(), text[match.start():end]))
        for start, region in label_regions:
            for match in LABEL_KEY.finditer(region):
                key = match.group(1)
                if key not in ALLOWED_LABEL_KEYS:
                    violation(path, line_of(text, start + match.start()),
                              "metric-labels",
                              f"label key '{key}' is outside the allowed "
                              f"set {sorted(ALLOWED_LABEL_KEYS)}")


# ---- 2. CLI option tables ----------------------------------------------

OPTION_TABLE = re.compile(
    r"(\w+_option_table)\s*\(\)\s*\{(.*?)\n\}", re.S
)
TABLE_ENTRY = re.compile(r"\{\s*\"([^\"]+)\"")
LONG_FLAG = re.compile(r"--([a-z0-9][a-z0-9-]*)")
PARSE_CALL = re.compile(
    r"\b(?:get|get_int|get_uint|get_double|get_bool|has)\s*\(\s*\"([a-z0-9-]+)\""
)


def check_option_tables() -> None:
    cli_common = REPO / "tools" / "cli_common.h"
    text = cli_common.read_text()

    parsed_flags: set[str] = set()
    for path in source_files("tools", suffixes=(".cpp", ".h")):
        parsed_flags.update(PARSE_CALL.findall(path.read_text()))

    tables = OPTION_TABLE.findall(text)
    if not tables:
        violation(cli_common, 1, "option-tables",
                  "found no *_option_table() definitions — the parser "
                  "in this linter needs updating")
        return
    for table_name, body in tables:
        seen: dict[str, int] = {}
        offset = text.find(body)
        for entry in TABLE_ENTRY.finditer(body):
            spec = entry.group(1)
            at = line_of(text, offset + entry.start())
            flags = LONG_FLAG.findall(spec)
            if not flags:
                violation(cli_common, at, "option-tables",
                          f"{table_name}: entry '{spec}' documents no "
                          "--long-flag")
                continue
            for flag in flags:
                if flag in seen:
                    violation(cli_common, at, "option-tables",
                              f"{table_name}: --{flag} documented twice "
                              f"(first at line {seen[flag]})")
                seen[flag] = at
                if flag not in parsed_flags:
                    violation(cli_common, at, "option-tables",
                              f"{table_name}: --{flag} is documented but "
                              "no Flags::get*/has call consumes it")


# ---- 3. frame-type completeness ----------------------------------------

ENUMERATOR = re.compile(r"\bk([A-Z][A-Za-z0-9]*)\s*=\s*\d+")
KNOWN_CASE = re.compile(r"case\s+FrameType::k([A-Z][A-Za-z0-9]*)\s*:")


def check_frame_types() -> None:
    header = REPO / "src" / "daemon" / "protocol.h"
    source = REPO / "src" / "daemon" / "protocol.cpp"
    header_text = header.read_text()
    enum_match = re.search(
        r"enum class FrameType[^{]*\{(.*?)\};", header_text, re.S
    )
    if not enum_match:
        violation(header, 1, "frame-types", "cannot find enum FrameType")
        return
    enumerators = set(ENUMERATOR.findall(enum_match.group(1)))

    source_text = source.read_text()
    known_match = re.search(
        r"bool is_known_frame_type[^{]*\{(.*?)\n\}", source_text, re.S
    )
    if not known_match:
        violation(source, 1, "frame-types",
                  "cannot find is_known_frame_type()")
        return
    cases = set(KNOWN_CASE.findall(known_match.group(1)))

    for missing in sorted(enumerators - cases):
        violation(source, line_of(source_text, known_match.start()),
                  "frame-types",
                  f"FrameType::k{missing} is not listed in "
                  "is_known_frame_type() — receivers would treat a "
                  "legitimate frame kind as unknown")
    for stale in sorted(cases - enumerators):
        violation(source, line_of(source_text, known_match.start()),
                  "frame-types",
                  f"is_known_frame_type() lists FrameType::k{stale}, "
                  "which the enum does not define")


# ---- 4. include guards --------------------------------------------------


def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO)
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]  # src/ is the include root
    stem = "_".join(parts)
    stem = re.sub(r"\.h$", "", stem)
    return "MMLPT_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"


def check_include_guards() -> None:
    for path in source_files("src", "tools", suffixes=(".h",)):
        text = path.read_text()
        guard = expected_guard(path)
        ifndef = re.search(r"^#ifndef\s+(\S+)", text, re.M)
        if not ifndef:
            violation(path, 1, "include-guard",
                      f"header has no #ifndef include guard (want {guard})")
            continue
        if ifndef.group(1) != guard:
            violation(path, line_of(text, ifndef.start()), "include-guard",
                      f"guard is {ifndef.group(1)}, canonical form for "
                      f"this path is {guard}")
            continue
        define = re.search(
            rf"^#define\s+{re.escape(guard)}\b", text, re.M
        )
        if not define:
            violation(path, line_of(text, ifndef.start()), "include-guard",
                      f"#ifndef {guard} is not followed by a matching "
                      "#define")


# ---- 5. relaxed atomics need justification ------------------------------

RELAXED = "memory_order_relaxed"


def check_relaxed_atomics() -> None:
    for path in source_files("src", "tools", suffixes=(".cpp", ".h")):
        lines = path.read_text().splitlines()
        for index, line in enumerate(lines):
            if RELAXED not in line:
                continue
            window = lines[max(0, index - 3): index + 1]
            justified = any(
                "relaxed" in text.split("//", 1)[1].lower()
                for text in window
                if "//" in text
            )
            if not justified:
                violation(path, index + 1, "relaxed-atomics",
                          "memory_order_relaxed without a justifying "
                          "comment (mention 'relaxed' on the line or "
                          "within 3 lines above)")


def main() -> int:
    check_metric_naming()
    check_option_tables()
    check_frame_types()
    check_include_guards()
    check_relaxed_atomics()
    if VIOLATIONS:
        for entry in VIOLATIONS:
            print(entry)
        print(f"lint_invariants: {len(VIOLATIONS)} violation(s)")
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except OSError as error:
        print(f"lint_invariants: internal error: {error}", file=sys.stderr)
        sys.exit(2)
