# Smoke script for the Doubletree stop set: a cold record-only fleet run
# warms a fresh topology cache, then a consulting re-run over the same
# shared-prefix world must report probes saved. Driven by add_test in
# tools/CMakeLists.txt (variables: FLEET_TOOL, CACHE_FILE, OUTPUT_FILE).
file(REMOVE "${CACHE_FILE}")

execute_process(
  COMMAND "${FLEET_TOOL}" --routes 6 --distinct 5 --jobs 3
    --shared-prefix 3 --topology-cache "${CACHE_FILE}"
    --output "${OUTPUT_FILE}"
  RESULT_VARIABLE cold_rc)
if(NOT cold_rc EQUAL 0)
  message(FATAL_ERROR "cold record-only fleet run failed (${cold_rc})")
endif()
if(NOT EXISTS "${CACHE_FILE}")
  message(FATAL_ERROR "record-only run did not write the topology cache")
endif()

execute_process(
  COMMAND "${FLEET_TOOL}" --routes 6 --distinct 5 --jobs 3
    --shared-prefix 3 --topology-cache "${CACHE_FILE}" --stop-set
    --output "${OUTPUT_FILE}"
  ERROR_VARIABLE warm_stderr
  RESULT_VARIABLE warm_rc)
if(NOT warm_rc EQUAL 0)
  message(FATAL_ERROR "warm --stop-set fleet run failed (${warm_rc})")
endif()
if(NOT warm_stderr MATCHES "\"visible_hops\":")
  message(FATAL_ERROR "warm run printed no stop-set summary: ${warm_stderr}")
endif()
