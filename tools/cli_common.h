// Helpers shared by the mmlpt_* CLIs: --version output (git describe +
// build type injected by tools/CMakeLists.txt) and address-family flag
// parsing (--family 4|6|ipv4|ipv6, or the traceroute-style bare "-6").
#ifndef MMLPT_TOOLS_CLI_COMMON_H
#define MMLPT_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/flags.h"
#include "net/ip_address.h"

#ifndef MMLPT_GIT_DESCRIBE
#define MMLPT_GIT_DESCRIBE "unknown"
#endif
#ifndef MMLPT_BUILD_TYPE
#define MMLPT_BUILD_TYPE "unspecified"
#endif

namespace mmlpt::tools {

/// Handle --version: print "<tool> <git describe> (<build type>)" and
/// return true when the flag was present.
inline bool handle_version(const Flags& flags, const char* tool) {
  if (!flags.has("version")) return false;
  std::printf("%s %s (%s)\n", tool, MMLPT_GIT_DESCRIBE, MMLPT_BUILD_TYPE);
  return true;
}

/// The requested address family: --family 4|6|ipv4|ipv6|inet|inet6, or
/// the bare "-6" / "-4" switches (traceroute tradition; the Flags parser
/// maps them to --family, last one wins). Defaults to IPv4.
inline net::Family parse_family(const Flags& flags) {
  const std::string name = flags.get("family", "4");
  const auto family = net::parse_family_name(name);
  if (!family) {
    throw ConfigError("unknown --family '" + name + "' (4|6|ipv4|ipv6)");
  }
  return *family;
}

}  // namespace mmlpt::tools

#endif  // MMLPT_TOOLS_CLI_COMMON_H
