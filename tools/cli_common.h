// Helpers shared by the mmlpt_* CLIs: --version output (git describe +
// build type injected by tools/CMakeLists.txt), address-family flag
// parsing (--family 4|6|ipv4|ipv6, or the traceroute-style bare "-6"),
// and the fleet/window flag block (--window/--jobs/--pps/--burst/
// --merge-windows/--fsync) that mmlpt_trace, mmlpt_survey and
// mmlpt_fleet all share — declared and validated here exactly once.
#ifndef MMLPT_TOOLS_CLI_COMMON_H
#define MMLPT_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <string>

#include "common/error.h"
#include "common/flags.h"
#include "net/ip_address.h"

#ifndef MMLPT_GIT_DESCRIBE
#define MMLPT_GIT_DESCRIBE "unknown"
#endif
#ifndef MMLPT_BUILD_TYPE
#define MMLPT_BUILD_TYPE "unspecified"
#endif

namespace mmlpt::tools {

/// Handle --version: print "<tool> <git describe> (<build type>)" and
/// return true when the flag was present.
inline bool handle_version(const Flags& flags, const char* tool) {
  if (!flags.has("version")) return false;
  std::printf("%s %s (%s)\n", tool, MMLPT_GIT_DESCRIBE, MMLPT_BUILD_TYPE);
  return true;
}

/// The requested address family: --family 4|6|ipv4|ipv6|inet|inet6, or
/// the bare "-6" / "-4" switches (traceroute tradition; the Flags parser
/// maps them to --family, last one wins). Defaults to IPv4.
inline net::Family parse_family(const Flags& flags) {
  const std::string name = flags.get("family", "4");
  const auto family = net::parse_family_name(name);
  if (!family) {
    throw ConfigError("unknown --family '" + name + "' (4|6|ipv4|ipv6)");
  }
  return *family;
}

/// The per-trace probe window: --window N, N >= 1 (1 = serial probing).
inline int parse_window(const Flags& flags) {
  const auto window = static_cast<int>(flags.get_int("window", 1));
  if (window < 1) throw ConfigError("--window must be >= 1");
  return window;
}

/// The fleet flag block shared by mmlpt_survey and mmlpt_fleet. Every
/// field is validated here so the three CLIs cannot drift apart.
struct FleetOptions {
  int jobs = 1;
  double pps = 0.0;
  int burst = 64;
  int window = 1;
  bool merge_windows = false;
};

inline FleetOptions parse_fleet_options(const Flags& flags) {
  FleetOptions options;
  options.jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (options.jobs < 1) throw ConfigError("--jobs must be >= 1");
  options.pps = flags.get_double("pps", 0.0);
  if (options.pps < 0.0) throw ConfigError("--pps must be >= 0");
  options.burst = static_cast<int>(flags.get_int("burst", 64));
  if (options.burst < 1) throw ConfigError("--burst must be >= 1");
  options.window = parse_window(flags);
  options.merge_windows = flags.get_bool("merge-windows", false);
  return options;
}

/// The usage text for the shared fleet flag block, so all CLIs describe
/// the same flags with the same words.
constexpr const char kFleetOptionsUsage[] =
    "  --jobs N             concurrent trace workers (default 1; results\n"
    "                       are identical for every N, only wall-clock\n"
    "                       changes)\n"
    "  --window N           per-trace probe window (default 1 = serial\n"
    "                       probing; output is identical for every N; a\n"
    "                       window of N costs N rate-limiter tokens, so\n"
    "                       it composes with --pps/--burst)\n"
    "  --pps X              fleet-wide probe rate limit, packets/second\n"
    "                       (default unlimited)\n"
    "  --burst N            rate-limiter burst capacity (default 64)\n"
    "  --merge-windows      merge concurrent traces' committed windows\n"
    "                       into shared fleet send bursts (one burst\n"
    "                       serves N tracers; one rate-limiter charge per\n"
    "                       burst). Output stays byte-identical to the\n"
    "                       unmerged run\n"
    "  --fsync              with --output: fsync after every destination\n"
    "                       line, so a crash never loses committed\n"
    "                       results\n";

}  // namespace mmlpt::tools

#endif  // MMLPT_TOOLS_CLI_COMMON_H
