// Helpers shared by the mmlpt_* CLIs: --version output (git describe +
// build type injected by tools/CMakeLists.txt), address-family flag
// parsing (--family 4|6|ipv4|ipv6, or the traceroute-style bare "-6"),
// and the fleet/window flag block (--window/--jobs/--pps/--burst/
// --merge-windows/--fsync) that mmlpt_trace, mmlpt_survey and
// mmlpt_fleet all share — declared and validated here exactly once.
#ifndef MMLPT_TOOLS_CLI_COMMON_H
#define MMLPT_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <span>
#include <string>
#include <string_view>

#include "common/error.h"
#include "common/flags.h"
#include "net/ip_address.h"

#ifndef MMLPT_GIT_DESCRIBE
#define MMLPT_GIT_DESCRIBE "unknown"
#endif
#ifndef MMLPT_BUILD_TYPE
#define MMLPT_BUILD_TYPE "unspecified"
#endif

namespace mmlpt::tools {

/// Handle --version: print "<tool> <git describe> (<build type>)" and
/// return true when the flag was present.
inline bool handle_version(const Flags& flags, const char* tool) {
  if (!flags.has("version")) return false;
  std::printf("%s %s (%s)\n", tool, MMLPT_GIT_DESCRIBE, MMLPT_BUILD_TYPE);
  return true;
}

/// The requested address family: --family 4|6|ipv4|ipv6|inet|inet6, or
/// the bare "-6" / "-4" switches (traceroute tradition; the Flags parser
/// maps them to --family, last one wins). Defaults to IPv4.
inline net::Family parse_family(const Flags& flags) {
  const std::string name = flags.get("family", "4");
  const auto family = net::parse_family_name(name);
  if (!family) {
    throw ConfigError("unknown --family '" + name + "' (4|6|ipv4|ipv6)");
  }
  return *family;
}

/// The per-trace probe window: --window N, N >= 1 (1 = serial probing).
inline int parse_window(const Flags& flags) {
  const auto window = static_cast<int>(flags.get_int("window", 1));
  if (window < 1) throw ConfigError("--window must be >= 1");
  return window;
}

/// The Doubletree stop-set flag pair shared by every tracing CLI.
/// An empty cache path means the feature is fully off.
struct StopSetOptions {
  /// --topology-cache F: the persistent store file ("" = feature off).
  std::string topology_cache;
  /// --stop-set: consult the cache (Doubletree stopping). Without it a
  /// cache only records — output stays byte-identical to no cache.
  bool consult = false;
};

inline StopSetOptions parse_stop_set_options(const Flags& flags) {
  StopSetOptions options;
  options.topology_cache = flags.get("topology-cache", "");
  options.consult = flags.get_bool("stop-set", false);
  if (options.consult && options.topology_cache.empty()) {
    throw ConfigError("--stop-set requires --topology-cache <file>");
  }
  return options;
}

/// The fleet flag block shared by mmlpt_survey and mmlpt_fleet. Every
/// field is validated here so the three CLIs cannot drift apart.
struct FleetOptions {
  int jobs = 1;
  double pps = 0.0;
  int burst = 64;
  int window = 1;
  bool merge_windows = false;
  StopSetOptions stop_set;
};

inline FleetOptions parse_fleet_options(const Flags& flags) {
  FleetOptions options;
  options.jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (options.jobs < 1) throw ConfigError("--jobs must be >= 1");
  options.pps = flags.get_double("pps", 0.0);
  if (options.pps < 0.0) throw ConfigError("--pps must be >= 0");
  options.burst = static_cast<int>(flags.get_int("burst", 64));
  if (options.burst < 1) throw ConfigError("--burst must be >= 1");
  options.window = parse_window(flags);
  options.merge_windows = flags.get_bool("merge-windows", false);
  options.stop_set = parse_stop_set_options(flags);
  return options;
}

// ---- shared usage text, generated from one option table ----------------
//
// Each CLI used to carry a hand-wrapped copy of the shared flag help;
// they drifted. Now there is one table per flag block and one formatter,
// and every print_usage() renders from it.

/// One flag's usage entry. `help` holds pre-wrapped lines separated by
/// '\n'; the formatter supplies indentation and column alignment.
struct OptionSpec {
  const char* flag;  ///< flag with its metavariable, e.g. "--jobs N"
  const char* help;
};

/// Render a flag block: two-space indent, help aligned at column
/// `kUsageHelpColumn`, continuation lines indented to the same column.
/// A flag too wide for the column gets its help on the following lines.
inline constexpr std::size_t kUsageHelpColumn = 23;

inline std::string format_option_block(std::span<const OptionSpec> options) {
  std::string out;
  for (const auto& option : options) {
    std::string line = "  ";
    line += option.flag;
    // Keep at least two spaces between flag and help.
    if (line.size() + 2 > kUsageHelpColumn) {
      out += line;
      out += '\n';
      line.assign(kUsageHelpColumn, ' ');
    } else {
      line.append(kUsageHelpColumn - line.size(), ' ');
    }
    std::string_view help = option.help;
    while (!help.empty()) {
      const auto newline = help.find('\n');
      out += line;
      out += help.substr(0, newline);
      out += '\n';
      line.assign(kUsageHelpColumn, ' ');
      if (newline == std::string_view::npos) break;
      help.remove_prefix(newline + 1);
    }
  }
  return out;
}

/// The fleet flag block (--jobs/--window/--pps/--burst/--merge-windows/
/// --fsync).
inline std::span<const OptionSpec> fleet_option_table() {
  static const OptionSpec table[] = {
      {"--jobs N",
       "concurrent trace workers (default 1; results\n"
       "are identical for every N, only wall-clock\n"
       "changes)"},
      {"--window N",
       "per-trace probe window (default 1 = serial\n"
       "probing; output is identical for every N; a\n"
       "window of N costs N rate-limiter tokens, so\n"
       "it composes with --pps/--burst)"},
      {"--pps X",
       "fleet-wide probe rate limit, packets/second\n"
       "(default unlimited)"},
      {"--burst N", "rate-limiter burst capacity (default 64)"},
      {"--merge-windows",
       "merge concurrent traces' committed windows\n"
       "into shared fleet send bursts (one burst\n"
       "serves N tracers; one rate-limiter charge per\n"
       "burst). Output stays byte-identical to the\n"
       "unmerged run"},
      {"--fsync",
       "with --output: fsync after every destination\n"
       "line, so a crash never loses committed\n"
       "results"},
  };
  return table;
}

/// The Doubletree stop-set flag pair (--topology-cache/--stop-set).
inline std::span<const OptionSpec> stop_set_option_table() {
  static const OptionSpec table[] = {
      {"--topology-cache F",
       "persistent topology store backing the\n"
       "Doubletree stop set: loaded at start as a\n"
       "frozen epoch, this run's discoveries appended\n"
       "at exit. Without --stop-set the cache only\n"
       "records (output stays byte-identical)"},
      {"--stop-set",
       "consult the cache: halt forward probing at\n"
       "hops confirmed by earlier runs, trace the\n"
       "near side backward Doubletree-style, and\n"
       "report probes_saved_by_stop_set. Requires\n"
       "--topology-cache"},
  };
  return table;
}

/// Usage text for the stop-set flags alone (mmlpt_trace).
inline std::string stop_set_options_usage() {
  return format_option_block(stop_set_option_table());
}

/// Usage text for the full shared fleet flag block, stop-set flags
/// included (mmlpt_survey, mmlpt_fleet).
inline std::string fleet_options_usage() {
  return format_option_block(fleet_option_table()) +
         format_option_block(stop_set_option_table());
}

}  // namespace mmlpt::tools

#endif  // MMLPT_TOOLS_CLI_COMMON_H
