// Helpers shared by the mmlpt_* CLIs: --version output (git describe +
// build type injected by tools/CMakeLists.txt), address-family flag
// parsing (--family 4|6|ipv4|ipv6, or the traceroute-style bare "-6"),
// and the fleet/window flag block (--window/--jobs/--pps/--burst/
// --merge-windows/--fsync) that mmlpt_trace, mmlpt_survey and
// mmlpt_fleet all share — declared and validated here exactly once.
#ifndef MMLPT_TOOLS_CLI_COMMON_H
#define MMLPT_TOOLS_CLI_COMMON_H

#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/flags.h"
#include "common/json.h"
#include "core/validation.h"
#include "daemon/server.h"
#include "net/ip_address.h"
#include "obs/metrics.h"
#include "obs/trace_events.h"
#include "orchestrator/stop_set.h"
#include "probe/transport_select.h"

#ifndef MMLPT_GIT_DESCRIBE
#define MMLPT_GIT_DESCRIBE "unknown"
#endif
#ifndef MMLPT_BUILD_TYPE
#define MMLPT_BUILD_TYPE "unspecified"
#endif

namespace mmlpt::tools {

/// Handle --version: print "<tool> <git describe> (<build type>)" and
/// return true when the flag was present.
inline bool handle_version(const Flags& flags, const char* tool) {
  if (!flags.has("version")) return false;
  std::printf("%s %s (%s)\n", tool, MMLPT_GIT_DESCRIBE, MMLPT_BUILD_TYPE);
  return true;
}

/// The requested address family: --family 4|6|ipv4|ipv6|inet|inet6, or
/// the bare "-6" / "-4" switches (traceroute tradition; the Flags parser
/// maps them to --family, last one wins). Defaults to IPv4.
inline net::Family parse_family(const Flags& flags) {
  const std::string name = flags.get("family", "4");
  const auto family = net::parse_family_name(name);
  if (!family) {
    throw ConfigError("unknown --family '" + name + "' (4|6|ipv4|ipv6)");
  }
  return *family;
}

/// --algorithm mda|mda-lite|single-flow (default mda-lite) — shared by
/// mmlpt_fleet and mmlpt_client so the names cannot drift.
inline core::Algorithm parse_algorithm(const Flags& flags) {
  const std::string name = flags.get("algorithm", "mda-lite");
  if (name == "mda") return core::Algorithm::kMda;
  if (name == "mda-lite") return core::Algorithm::kMdaLite;
  if (name == "single-flow") return core::Algorithm::kSingleFlow;
  throw ConfigError("unknown --algorithm (mda|mda-lite|single-flow): " + name);
}

/// Read a --destinations label file: one label per line, blanks and
/// '#' comments skipped, CRLF tolerated.
inline std::vector<std::string> read_destination_labels(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot open --destinations file: " + path);
  std::vector<std::string> labels;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    labels.push_back(line);
  }
  return labels;
}

/// The per-trace probe window: --window N, N >= 1 (1 = serial probing).
inline int parse_window(const Flags& flags) {
  const auto window = static_cast<int>(flags.get_int("window", 1));
  if (window < 1) throw ConfigError("--window must be >= 1");
  return window;
}

/// --transport auto|poll|uring (default auto): the real-network backend
/// shared by every CLI that can touch the wire. `auto` resolves through
/// the kernel capability probe (see probe/transport_select.h); the
/// resolved choice is echoed in each tool's status/summary output so
/// scripts can tell which backend actually ran.
inline probe::TransportKind parse_transport(const Flags& flags) {
  const std::string name = flags.get("transport", "auto");
  const auto kind = probe::parse_transport_name(name);
  if (!kind) {
    throw ConfigError("unknown --transport '" + name +
                      "' (auto|poll|uring)");
  }
  return *kind;
}

/// --pipeline-depth N, N >= 1: merged fleet bursts that may be in flight
/// at once (only meaningful with --merge-windows; 1 = the strict
/// resolve-before-next-burst discipline).
inline int parse_pipeline_depth(const Flags& flags) {
  const auto depth = static_cast<int>(flags.get_int("pipeline-depth", 1));
  if (depth < 1) throw ConfigError("--pipeline-depth must be >= 1");
  return depth;
}

/// The Doubletree stop-set flag pair shared by every tracing CLI.
/// An empty cache path means the feature is fully off.
struct StopSetOptions {
  /// --topology-cache F: the persistent store file ("" = feature off).
  std::string topology_cache;
  /// --stop-set: consult the cache (Doubletree stopping). Without it a
  /// cache only records — output stays byte-identical to no cache.
  bool consult = false;
};

inline StopSetOptions parse_stop_set_options(const Flags& flags) {
  StopSetOptions options;
  options.topology_cache = flags.get("topology-cache", "");
  options.consult = flags.get_bool("stop-set", false);
  if (options.consult && options.topology_cache.empty()) {
    throw ConfigError("--stop-set requires --topology-cache <file>");
  }
  return options;
}

/// The observability flag pair shared by every tracing CLI. Both default
/// off; neither changes a byte of the tool's primary output.
struct ObsOptions {
  /// --metrics-out F: write the Prometheus text exposition at exit.
  std::string metrics_out;
  /// --trace-events F: record spans/instants and write a Chrome
  /// trace-event JSON document at exit.
  std::string trace_events;
};

inline ObsOptions parse_obs_options(const Flags& flags) {
  ObsOptions options;
  options.metrics_out = flags.get("metrics-out", "");
  options.trace_events = flags.get("trace-events", "");
  return options;
}

/// One CLI run's observability lifecycle: owns the process registry the
/// run's components register in, installs the global trace recorder when
/// --trace-events asked for one, and writes both artifact files in
/// finish(). Destruction clears the global recorder either way, so an
/// exception path cannot leave a dangling pointer installed.
class ObsSession {
 public:
  explicit ObsSession(ObsOptions options) : options_(std::move(options)) {
    if (!options_.trace_events.empty()) {
      recorder_ = std::make_unique<obs::TraceRecorder>();
      obs::set_recorder(recorder_.get());
    }
  }

  ~ObsSession() {
    if (recorder_) obs::set_recorder(nullptr);
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  [[nodiscard]] obs::MetricsRegistry& registry() noexcept {
    return registry_;
  }

  /// Write the --metrics-out and --trace-events files. Call after the
  /// run's instrumented threads have joined (also fine after an
  /// interrupt — partial artifacts beat none).
  void finish() {
    if (!options_.metrics_out.empty()) {
      std::ofstream out(options_.metrics_out);
      if (!out) {
        throw SystemError("cannot open --metrics-out file: " +
                          options_.metrics_out);
      }
      out << registry_.render();
      if (!out) {
        throw SystemError("cannot write --metrics-out file: " +
                          options_.metrics_out);
      }
    }
    if (recorder_) {
      obs::set_recorder(nullptr);
      recorder_->write(options_.trace_events);
      recorder_.reset();
    }
  }

 private:
  ObsOptions options_;
  obs::MetricsRegistry registry_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
};

/// Builder for the one machine-parsable JSON summary line the tracing
/// CLIs print to stderr when a run completes — replacing the old ad-hoc
/// printf summaries, which scripts had to parse three different ways.
/// Shape:
///   {"tool":...,<tool fields>,"stop_set":{...},"metrics":{...}}
/// The stop_set object only appears when a topology cache was in use and
/// the metrics object only lists non-zero scalar series, so quick runs
/// stay one short line.
class SummaryLine {
 public:
  explicit SummaryLine(const char* tool) {
    w_.begin_object();
    w_.key("tool");
    w_.value(tool);
  }

  /// Tool-specific fields, appended in call order.
  template <typename V>
  SummaryLine& field(const char* name, V value) {
    w_.key(name);
    w_.value(value);
    return *this;
  }

  /// The shared stop-set object (no-op when the session is inactive).
  /// The union digest identifies the discovered topology regardless of
  /// how discovery was split between cache and probing; the CI warm-run
  /// gate compares it across runs.
  SummaryLine& stop_set(const orchestrator::StopSetSession& session,
                        std::uint64_t probes_saved,
                        std::uint64_t traces_stopped) {
    const auto* set = session.stop_set();
    if (set == nullptr) return *this;
    w_.key("stop_set");
    w_.begin_object();
    w_.key("consulted");
    w_.value(session.consult());
    w_.key("visible_hops");
    w_.value(static_cast<std::uint64_t>(set->visible_hop_count()));
    w_.key("pending_hops");
    w_.value(static_cast<std::uint64_t>(set->pending_hop_count()));
    w_.key("probes_saved");
    w_.value(probes_saved);
    w_.key("traces_stopped");
    w_.value(traces_stopped);
    char digest[17];
    std::snprintf(digest, sizeof digest, "%016llx",
                  static_cast<unsigned long long>(set->union_digest()));
    w_.key("union_digest");
    w_.value(digest);
    w_.end_object();
    return *this;
  }

  /// The non-zero counter/gauge series of `registry`, keyed by canonical
  /// series name (name{label="v"}).
  SummaryLine& metrics(const obs::MetricsRegistry& registry) {
    w_.key("metrics");
    w_.begin_object();
    for (const auto& [name, value] : registry.scalar_snapshot()) {
      if (value == 0) continue;
      w_.key(name);
      w_.value(static_cast<std::int64_t>(value));
    }
    w_.end_object();
    return *this;
  }

  /// Close the object and print the line to stderr.
  void print() {
    w_.end_object();
    std::fprintf(stderr, "%s\n", w_.view().c_str());
  }

 private:
  JsonWriter w_;
};

/// The fleet flag block shared by mmlpt_survey and mmlpt_fleet. Every
/// field is validated here so the three CLIs cannot drift apart.
struct FleetOptions {
  int jobs = 1;
  double pps = 0.0;
  int burst = 64;
  int window = 1;
  bool merge_windows = false;
  int pipeline_depth = 1;
  probe::TransportKind transport = probe::TransportKind::kAuto;
  StopSetOptions stop_set;
};

inline FleetOptions parse_fleet_options(const Flags& flags) {
  FleetOptions options;
  options.jobs = static_cast<int>(flags.get_int("jobs", 1));
  if (options.jobs < 1) throw ConfigError("--jobs must be >= 1");
  options.pps = flags.get_double("pps", 0.0);
  if (options.pps < 0.0) throw ConfigError("--pps must be >= 0");
  options.burst = static_cast<int>(flags.get_int("burst", 64));
  if (options.burst < 1) throw ConfigError("--burst must be >= 1");
  options.window = parse_window(flags);
  options.merge_windows = flags.get_bool("merge-windows", false);
  options.pipeline_depth = parse_pipeline_depth(flags);
  options.transport = parse_transport(flags);
  options.stop_set = parse_stop_set_options(flags);
  return options;
}

/// The fleet-job spec flag block shared by mmlpt_fleet and mmlpt_client
/// (--destinations/--routes/--family/--algorithm/--distinct/
/// --shared-prefix/--seed/--window): one parser, so a job submitted over
/// the daemon socket means exactly what the same flags mean standalone.
inline daemon::FleetJobSpec parse_job_spec(const Flags& flags) {
  daemon::FleetJobSpec spec;
  if (flags.has("destinations")) {
    spec.labels = read_destination_labels(flags.get("destinations", ""));
    if (spec.labels.empty()) {
      throw ConfigError("--destinations list is empty");
    }
  } else {
    spec.routes = flags.get_uint("routes", 64);
  }
  spec.algorithm = parse_algorithm(flags);
  spec.family = parse_family(flags);
  spec.seed = flags.get_uint("seed", 1);
  spec.distinct = flags.get_uint("distinct", 100);
  spec.shared_prefix = static_cast<int>(flags.get_int("shared-prefix", 0));
  if (spec.shared_prefix < 0) {
    throw ConfigError("--shared-prefix must be >= 0");
  }
  spec.window = parse_window(flags);
  return spec;
}

/// The mmlptd admission/daemon flag block. The fleet block
/// (--jobs/--pps/--burst/--merge-windows) and the stop-set pair are
/// parsed separately with the shared helpers above.
struct DaemonCliOptions {
  std::string socket;
  daemon::AdmissionLimits admission;
  int queue = 4;
};

inline DaemonCliOptions parse_daemon_options(const Flags& flags) {
  DaemonCliOptions options;
  options.socket = flags.get("socket", "");
  if (options.socket.empty()) {
    throw ConfigError("--socket PATH is required");
  }
  options.admission.max_jobs_total =
      static_cast<int>(flags.get_int("max-jobs", 8));
  options.admission.max_jobs_per_tenant =
      static_cast<int>(flags.get_int("max-jobs-per-tenant", 2));
  options.admission.tenant_pps = flags.get_double("tenant-pps", 0.0);
  if (options.admission.tenant_pps < 0.0) {
    throw ConfigError("--tenant-pps must be >= 0");
  }
  options.admission.tenant_burst =
      static_cast<int>(flags.get_int("tenant-burst", 64));
  if (options.admission.tenant_burst < 1) {
    throw ConfigError("--tenant-burst must be >= 1");
  }
  options.queue = static_cast<int>(flags.get_int("queue", 4));
  if (options.queue < 0) throw ConfigError("--queue must be >= 0");
  return options;
}

// ---- shared usage text, generated from one option table ----------------
//
// Each CLI used to carry a hand-wrapped copy of the shared flag help;
// they drifted. Now there is one table per flag block and one formatter,
// and every print_usage() renders from it.

/// One flag's usage entry. `help` holds pre-wrapped lines separated by
/// '\n'; the formatter supplies indentation and column alignment.
struct OptionSpec {
  const char* flag;  ///< flag with its metavariable, e.g. "--jobs N"
  const char* help;
};

/// Render a flag block: two-space indent, help aligned at column
/// `kUsageHelpColumn`, continuation lines indented to the same column.
/// A flag too wide for the column gets its help on the following lines.
inline constexpr std::size_t kUsageHelpColumn = 23;

inline std::string format_option_block(std::span<const OptionSpec> options) {
  std::string out;
  for (const auto& option : options) {
    std::string line = "  ";
    line += option.flag;
    // Keep at least two spaces between flag and help.
    if (line.size() + 2 > kUsageHelpColumn) {
      out += line;
      out += '\n';
      line.assign(kUsageHelpColumn, ' ');
    } else {
      line.append(kUsageHelpColumn - line.size(), ' ');
    }
    std::string_view help = option.help;
    while (!help.empty()) {
      const auto newline = help.find('\n');
      out += line;
      out += help.substr(0, newline);
      out += '\n';
      line.assign(kUsageHelpColumn, ' ');
      if (newline == std::string_view::npos) break;
      help.remove_prefix(newline + 1);
    }
  }
  return out;
}

/// The fleet flag block (--jobs/--window/--pps/--burst/--merge-windows/
/// --fsync).
inline std::span<const OptionSpec> fleet_option_table() {
  static const OptionSpec table[] = {
      {"--jobs N",
       "concurrent trace workers (default 1; results\n"
       "are identical for every N, only wall-clock\n"
       "changes)"},
      {"--window N",
       "per-trace probe window (default 1 = serial\n"
       "probing; output is identical for every N; a\n"
       "window of N costs N rate-limiter tokens, so\n"
       "it composes with --pps/--burst)"},
      {"--pps X",
       "fleet-wide probe rate limit, packets/second\n"
       "(default unlimited)"},
      {"--burst N", "rate-limiter burst capacity (default 64)"},
      {"--merge-windows",
       "merge concurrent traces' committed windows\n"
       "into shared fleet send bursts (one burst\n"
       "serves N tracers; one rate-limiter charge per\n"
       "burst). Output stays byte-identical to the\n"
       "unmerged run"},
      {"--pipeline-depth N",
       "merged bursts that may be in flight at once\n"
       "(default 1 = resolve before the next burst;\n"
       "higher overlaps a new burst with the previous\n"
       "burst's stragglers; output stays byte-identical\n"
       "for every N). Needs --merge-windows"},
      {"--transport T",
       "real-network backend: auto | poll | uring\n"
       "(default auto = io_uring when the kernel\n"
       "supports it, else the poll()-driven raw-socket\n"
       "loop). Explicit uring on a kernel without\n"
       "io_uring is an error; the resolved choice is\n"
       "echoed in the summary"},
      {"--fsync",
       "with --output: fsync after every destination\n"
       "line, so a crash never loses committed\n"
       "results"},
  };
  return table;
}

/// The Doubletree stop-set flag pair (--topology-cache/--stop-set).
inline std::span<const OptionSpec> stop_set_option_table() {
  static const OptionSpec table[] = {
      {"--topology-cache F",
       "persistent topology store backing the\n"
       "Doubletree stop set: loaded at start as a\n"
       "frozen epoch, this run's discoveries appended\n"
       "at exit. Without --stop-set the cache only\n"
       "records (output stays byte-identical)"},
      {"--stop-set",
       "consult the cache: halt forward probing at\n"
       "hops confirmed by earlier runs, trace the\n"
       "near side backward Doubletree-style, and\n"
       "report probes_saved_by_stop_set. Requires\n"
       "--topology-cache"},
  };
  return table;
}

/// The observability flag pair (--metrics-out/--trace-events).
inline std::span<const OptionSpec> obs_option_table() {
  static const OptionSpec table[] = {
      {"--metrics-out F",
       "write the run's Prometheus-text metrics\n"
       "(transport, rate limiter, hub, stop set) to F\n"
       "at exit. Primary output is unchanged"},
      {"--trace-events F",
       "record window/burst spans and per-hop RTT\n"
       "instants; write a Chrome trace-event JSON\n"
       "document to F at exit (load it in\n"
       "chrome://tracing or Perfetto). Primary output\n"
       "is unchanged"},
  };
  return table;
}

/// The fleet-job spec flag block (mmlpt_fleet's trace flags, reused
/// verbatim by mmlpt_client so daemon jobs mean what standalone runs
/// mean).
inline std::span<const OptionSpec> job_spec_option_table() {
  static const OptionSpec table[] = {
      {"--destinations FILE",
       "one label per line (e.g. an IPv4 address);\n"
       "each line becomes one destination task,\n"
       "labelled with that string. Without it,\n"
       "--routes synthetic destinations are generated"},
      {"--routes N", "destination count when no --destinations (64)"},
      {"-6 | --family 4|6",
       "address family of the synthetic world\n"
       "(default IPv4)"},
      {"--algorithm A", "mda | mda-lite | single-flow (default mda-lite)"},
      {"--distinct N", "distinct diamond templates in the world (100)"},
      {"--shared-prefix N",
       "every synthetic route starts with the same N\n"
       "leading routers (default 0 = fully random)"},
      {"--seed N", "world + trace seed (default 1)"},
      {"--window N", "per-trace probe window (default 1 = serial)"},
  };
  return table;
}

/// The mmlptd daemon flag block (--socket plus admission control).
inline std::span<const OptionSpec> daemon_option_table() {
  static const OptionSpec table[] = {
      {"--socket PATH", "unix socket to listen on (required)"},
      {"--max-jobs N",
       "concurrent jobs across all tenants (default 8;\n"
       "0 = unlimited). Excess jobs are REFUSED with a\n"
       "rejected status, never queued daemon-side"},
      {"--max-jobs-per-tenant N",
       "concurrent jobs per tenant identity (default 2;\n"
       "0 = unlimited)"},
      {"--tenant-pps X",
       "per-tenant probe rate limit, layered on the\n"
       "fleet-wide --pps budget (default unlimited)"},
      {"--tenant-burst N", "per-tenant token-bucket burst (default 64)"},
      {"--queue N",
       "jobs a connection may hold queued behind its\n"
       "running one (default 4)"},
  };
  return table;
}

/// The mmlpt_client connection flag block.
inline std::span<const OptionSpec> client_option_table() {
  static const OptionSpec table[] = {
      {"--socket PATH", "mmlptd unix socket to connect to (required)"},
      {"--tenant NAME",
       "tenant identity for admission control and\n"
       "per-tenant rate limits (default \"default\")"},
      {"--output FILE", "JSONL destination (default stdout)"},
      {"--status",
       "print the daemon's machine-parsable status\n"
       "JSON and exit (no job is submitted)"},
      {"--metrics",
       "print the daemon's Prometheus-text metrics\n"
       "exposition and exit (no job is submitted)"},
      {"--cancel-after-lines N",
       "send a cancel after N result lines (testing\n"
       "and demos; default 0 = never)"},
  };
  return table;
}

/// Usage text for the stop-set flags alone (mmlpt_trace).
inline std::string stop_set_options_usage() {
  return format_option_block(stop_set_option_table());
}

/// Usage text for the observability flags (every tracing CLI).
inline std::string obs_options_usage() {
  return format_option_block(obs_option_table());
}

/// Usage text for the full shared fleet flag block, stop-set and
/// observability flags included (mmlpt_survey, mmlpt_fleet).
inline std::string fleet_options_usage() {
  return format_option_block(fleet_option_table()) +
         format_option_block(stop_set_option_table()) +
         format_option_block(obs_option_table());
}

/// Usage text for the fleet-job spec block (mmlpt_client).
inline std::string job_spec_options_usage() {
  return format_option_block(job_spec_option_table());
}

/// Usage text for the daemon flag block (mmlptd).
inline std::string daemon_options_usage() {
  return format_option_block(daemon_option_table());
}

/// Usage text for the client connection flag block (mmlpt_client).
inline std::string client_options_usage() {
  return format_option_block(client_option_table());
}

}  // namespace mmlpt::tools

#endif  // MMLPT_TOOLS_CLI_COMMON_H
