#!/bin/sh
# Run the repo's curated clang-tidy gate (.clang-tidy) over src/ and
# tools/ using the compile database CMake exports. Usage:
#
#   tools/run_clang_tidy.sh [build-dir]   # default: build
#
# Exit status: 0 clean, 1 findings (WarningsAsErrors promotes every
# enabled check), 2 setup problems (no compile database). A host
# without clang-tidy prints a SKIPPED line and exits 0 so the gcc-only
# container stays usable; the static-analysis CI job installs a pinned
# clang-tidy, so skipping cannot hide findings from CI.
set -u

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tidy=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    tidy=$candidate
    break
  fi
done
if [ -z "$tidy" ]; then
  echo "run_clang_tidy: SKIPPED — no clang-tidy on PATH (CI runs the real gate)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile database at $build_dir/compile_commands.json" >&2
  echo "run_clang_tidy: configure first: cmake -B \"$build_dir\" -S \"$repo_root\"" >&2
  exit 2
fi

# The TU list is every first-party source the compile database knows
# about; tests are deliberately out (gtest macros are not this gate's
# battleground) and so are generated/third-party TUs.
sources=$(find "$repo_root/src" "$repo_root/tools" -name '*.cpp' | sort)
count=$(printf '%s\n' "$sources" | wc -l | tr -d ' ')
echo "run_clang_tidy: $tidy over $count translation units"

# xargs -P keeps the run tolerable on big TUs; clang-tidy exits
# non-zero per failing TU and xargs aggregates that into its own
# non-zero status.
if printf '%s\n' "$sources" |
  xargs -P "$(nproc 2>/dev/null || echo 4)" -n 4 \
    "$tidy" --quiet -p "$build_dir"; then
  echo "run_clang_tidy: clean"
else
  echo "run_clang_tidy: findings above — fix them (do not NOLINT without a reason)" >&2
  exit 1
fi
