// mmlpt_fleet — the fleet orchestrator CLI: trace many destinations
// concurrently over the Fakeroute simulator and stream one JSON line per
// destination (JSONL). This is the survey-scale entry point the paper's
// Internet evaluation (~40k destinations) calls for, in reproduction
// form: each destination gets a synthetic route drawn from the Sec. 5.1
// generator, and the fleet engine traces them over a worker pool with an
// optional fleet-wide probe rate limit.
//
// Results are a pure function of (inputs, --seed): --jobs only changes
// wall-clock time, never a byte of output. The trace core is the shared
// daemon::run_fleet_job — the same code path mmlptd serves over its
// socket, which is what makes daemon output byte-identical to this tool.
//
// SIGINT/SIGTERM cancel the run cooperatively: in-flight probes resolve
// through the transport cancel path, committed lines are flushed (and
// fsynced under --fsync), the stop set is written, and the process exits
// 128+signal.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli_common.h"
#include "common/error.h"
#include "common/flags.h"
#include "daemon/fleet_job.h"
#include "daemon/signals.h"
#include "orchestrator/fleet.h"
#include "orchestrator/result_sink.h"
#include "orchestrator/stop_set.h"
#include "probe/cancel.h"

using namespace mmlpt;

namespace {

constexpr const char kUsagePrefix[] =
    "usage: mmlpt_fleet [options]\n"
    "\n"
    "  mmlpt_fleet --routes 64 --jobs 8                 # 8-worker fleet\n"
    "  mmlpt_fleet --destinations dests.txt --jobs 8 --pps 500 \\\n"
    "              --merge-windows --output traces.jsonl --fsync\n"
    "\n"
    "Traces N destinations concurrently over the Fakeroute simulator and\n"
    "streams one JSON line per destination, in destination order:\n"
    "  {\"index\":i,\"destination\":\"a.b.c.d\",\"trace\":{...}}\n"
    "\n"
    "options:\n"
    "  --destinations FILE  one label per line (e.g. an IPv4 address); each\n"
    "                       line becomes one destination task, labelled with\n"
    "                       that string. Without it, --routes synthetic\n"
    "                       destinations are generated.\n"
    "  --routes N           destination count when no --destinations (64)\n"
    "  -6 | --family 4|6    address family of the synthetic world\n"
    "                       (default IPv4; v6 Paris probes vary only the\n"
    "                       flow label)\n";
constexpr const char kUsageSuffix[] =
    "  --algorithm A        mda | mda-lite | single-flow (default mda-lite)\n"
    "  --distinct N         distinct diamond templates in the world (100)\n"
    "  --shared-prefix N    every synthetic route starts with the same N\n"
    "                       leading routers (one vantage point, common\n"
    "                       first hops — the topology where the stop set\n"
    "                       pays off). Default 0 = fully random prefixes\n"
    "  --seed N             world + trace seed (default 1)\n"
    "  --output FILE        JSONL destination (default stdout)\n"
    "  --version            print version and exit\n"
    "\n"
    "One machine-parsable JSON summary line goes to stderr when done:\n"
    "  {\"tool\":\"mmlpt_fleet\",\"destinations\":..,\"packets\":..,\n"
    "   \"stop_set\":{..,\"union_digest\":\"..\"},\"metrics\":{..}}\n"
    "The stop_set object appears with --topology-cache; the metrics\n"
    "object lists the run's non-zero counters from the registry.\n";

void print_usage() {
  std::fputs(kUsagePrefix, stdout);
  std::fputs(tools::fleet_options_usage().c_str(), stdout);
  std::fputs(kUsageSuffix, stdout);
}

int run_fleet(const Flags& flags) {
  const auto spec = tools::parse_job_spec(flags);  // throws on empty list
  const std::size_t count = spec.destination_count();
  const auto fleet_options = tools::parse_fleet_options(flags);
  orchestrator::FleetConfig fleet_config;
  fleet_config.jobs = fleet_options.jobs;
  fleet_config.seed = spec.seed;
  fleet_config.pps = fleet_options.pps;
  fleet_config.burst = fleet_options.burst;
  fleet_config.merge_windows = fleet_options.merge_windows;
  fleet_config.pipeline_depth = fleet_options.pipeline_depth;

  const bool fsync_lines = flags.get_bool("fsync", false);
  if (fsync_lines && !flags.has("output")) {
    throw ConfigError("--fsync requires --output FILE");
  }
  std::ofstream file;
  std::unique_ptr<orchestrator::FdJsonlFile> durable;
  std::ostream* out = &std::cout;
  orchestrator::ResultSink::Options sink_options;
  if (flags.has("output")) {
    const auto path = flags.get("output", "");
    if (fsync_lines) {
      // Durable streaming needs the raw descriptor to fsync per line.
      durable = std::make_unique<orchestrator::FdJsonlFile>(path);
      out = &durable->stream();
      sink_options.fsync_each_line = true;
      sink_options.fd = durable->fd();
    } else {
      file.open(path);
      if (!file) throw SystemError("cannot open --output file: " + path);
      out = &file;
    }
  }
  orchestrator::ResultSink sink(*out, sink_options);

  tools::ObsSession obs(tools::parse_obs_options(flags));
  fleet_config.metrics = &obs.registry();
  orchestrator::StopSetSession stop_set_session(
      fleet_options.stop_set.topology_cache, fleet_options.stop_set.consult);
  stop_set_session.instrument(obs.registry());
  const fakeroute::SimConfig sim_config;
  orchestrator::FleetScheduler fleet(fleet_config);

  // An interrupt fires the token; in-flight probes resolve through the
  // transport cancel path and the run unwinds as CanceledError below.
  auto& shutdown = daemon::ShutdownSignal::install();
  probe::CancelToken cancel;
  shutdown.link(&cancel);

  daemon::FleetJobHooks hooks;
  hooks.on_line = [&](std::size_t i, std::string line) {
    sink.emit(i, std::move(line));
  };
  hooks.cancel = &cancel;

  bool canceled = false;
  daemon::FleetJobCounters counters;
  const auto start = std::chrono::steady_clock::now();
  try {
    counters =
        daemon::run_fleet_job(fleet, &stop_set_session, spec, sim_config,
                              hooks);
  } catch (const probe::CanceledError&) {
    canceled = true;
  }
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start);
  shutdown.link(nullptr);
  // Committed lines survive the interrupt: flush (and fsync) them, then
  // persist the stop set's discoveries, exactly like a clean exit.
  sink.flush();
  if (canceled) {
    std::fprintf(stderr,
                 "mmlpt_fleet: interrupted by signal %d, committed results "
                 "flushed\n",
                 shutdown.signal());
    stop_set_session.flush();
    obs.finish();  // partial artifacts beat none
    return shutdown.exit_code();
  }
  // One machine-parsable summary line (the CI warm-cache gate greps the
  // stop_set fields; the union digest identifies the discovered topology
  // regardless of how discovery was split between cache and probing).
  tools::SummaryLine(
      "mmlpt_fleet")
      .field("destinations", static_cast<std::uint64_t>(count))
      .field("reached", counters.reached)
      .field("packets", counters.packets)
      .field("diamonds", counters.diamonds)
      .field("distinct_diamonds", counters.distinct_diamonds)
      .field("wall_seconds", elapsed.count())
      .field("pps",
             elapsed.count() > 0
                 ? static_cast<double>(counters.packets) / elapsed.count()
                 : 0.0)
      .field("jobs", static_cast<std::int64_t>(fleet_config.jobs))
      .field("transport",
             std::string(
                 probe::resolved_transport_name(fleet_options.transport)))
      .field("pipeline_depth",
             static_cast<std::int64_t>(fleet_config.pipeline_depth))
      .stop_set(stop_set_session, counters.probes_saved_by_stop_set,
                counters.traces_stopped)
      .metrics(obs.registry())
      .print();
  stop_set_session.flush();
  obs.finish();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (tools::handle_version(flags, "mmlpt_fleet")) return 0;
    return run_fleet(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlpt_fleet: %s\n", e.what());
    return 1;
  }
}
