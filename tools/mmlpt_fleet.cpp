// mmlpt_fleet — the fleet orchestrator CLI: trace many destinations
// concurrently over the Fakeroute simulator and stream one JSON line per
// destination (JSONL). This is the survey-scale entry point the paper's
// Internet evaluation (~40k destinations) calls for, in reproduction
// form: each destination gets a synthetic route drawn from the Sec. 5.1
// generator, and the fleet engine traces them over a worker pool with an
// optional fleet-wide probe rate limit.
//
// Results are a pure function of (inputs, --seed): --jobs only changes
// wall-clock time, never a byte of output.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.h"
#include "common/error.h"
#include "common/flags.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "orchestrator/fleet.h"
#include "orchestrator/result_sink.h"
#include "orchestrator/stop_set.h"
#include "survey/accounting.h"
#include "survey/ip_survey.h"
#include "survey/route_feeder.h"
#include "topology/generator.h"
#include "topology/metrics.h"

using namespace mmlpt;

namespace {

constexpr const char kUsagePrefix[] =
    "usage: mmlpt_fleet [options]\n"
    "\n"
    "  mmlpt_fleet --routes 64 --jobs 8                 # 8-worker fleet\n"
    "  mmlpt_fleet --destinations dests.txt --jobs 8 --pps 500 \\\n"
    "              --merge-windows --output traces.jsonl --fsync\n"
    "\n"
    "Traces N destinations concurrently over the Fakeroute simulator and\n"
    "streams one JSON line per destination, in destination order:\n"
    "  {\"index\":i,\"destination\":\"a.b.c.d\",\"trace\":{...}}\n"
    "\n"
    "options:\n"
    "  --destinations FILE  one label per line (e.g. an IPv4 address); each\n"
    "                       line becomes one destination task, labelled with\n"
    "                       that string. Without it, --routes synthetic\n"
    "                       destinations are generated.\n"
    "  --routes N           destination count when no --destinations (64)\n"
    "  -6 | --family 4|6    address family of the synthetic world\n"
    "                       (default IPv4; v6 Paris probes vary only the\n"
    "                       flow label)\n";
constexpr const char kUsageSuffix[] =
    "  --algorithm A        mda | mda-lite | single-flow (default mda-lite)\n"
    "  --distinct N         distinct diamond templates in the world (100)\n"
    "  --shared-prefix N    every synthetic route starts with the same N\n"
    "                       leading routers (one vantage point, common\n"
    "                       first hops — the topology where the stop set\n"
    "                       pays off). Default 0 = fully random prefixes\n"
    "  --seed N             world + trace seed (default 1)\n"
    "  --output FILE        JSONL destination (default stdout)\n"
    "  --version            print version and exit\n"
    "\n"
    "A summary line (destinations, packets, wall seconds, effective pps)\n"
    "goes to stderr when done; with --topology-cache a second stop-set\n"
    "line reports cache size, discoveries, savings and the union digest.\n";

void print_usage() {
  std::fputs(kUsagePrefix, stdout);
  std::fputs(tools::fleet_options_usage().c_str(), stdout);
  std::fputs(kUsageSuffix, stdout);
}

std::vector<std::string> read_destination_labels(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw SystemError("cannot open --destinations file: " + path);
  std::vector<std::string> labels;
  std::string line;
  while (std::getline(in, line)) {
    // Trim trailing CR (CRLF lists) and skip blanks/comments.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    labels.push_back(line);
  }
  return labels;
}

core::Algorithm parse_algorithm(const std::string& name) {
  if (name == "mda") return core::Algorithm::kMda;
  if (name == "mda-lite") return core::Algorithm::kMdaLite;
  if (name == "single-flow") return core::Algorithm::kSingleFlow;
  throw ContractViolation("unknown --algorithm (mda|mda-lite|single-flow): " +
                          name);
}

int run_fleet(const Flags& flags) {
  std::vector<std::string> labels;
  std::size_t count = 0;
  if (flags.has("destinations")) {
    labels = read_destination_labels(flags.get("destinations", ""));
    count = labels.size();
    if (count == 0) {
      std::fprintf(stderr, "mmlpt_fleet: destination list is empty\n");
      return 1;
    }
  } else {
    count = flags.get_uint("routes", 64);
  }

  const auto algorithm = parse_algorithm(flags.get("algorithm", "mda-lite"));
  const auto seed = flags.get_uint("seed", 1);
  const auto fleet_options = tools::parse_fleet_options(flags);
  orchestrator::FleetConfig fleet_config;
  fleet_config.jobs = fleet_options.jobs;
  fleet_config.seed = seed;
  fleet_config.pps = fleet_options.pps;
  fleet_config.burst = fleet_options.burst;
  fleet_config.merge_windows = fleet_options.merge_windows;

  // The synthetic world, one route per destination — generated lazily in
  // task order a window ahead of the tracers and released after each
  // merge, so live routes track the in-flight window.
  topo::GeneratorConfig generator;
  generator.family = tools::parse_family(flags);
  generator.shared_prefix_hops =
      static_cast<int>(flags.get_int("shared-prefix", 0));
  if (generator.shared_prefix_hops < 0) {
    throw ConfigError("--shared-prefix must be >= 0");
  }
  topo::SurveyWorld world(generator, flags.get_uint("distinct", 100), seed);
  survey::RouteFeeder feeder(world, count);

  const bool fsync_lines = flags.get_bool("fsync", false);
  if (fsync_lines && !flags.has("output")) {
    throw ConfigError("--fsync requires --output FILE");
  }
  std::ofstream file;
  std::unique_ptr<orchestrator::FdJsonlFile> durable;
  std::ostream* out = &std::cout;
  orchestrator::ResultSink::Options sink_options;
  if (flags.has("output")) {
    const auto path = flags.get("output", "");
    if (fsync_lines) {
      // Durable streaming needs the raw descriptor to fsync per line.
      durable = std::make_unique<orchestrator::FdJsonlFile>(path);
      out = &durable->stream();
      sink_options.fsync_each_line = true;
      sink_options.fd = durable->fd();
    } else {
      file.open(path);
      if (!file) throw SystemError("cannot open --output file: " + path);
      out = &file;
    }
  }
  orchestrator::ResultSink sink(*out, sink_options);

  core::TraceConfig trace_config;
  trace_config.window = fleet_options.window;
  orchestrator::StopSetSession stop_set_session(
      fleet_options.stop_set.topology_cache, fleet_options.stop_set.consult);
  stop_set_session.configure(trace_config);
  const fakeroute::SimConfig sim_config;
  orchestrator::FleetScheduler fleet(fleet_config);

  std::uint64_t packets = 0;
  std::uint64_t reached = 0;
  std::uint64_t probes_saved = 0;
  std::uint64_t traces_stopped = 0;
  survey::DiamondAccounting accounting(2);

  const auto start = std::chrono::steady_clock::now();
  fleet.run_streaming(
      count,
      [&](orchestrator::WorkerContext& context) {
        return survey::trace_route_task(
            feeder.route(context.task_index), algorithm, trace_config,
            sim_config, survey::ip_trace_seed(seed, context.task_index),
            context.limiter, context.hub);
      },
      [&](std::size_t i, core::TraceResult& trace) {
        const std::string label =
            labels.empty() ? feeder.route(i).destination.to_string()
                           : labels[i];
        sink.emit(i, orchestrator::destination_line(
                         i, label, core::stop_set_envelope_fields(trace),
                         "trace", core::trace_to_json(trace)));
        packets += trace.packets;
        if (trace.reached_destination) ++reached;
        probes_saved += trace.probes_saved_by_stop_set;
        if (trace.stop_set_active && trace.stopped_on_hit) ++traces_stopped;
        accounting.record_all(trace.graph);
        feeder.release(i);
      });
  const auto elapsed = std::chrono::duration_cast<std::chrono::duration<double>>(
      std::chrono::steady_clock::now() - start);
  sink.flush();
  std::fprintf(
      stderr,
      "mmlpt_fleet: %zu destinations (%llu reached), %llu packets, "
      "%llu diamonds (%llu distinct), %.2fs wall, %.0f pkt/s, jobs=%d\n",
      count, static_cast<unsigned long long>(reached),
      static_cast<unsigned long long>(packets),
      static_cast<unsigned long long>(accounting.measured().total),
      static_cast<unsigned long long>(accounting.distinct().total),
      elapsed.count(),
      elapsed.count() > 0 ? static_cast<double>(packets) / elapsed.count()
                          : 0.0,
      fleet_config.jobs);
  if (const auto* stop_set = stop_set_session.stop_set()) {
    // Machine-parsable (the CI warm-cache gate greps these key=value
    // pairs); the digest identifies the discovered topology regardless
    // of how discovery was split between cache and probing.
    std::fprintf(
        stderr,
        "mmlpt_fleet: stop-set visible_hops=%zu pending_hops=%zu "
        "probes_saved=%llu stopped=%llu union_digest=%016llx\n",
        stop_set->visible_hop_count(), stop_set->pending_hop_count(),
        static_cast<unsigned long long>(probes_saved),
        static_cast<unsigned long long>(traces_stopped),
        static_cast<unsigned long long>(stop_set->union_digest()));
  }
  stop_set_session.flush();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (tools::handle_version(flags, "mmlpt_fleet")) return 0;
    return run_fleet(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlpt_fleet: %s\n", e.what());
    return 1;
  }
}
