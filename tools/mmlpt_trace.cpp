// mmlpt_trace — the command-line Multilevel MDA-Lite Paris Traceroute.
//
// The tool the paper describes: a traceroute that discovers the full
// load-balanced topology (MDA-Lite, with MDA and single-flow modes) and,
// with --multilevel, resolves which interfaces belong to one router
// while tracing.
//
// See kUsage below (printed by --help) for the invocation examples and
// the full option list.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "cli_common.h"
#include "common/flags.h"
#include "core/multilevel.h"
#include "core/single_flow.h"
#include "core/trace_json.h"
#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "orchestrator/stop_set.h"
#include "probe/raw_socket_network.h"
#include "probe/simulated_network.h"
#include "topology/generator.h"
#include "topology/reference.h"
#include "topology/serialize.h"

using namespace mmlpt;

namespace {

constexpr const char kUsage[] =
    "usage: mmlpt_trace [options]\n"
    "\n"
    "  mmlpt_trace --builtin fig1                 # simulated reference "
    "diamond\n"
    "  mmlpt_trace --topology net.topo --json     # topology file, JSON "
    "output\n"
    "  mmlpt_trace --generate --seed 9 --multilevel --rounds 10\n"
    "  mmlpt_trace -6 --builtin fig1 --json       # IPv6 (flow-label "
    "Paris)\n"
    "  sudo mmlpt_trace --real --destination 93.184.216.34   # raw sockets\n"
    "\n"
    "options:\n"
    "  -6 | --family 4|6             address family (default IPv4). On\n"
    "                                IPv6 the Paris flow identifier is\n"
    "                                the 20-bit flow label; alias\n"
    "                                resolution reports\n"
    "                                \"unsupported-family\" (no IP-ID)\n"
    "  --algorithm mda|lite|single   (default lite)\n"
    "  --alpha A --branching B       failure bound (default 0.05 / 30)\n"
    "  --phi N                       MDA-Lite meshing-test effort (default "
    "2)\n"
    "  --window N                    in-flight probe window per batched\n"
    "                                round trip (default 1 = serial; the\n"
    "                                topology, packet counts and JSON are\n"
    "                                identical for every N — larger windows\n"
    "                                only collapse RTT waits)\n"
    "  --builtin NAME                simplest fig1 fig1-meshed wide\n"
    "                                symmetric asymmetric meshed\n"
    "  --topology FILE               trace a .topo file in the simulator\n"
    "  --generate                    trace a generated random route\n"
    "  --multilevel [--rounds N]     alias resolution while tracing\n"
    "  --json                        machine-readable output\n"
    "  --seed N                      simulator / generator seed\n"
    "  --real --destination IP       raw sockets (needs CAP_NET_RAW)\n"
    "  --source IP                   source address for --real (default\n"
    "                                0.0.0.0; IPv6 requires an explicit\n"
    "                                source)\n"
    "  --transport T                 auto | poll | uring backend for\n"
    "                                --real (default auto; the resolved\n"
    "                                choice is echoed in the JSON summary\n"
    "                                line on stderr)\n";

constexpr const char kUsageSuffix[] =
    "  --version            print version and exit\n";

void print_usage() {
  std::fputs(kUsage, stdout);
  std::fputs(tools::stop_set_options_usage().c_str(), stdout);
  std::fputs(tools::obs_options_usage().c_str(), stdout);
  std::fputs(kUsageSuffix, stdout);
}

topo::MultipathGraph builtin_topology(const std::string& name) {
  if (name == "simplest") return topo::simplest_diamond();
  if (name == "fig1") return topo::fig1_unmeshed();
  if (name == "fig1-meshed") return topo::fig1_meshed();
  if (name == "wide") return topo::max_length_2_diamond();
  if (name == "symmetric") return topo::symmetric_diamond();
  if (name == "asymmetric") return topo::asymmetric_diamond();
  if (name == "meshed") return topo::meshed_diamond();
  throw ConfigError("unknown builtin topology '" + name +
                    "' (try: simplest fig1 fig1-meshed wide symmetric "
                    "asymmetric meshed)");
}

topo::GroundTruth load_ground_truth(const Flags& flags, net::Family family) {
  const auto seed = flags.get_uint("seed", 1);
  if (flags.has("topology")) {
    std::ifstream in(flags.get("topology", ""));
    if (!in) throw ConfigError("cannot open topology file");
    std::ostringstream text;
    text << in.rdbuf();
    auto truth = core::plain_ground_truth(topo::deserialize(text.str()));
    // The file's literals pick the family; an explicit flag must agree.
    if ((flags.has("family") || family == net::Family::kIpv6) &&
        truth.destination.family() != family) {
      throw ConfigError("--family disagrees with the topology file's "
                        "address family");
    }
    return truth;
  }
  if (flags.get_bool("generate", false)) {
    topo::GeneratorConfig config;
    config.family = family;
    topo::RouteGenerator generator(config, seed);
    return generator.make_route();
  }
  const auto name = flags.get("builtin", "fig1");
  auto graph = topo::prepend_source(builtin_topology(name),
                                    net::Ipv4Address(192, 168, 0, 1));
  if (family == net::Family::kIpv6) graph = topo::map_to_ipv6(graph);
  return core::plain_ground_truth(std::move(graph));
}

void print_text_trace(const core::TraceResult& result) {
  const auto& g = result.graph;
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    std::printf("%3d ", h);
    const auto vertices = g.vertices_at(h);
    if (vertices.empty()) {
      std::printf(" *\n");
      continue;
    }
    for (const auto v : vertices) {
      std::printf(" %s", g.vertex(v).addr.to_string().c_str());
    }
    std::printf("\n");
  }
  std::printf("# %llu packets%s%s%s\n",
              static_cast<unsigned long long>(result.packets),
              result.reached_destination ? "" : " (destination not reached)",
              result.switched_to_mda ? ", switched to full MDA" : "",
              result.stopped_on_hit ? ", stopped on stop-set hit" : "");
}

void print_text_multilevel(const core::MultilevelResult& result) {
  std::printf("== IP level ==\n");
  print_text_trace(result.trace);
  if (!result.alias_supported) {
    std::printf(
        "# alias resolution: unsupported-family (IPv6 has no IP-ID)\n");
  }
  std::printf("\n== router level ==\n");
  const auto& g = result.router_graph;
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    std::printf("%3d ", h);
    for (const auto v : g.vertices_at(h)) {
      std::printf(" %s", g.vertex(v).addr.to_string().c_str());
    }
    std::printf("\n");
  }
  for (const auto& [hop, sets] : result.final_round().sets_by_hop) {
    for (const auto& set : sets) {
      if (set.outcome != alias::Outcome::kAccept) continue;
      std::printf("# hop %d router:", hop);
      for (const auto a : set.members) {
        std::printf(" %s", a.to_string().c_str());
      }
      std::printf("\n");
    }
  }
  std::printf("# %llu packets total\n",
              static_cast<unsigned long long>(result.total_packets));
}

int run(const Flags& flags) {
  // has(), not get_bool(): "--help <positional>" must still print usage.
  if (flags.has("help")) {
    print_usage();
    return 0;
  }
  if (tools::handle_version(flags, "mmlpt_trace")) return 0;
  const net::Family family = tools::parse_family(flags);
  core::TraceConfig trace_config;
  trace_config.alpha = flags.get_double("alpha", 0.05);
  trace_config.max_branching =
      static_cast<int>(flags.get_int("branching", 30));
  trace_config.phi = static_cast<int>(flags.get_int("phi", 2));
  trace_config.window = tools::parse_window(flags);
  const auto stop_set_options = tools::parse_stop_set_options(flags);
  orchestrator::StopSetSession stop_set_session(
      stop_set_options.topology_cache, stop_set_options.consult);
  stop_set_session.configure(trace_config);
  tools::ObsSession obs(tools::parse_obs_options(flags));
  stop_set_session.instrument(obs.registry());

  const auto algorithm_name = flags.get("algorithm", "lite");
  core::Algorithm algorithm = core::Algorithm::kMdaLite;
  if (algorithm_name == "mda") algorithm = core::Algorithm::kMda;
  else if (algorithm_name == "single") algorithm = core::Algorithm::kSingleFlow;
  else if (algorithm_name != "lite") {
    throw ConfigError("unknown --algorithm (mda|lite|single)");
  }

  const bool json = flags.get_bool("json", false);

  // Transport: raw sockets (--real) or the Fakeroute simulator. The
  // --transport value is validated even in simulator mode so a typo is
  // caught before a run that would silently ignore it.
  const auto transport = tools::parse_transport(flags);
  std::unique_ptr<probe::Network> network;
  std::unique_ptr<fakeroute::Simulator> simulator;
  probe::ProbeEngine::Config engine_config;
  topo::GroundTruth truth;
  if (flags.get_bool("real", false)) {
    const bool v6 = family == net::Family::kIpv6;
    engine_config.source = net::IpAddress::parse_or_throw(
        flags.get("source", v6 ? "::" : "0.0.0.0"));
    engine_config.destination = net::IpAddress::parse_or_throw(
        flags.get("destination", ""));
    if (engine_config.destination.family() != family) {
      throw ConfigError("--destination family disagrees with --family");
    }
    if (engine_config.source.family() != family) {
      throw ConfigError("--source family disagrees with --family");
    }
    if (v6 && engine_config.source.is_unspecified()) {
      throw ConfigError("--real -6 needs an explicit --source address "
                        "(IPv6 raw probes carry the crafted source)");
    }
    network = probe::make_transport(
        transport, family, probe::RawSocketNetwork::Config{}.reply_timeout,
        &obs.registry());
  } else {
    truth = load_ground_truth(flags, family);
    simulator = std::make_unique<fakeroute::Simulator>(
        truth, fakeroute::SimConfig{}, flags.get_uint("seed", 1));
    network = std::make_unique<probe::SimulatedNetwork>(*simulator);
    engine_config.source = truth.source;
    engine_config.destination = truth.destination;
  }
  engine_config.metrics = &obs.registry();
  probe::ProbeEngine engine(*network, engine_config);

  // The shared machine-parsable summary (replaces the old bare
  // "transport=..." stderr echo): transport choice, packet count, the
  // stop-set object when a cache is in use, and non-zero counters.
  const bool real = flags.get_bool("real", false);
  const auto print_summary = [&](std::uint64_t packets,
                                 std::uint64_t probes_saved,
                                 std::uint64_t traces_stopped) {
    tools::SummaryLine("mmlpt_trace")
        .field("transport",
               real ? std::string(probe::resolved_transport_name(transport))
                    : std::string("sim"))
        .field("packets", packets)
        .stop_set(stop_set_session, probes_saved, traces_stopped)
        .metrics(obs.registry())
        .print();
  };

  if (flags.get_bool("multilevel", false)) {
    core::MultilevelConfig config;
    config.trace = trace_config;
    config.rounds = static_cast<int>(flags.get_int("rounds", 10));
    core::MultilevelTracer tracer(engine, config);
    const auto result = tracer.run();
    if (json) {
      std::printf("%s\n", core::multilevel_to_json(result).c_str());
    } else {
      print_text_multilevel(result);
    }
    print_summary(result.total_packets,
                  result.trace.probes_saved_by_stop_set,
                  result.trace.stopped_on_hit ? 1 : 0);
    stop_set_session.flush();
    obs.finish();
    return 0;
  }

  core::TraceResult result;
  switch (algorithm) {
    case core::Algorithm::kMda:
      result = core::MdaTracer(engine, trace_config).run();
      break;
    case core::Algorithm::kMdaLite:
      result = core::MdaLiteTracer(engine, trace_config).run();
      break;
    case core::Algorithm::kSingleFlow:
      result = core::SingleFlowTracer(engine, trace_config).run();
      break;
  }
  if (json) {
    std::printf("%s\n", core::trace_to_json(result).c_str());
  } else {
    print_text_trace(result);
  }
  print_summary(result.packets, result.probes_saved_by_stop_set,
                result.stopped_on_hit ? 1 : 0);
  stop_set_session.flush();
  obs.finish();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(Flags(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlpt_trace: %s\n", e.what());
    return 1;
  }
}
