// mmlptd — the measurement daemon. One privileged process owns the
// probing stack (fleet scheduler, fleet-wide rate limiter, window-merge
// hub, Doubletree stop set) and serves trace jobs to many cheap
// unprivileged clients over a framed unix-socket protocol. Clients get
// byte-identical JSONL to a standalone `mmlpt_fleet --jobs 1` run with
// the same job flags; the daemon adds admission control, per-tenant rate
// limits and mid-trace cancellation on top.
//
// SIGINT/SIGTERM drain-and-exit: stop accepting, let running jobs
// finish, flush the stop set, exit 0.
#include <cerrno>
#include <cstdio>

#include <poll.h>

#include "cli_common.h"
#include "common/error.h"
#include "common/flags.h"
#include "daemon/server.h"
#include "daemon/signals.h"

using namespace mmlpt;

namespace {

constexpr const char kUsagePrefix[] =
    "usage: mmlptd --socket PATH [options]\n"
    "\n"
    "  mmlptd --socket /tmp/mmlptd.sock --jobs 8 --pps 500 \\\n"
    "         --max-jobs 16 --tenant-pps 100 &\n"
    "  mmlpt_client --socket /tmp/mmlptd.sock --routes 64\n"
    "\n"
    "One daemon process owns the fleet scheduler, the fleet-wide rate\n"
    "limiter and the Doubletree stop set; clients submit jobs over the\n"
    "socket and stream back JSONL byte-identical to `mmlpt_fleet --jobs 1`\n"
    "with the same flags.\n"
    "\n"
    "options:\n";
constexpr const char kUsageSuffix[] =
    "  --version            print version and exit\n"
    "\n"
    "The fleet flags (--jobs/--pps/--burst/--merge-windows) shape the\n"
    "SHARED scheduler: --pps bounds the sum of all tenants' probe\n"
    "traffic. --topology-cache/--stop-set install one shared stop set;\n"
    "discoveries are flushed to the store at shutdown.\n";

void print_usage() {
  std::fputs(kUsagePrefix, stdout);
  std::fputs(tools::daemon_options_usage().c_str(), stdout);
  std::fputs(tools::format_option_block(tools::fleet_option_table()).c_str(),
             stdout);
  std::fputs(tools::stop_set_options_usage().c_str(), stdout);
  std::fputs(kUsageSuffix, stdout);
}

int run_daemon(const Flags& flags) {
  const auto options = tools::parse_daemon_options(flags);
  const auto fleet_options = tools::parse_fleet_options(flags);

  daemon::DaemonConfig config;
  config.socket_path = options.socket;
  config.fleet.jobs = fleet_options.jobs;
  config.fleet.pps = fleet_options.pps;
  config.fleet.burst = fleet_options.burst;
  config.fleet.merge_windows = fleet_options.merge_windows;
  config.fleet.pipeline_depth = fleet_options.pipeline_depth;
  config.transport = fleet_options.transport;
  config.admission = options.admission;
  config.topology_cache = fleet_options.stop_set.topology_cache;
  config.consult_stop_set = fleet_options.stop_set.consult;
  config.max_queued_jobs_per_connection = options.queue;

  // Install the handlers BEFORE the listener exists so there is no
  // window where a signal kills us with the socket file left behind.
  auto& shutdown = daemon::ShutdownSignal::install();

  daemon::Daemon daemon(config);
  daemon.start();
  std::fprintf(stderr,
               "mmlptd: listening on %s (workers=%d, pps=%.0f, "
               "max_jobs=%d, max_jobs_per_tenant=%d, transport=%s, "
               "pipeline_depth=%d)\n",
               config.socket_path.c_str(), config.fleet.jobs,
               config.fleet.pps, config.admission.max_jobs_total,
               config.admission.max_jobs_per_tenant,
               std::string(probe::resolved_transport_name(config.transport))
                   .c_str(),
               config.fleet.pipeline_depth);

  struct pollfd signal_fd = {shutdown.fd(), POLLIN, 0};
  while (::poll(&signal_fd, 1, -1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "mmlptd: signal %d, draining and exiting\n",
               shutdown.signal());
  daemon.stop();  // drain running jobs, flush the stop set, unlink socket
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    if (flags.has("help")) {
      print_usage();
      return 0;
    }
    if (tools::handle_version(flags, "mmlptd")) return 0;
    return run_daemon(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mmlptd: %s\n", e.what());
    return 1;
  }
}
