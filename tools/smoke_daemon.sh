#!/bin/sh
# Daemon smoke: start mmlptd on a temp socket, run three concurrent
# clients (v4, v4 with a different seed, v6), require each client's JSONL
# to be byte-identical to a standalone `mmlpt_fleet --jobs 1` run with
# the same job flags, then SIGTERM the daemon and require a clean
# drain-and-exit (exit code 0).
#
# usage: smoke_daemon.sh MMLPTD MMLPT_CLIENT MMLPT_FLEET WORKDIR
set -eu

MMLPTD="$1"
CLIENT="$2"
FLEET="$3"
WORK="$4"

rm -rf "$WORK"
mkdir -p "$WORK"
SOCK="$WORK/mmlptd.sock"

"$MMLPTD" --socket "$SOCK" --jobs 4 --max-jobs 8 2>"$WORK/daemon.log" &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2>/dev/null || true' EXIT

# Wait for the socket to appear (the daemon binds before serving).
tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "FAIL: daemon socket never appeared" >&2
    cat "$WORK/daemon.log" >&2
    exit 1
  fi
  sleep 0.1
done

# Three concurrent clients with distinct job specs (both families).
"$CLIENT" --socket "$SOCK" --tenant a --routes 12 --distinct 6 --seed 5 \
  --output "$WORK/client_a.jsonl" 2>"$WORK/client_a.log" &
A=$!
"$CLIENT" --socket "$SOCK" --tenant b --routes 10 --distinct 6 --seed 9 \
  --output "$WORK/client_b.jsonl" 2>"$WORK/client_b.log" &
B=$!
"$CLIENT" --socket "$SOCK" --tenant c --routes 8 --distinct 6 --seed 5 \
  --family 6 --output "$WORK/client_c.jsonl" 2>"$WORK/client_c.log" &
C=$!
wait "$A"
wait "$B"
wait "$C"

# Byte-identity: the daemon serves the same run_fleet_job core as the
# standalone CLI, so the JSONL must match bit for bit.
"$FLEET" --routes 12 --distinct 6 --seed 5 --jobs 1 \
  --output "$WORK/ref_a.jsonl" 2>/dev/null
"$FLEET" --routes 10 --distinct 6 --seed 9 --jobs 1 \
  --output "$WORK/ref_b.jsonl" 2>/dev/null
"$FLEET" --routes 8 --distinct 6 --seed 5 --family 6 --jobs 1 \
  --output "$WORK/ref_c.jsonl" 2>/dev/null
cmp "$WORK/client_a.jsonl" "$WORK/ref_a.jsonl"
cmp "$WORK/client_b.jsonl" "$WORK/ref_b.jsonl"
cmp "$WORK/client_c.jsonl" "$WORK/ref_c.jsonl"

# Status must be observable and machine-parsable.
"$CLIENT" --socket "$SOCK" --status > "$WORK/status.json"
grep -q '"jobs_admitted":3' "$WORK/status.json"
grep -q '"tenants":' "$WORK/status.json"

# Clean drain-and-exit on SIGTERM.
kill -TERM "$DAEMON_PID"
rc=0
wait "$DAEMON_PID" || rc=$?
trap - EXIT
if [ "$rc" -ne 0 ]; then
  echo "FAIL: daemon exited $rc after SIGTERM" >&2
  cat "$WORK/daemon.log" >&2
  exit 1
fi
if [ -S "$SOCK" ]; then
  echo "FAIL: daemon left its socket behind" >&2
  exit 1
fi
echo "PASS: 3 concurrent clients byte-identical, daemon drained cleanly"
