#include "core/stopping_points.h"

#include <cmath>

#include "common/assert.h"
#include "common/stats.h"

namespace mmlpt::core {

StoppingPoints::StoppingPoints(double epsilon) : epsilon_(epsilon) {
  MMLPT_EXPECTS(epsilon > 0.0 && epsilon < 1.0);
  cache_.assign(1, 0);
}

StoppingPoints StoppingPoints::from_epsilon(double epsilon) {
  return StoppingPoints(epsilon);
}

StoppingPoints StoppingPoints::for_global(double alpha, int max_branching) {
  MMLPT_EXPECTS(alpha > 0.0 && alpha < 1.0);
  MMLPT_EXPECTS(max_branching >= 1);
  const double eps =
      1.0 - std::pow(1.0 - alpha, 1.0 / static_cast<double>(max_branching));
  return StoppingPoints(eps);
}

StoppingPoints StoppingPoints::veitch_table1() { return for_global(0.05, 13); }

double StoppingPoints::miss_probability(int n, int successor_count) {
  MMLPT_EXPECTS(n >= 0 && successor_count >= 1);
  const int K = successor_count;
  // Fewer probes than successors cannot cover them all; answering this
  // exactly also sidesteps the alternating sum's cancellation there.
  if (n < K) return 1.0;
  if (K == 1) return 0.0;
  double p = 0.0;
  for (int j = 1; j < K; ++j) {
    const double term =
        binomial(static_cast<unsigned>(K), static_cast<unsigned>(j)) *
        std::pow(1.0 - static_cast<double>(j) / K, n);
    p += (j % 2 == 1) ? term : -term;
  }
  return std::min(1.0, std::max(0.0, p));
}

int StoppingPoints::n(int k) const {
  MMLPT_EXPECTS(k >= 1);
  while (static_cast<int>(cache_.size()) <= k) {
    const int next_k = static_cast<int>(cache_.size());
    // n_k grows roughly linearly in k; start the scan from the previous
    // value (n_k is non-decreasing in k).
    int n = next_k >= 2 ? cache_[next_k - 1] : 1;
    while (miss_probability(n, next_k + 1) > epsilon_) ++n;
    cache_.push_back(n);
  }
  return cache_[static_cast<std::size_t>(k)];
}

std::vector<int> StoppingPoints::table(int count) const {
  MMLPT_EXPECTS(count >= 1);
  std::vector<int> out(static_cast<std::size_t>(count) + 1, 0);
  for (int k = 1; k <= count; ++k) out[static_cast<std::size_t>(k)] = n(k);
  return out;
}

}  // namespace mmlpt::core
