// MDA-Lite (Sec. 2.3): hop-by-hop vertex discovery without node control,
// deterministic edge completion, a phi-probe meshing test, a topological
// non-uniformity (width asymmetry) test, and switch-over to the full MDA
// when either test fires.
#ifndef MMLPT_CORE_MDA_LITE_H
#define MMLPT_CORE_MDA_LITE_H

#include <algorithm>
#include <optional>
#include <span>

#include "core/flow_cache.h"
#include "core/mda.h"
#include "core/stopping_points.h"
#include "core/trace_log.h"

namespace mmlpt::core {

class MdaLiteTracer {
 public:
  MdaLiteTracer(probe::ProbeEngine& engine, TraceConfig config,
                ReplyObserver* observer = nullptr);

  [[nodiscard]] TraceResult run();

 private:
  /// Discover the vertices at hop `h` without node control, reusing flow
  /// identifiers from hop h-1 first (Sec. 2.3.1). Returns true when the
  /// destination is the only vertex at the hop.
  bool scan_hop(FlowCache& cache, DiscoveryRecorder& recorder, int h);

  /// Deterministic edge completion for the hop pair (h-1, h).
  void complete_edges(FlowCache& cache, DiscoveryRecorder& recorder, int h);

  /// Sec. 2.3.2 meshing test for the pair (h-1, h); returns true when
  /// meshing is detected (switch to the MDA).
  bool meshing_detected(FlowCache& cache, DiscoveryRecorder& recorder, int h);

  /// Sec. 2.3.3 width-asymmetry test for the pair (h-1, h); purely
  /// topological, no probes.
  [[nodiscard]] bool asymmetry_detected(const DiscoveryRecorder& recorder,
                                        int h) const;

  /// Gather at least `needed` flows through `vertex` at `ttl` (light node
  /// control for the meshing test). Returns what it could get.
  std::vector<FlowId> gather_flows_through(FlowCache& cache,
                                           DiscoveryRecorder& recorder,
                                           int ttl, net::Ipv4Address vertex,
                                           int needed);

  /// Prefetch (flow, ttl) for every flow, in window-sized batches.
  void prefetch_windowed(FlowCache& cache, std::span<const FlowId> flows,
                         int ttl);

  [[nodiscard]] std::size_t window_size() const noexcept {
    return static_cast<std::size_t>(std::max(1, config_.window));
  }

  probe::ProbeEngine* engine_;
  TraceConfig config_;
  StoppingPoints stopping_;
  ReplyObserver* observer_;
  std::uint64_t meshing_test_probes_ = 0;
  std::uint64_t node_control_probes_ = 0;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_MDA_LITE_H
