// JSON export of trace results — the stable machine-readable output a
// downstream pipeline (or the paper's public-dataset format) consumes.
#ifndef MMLPT_CORE_TRACE_JSON_H
#define MMLPT_CORE_TRACE_JSON_H

#include <string>

#include "core/multilevel.h"
#include "core/trace_log.h"
#include "topology/graph.h"

namespace mmlpt::core {

/// Multipath graph as {"hops": [[{"addr":..., "successors":[...]}]]}.
[[nodiscard]] std::string graph_to_json(const topo::MultipathGraph& graph);

/// Full trace result: graph, packet count, flags, discovery events.
[[nodiscard]] std::string trace_to_json(const TraceResult& result);

/// Multilevel result: IP graph, router graph, per-round alias sets.
[[nodiscard]] std::string multilevel_to_json(const MultilevelResult& result);

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_TRACE_JSON_H
