// JSON export of trace results — the stable machine-readable output a
// downstream pipeline (or the paper's public-dataset format) consumes.
#ifndef MMLPT_CORE_TRACE_JSON_H
#define MMLPT_CORE_TRACE_JSON_H

#include <string>

#include "core/multilevel.h"
#include "core/trace_log.h"
#include "topology/graph.h"

namespace mmlpt::core {

/// Multipath graph as {"hops": [[{"addr":..., "successors":[...]}]]}.
[[nodiscard]] std::string graph_to_json(const topo::MultipathGraph& graph);

/// Full trace result: graph, packet count, flags, discovery events.
[[nodiscard]] std::string trace_to_json(const TraceResult& result);

/// Multilevel result: IP graph, router graph, per-round alias sets.
[[nodiscard]] std::string multilevel_to_json(const MultilevelResult& result);

/// JSONL destination-envelope fragment with the stop-set probe
/// accounting: `"probes_sent":N,"probes_saved_by_stop_set":M`. Empty when
/// the trace ran without a consulted stop set — the keys are only present
/// when the feature is active, so disabled output stays byte-stable.
[[nodiscard]] std::string stop_set_envelope_fields(const TraceResult& result);

/// Same for a multilevel trace (probes_sent counts the alias rounds too).
[[nodiscard]] std::string stop_set_envelope_fields(
    const MultilevelResult& result);

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_TRACE_JSON_H
