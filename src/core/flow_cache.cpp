#include "core/flow_cache.h"

#include "common/assert.h"

namespace mmlpt::core {

void FlowCache::prefetch(std::span<const ProbeRequest> requests) {
  std::vector<ProbeRequest> fresh;
  std::vector<decltype(results_)::iterator> slots;
  fresh.reserve(requests.size());
  slots.reserve(requests.size());
  for (const auto& request : requests) {
    MMLPT_EXPECTS(request.ttl >= 1);
    const auto key = std::make_pair(static_cast<int>(request.ttl),
                                    request.flow);
    // emplace: the first occurrence of a duplicated (flow, ttl) wins and
    // an entry already fetched or consumed is left alone.
    const auto [it, inserted] = results_.emplace(key, Entry{});
    if (inserted) {
      fresh.push_back(request);
      slots.push_back(it);
    }
  }
  if (fresh.empty()) return;

  auto batched = engine_->probe_batch(fresh);
  MMLPT_ASSERT(batched.size() == fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    slots[i]->second.result = std::move(batched[i]);
  }
}

const probe::TraceProbeResult& FlowCache::consume(FlowId flow, int ttl,
                                                  Entry& entry) {
  entry.consumed = true;
  packets_accounted_ += static_cast<std::uint64_t>(entry.result.attempts);
  flows_by_ttl_[ttl].push_back(flow);
  const auto& stored = entry.result;
  if (stored.answered) {
    by_responder_[{ttl, stored.responder}].push_back(flow);
    if (stop_set_) stop_set_->record(stored.responder, ttl);
    if (observer_) observer_(flow, ttl, stored);
  }
  return stored;
}

const probe::TraceProbeResult& FlowCache::probe(FlowId flow, int ttl) {
  MMLPT_EXPECTS(ttl >= 1 && ttl <= 255);
  const auto key = std::make_pair(ttl, flow);
  const auto it = results_.find(key);
  if (it != results_.end()) {
    if (it->second.consumed) return it->second.result;
    return consume(flow, ttl, it->second);  // prefetched: consume in place
  }

  Entry entry;
  entry.result = engine_->probe(flow, static_cast<std::uint8_t>(ttl));
  const auto [inserted, ok] = results_.emplace(key, std::move(entry));
  return consume(flow, ttl, inserted->second);
}

const probe::TraceProbeResult* FlowCache::lookup(FlowId flow, int ttl) const {
  const auto it = results_.find(std::make_pair(ttl, flow));
  if (it == results_.end() || !it->second.consumed) return nullptr;
  return &it->second.result;
}

const std::vector<FlowId>& FlowCache::flows_at(int ttl) const {
  static const std::vector<FlowId> kEmpty;
  const auto it = flows_by_ttl_.find(ttl);
  return it == flows_by_ttl_.end() ? kEmpty : it->second;
}

const std::vector<FlowId>& FlowCache::flows_reaching(
    int ttl, net::Ipv4Address addr) const {
  return by_responder_[{ttl, addr}];  // created empty on first query
}

FlowId FlowCache::fresh_flow() { return next_flow_++; }

}  // namespace mmlpt::core
