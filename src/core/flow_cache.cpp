#include "core/flow_cache.h"

#include "common/assert.h"

namespace mmlpt::core {

const probe::TraceProbeResult& FlowCache::probe(FlowId flow, int ttl) {
  MMLPT_EXPECTS(ttl >= 1 && ttl <= 255);
  const auto key = std::make_pair(ttl, flow);
  const auto it = results_.find(key);
  if (it != results_.end()) return it->second;

  auto result = engine_->probe(flow, static_cast<std::uint8_t>(ttl));
  const auto [inserted, ok] = results_.emplace(key, std::move(result));
  flows_by_ttl_[ttl].push_back(flow);
  const auto& stored = inserted->second;
  if (stored.answered) {
    by_responder_[{ttl, stored.responder}].push_back(flow);
    if (observer_) observer_(flow, ttl, stored);
  }
  return stored;
}

const probe::TraceProbeResult* FlowCache::lookup(FlowId flow, int ttl) const {
  const auto it = results_.find(std::make_pair(ttl, flow));
  return it == results_.end() ? nullptr : &it->second;
}

const std::vector<FlowId>& FlowCache::flows_at(int ttl) const {
  static const std::vector<FlowId> kEmpty;
  const auto it = flows_by_ttl_.find(ttl);
  return it == flows_by_ttl_.end() ? kEmpty : it->second;
}

const std::vector<FlowId>& FlowCache::flows_reaching(
    int ttl, net::Ipv4Address addr) const {
  return by_responder_[{ttl, addr}];  // created empty on first query
}

FlowId FlowCache::fresh_flow() { return next_flow_++; }

}  // namespace mmlpt::core
