#include "core/mda_lite.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/assert.h"

namespace mmlpt::core {

MdaLiteTracer::MdaLiteTracer(probe::ProbeEngine& engine, TraceConfig config,
                             ReplyObserver* observer)
    : engine_(&engine),
      config_(config),
      stopping_(StoppingPoints::for_global(config.alpha,
                                           config.max_branching)),
      observer_(observer) {
  MMLPT_EXPECTS(config.phi >= 2);
}

TraceResult MdaLiteTracer::run() {
  FlowCache cache(*engine_);
  cache.set_stop_set(config_.stop_set);
  if (observer_ != nullptr) {
    cache.set_observer(
        [this](FlowId flow, int ttl, const probe::TraceProbeResult& r) {
          observer_->on_trace_reply(flow, ttl, r);
        });
  }
  DiscoveryRecorder recorder;

  const auto source = engine_->config().source;
  recorder.add_vertex(0, source, 0);

  StopSet* consult = config_.consulted_stop_set();
  bool reached = false;
  bool stopped = false;
  int destination_distance = 0;
  bool switch_to_mda = false;
  for (int h = 1; h <= config_.max_ttl && !switch_to_mda; ++h) {
    const bool at_destination = scan_hop(cache, recorder, h);
    if (recorder.vertices(h).empty()) break;  // silent hop
    complete_edges(cache, recorder, h);

    // Doubletree forward halt: the hop's windows are committed, and every
    // vertex it revealed is a confirmed hop from an earlier run — the
    // path beyond lives in the cache, so stop before paying for the
    // meshing test and the next hops. Reaching the destination wins over
    // stopping: that is the full-trace outcome.
    if (!at_destination && consult != nullptr &&
        all_in_stop_set(*consult, recorder.vertices(h), h)) {
      stopped = true;
      break;
    }

    const std::size_t prev_width = recorder.vertices(h - 1).size();
    const std::size_t width = recorder.vertices(h).size();
    if (prev_width >= 2 && width >= 2 &&
        meshing_detected(cache, recorder, h)) {
      switch_to_mda = true;
      break;
    }
    if (asymmetry_detected(recorder, h)) {
      switch_to_mda = true;
      break;
    }
    if (at_destination) {
      reached = true;
      destination_distance = h;
      break;
    }
  }

  if (switch_to_mda) {
    // Switch over to the full MDA, reusing every probe already bought.
    MdaTracer mda(*engine_, config_, observer_);
    TraceResult result = mda.run_with(cache, recorder);
    result.switched_to_mda = true;
    result.meshing_test_probes = meshing_test_probes_;
    result.node_control_probes = node_control_probes_;
    return result;
  }

  TraceResult result;
  result.graph = recorder.to_graph();
  // Cache-accounted, not an engine-counter delta: window-invariant by
  // construction even if a future edit abandons a prefetched probe.
  result.packets = cache.packets_accounted();
  result.events = recorder.events();
  result.reached_destination = reached;
  result.stopped_on_hit = stopped;
  result.meshing_test_probes = meshing_test_probes_;
  result.node_control_probes = node_control_probes_;
  finalize_stop_set(config_, engine_->config().destination,
                    destination_distance, result);
  return result;
}

bool MdaLiteTracer::scan_hop(FlowCache& cache, DiscoveryRecorder& recorder,
                             int h) {
  const auto destination = engine_->config().destination;
  const int prev = h - 1;

  // Flow identifiers to try, in the Sec. 2.3.1 order: one per previous-hop
  // vertex first, then the other flows used at the previous hop, then
  // fresh ones.
  std::vector<FlowId> queue;
  std::set<FlowId> queued;
  const auto push = [&](FlowId f) {
    if (queued.insert(f).second) queue.push_back(f);
  };
  for (const auto v : recorder.vertices(prev)) {
    const auto& flows = cache.flows_reaching(prev, v);
    if (!flows.empty()) push(flows.front());
  }
  for (const FlowId f : cache.flows_at(prev)) push(f);

  // Rounds of probe windows. n(k) only grows as replies reveal vertices,
  // so with the hop currently at k vertices and `budget` probes spent,
  // the next n(k) - budget probes are already committed no matter what
  // they return — a window of them (capped at the configured size) can go
  // out as one batched round trip, then be consumed in serial order.
  std::uint64_t budget = 0;
  std::size_t cursor = 0;
  bool all_destination = true;
  std::vector<FlowCache::ProbeRequest> requests;
  while (true) {
    const auto k = std::max<int>(
        1, static_cast<int>(recorder.vertices(h).size()));
    const auto target = static_cast<std::uint64_t>(stopping_.n(k));
    if (budget >= target) break;

    const std::uint64_t room = target - budget;
    const auto size = static_cast<std::size_t>(
        std::min<std::uint64_t>(room, window_size()));
    requests.clear();
    while (requests.size() < size) {
      const FlowId flow = cursor < queue.size() ? queue[cursor++]
                                                : cache.fresh_flow();
      if (cache.lookup(flow, h) != nullptr) continue;  // already spent at h
      requests.push_back({flow, static_cast<std::uint8_t>(h)});
    }
    cache.prefetch(requests);

    for (const auto& [flow, ttl] : requests) {
      const auto& r = cache.probe(flow, h);
      ++budget;
      if (!r.answered) continue;
      recorder.add_vertex(h, r.responder, cache.packets());
      if (r.responder != destination) all_destination = false;
      // Free edge knowledge when the flow's previous-hop position is
      // known.
      const auto* prev_result = cache.lookup(flow, prev);
      if (prev != 0 && prev_result != nullptr && prev_result->answered) {
        recorder.add_edge(prev, prev_result->responder, r.responder,
                          cache.packets());
      } else if (prev == 0) {
        recorder.add_edge(0, engine_->config().source, r.responder,
                          cache.packets());
      }
    }
  }
  return all_destination && !recorder.vertices(h).empty();
}

void MdaLiteTracer::complete_edges(FlowCache& cache,
                                   DiscoveryRecorder& recorder, int h) {
  const int prev = h - 1;
  if (prev == 0) return;  // every hop-1 vertex links to the source
  const auto& lower = recorder.vertices(prev);
  const auto& upper = recorder.vertices(h);

  const bool trace_forward = upper.size() <= lower.size();
  const bool trace_backward = upper.size() >= lower.size();

  // Each direction's probe set is fixed before its first probe goes out
  // (an iteration only adds edges at the vertex it is completing), so the
  // whole direction is one committed round: window it, then consume in
  // serial order. Backward runs after forward because forward's replies
  // can grow hop h's vertex list.
  if (trace_forward) {
    // Hop h has fewer (or equal) vertices: forward-complete from each
    // hop h-1 vertex that lacks an identified successor.
    std::vector<std::pair<net::Ipv4Address, FlowId>> work;
    std::vector<FlowId> work_flows;
    for (const auto v : lower) {
      if (recorder.successor_count(prev, v) > 0) continue;
      const auto& flows = cache.flows_reaching(prev, v);
      if (flows.empty()) continue;  // vertex seen only via lost replies
      work.emplace_back(v, flows.front());
      work_flows.push_back(flows.front());
    }
    prefetch_windowed(cache, work_flows, h);
    for (const auto& [v, flow] : work) {
      const auto& r = cache.probe(flow, h);
      if (r.answered) {
        recorder.add_vertex(h, r.responder, cache.packets());
        recorder.add_edge(prev, v, r.responder, cache.packets());
      }
    }
  }
  if (trace_backward) {
    // Hop h has more (or equal) vertices: backward-complete from each
    // hop h vertex that lacks an identified predecessor.
    std::vector<std::pair<net::Ipv4Address, FlowId>> work;
    std::vector<FlowId> work_flows;
    for (const auto v : upper) {
      if (recorder.predecessor_count(h, v) > 0) continue;
      const auto& flows = cache.flows_reaching(h, v);
      if (flows.empty()) continue;
      work.emplace_back(v, flows.front());
      work_flows.push_back(flows.front());
    }
    prefetch_windowed(cache, work_flows, prev);
    for (const auto& [v, flow] : work) {
      const auto& r = cache.probe(flow, prev);
      if (r.answered) {
        recorder.add_vertex(prev, r.responder, cache.packets());
        recorder.add_edge(prev, r.responder, v, cache.packets());
      }
    }
  }
}

void MdaLiteTracer::prefetch_windowed(FlowCache& cache,
                                      std::span<const FlowId> flows,
                                      int ttl) {
  std::vector<FlowCache::ProbeRequest> requests;
  requests.reserve(flows.size());
  for (const FlowId flow : flows) {
    requests.push_back({flow, static_cast<std::uint8_t>(ttl)});
  }
  probe::for_each_window<FlowCache::ProbeRequest>(
      requests, window_size(),
      [&](std::span<const FlowCache::ProbeRequest> window) {
        cache.prefetch(window);
      });
}

std::vector<FlowId> MdaLiteTracer::gather_flows_through(
    FlowCache& cache, DiscoveryRecorder& recorder, int ttl,
    net::Ipv4Address vertex, int needed) {
  const auto& known = cache.flows_reaching(ttl, vertex);
  if (static_cast<int>(known.size()) >= needed) {
    return {known.begin(), known.begin() + needed};
  }
  // Adaptive hunt in windowed rounds: the hunt stops as soon as `needed`
  // flows hit the vertex, and in the best case every probe hits, so only
  // needed - known probes are committed at any moment — that (capped by
  // the window and the attempt budget) is the legal round size.
  int attempts = 0;
  std::vector<FlowCache::ProbeRequest> requests;
  while (static_cast<int>(known.size()) < needed &&
         attempts < config_.node_control_attempt_cap) {
    const auto committed = static_cast<std::size_t>(
        std::min(needed - static_cast<int>(known.size()),
                 config_.node_control_attempt_cap - attempts));
    const auto size = std::min(committed, window_size());
    requests.clear();
    for (std::size_t i = 0; i < size; ++i) {
      requests.push_back({cache.fresh_flow(), static_cast<std::uint8_t>(ttl)});
    }
    cache.prefetch(requests);
    for (const auto& request : requests) {
      const auto& r = cache.probe(request.flow, ttl);
      ++attempts;
      ++node_control_probes_;
      if (r.answered) {
        recorder.add_vertex(ttl, r.responder, cache.packets());
      }
    }
  }
  return {known.begin(), known.end()};
}

bool MdaLiteTracer::meshing_detected(FlowCache& cache,
                                     DiscoveryRecorder& recorder, int h) {
  const int prev = h - 1;
  const auto lower = recorder.vertices(prev);   // copies: probing below can
  const auto upper = recorder.vertices(h);      // grow the recorder's lists
  // Trace from the hop with more vertices toward the one with fewer
  // (forward when equal).
  const bool forward = lower.size() >= upper.size();
  const int from_ttl = forward ? prev : h;
  const int to_ttl = forward ? h : prev;
  const auto& from_vertices = forward ? lower : upper;

  for (const auto v : from_vertices) {
    const auto flows =
        gather_flows_through(cache, recorder, from_ttl, v, config_.phi);
    // The phi probes of one vertex are all committed (the meshing verdict
    // is only read after the whole set): one windowed round.
    prefetch_windowed(cache, flows, to_ttl);
    std::set<net::Ipv4Address> seen;
    for (const FlowId f : flows) {
      const bool fresh = cache.lookup(f, to_ttl) == nullptr;
      const auto& r = cache.probe(f, to_ttl);
      if (fresh) ++meshing_test_probes_;
      if (!r.answered) continue;
      recorder.add_vertex(to_ttl, r.responder, cache.packets());
      if (forward) {
        recorder.add_edge(prev, v, r.responder, cache.packets());
      } else {
        recorder.add_edge(prev, r.responder, v, cache.packets());
      }
      seen.insert(r.responder);
    }
    if (seen.size() >= 2) return true;  // out/in-degree 2: meshed
  }
  return false;
}

bool MdaLiteTracer::asymmetry_detected(const DiscoveryRecorder& recorder,
                                       int h) const {
  const int prev = h - 1;
  const auto& lower = recorder.vertices(prev);
  const auto& upper = recorder.vertices(h);
  if (lower.size() >= 2) {
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (const auto v : lower) {
      const auto d = recorder.successor_count(prev, v);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    if (hi != lo) return true;
  }
  if (upper.size() >= 2) {
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (const auto v : upper) {
      const auto d = recorder.predecessor_count(h, v);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    if (hi != lo) return true;
  }
  return false;
}

}  // namespace mmlpt::core
