#include "core/multilevel.h"

#include <algorithm>
#include <set>

#include "common/assert.h"

namespace mmlpt::core {

/// Harvests per-address evidence and a usable (flow, ttl) pair for each
/// discovered address while the MDA-Lite trace runs.
class MultilevelTracer::Collector : public ReplyObserver {
 public:
  explicit Collector(alias::AliasResolver& resolver) : resolver_(&resolver) {}

  void on_trace_reply(FlowId flow, int ttl,
                      const probe::TraceProbeResult& r) override {
    MMLPT_EXPECTS(r.answered);
    resolver_->add_ip_id_sample(r.responder, r.recv_time, r.reply_ip_id,
                                r.probe_ip_id);
    resolver_->add_error_reply_ttl(r.responder, r.reply_ttl);
    resolver_->add_mpls(r.responder, r.mpls_labels);
    flows_.emplace(std::make_pair(ttl, r.responder), flow);
  }

  /// A flow known to reach `addr` at `ttl`, if the trace saw one.
  [[nodiscard]] std::optional<FlowId> flow_for(int ttl,
                                               net::Ipv4Address addr) const {
    const auto it = flows_.find(std::make_pair(ttl, addr));
    if (it == flows_.end()) return std::nullopt;
    return it->second;
  }

 private:
  alias::AliasResolver* resolver_;
  std::map<std::pair<int, net::Ipv4Address>, FlowId> flows_;
};

MultilevelResult MultilevelTracer::run() {
  const std::uint64_t packets_before = engine_->packets_sent();
  alias::AliasResolver resolver(config_.resolver);
  Collector collector(resolver);

  MdaLiteTracer lite(*engine_, config_.trace, &collector);
  MultilevelResult result;
  result.trace = lite.run();

  // The MBT reasons over the IP-ID header field; IPv6 has none, so alias
  // resolution degrades gracefully: no candidates, no probing rounds,
  // router level == IP level, and the JSON says "unsupported-family".
  result.alias_supported = engine_->family() == net::Family::kIpv4;

  // Alias resolution applies within a hop; only multi-vertex hops can
  // hold aliases of a common router (Sec. 4.1).
  std::map<int, std::vector<net::IpAddress>> candidates_by_hop;
  if (result.alias_supported) {
    for (std::uint16_t h = 0; h < result.trace.graph.hop_count(); ++h) {
      const auto hop_vertices = result.trace.graph.vertices_at(h);
      if (hop_vertices.size() < 2) continue;
      auto& addrs = candidates_by_hop[h];
      for (const auto v : hop_vertices) {
        addrs.push_back(result.trace.graph.vertex(v).addr);
      }
    }
  }

  const auto snapshot = [&]() {
    RoundSnapshot snap;
    for (const auto& [hop, addrs] : candidates_by_hop) {
      snap.sets_by_hop[hop] = resolver.resolve(addrs);
    }
    snap.packets = engine_->packets_sent() - packets_before;
    result.rounds.push_back(std::move(snap));
  };

  snapshot();  // round 0: trace data only

  // One window per echo sweep / per interleaved indirect pass (capped at
  // the configured window size): the probe set of a sweep or pass is
  // fixed up front, so batching collapses its RTT waits without changing
  // the Sec. 4 probe counts, and sending pass-by-pass preserves the
  // alternating-sample discipline the MBT requires.
  const auto window =
      static_cast<std::size_t>(std::max(1, config_.trace.window));

  for (int round = 1; result.alias_supported && round <= config_.rounds;
       ++round) {
    for (const auto& [hop, addrs] : candidates_by_hop) {
      if (round == 1 && config_.direct_fingerprint_round1) {
        probe::for_each_window<net::Ipv4Address>(
            addrs, window, [&](std::span<const net::Ipv4Address> sweep) {
              const auto echoes = engine_->ping_batch(sweep);
              for (std::size_t j = 0; j < echoes.size(); ++j) {
                if (echoes[j].answered) {
                  resolver.add_echo_reply_ttl(sweep[j], echoes[j].reply_ttl);
                }
              }
            });
      }
      // Interleaved indirect probing: one probe per address per pass, so
      // the IP-ID samples of candidate aliases alternate in time — the
      // sampling discipline the MBT requires.
      std::vector<probe::ProbeEngine::ProbeRequest> pass_requests;
      for (const auto addr : addrs) {
        const auto flow = collector.flow_for(hop, addr);
        if (!flow) continue;  // never reached by a recorded flow
        pass_requests.push_back({*flow, static_cast<std::uint8_t>(hop)});
      }
      for (int pass = 0; pass < config_.mbt_samples_per_round; ++pass) {
        probe::for_each_window<probe::ProbeEngine::ProbeRequest>(
            pass_requests, window,
            [&](std::span<const probe::ProbeEngine::ProbeRequest> sweep) {
              for (const auto& r : engine_->probe_batch(sweep)) {
                if (!r.answered) continue;
                resolver.add_ip_id_sample(r.responder, r.recv_time,
                                          r.reply_ip_id, r.probe_ip_id);
                resolver.add_error_reply_ttl(r.responder, r.reply_ttl);
                resolver.add_mpls(r.responder, r.mpls_labels);
              }
            });
      }
    }
    snapshot();
  }

  result.router_graph =
      merge_by_aliases(result.trace.graph, result.rounds.back().sets_by_hop);
  result.total_packets = engine_->packets_sent() - packets_before;
  result.resolver = std::move(resolver);
  return result;
}

topo::MultipathGraph MultilevelTracer::merge_by_aliases(
    const topo::MultipathGraph& ip_graph,
    const std::map<int, std::vector<alias::AliasSet>>& sets_by_hop) {
  // Representative address for every (hop, address).
  std::map<std::pair<int, net::Ipv4Address>, net::Ipv4Address> representative;
  for (const auto& [hop, sets] : sets_by_hop) {
    for (const auto& set : sets) {
      if (set.outcome != alias::Outcome::kAccept || set.members.size() < 2) {
        continue;
      }
      const auto rep =
          *std::min_element(set.members.begin(), set.members.end());
      for (const auto member : set.members) {
        representative[{hop, member}] = rep;
      }
    }
  }
  const auto rep_of = [&](int hop, net::Ipv4Address addr) {
    const auto it = representative.find({hop, addr});
    return it == representative.end() ? addr : it->second;
  };

  topo::MultipathGraph merged;
  std::map<std::pair<int, net::Ipv4Address>, topo::VertexId> ids;
  for (std::uint16_t h = 0; h < ip_graph.hop_count(); ++h) {
    merged.add_hop();
    for (const auto v : ip_graph.vertices_at(h)) {
      const auto rep = rep_of(h, ip_graph.vertex(v).addr);
      if (ids.find({h, rep}) == ids.end()) {
        ids[{h, rep}] = merged.add_vertex(h, rep);
      }
    }
  }
  for (std::uint16_t h = 0; h + 1 < ip_graph.hop_count(); ++h) {
    for (const auto v : ip_graph.vertices_at(h)) {
      for (const auto s : ip_graph.successors(v)) {
        merged.add_edge(
            ids.at({h, rep_of(h, ip_graph.vertex(v).addr)}),
            ids.at({h + 1, rep_of(h + 1, ip_graph.vertex(s).addr)}));
      }
    }
  }
  return merged;
}

}  // namespace mmlpt::core
