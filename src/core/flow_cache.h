// Flow-indexed probe memoisation. Per-flow load balancing means a given
// (flow, ttl) pair always takes the same path, so a tracer never needs to
// re-send it; the cache also answers "which flows are known to reach
// vertex v at hop h" — the primitive behind node control and the
// MDA-Lite's flow reuse.
//
// The cache is also the seam of the window-based probing pipeline: a
// tracer assembles the probes its stopping rule has already committed to,
// hands them to prefetch() — one ProbeEngine::probe_batch call, i.e. one
// TransportQueue submission per retry round, which is the unit the fleet
// merger (orchestrator::FleetTransportHub) gathers into shared bursts —
// then consumes them through probe() in the exact order a serial tracer
// would have sent them. Prefetched-but-unconsumed entries are invisible to
// lookup()/flows_at()/flows_reaching() and to the packet accounting, so
// every observable — discovered topology, discovery-event stamps, flow
// bookkeeping — is identical for every window size, and window = 1 is
// byte-identical to the historical one-probe-at-a-time path.
#ifndef MMLPT_CORE_FLOW_CACHE_H
#define MMLPT_CORE_FLOW_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "core/stop_set.h"
#include "net/ip_address.h"
#include "probe/engine.h"

namespace mmlpt::core {

using probe::FlowId;

class FlowCache {
 public:
  using Observer = std::function<void(FlowId flow, int ttl,
                                      const probe::TraceProbeResult&)>;
  using ProbeRequest = probe::ProbeEngine::ProbeRequest;

  explicit FlowCache(probe::ProbeEngine& engine)
      : engine_(&engine), packets_base_(engine.packets_sent()) {}

  /// Called after every *fresh* answered probe (cache hits do not re-fire).
  /// With prefetching the observer fires when the probe is CONSUMED via
  /// probe(), not when its packet goes out — the serial order.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Feed every answered CONSUMED probe into the fleet stop set as a
  /// confirmed (interface, distance) pair. Consumption is the single
  /// choke point all tracers' replies pass through, and it is
  /// serial-equivalent, so the recorded set is identical for every
  /// window size (speculative prefetched-but-abandoned probes are never
  /// recorded). Recording happens whether or not the tracer consults
  /// the set — record-only mode warms the cache without touching output.
  void set_stop_set(StopSet* stop_set) { stop_set_ = stop_set; }

  /// Fill the cache for every (flow, ttl) in `requests` that has no entry
  /// yet, as ONE batched window through ProbeEngine::probe_batch (requests
  /// already fetched or consumed are skipped; duplicates within the window
  /// are sent once). The results stay unconsumed: invisible to lookup()
  /// and the flow lists, and not yet charged to packets(), until probe()
  /// consumes them.
  void prefetch(std::span<const ProbeRequest> requests);

  /// Probe (flow, ttl), memoised: a cached result is returned without
  /// sending another packet (the engine already retried unanswered ones).
  /// Consuming a prefetched entry charges its packet cost, appends it to
  /// the flow lists and fires the observer — exactly what a fresh serial
  /// probe would have done at this point.
  const probe::TraceProbeResult& probe(FlowId flow, int ttl);

  /// Cached result, if any. Prefetched entries not yet consumed through
  /// probe() are NOT visible (at the equivalent serial point they would
  /// not have been sent yet).
  [[nodiscard]] const probe::TraceProbeResult* lookup(FlowId flow,
                                                      int ttl) const;

  /// Flows already probed at `ttl`, in probe (consumption) order.
  [[nodiscard]] const std::vector<FlowId>& flows_at(int ttl) const;

  /// Flows known (from cached probes) to reach `addr` at `ttl`. The
  /// returned reference stays valid and *grows* as further probes hit the
  /// same vertex — callers can keep a cursor into it.
  [[nodiscard]] const std::vector<FlowId>& flows_reaching(
      int ttl, net::Ipv4Address addr) const;

  /// A flow identifier never used before.
  [[nodiscard]] FlowId fresh_flow();

  [[nodiscard]] probe::ProbeEngine& engine() noexcept { return *engine_; }

  /// Serial-equivalent packet count: the engine's counter at construction
  /// plus the cost of every probe consumed so far. Equal to
  /// engine().packets_sent() whenever no prefetched probe is in flight or
  /// abandoned — in particular at every consumption point under window=1
  /// — and unlike the raw engine counter it is identical for every window
  /// size (speculative probes are charged to the wire, never to the
  /// algorithm).
  [[nodiscard]] std::uint64_t packets() const noexcept {
    return packets_base_ + packets_accounted_;
  }

  /// Probes consumed since construction (the algorithmic packet cost).
  [[nodiscard]] std::uint64_t packets_accounted() const noexcept {
    return packets_accounted_;
  }

 private:
  struct Entry {
    probe::TraceProbeResult result;
    bool consumed = false;
  };

  /// Consumption bookkeeping shared by the hit and miss paths of probe().
  const probe::TraceProbeResult& consume(FlowId flow, int ttl, Entry& entry);

  probe::ProbeEngine* engine_;
  Observer observer_;
  StopSet* stop_set_ = nullptr;
  std::map<std::pair<int, FlowId>, Entry> results_;
  std::map<int, std::vector<FlowId>> flows_by_ttl_;
  /// (ttl, responder) -> flows; std::map for reference stability.
  mutable std::map<std::pair<int, net::Ipv4Address>, std::vector<FlowId>>
      by_responder_;
  FlowId next_flow_ = 0;
  std::uint64_t packets_base_ = 0;
  std::uint64_t packets_accounted_ = 0;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_FLOW_CACHE_H
