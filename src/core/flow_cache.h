// Flow-indexed probe memoisation. Per-flow load balancing means a given
// (flow, ttl) pair always takes the same path, so a tracer never needs to
// re-send it; the cache also answers "which flows are known to reach
// vertex v at hop h" — the primitive behind node control and the
// MDA-Lite's flow reuse.
#ifndef MMLPT_CORE_FLOW_CACHE_H
#define MMLPT_CORE_FLOW_CACHE_H

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/ip_address.h"
#include "probe/engine.h"

namespace mmlpt::core {

using probe::FlowId;

class FlowCache {
 public:
  using Observer = std::function<void(FlowId flow, int ttl,
                                      const probe::TraceProbeResult&)>;

  explicit FlowCache(probe::ProbeEngine& engine) : engine_(&engine) {}

  /// Called after every *fresh* answered probe (cache hits do not re-fire).
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Probe (flow, ttl), memoised: a cached result is returned without
  /// sending another packet (the engine already retried unanswered ones).
  const probe::TraceProbeResult& probe(FlowId flow, int ttl);

  /// Cached result, if any.
  [[nodiscard]] const probe::TraceProbeResult* lookup(FlowId flow,
                                                      int ttl) const;

  /// Flows already probed at `ttl`, in probe order.
  [[nodiscard]] const std::vector<FlowId>& flows_at(int ttl) const;

  /// Flows known (from cached probes) to reach `addr` at `ttl`. The
  /// returned reference stays valid and *grows* as further probes hit the
  /// same vertex — callers can keep a cursor into it.
  [[nodiscard]] const std::vector<FlowId>& flows_reaching(
      int ttl, net::Ipv4Address addr) const;

  /// A flow identifier never used before.
  [[nodiscard]] FlowId fresh_flow();

  [[nodiscard]] probe::ProbeEngine& engine() noexcept { return *engine_; }
  [[nodiscard]] std::uint64_t packets() const noexcept {
    return engine_->packets_sent();
  }

 private:
  probe::ProbeEngine* engine_;
  Observer observer_;
  std::map<std::pair<int, FlowId>, probe::TraceProbeResult> results_;
  std::map<int, std::vector<FlowId>> flows_by_ttl_;
  /// (ttl, responder) -> flows; std::map for reference stability.
  mutable std::map<std::pair<int, net::Ipv4Address>, std::vector<FlowId>>
      by_responder_;
  FlowId next_flow_ = 0;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_FLOW_CACHE_H
