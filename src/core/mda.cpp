#include "core/mda.h"

#include <algorithm>
#include <set>

#include "common/assert.h"

namespace mmlpt::core {

MdaTracer::MdaTracer(probe::ProbeEngine& engine, TraceConfig config,
                     ReplyObserver* observer)
    : engine_(&engine),
      config_(config),
      stopping_(StoppingPoints::for_global(config.alpha,
                                           config.max_branching)),
      observer_(observer) {}

TraceResult MdaTracer::run() {
  FlowCache cache(*engine_);
  cache.set_stop_set(config_.stop_set);
  if (observer_ != nullptr) {
    cache.set_observer(
        [this](FlowId flow, int ttl, const probe::TraceProbeResult& r) {
          observer_->on_trace_reply(flow, ttl, r);
        });
  }
  DiscoveryRecorder recorder;
  return run_with(cache, recorder);
}

TraceResult MdaTracer::run_with(FlowCache& cache,
                                DiscoveryRecorder& recorder) {
  const auto source = engine_->config().source;
  const auto destination = engine_->config().destination;
  recorder.add_vertex(0, source, 0);

  StopSet* consult = config_.consulted_stop_set();
  bool reached = false;
  bool stopped = false;
  int destination_distance = 0;
  for (int h = 1; h <= config_.max_ttl; ++h) {
    // The worklist can grow while we process it: node-control probes at
    // hop h-1 sometimes reveal new hop h-1 vertices.
    for (std::size_t i = 0; i < recorder.vertices(h - 1).size(); ++i) {
      const net::Ipv4Address v = recorder.vertices(h - 1)[i];
      if (v == destination) continue;  // the destination does not forward
      (void)discover_successors(cache, recorder, h, v);
    }
    const auto& found = recorder.vertices(h);
    if (found.empty()) break;  // silent hop: cannot steer further
    if (found.size() == 1 && found[0] == destination) {
      reached = true;
      destination_distance = h;
      break;
    }
    // Doubletree forward halt: the hop's n_k waves are committed and
    // every vertex they revealed is a confirmed hop from an earlier run.
    if (consult != nullptr && all_in_stop_set(*consult, found, h)) {
      stopped = true;
      break;
    }
  }

  TraceResult result;
  result.graph = recorder.to_graph();
  // Cache-accounted, not an engine-counter delta: window-invariant by
  // construction even if a future edit abandons a prefetched probe.
  result.packets = cache.packets_accounted();
  result.events = recorder.events();
  result.reached_destination = reached;
  result.stopped_on_hit = stopped;
  result.node_control_probes = node_control_probes_;
  finalize_stop_set(config_, destination, destination_distance, result);
  return result;
}

bool MdaTracer::discover_successors(FlowCache& cache,
                                    DiscoveryRecorder& recorder, int h,
                                    net::Ipv4Address vertex) {
  const int prev = h - 1;

  // When the previous hop holds a single vertex (the source, a divergence
  // point, or any non-branching hop), every flow passes through it: node
  // control is unnecessary and any fresh flow may be spent directly. This
  // matches the paper's cost accounting (hop 2 of Fig. 1 receives n_4
  // probes, with no verification probes at hop 1).
  const bool free_passage =
      prev == 0 || recorder.vertices(prev).size() == 1;
  const std::vector<FlowId>& through =
      free_passage ? cache.flows_at(h) : cache.flows_reaching(prev, vertex);

  std::set<net::Ipv4Address> successors;
  std::uint64_t budget = 0;  // probes counted against the stopping rule

  // Pre-scan: flows through the vertex that were already probed at h
  // (free knowledge from earlier rounds or a pre-switch MDA-Lite run).
  for (const FlowId f : through) {
    const auto* r = cache.lookup(f, h);
    if (r == nullptr) continue;
    ++budget;
    if (r->answered) {
      recorder.add_vertex(h, r->responder, cache.packets());
      recorder.add_edge(prev, vertex, r->responder, cache.packets());
      successors.insert(r->responder);
    }
  }

  // The nk waves, windowed: with k successors known and `budget` probes
  // spent, the stopping rule has already committed to n(k) - budget more
  // probes whatever they reveal (n(k) only grows), so a wave of that many
  // (capped at the configured window) ships as one batched round trip and
  // is consumed in serial order. Node-control hunts stay one probe per
  // round trip: the hunt may stop after its very next reply, so a single
  // probe is all that is ever committed.
  const auto window = static_cast<std::size_t>(std::max(1, config_.window));
  std::size_t cursor = 0;
  std::vector<FlowCache::ProbeRequest> wave;
  while (true) {
    const int k = std::max<int>(1, static_cast<int>(successors.size()));
    const auto target = static_cast<std::uint64_t>(stopping_.n(k));
    if (budget >= target) break;

    const auto room = static_cast<std::size_t>(
        std::min<std::uint64_t>(target - budget, window));
    wave.clear();
    while (wave.size() < room) {
      // Next flow through the vertex that has not been spent at hop h yet.
      std::optional<FlowId> flow;
      while (cursor < through.size()) {
        const FlowId candidate = through[cursor++];
        if (cache.lookup(candidate, h) == nullptr) {
          flow = candidate;
          break;
        }
      }
      if (!flow) {
        if (free_passage) {
          flow = cache.fresh_flow();
        } else {
          // Flush the flows already assembled before hunting: the hunt
          // probes at hop h-1 and its replies extend `through`.
          if (!wave.empty()) break;
          flow = next_flow_through(cache, recorder, prev, vertex);
          if (!flow) return false;  // node control exhausted its cap
          // The hunted flow must be spent at h before the cursor can
          // rescan `through` (serially it is probed on the spot) — a
          // one-flow wave.
          wave.push_back({*flow, static_cast<std::uint8_t>(h)});
          break;
        }
      }
      wave.push_back({*flow, static_cast<std::uint8_t>(h)});
    }
    cache.prefetch(wave);

    for (const auto& [flow, ttl] : wave) {
      const auto& r = cache.probe(flow, h);
      ++budget;
      if (r.answered) {
        recorder.add_vertex(h, r.responder, cache.packets());
        recorder.add_edge(prev, vertex, r.responder, cache.packets());
        successors.insert(r.responder);
      }
    }
  }
  return true;
}

std::optional<FlowId> MdaTracer::next_flow_through(
    FlowCache& cache, DiscoveryRecorder& recorder, int ttl,
    net::Ipv4Address vertex) {
  for (int attempt = 0; attempt < config_.node_control_attempt_cap;
       ++attempt) {
    const FlowId f = cache.fresh_flow();
    const auto& r = cache.probe(f, ttl);
    ++node_control_probes_;
    if (!r.answered) continue;
    recorder.add_vertex(ttl, r.responder, cache.packets());
    if (r.responder == vertex) return f;
  }
  return std::nullopt;
}

}  // namespace mmlpt::core
