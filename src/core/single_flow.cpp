#include "core/single_flow.h"

#include <algorithm>

namespace mmlpt::core {

TraceResult SingleFlowTracer::run() {
  FlowCache cache(*engine_);
  if (observer_ != nullptr) {
    cache.set_observer(
        [this](FlowId flow, int ttl, const probe::TraceProbeResult& r) {
          observer_->on_trace_reply(flow, ttl, r);
        });
  }
  DiscoveryRecorder recorder;

  const auto source = engine_->config().source;
  const auto destination = engine_->config().destination;
  recorder.add_vertex(0, source, 0);

  // Speculative multi-TTL windows: the serial tracer walks ttl = 1, 2, ...
  // and stops at the destination, so a window of the next W ttls is
  // speculation — probes beyond the destination hop are wasted on the
  // wire. They are never consumed, so the cache's serial-equivalent
  // accounting (and with it the reported packet count, the discovery
  // stamps and the JSON) is identical for every window size; only
  // engine().packets_sent() shows the speculative overshoot.
  const auto window = static_cast<std::size_t>(std::max(1, config_.window));
  const FlowId flow = cache.fresh_flow();
  net::Ipv4Address previous = source;
  bool reached = false;
  std::vector<FlowCache::ProbeRequest> requests;
  for (int h = 1; h <= config_.max_ttl && !reached; /* advanced below */) {
    const auto span = std::min<std::size_t>(
        window, static_cast<std::size_t>(config_.max_ttl - h + 1));
    requests.clear();
    for (std::size_t i = 0; i < span; ++i) {
      requests.push_back(
          {flow, static_cast<std::uint8_t>(h + static_cast<int>(i))});
    }
    cache.prefetch(requests);

    for (std::size_t i = 0; i < span; ++i, ++h) {
      const auto& r = cache.probe(flow, h);
      if (!r.answered) {
        previous = {};  // star: the next edge cannot be attributed
        continue;
      }
      recorder.add_vertex(h, r.responder, cache.packets());
      if (!previous.is_unspecified()) {
        recorder.add_edge(h - 1, previous, r.responder, cache.packets());
      }
      previous = r.responder;
      if (r.responder == destination) {
        reached = true;
        break;
      }
    }
  }

  TraceResult result;
  result.graph = recorder.to_graph();
  result.packets = cache.packets_accounted();
  result.events = recorder.events();
  result.reached_destination = reached;
  return result;
}

}  // namespace mmlpt::core
