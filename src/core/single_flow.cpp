#include "core/single_flow.h"

namespace mmlpt::core {

TraceResult SingleFlowTracer::run() {
  FlowCache cache(*engine_);
  if (observer_ != nullptr) {
    cache.set_observer(
        [this](FlowId flow, int ttl, const probe::TraceProbeResult& r) {
          observer_->on_trace_reply(flow, ttl, r);
        });
  }
  DiscoveryRecorder recorder;
  const std::uint64_t packets_before = engine_->packets_sent();

  const auto source = engine_->config().source;
  const auto destination = engine_->config().destination;
  recorder.add_vertex(0, source, 0);

  const FlowId flow = cache.fresh_flow();
  net::Ipv4Address previous = source;
  bool reached = false;
  for (int h = 1; h <= config_.max_ttl; ++h) {
    const auto& r = cache.probe(flow, h);
    if (!r.answered) {
      previous = {};  // star: the next edge cannot be attributed
      continue;
    }
    recorder.add_vertex(h, r.responder, cache.packets());
    if (!previous.is_unspecified()) {
      recorder.add_edge(h - 1, previous, r.responder, cache.packets());
    }
    previous = r.responder;
    if (r.responder == destination) {
      reached = true;
      break;
    }
  }

  TraceResult result;
  result.graph = recorder.to_graph();
  result.packets = engine_->packets_sent() - packets_before;
  result.events = recorder.events();
  result.reached_destination = reached;
  return result;
}

}  // namespace mmlpt::core
