#include "core/single_flow.h"

#include <algorithm>
#include <map>

namespace mmlpt::core {

TraceResult SingleFlowTracer::run() {
  FlowCache cache(*engine_);
  cache.set_stop_set(config_.stop_set);
  if (observer_ != nullptr) {
    cache.set_observer(
        [this](FlowId flow, int ttl, const probe::TraceProbeResult& r) {
          observer_->on_trace_reply(flow, ttl, r);
        });
  }
  DiscoveryRecorder recorder;

  const auto source = engine_->config().source;
  const auto destination = engine_->config().destination;
  recorder.add_vertex(0, source, 0);

  // Doubletree (when consulting a warm stop set): start forward probing
  // at the adaptive mid-path TTL instead of 1, halt forward on a
  // confirmed-hop hit, then run the backward phase from start-1 toward
  // the source until another hit. With no stop set (or record-only) the
  // start TTL is 1 and no stop check fires, reproducing the historical
  // tracer byte for byte.
  StopSet* consult = config_.consulted_stop_set();
  int start = 1;
  if (consult != nullptr) {
    start = std::clamp(consult->midpoint_ttl(), 1, config_.max_ttl);
  }

  // Speculative multi-TTL windows: the serial tracer walks ttl = start,
  // start+1, ... and stops at the destination (or a stop-set hit), so a
  // window of the next W ttls is speculation — probes beyond the stopping
  // hop are wasted on the wire. They are never consumed, so the cache's
  // serial-equivalent accounting (and with it the reported packet count,
  // the discovery stamps and the JSON) is identical for every window
  // size; only engine().packets_sent() shows the speculative overshoot.
  const auto window = static_cast<std::size_t>(std::max(1, config_.window));
  const FlowId flow = cache.fresh_flow();
  std::map<int, net::Ipv4Address> responder_at;
  net::Ipv4Address previous = start == 1 ? source : net::Ipv4Address{};
  bool reached = false;
  bool stopped = false;
  std::vector<FlowCache::ProbeRequest> requests;
  for (int h = start; h <= config_.max_ttl && !reached && !stopped;
       /* advanced below */) {
    const auto span = std::min<std::size_t>(
        window, static_cast<std::size_t>(config_.max_ttl - h + 1));
    requests.clear();
    for (std::size_t i = 0; i < span; ++i) {
      requests.push_back(
          {flow, static_cast<std::uint8_t>(h + static_cast<int>(i))});
    }
    cache.prefetch(requests);

    for (std::size_t i = 0; i < span; ++i, ++h) {
      const auto& r = cache.probe(flow, h);
      if (!r.answered) {
        previous = {};  // star: the next edge cannot be attributed
        continue;
      }
      recorder.add_vertex(h, r.responder, cache.packets());
      responder_at[h] = r.responder;
      if (!previous.is_unspecified()) {
        recorder.add_edge(h - 1, previous, r.responder, cache.packets());
      }
      previous = r.responder;
      if (r.responder == destination) {
        reached = true;
        break;
      }
      if (consult != nullptr && consult->contains(r.responder, h)) {
        stopped = true;  // confirmed hop: the rest of the path is cached
        break;
      }
    }
  }

  // Backward phase: fill in start-1 .. 1 until a confirmed hop says the
  // remainder toward the source is already known. Stopping mid-way makes
  // the trace partial even if forward reached the destination.
  if (consult != nullptr && start > 1) {
    bool backward_stopped = false;
    for (int t = start - 1; t >= 1 && !backward_stopped;
         /* advanced below */) {
      const auto span = std::min<std::size_t>(
          window, static_cast<std::size_t>(t));
      requests.clear();
      for (std::size_t i = 0; i < span; ++i) {
        requests.push_back(
            {flow, static_cast<std::uint8_t>(t - static_cast<int>(i))});
      }
      cache.prefetch(requests);

      for (std::size_t i = 0; i < span; ++i, --t) {
        const auto& r = cache.probe(flow, t);
        if (!r.answered) continue;  // star: keep probing backward
        recorder.add_vertex(t, r.responder, cache.packets());
        responder_at[t] = r.responder;
        const auto above = responder_at.find(t + 1);
        if (above != responder_at.end()) {
          recorder.add_edge(t, r.responder, above->second, cache.packets());
        }
        if (t == 1) {
          recorder.add_edge(0, source, r.responder, cache.packets());
        }
        if (consult->contains(r.responder, t)) {
          backward_stopped = true;
          break;
        }
      }
    }
    stopped = stopped || backward_stopped;
  }

  TraceResult result;
  result.graph = recorder.to_graph();
  result.packets = cache.packets_accounted();
  result.events = recorder.events();
  result.reached_destination = reached;
  result.stopped_on_hit = stopped;
  const auto dest_it = std::find_if(
      responder_at.begin(), responder_at.end(),
      [&](const auto& entry) { return entry.second == destination; });
  finalize_stop_set(config_, destination,
                    dest_it == responder_at.end() ? 0 : dest_it->first,
                    result);
  return result;
}

}  // namespace mmlpt::core
