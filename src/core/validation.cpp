#include "core/validation.h"

#include <algorithm>

#include "common/stats.h"
#include "core/mda_lite.h"
#include "core/single_flow.h"
#include "core/stopping_points.h"
#include "fakeroute/failure.h"
#include "probe/simulated_network.h"

namespace mmlpt::core {

TraceResult run_trace(const topo::GroundTruth& truth, Algorithm algorithm,
                      TraceConfig config, fakeroute::SimConfig sim_config,
                      std::uint64_t seed, ReplyObserver* observer) {
  fakeroute::Simulator simulator(truth, sim_config, seed);
  probe::SimulatedNetwork network(simulator);
  return run_trace_with_network(network, truth.source, truth.destination,
                                algorithm, config, observer);
}

TraceResult run_trace_with_network(probe::TransportQueue& network,
                                   net::Ipv4Address source,
                                   net::Ipv4Address destination,
                                   Algorithm algorithm, TraceConfig config,
                                   ReplyObserver* observer) {
  probe::ProbeEngine::Config engine_config;
  engine_config.source = source;
  engine_config.destination = destination;
  probe::ProbeEngine engine(network, engine_config);

  switch (algorithm) {
    case Algorithm::kMda:
      return MdaTracer(engine, config, observer).run();
    case Algorithm::kMdaLite:
      return MdaLiteTracer(engine, config, observer).run();
    case Algorithm::kSingleFlow:
      return SingleFlowTracer(engine, config, observer).run();
  }
  throw ContractViolation("unknown algorithm");
}

topo::GroundTruth plain_ground_truth(topo::MultipathGraph graph) {
  topo::GroundTruth truth;
  truth.graph = std::move(graph);
  truth.vertex_router.resize(truth.graph.vertex_count());
  truth.routers.reserve(truth.graph.vertex_count());
  for (topo::VertexId v = 0; v < truth.graph.vertex_count(); ++v) {
    topo::RouterSpec spec;
    spec.id = v;
    truth.vertex_router[v] = v;
    truth.routers.push_back(spec);
  }
  truth.source = truth.graph.vertex(truth.graph.vertices_at(0)[0]).addr;
  const auto last =
      static_cast<std::uint16_t>(truth.graph.hop_count() - 1);
  truth.destination = truth.graph.vertex(truth.graph.vertices_at(last)[0]).addr;
  return truth;
}

ValidationReport validate(const topo::GroundTruth& truth,
                          const ValidationConfig& config) {
  const auto stopping =
      StoppingPoints::for_global(config.trace.alpha, config.trace.max_branching);
  int max_degree = 1;
  for (topo::VertexId v = 0; v < truth.graph.vertex_count(); ++v) {
    max_degree =
        std::max(max_degree, static_cast<int>(truth.graph.out_degree(v)));
  }

  ValidationReport report;
  report.theoretical_failure = fakeroute::topology_failure_probability(
      truth.graph, stopping.table(max_degree + 1));
  report.runs_per_sample = config.runs_per_sample;
  report.samples = config.samples;

  RunningStats sample_means;
  std::uint64_t seed = config.seed;
  for (int s = 0; s < config.samples; ++s) {
    int failures = 0;
    for (int r = 0; r < config.runs_per_sample; ++r) {
      const auto result = run_trace(truth, config.algorithm, config.trace,
                                    config.sim, seed++);
      if (!topo::same_topology(result.graph, truth.graph)) ++failures;
    }
    sample_means.add(static_cast<double>(failures) /
                     static_cast<double>(config.runs_per_sample));
  }
  report.mean_failure = sample_means.mean();
  report.ci95_half_width = sample_means.ci95_half_width();
  return report;
}

}  // namespace mmlpt::core
