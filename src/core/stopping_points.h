// The MDA's stopping points n_k (Veitch et al., Infocom 2009): after k
// successors of a vertex have been found, probing stops once n_k probes
// have been sent to that vertex without revealing a (k+1)-th successor.
//
// n_k is the smallest n such that, were there actually k+1 successors
// under uniform-at-random balancing, the probability that n probes leave
// at least one of them unseen is at most the per-vertex bound epsilon:
//
//   P(n, K) = sum_{j=1..K-1} (-1)^(j+1) C(K,j) (1 - j/K)^n   (K = k+1)
//
// epsilon is derived from the tool's global failure bound alpha and the
// assumed maximum number of branching vertices B: eps = 1-(1-alpha)^(1/B).
#ifndef MMLPT_CORE_STOPPING_POINTS_H
#define MMLPT_CORE_STOPPING_POINTS_H

#include <span>
#include <vector>

namespace mmlpt::core {

class StoppingPoints {
 public:
  /// Directly specify the per-vertex failure bound.
  [[nodiscard]] static StoppingPoints from_epsilon(double epsilon);

  /// Global failure bound split across at most `max_branching` branching
  /// vertices. The MDA's default is alpha = 0.05, B = 30.
  [[nodiscard]] static StoppingPoints for_global(double alpha,
                                                 int max_branching);

  /// The n_k values the paper quotes from Veitch et al.'s Table 1
  /// (n_1 = 9, n_2 = 17, n_3 = 25, n_4 = 33); equivalent to
  /// for_global(0.05, 13).
  [[nodiscard]] static StoppingPoints veitch_table1();

  /// Stopping point once k successors are known (k >= 1). Values are
  /// computed lazily and cached; k may be arbitrarily large.
  [[nodiscard]] int n(int k) const;

  /// The first `count` stopping points as a dense vector indexed by k
  /// (index 0 unused, set to 0) — the layout fakeroute's failure analysis
  /// consumes.
  [[nodiscard]] std::vector<int> table(int count) const;

  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

  /// P(n, K): probability that n uniform probes over K successors leave
  /// at least one unseen (inclusion-exclusion; exposed for tests and for
  /// Fakeroute's analytic failure computation).
  [[nodiscard]] static double miss_probability(int n, int successor_count);

 private:
  explicit StoppingPoints(double epsilon);

  double epsilon_;
  mutable std::vector<int> cache_;  ///< cache_[k] = n_k, cache_[0] unused
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_STOPPING_POINTS_H
