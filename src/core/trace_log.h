// Discovery bookkeeping shared by all tracers: the incrementally built
// topology, packet-stamped discovery events (Fig. 3's discovery curves),
// and the result type every algorithm returns.
#ifndef MMLPT_CORE_TRACE_LOG_H
#define MMLPT_CORE_TRACE_LOG_H

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/stop_set.h"
#include "net/ip_address.h"
#include "topology/graph.h"

namespace mmlpt::core {

/// One discovery milestone: after `packets` probes, a vertex or edge was
/// first seen.
struct DiscoveryEvent {
  std::uint64_t packets = 0;
  bool is_edge = false;
};

/// Incremental per-hop vertex/edge store. Hops are created on demand;
/// hop 0 is the trace source.
class DiscoveryRecorder {
 public:
  /// Record a vertex at `hop`; returns true when new. `packets` stamps
  /// the discovery event.
  bool add_vertex(int hop, net::Ipv4Address addr, std::uint64_t packets);

  /// Record an edge hop -> hop+1; returns true when new.
  bool add_edge(int hop, net::Ipv4Address from, net::Ipv4Address to,
                std::uint64_t packets);

  [[nodiscard]] int hop_count() const noexcept {
    return static_cast<int>(vertices_.size());
  }
  [[nodiscard]] const std::vector<net::Ipv4Address>& vertices(int hop) const;
  [[nodiscard]] bool has_vertex(int hop, net::Ipv4Address addr) const;
  [[nodiscard]] std::size_t successor_count(int hop,
                                            net::Ipv4Address addr) const;
  [[nodiscard]] std::size_t predecessor_count(int hop,
                                              net::Ipv4Address addr) const;
  [[nodiscard]] std::vector<net::Ipv4Address> successors(
      int hop, net::Ipv4Address addr) const;

  [[nodiscard]] const std::vector<DiscoveryEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t vertex_total() const noexcept {
    return vertex_total_;
  }
  [[nodiscard]] std::size_t edge_total() const noexcept { return edge_total_; }

  /// Materialise the discovered topology. Unreachable bookkeeping is
  /// dropped; the graph is NOT validated (partial discovery is normal).
  [[nodiscard]] topo::MultipathGraph to_graph() const;

 private:
  void ensure_hop(int hop);

  std::vector<std::vector<net::Ipv4Address>> vertices_;
  std::vector<std::set<net::Ipv4Address>> vertex_sets_;
  /// edges_[h]: set of (from, to) address pairs between hops h and h+1.
  std::vector<std::set<std::pair<net::Ipv4Address, net::Ipv4Address>>> edges_;
  std::vector<DiscoveryEvent> events_;
  std::size_t vertex_total_ = 0;
  std::size_t edge_total_ = 0;
};

/// What a tracer hands back.
struct TraceResult {
  topo::MultipathGraph graph;
  std::uint64_t packets = 0;  ///< datagrams this trace sent (incl. retries)
  std::vector<DiscoveryEvent> events;
  bool reached_destination = false;
  bool switched_to_mda = false;  ///< MDA-Lite only
  std::uint64_t meshing_test_probes = 0;
  std::uint64_t node_control_probes = 0;
  /// A stop set was CONSULTED (not merely recorded into): the trace may
  /// have stopped early, and the JSONL envelope carries the probe-savings
  /// counters. False in record-only mode so output stays byte-stable.
  bool stop_set_active = false;
  /// Forward probing halted on a confirmed-hop stop-set hit.
  bool stopped_on_hit = false;
  /// Probes the stop set saved versus the destination's prior full trace
  /// (0 when the trace ran to completion or no prior record exists).
  std::uint64_t probes_saved_by_stop_set = 0;
};

/// Shared tracer tuning knobs.
struct TraceConfig {
  /// Global failure bound 0.05 across at most 30 branching vertices —
  /// the MDA's defaults per the paper.
  double alpha = 0.05;
  int max_branching = 30;
  int max_ttl = 64;
  /// MDA-Lite meshing-test effort (phi >= 2, Sec. 2.3.2).
  int phi = 2;
  /// Cap on fresh flows generated while hunting flows through one vertex.
  int node_control_attempt_cap = 20000;
  /// Probe window: how many in-flight probes a tracer may assemble into
  /// one batched round trip (a TransportQueue submission). Every algorithm
  /// only windows probes its stopping rule has already committed to, so
  /// topology, packet accounting and stopping decisions are identical for
  /// every value; 1 reproduces the historical serial tracer byte for
  /// byte, larger values collapse RTT waits (latency, not probes).
  int window = 1;
  /// Fleet-wide Doubletree stop set, shared by every tracer of a run (the
  /// pointed-to object outlives all traces; implementations are
  /// thread-safe). nullptr = the feature is fully off and the tracer
  /// behaves byte-identically to builds that predate it.
  StopSet* stop_set = nullptr;
  /// With a stop set attached: false = record-only (discoveries feed the
  /// set but stopping decisions never consult it, so output is
  /// byte-identical to stop_set == nullptr — the cache-warming mode);
  /// true = full Doubletree stopping.
  bool consult_stop_set = true;

  /// The stop set to consult for stopping decisions, or nullptr.
  [[nodiscard]] StopSet* consulted_stop_set() const noexcept {
    return consult_stop_set ? stop_set : nullptr;
  }
};

/// Shared post-trace stop-set bookkeeping, called by every tracer once
/// `result.reached_destination` / `result.stopped_on_hit` / `packets`
/// are final: marks the result active (consulting runs only), computes
/// probes_saved_by_stop_set against the destination's prior full-trace
/// record, and — when this trace itself ran to the destination without
/// stopping — feeds its own record back for future runs.
/// `destination_distance` is the TTL at which the destination answered
/// (<= 0 when unknown/not reached). No-op without a stop set.
void finalize_stop_set(const TraceConfig& config, net::IpAddress destination,
                       int destination_distance, TraceResult& result);

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_TRACE_LOG_H
