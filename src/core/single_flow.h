// Paris Traceroute with a single flow identifier — the baseline the paper
// compares against (Sec. 2.4.2), and the way the tool runs on RIPE Atlas
// (Sec. 6.2): one clean path through the load balancers, no multipath
// discovery.
#ifndef MMLPT_CORE_SINGLE_FLOW_H
#define MMLPT_CORE_SINGLE_FLOW_H

#include "core/flow_cache.h"
#include "core/mda.h"
#include "core/trace_log.h"

namespace mmlpt::core {

class SingleFlowTracer {
 public:
  SingleFlowTracer(probe::ProbeEngine& engine, TraceConfig config,
                   ReplyObserver* observer = nullptr)
      : engine_(&engine), config_(config), observer_(observer) {}

  [[nodiscard]] TraceResult run();

 private:
  probe::ProbeEngine* engine_;
  TraceConfig config_;
  ReplyObserver* observer_;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_SINGLE_FLOW_H
