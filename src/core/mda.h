// The classic Multipath Detection Algorithm (Veitch et al., Infocom 2009;
// Sec. 2.1 of the paper): vertex-by-vertex successor discovery under the
// n_k stopping rule, with *node control* — every probe sent to hop h+1
// must be verified to pass through the chosen hop-h vertex, which is what
// makes the MDA expensive (the Multiple Coupon Collector cost).
#ifndef MMLPT_CORE_MDA_H
#define MMLPT_CORE_MDA_H

#include <optional>

#include "core/flow_cache.h"
#include "core/stopping_points.h"
#include "core/trace_log.h"

namespace mmlpt::core {

/// Optional observer receiving every answered trace probe (used by the
/// multilevel tracer to harvest round-0 alias-resolution evidence).
class ReplyObserver {
 public:
  virtual ~ReplyObserver() = default;
  virtual void on_trace_reply(FlowId flow, int ttl,
                              const probe::TraceProbeResult&) = 0;
};

class MdaTracer {
 public:
  MdaTracer(probe::ProbeEngine& engine, TraceConfig config,
            ReplyObserver* observer = nullptr);

  /// Run a full multipath trace from scratch.
  [[nodiscard]] TraceResult run();

  /// Run against shared state — used by the MDA-Lite when it switches
  /// over mid-trace so that already-bought knowledge is reused. The
  /// reported packet count covers everything consumed through `cache`
  /// since its construction.
  TraceResult run_with(FlowCache& cache, DiscoveryRecorder& recorder);

 private:
  /// Find the successors of `vertex` (at hop `h - 1`) by probing hop `h`
  /// through it. Returns false when node control could not steer any flow
  /// through the vertex.
  bool discover_successors(FlowCache& cache, DiscoveryRecorder& recorder,
                           int h, net::Ipv4Address vertex);

  /// Node control: generate fresh flows and probe them at `ttl` until one
  /// reaches `vertex`; returns it, or nullopt when the attempt cap is hit.
  std::optional<FlowId> next_flow_through(FlowCache& cache,
                                          DiscoveryRecorder& recorder, int ttl,
                                          net::Ipv4Address vertex);

  probe::ProbeEngine* engine_;
  TraceConfig config_;
  StoppingPoints stopping_;
  ReplyObserver* observer_;
  std::uint64_t node_control_probes_ = 0;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_MDA_H
