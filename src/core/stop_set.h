// Doubletree-style fleet stop set (Donnet et al., "Efficient Route
// Tracing from a Single Source"): the interface tracers consult to turn
// stopping from a per-trace decision into a fleet-wide, cross-run one.
//
// The set is keyed on (interface, distance): an entry means some earlier
// trace — this run or a previous survey loaded from the topology cache —
// confirmed that interface at that TTL. Tracers check it after each
// committed window and halt forward probing on a hit; the single-flow
// tracer additionally runs Doubletree's backward phase (start at an
// adaptive mid-path TTL, probe backward until a stop-set hit).
//
// Determinism contract: implementations must answer queries from a
// FROZEN epoch — the state visible when the run started — while record()
// calls accumulate invisibly for later runs. That is what keeps jobs=N
// output byte-identical to jobs=1 given the same warm/cold cache state:
// no trace's stopping decision can depend on what a concurrent trace
// discovered moments earlier.
#ifndef MMLPT_CORE_STOP_SET_H
#define MMLPT_CORE_STOP_SET_H

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ip_address.h"

namespace mmlpt::core {

/// What a completed full trace knew about its destination — the basis of
/// the probes_saved_by_stop_set accounting (a stopped trace cannot count
/// the probes it did not send; the prior full trace can).
struct DestinationRecord {
  int distance = 0;           ///< TTL at which the destination answered
  std::uint64_t probes = 0;   ///< packets the full trace spent

  friend bool operator==(const DestinationRecord&,
                         const DestinationRecord&) = default;
};

class StopSet {
 public:
  virtual ~StopSet() = default;

  /// Confirmed-hop query: did an EARLIER run confirm `addr` at TTL
  /// `distance`? Must read only the frozen epoch (see file comment).
  [[nodiscard]] virtual bool contains(const net::IpAddress& addr,
                                      int distance) const = 0;

  /// Record a discovered (interface, distance) pair for later runs.
  /// Never affects contains() within the current run.
  virtual void record(const net::IpAddress& addr, int distance) = 0;

  /// Frozen-epoch lookup of a destination's full-trace record.
  [[nodiscard]] virtual std::optional<DestinationRecord> destination(
      const net::IpAddress& addr) const = 0;

  /// Record a completed full trace's destination distance and cost.
  virtual void record_destination(const net::IpAddress& addr,
                                  const DestinationRecord& record) = 0;

  /// Doubletree's adaptive mid-path start TTL, derived from the frozen
  /// epoch's destination distances (half the median path length).
  /// 0 = no cached data; start at TTL 1 with no backward phase.
  [[nodiscard]] virtual int midpoint_ttl() const = 0;
};

/// True when every address in `addrs` is a confirmed hop at `distance` —
/// the forward-halt condition the hop-by-hop tracers use once a hop's
/// windows are committed. An empty hop never stops a trace.
[[nodiscard]] inline bool all_in_stop_set(
    const StopSet& stop_set, const std::vector<net::IpAddress>& addrs,
    int distance) {
  if (addrs.empty()) return false;
  for (const auto& addr : addrs) {
    if (!stop_set.contains(addr, distance)) return false;
  }
  return true;
}

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_STOP_SET_H
