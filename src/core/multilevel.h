// Multilevel MDA-Lite Paris Traceroute (Sec. 4): run the MDA-Lite trace,
// harvest alias-resolution evidence from the trace's own replies (round
// 0, "for free"), then refine alias sets over up to 10 additional rounds
// of probing: round 1 adds one direct (echo) probe per address for the
// Network Fingerprinting signature plus 30 indirect probes per address
// for the MBT; each later round adds 30 more indirect probes.
#ifndef MMLPT_CORE_MULTILEVEL_H
#define MMLPT_CORE_MULTILEVEL_H

#include <map>
#include <vector>

#include "alias/resolver.h"
#include "core/mda_lite.h"
#include "core/trace_log.h"
#include "topology/graph.h"

namespace mmlpt::core {

struct MultilevelConfig {
  TraceConfig trace;
  int rounds = 10;
  int mbt_samples_per_round = 30;
  bool direct_fingerprint_round1 = true;
  alias::AliasResolver::Config resolver;
};

/// Alias state captured after each probing round.
struct RoundSnapshot {
  /// hop -> alias sets over that hop's addresses.
  std::map<int, std::vector<alias::AliasSet>> sets_by_hop;
  std::uint64_t packets = 0;  ///< cumulative packets when the round ended
};

struct MultilevelResult {
  TraceResult trace;            ///< the IP-level MDA-Lite trace
  std::vector<RoundSnapshot> rounds;  ///< index r = state after round r
  topo::MultipathGraph router_graph;  ///< final round's merged view
  std::uint64_t total_packets = 0;
  /// False on IPv6: the MBT needs the IP-ID header field, which v6 does
  /// not have. The tracer then degrades to IP-level output (one empty
  /// round-0 snapshot, router_graph == ip graph) and the JSON carries an
  /// explicit "alias": "unsupported-family" marker.
  bool alias_supported = true;
  /// Final evidence store (classify_set for Table 2 comparisons).
  alias::AliasResolver resolver;

  [[nodiscard]] const RoundSnapshot& final_round() const {
    return rounds.back();
  }
};

class MultilevelTracer {
 public:
  MultilevelTracer(probe::ProbeEngine& engine, MultilevelConfig config)
      : engine_(&engine), config_(config) {}

  [[nodiscard]] MultilevelResult run();

  /// Merge a discovered IP-level graph per `sets_by_hop`: each accepted
  /// alias set collapses to one vertex (lowest member address). Exposed
  /// for the survey's router-level analysis.
  [[nodiscard]] static topo::MultipathGraph merge_by_aliases(
      const topo::MultipathGraph& ip_graph,
      const std::map<int, std::vector<alias::AliasSet>>& sets_by_hop);

 private:
  /// Observer bridging trace replies into round-0 evidence.
  class Collector;

  probe::ProbeEngine* engine_;
  MultilevelConfig config_;
};

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_MULTILEVEL_H
