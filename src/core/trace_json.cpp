#include "core/trace_json.h"

#include "common/json.h"

namespace mmlpt::core {

namespace {

void emit_graph(JsonWriter& w, const topo::MultipathGraph& graph) {
  w.begin_object();
  w.key("hop_count");
  w.value(static_cast<std::uint64_t>(graph.hop_count()));
  w.key("vertex_count");
  w.value(static_cast<std::uint64_t>(graph.vertex_count()));
  w.key("edge_count");
  w.value(static_cast<std::uint64_t>(graph.edge_count()));
  w.key("hops");
  w.begin_array();
  for (std::uint16_t h = 0; h < graph.hop_count(); ++h) {
    w.begin_array();
    for (const auto v : graph.vertices_at(h)) {
      w.begin_object();
      w.key("addr");
      const auto addr = graph.vertex(v).addr;
      if (addr.is_unspecified()) {
        w.value_null();
      } else {
        w.value(addr.to_string());
      }
      w.key("successors");
      w.begin_array();
      for (const auto s : graph.successors(v)) {
        w.value(graph.vertex(s).addr.to_string());
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void emit_outcome(JsonWriter& w, alias::Outcome outcome) {
  switch (outcome) {
    case alias::Outcome::kAccept: w.value("accept"); break;
    case alias::Outcome::kReject: w.value("reject"); break;
    case alias::Outcome::kUnable: w.value("unable"); break;
  }
}

}  // namespace

std::string graph_to_json(const topo::MultipathGraph& graph) {
  JsonWriter w;
  emit_graph(w, graph);
  return std::move(w).take();
}

std::string trace_to_json(const TraceResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("packets");
  w.value(result.packets);
  w.key("reached_destination");
  w.value(result.reached_destination);
  w.key("switched_to_mda");
  w.value(result.switched_to_mda);
  w.key("meshing_test_probes");
  w.value(result.meshing_test_probes);
  w.key("node_control_probes");
  w.value(result.node_control_probes);
  w.key("graph");
  emit_graph(w, result.graph);
  w.key("discovery_events");
  w.begin_array();
  for (const auto& e : result.events) {
    w.begin_object();
    w.key("packets");
    w.value(e.packets);
    w.key("kind");
    w.value(e.is_edge ? "edge" : "vertex");
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

namespace {

std::string envelope_fields(std::uint64_t probes_sent, std::uint64_t saved) {
  std::string fields = "\"probes_sent\":";
  fields += std::to_string(probes_sent);
  fields += ",\"probes_saved_by_stop_set\":";
  fields += std::to_string(saved);
  return fields;
}

}  // namespace

std::string stop_set_envelope_fields(const TraceResult& result) {
  if (!result.stop_set_active) return {};
  return envelope_fields(result.packets, result.probes_saved_by_stop_set);
}

std::string stop_set_envelope_fields(const MultilevelResult& result) {
  if (!result.trace.stop_set_active) return {};
  return envelope_fields(result.total_packets,
                         result.trace.probes_saved_by_stop_set);
}

std::string multilevel_to_json(const MultilevelResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("total_packets");
  w.value(result.total_packets);
  if (!result.alias_supported) {
    // IPv6 has no IP-ID header field for the MBT; the key is only
    // emitted in the degraded case so v4 output stays byte-stable.
    w.key("alias");
    w.value("unsupported-family");
  }
  w.key("ip_level");
  emit_graph(w, result.trace.graph);
  w.key("router_level");
  emit_graph(w, result.router_graph);
  w.key("rounds");
  w.begin_array();
  for (const auto& round : result.rounds) {
    w.begin_object();
    w.key("packets");
    w.value(round.packets);
    w.key("alias_sets");
    w.begin_array();
    for (const auto& [hop, sets] : round.sets_by_hop) {
      for (const auto& set : sets) {
        w.begin_object();
        w.key("hop");
        w.value(static_cast<std::int64_t>(hop));
        w.key("outcome");
        emit_outcome(w, set.outcome);
        w.key("members");
        w.begin_array();
        for (const auto addr : set.members) {
          w.value(addr.to_string());
        }
        w.end_array();
        w.end_object();
      }
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).take();
}

}  // namespace mmlpt::core
