#include "core/trace_log.h"

#include "common/assert.h"

namespace mmlpt::core {

void DiscoveryRecorder::ensure_hop(int hop) {
  MMLPT_EXPECTS(hop >= 0);
  while (static_cast<int>(vertices_.size()) <= hop) {
    vertices_.emplace_back();
    vertex_sets_.emplace_back();
    edges_.emplace_back();
  }
}

bool DiscoveryRecorder::add_vertex(int hop, net::Ipv4Address addr,
                                   std::uint64_t packets) {
  if (addr.is_unspecified()) return false;
  ensure_hop(hop);
  const auto [it, inserted] =
      vertex_sets_[static_cast<std::size_t>(hop)].insert(addr);
  if (!inserted) return false;
  vertices_[static_cast<std::size_t>(hop)].push_back(addr);
  events_.push_back({packets, false});
  ++vertex_total_;
  return true;
}

bool DiscoveryRecorder::add_edge(int hop, net::Ipv4Address from,
                                 net::Ipv4Address to, std::uint64_t packets) {
  if (from.is_unspecified() || to.is_unspecified()) return false;
  ensure_hop(hop + 1);
  MMLPT_EXPECTS(has_vertex(hop, from));
  MMLPT_EXPECTS(has_vertex(hop + 1, to));
  const auto [it, inserted] =
      edges_[static_cast<std::size_t>(hop)].insert({from, to});
  if (!inserted) return false;
  events_.push_back({packets, true});
  ++edge_total_;
  return true;
}

const std::vector<net::Ipv4Address>& DiscoveryRecorder::vertices(
    int hop) const {
  static const std::vector<net::Ipv4Address> kEmpty;
  if (hop < 0 || hop >= hop_count()) return kEmpty;
  return vertices_[static_cast<std::size_t>(hop)];
}

bool DiscoveryRecorder::has_vertex(int hop, net::Ipv4Address addr) const {
  if (hop < 0 || hop >= hop_count()) return false;
  return vertex_sets_[static_cast<std::size_t>(hop)].count(addr) > 0;
}

std::size_t DiscoveryRecorder::successor_count(int hop,
                                               net::Ipv4Address addr) const {
  if (hop < 0 || hop >= hop_count()) return 0;
  std::size_t count = 0;
  for (const auto& [from, to] : edges_[static_cast<std::size_t>(hop)]) {
    if (from == addr) ++count;
  }
  return count;
}

std::size_t DiscoveryRecorder::predecessor_count(int hop,
                                                 net::Ipv4Address addr) const {
  if (hop <= 0 || hop > hop_count()) return 0;
  std::size_t count = 0;
  for (const auto& [from, to] : edges_[static_cast<std::size_t>(hop - 1)]) {
    if (to == addr) ++count;
  }
  return count;
}

std::vector<net::Ipv4Address> DiscoveryRecorder::successors(
    int hop, net::Ipv4Address addr) const {
  std::vector<net::Ipv4Address> out;
  if (hop < 0 || hop >= hop_count()) return out;
  for (const auto& [from, to] : edges_[static_cast<std::size_t>(hop)]) {
    if (from == addr) out.push_back(to);
  }
  return out;
}

topo::MultipathGraph DiscoveryRecorder::to_graph() const {
  topo::MultipathGraph g;
  for (int h = 0; h < hop_count(); ++h) {
    g.add_hop();
    for (const auto addr : vertices_[static_cast<std::size_t>(h)]) {
      (void)g.add_vertex(static_cast<std::uint16_t>(h), addr);
    }
  }
  for (int h = 0; h + 1 < hop_count(); ++h) {
    for (const auto& [from, to] : edges_[static_cast<std::size_t>(h)]) {
      const auto a = g.find_at(static_cast<std::uint16_t>(h), from);
      const auto b = g.find_at(static_cast<std::uint16_t>(h + 1), to);
      if (a != topo::kInvalidVertex && b != topo::kInvalidVertex) {
        g.add_edge(a, b);
      }
    }
  }
  return g;
}

void finalize_stop_set(const TraceConfig& config, net::IpAddress destination,
                       int destination_distance, TraceResult& result) {
  StopSet* stop_set = config.stop_set;
  if (stop_set == nullptr) return;
  result.stop_set_active = config.consult_stop_set;
  if (result.stop_set_active && result.stopped_on_hit) {
    if (const auto prior = stop_set->destination(destination)) {
      if (prior->probes > result.packets) {
        result.probes_saved_by_stop_set = prior->probes - result.packets;
      }
    }
  }
  // Only a FULL trace that reached its destination updates the record:
  // stopped traces would otherwise decay the baseline the savings are
  // measured against.
  if (result.reached_destination && !result.stopped_on_hit &&
      destination_distance > 0) {
    stop_set->record_destination(
        destination, {destination_distance, result.packets});
  }
}

}  // namespace mmlpt::core
