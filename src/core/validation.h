// The Sec. 3 statistical validation harness: run a tracer implementation
// repeatedly against a Fakeroute topology and check that its empirical
// failure rate matches the exact theoretical failure probability, with a
// confidence interval (the paper: 50 samples x 1000 runs on the simplest
// diamond, theory 0.03125, measured 0.03206 +/- 0.00078).
//
// Also hosts the run_trace() convenience used throughout benches and
// tests: ground truth -> simulator -> engine -> tracer -> result.
#ifndef MMLPT_CORE_VALIDATION_H
#define MMLPT_CORE_VALIDATION_H

#include <cstdint>

#include "core/mda.h"
#include "core/trace_log.h"
#include "fakeroute/simulator.h"
#include "probe/network.h"
#include "topology/ground_truth.h"

namespace mmlpt::core {

enum class Algorithm : std::uint8_t { kMda, kMdaLite, kSingleFlow };

/// Trace a simulated ground truth once with the chosen algorithm.
///
/// Re-entrancy: every run builds its own simulator, network adapter and
/// engine on the stack and the TraceConfig is taken by value, so
/// concurrent calls (one per fleet worker) never share mutable state —
/// `truth` is only read.
[[nodiscard]] TraceResult run_trace(const topo::GroundTruth& truth,
                                    Algorithm algorithm, TraceConfig config,
                                    fakeroute::SimConfig sim_config,
                                    std::uint64_t seed,
                                    ReplyObserver* observer = nullptr);

/// Same, but over a caller-supplied transport queue — the seam that lets
/// the fleet orchestrator interpose decorators (rate limiting, latency
/// emulation), multiplex the trace onto a shared fleet transport
/// (FleetTransportHub channel), or swap in a real RawSocketNetwork.
/// `source`/`destination` address the crafted probes. The engine owns
/// the queue's tickets for the duration of the trace.
[[nodiscard]] TraceResult run_trace_with_network(
    probe::TransportQueue& network, net::Ipv4Address source,
    net::Ipv4Address destination, Algorithm algorithm, TraceConfig config,
    ReplyObserver* observer = nullptr);

/// Wrap a bare multipath graph (no router data) as a ground truth whose
/// routers are all independent, well-behaved responders — the Fakeroute
/// validation setting where only the discovery algorithm is under test.
[[nodiscard]] topo::GroundTruth plain_ground_truth(topo::MultipathGraph graph);

struct ValidationConfig {
  Algorithm algorithm = Algorithm::kMda;
  TraceConfig trace;
  fakeroute::SimConfig sim;
  int runs_per_sample = 1000;
  int samples = 50;
  std::uint64_t seed = 1;
};

struct ValidationReport {
  double theoretical_failure = 0.0;
  double mean_failure = 0.0;
  double ci95_half_width = 0.0;
  int runs_per_sample = 0;
  int samples = 0;

  /// Theory inside the measured confidence interval?
  [[nodiscard]] bool consistent() const noexcept {
    return theoretical_failure >= mean_failure - ci95_half_width &&
           theoretical_failure <= mean_failure + ci95_half_width;
  }
};

/// Run the harness: failure = the discovered topology differs from the
/// ground truth.
[[nodiscard]] ValidationReport validate(const topo::GroundTruth& truth,
                                        const ValidationConfig& config);

}  // namespace mmlpt::core

#endif  // MMLPT_CORE_VALIDATION_H
