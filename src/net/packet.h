// High-level probe / reply packet builders and parsers. These are the wire
// functions shared by the probing engine and the Fakeroute simulator: a
// probe is a real IPv4/UDP or IPv6/UDP datagram (or ICMP(v6) echo), a
// reply a real ICMPv4 / ICMPv6 datagram, exactly as on the Internet. The
// family is sniffed from the IP version nibble, so every consumer handles
// both stacks through one surface.
#ifndef MMLPT_NET_PACKET_H
#define MMLPT_NET_PACKET_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/icmp.h"
#include "net/icmpv6.h"
#include "net/ip_address.h"
#include "net/ipv4.h"
#include "net/ipv6.h"
#include "net/udp.h"

namespace mmlpt::net {

/// The fields per-flow load balancers hash: the classic five-tuple, plus
/// the IPv6 flow label (RFC 6438 directs v6 load balancers to hash the
/// (src, dst, flow label) 3-tuple — the label IS the Paris identifier).
struct FlowTuple {
  IpAddress src;
  IpAddress dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 17;
  std::uint32_t flow_label = 0;  ///< v6 only; always 0 on v4

  friend bool operator==(const FlowTuple&, const FlowTuple&) = default;

  /// A stable 64-bit digest of the tuple (used by simulated load balancers
  /// as the hash input; salted per router). The v4 digest is unchanged
  /// from the v4-only era, so v4 simulations reproduce bit for bit.
  [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// Fields of a UDP traceroute probe we control / read back. The Paris
/// flow identifier lives in `src_port` on IPv4 and in `flow_label` on
/// IPv6 (ports stay constant there, so across flows nothing but the
/// label varies on the wire).
struct ProbeSpec {
  IpAddress src;
  IpAddress dst;
  std::uint16_t src_port = 0;      ///< v4 Paris flow identifier lives here
  std::uint16_t dst_port = 33434;  ///< classic traceroute port
  std::uint8_t ttl = 1;
  std::uint16_t ip_id = 0;         ///< v4 only; v6 has no identification
  std::uint32_t flow_label = 0;    ///< v6 Paris flow identifier
  std::uint16_t payload_bytes = 12;
};

/// Build the probe datagram (IPv4/IPv6 + UDP + zero payload), per the
/// destination's family.
[[nodiscard]] std::vector<std::uint8_t> build_udp_probe(const ProbeSpec& spec);

/// Build an ICMP(v6) echo request datagram (direct probing / ping).
[[nodiscard]] std::vector<std::uint8_t> build_echo_probe(
    const IpAddress& src, const IpAddress& dst, std::uint16_t identifier,
    std::uint16_t sequence, std::uint8_t ttl = 64, std::uint16_t ip_id = 0);

/// A probe datagram parsed back into fields (used by the simulator).
struct ParsedProbe {
  Family family = Family::kIpv4;
  Ipv4Header ip;    ///< valid when family == kIpv4
  Ipv6Header ip6;   ///< valid when family == kIpv6
  // Exactly one of the following is meaningful, per the IP protocol /
  // next header:
  UdpHeader udp;        ///< UDP probe (either family)
  IcmpMessage icmp;     ///< v4 echo request
  Icmpv6Message icmp6;  ///< v6 echo request

  // ---- family-neutral accessors ----
  [[nodiscard]] IpAddress src() const noexcept {
    return family == Family::kIpv4 ? ip.src : ip6.src;
  }
  [[nodiscard]] IpAddress dst() const noexcept {
    return family == Family::kIpv4 ? ip.dst : ip6.dst;
  }
  /// TTL (v4) or hop limit (v6).
  [[nodiscard]] std::uint8_t ttl() const noexcept {
    return family == Family::kIpv4 ? ip.ttl : ip6.hop_limit;
  }
  /// IPv4 identification; 0 on v6 (no such field).
  [[nodiscard]] std::uint16_t ip_id() const noexcept {
    return family == Family::kIpv4 ? ip.identification : 0;
  }
  [[nodiscard]] bool is_udp() const noexcept {
    return family == Family::kIpv4 ? ip.protocol == IpProto::kUdp
                                   : ip6.next_header == IpProto::kUdp;
  }
  [[nodiscard]] bool is_echo_request() const noexcept {
    return family == Family::kIpv4
               ? (ip.protocol == IpProto::kIcmp &&
                  icmp.type == IcmpType::kEchoRequest)
               : (ip6.next_header == IpProto::kIcmpv6 &&
                  icmp6.type == Icmpv6Type::kEchoRequest);
  }

  [[nodiscard]] FlowTuple flow() const noexcept;
};

[[nodiscard]] ParsedProbe parse_probe(std::span<const std::uint8_t> datagram);

/// An ICMP(v6) reply parsed into the fields the algorithms consume.
struct ParsedReply {
  Family family = Family::kIpv4;
  Ipv4Header outer;     ///< valid when family == kIpv4
  Ipv6Header outer6;    ///< valid when family == kIpv6
  IcmpMessage icmp;     ///< valid when family == kIpv4
  Icmpv6Message icmp6;  ///< valid when family == kIpv6
  /// For error replies: the quoted probe, re-parsed (checksum not verified;
  /// routers may quote truncated datagrams).
  std::optional<Ipv4Header> quoted_ip;
  std::optional<Ipv6Header> quoted_ip6;
  std::optional<UdpHeader> quoted_udp;
  std::optional<IcmpMessage> quoted_icmp;
  std::optional<Icmpv6Message> quoted_icmp6;

  [[nodiscard]] IpAddress responder() const noexcept {
    return family == Family::kIpv4 ? outer.src : outer6.src;
  }
  [[nodiscard]] bool is_time_exceeded() const noexcept {
    return family == Family::kIpv4
               ? icmp.type == IcmpType::kTimeExceeded
               : icmp6.type == Icmpv6Type::kTimeExceeded;
  }
  [[nodiscard]] bool is_port_unreachable() const noexcept {
    return family == Family::kIpv4
               ? (icmp.type == IcmpType::kDestUnreachable &&
                  icmp.code == kCodePortUnreachable)
               : (icmp6.type == Icmpv6Type::kDestUnreachable &&
                  icmp6.code == kCodePortUnreachableV6);
  }
  [[nodiscard]] bool is_echo_reply() const noexcept {
    return family == Family::kIpv4 ? icmp.type == IcmpType::kEchoReply
                                   : icmp6.type == Icmpv6Type::kEchoReply;
  }
  /// Outer-header identification (v4) — the alias-resolution IP-ID
  /// signal. 0 on v6: the field does not exist, which is why the
  /// multilevel alias stage reports "unsupported-family" there.
  [[nodiscard]] std::uint16_t reply_ip_id() const noexcept {
    return family == Family::kIpv4 ? outer.identification : 0;
  }
  /// Outer-header TTL (v4) / hop limit (v6) — fingerprint input.
  [[nodiscard]] std::uint8_t reply_ttl() const noexcept {
    return family == Family::kIpv4 ? outer.ttl : outer6.hop_limit;
  }
  [[nodiscard]] const std::vector<MplsLabelEntry>& mpls_labels()
      const noexcept {
    return family == Family::kIpv4 ? icmp.mpls_labels : icmp6.mpls_labels;
  }
};

[[nodiscard]] ParsedReply parse_reply(std::span<const std::uint8_t> datagram);

/// Wrap an ICMP message in an IPv4 header from `src` to `dst`.
[[nodiscard]] std::vector<std::uint8_t> build_icmp_datagram(
    const IcmpMessage& message, const IpAddress& src, const IpAddress& dst,
    std::uint8_t ttl, std::uint16_t ip_id);

/// Wrap an ICMPv6 message in an IPv6 header from `src` to `dst` (v6 has
/// no identification field, hence no ip_id).
[[nodiscard]] std::vector<std::uint8_t> build_icmpv6_datagram(
    const Icmpv6Message& message, const IpAddress& src, const IpAddress& dst,
    std::uint8_t hop_limit);

}  // namespace mmlpt::net

#endif  // MMLPT_NET_PACKET_H
