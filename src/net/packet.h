// High-level probe / reply packet builders and parsers. These are the wire
// functions shared by the probing engine and the Fakeroute simulator: a
// probe is a real IPv4/UDP datagram (or ICMP echo), a reply a real ICMPv4
// datagram, exactly as on the Internet.
#ifndef MMLPT_NET_PACKET_H
#define MMLPT_NET_PACKET_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/icmp.h"
#include "net/ip_address.h"
#include "net/ipv4.h"
#include "net/udp.h"

namespace mmlpt::net {

/// The classic five-tuple, which per-flow load balancers hash.
struct FlowTuple {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 17;

  friend bool operator==(const FlowTuple&, const FlowTuple&) = default;

  /// A stable 64-bit digest of the tuple (used by simulated load balancers
  /// as the hash input; salted per router).
  [[nodiscard]] std::uint64_t digest() const noexcept;
};

/// Fields of a UDP traceroute probe we control / read back.
struct ProbeSpec {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t src_port = 0;  ///< Paris flow identifier lives here
  std::uint16_t dst_port = 33434;  ///< classic traceroute port
  std::uint8_t ttl = 1;
  std::uint16_t ip_id = 0;
  std::uint16_t payload_bytes = 12;
};

/// Build the probe datagram (IPv4 + UDP + zero payload).
[[nodiscard]] std::vector<std::uint8_t> build_udp_probe(const ProbeSpec& spec);

/// Build an ICMP echo request datagram (direct probing / ping).
[[nodiscard]] std::vector<std::uint8_t> build_echo_probe(
    Ipv4Address src, Ipv4Address dst, std::uint16_t identifier,
    std::uint16_t sequence, std::uint8_t ttl = 64, std::uint16_t ip_id = 0);

/// A probe datagram parsed back into fields (used by the simulator).
struct ParsedProbe {
  Ipv4Header ip;
  // Exactly one of the following is meaningful, per ip.protocol:
  UdpHeader udp;        ///< when protocol == kUdp
  IcmpMessage icmp;     ///< when protocol == kIcmp (echo request)

  [[nodiscard]] FlowTuple flow() const noexcept;
};

[[nodiscard]] ParsedProbe parse_probe(std::span<const std::uint8_t> datagram);

/// An ICMP reply parsed into the fields the algorithms consume.
struct ParsedReply {
  Ipv4Header outer;     ///< responder IP, reply TTL, IP-ID live here
  IcmpMessage icmp;
  /// For error replies: the quoted probe, re-parsed (checksum not verified;
  /// routers may quote truncated datagrams).
  std::optional<Ipv4Header> quoted_ip;
  std::optional<UdpHeader> quoted_udp;
  std::optional<IcmpMessage> quoted_icmp;

  [[nodiscard]] Ipv4Address responder() const noexcept { return outer.src; }
  [[nodiscard]] bool is_time_exceeded() const noexcept {
    return icmp.type == IcmpType::kTimeExceeded;
  }
  [[nodiscard]] bool is_port_unreachable() const noexcept {
    return icmp.type == IcmpType::kDestUnreachable &&
           icmp.code == kCodePortUnreachable;
  }
  [[nodiscard]] bool is_echo_reply() const noexcept {
    return icmp.type == IcmpType::kEchoReply;
  }
};

[[nodiscard]] ParsedReply parse_reply(std::span<const std::uint8_t> datagram);

/// Wrap an ICMP message in an IPv4 header from `src` to `dst`.
[[nodiscard]] std::vector<std::uint8_t> build_icmp_datagram(
    const IcmpMessage& message, Ipv4Address src, Ipv4Address dst,
    std::uint8_t ttl, std::uint16_t ip_id);

}  // namespace mmlpt::net

#endif  // MMLPT_NET_PACKET_H
