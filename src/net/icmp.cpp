#include "net/icmp.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"
#include "net/checksum.h"

namespace mmlpt::net {

namespace {

// RFC 4884: when extensions are appended, the quoted ("original datagram")
// region must be padded to 128 bytes and its length recorded in 32-bit words.
constexpr std::size_t kPaddedQuotedSize = 128;
constexpr std::uint8_t kExtVersion = 2;
constexpr std::uint8_t kClassMpls = 1;   // RFC 4950 MPLS Label Stack Class
constexpr std::uint8_t kCTypeIncoming = 1;

}  // namespace

namespace detail {

void append_mpls_extension(WireWriter& w,
                           std::span<const MplsLabelEntry> labels) {
  const std::size_t ext_start = w.size();
  w.u8(kExtVersion << 4);
  w.u8(0);
  w.u16(0);  // extension checksum placeholder
  const auto object_length =
      static_cast<std::uint16_t>(4 + 4 * labels.size());
  w.u16(object_length);
  w.u8(kClassMpls);
  w.u8(kCTypeIncoming);
  for (const auto& entry : labels) {
    MMLPT_EXPECTS(entry.label < (1u << 20));
    MMLPT_EXPECTS(entry.traffic_class < 8);
    const std::uint32_t word = (entry.label << 12) |
                               (std::uint32_t{entry.traffic_class} << 9) |
                               (entry.bottom_of_stack ? (1u << 8) : 0u) |
                               entry.ttl;
    w.u32(word);
  }
  const std::uint16_t sum =
      internet_checksum(w.view().subspan(ext_start));
  w.patch_u16(ext_start + 2, sum);
}

std::vector<MplsLabelEntry> parse_mpls_extension(WireReader& reader) {
  std::vector<MplsLabelEntry> labels;
  const std::size_t ext_start = reader.offset();
  const std::uint8_t version = reader.u8() >> 4;
  if (version != kExtVersion) {
    throw ParseError("unsupported ICMP extension version " +
                     std::to_string(version));
  }
  reader.skip(1);
  const std::uint16_t ext_checksum = reader.u16();
  if (ext_checksum != 0) {
    const std::size_t ext_size = reader.remaining() + 4;
    if (internet_checksum(reader.window(ext_start, ext_size)) != 0) {
      throw ParseError("ICMP extension checksum mismatch");
    }
  }
  while (reader.remaining() >= 4) {
    const std::uint16_t object_length = reader.u16();
    const std::uint8_t class_num = reader.u8();
    const std::uint8_t c_type = reader.u8();
    if (object_length < 4) {
      throw ParseError("ICMP extension object length too small");
    }
    const std::size_t body = object_length - 4;
    if (class_num == kClassMpls && c_type == kCTypeIncoming) {
      if (body % 4 != 0) {
        throw ParseError("MPLS label stack object not 4-byte aligned");
      }
      for (std::size_t i = 0; i < body / 4; ++i) {
        const std::uint32_t word = reader.u32();
        MplsLabelEntry entry;
        entry.label = word >> 12;
        entry.traffic_class = static_cast<std::uint8_t>((word >> 9) & 0x7);
        entry.bottom_of_stack = ((word >> 8) & 0x1) != 0;
        entry.ttl = static_cast<std::uint8_t>(word & 0xFF);
        labels.push_back(entry);
      }
    } else {
      reader.skip(body);  // unknown object: skip
    }
  }
  return labels;
}

}  // namespace detail

std::vector<std::uint8_t> IcmpMessage::serialize() const {
  WireWriter w(kPaddedQuotedSize + 32);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(0);  // checksum placeholder

  switch (type) {
    case IcmpType::kEchoRequest:
    case IcmpType::kEchoReply:
      w.u16(identifier);
      w.u16(sequence);
      w.bytes(echo_payload);
      break;
    case IcmpType::kTimeExceeded:
    case IcmpType::kDestUnreachable: {
      const bool multipart = !mpls_labels.empty();
      const std::size_t aligned = (quoted.size() + 3) / 4 * 4;
      const std::size_t quoted_size =
          multipart ? std::max(aligned, kPaddedQuotedSize) : quoted.size();
      const auto length_words = static_cast<std::uint8_t>(
          multipart ? quoted_size / 4 : 0);
      w.u8(0);              // unused
      w.u8(length_words);   // RFC 4884 length (0 when no extension)
      w.u16(0);             // unused / next-hop MTU
      w.bytes(quoted);
      if (multipart) {
        if (quoted.size() < quoted_size) {
          w.zeros(quoted_size - quoted.size());
        }
        detail::append_mpls_extension(w, mpls_labels);
      }
      break;
    }
  }

  const std::uint16_t sum = internet_checksum(w.view());
  w.patch_u16(2, sum);
  return std::move(w).take();
}

IcmpMessage IcmpMessage::parse(WireReader& reader) {
  const std::size_t start = reader.offset();
  const std::size_t message_size = reader.remaining();
  IcmpMessage m;
  m.type = static_cast<IcmpType>(reader.u8());
  m.code = reader.u8();
  const std::uint16_t checksum = reader.u16();
  if (checksum != 0 &&
      internet_checksum(reader.window(start, message_size)) != 0) {
    throw ParseError("ICMP checksum mismatch");
  }

  switch (m.type) {
    case IcmpType::kEchoRequest:
    case IcmpType::kEchoReply: {
      m.identifier = reader.u16();
      m.sequence = reader.u16();
      const auto payload = reader.bytes(reader.remaining());
      m.echo_payload.assign(payload.begin(), payload.end());
      break;
    }
    case IcmpType::kTimeExceeded:
    case IcmpType::kDestUnreachable: {
      reader.skip(1);  // unused
      const std::uint8_t length_words = reader.u8();
      reader.skip(2);  // unused / next-hop MTU
      if (length_words == 0) {
        const auto rest = reader.bytes(reader.remaining());
        m.quoted.assign(rest.begin(), rest.end());
      } else {
        const std::size_t quoted_size = std::size_t{length_words} * 4;
        const auto region = reader.bytes(quoted_size);
        m.quoted.assign(region.begin(), region.end());
        if (reader.remaining() >= 4) {
          m.mpls_labels = detail::parse_mpls_extension(reader);
        }
      }
      break;
    }
    default:
      throw ParseError("unsupported ICMP type " +
                       std::to_string(static_cast<int>(m.type)));
  }
  return m;
}

IcmpMessage make_time_exceeded(std::span<const std::uint8_t> offending_datagram,
                               std::span<const MplsLabelEntry> labels) {
  IcmpMessage m;
  m.type = IcmpType::kTimeExceeded;
  m.code = kCodeTtlExceeded;
  m.quoted.assign(offending_datagram.begin(), offending_datagram.end());
  m.mpls_labels.assign(labels.begin(), labels.end());
  return m;
}

IcmpMessage make_port_unreachable(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels) {
  IcmpMessage m;
  m.type = IcmpType::kDestUnreachable;
  m.code = kCodePortUnreachable;
  m.quoted.assign(offending_datagram.begin(), offending_datagram.end());
  m.mpls_labels.assign(labels.begin(), labels.end());
  return m;
}

IcmpMessage make_echo_request(std::uint16_t identifier, std::uint16_t sequence,
                              std::size_t payload_bytes) {
  IcmpMessage m;
  m.type = IcmpType::kEchoRequest;
  m.code = 0;
  m.identifier = identifier;
  m.sequence = sequence;
  m.echo_payload.assign(payload_bytes, 0xA5);
  return m;
}

IcmpMessage make_echo_reply(const IcmpMessage& request) {
  MMLPT_EXPECTS(request.type == IcmpType::kEchoRequest);
  IcmpMessage m = request;
  m.type = IcmpType::kEchoReply;
  return m;
}

}  // namespace mmlpt::net
