#include "net/icmpv6.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"
#include "net/checksum.h"

namespace mmlpt::net {

namespace {

// RFC 4884 Sec. 4.4/4.5 for ICMPv6: when extensions are appended the
// quoted region is zero-padded (128 bytes keeps parity with the v4 path
// and satisfies the 8-octet alignment) and its length recorded in 64-bit
// words in the first octet after the checksum.
constexpr std::size_t kPaddedQuotedSizeV6 = 128;

}  // namespace

std::vector<std::uint8_t> Icmpv6Message::serialize(
    const IpAddress& src, const IpAddress& dst) const {
  WireWriter w(kPaddedQuotedSizeV6 + 32);
  w.u8(static_cast<std::uint8_t>(type));
  w.u8(code);
  w.u16(0);  // checksum placeholder

  switch (type) {
    case Icmpv6Type::kEchoRequest:
    case Icmpv6Type::kEchoReply:
      w.u16(identifier);
      w.u16(sequence);
      w.bytes(echo_payload);
      break;
    case Icmpv6Type::kTimeExceeded:
    case Icmpv6Type::kDestUnreachable: {
      const bool multipart = !mpls_labels.empty();
      const std::size_t aligned = (quoted.size() + 7) / 8 * 8;
      const std::size_t quoted_size =
          multipart ? std::max(aligned, kPaddedQuotedSizeV6) : quoted.size();
      const auto length_words = static_cast<std::uint8_t>(
          multipart ? quoted_size / 8 : 0);
      w.u8(length_words);  // RFC 4884 length in 8-octet units (0 = none)
      w.u8(0);             // unused
      w.u16(0);            // unused
      w.bytes(quoted);
      if (multipart) {
        if (quoted.size() < quoted_size) {
          w.zeros(quoted_size - quoted.size());
        }
        detail::append_mpls_extension(w, mpls_labels);
      }
      break;
    }
  }

  const std::uint16_t sum = icmpv6_checksum(src, dst, w.view());
  w.patch_u16(2, sum);
  return std::move(w).take();
}

Icmpv6Message Icmpv6Message::parse(WireReader& reader, const IpAddress& src,
                                   const IpAddress& dst,
                                   bool verify_checksum) {
  const std::size_t start = reader.offset();
  const std::size_t message_size = reader.remaining();
  Icmpv6Message m;
  m.type = static_cast<Icmpv6Type>(reader.u8());
  m.code = reader.u8();
  const std::uint16_t checksum = reader.u16();
  if (verify_checksum && checksum != 0 &&
      icmpv6_checksum(src, dst, reader.window(start, message_size)) != 0) {
    throw ParseError("ICMPv6 checksum mismatch");
  }

  switch (m.type) {
    case Icmpv6Type::kEchoRequest:
    case Icmpv6Type::kEchoReply: {
      m.identifier = reader.u16();
      m.sequence = reader.u16();
      const auto payload = reader.bytes(reader.remaining());
      m.echo_payload.assign(payload.begin(), payload.end());
      break;
    }
    case Icmpv6Type::kTimeExceeded:
    case Icmpv6Type::kDestUnreachable: {
      const std::uint8_t length_words = reader.u8();
      reader.skip(3);  // unused
      if (length_words == 0) {
        const auto rest = reader.bytes(reader.remaining());
        m.quoted.assign(rest.begin(), rest.end());
      } else {
        const std::size_t quoted_size = std::size_t{length_words} * 8;
        const auto region = reader.bytes(quoted_size);
        m.quoted.assign(region.begin(), region.end());
        if (reader.remaining() >= 4) {
          m.mpls_labels = detail::parse_mpls_extension(reader);
        }
      }
      break;
    }
    default:
      throw ParseError("unsupported ICMPv6 type " +
                       std::to_string(static_cast<int>(m.type)));
  }
  return m;
}

Icmpv6Message make_time_exceeded_v6(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels) {
  Icmpv6Message m;
  m.type = Icmpv6Type::kTimeExceeded;
  m.code = kCodeHopLimitExceeded;
  m.quoted.assign(offending_datagram.begin(), offending_datagram.end());
  m.mpls_labels.assign(labels.begin(), labels.end());
  return m;
}

Icmpv6Message make_port_unreachable_v6(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels) {
  Icmpv6Message m;
  m.type = Icmpv6Type::kDestUnreachable;
  m.code = kCodePortUnreachableV6;
  m.quoted.assign(offending_datagram.begin(), offending_datagram.end());
  m.mpls_labels.assign(labels.begin(), labels.end());
  return m;
}

Icmpv6Message make_echo_request_v6(std::uint16_t identifier,
                                   std::uint16_t sequence,
                                   std::size_t payload_bytes) {
  Icmpv6Message m;
  m.type = Icmpv6Type::kEchoRequest;
  m.code = 0;
  m.identifier = identifier;
  m.sequence = sequence;
  m.echo_payload.assign(payload_bytes, 0xA5);
  return m;
}

Icmpv6Message make_echo_reply_v6(const Icmpv6Message& request) {
  MMLPT_EXPECTS(request.type == Icmpv6Type::kEchoRequest);
  Icmpv6Message m = request;
  m.type = Icmpv6Type::kEchoReply;
  return m;
}

}  // namespace mmlpt::net
