#include "net/ipv6.h"

#include <algorithm>

#include "common/assert.h"
#include "common/error.h"

namespace mmlpt::net {

std::vector<std::uint8_t> Ipv6Header::serialize(
    std::span<const std::uint8_t> payload) const {
  MMLPT_EXPECTS(src.is_v6() && dst.is_v6());
  MMLPT_EXPECTS(flow_label <= kMaxFlowLabel);
  WireWriter w(kIpv6HeaderSize + payload.size());
  const auto length =
      payload_length != 0 ? payload_length
                          : static_cast<std::uint16_t>(payload.size());
  w.u32((std::uint32_t{6} << 28) | (std::uint32_t{traffic_class} << 20) |
        flow_label);
  w.u16(length);
  w.u8(static_cast<std::uint8_t>(next_header));
  w.u8(hop_limit);
  w.bytes(src.bytes());
  w.bytes(dst.bytes());
  w.bytes(payload);
  return std::move(w).take();
}

Ipv6Header Ipv6Header::parse(WireReader& reader) {
  const std::uint32_t word = reader.u32();
  if ((word >> 28) != 6) {
    throw ParseError("not an IPv6 packet (version " +
                     std::to_string(word >> 28) + ")");
  }
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>((word >> 20) & 0xFF);
  h.flow_label = word & kMaxFlowLabel;
  h.payload_length = reader.u16();
  h.next_header = static_cast<IpProto>(reader.u8());
  h.hop_limit = reader.u8();
  IpAddress::Bytes src{};
  IpAddress::Bytes dst{};
  const auto src_span = reader.bytes(16);
  const auto dst_span = reader.bytes(16);
  std::copy(src_span.begin(), src_span.end(), src.begin());
  std::copy(dst_span.begin(), dst_span.end(), dst.begin());
  h.src = IpAddress::v6(src);
  h.dst = IpAddress::v6(dst);
  return h;
}

}  // namespace mmlpt::net
