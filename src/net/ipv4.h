// IPv4 header craft / parse (RFC 791, no options emitted; options honoured
// via IHL when parsing).
#ifndef MMLPT_NET_IPV4_H
#define MMLPT_NET_IPV4_H

#include <cstdint>
#include <span>
#include <vector>

#include "net/ip_address.h"
#include "net/wire.h"

namespace mmlpt::net {

inline constexpr std::size_t kIpv4HeaderSize = 20;

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kIcmpv6 = 58,  ///< IPv6 next-header value for ICMPv6
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  ///< filled by serialize when 0
  std::uint16_t identification = 0;
  bool dont_fragment = false;
  std::uint8_t ttl = 64;
  IpProto protocol = IpProto::kUdp;
  std::uint16_t checksum = 0;  ///< filled by serialize
  Ipv4Address src;
  Ipv4Address dst;
  std::uint8_t header_length = kIpv4HeaderSize;  ///< set while parsing

  /// Serialize header followed by `payload`; computes total length and
  /// header checksum.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> payload) const;

  /// Parse the header at the reader's position; leaves the reader at the
  /// first payload byte (skipping options). Throws ParseError on malformed
  /// input or checksum mismatch when `verify_checksum`.
  [[nodiscard]] static Ipv4Header parse(WireReader& reader,
                                        bool verify_checksum = true);
};

}  // namespace mmlpt::net

#endif  // MMLPT_NET_IPV4_H
