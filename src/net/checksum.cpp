#include "net/checksum.h"

namespace mmlpt::net {

namespace {

std::uint32_t sum_words(std::span<const std::uint8_t> data,
                        std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    acc += (std::uint32_t{data[i]} << 8) | std::uint32_t{data[i + 1]};
  }
  if (i < data.size()) {
    acc += std::uint32_t{data[i]} << 8;  // odd trailing byte, zero padded
  }
  return acc;
}

std::uint16_t fold(std::uint32_t acc) noexcept {
  while (acc >> 16) {
    acc = (acc & 0xFFFF) + (acc >> 16);
  }
  return static_cast<std::uint16_t>(~acc & 0xFFFF);
}

/// Pseudo-header word sum for either family: addresses, payload length,
/// and the next-header / protocol number.
std::uint32_t pseudo_header_sum(const IpAddress& src, const IpAddress& dst,
                                std::uint32_t length,
                                std::uint8_t protocol) noexcept {
  std::uint32_t acc = 0;
  if (src.is_v4()) {
    acc += src.value() >> 16;
    acc += src.value() & 0xFFFF;
    acc += dst.value() >> 16;
    acc += dst.value() & 0xFFFF;
  } else {
    acc = sum_words(src.bytes(), acc);
    acc = sum_words(dst.bytes(), acc);
  }
  acc += length >> 16;
  acc += length & 0xFFFF;
  acc += protocol;
  return acc;
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return fold(sum_words(data, 0));
}

std::uint16_t udp_checksum(const IpAddress& src, const IpAddress& dst,
                           std::span<const std::uint8_t> segment) noexcept {
  const std::uint32_t acc = pseudo_header_sum(
      src, dst, static_cast<std::uint32_t>(segment.size()), 17);
  const std::uint16_t checksum = fold(sum_words(segment, acc));
  return checksum == 0 ? 0xFFFF : checksum;
}

std::uint16_t icmpv6_checksum(const IpAddress& src, const IpAddress& dst,
                              std::span<const std::uint8_t> message) noexcept {
  const std::uint32_t acc = pseudo_header_sum(
      src, dst, static_cast<std::uint32_t>(message.size()), 58);
  return fold(sum_words(message, acc));
}

}  // namespace mmlpt::net
