// Dual-stack IP address value type: a family tag plus 16 bytes of
// storage. IPv4 addresses occupy the first four bytes (big-endian), so
// ordering and hashing of a pure-v4 population are identical to the
// historical uint32-based Ipv4Address — every v4 output stays stable.
#ifndef MMLPT_NET_IP_ADDRESS_H
#define MMLPT_NET_IP_ADDRESS_H

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace mmlpt::net {

/// Address family tag; values match the IP version nibble.
enum class Family : std::uint8_t {
  kIpv4 = 4,
  kIpv6 = 6,
};

/// A dual-stack IP address. IPv4 values are held in host byte order via
/// value(); IPv6 values as 16 bytes in network order via bytes().
class IpAddress {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t host_order)
      : bytes_{static_cast<std::uint8_t>(host_order >> 24),
               static_cast<std::uint8_t>(host_order >> 16),
               static_cast<std::uint8_t>(host_order >> 8),
               static_cast<std::uint8_t>(host_order)} {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : bytes_{a, b, c, d} {}

  /// An IPv6 address from 16 network-order bytes.
  [[nodiscard]] static constexpr IpAddress v6(const Bytes& bytes) {
    IpAddress addr;
    addr.family_ = Family::kIpv6;
    addr.bytes_ = bytes;
    return addr;
  }

  /// An IPv6 address from two 64-bit halves (host order): hi = first 8
  /// bytes, lo = last 8.
  [[nodiscard]] static constexpr IpAddress v6(std::uint64_t hi,
                                              std::uint64_t lo) {
    Bytes b{};
    for (int i = 0; i < 8; ++i) {
      b[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(hi >> (56 - 8 * i));
      b[static_cast<std::size_t>(8 + i)] =
          static_cast<std::uint8_t>(lo >> (56 - 8 * i));
    }
    return v6(b);
  }

  /// Parse dotted-quad (IPv4) or RFC 4291 colon-hex (IPv6, including ::
  /// compression and an embedded trailing dotted-quad); nullopt on
  /// malformed input.
  [[nodiscard]] static std::optional<IpAddress> parse(std::string_view text);

  /// Parse or throw mmlpt::ParseError.
  [[nodiscard]] static IpAddress parse_or_throw(std::string_view text);

  [[nodiscard]] constexpr Family family() const noexcept { return family_; }
  [[nodiscard]] constexpr bool is_v4() const noexcept {
    return family_ == Family::kIpv4;
  }
  [[nodiscard]] constexpr bool is_v6() const noexcept {
    return family_ == Family::kIpv6;
  }

  /// Host-order uint32 view of an IPv4 address (first four bytes; only
  /// meaningful when is_v4()).
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return (std::uint32_t{bytes_[0]} << 24) | (std::uint32_t{bytes_[1]} << 16) |
           (std::uint32_t{bytes_[2]} << 8) | std::uint32_t{bytes_[3]};
  }

  /// The 16 network-order storage bytes (an IPv4 address occupies the
  /// first four, rest zero).
  [[nodiscard]] constexpr const Bytes& bytes() const noexcept {
    return bytes_;
  }

  /// First / second 8 bytes as host-order uint64 (hash and digest input).
  [[nodiscard]] constexpr std::uint64_t hi64() const noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | bytes_[static_cast<std::size_t>(i)];
    }
    return v;
  }
  [[nodiscard]] constexpr std::uint64_t lo64() const noexcept {
    std::uint64_t v = 0;
    for (int i = 8; i < 16; ++i) {
      v = (v << 8) | bytes_[static_cast<std::size_t>(i)];
    }
    return v;
  }

  /// All-zero address of its family (0.0.0.0 / ::) — the "star" marker.
  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return (hi64() | lo64()) == 0;
  }

  /// Dotted-quad (v4) or RFC 5952 canonical colon-hex (v6).
  [[nodiscard]] std::string to_string() const;

  /// Family tag first, then the 16 storage bytes lexicographically — for
  /// a v4 population this is exactly the historical uint32 order.
  friend constexpr auto operator<=>(const IpAddress&,
                                    const IpAddress&) = default;

 private:
  Family family_ = Family::kIpv4;
  Bytes bytes_{};
};

/// Transitional alias: the v4-era name, now family-tagged.
using Ipv4Address = IpAddress;

/// Parse a family spelling: "4" | "ipv4" | "inet" and "6" | "ipv6" |
/// "inet6"; nullopt otherwise. The one vocabulary every CLI and bench
/// shares for --family.
[[nodiscard]] std::optional<Family> parse_family_name(std::string_view name);

std::ostream& operator<<(std::ostream& os, const IpAddress& addr);

}  // namespace mmlpt::net

template <>
struct std::hash<mmlpt::net::IpAddress> {
  std::size_t operator()(const mmlpt::net::IpAddress& a) const noexcept {
    if (a.is_v4()) {
      // Identical to the historical std::hash<uint32> path.
      return std::hash<std::uint32_t>{}(a.value());
    }
    return std::hash<std::uint64_t>{}(a.hi64() ^
                                      (a.lo64() * 0x9E3779B97F4A7C15ULL));
  }
};

#endif  // MMLPT_NET_IP_ADDRESS_H
