// IPv4 address value type.
#ifndef MMLPT_NET_IP_ADDRESS_H
#define MMLPT_NET_IP_ADDRESS_H

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace mmlpt::net {

/// An IPv4 address held in host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parse dotted-quad notation; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  /// Parse or throw mmlpt::ParseError.
  [[nodiscard]] static Ipv4Address parse_or_throw(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }
  [[nodiscard]] constexpr bool is_unspecified() const noexcept {
    return value_ == 0;
  }

  /// Dotted-quad string.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address addr);

}  // namespace mmlpt::net

template <>
struct std::hash<mmlpt::net::Ipv4Address> {
  std::size_t operator()(mmlpt::net::Ipv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

#endif  // MMLPT_NET_IP_ADDRESS_H
