#include "net/ip_address.h"

#include <charconv>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace mmlpt::net {

namespace {

std::optional<IpAddress> parse_v4(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    p = next;
    if (octets == 4) break;
    if (p >= end || *p != '.') return std::nullopt;
    ++p;
  }
  if (octets != 4 || p != end) return std::nullopt;
  return IpAddress(value);
}

/// RFC 4291 colon-hex: up to eight 16-bit groups, at most one `::`
/// compression, optionally a trailing embedded dotted-quad.
std::optional<IpAddress> parse_v6(std::string_view text) {
  std::array<std::uint16_t, 8> groups{};
  int filled = 0;        // groups written before the ::
  int tail_start = -1;   // index in `groups` where post-:: groups begin
  std::array<std::uint16_t, 8> tail{};
  int tail_count = 0;

  std::size_t i = 0;
  bool seen_compression = false;
  if (text.size() >= 2 && text[0] == ':' && text[1] == ':') {
    seen_compression = true;
    i = 2;
  } else if (!text.empty() && text[0] == ':') {
    return std::nullopt;  // single leading colon
  }

  const auto push = [&](std::uint16_t group) -> bool {
    if (seen_compression) {
      if (tail_count >= 8) return false;
      tail[static_cast<std::size_t>(tail_count++)] = group;
    } else {
      if (filled >= 8) return false;
      groups[static_cast<std::size_t>(filled++)] = group;
    }
    return true;
  };

  while (i < text.size()) {
    // A trailing dotted-quad ("::ffff:1.2.3.4") supplies the last two
    // groups; with colons still ahead, keep reading hex groups first.
    const auto rest = text.substr(i);
    if (rest.find('.') != std::string_view::npos &&
        rest.find(':') == std::string_view::npos) {
      const auto v4 = parse_v4(rest);
      if (!v4) return std::nullopt;
      const std::uint32_t v = v4->value();
      if (!push(static_cast<std::uint16_t>(v >> 16))) return std::nullopt;
      if (!push(static_cast<std::uint16_t>(v & 0xFFFF))) return std::nullopt;
      i = text.size();
      break;
    }

    unsigned group = 0;
    const char* start = text.data() + i;
    const char* end = text.data() + text.size();
    const auto [next, ec] = std::from_chars(start, end, group, 16);
    if (ec != std::errc{} || next == start || group > 0xFFFF ||
        next - start > 4) {
      return std::nullopt;
    }
    if (!push(static_cast<std::uint16_t>(group))) return std::nullopt;
    i = static_cast<std::size_t>(next - text.data());
    if (i == text.size()) break;
    if (text[i] != ':') return std::nullopt;
    ++i;
    if (i < text.size() && text[i] == ':') {
      if (seen_compression) return std::nullopt;  // only one ::
      seen_compression = true;
      ++i;
    } else if (i == text.size()) {
      return std::nullopt;  // single trailing colon
    }
  }

  if (seen_compression) {
    if (filled + tail_count >= 8) return std::nullopt;  // :: covers >= 1
    tail_start = 8 - tail_count;
  } else if (filled != 8) {
    return std::nullopt;
  }
  if (tail_start >= 0) {
    for (int t = 0; t < tail_count; ++t) {
      groups[static_cast<std::size_t>(tail_start + t)] =
          tail[static_cast<std::size_t>(t)];
    }
  }

  IpAddress::Bytes bytes{};
  for (int g = 0; g < 8; ++g) {
    bytes[static_cast<std::size_t>(2 * g)] =
        static_cast<std::uint8_t>(groups[static_cast<std::size_t>(g)] >> 8);
    bytes[static_cast<std::size_t>(2 * g + 1)] =
        static_cast<std::uint8_t>(groups[static_cast<std::size_t>(g)] & 0xFF);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

std::optional<IpAddress> IpAddress::parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

IpAddress IpAddress::parse_or_throw(std::string_view text) {
  const auto parsed = parse(text);
  if (!parsed) {
    throw ParseError("invalid IP address: '" + std::string(text) + "'");
  }
  return *parsed;
}

std::string IpAddress::to_string() const {
  if (is_v4()) {
    std::string out;
    out.reserve(15);
    const std::uint32_t v = value();
    for (int shift = 24; shift >= 0; shift -= 8) {
      out += std::to_string((v >> shift) & 0xFF);
      if (shift > 0) out += '.';
    }
    return out;
  }

  // RFC 5952: lowercase hex, no leading zeros, the longest run of two or
  // more zero groups compressed to :: (leftmost run on a tie).
  std::array<std::uint16_t, 8> groups;
  for (int g = 0; g < 8; ++g) {
    groups[static_cast<std::size_t>(g)] = static_cast<std::uint16_t>(
        (std::uint32_t{bytes_[static_cast<std::size_t>(2 * g)]} << 8) |
        bytes_[static_cast<std::size_t>(2 * g + 1)]);
  }
  int best_start = -1;
  int best_len = 0;
  for (int g = 0; g < 8;) {
    if (groups[static_cast<std::size_t>(g)] != 0) {
      ++g;
      continue;
    }
    int run = g;
    while (run < 8 && groups[static_cast<std::size_t>(run)] == 0) ++run;
    if (run - g > best_len) {
      best_start = g;
      best_len = run - g;
    }
    g = run;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(39);
  char buf[8];
  for (int g = 0; g < 8; ++g) {
    if (g == best_start) {
      out += (g == 0) ? "::" : ":";
      g += best_len - 1;
      if (g == 7) break;  // :: reaches the end
      continue;
    }
    const auto [end, ec] = std::to_chars(
        buf, buf + sizeof(buf), groups[static_cast<std::size_t>(g)], 16);
    (void)ec;
    out.append(buf, end);
    if (g < 7) out += ':';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const IpAddress& addr) {
  return os << addr.to_string();
}

std::optional<Family> parse_family_name(std::string_view name) {
  if (name == "4" || name == "ipv4" || name == "inet") {
    return Family::kIpv4;
  }
  if (name == "6" || name == "ipv6" || name == "inet6") {
    return Family::kIpv6;
  }
  return std::nullopt;
}

}  // namespace mmlpt::net
