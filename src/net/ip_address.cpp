#include "net/ip_address.h"

#include <charconv>
#include <ostream>

#include "common/error.h"
#include "common/strings.h"

namespace mmlpt::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || octet > 255 || next == p) return std::nullopt;
    value = (value << 8) | octet;
    ++octets;
    p = next;
    if (octets == 4) break;
    if (p >= end || *p != '.') return std::nullopt;
    ++p;
  }
  if (octets != 4 || p != end) return std::nullopt;
  return Ipv4Address(value);
}

Ipv4Address Ipv4Address::parse_or_throw(std::string_view text) {
  const auto parsed = parse(text);
  if (!parsed) {
    throw ParseError("invalid IPv4 address: '" + std::string(text) + "'");
  }
  return *parsed;
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xFF);
    if (shift > 0) out += '.';
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address addr) {
  return os << addr.to_string();
}

}  // namespace mmlpt::net
