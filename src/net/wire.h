// Big-endian (network byte order) buffer reader and writer.
#ifndef MMLPT_NET_WIRE_H
#define MMLPT_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mmlpt::net {

/// Appends network-byte-order fields to a growing byte buffer.
class WireWriter {
 public:
  WireWriter() = default;
  explicit WireWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void bytes(std::span<const std::uint8_t> data);
  void zeros(std::size_t count);

  /// Patch a previously written 16-bit field at byte offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v);

  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads network-byte-order fields from a byte span. Throws
/// mmlpt::ParseError when reads run past the end.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t count);
  void skip(std::size_t count);

  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] std::span<const std::uint8_t> rest() const noexcept {
    return data_.subspan(offset_);
  }
  /// A view of the underlying data by absolute offset (bounds-checked).
  [[nodiscard]] std::span<const std::uint8_t> window(std::size_t start,
                                                     std::size_t length) const;

 private:
  void require(std::size_t count) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace mmlpt::net

#endif  // MMLPT_NET_WIRE_H
