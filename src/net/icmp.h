// ICMPv4 message craft / parse (RFC 792), including RFC 4884 multipart
// extensions carrying an RFC 4950 MPLS label stack object.
#ifndef MMLPT_NET_ICMP_H
#define MMLPT_NET_ICMP_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/wire.h"

namespace mmlpt::net {

enum class IcmpType : std::uint8_t {
  kEchoReply = 0,
  kDestUnreachable = 3,
  kEchoRequest = 8,
  kTimeExceeded = 11,
};

inline constexpr std::uint8_t kCodePortUnreachable = 3;
inline constexpr std::uint8_t kCodeTtlExceeded = 0;

/// One MPLS label stack entry (RFC 4950 Sec. 3.1).
struct MplsLabelEntry {
  std::uint32_t label = 0;  ///< 20 bits
  std::uint8_t traffic_class = 0;  ///< 3 bits (EXP)
  bool bottom_of_stack = true;
  std::uint8_t ttl = 0;

  friend bool operator==(const MplsLabelEntry&,
                         const MplsLabelEntry&) = default;
};

/// A parsed ICMPv4 message. For error messages (TimeExceeded,
/// DestUnreachable) `quoted` holds the offending datagram (IP header +
/// leading payload bytes) and `mpls_labels` any RFC 4950 stack.
struct IcmpMessage {
  IcmpType type = IcmpType::kEchoRequest;
  std::uint8_t code = 0;
  // Echo fields (EchoRequest / EchoReply).
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> echo_payload;
  // Error-message fields.
  std::vector<std::uint8_t> quoted;
  std::vector<MplsLabelEntry> mpls_labels;

  [[nodiscard]] bool is_error() const noexcept {
    return type == IcmpType::kTimeExceeded ||
           type == IcmpType::kDestUnreachable;
  }

  /// Serialize to ICMP bytes (header + body), computing the checksum.
  /// Error messages with MPLS labels are emitted in RFC 4884 multipart
  /// form: quoted datagram zero-padded to 128 bytes, then the extension
  /// structure.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse an ICMP message from `reader` (which should span exactly the
  /// ICMP portion of a datagram).
  [[nodiscard]] static IcmpMessage parse(WireReader& reader);
};

/// RFC 4884 / RFC 4950 extension-structure plumbing shared with the
/// ICMPv6 twin (net/icmpv6.h): the extension wire format is identical in
/// both families, only its placement differs.
namespace detail {
void append_mpls_extension(WireWriter& w,
                           std::span<const MplsLabelEntry> labels);
[[nodiscard]] std::vector<MplsLabelEntry> parse_mpls_extension(
    WireReader& reader);
}  // namespace detail

/// Convenience constructors.
[[nodiscard]] IcmpMessage make_time_exceeded(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels = {});
[[nodiscard]] IcmpMessage make_port_unreachable(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels = {});
[[nodiscard]] IcmpMessage make_echo_request(std::uint16_t identifier,
                                            std::uint16_t sequence,
                                            std::size_t payload_bytes = 8);
[[nodiscard]] IcmpMessage make_echo_reply(const IcmpMessage& request);

}  // namespace mmlpt::net

#endif  // MMLPT_NET_ICMP_H
