#include "net/ipv4.h"

#include "common/assert.h"
#include "common/error.h"
#include "net/checksum.h"

namespace mmlpt::net {

std::vector<std::uint8_t> Ipv4Header::serialize(
    std::span<const std::uint8_t> payload) const {
  MMLPT_EXPECTS(src.is_v4() && dst.is_v4());
  WireWriter w(kIpv4HeaderSize + payload.size());
  const auto total =
      total_length != 0
          ? total_length
          : static_cast<std::uint16_t>(kIpv4HeaderSize + payload.size());
  w.u8(0x45);  // version 4, IHL 5
  w.u8(tos);
  w.u16(total);
  w.u16(identification);
  w.u16(dont_fragment ? 0x4000 : 0x0000);
  w.u8(ttl);
  w.u8(static_cast<std::uint8_t>(protocol));
  w.u16(0);  // checksum placeholder
  w.u32(src.value());
  w.u32(dst.value());
  const std::uint16_t sum = internet_checksum(w.view());
  w.patch_u16(10, sum);
  w.bytes(payload);
  return std::move(w).take();
}

Ipv4Header Ipv4Header::parse(WireReader& reader, bool verify_checksum) {
  const std::size_t start = reader.offset();
  const std::uint8_t version_ihl = reader.u8();
  if ((version_ihl >> 4) != 4) {
    throw ParseError("not an IPv4 packet (version " +
                     std::to_string(version_ihl >> 4) + ")");
  }
  const std::size_t ihl = (version_ihl & 0x0F) * std::size_t{4};
  if (ihl < kIpv4HeaderSize) {
    throw ParseError("IPv4 IHL too small: " + std::to_string(ihl));
  }

  Ipv4Header h;
  h.header_length = static_cast<std::uint8_t>(ihl);
  h.tos = reader.u8();
  h.total_length = reader.u16();
  h.identification = reader.u16();
  const std::uint16_t flags_frag = reader.u16();
  h.dont_fragment = (flags_frag & 0x4000) != 0;
  h.ttl = reader.u8();
  h.protocol = static_cast<IpProto>(reader.u8());
  h.checksum = reader.u16();
  h.src = Ipv4Address(reader.u32());
  h.dst = Ipv4Address(reader.u32());
  if (ihl > kIpv4HeaderSize) {
    reader.skip(ihl - kIpv4HeaderSize);  // options
  }

  if (verify_checksum) {
    // Summing the header bytes including the stored checksum must fold to 0.
    if (internet_checksum(reader.window(start, ihl)) != 0) {
      throw ParseError("IPv4 header checksum mismatch");
    }
  }
  return h;
}

}  // namespace mmlpt::net
