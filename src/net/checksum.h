// RFC 1071 Internet checksum.
#ifndef MMLPT_NET_CHECKSUM_H
#define MMLPT_NET_CHECKSUM_H

#include <cstdint>
#include <span>

#include "net/ip_address.h"

namespace mmlpt::net {

/// One's-complement 16-bit Internet checksum over `data`.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// UDP checksum including the IPv4 pseudo-header. `segment` is the UDP
/// header plus payload with its checksum field zeroed. Returns 0xFFFF when
/// the computed sum is 0 (RFC 768: transmitted as all ones).
[[nodiscard]] std::uint16_t udp_checksum(
    Ipv4Address src, Ipv4Address dst,
    std::span<const std::uint8_t> segment) noexcept;

}  // namespace mmlpt::net

#endif  // MMLPT_NET_CHECKSUM_H
