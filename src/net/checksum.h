// RFC 1071 Internet checksum.
#ifndef MMLPT_NET_CHECKSUM_H
#define MMLPT_NET_CHECKSUM_H

#include <cstdint>
#include <span>

#include "net/ip_address.h"

namespace mmlpt::net {

/// One's-complement 16-bit Internet checksum over `data`.
[[nodiscard]] std::uint16_t internet_checksum(
    std::span<const std::uint8_t> data) noexcept;

/// UDP checksum including the pseudo-header of the endpoints' family
/// (RFC 768 for IPv4, RFC 8200 Sec. 8.1 for IPv6). `segment` is the UDP
/// header plus payload with its checksum field zeroed. Returns 0xFFFF when
/// the computed sum is 0 (RFC 768: transmitted as all ones).
[[nodiscard]] std::uint16_t udp_checksum(
    const IpAddress& src, const IpAddress& dst,
    std::span<const std::uint8_t> segment) noexcept;

/// ICMPv6 checksum over the IPv6 pseudo-header plus `message` (the ICMPv6
/// header and body with its checksum field zeroed), per RFC 4443 Sec. 2.3.
[[nodiscard]] std::uint16_t icmpv6_checksum(
    const IpAddress& src, const IpAddress& dst,
    std::span<const std::uint8_t> message) noexcept;

}  // namespace mmlpt::net

#endif  // MMLPT_NET_CHECKSUM_H
