#include "net/packet.h"

#include "common/error.h"

namespace mmlpt::net {

std::uint64_t FlowTuple::digest() const noexcept {
  // splitmix64-style mix over the packed tuple; deterministic across runs.
  std::uint64_t x = (std::uint64_t{src.value()} << 32) | dst.value();
  std::uint64_t y = (std::uint64_t{src_port} << 32) |
                    (std::uint64_t{dst_port} << 16) | protocol;
  auto mix = [](std::uint64_t z) {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  return mix(mix(x) ^ y);
}

std::vector<std::uint8_t> build_udp_probe(const ProbeSpec& spec) {
  const std::vector<std::uint8_t> payload(spec.payload_bytes, 0);
  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  const auto segment = udp.serialize(spec.src, spec.dst, payload);

  Ipv4Header ip;
  ip.ttl = spec.ttl;
  ip.protocol = IpProto::kUdp;
  ip.identification = spec.ip_id;
  ip.src = spec.src;
  ip.dst = spec.dst;
  return ip.serialize(segment);
}

std::vector<std::uint8_t> build_echo_probe(Ipv4Address src, Ipv4Address dst,
                                           std::uint16_t identifier,
                                           std::uint16_t sequence,
                                           std::uint8_t ttl,
                                           std::uint16_t ip_id) {
  const auto icmp = make_echo_request(identifier, sequence).serialize();
  Ipv4Header ip;
  ip.ttl = ttl;
  ip.protocol = IpProto::kIcmp;
  ip.identification = ip_id;
  ip.src = src;
  ip.dst = dst;
  return ip.serialize(icmp);
}

FlowTuple ParsedProbe::flow() const noexcept {
  FlowTuple t;
  t.src = ip.src;
  t.dst = ip.dst;
  t.protocol = static_cast<std::uint8_t>(ip.protocol);
  if (ip.protocol == IpProto::kUdp) {
    t.src_port = udp.src_port;
    t.dst_port = udp.dst_port;
  } else if (ip.protocol == IpProto::kIcmp) {
    // ICMP "flow" identity: echo identifier/sequence stand in for ports,
    // mirroring how real load balancers hash ICMP (or not at all).
    t.src_port = icmp.identifier;
    t.dst_port = icmp.sequence;
  }
  return t;
}

ParsedProbe parse_probe(std::span<const std::uint8_t> datagram) {
  WireReader reader(datagram);
  ParsedProbe p;
  p.ip = Ipv4Header::parse(reader);
  switch (p.ip.protocol) {
    case IpProto::kUdp:
      p.udp = UdpHeader::parse(reader);
      break;
    case IpProto::kIcmp:
      p.icmp = IcmpMessage::parse(reader);
      break;
    default:
      throw ParseError("probe is neither UDP nor ICMP");
  }
  return p;
}

ParsedReply parse_reply(std::span<const std::uint8_t> datagram) {
  WireReader reader(datagram);
  ParsedReply r;
  r.outer = Ipv4Header::parse(reader);
  if (r.outer.protocol != IpProto::kIcmp) {
    throw ParseError("reply is not ICMP");
  }
  r.icmp = IcmpMessage::parse(reader);

  if (r.icmp.is_error() && !r.icmp.quoted.empty()) {
    WireReader quoted(r.icmp.quoted);
    // Routers may quote as little as header + 8 bytes; never verify the
    // quoted checksum (some quote with mutated fields).
    r.quoted_ip = Ipv4Header::parse(quoted, /*verify_checksum=*/false);
    if (quoted.remaining() >= kUdpHeaderSize &&
        r.quoted_ip->protocol == IpProto::kUdp) {
      r.quoted_udp = UdpHeader::parse(quoted);
    } else if (quoted.remaining() >= 8 &&
               r.quoted_ip->protocol == IpProto::kIcmp) {
      // Quoted ICMP echo: parse leniently (first 8 bytes only).
      IcmpMessage q;
      q.type = static_cast<IcmpType>(quoted.u8());
      q.code = quoted.u8();
      (void)quoted.u16();  // checksum
      q.identifier = quoted.u16();
      q.sequence = quoted.u16();
      r.quoted_icmp = q;
    }
  }
  return r;
}

std::vector<std::uint8_t> build_icmp_datagram(const IcmpMessage& message,
                                              Ipv4Address src, Ipv4Address dst,
                                              std::uint8_t ttl,
                                              std::uint16_t ip_id) {
  Ipv4Header ip;
  ip.ttl = ttl;
  ip.protocol = IpProto::kIcmp;
  ip.identification = ip_id;
  ip.src = src;
  ip.dst = dst;
  return ip.serialize(message.serialize());
}

}  // namespace mmlpt::net
