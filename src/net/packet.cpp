#include "net/packet.h"

#include "common/assert.h"
#include "common/error.h"

namespace mmlpt::net {

namespace {

std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Family sniff_family(std::span<const std::uint8_t> datagram) {
  if (datagram.empty()) throw ParseError("empty datagram");
  const auto version = datagram[0] >> 4;
  if (version == 4) return Family::kIpv4;
  if (version == 6) return Family::kIpv6;
  throw ParseError("unknown IP version " + std::to_string(version));
}

}  // namespace

std::uint64_t FlowTuple::digest() const noexcept {
  // splitmix64-style mix over the packed tuple; deterministic across runs.
  const std::uint64_t y = (std::uint64_t{src_port} << 32) |
                          (std::uint64_t{dst_port} << 16) | protocol;
  if (src.is_v4() && dst.is_v4()) {
    // Unchanged from the v4-only era: v4 outputs stay bit-identical.
    const std::uint64_t x = (std::uint64_t{src.value()} << 32) | dst.value();
    return mix64(mix64(x) ^ y);
  }
  // v6: fold both 128-bit addresses and the flow label into the mix.
  std::uint64_t acc = mix64(src.hi64());
  acc = mix64(acc ^ src.lo64());
  acc = mix64(acc ^ dst.hi64());
  acc = mix64(acc ^ dst.lo64());
  return mix64(acc ^ y ^ (std::uint64_t{flow_label} << 40));
}

std::vector<std::uint8_t> build_udp_probe(const ProbeSpec& spec) {
  MMLPT_EXPECTS(spec.src.family() == spec.dst.family());
  const std::vector<std::uint8_t> payload(spec.payload_bytes, 0);
  UdpHeader udp;
  udp.src_port = spec.src_port;
  udp.dst_port = spec.dst_port;
  const auto segment = udp.serialize(spec.src, spec.dst, payload);

  if (spec.dst.is_v4()) {
    Ipv4Header ip;
    ip.ttl = spec.ttl;
    ip.protocol = IpProto::kUdp;
    ip.identification = spec.ip_id;
    ip.src = spec.src;
    ip.dst = spec.dst;
    return ip.serialize(segment);
  }
  Ipv6Header ip6;
  ip6.hop_limit = spec.ttl;
  ip6.next_header = IpProto::kUdp;
  ip6.flow_label = spec.flow_label;
  ip6.src = spec.src;
  ip6.dst = spec.dst;
  return ip6.serialize(segment);
}

std::vector<std::uint8_t> build_echo_probe(const IpAddress& src,
                                           const IpAddress& dst,
                                           std::uint16_t identifier,
                                           std::uint16_t sequence,
                                           std::uint8_t ttl,
                                           std::uint16_t ip_id) {
  MMLPT_EXPECTS(src.family() == dst.family());
  if (dst.is_v4()) {
    const auto icmp = make_echo_request(identifier, sequence).serialize();
    Ipv4Header ip;
    ip.ttl = ttl;
    ip.protocol = IpProto::kIcmp;
    ip.identification = ip_id;
    ip.src = src;
    ip.dst = dst;
    return ip.serialize(icmp);
  }
  const auto icmp6 =
      make_echo_request_v6(identifier, sequence).serialize(src, dst);
  Ipv6Header ip6;
  ip6.hop_limit = ttl;
  ip6.next_header = IpProto::kIcmpv6;
  ip6.src = src;
  ip6.dst = dst;
  return ip6.serialize(icmp6);
}

FlowTuple ParsedProbe::flow() const noexcept {
  FlowTuple t;
  t.src = src();
  t.dst = dst();
  if (family == Family::kIpv4) {
    t.protocol = static_cast<std::uint8_t>(ip.protocol);
    if (ip.protocol == IpProto::kUdp) {
      t.src_port = udp.src_port;
      t.dst_port = udp.dst_port;
    } else if (ip.protocol == IpProto::kIcmp) {
      // ICMP "flow" identity: echo identifier/sequence stand in for ports,
      // mirroring how real load balancers hash ICMP (or not at all).
      t.src_port = icmp.identifier;
      t.dst_port = icmp.sequence;
    }
    return t;
  }
  t.protocol = static_cast<std::uint8_t>(ip6.next_header);
  t.flow_label = ip6.flow_label;
  if (ip6.next_header == IpProto::kUdp) {
    t.src_port = udp.src_port;
    t.dst_port = udp.dst_port;
  } else if (ip6.next_header == IpProto::kIcmpv6) {
    t.src_port = icmp6.identifier;
    t.dst_port = icmp6.sequence;
  }
  return t;
}

ParsedProbe parse_probe(std::span<const std::uint8_t> datagram) {
  WireReader reader(datagram);
  ParsedProbe p;
  p.family = sniff_family(datagram);
  if (p.family == Family::kIpv4) {
    p.ip = Ipv4Header::parse(reader);
    switch (p.ip.protocol) {
      case IpProto::kUdp:
        p.udp = UdpHeader::parse(reader);
        break;
      case IpProto::kIcmp:
        p.icmp = IcmpMessage::parse(reader);
        break;
      default:
        throw ParseError("probe is neither UDP nor ICMP");
    }
    return p;
  }
  p.ip6 = Ipv6Header::parse(reader);
  switch (p.ip6.next_header) {
    case IpProto::kUdp:
      p.udp = UdpHeader::parse(reader);
      break;
    case IpProto::kIcmpv6:
      p.icmp6 = Icmpv6Message::parse(reader, p.ip6.src, p.ip6.dst);
      break;
    default:
      throw ParseError("probe is neither UDP nor ICMPv6");
  }
  return p;
}

namespace {

void parse_reply_v4(WireReader& reader, ParsedReply& r) {
  r.outer = Ipv4Header::parse(reader);
  if (r.outer.protocol != IpProto::kIcmp) {
    throw ParseError("reply is not ICMP");
  }
  r.icmp = IcmpMessage::parse(reader);

  if (r.icmp.is_error() && !r.icmp.quoted.empty()) {
    WireReader quoted(r.icmp.quoted);
    // Routers may quote as little as header + 8 bytes; never verify the
    // quoted checksum (some quote with mutated fields).
    r.quoted_ip = Ipv4Header::parse(quoted, /*verify_checksum=*/false);
    if (quoted.remaining() >= kUdpHeaderSize &&
        r.quoted_ip->protocol == IpProto::kUdp) {
      r.quoted_udp = UdpHeader::parse(quoted);
    } else if (quoted.remaining() >= 8 &&
               r.quoted_ip->protocol == IpProto::kIcmp) {
      // Quoted ICMP echo: parse leniently (first 8 bytes only).
      IcmpMessage q;
      q.type = static_cast<IcmpType>(quoted.u8());
      q.code = quoted.u8();
      (void)quoted.u16();  // checksum
      q.identifier = quoted.u16();
      q.sequence = quoted.u16();
      r.quoted_icmp = q;
    }
  }
}

void parse_reply_v6(WireReader& reader, ParsedReply& r) {
  r.outer6 = Ipv6Header::parse(reader);
  if (r.outer6.next_header != IpProto::kIcmpv6) {
    throw ParseError("reply is not ICMPv6");
  }
  r.icmp6 = Icmpv6Message::parse(reader, r.outer6.src, r.outer6.dst);

  if (r.icmp6.is_error() && !r.icmp6.quoted.empty()) {
    WireReader quoted(r.icmp6.quoted);
    r.quoted_ip6 = Ipv6Header::parse(quoted);
    if (quoted.remaining() >= kUdpHeaderSize &&
        r.quoted_ip6->next_header == IpProto::kUdp) {
      r.quoted_udp = UdpHeader::parse(quoted);
    } else if (quoted.remaining() >= 8 &&
               r.quoted_ip6->next_header == IpProto::kIcmpv6) {
      // Quoted ICMPv6 echo: parse leniently (first 8 bytes only; never
      // verify the quoted checksum).
      Icmpv6Message q;
      q.type = static_cast<Icmpv6Type>(quoted.u8());
      q.code = quoted.u8();
      (void)quoted.u16();  // checksum
      q.identifier = quoted.u16();
      q.sequence = quoted.u16();
      r.quoted_icmp6 = q;
    }
  }
}

}  // namespace

ParsedReply parse_reply(std::span<const std::uint8_t> datagram) {
  WireReader reader(datagram);
  ParsedReply r;
  r.family = sniff_family(datagram);
  if (r.family == Family::kIpv4) {
    parse_reply_v4(reader, r);
  } else {
    parse_reply_v6(reader, r);
  }
  return r;
}

std::vector<std::uint8_t> build_icmp_datagram(const IcmpMessage& message,
                                              const IpAddress& src,
                                              const IpAddress& dst,
                                              std::uint8_t ttl,
                                              std::uint16_t ip_id) {
  Ipv4Header ip;
  ip.ttl = ttl;
  ip.protocol = IpProto::kIcmp;
  ip.identification = ip_id;
  ip.src = src;
  ip.dst = dst;
  return ip.serialize(message.serialize());
}

std::vector<std::uint8_t> build_icmpv6_datagram(const Icmpv6Message& message,
                                                const IpAddress& src,
                                                const IpAddress& dst,
                                                std::uint8_t hop_limit) {
  Ipv6Header ip6;
  ip6.hop_limit = hop_limit;
  ip6.next_header = IpProto::kIcmpv6;
  ip6.src = src;
  ip6.dst = dst;
  return ip6.serialize(message.serialize(src, dst));
}

}  // namespace mmlpt::net
