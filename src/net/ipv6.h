// IPv6 header craft / parse (RFC 8200): the fixed 40-byte header, no
// extension-header chain emitted (probes never need one); when parsing,
// unknown next headers surface to the caller rather than being walked.
//
// The 20-bit flow label is the Paris flow identifier on IPv6: varying it
// (and nothing else) steers per-flow load balancers, which RFC 6438
// directs to hash the (src, dst, flow label) 3-tuple.
#ifndef MMLPT_NET_IPV6_H
#define MMLPT_NET_IPV6_H

#include <cstdint>
#include <span>
#include <vector>

#include "net/ip_address.h"
#include "net/ipv4.h"  // IpProto
#include "net/wire.h"

namespace mmlpt::net {

inline constexpr std::size_t kIpv6HeaderSize = 40;
inline constexpr std::uint32_t kMaxFlowLabel = 0xFFFFF;  ///< 20 bits

struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;        ///< 20 bits
  std::uint16_t payload_length = 0;    ///< filled by serialize when 0
  IpProto next_header = IpProto::kUdp;
  std::uint8_t hop_limit = 64;
  IpAddress src;  ///< must be v6
  IpAddress dst;  ///< must be v6

  /// Serialize header followed by `payload`; computes payload length.
  /// IPv6 has no header checksum — integrity lives in the transport's
  /// pseudo-header sum.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      std::span<const std::uint8_t> payload) const;

  /// Parse the header at the reader's position; leaves the reader at the
  /// first payload byte. Throws ParseError on malformed input.
  [[nodiscard]] static Ipv6Header parse(WireReader& reader);
};

}  // namespace mmlpt::net

#endif  // MMLPT_NET_IPV6_H
