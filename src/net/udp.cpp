#include "net/udp.h"

#include "net/checksum.h"

namespace mmlpt::net {

std::vector<std::uint8_t> UdpHeader::serialize(
    Ipv4Address src, Ipv4Address dst,
    std::span<const std::uint8_t> payload) const {
  WireWriter w(kUdpHeaderSize + payload.size());
  const auto total =
      length != 0 ? length
                  : static_cast<std::uint16_t>(kUdpHeaderSize + payload.size());
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(total);
  w.u16(0);  // checksum placeholder
  w.bytes(payload);
  w.patch_u16(6, udp_checksum(src, dst, w.view()));
  return std::move(w).take();
}

UdpHeader UdpHeader::parse(WireReader& reader) {
  UdpHeader h;
  h.src_port = reader.u16();
  h.dst_port = reader.u16();
  h.length = reader.u16();
  h.checksum = reader.u16();
  return h;
}

}  // namespace mmlpt::net
