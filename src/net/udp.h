// UDP header craft / parse (RFC 768).
#ifndef MMLPT_NET_UDP_H
#define MMLPT_NET_UDP_H

#include <cstdint>
#include <span>
#include <vector>

#include "net/ip_address.h"
#include "net/wire.h"

namespace mmlpt::net {

inline constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;    ///< filled by serialize when 0
  std::uint16_t checksum = 0;  ///< filled by serialize

  /// Serialize header + payload, computing length and the pseudo-header
  /// checksum for the given endpoint addresses.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      Ipv4Address src, Ipv4Address dst,
      std::span<const std::uint8_t> payload) const;

  [[nodiscard]] static UdpHeader parse(WireReader& reader);
};

}  // namespace mmlpt::net

#endif  // MMLPT_NET_UDP_H
