#include "net/wire.h"

#include "common/error.h"

namespace mmlpt::net {

void WireWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void WireWriter::u32(std::uint32_t v) {
  buffer_.push_back(static_cast<std::uint8_t>(v >> 24));
  buffer_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  buffer_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  buffer_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void WireWriter::zeros(std::size_t count) {
  buffer_.insert(buffer_.end(), count, 0);
}

void WireWriter::patch_u16(std::size_t at, std::uint16_t v) {
  if (at + 2 > buffer_.size()) {
    throw ParseError("WireWriter::patch_u16 out of range");
  }
  buffer_[at] = static_cast<std::uint8_t>(v >> 8);
  buffer_[at + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

void WireReader::require(std::size_t count) const {
  if (offset_ + count > data_.size()) {
    throw ParseError("truncated packet: need " + std::to_string(count) +
                     " bytes at offset " + std::to_string(offset_) +
                     ", have " + std::to_string(data_.size() - offset_));
  }
}

std::uint8_t WireReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint16_t WireReader::u16() {
  require(2);
  const std::uint16_t v = (std::uint16_t{data_[offset_]} << 8) |
                          std::uint16_t{data_[offset_ + 1]};
  offset_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  require(4);
  const std::uint32_t v = (std::uint32_t{data_[offset_]} << 24) |
                          (std::uint32_t{data_[offset_ + 1]} << 16) |
                          (std::uint32_t{data_[offset_ + 2]} << 8) |
                          std::uint32_t{data_[offset_ + 3]};
  offset_ += 4;
  return v;
}

std::span<const std::uint8_t> WireReader::bytes(std::size_t count) {
  require(count);
  const auto view = data_.subspan(offset_, count);
  offset_ += count;
  return view;
}

void WireReader::skip(std::size_t count) {
  require(count);
  offset_ += count;
}

std::span<const std::uint8_t> WireReader::window(std::size_t start,
                                                 std::size_t length) const {
  if (start + length > data_.size()) {
    throw ParseError("WireReader::window out of range");
  }
  return data_.subspan(start, length);
}

}  // namespace mmlpt::net
