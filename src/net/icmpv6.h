// ICMPv6 message craft / parse (RFC 4443), including RFC 4884 multipart
// extensions carrying an RFC 4950 MPLS label stack object. The structural
// twin of net/icmp.h with the v6 wire differences: type numbers, the
// pseudo-header checksum, the RFC 4884 length field position (first octet
// after the checksum) and its 8-octet units.
#ifndef MMLPT_NET_ICMPV6_H
#define MMLPT_NET_ICMPV6_H

#include <cstdint>
#include <span>
#include <vector>

#include "net/icmp.h"  // MplsLabelEntry
#include "net/ip_address.h"
#include "net/wire.h"

namespace mmlpt::net {

enum class Icmpv6Type : std::uint8_t {
  kDestUnreachable = 1,
  kTimeExceeded = 3,
  kEchoRequest = 128,
  kEchoReply = 129,
};

inline constexpr std::uint8_t kCodePortUnreachableV6 = 4;
inline constexpr std::uint8_t kCodeHopLimitExceeded = 0;

/// A parsed ICMPv6 message. For error messages (TimeExceeded,
/// DestUnreachable) `quoted` holds the offending datagram (IPv6 header +
/// leading payload bytes) and `mpls_labels` any RFC 4950 stack.
struct Icmpv6Message {
  Icmpv6Type type = Icmpv6Type::kEchoRequest;
  std::uint8_t code = 0;
  // Echo fields (EchoRequest / EchoReply).
  std::uint16_t identifier = 0;
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> echo_payload;
  // Error-message fields.
  std::vector<std::uint8_t> quoted;
  std::vector<MplsLabelEntry> mpls_labels;

  [[nodiscard]] bool is_error() const noexcept {
    return type == Icmpv6Type::kTimeExceeded ||
           type == Icmpv6Type::kDestUnreachable;
  }

  /// Serialize to ICMPv6 bytes (header + body), computing the checksum
  /// over the IPv6 pseudo-header for `src` -> `dst`. Error messages with
  /// MPLS labels are emitted in RFC 4884 multipart form: quoted datagram
  /// zero-padded to 128 bytes, then the extension structure.
  [[nodiscard]] std::vector<std::uint8_t> serialize(
      const IpAddress& src, const IpAddress& dst) const;

  /// Parse an ICMPv6 message from `reader` (which should span exactly the
  /// ICMPv6 portion of a datagram). The pseudo-header endpoints verify
  /// the checksum; pass `verify_checksum = false` when they are unknown
  /// (e.g. a quoted probe).
  [[nodiscard]] static Icmpv6Message parse(WireReader& reader,
                                           const IpAddress& src,
                                           const IpAddress& dst,
                                           bool verify_checksum = true);
};

/// Convenience constructors.
[[nodiscard]] Icmpv6Message make_time_exceeded_v6(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels = {});
[[nodiscard]] Icmpv6Message make_port_unreachable_v6(
    std::span<const std::uint8_t> offending_datagram,
    std::span<const MplsLabelEntry> labels = {});
[[nodiscard]] Icmpv6Message make_echo_request_v6(std::uint16_t identifier,
                                                 std::uint16_t sequence,
                                                 std::size_t payload_bytes = 8);
[[nodiscard]] Icmpv6Message make_echo_reply_v6(const Icmpv6Message& request);

}  // namespace mmlpt::net

#endif  // MMLPT_NET_ICMPV6_H
