// Alias-resolution evaluations: per-round precision/recall/probe-ratio
// (Fig. 5) and the indirect-vs-direct probing comparison (Table 2).
#ifndef MMLPT_SURVEY_ALIAS_EVAL_H
#define MMLPT_SURVEY_ALIAS_EVAL_H

#include <cstdint>
#include <span>
#include <vector>

#include "alias/direct_prober.h"
#include "core/multilevel.h"
#include "fakeroute/simulator.h"
#include "topology/generator.h"

namespace mmlpt::survey {

/// Fig. 5: precision and recall of each round's alias pairs with respect
/// to the final round, plus the probe count relative to round 0,
/// aggregated over many multilevel traces.
struct AliasRoundsStats {
  std::vector<double> precision;    ///< index = round
  std::vector<double> recall;
  std::vector<double> probe_ratio;  ///< packets by end of round r / round 0
};

[[nodiscard]] AliasRoundsStats alias_rounds_stats(
    std::span<const core::MultilevelResult> results);

/// Table 2: address sets identified as routers by indirect probing
/// (MMLPT) or direct probing (MIDAR-style), classified by the other
/// method. Cells are counts; portions are cells / total.
struct DirectVsIndirectResult {
  std::uint64_t total_sets = 0;
  std::uint64_t accept_accept = 0;
  std::uint64_t accept_indirect_reject_direct = 0;
  std::uint64_t accept_indirect_unable_direct = 0;
  std::uint64_t reject_indirect_accept_direct = 0;
  std::uint64_t unable_indirect_accept_direct = 0;
  std::uint64_t indirect_accepted = 0;
  std::uint64_t direct_accepted = 0;

  [[nodiscard]] double portion(std::uint64_t cell) const {
    return total_sets == 0
               ? 0.0
               : static_cast<double>(cell) / static_cast<double>(total_sets);
  }
};

struct AliasEvalConfig {
  std::size_t routes = 100;
  std::size_t distinct_diamonds = 60;
  core::MultilevelConfig multilevel;
  alias::DirectProber::Config direct;
  fakeroute::SimConfig sim;
  topo::GeneratorConfig generator;
  std::uint64_t seed = 1;
};

struct AliasEvalResult {
  std::vector<core::MultilevelResult> multilevel_results;
  DirectVsIndirectResult table2;
};

/// Run multilevel traces and, on the same simulated routers, a
/// MIDAR-style direct-probing pass; compare the accepted address sets.
[[nodiscard]] AliasEvalResult run_alias_eval(const AliasEvalConfig& config);

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_ALIAS_EVAL_H
