// The Sec. 2.4.2 measurement-based evaluation: for each source-destination
// pair with a diamond, run five tool variants successively — MDA (twice),
// MDA-Lite phi=2, MDA-Lite phi=4, and single-flow Paris Traceroute — and
// compare each against the first MDA run on vertices discovered, edges
// discovered, and packets sent (Fig. 4 CDFs and Table 1 aggregates).
#ifndef MMLPT_SURVEY_EVALUATION_H
#define MMLPT_SURVEY_EVALUATION_H

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/validation.h"
#include "topology/generator.h"

namespace mmlpt::survey {

enum class Variant : std::size_t {
  kMda1 = 0,
  kMda2 = 1,
  kMdaLitePhi2 = 2,
  kMdaLitePhi4 = 3,
  kSingleFlow = 4,
};
inline constexpr std::size_t kVariantCount = 5;
[[nodiscard]] std::string variant_name(Variant v);

struct VariantCounts {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t packets = 0;
  bool switched_to_mda = false;
};

struct PairOutcome {
  std::array<VariantCounts, kVariantCount> variants;

  /// Ratios of variant `v` relative to the first MDA run.
  [[nodiscard]] double vertex_ratio(Variant v) const;
  [[nodiscard]] double edge_ratio(Variant v) const;
  [[nodiscard]] double packet_ratio(Variant v) const;
};

struct EvaluationConfig {
  std::size_t pairs = 500;
  std::size_t distinct_diamonds = 200;
  core::TraceConfig trace;
  fakeroute::SimConfig sim;
  topo::GeneratorConfig generator;
  std::uint64_t seed = 1;
};

struct AggregateCounts {
  std::set<net::IpAddress> vertices;
  std::set<std::pair<net::IpAddress, net::IpAddress>> edges;
  std::uint64_t packets = 0;
};

struct EvaluationResult {
  std::vector<PairOutcome> pairs;
  /// Table 1: union topology across all measurements, per variant.
  std::array<AggregateCounts, kVariantCount> aggregate;

  [[nodiscard]] double aggregate_vertex_ratio(Variant v) const;
  [[nodiscard]] double aggregate_edge_ratio(Variant v) const;
  [[nodiscard]] double aggregate_packet_ratio(Variant v) const;

  /// Fig. 4 series: ratio samples for one metric across all pairs.
  [[nodiscard]] EmpiricalCdf ratio_cdf(Variant v,
                                       double (PairOutcome::*metric)(Variant)
                                           const) const;
};

[[nodiscard]] EvaluationResult run_evaluation(const EvaluationConfig& config);

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_EVALUATION_H
