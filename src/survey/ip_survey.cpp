#include "survey/ip_survey.h"

#include <memory>
#include <optional>

#include "core/trace_json.h"
#include "orchestrator/fleet.h"
#include "orchestrator/throttled_network.h"
#include "probe/simulated_network.h"
#include "survey/route_feeder.h"

namespace mmlpt::survey {

core::TraceResult trace_route_task(const topo::GroundTruth& route,
                                   core::Algorithm algorithm,
                                   const core::TraceConfig& trace,
                                   const fakeroute::SimConfig& sim,
                                   std::uint64_t seed,
                                   orchestrator::RateLimiter* limiter,
                                   orchestrator::FleetTransportHub* hub,
                                   orchestrator::RateLimiter* tenant_limiter,
                                   probe::CancelToken* cancel) {
  if (!hub && !limiter && !tenant_limiter && !cancel) {
    return core::run_trace(route, algorithm, trace, sim, seed);
  }
  fakeroute::Simulator simulator(route, sim, seed);
  probe::SimulatedNetwork network(simulator);
  probe::Network* transport = &network;

  // Fleet layer: merged windows (the hub charges the fleet limiter per
  // burst — a ThrottledNetwork here would bill every probe twice) or a
  // plain fleet-wide throttle.
  std::unique_ptr<orchestrator::FleetTransportHub::Channel> channel;
  std::optional<orchestrator::ThrottledNetwork> fleet_throttled;
  if (hub) {
    channel = hub->open_channel(network);
    transport = channel.get();
  } else if (limiter) {
    fleet_throttled.emplace(*transport, *limiter);
    transport = &*fleet_throttled;
  }

  // Tenant layer: the daemon's per-tenant bucket charges IN ADDITION to
  // the fleet-wide budget, so one tenant cannot starve the rest.
  std::optional<orchestrator::ThrottledNetwork> tenant_throttled;
  if (tenant_limiter) {
    tenant_throttled.emplace(*transport, *tenant_limiter);
    transport = &*tenant_throttled;
  }

  // Cancellation outermost: a fired token stops NEW probes before they
  // are billed and resolves in-flight tickets through the layers below.
  std::optional<probe::CancellableNetwork> cancellable;
  if (cancel) {
    cancellable.emplace(*transport, *cancel);
    transport = &*cancellable;
  }
  return core::run_trace_with_network(*transport, route.source,
                                      route.destination, algorithm, trace);
}

IpSurveyResult run_ip_survey(const IpSurveyConfig& config,
                             orchestrator::ResultSink* sink) {
  topo::SurveyWorld world(config.generator, config.distinct_diamonds,
                          config.seed);

  // Lazy in-order generation + per-merge release: live routes track the
  // in-flight window, not the survey size, and the route sequence is
  // identical to the historical serial loop.
  RouteFeeder feeder(world, config.routes);

  // One trace task per destination. Seeding keeps the pre-fleet serial
  // formula (base + route index), so jobs=1 is bit-identical to the
  // historical loop and jobs=N traces identically.
  //
  // The merge rides the scheduler's on_result hook: it fires in strict
  // route order (the accounting's measured/distinct split depends on
  // first-encounter order) and serialized, exactly like the historical
  // serial loop; run_streaming drops each trace right after.
  IpSurveyResult result;
  result.accounting = DiamondAccounting(config.phi_for_meshing_analysis);
  obs::Counter* sim_probes =
      config.metrics != nullptr
          ? config.metrics->counter("mmlpt_transport_probes_sent_total",
                                    "Probe packets handed to the transport",
                                    {{"transport", "sim"}})
          : nullptr;
  orchestrator::FleetScheduler fleet(
      {config.jobs, config.seed, config.pps, config.burst,
       config.merge_windows, config.pipeline_depth, config.metrics});
  fleet.run_streaming(
      config.routes,
      [&](orchestrator::WorkerContext& context) {
        const std::size_t i = context.task_index;
        return trace_route_task(feeder.route(i), config.algorithm,
                                config.trace, config.sim,
                                ip_trace_seed(config.seed, i),
                                context.limiter, context.hub,
                                /*tenant_limiter=*/nullptr, config.cancel);
      },
      [&](std::size_t i, core::TraceResult& trace) {
        if (sink) {
          sink->emit(i, orchestrator::destination_line(
                            i, feeder.route(i).destination.to_string(),
                            core::stop_set_envelope_fields(trace), "trace",
                            core::trace_to_json(trace)));
        }
        result.total_packets += trace.packets;
        if (sim_probes != nullptr) sim_probes->add(trace.packets);
        ++result.routes_traced;
        if (trace.stop_set_active) {
          result.stop_set_active = true;
          result.probes_saved_by_stop_set += trace.probes_saved_by_stop_set;
          if (trace.stopped_on_hit) ++result.traces_stopped;
        }
        const auto diamonds = topo::extract_diamonds(trace.graph);
        if (!diamonds.empty()) ++result.routes_with_diamonds;
        for (const auto& d : diamonds) {
          result.accounting.record(trace.graph, d);
        }
        feeder.release(i);
      });
  return result;
}

}  // namespace mmlpt::survey
