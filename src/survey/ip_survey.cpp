#include "survey/ip_survey.h"

namespace mmlpt::survey {

IpSurveyResult run_ip_survey(const IpSurveyConfig& config) {
  topo::SurveyWorld world(config.generator, config.distinct_diamonds,
                          config.seed);
  IpSurveyResult result;
  result.accounting = DiamondAccounting(config.phi_for_meshing_analysis);

  std::uint64_t seed = config.seed ^ 0x5353ULL;
  for (std::size_t i = 0; i < config.routes; ++i) {
    const auto route = world.next_route();
    const auto trace = core::run_trace(route, config.algorithm, config.trace,
                                       config.sim, seed++);
    result.total_packets += trace.packets;
    ++result.routes_traced;
    const auto diamonds = topo::extract_diamonds(trace.graph);
    if (!diamonds.empty()) ++result.routes_with_diamonds;
    for (const auto& d : diamonds) {
      result.accounting.record(trace.graph, d);
    }
  }
  return result;
}

}  // namespace mmlpt::survey
