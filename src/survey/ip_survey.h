// The Sec. 5.1 IP-level survey: trace a stream of generated routes with a
// multipath tracer and account for every diamond the tool discovers.
#ifndef MMLPT_SURVEY_IP_SURVEY_H
#define MMLPT_SURVEY_IP_SURVEY_H

#include <cstdint>

#include "core/validation.h"
#include "survey/accounting.h"
#include "topology/generator.h"

namespace mmlpt::survey {

struct IpSurveyConfig {
  std::size_t routes = 1000;
  std::size_t distinct_diamonds = 300;
  core::Algorithm algorithm = core::Algorithm::kMda;
  core::TraceConfig trace;
  fakeroute::SimConfig sim;
  topo::GeneratorConfig generator;
  int phi_for_meshing_analysis = 2;
  std::uint64_t seed = 1;
};

struct IpSurveyResult {
  DiamondAccounting accounting{2};
  std::uint64_t routes_traced = 0;
  std::uint64_t routes_with_diamonds = 0;
  std::uint64_t total_packets = 0;
};

[[nodiscard]] IpSurveyResult run_ip_survey(const IpSurveyConfig& config);

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_IP_SURVEY_H
