// The Sec. 5.1 IP-level survey: trace a stream of generated routes with a
// multipath tracer and account for every diamond the tool discovers.
//
// Runs on the fleet orchestrator in three phases: (1) serial route
// generation (the generator is single-stream), (2) concurrent tracing —
// one task per destination, `jobs` workers, optional fleet-wide rate
// limit — and (3) a serial join that merges per-route diamonds into the
// accounting in route order. jobs=1 reproduces the historical serial
// survey bit for bit; jobs=N only changes wall-clock time.
#ifndef MMLPT_SURVEY_IP_SURVEY_H
#define MMLPT_SURVEY_IP_SURVEY_H

#include <cstdint>

#include "core/validation.h"
#include "orchestrator/fleet_transport.h"
#include "orchestrator/rate_limiter.h"
#include "orchestrator/result_sink.h"
#include "probe/cancel.h"
#include "survey/accounting.h"
#include "topology/generator.h"

namespace mmlpt::survey {

struct IpSurveyConfig {
  std::size_t routes = 1000;
  std::size_t distinct_diamonds = 300;
  core::Algorithm algorithm = core::Algorithm::kMda;
  core::TraceConfig trace;
  fakeroute::SimConfig sim;
  topo::GeneratorConfig generator;
  int phi_for_meshing_analysis = 2;
  std::uint64_t seed = 1;
  /// Concurrent trace workers; 1 = the historical serial path.
  int jobs = 1;
  /// Fleet-wide probe rate limit in packets/second; <= 0 = unlimited.
  double pps = 0.0;
  int burst = 64;
  /// Merge concurrent traces' probe windows into shared fleet bursts
  /// (FleetTransportHub). Output is invariant — only wall-clock and the
  /// wire's burst composition change.
  bool merge_windows = false;
  /// Merged bursts that may be in flight at once (1 = strict
  /// resolve-before-next-burst); output is invariant for every depth.
  int pipeline_depth = 1;
  /// Cooperative cancellation (SIGINT plumbing): when the token fires,
  /// in-flight tickets are canceled and run_ip_survey throws
  /// probe::CanceledError. nullptr = not cancelable.
  probe::CancelToken* cancel = nullptr;
  /// Registry the fleet's hub/limiter and the survey's sim-probe counter
  /// register in; null = uninstrumented. Must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
};

struct IpSurveyResult {
  DiamondAccounting accounting{2};
  std::uint64_t routes_traced = 0;
  std::uint64_t routes_with_diamonds = 0;
  std::uint64_t total_packets = 0;
  /// Doubletree accounting, aggregated from the per-trace counters. The
  /// active flag mirrors the traces' stop_set_active (a consulted stop
  /// set was configured); zero savings with the flag set is meaningful
  /// (cold cache).
  bool stop_set_active = false;
  std::uint64_t probes_saved_by_stop_set = 0;
  std::uint64_t traces_stopped = 0;
};

/// Run the survey. When `sink` is non-null, one JSON line per destination
/// ({"index":..,"destination":..,"trace":{...}}) streams out in route
/// order while the fleet runs.
[[nodiscard]] IpSurveyResult run_ip_survey(
    const IpSurveyConfig& config, orchestrator::ResultSink* sink = nullptr);

/// The per-route trace seed: the pre-fleet serial formula, kept in one
/// place because the bit-for-bit reproducibility contract depends on it.
[[nodiscard]] inline std::uint64_t ip_trace_seed(std::uint64_t survey_seed,
                                                 std::size_t route_index) {
  return (survey_seed ^ 0x5353ULL) + route_index;
}

/// Trace one generated route as a fleet task: plain core::run_trace when
/// undecorated, a ThrottledNetwork stack charging `limiter`, or — when
/// `hub` is non-null — a FleetTransportHub channel whose windows merge
/// into shared fleet bursts (the hub then owns the limiter charge).
/// Shared by the survey, the mmlpt_fleet CLI and the mmlptd daemon so
/// the decoration path (and its determinism guarantees) live in one
/// place. Two optional daemon-facing layers stack OUTSIDE the fleet
/// decorations: `tenant_limiter` charges a per-tenant token bucket per
/// submitted probe (on top of — never instead of — the fleet-wide
/// limiter or hub charge), and `cancel` wraps the whole stack in a
/// probe::CancellableNetwork, so a fired token resolves the trace's
/// in-flight tickets through TransportQueue::cancel and unwinds as
/// probe::CanceledError. Both default off and change no output byte.
[[nodiscard]] core::TraceResult trace_route_task(
    const topo::GroundTruth& route, core::Algorithm algorithm,
    const core::TraceConfig& trace, const fakeroute::SimConfig& sim,
    std::uint64_t seed, orchestrator::RateLimiter* limiter,
    orchestrator::FleetTransportHub* hub = nullptr,
    orchestrator::RateLimiter* tenant_limiter = nullptr,
    probe::CancelToken* cancel = nullptr);

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_IP_SURVEY_H
