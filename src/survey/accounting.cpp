#include "survey/accounting.h"

namespace mmlpt::survey {

void DiamondAccounting::accumulate(DiamondDistributions& dist,
                                   const topo::MultipathGraph& g,
                                   const topo::Diamond& d,
                                   const topo::DiamondMetrics& m) {
  dist.max_width.add(m.max_width);
  dist.max_length.add(m.max_length);
  dist.width_asymmetry.add(m.max_width_asymmetry);
  dist.joint_length_width.add(m.max_length, m.max_width);
  ++dist.total;
  if (m.max_length == 2) ++dist.length2;
  if (m.meshed) {
    ++dist.meshed;
    dist.meshed_hop_ratio.add(m.meshed_hop_ratio);
    for (std::uint16_t h = d.divergence_hop; h < d.convergence_hop; ++h) {
      const auto miss = topo::meshing_miss_probability(g, h, phi_);
      if (miss) dist.meshing_miss.add(*miss);
    }
  }
  if (m.max_width_asymmetry > 0) {
    ++dist.asymmetric;
    if (!m.meshed) {
      ++dist.asymmetric_unmeshed;
      dist.probability_difference.add(m.max_probability_difference);
    }
  }
}

void DiamondAccounting::record(const topo::MultipathGraph& route,
                               const topo::Diamond& d) {
  const auto metrics = topo::compute_metrics(route, d);
  accumulate(measured_, route, d, metrics);
  const auto key = topo::diamond_key(route, d);
  if (seen_.insert(key).second) {
    accumulate(distinct_, route, d, metrics);
  }
}

void DiamondAccounting::record_all(const topo::MultipathGraph& route) {
  for (const auto& d : topo::extract_diamonds(route)) {
    record(route, d);
  }
}

}  // namespace mmlpt::survey
