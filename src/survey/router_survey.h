// The Sec. 5.2 router-level survey: retrace routes with Multilevel
// MDA-Lite Paris Traceroute, collect router sizes (per-trace distinct and
// cross-trace aggregated), classify what alias resolution does to each
// unique diamond (Table 3), and record widths before/after resolution
// (Figs. 12-14).
#ifndef MMLPT_SURVEY_ROUTER_SURVEY_H
#define MMLPT_SURVEY_ROUTER_SURVEY_H

#include <cstdint>
#include <map>

#include "common/stats.h"
#include "core/multilevel.h"
#include "fakeroute/simulator.h"
#include "orchestrator/result_sink.h"
#include "probe/cancel.h"
#include "topology/generator.h"
#include "topology/metrics.h"

namespace mmlpt::obs {
class MetricsRegistry;
}

namespace mmlpt::survey {

/// Classify the router-level fate of an IP-level diamond (Table 3).
/// `ip` and `router_level` must share the hop structure (the router-level
/// graph is the merged IP graph).
[[nodiscard]] topo::ResolutionClass classify_resolution(
    const topo::MultipathGraph& ip, const topo::MultipathGraph& router_level,
    const topo::Diamond& diamond);

struct RouterSurveyConfig {
  std::size_t routes = 200;
  std::size_t distinct_diamonds = 80;
  core::MultilevelConfig multilevel;
  fakeroute::SimConfig sim;
  topo::GeneratorConfig generator;
  std::uint64_t seed = 1;
  /// Concurrent trace workers; 1 = the historical serial path.
  int jobs = 1;
  /// Fleet-wide probe rate limit in packets/second; <= 0 = unlimited.
  double pps = 0.0;
  int burst = 64;
  /// Merge concurrent traces' probe windows into shared fleet bursts.
  bool merge_windows = false;
  /// Merged bursts that may be in flight at once (1 = strict
  /// resolve-before-next-burst); output is invariant for every depth.
  int pipeline_depth = 1;
  /// Cooperative cancellation (SIGINT plumbing): when the token fires,
  /// in-flight tickets are canceled and run_router_survey throws
  /// probe::CanceledError. nullptr = not cancelable.
  probe::CancelToken* cancel = nullptr;
  /// Registry the fleet's hub/limiter and the survey's sim-probe counter
  /// register in; null = uninstrumented. Must outlive the run.
  obs::MetricsRegistry* metrics = nullptr;
};

struct RouterSurveyResult {
  /// Router sizes per trace (sets deduplicated by content) — Fig. 12a.
  Histogram distinct_router_size;
  /// Sizes after cross-trace transitive closure — Fig. 12b.
  Histogram aggregated_router_size;
  /// Table 3 over unique diamonds.
  std::map<topo::ResolutionClass, std::uint64_t> resolution_counts;
  /// Fig. 13: max width of unique diamonds at both levels.
  Histogram ip_width;
  Histogram router_width;
  /// Fig. 14: joint (before, after) widths of diamonds that changed.
  Histogram2D width_before_after;
  std::uint64_t unique_diamonds = 0;
  std::uint64_t routes_traced = 0;
  std::uint64_t total_packets = 0;
  /// Doubletree accounting, aggregated from the per-trace counters (see
  /// IpSurveyResult).
  bool stop_set_active = false;
  std::uint64_t probes_saved_by_stop_set = 0;
  std::uint64_t traces_stopped = 0;

  [[nodiscard]] double resolution_fraction(topo::ResolutionClass c) const;
};

/// Run the survey over the fleet orchestrator: routes are generated
/// serially, traced/resolved concurrently (`jobs` workers, optional
/// fleet-wide rate limit), and merged at join time in route order — the
/// dedup sets and the cross-trace union-find are order-sensitive, so the
/// merge happens exactly as the historical serial loop did. When `sink`
/// is non-null, one JSON line per destination streams out in route order.
[[nodiscard]] RouterSurveyResult run_router_survey(
    const RouterSurveyConfig& config,
    orchestrator::ResultSink* sink = nullptr);

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_ROUTER_SURVEY_H
