// Measured vs distinct diamond accounting (Sec. 5): a distinct diamond is
// keyed by its divergence and convergence addresses; every encounter is a
// measured diamond. The accounting feeds Figs. 2 and 7-11.
#ifndef MMLPT_SURVEY_ACCOUNTING_H
#define MMLPT_SURVEY_ACCOUNTING_H

#include <cstdint>
#include <set>

#include "common/stats.h"
#include "topology/metrics.h"

namespace mmlpt::survey {

/// One side (measured or distinct) of the Sec. 5.1 distributions.
struct DiamondDistributions {
  Histogram max_width;
  Histogram max_length;
  Histogram width_asymmetry;
  Histogram2D joint_length_width;  ///< Fig. 11
  EmpiricalCdf meshed_hop_ratio;   ///< Fig. 9 (meshed diamonds only)
  /// Fig. 8: max probability difference, asymmetric unmeshed diamonds.
  EmpiricalCdf probability_difference;
  /// Fig. 2: per meshed hop pair, P(miss meshing) at the accounting's phi.
  EmpiricalCdf meshing_miss;
  std::uint64_t total = 0;
  std::uint64_t meshed = 0;
  std::uint64_t asymmetric = 0;
  std::uint64_t asymmetric_unmeshed = 0;
  std::uint64_t length2 = 0;
};

class DiamondAccounting {
 public:
  explicit DiamondAccounting(int phi = 2) : phi_(phi) {}

  /// Record one encountered diamond from a (discovered or ground-truth)
  /// route graph.
  void record(const topo::MultipathGraph& route, const topo::Diamond& d);

  /// Record every diamond in the route.
  void record_all(const topo::MultipathGraph& route);

  [[nodiscard]] const DiamondDistributions& measured() const noexcept {
    return measured_;
  }
  [[nodiscard]] const DiamondDistributions& distinct() const noexcept {
    return distinct_;
  }

 private:
  void accumulate(DiamondDistributions& dist, const topo::MultipathGraph& g,
                  const topo::Diamond& d, const topo::DiamondMetrics& m);

  int phi_;
  std::set<topo::DiamondKey> seen_;
  DiamondDistributions measured_;
  DiamondDistributions distinct_;
};

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_ACCOUNTING_H
