// Thread-safe lazy route pool over a single-stream SurveyWorld: fleet
// workers claim task indices monotonically, so routes can be generated
// on demand, in order, a window ahead of the tracers, and released as
// soon as the ordered merge is done with them — live routes track the
// in-flight window, not the survey size, while the route SEQUENCE stays
// identical to a serial generate-then-trace loop (the world's RNG never
// depends on trace results). Shared by both surveys and the mmlpt_fleet
// CLI so the window discipline lives in one place.
#ifndef MMLPT_SURVEY_ROUTE_FEEDER_H
#define MMLPT_SURVEY_ROUTE_FEEDER_H

#include <cstddef>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "topology/generator.h"

namespace mmlpt::survey {

class RouteFeeder {
 public:
  /// The world must outlive the feeder and must not be used elsewhere
  /// while the feeder is live (it owns the generation order).
  RouteFeeder(topo::SurveyWorld& world, std::size_t count);

  /// The route for task `index`, generating every route up to it first.
  /// Safe from any worker thread; the reference stays valid until
  /// release(index).
  [[nodiscard]] const topo::GroundTruth& route(std::size_t index);

  /// Drop route `index` (after the ordered merge consumed it). Safe to
  /// call while other workers read different indices: slots are distinct
  /// elements of a pre-sized vector.
  void release(std::size_t index);

  [[nodiscard]] std::size_t count() const noexcept { return routes_.size(); }
  /// Routes currently materialized (generated minus released).
  [[nodiscard]] std::size_t live() const;

 private:
  /// World access and every slot write happen under mutex_; the
  /// reference route() hands out stays valid unlocked because slots are
  /// distinct elements of a pre-sized vector and each is written exactly
  /// once before its reference escapes.
  topo::SurveyWorld* world_ MMLPT_PT_GUARDED_BY(mutex_);
  std::vector<topo::GroundTruth> routes_;  ///< pre-sized; never reallocates
  mutable Mutex mutex_;
  std::size_t generated_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::size_t released_ MMLPT_GUARDED_BY(mutex_) = 0;
};

}  // namespace mmlpt::survey

#endif  // MMLPT_SURVEY_ROUTE_FEEDER_H
