#include "survey/evaluation.h"

#include "common/assert.h"

namespace mmlpt::survey {

namespace {

double safe_ratio(double num, double den) { return den == 0.0 ? 0.0 : num / den; }

void accumulate_union(AggregateCounts& agg, const topo::MultipathGraph& g) {
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (const auto v : g.vertices_at(h)) {
      agg.vertices.insert(g.vertex(v).addr);
      for (const auto s : g.successors(v)) {
        agg.edges.insert({g.vertex(v).addr, g.vertex(s).addr});
      }
    }
  }
}

}  // namespace

std::string variant_name(Variant v) {
  switch (v) {
    case Variant::kMda1: return "First MDA";
    case Variant::kMda2: return "Second MDA";
    case Variant::kMdaLitePhi2: return "MDA-Lite phi=2";
    case Variant::kMdaLitePhi4: return "MDA-Lite phi=4";
    case Variant::kSingleFlow: return "Single flow ID";
  }
  return "?";
}

double PairOutcome::vertex_ratio(Variant v) const {
  return safe_ratio(
      static_cast<double>(variants[static_cast<std::size_t>(v)].vertices),
      static_cast<double>(variants[0].vertices));
}

double PairOutcome::edge_ratio(Variant v) const {
  return safe_ratio(
      static_cast<double>(variants[static_cast<std::size_t>(v)].edges),
      static_cast<double>(variants[0].edges));
}

double PairOutcome::packet_ratio(Variant v) const {
  return safe_ratio(
      static_cast<double>(variants[static_cast<std::size_t>(v)].packets),
      static_cast<double>(variants[0].packets));
}

double EvaluationResult::aggregate_vertex_ratio(Variant v) const {
  return static_cast<double>(
             aggregate[static_cast<std::size_t>(v)].vertices.size()) /
         static_cast<double>(aggregate[0].vertices.size());
}

double EvaluationResult::aggregate_edge_ratio(Variant v) const {
  return static_cast<double>(
             aggregate[static_cast<std::size_t>(v)].edges.size()) /
         static_cast<double>(aggregate[0].edges.size());
}

double EvaluationResult::aggregate_packet_ratio(Variant v) const {
  return static_cast<double>(
             aggregate[static_cast<std::size_t>(v)].packets) /
         static_cast<double>(aggregate[0].packets);
}

EmpiricalCdf EvaluationResult::ratio_cdf(
    Variant v, double (PairOutcome::*metric)(Variant) const) const {
  EmpiricalCdf cdf;
  for (const auto& pair : pairs) {
    cdf.add((pair.*metric)(v));
  }
  return cdf;
}

EvaluationResult run_evaluation(const EvaluationConfig& config) {
  topo::SurveyWorld world(config.generator, config.distinct_diamonds,
                          config.seed);
  EvaluationResult result;
  result.pairs.reserve(config.pairs);

  std::uint64_t seed = config.seed * 0x9E3779B9ULL + 17;
  for (std::size_t i = 0; i < config.pairs; ++i) {
    const auto route = world.next_route();
    PairOutcome outcome;
    for (std::size_t vi = 0; vi < kVariantCount; ++vi) {
      core::Algorithm algorithm = core::Algorithm::kMda;
      core::TraceConfig trace_config = config.trace;
      switch (static_cast<Variant>(vi)) {
        case Variant::kMda1:
        case Variant::kMda2:
          algorithm = core::Algorithm::kMda;
          break;
        case Variant::kMdaLitePhi2:
          algorithm = core::Algorithm::kMdaLite;
          trace_config.phi = 2;
          break;
        case Variant::kMdaLitePhi4:
          algorithm = core::Algorithm::kMdaLite;
          trace_config.phi = 4;
          break;
        case Variant::kSingleFlow:
          algorithm = core::Algorithm::kSingleFlow;
          break;
      }
      const auto trace =
          core::run_trace(route, algorithm, trace_config, config.sim, seed++);
      auto& counts = outcome.variants[vi];
      counts.vertices = trace.graph.vertex_count();
      counts.edges = trace.graph.edge_count();
      counts.packets = trace.packets;
      counts.switched_to_mda = trace.switched_to_mda;
      accumulate_union(result.aggregate[vi], trace.graph);
      result.aggregate[vi].packets += trace.packets;
    }
    result.pairs.push_back(outcome);
  }
  return result;
}

}  // namespace mmlpt::survey
