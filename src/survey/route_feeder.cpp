#include "survey/route_feeder.h"

#include "common/assert.h"

namespace mmlpt::survey {

RouteFeeder::RouteFeeder(topo::SurveyWorld& world, std::size_t count)
    : world_(&world), routes_(count) {}

const topo::GroundTruth& RouteFeeder::route(std::size_t index) {
  MutexLock lock(mutex_);
  MMLPT_EXPECTS(index < routes_.size());
  while (generated_ <= index) {
    routes_[generated_] = world_->next_route();
    ++generated_;
  }
  return routes_[index];
}

void RouteFeeder::release(std::size_t index) {
  MutexLock lock(mutex_);
  MMLPT_EXPECTS(index < generated_);
  routes_[index] = topo::GroundTruth{};
  ++released_;
}

std::size_t RouteFeeder::live() const {
  MutexLock lock(mutex_);
  return generated_ - released_;
}

}  // namespace mmlpt::survey
