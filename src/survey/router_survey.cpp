#include "survey/router_survey.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "common/assert.h"
#include "core/trace_json.h"
#include "obs/metrics.h"
#include "orchestrator/fleet.h"
#include "orchestrator/throttled_network.h"
#include "probe/simulated_network.h"
#include "survey/route_feeder.h"

namespace mmlpt::survey {

namespace {

/// Union-find over interface addresses for the cross-trace aggregation.
class AddressUnionFind {
 public:
  void unite(const net::IpAddress& a, const net::IpAddress& b) {
    link(find(a), find(b));
  }

  [[nodiscard]] std::map<net::IpAddress, std::size_t> component_sizes() {
    std::map<net::IpAddress, std::size_t> sizes;
    for (const auto& [addr, parent] : parent_) {
      ++sizes[find(addr)];
    }
    return sizes;
  }

 private:
  net::IpAddress find(net::IpAddress x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    while (it->second != x) {
      x = it->second;
      it = parent_.find(x);
    }
    return x;
  }
  void link(const net::IpAddress& a, const net::IpAddress& b) {
    if (a != b) parent_[a] = b;
  }

  std::map<net::IpAddress, net::IpAddress> parent_;
};

std::vector<std::size_t> widths_between(const topo::MultipathGraph& g,
                                        const topo::Diamond& d) {
  std::vector<std::size_t> widths;
  for (std::uint16_t h = d.divergence_hop; h <= d.convergence_hop; ++h) {
    widths.push_back(g.vertices_at(h).size());
  }
  return widths;
}

/// Merge one traced route into the running survey state — the historical
/// serial merge body. Order sensitive (dedup sets, union-find): must be
/// called in route order.
void merge_route(const core::MultilevelResult& ml, RouterSurveyResult& result,
                 std::set<std::vector<net::IpAddress>>& distinct_sets,
                 std::set<topo::DiamondKey>& seen_diamonds,
                 AddressUnionFind& aggregated) {
  ++result.routes_traced;
  result.total_packets += ml.total_packets;

  // Router sizes from the final round's accepted sets.
  for (const auto& [hop, sets] : ml.final_round().sets_by_hop) {
    for (const auto& set : sets) {
      if (set.outcome != alias::Outcome::kAccept || set.members.size() < 2) {
        continue;
      }
      std::vector<net::IpAddress> key;
      key.reserve(set.members.size());
      for (const auto& addr : set.members) key.push_back(addr);
      std::sort(key.begin(), key.end());
      if (distinct_sets.insert(key).second) {
        result.distinct_router_size.add(
            static_cast<std::int64_t>(set.members.size()));
      }
      for (std::size_t m = 1; m < key.size(); ++m) {
        aggregated.unite(key[0], key[m]);
      }
    }
  }

  // Diamond-by-diamond resolution effects, on unique diamonds.
  for (const auto& d : topo::extract_diamonds(ml.trace.graph)) {
    const auto key = topo::diamond_key(ml.trace.graph, d);
    if (!seen_diamonds.insert(key).second) continue;
    ++result.unique_diamonds;
    const auto cls = classify_resolution(ml.trace.graph, ml.router_graph, d);
    ++result.resolution_counts[cls];

    const auto ip_metrics = topo::compute_metrics(ml.trace.graph, d);
    result.ip_width.add(ip_metrics.max_width);
    // Router-level width over the same hop range.
    std::size_t router_width = 0;
    for (std::uint16_t h = d.divergence_hop; h <= d.convergence_hop; ++h) {
      router_width =
          std::max(router_width, ml.router_graph.vertices_at(h).size());
    }
    result.router_width.add(static_cast<std::int64_t>(router_width));
    if (static_cast<int>(router_width) != ip_metrics.max_width) {
      result.width_before_after.add(ip_metrics.max_width,
                                    static_cast<std::int64_t>(router_width));
    }
  }
}

}  // namespace

topo::ResolutionClass classify_resolution(
    const topo::MultipathGraph& ip, const topo::MultipathGraph& router_level,
    const topo::Diamond& diamond) {
  MMLPT_EXPECTS(ip.hop_count() == router_level.hop_count());
  const auto before = widths_between(ip, diamond);
  const auto after = widths_between(router_level, diamond);
  if (before == after) return topo::ResolutionClass::kNoChange;

  // Interior hops only (divergence and convergence are single anyway).
  bool all_single = true;
  bool any_single = false;
  for (std::size_t i = 1; i + 1 < after.size(); ++i) {
    if (after[i] == 1) {
      any_single = true;
    } else {
      all_single = false;
    }
  }
  if (all_single) return topo::ResolutionClass::kOnePath;
  if (any_single) return topo::ResolutionClass::kMultipleSmallerDiamonds;
  return topo::ResolutionClass::kSingleSmallerDiamond;
}

double RouterSurveyResult::resolution_fraction(
    topo::ResolutionClass c) const {
  if (unique_diamonds == 0) return 0.0;
  const auto it = resolution_counts.find(c);
  const auto count = it == resolution_counts.end() ? 0 : it->second;
  return static_cast<double>(count) / static_cast<double>(unique_diamonds);
}

RouterSurveyResult run_router_survey(const RouterSurveyConfig& config,
                                     orchestrator::ResultSink* sink) {
  topo::SurveyWorld world(config.generator, config.distinct_diamonds,
                          config.seed);

  // Lazy in-order generation + per-merge release: live routes track the
  // in-flight window, not the survey size.
  RouteFeeder feeder(world, config.routes);

  // Trace + multilevel alias resolution per destination. Seeding keeps
  // the pre-fleet serial formula (base + route index): jobs=1 is
  // bit-identical to the historical loop.
  //
  // The merge rides the scheduler's on_result hook: the distinct-set
  // dedup, the diamond dedup and the union-find are all first-encounter
  // sensitive, and on_result fires serialized in strict route order —
  // exactly the historical serial merge.
  RouterSurveyResult result;
  std::set<std::vector<net::IpAddress>> distinct_sets;
  std::set<topo::DiamondKey> seen_diamonds;
  AddressUnionFind aggregated;

  obs::Counter* sim_probes =
      config.metrics != nullptr
          ? config.metrics->counter("mmlpt_transport_probes_sent_total",
                                    "Probe packets handed to the transport",
                                    {{"transport", "sim"}})
          : nullptr;
  orchestrator::FleetScheduler fleet(
      {config.jobs, config.seed, config.pps, config.burst,
       config.merge_windows, config.pipeline_depth, config.metrics});
  const std::uint64_t base_seed = config.seed * 0x2545F491ULL + 99;
  fleet.run_streaming(
      config.routes,
      [&](orchestrator::WorkerContext& context) {
        const auto& route = feeder.route(context.task_index);
        fakeroute::Simulator simulator(route, config.sim,
                                       base_seed + context.task_index);
        probe::SimulatedNetwork network(simulator);
        std::optional<orchestrator::ThrottledNetwork> throttled;
        std::unique_ptr<orchestrator::FleetTransportHub::Channel> channel;
        probe::TransportQueue* transport = &network;
        if (context.hub) {
          // Merged: windows join the fleet bursts; the hub pays the
          // limiter per burst.
          channel = context.hub->open_channel(network);
          transport = channel.get();
        } else if (context.limiter) {
          throttled.emplace(network, *context.limiter);
          transport = &*throttled;
        }
        std::optional<probe::CancellableNetwork> cancellable;
        if (config.cancel) {
          // Outermost: a fired token stops new probes before they are
          // billed and resolves in-flight tickets through the stack.
          probe::Network* outer =
              channel ? static_cast<probe::Network*>(channel.get())
                      : throttled ? static_cast<probe::Network*>(&*throttled)
                                  : &network;
          cancellable.emplace(*outer, *config.cancel);
          transport = &*cancellable;
        }
        probe::ProbeEngine::Config engine_config;
        engine_config.source = route.source;
        engine_config.destination = route.destination;
        probe::ProbeEngine engine(*transport, engine_config);

        core::MultilevelTracer tracer(engine, config.multilevel);
        return tracer.run();
      },
      [&](std::size_t i, core::MultilevelResult& ml) {
        if (sink) {
          sink->emit(i, orchestrator::destination_line(
                            i, feeder.route(i).destination.to_string(),
                            core::stop_set_envelope_fields(ml), "multilevel",
                            core::multilevel_to_json(ml)));
        }
        if (sim_probes != nullptr) sim_probes->add(ml.total_packets);
        if (ml.trace.stop_set_active) {
          result.stop_set_active = true;
          result.probes_saved_by_stop_set +=
              ml.trace.probes_saved_by_stop_set;
          if (ml.trace.stopped_on_hit) ++result.traces_stopped;
        }
        merge_route(ml, result, distinct_sets, seen_diamonds, aggregated);
        feeder.release(i);
      });

  for (const auto& [root, size] : aggregated.component_sizes()) {
    if (size >= 2) {
      result.aggregated_router_size.add(static_cast<std::int64_t>(size));
    }
  }
  return result;
}

}  // namespace mmlpt::survey
