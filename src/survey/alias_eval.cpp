#include "survey/alias_eval.h"

#include <algorithm>
#include <set>

#include "probe/simulated_network.h"

namespace mmlpt::survey {

namespace {

/// Unordered alias pairs implied by the accepted sets of one snapshot.
std::set<std::pair<net::IpAddress, net::IpAddress>> alias_pairs(
    const core::RoundSnapshot& snap) {
  std::set<std::pair<net::IpAddress, net::IpAddress>> pairs;
  for (const auto& [hop, sets] : snap.sets_by_hop) {
    for (const auto& set : sets) {
      if (set.outcome != alias::Outcome::kAccept) continue;
      for (std::size_t i = 0; i < set.members.size(); ++i) {
        for (std::size_t j = i + 1; j < set.members.size(); ++j) {
          auto a = set.members[i];
          auto b = set.members[j];
          if (a > b) std::swap(a, b);
          pairs.insert({a, b});
        }
      }
    }
  }
  return pairs;
}

std::vector<net::IpAddress> set_key(
    const std::vector<net::IpAddress>& members) {
  std::vector<net::IpAddress> key;
  key.reserve(members.size());
  for (const auto& m : members) key.push_back(m);
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace

AliasRoundsStats alias_rounds_stats(
    std::span<const core::MultilevelResult> results) {
  AliasRoundsStats stats;
  std::size_t rounds = 0;
  for (const auto& r : results) rounds = std::max(rounds, r.rounds.size());
  if (rounds == 0) return stats;

  std::vector<double> tp(rounds, 0.0);
  std::vector<double> found(rounds, 0.0);
  std::vector<double> truth(rounds, 0.0);
  std::vector<double> packets(rounds, 0.0);
  double round0_packets = 0.0;

  for (const auto& result : results) {
    if (result.rounds.empty()) continue;
    const auto final_pairs = alias_pairs(result.rounds.back());
    round0_packets += static_cast<double>(result.rounds.front().packets);
    for (std::size_t r = 0; r < result.rounds.size(); ++r) {
      const auto pairs = alias_pairs(result.rounds[r]);
      double hits = 0.0;
      for (const auto& p : pairs) {
        if (final_pairs.count(p) > 0) hits += 1.0;
      }
      tp[r] += hits;
      found[r] += static_cast<double>(pairs.size());
      truth[r] += static_cast<double>(final_pairs.size());
      packets[r] += static_cast<double>(result.rounds[r].packets);
    }
  }

  stats.precision.resize(rounds);
  stats.recall.resize(rounds);
  stats.probe_ratio.resize(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    stats.precision[r] = found[r] == 0.0 ? 1.0 : tp[r] / found[r];
    stats.recall[r] = truth[r] == 0.0 ? 1.0 : tp[r] / truth[r];
    stats.probe_ratio[r] =
        round0_packets == 0.0 ? 1.0 : packets[r] / round0_packets;
  }
  return stats;
}

AliasEvalResult run_alias_eval(const AliasEvalConfig& config) {
  topo::SurveyWorld world(config.generator, config.distinct_diamonds,
                          config.seed);
  AliasEvalResult result;

  std::uint64_t seed = config.seed * 0xD1B54A33ULL + 7;
  for (std::size_t i = 0; i < config.routes; ++i) {
    const auto route = world.next_route();
    fakeroute::Simulator simulator(route, config.sim, seed++);
    probe::SimulatedNetwork network(simulator);
    probe::ProbeEngine::Config engine_config;
    engine_config.source = route.source;
    engine_config.destination = route.destination;
    probe::ProbeEngine engine(network, engine_config);

    core::MultilevelTracer tracer(engine, config.multilevel);
    auto ml = tracer.run();

    // MIDAR-style direct probing pass against the same simulated routers
    // (the engine's virtual clock keeps advancing, so IP-ID time series
    // continue coherently).
    alias::DirectProber direct(engine, config.direct);
    for (const auto& [hop, sets] : ml.final_round().sets_by_hop) {
      std::vector<net::Ipv4Address> addrs;
      for (const auto& set : sets) {
        addrs.insert(addrs.end(), set.members.begin(), set.members.end());
      }
      if (addrs.size() < 2) continue;
      const auto direct_resolver = direct.collect(addrs);
      const auto direct_sets = direct_resolver.resolve(addrs);

      // Union of sets accepted by either method, deduplicated by content.
      std::set<std::vector<net::IpAddress>> considered;
      const auto classify_both = [&](const std::vector<net::Ipv4Address>&
                                         members,
                                     bool accepted_indirect,
                                     bool accepted_direct) {
        if (!considered.insert(set_key(members)).second) return;
        const auto indirect_outcome =
            accepted_indirect ? alias::Outcome::kAccept
                              : ml.resolver.classify_set(members);
        const auto direct_outcome = accepted_direct
                                        ? alias::Outcome::kAccept
                                        : direct_resolver.classify_set(members);
        if (indirect_outcome != alias::Outcome::kAccept &&
            direct_outcome != alias::Outcome::kAccept) {
          return;  // neither tool identified it: not part of Table 2
        }
        ++result.table2.total_sets;
        if (indirect_outcome == alias::Outcome::kAccept) {
          ++result.table2.indirect_accepted;
        }
        if (direct_outcome == alias::Outcome::kAccept) {
          ++result.table2.direct_accepted;
        }
        if (indirect_outcome == alias::Outcome::kAccept) {
          switch (direct_outcome) {
            case alias::Outcome::kAccept: ++result.table2.accept_accept; break;
            case alias::Outcome::kReject:
              ++result.table2.accept_indirect_reject_direct;
              break;
            case alias::Outcome::kUnable:
              ++result.table2.accept_indirect_unable_direct;
              break;
          }
        } else if (direct_outcome == alias::Outcome::kAccept) {
          if (indirect_outcome == alias::Outcome::kReject) {
            ++result.table2.reject_indirect_accept_direct;
          } else {
            ++result.table2.unable_indirect_accept_direct;
          }
        }
      };

      for (const auto& set : sets) {
        if (set.outcome == alias::Outcome::kAccept && set.members.size() >= 2) {
          classify_both(set.members, true, false);
        }
      }
      for (const auto& set : direct_sets) {
        if (set.outcome == alias::Outcome::kAccept && set.members.size() >= 2) {
          classify_both(set.members, false, true);
        }
      }
    }
    result.multilevel_results.push_back(std::move(ml));
  }
  return result;
}

}  // namespace mmlpt::survey
