#include "daemon/server.h"

#include <cerrno>
#include <cstring>
#include <deque>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"
#include "common/json.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "daemon/frame_io.h"

namespace mmlpt::daemon {
namespace {

/// Progress frame cadence: every this-many merged destinations (and
/// always on the last one).
constexpr std::uint64_t kProgressEvery = 8;

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

}  // namespace

// ---- Connection --------------------------------------------------------

/// One accepted client: a reader thread decoding request frames and a
/// worker thread running that client's jobs (serialized per connection,
/// concurrent across connections through the shared scheduler). All
/// daemon->client frames go through send(), which serializes writes and
/// latches peer_gone_ on the first failed write so a vanished client
/// cancels its own job instead of wedging the daemon.
class Daemon::Connection {
 public:
  Connection(Daemon& daemon, int fd)
      : daemon_(daemon), fd_(fd), reader_(fd) {}

  ~Connection() { join(); }

  void start() { thread_ = std::thread(&Connection::run, this); }

  void join() {
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] bool finished() const noexcept {
    return finished_.load(std::memory_order_acquire);
  }

 private:
  void run() {
    bool peer_disconnected = false;
    try {
      if (handshake()) {
        worker_ = std::thread(&Connection::worker_loop, this);
        bool open = true;
        while (open) {
          if (!poll_readable()) break;  // daemon shutdown: drain
          if (!reader_.fill()) {
            peer_disconnected = true;
            break;
          }
          while (auto frame = reader_.next()) handle_frame(*frame);
        }
      }
    } catch (const ParseError& e) {
      // Torn/oversized frame or schema violation: the stream cannot be
      // resynchronized. Tell the peer why, then drop the connection.
      send(encode_error({std::string("protocol error: ") + e.what()}));
      peer_disconnected = true;
    } catch (const std::exception&) {
      peer_disconnected = true;  // read error: treat like a vanished peer
    }
    stop_worker(peer_disconnected);
    ::close(fd_);
    finished_.store(true, std::memory_order_release);
  }

  /// Wait until the connection fd is readable. Returns false when the
  /// daemon's shutdown pipe fired instead.
  [[nodiscard]] bool poll_readable() {
    struct pollfd fds[2] = {{fd_, POLLIN, 0},
                            {daemon_.shutdown_pipe_[0], POLLIN, 0}};
    for (;;) {
      const int n = ::poll(fds, 2, -1);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw SystemError(std::string("connection poll failed: ") +
                          std::strerror(errno));
      }
      if (fds[1].revents != 0) return false;
      if (fds[0].revents != 0) return true;
    }
  }

  /// Version negotiation. Unknown frame types before the Hello are
  /// skipped (forward compatibility); a known non-Hello frame, a magic
  /// mismatch or a version range outside ours is refused with an Error
  /// frame before any job state exists.
  [[nodiscard]] bool handshake() {
    for (;;) {
      if (!poll_readable()) return false;  // shutdown mid-handshake
      if (!reader_.fill()) return false;   // EOF before hello
      while (auto frame = reader_.next()) {
        if (!is_known_frame_type(frame->type)) continue;
        if (frame->type != static_cast<std::uint8_t>(FrameType::kHello)) {
          send(encode_error({"handshake violation: expected hello frame"}));
          return false;
        }
        const Hello hello = decode_hello(*frame);  // ParseError -> run()
        const auto version = negotiate_version(hello);
        if (!version) {
          send(encode_error(
              {"unsupported protocol version: daemon speaks " +
               std::to_string(kProtocolVersion) + ", client offered [" +
               std::to_string(hello.min_version) + ", " +
               std::to_string(hello.max_version) + "]"}));
          return false;
        }
        tenant_ = hello.tenant.empty() ? "default" : hello.tenant;
        send(encode_hello_ack({*version}));
        return true;
      }
    }
  }

  void handle_frame(const Frame& frame) {
    if (!is_known_frame_type(frame.type)) return;  // skip, don't refuse
    switch (static_cast<FrameType>(frame.type)) {
      case FrameType::kJobRequest:
        enqueue_job(decode_job_request(frame));
        return;
      case FrameType::kCancel:
        cancel_job(decode_cancel(frame).job_id);
        return;
      case FrameType::kStatusRequest:
        send(encode_server_status({daemon_.status_json()}));
        return;
      case FrameType::kMetricsRequest:
        send(encode_metrics({daemon_.metrics_.render()}));
        return;
      default:
        // A duplicate hello or a daemon->client frame from a client:
        // harmless, ignore rather than poison a healthy connection.
        return;
    }
  }

  void enqueue_job(JobRequest request) {
    std::optional<JobStatus> refusal;
    {
      const MutexLock lock(job_mutex_);
      const auto queued = static_cast<int>(queue_.size());
      if (worker_stop_) {
        refusal = JobStatus{request.job_id, JobOutcome::kRejected,
                            "daemon shutting down", 0, 0};
      } else if (job_active_ &&
                 queued >= daemon_.config_.max_queued_jobs_per_connection) {
        refusal = JobStatus{request.job_id, JobOutcome::kRejected,
                            "connection job queue full (max " +
                                std::to_string(
                                    daemon_.config_
                                        .max_queued_jobs_per_connection) +
                                ")",
                            0, 0};
      } else {
        queue_.push_back(std::move(request));
      }
    }
    if (refusal) {
      send(encode_job_status(*refusal));
    } else {
      job_cv_.notify_one();
    }
  }

  void cancel_job(std::uint64_t job_id) {
    bool canceled_queued = false;
    {
      const MutexLock lock(job_mutex_);
      if (job_active_ && active_job_id_ == job_id) {
        active_cancel_->request();
        return;
      }
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->job_id == job_id) {
          queue_.erase(it);
          canceled_queued = true;
          break;
        }
      }
    }
    if (canceled_queued) {
      send(encode_job_status({job_id, JobOutcome::kCanceled,
                              "canceled before start", 0, 0}));
    }
    // Unknown id: the job already finished — its final status frame is
    // on the wire or gone; nothing to do.
  }

  void worker_loop() {
    for (;;) {
      JobRequest request;
      {
        MutexLock lock(job_mutex_);
        while (!worker_stop_ && queue_.empty()) job_cv_.wait(job_mutex_);
        if (worker_stop_) break;  // queue was cleared by stop_worker
        request = std::move(queue_.front());
        queue_.pop_front();
      }
      run_one_job(request);
    }
  }

  void run_one_job(const JobRequest& request) {
    AdmissionTicket ticket = daemon_.admission_.try_admit(tenant_);
    if (!ticket.admitted) {
      daemon_.jobs_refused_->add();
      send(encode_job_status({request.job_id, JobOutcome::kRejected,
                              ticket.reason, 0, 0}));
      return;
    }
    auto cancel = std::make_shared<probe::CancelToken>();
    {
      const MutexLock lock(job_mutex_);
      job_active_ = true;
      active_job_id_ = request.job_id;
      active_cancel_ = cancel;
      // relaxed: latched flag; CancelToken::request carries its own
      // synchronization, and a missed read here is caught by send().
      if (peer_gone_.load(std::memory_order_relaxed)) cancel->request();
    }

    JobStatus status;
    status.job_id = request.job_id;
    std::uint64_t lines = 0;
    const auto total =
        static_cast<std::uint64_t>(request.spec.destination_count());

    FleetJobHooks hooks;
    hooks.tenant_limiter = ticket.limiter;
    hooks.cancel = cancel.get();
    hooks.on_line = [&](std::size_t, std::string line) {
      ++lines;
      send(encode_result_line({request.job_id, std::move(line)}));
    };
    hooks.on_progress = [&](std::uint64_t merged,
                            const FleetJobCounters& so_far) {
      if (merged % kProgressEvery == 0 || merged == total) {
        send(encode_progress({request.job_id, merged, total, so_far.packets}));
      }
    };

    try {
      const FleetJobCounters counters =
          run_fleet_job(daemon_.fleet_, &daemon_.stop_set_session_,
                        request.spec, daemon_.config_.sim, hooks);
      if (const auto* stop_set = daemon_.stop_set_session_.stop_set()) {
        send(encode_stop_set_summary(
            {request.job_id,
             stop_set_summary_text(*stop_set,
                                   counters.probes_saved_by_stop_set,
                                   counters.traces_stopped)}));
      }
      status.outcome = JobOutcome::kOk;
      status.packets = counters.packets;
      daemon_.jobs_completed_->add();
    } catch (const probe::CanceledError& e) {
      status.outcome = JobOutcome::kCanceled;
      status.message = e.what();
      daemon_.jobs_canceled_->add();
    } catch (const std::exception& e) {
      status.outcome = JobOutcome::kFailed;
      status.message = e.what();
      daemon_.jobs_failed_->add();
    }
    status.lines = lines;

    daemon_.admission_.release(tenant_);
    {
      const MutexLock lock(job_mutex_);
      job_active_ = false;
      active_cancel_.reset();
    }
    send(encode_job_status(status));
  }

  /// Stop the worker. A disconnected peer's RUNNING job is canceled (no
  /// one is listening); on daemon shutdown it drains to completion.
  /// Queued jobs are dropped either way, with a canceled status when the
  /// peer can still hear it.
  void stop_worker(bool peer_disconnected) {
    std::vector<std::uint64_t> dropped;
    {
      const MutexLock lock(job_mutex_);
      for (const auto& queued : queue_) dropped.push_back(queued.job_id);
      queue_.clear();
      if (peer_disconnected) {
        // relaxed: latched flag; readers only use it to suppress writes
        // to a peer that is already gone, so no ordering is needed.
        peer_gone_.store(true, std::memory_order_relaxed);
        if (active_cancel_) active_cancel_->request();
      }
      // The worker only checks this between jobs, so a RUNNING job
      // always finishes (drain) — unless the token above aborts it.
      worker_stop_ = true;
    }
    job_cv_.notify_all();
    if (!peer_disconnected) {
      for (const auto id : dropped) {
        send(encode_job_status(
            {id, JobOutcome::kCanceled, "daemon shutting down", 0, 0}));
      }
    }
    if (worker_.joinable()) worker_.join();
  }

  /// Serialize all writes to the peer. The first failed write (EPIPE —
  /// the peer vanished) latches peer_gone_ and fires the active job's
  /// cancel token; later sends are silently dropped.
  void send(const Frame& frame) {
    const MutexLock lock(write_mutex_);
    // relaxed (both sites): latched flag; the only consequence of a
    // stale read is one extra write attempt, which re-latches it.
    if (peer_gone_.load(std::memory_order_relaxed)) return;
    try {
      write_frame(fd_, frame);
    } catch (const std::exception&) {
      // relaxed: latching the same flag as above.
      peer_gone_.store(true, std::memory_order_relaxed);
      const MutexLock job_lock(job_mutex_);
      if (active_cancel_) active_cancel_->request();
    }
  }

  Daemon& daemon_;
  int fd_;
  FrameReader reader_;
  std::string tenant_ = "default";
  std::thread thread_;
  std::atomic<bool> finished_{false};
  std::atomic<bool> peer_gone_{false};

  Mutex write_mutex_;  ///< serializes write_frame on fd_

  // Job state: one running job + a bounded queue, guarded by job_mutex_.
  // Lock order: write_mutex_ before job_mutex_ (see send()); never the
  // reverse — every status send happens with job_mutex_ released.
  Mutex job_mutex_;
  CondVar job_cv_;
  std::deque<JobRequest> queue_ MMLPT_GUARDED_BY(job_mutex_);
  bool worker_stop_ MMLPT_GUARDED_BY(job_mutex_) = false;
  bool job_active_ MMLPT_GUARDED_BY(job_mutex_) = false;
  std::uint64_t active_job_id_ MMLPT_GUARDED_BY(job_mutex_) = 0;
  std::shared_ptr<probe::CancelToken> active_cancel_
      MMLPT_GUARDED_BY(job_mutex_);
  std::thread worker_;
};

// ---- Daemon ------------------------------------------------------------

namespace {

/// Point the scheduler's config at the daemon registry before the
/// scheduler is constructed (metrics_ is declared first, so it is alive
/// by the time fleet_ initializes).
orchestrator::FleetConfig with_registry(orchestrator::FleetConfig fleet,
                                        obs::MetricsRegistry* registry) {
  fleet.metrics = registry;
  return fleet;
}

}  // namespace

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      fleet_(with_registry(config_.fleet, &metrics_)),
      stop_set_session_(config_.topology_cache, config_.consult_stop_set),
      admission_(config_.admission) {
  config_.fleet.metrics = &metrics_;
  stop_set_session_.instrument(metrics_);
  admission_.instrument(metrics_);
  const auto job_counter = [this](const char* outcome, const char* help) {
    return metrics_.counter("mmlpt_daemon_jobs_total", help,
                            {{"outcome", outcome}});
  };
  jobs_completed_ =
      job_counter("ok", "Jobs finished, labeled by final outcome");
  jobs_canceled_ = job_counter("canceled", "");
  jobs_failed_ = job_counter("failed", "");
  jobs_refused_ = job_counter("rejected", "");
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  // relaxed: single-caller idempotence check; thread visibility comes
  // from the thread spawn below, not this flag.
  if (running_.load(std::memory_order_relaxed)) return;
  if (config_.socket_path.empty()) {
    throw ConfigError("mmlptd needs a socket path");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof addr.sun_path) {
    throw ConfigError("socket path too long for AF_UNIX: " +
                      config_.socket_path);
  }
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  if (::pipe(shutdown_pipe_) != 0) {
    throw SystemError("cannot create daemon shutdown pipe");
  }
  set_cloexec(shutdown_pipe_[0]);
  set_cloexec(shutdown_pipe_[1]);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw SystemError(std::string("cannot create unix socket: ") +
                      std::strerror(errno));
  }
  set_cloexec(listen_fd_);
  ::unlink(config_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw SystemError("cannot bind " + config_.socket_path + ": " +
                      std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw SystemError(std::string("cannot listen: ") + std::strerror(err));
  }

  // relaxed: advisory liveness flag (see running()); the accept thread
  // synchronizes through its own spawn.
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread(&Daemon::accept_loop, this);
}

void Daemon::accept_loop() {
  for (;;) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {shutdown_pipe_[0], POLLIN, 0}};
    const int n = ::poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown
    if (fds[0].revents == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    set_cloexec(client);
    const MutexLock lock(connections_mutex_);
    reap_finished_connections();
    connections_.push_back(std::make_unique<Connection>(*this, client));
    ++connections_accepted_;
    connections_.back()->start();
  }
}

void Daemon::reap_finished_connections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished()) {
      (*it)->join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::stop() {
  // relaxed: the exchange only arbitrates which caller runs the
  // shutdown; all teardown ordering comes from the pipe write + joins.
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  // One byte on the never-drained pipe wakes the accept loop and every
  // connection poller, level-triggered.
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(shutdown_pipe_[1], &byte, 1);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
  {
    // Drain: connection threads finish their RUNNING jobs, drop queued
    // ones, and exit; join them all.
    const MutexLock lock(connections_mutex_);
    for (auto& connection : connections_) connection->join();
    connections_.clear();
  }
  stop_set_session_.flush();  // discoveries survive the shutdown
  for (int& fd : shutdown_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

std::string Daemon::status_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("daemon");
  w.value("mmlptd");
  w.key("protocol_version");
  w.value(static_cast<std::uint64_t>(kProtocolVersion));
  w.key("socket");
  w.value(config_.socket_path);
  {
    const MutexLock lock(connections_mutex_);
    std::size_t active = 0;
    for (const auto& connection : connections_) {
      if (!connection->finished()) ++active;
    }
    w.key("connections_active");
    w.value(static_cast<std::uint64_t>(active));
    w.key("connections_accepted");
    w.value(connections_accepted_);
  }
  w.key("fleet");
  w.begin_object();
  w.key("jobs");
  w.value(static_cast<std::int64_t>(config_.fleet.jobs));
  w.key("pps");
  w.value(config_.fleet.pps);
  w.key("burst");
  w.value(static_cast<std::int64_t>(config_.fleet.burst));
  w.key("merge_windows");
  w.value(config_.fleet.merge_windows);
  w.key("pipeline_depth");
  w.value(static_cast<std::int64_t>(config_.fleet.pipeline_depth));
  w.key("transport");
  w.value(std::string(probe::resolved_transport_name(config_.transport)));
  w.end_object();
  w.key("stop_set_active");
  w.value(stop_set_session_.active());
  w.key("admission");
  admission_.write_status(w);
  w.end_object();
  return std::move(w).take();
}

}  // namespace mmlpt::daemon
