// SIGINT/SIGTERM plumbing shared by every long-running mmlpt tool: the
// fleet/survey CLIs use it so an interrupt still flushes the
// StopSetSession and fsyncs the JSONL sink, and mmlptd uses the same
// latch for its clean drain-and-exit.
//
// Classic self-pipe design, in three async-signal-safe moves: the
// handler (1) latches which signal arrived in a sig_atomic_t, (2) fires
// an optional linked probe::CancelToken (a relaxed atomic store — this
// is what aborts in-flight traces through CancellableNetwork), and (3)
// writes one byte to a non-blocking pipe whose read end is pollable
// alongside sockets. The pipe is never drained, so it stays
// level-triggered for every poller. A SECOND delivery _exit(128+sig)s:
// the escape hatch when a drain wedges.
#ifndef MMLPT_DAEMON_SIGNALS_H
#define MMLPT_DAEMON_SIGNALS_H

#include "probe/cancel.h"

namespace mmlpt::daemon {

class ShutdownSignal {
 public:
  /// Install the SIGINT/SIGTERM handlers (idempotent; first call wins)
  /// and return the process-wide instance.
  static ShutdownSignal& install();

  /// Has a shutdown signal been delivered?
  [[nodiscard]] bool requested() const noexcept;
  /// The signal number delivered (0 when none yet).
  [[nodiscard]] int signal() const noexcept;
  /// The conventional exit code for that signal (128 + signo), or 0.
  [[nodiscard]] int exit_code() const noexcept;
  /// Read end of the self-pipe: becomes (and stays) readable once a
  /// signal is delivered. poll(2) it next to sockets.
  [[nodiscard]] int fd() const noexcept;
  /// Also request() this token from the handler (nullptr unlinks). The
  /// token must outlive the link.
  void link(probe::CancelToken* token) noexcept;

 private:
  ShutdownSignal() = default;
};

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_SIGNALS_H
