#include "daemon/client.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.h"

namespace mmlpt::daemon {
namespace {

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    throw ConfigError("bad mmlptd socket path: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw SystemError(std::string("cannot create unix socket: ") +
                      std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw SystemError("cannot connect to mmlptd at " + path + ": " +
                      std::strerror(err));
  }
  ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  return fd;
}

}  // namespace

Client::Client(const std::string& socket_path, const std::string& tenant)
    : fd_(connect_unix(socket_path)), reader_(fd_) {
  try {
    Hello hello;
    hello.tenant = tenant;
    write_frame(fd_, encode_hello(hello));
    for (;;) {
      const auto frame = read_frame(/*wake_fd=*/-1);
      if (!is_known_frame_type(frame->type)) continue;  // forward compat
      if (frame->type == static_cast<std::uint8_t>(FrameType::kError)) {
        throw Error("daemon refused handshake: " +
                    decode_error(*frame).message);
      }
      if (frame->type == static_cast<std::uint8_t>(FrameType::kHelloAck)) {
        version_ = decode_hello_ack(*frame).version;
        return;
      }
      // Anything else before the ack is a confused daemon; keep reading.
    }
  } catch (...) {
    ::close(fd_);
    throw;
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Frame> Client::read_frame(int wake_fd) {
  for (;;) {
    if (auto frame = reader_.next()) return frame;
    struct pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_fd, POLLIN, 0}};
    const int count = wake_fd >= 0 ? 2 : 1;
    const int n = ::poll(fds, static_cast<nfds_t>(count), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("client poll failed: ") +
                        std::strerror(errno));
    }
    if (count == 2 && fds[1].revents != 0) return std::nullopt;
    if (fds[0].revents == 0) continue;
    if (!reader_.fill()) {
      throw Error(reader_.has_partial_frame()
                      ? "daemon closed the connection mid-frame"
                      : "daemon closed the connection");
    }
  }
}

ClientJobResult Client::run_job(const FleetJobSpec& spec,
                                const ClientRunOptions& options) {
  const std::uint64_t job_id = next_job_id_++;
  write_frame(fd_, encode_job_request({job_id, spec}));

  ClientJobResult result;
  bool cancel_sent = false;
  std::uint64_t lines = 0;
  int wake_fd = options.cancel_fd;
  const auto send_cancel_once = [&] {
    if (cancel_sent) return;
    write_frame(fd_, encode_cancel({job_id}));
    cancel_sent = true;
  };

  for (;;) {
    const auto frame = read_frame(wake_fd);
    if (!frame) {  // wake_fd fired (a signal arrived): cancel, keep reading
      wake_fd = -1;
      send_cancel_once();
      continue;
    }
    if (!is_known_frame_type(frame->type)) continue;
    switch (static_cast<FrameType>(frame->type)) {
      case FrameType::kResultLine: {
        auto line = decode_result_line(*frame);
        if (line.job_id != job_id) break;
        ++lines;
        if (options.on_line) options.on_line(line.line);
        if (options.cancel_after_lines > 0 &&
            lines >= options.cancel_after_lines) {
          send_cancel_once();
        }
        break;
      }
      case FrameType::kProgress: {
        const auto progress = decode_progress(*frame);
        if (progress.job_id == job_id && options.on_progress) {
          options.on_progress(progress);
        }
        break;
      }
      case FrameType::kStopSetSummary: {
        auto summary = decode_stop_set_summary(*frame);
        if (summary.job_id == job_id) {
          result.stop_set_summary = std::move(summary.text);
        }
        break;
      }
      case FrameType::kJobStatus: {
        auto status = decode_job_status(*frame);
        if (status.job_id != job_id) break;
        result.outcome = status.outcome;
        result.message = std::move(status.message);
        result.lines = status.lines;
        result.packets = status.packets;
        return result;
      }
      case FrameType::kError:
        throw Error("daemon error: " + decode_error(*frame).message);
      default:
        break;  // ServerStatus for someone else, stray handshake frames
    }
  }
}

std::string Client::server_status() {
  write_frame(fd_, encode_status_request());
  for (;;) {
    const auto frame = read_frame(/*wake_fd=*/-1);
    if (!is_known_frame_type(frame->type)) continue;
    if (frame->type == static_cast<std::uint8_t>(FrameType::kServerStatus)) {
      return decode_server_status(*frame).json;
    }
    if (frame->type == static_cast<std::uint8_t>(FrameType::kError)) {
      throw Error("daemon error: " + decode_error(*frame).message);
    }
    // A stale ResultLine/JobStatus from a prior canceled job: skip.
  }
}

std::string Client::metrics() {
  write_frame(fd_, encode_metrics_request());
  for (;;) {
    const auto frame = read_frame(/*wake_fd=*/-1);
    if (!is_known_frame_type(frame->type)) continue;
    if (frame->type == static_cast<std::uint8_t>(FrameType::kMetrics)) {
      return decode_metrics(*frame).text;
    }
    if (frame->type == static_cast<std::uint8_t>(FrameType::kError)) {
      throw Error("daemon error: " + decode_error(*frame).message);
    }
    // A stale frame from a prior job: skip until the Metrics reply.
  }
}

}  // namespace mmlpt::daemon
