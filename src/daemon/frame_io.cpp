#include "daemon/frame_io.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "common/error.h"

namespace mmlpt::daemon {

std::optional<Frame> FrameReader::next() {
  auto frame = decode_frame(buffer_, offset_);
  if (frame && offset_ == buffer_.size()) {
    // Frame boundary: drop the consumed bytes so the buffer tracks the
    // in-flight frame, not the connection lifetime.
    buffer_.clear();
    offset_ = 0;
  }
  return frame;
}

bool FrameReader::fill() {
  char chunk[4096];
  ssize_t n;
  do {
    n = ::read(fd_, chunk, sizeof chunk);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    throw SystemError(std::string("frame read failed: ") +
                      std::strerror(errno));
  }
  if (n == 0) return false;
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

void write_frame(int fd, const Frame& frame) {
  const std::string bytes = encode_frame(frame);
  std::size_t written = 0;
  while (written < bytes.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-stream must surface as
    // EPIPE (an exception), not kill the daemon with SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + written, bytes.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, bytes.data() + written, bytes.size() - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SystemError(std::string("frame write failed: ") +
                        std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace mmlpt::daemon
