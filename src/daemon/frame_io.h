// Blocking framed I/O over a connected stream socket descriptor: the
// POSIX half of the protocol, kept apart from the pure codec so the
// codec stays testable on byte buffers alone.
//
// FrameReader separates "decode what is buffered" (next) from "read once
// from the fd" (fill) so callers can poll(2) on the descriptor together
// with other wakeup fds (daemon shutdown pipe, signal self-pipe) and
// only ever issue a read the poll has said will not block.
#ifndef MMLPT_DAEMON_FRAME_IO_H
#define MMLPT_DAEMON_FRAME_IO_H

#include <cstddef>
#include <optional>
#include <string>

#include "daemon/protocol.h"

namespace mmlpt::daemon {

class FrameReader {
 public:
  explicit FrameReader(int fd) : fd_(fd) {}

  /// Decode the next frame already buffered; nullopt when more bytes are
  /// needed (call fill). Throws ParseError on a torn or oversized frame.
  [[nodiscard]] std::optional<Frame> next();

  /// One read(2) into the buffer (blocks only as long as the read does;
  /// poll first to avoid blocking at all). Returns false on EOF. Throws
  /// SystemError on a read error.
  [[nodiscard]] bool fill();

  /// Bytes buffered past the last decoded frame — EOF with this nonzero
  /// means the peer died mid-frame (a torn tail).
  [[nodiscard]] bool has_partial_frame() const noexcept {
    return offset_ < buffer_.size();
  }

 private:
  int fd_;
  std::string buffer_;
  std::size_t offset_ = 0;
};

/// Write one frame, whole (EINTR-safe write loop). Throws SystemError on
/// failure (including the peer having closed the connection).
void write_frame(int fd, const Frame& frame);

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_FRAME_IO_H
