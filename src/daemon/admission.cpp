#include "daemon/admission.h"

#include "common/json.h"
#include "obs/metrics.h"

namespace mmlpt::daemon {

AdmissionController::AdmissionController(AdmissionLimits limits)
    : limits_(limits) {}

AdmissionTicket AdmissionController::try_admit(const std::string& tenant) {
  MutexLock lock(mutex_);
  TenantRecord& record = tenants_[tenant];
  AdmissionTicket ticket;
  if (limits_.max_jobs_total > 0 && active_total_ >= limits_.max_jobs_total) {
    ticket.reason = "daemon job limit reached (max_jobs_total=" +
                    std::to_string(limits_.max_jobs_total) + ")";
  } else if (limits_.max_jobs_per_tenant > 0 &&
             record.active >= limits_.max_jobs_per_tenant) {
    ticket.reason = "tenant job limit reached (max_jobs_per_tenant=" +
                    std::to_string(limits_.max_jobs_per_tenant) + ")";
  } else {
    ticket.admitted = true;
  }
  if (!ticket.admitted) {
    ++record.rejected;
    ++rejected_total_;
    if (rejected_counter_ != nullptr) rejected_counter_->add();
    return ticket;
  }
  ++record.active;
  ++record.admitted;
  ++active_total_;
  ++admitted_total_;
  if (admitted_counter_ != nullptr) admitted_counter_->add();
  if (active_gauge_ != nullptr) active_gauge_->add(1);
  if (limits_.tenant_pps > 0.0 && !record.limiter) {
    record.limiter = std::make_unique<orchestrator::RateLimiter>(
        limits_.tenant_pps, limits_.tenant_burst);
    if (registry_ != nullptr) {
      record.limiter->instrument(*registry_, "tenant:" + tenant);
    }
  }
  ticket.limiter = record.limiter.get();
  return ticket;
}

void AdmissionController::release(const std::string& tenant) {
  MutexLock lock(mutex_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.active <= 0) return;
  --it->second.active;
  --active_total_;
  if (active_gauge_ != nullptr) active_gauge_->add(-1);
}

void AdmissionController::instrument(obs::MetricsRegistry& registry) {
  MutexLock lock(mutex_);
  registry_ = &registry;
  admitted_counter_ =
      registry.counter("mmlpt_admission_jobs_admitted_total",
                       "Jobs admitted by the daemon's admission control");
  rejected_counter_ =
      registry.counter("mmlpt_admission_jobs_rejected_total",
                       "Jobs refused by job caps (fleet-wide or per-tenant)");
  active_gauge_ = registry.gauge("mmlpt_admission_jobs_active",
                                 "Jobs currently running in the daemon");
  // Mirror history accrued before instrumentation so registry and
  // status_json() agree from the first scrape.
  if (admitted_total_ > 0) admitted_counter_->add(admitted_total_);
  if (rejected_total_ > 0) rejected_counter_->add(rejected_total_);
  active_gauge_->set(active_total_);
  for (auto& [name, record] : tenants_) {
    if (record.limiter) {
      record.limiter->instrument(registry, "tenant:" + name);
    }
  }
}

int AdmissionController::jobs_active() const {
  MutexLock lock(mutex_);
  return active_total_;
}

std::uint64_t AdmissionController::jobs_admitted() const {
  MutexLock lock(mutex_);
  return admitted_total_;
}

std::uint64_t AdmissionController::jobs_rejected() const {
  MutexLock lock(mutex_);
  return rejected_total_;
}

std::string AdmissionController::status_json() const {
  JsonWriter w;
  write_status(w);
  return std::move(w).take();
}

void AdmissionController::write_status(JsonWriter& w) const {
  MutexLock lock(mutex_);
  w.begin_object();
  w.key("jobs_active");
  w.value(static_cast<std::int64_t>(active_total_));
  w.key("jobs_admitted");
  w.value(admitted_total_);
  w.key("jobs_rejected");
  w.value(rejected_total_);
  w.key("limits");
  w.begin_object();
  w.key("max_jobs_total");
  w.value(static_cast<std::int64_t>(limits_.max_jobs_total));
  w.key("max_jobs_per_tenant");
  w.value(static_cast<std::int64_t>(limits_.max_jobs_per_tenant));
  w.key("tenant_pps");
  w.value(limits_.tenant_pps);
  w.key("tenant_burst");
  w.value(static_cast<std::int64_t>(limits_.tenant_burst));
  w.end_object();
  w.key("tenants");
  w.begin_array();
  for (const auto& [name, record] : tenants_) {
    w.begin_object();
    w.key("tenant");
    w.value(name);
    w.key("active");
    w.value(static_cast<std::int64_t>(record.active));
    w.key("admitted");
    w.value(record.admitted);
    w.key("rejected");
    w.value(record.rejected);
    w.key("tokens_granted");
    w.value(record.limiter ? record.limiter->granted() : std::uint64_t{0});
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace mmlpt::daemon
