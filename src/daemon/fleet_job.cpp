#include "daemon/fleet_job.h"

#include <cstdio>

#include "core/trace_json.h"
#include "obs/metrics.h"
#include "orchestrator/result_sink.h"
#include "survey/accounting.h"
#include "survey/ip_survey.h"
#include "survey/route_feeder.h"
#include "topology/generator.h"

namespace mmlpt::daemon {

FleetJobCounters run_fleet_job(orchestrator::FleetScheduler& fleet,
                               orchestrator::StopSetSession* stop_set,
                               const FleetJobSpec& spec,
                               const fakeroute::SimConfig& sim,
                               const FleetJobHooks& hooks) {
  const std::size_t count = spec.destination_count();

  // The synthetic world, one route per destination — generated lazily in
  // task order a window ahead of the tracers and released after each
  // ordered merge, exactly the mmlpt_fleet discipline.
  topo::GeneratorConfig generator;
  generator.family = spec.family;
  generator.shared_prefix_hops = spec.shared_prefix;
  topo::SurveyWorld world(generator, spec.distinct, spec.seed);
  survey::RouteFeeder feeder(world, count);

  core::TraceConfig trace_config;
  trace_config.window = spec.window;
  if (stop_set != nullptr) stop_set->configure(trace_config);

  FleetJobCounters counters;
  counters.destinations = count;
  survey::DiamondAccounting accounting(2);

  // Simulated probes never touch a network backend, so the transport
  // family gets its {transport="sim"} series here, at the merge point.
  obs::Counter* sim_probes = nullptr;
  obs::Counter* saved_probes = nullptr;
  obs::Counter* stopped_traces = nullptr;
  if (auto* registry = fleet.metrics()) {
    sim_probes = registry->counter("mmlpt_transport_probes_sent_total",
                                   "Probe packets handed to the transport",
                                   {{"transport", "sim"}});
    saved_probes =
        registry->counter("mmlpt_stop_set_probes_saved_total",
                          "Probes not sent because the stop set already "
                          "knew the hop");
    stopped_traces = registry->counter(
        "mmlpt_stop_set_traces_stopped_total",
        "Traces halted early on a stop-set hit");
  }

  fleet.run_streaming(
      count,
      [&](orchestrator::WorkerContext& context) {
        return survey::trace_route_task(
            feeder.route(context.task_index), spec.algorithm, trace_config,
            sim, survey::ip_trace_seed(spec.seed, context.task_index),
            context.limiter, context.hub, hooks.tenant_limiter, hooks.cancel);
      },
      [&](std::size_t i, core::TraceResult& trace) {
        const std::string label =
            spec.labels.empty() ? feeder.route(i).destination.to_string()
                                : spec.labels[i];
        if (hooks.on_line) {
          hooks.on_line(i, orchestrator::destination_line(
                               i, label, core::stop_set_envelope_fields(trace),
                               "trace", core::trace_to_json(trace)));
        }
        counters.packets += trace.packets;
        if (sim_probes != nullptr) sim_probes->add(trace.packets);
        if (trace.reached_destination) ++counters.reached;
        counters.probes_saved_by_stop_set += trace.probes_saved_by_stop_set;
        if (saved_probes != nullptr) {
          saved_probes->add(trace.probes_saved_by_stop_set);
        }
        if (trace.stop_set_active && trace.stopped_on_hit) {
          ++counters.traces_stopped;
          if (stopped_traces != nullptr) stopped_traces->add();
        }
        accounting.record_all(trace.graph);
        feeder.release(i);
        if (hooks.on_progress) hooks.on_progress(i + 1, counters);
      });

  counters.diamonds = accounting.measured().total;
  counters.distinct_diamonds = accounting.distinct().total;
  return counters;
}

std::string stop_set_summary_text(const orchestrator::SharedStopSet& stop_set,
                                  std::uint64_t probes_saved,
                                  std::uint64_t traces_stopped) {
  char buffer[192];
  std::snprintf(buffer, sizeof buffer,
                "stop-set visible_hops=%zu pending_hops=%zu "
                "probes_saved=%llu stopped=%llu union_digest=%016llx",
                stop_set.visible_hop_count(), stop_set.pending_hop_count(),
                static_cast<unsigned long long>(probes_saved),
                static_cast<unsigned long long>(traces_stopped),
                static_cast<unsigned long long>(stop_set.union_digest()));
  return buffer;
}

}  // namespace mmlpt::daemon
