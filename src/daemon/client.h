// Client side of the mmlptd protocol: connect to the daemon's unix
// socket, negotiate a version, submit fleet jobs and stream the response
// frames. This is the whole of what the thin mmlpt_client tool does —
// the library form exists so the e2e tests can run real clients
// in-process against an in-process Daemon.
//
// A Client is single-threaded: one job (or status query) at a time, on
// the calling thread. Concurrency is the DAEMON's business — run many
// clients, not many threads through one client.
#ifndef MMLPT_DAEMON_CLIENT_H
#define MMLPT_DAEMON_CLIENT_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "daemon/frame_io.h"
#include "daemon/protocol.h"

namespace mmlpt::daemon {

/// Per-job streaming hooks and cancellation knobs.
struct ClientRunOptions {
  /// Each JSONL destination line, in destination order (no newline).
  std::function<void(const std::string& line)> on_line;
  /// Each Progress frame.
  std::function<void(const Progress&)> on_progress;
  /// Send a Cancel frame after this many result lines (0 = never) —
  /// deterministic mid-trace cancellation for tests and the CLI's
  /// --cancel-after-lines flag.
  std::uint64_t cancel_after_lines = 0;
  /// When >= 0: an fd (e.g. ShutdownSignal::fd()) polled next to the
  /// socket; it becoming readable sends a Cancel frame once.
  int cancel_fd = -1;
};

/// What the daemon said about a finished job.
struct ClientJobResult {
  JobOutcome outcome = JobOutcome::kFailed;
  std::string message;
  std::uint64_t lines = 0;
  std::uint64_t packets = 0;
  std::string stop_set_summary;  ///< empty unless the daemon has a stop set
};

class Client {
 public:
  /// Connect and complete the Hello/HelloAck handshake. Throws
  /// SystemError when the socket cannot be reached and Error when the
  /// daemon refuses the handshake.
  Client(const std::string& socket_path, const std::string& tenant);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] std::uint32_t negotiated_version() const noexcept {
    return version_;
  }

  /// Run one job to completion, streaming frames through `options`.
  /// Returns the final JobStatus; throws Error if the daemon sends an
  /// Error frame or the connection dies mid-job.
  [[nodiscard]] ClientJobResult run_job(const FleetJobSpec& spec,
                                        const ClientRunOptions& options = {});

  /// Fetch the daemon's machine-parsable status document.
  [[nodiscard]] std::string server_status();

  /// Fetch the daemon's Prometheus-text metrics exposition.
  [[nodiscard]] std::string metrics();

 private:
  /// Block for the next frame (poll + fill + decode). Returns nullopt
  /// only when `wake_fd` (>= 0) became readable first; throws Error on
  /// EOF. Frames of unknown type are returned too (callers skip them).
  [[nodiscard]] std::optional<Frame> read_frame(int wake_fd);

  int fd_ = -1;
  FrameReader reader_;
  std::uint32_t version_ = 0;
  std::uint64_t next_job_id_ = 1;
};

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_CLIENT_H
