// Admission control and per-tenant rate limiting for mmlptd.
//
// The daemon owns one fleet-wide RateLimiter (inside FleetScheduler); on
// top of it each tenant gets a second token bucket so one greedy client
// cannot starve the rest of the shared probe budget. AdmissionController
// also caps concurrent jobs — fleet-wide and per tenant — and refuses
// (rather than queues) work beyond those caps: the client sees a
// kRejected JobStatus immediately and can back off, which keeps the
// daemon's memory bounded without a hidden unbounded queue.
//
// Counters (admitted/rejected/active, plus per-tenant limiter grants)
// feed the ServerStatus frame so operators can watch enforcement from a
// plain `mmlpt_client --status` call.
#ifndef MMLPT_DAEMON_ADMISSION_H
#define MMLPT_DAEMON_ADMISSION_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "orchestrator/rate_limiter.h"

namespace mmlpt {
class JsonWriter;
}

namespace mmlpt::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace mmlpt::obs

namespace mmlpt::daemon {

/// Caps enforced by the AdmissionController. Zero / negative values mean
/// "unlimited" for the job caps and "no tenant throttle" for the rate.
struct AdmissionLimits {
  int max_jobs_total = 8;       ///< concurrent jobs across all tenants
  int max_jobs_per_tenant = 2;  ///< concurrent jobs per tenant id
  double tenant_pps = 0.0;      ///< per-tenant probe rate (0 = unlimited)
  int tenant_burst = 64;        ///< per-tenant token-bucket burst
};

/// Outcome of an admission attempt. On success `limiter` is the tenant's
/// token bucket (nullptr when tenant throttling is disabled) and the
/// caller must balance the admit with release(tenant).
struct AdmissionTicket {
  bool admitted = false;
  std::string reason;  ///< set when refused, machine-readable-ish
  orchestrator::RateLimiter* limiter = nullptr;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Try to admit one job for `tenant`. Never blocks.
  [[nodiscard]] AdmissionTicket try_admit(const std::string& tenant);

  /// Balance a successful try_admit once the job finishes (however it
  /// finishes — completed, canceled, or failed).
  void release(const std::string& tenant);

  [[nodiscard]] const AdmissionLimits& limits() const noexcept {
    return limits_;
  }
  [[nodiscard]] int jobs_active() const;
  [[nodiscard]] std::uint64_t jobs_admitted() const;
  [[nodiscard]] std::uint64_t jobs_rejected() const;

  /// Serialise the whole admission state as a JSON object (limits,
  /// totals, per-tenant counters including limiter grants).
  [[nodiscard]] std::string status_json() const;

  /// Same document, written into a caller-positioned JsonWriter (the
  /// writer must be where a value is legal — e.g. right after a key).
  void write_status(JsonWriter& w) const;

  /// Register admission counters (admitted/rejected totals, active
  /// gauge) in `registry` and instrument every tenant limiter — existing
  /// and future — with a tenant-labeled scope. Pre-instrumentation
  /// totals are mirrored into the registry so the two views agree.
  void instrument(obs::MetricsRegistry& registry);

 private:
  struct TenantRecord {
    int active = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    /// Lazily created, then persistent for the tenant's lifetime so the
    /// bucket level survives between jobs (a burst of back-to-back jobs
    /// from one tenant shares one budget).
    std::unique_ptr<orchestrator::RateLimiter> limiter;
  };

  AdmissionLimits limits_;
  mutable Mutex mutex_;
  /// Ordered so status JSON is stable. Lock order: mutex_ may be held
  /// while taking a tenant limiter's internal mutex (write_status reads
  /// granted()); never the reverse.
  std::map<std::string, TenantRecord> tenants_ MMLPT_GUARDED_BY(mutex_);
  int active_total_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t admitted_total_ MMLPT_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_total_ MMLPT_GUARDED_BY(mutex_) = 0;

  /// Null until instrument(); the mutex above guards these too.
  obs::MetricsRegistry* registry_ MMLPT_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* admitted_counter_ MMLPT_GUARDED_BY(mutex_) = nullptr;
  obs::Counter* rejected_counter_ MMLPT_GUARDED_BY(mutex_) = nullptr;
  obs::Gauge* active_gauge_ MMLPT_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_ADMISSION_H
