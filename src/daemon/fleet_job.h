// One fleet trace job, runnable against a LONG-LIVED FleetScheduler: the
// shared core of the mmlpt_fleet CLI and the mmlptd daemon. Both feed a
// FleetJobSpec through run_fleet_job(), so a job served over the daemon
// socket produces byte-identical JSONL to a standalone `mmlpt_fleet
// --jobs 1` run with the same spec — the per-destination lines are built
// here, once, and only the delivery differs (ResultSink vs ResultLine
// frames).
//
// The scheduler is a parameter, not a local: the daemon constructs ONE
// FleetScheduler (owning the fleet-wide RateLimiter and, with
// --merge-windows, the FleetTransportHub) and runs every tenant's jobs
// through it, concurrently — FleetScheduler::run is re-entrant (see
// fleet.h), per-job determinism comes from the spec's seed alone, and
// the shared limiter/hub make "packets per second" mean DAEMON packets
// across all tenants.
#ifndef MMLPT_DAEMON_FLEET_JOB_H
#define MMLPT_DAEMON_FLEET_JOB_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/validation.h"
#include "fakeroute/simulator.h"
#include "net/ip_address.h"
#include "orchestrator/fleet.h"
#include "orchestrator/stop_set.h"
#include "probe/cancel.h"

namespace mmlpt::daemon {

/// Everything that determines a fleet job's output bytes. Mirrors the
/// mmlpt_fleet CLI flags; carried verbatim in JobRequest frames.
struct FleetJobSpec {
  /// Per-destination labels (the --destinations list). Empty = `routes`
  /// synthetic destinations labelled by their generated addresses.
  std::vector<std::string> labels;
  std::uint64_t routes = 64;  ///< destination count when labels is empty
  core::Algorithm algorithm = core::Algorithm::kMdaLite;
  net::Family family = net::Family::kIpv4;
  std::uint64_t seed = 1;
  std::uint64_t distinct = 100;  ///< distinct diamond templates
  int shared_prefix = 0;         ///< common leading routers per route
  int window = 1;                ///< per-trace probe window

  /// Destination count this spec resolves to.
  [[nodiscard]] std::size_t destination_count() const noexcept {
    return labels.empty() ? static_cast<std::size_t>(routes) : labels.size();
  }

  friend bool operator==(const FleetJobSpec&, const FleetJobSpec&) = default;
};

/// Aggregates mirroring the mmlpt_fleet stderr summary.
struct FleetJobCounters {
  std::size_t destinations = 0;
  std::uint64_t packets = 0;
  std::uint64_t reached = 0;
  std::uint64_t diamonds = 0;
  std::uint64_t distinct_diamonds = 0;
  std::uint64_t probes_saved_by_stop_set = 0;
  std::uint64_t traces_stopped = 0;
};

/// Per-job hooks and decorations around the shared scheduler.
struct FleetJobHooks {
  /// Ordered delivery of each JSONL destination line (no trailing
  /// newline): fires in strict index order, serialized, while the fleet
  /// runs — exactly FleetScheduler's on_result contract.
  std::function<void(std::size_t index, std::string line)> on_line;
  /// Fires after each ordered merge with the running aggregates
  /// (`merged` destinations done so far) — the daemon turns these into
  /// Progress frames. Same serialization as on_line.
  std::function<void(std::size_t merged, const FleetJobCounters& so_far)>
      on_progress;
  /// Per-tenant token bucket layered on the scheduler's fleet-wide
  /// limiter (daemon admission control); nullptr = no tenant cap.
  orchestrator::RateLimiter* tenant_limiter = nullptr;
  /// Cooperative cancellation: when it fires, in-flight tickets resolve
  /// through TransportQueue::cancel and run_fleet_job throws
  /// probe::CanceledError. nullptr = not cancelable.
  probe::CancelToken* cancel = nullptr;
};

/// Run one job through `fleet`. `stop_set` may be null (feature off);
/// when active it seeds every trace's Doubletree config exactly like the
/// CLIs do. Throws probe::CanceledError when hooks.cancel fires —
/// counters up to that point are lost by design (a canceled job has no
/// summary).
[[nodiscard]] FleetJobCounters run_fleet_job(
    orchestrator::FleetScheduler& fleet,
    orchestrator::StopSetSession* stop_set, const FleetJobSpec& spec,
    const fakeroute::SimConfig& sim, const FleetJobHooks& hooks);

/// The machine-parsable stop-set summary text ("stop-set
/// visible_hops=... pending_hops=... probes_saved=... stopped=...
/// union_digest=%016llx") shared by the mmlpt_fleet stderr line and the
/// daemon's StopSetSummary frame — the CI warm-cache gate greps these
/// key=value pairs, so there is exactly one formatter.
[[nodiscard]] std::string stop_set_summary_text(
    const orchestrator::SharedStopSet& stop_set, std::uint64_t probes_saved,
    std::uint64_t traces_stopped);

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_FLEET_JOB_H
