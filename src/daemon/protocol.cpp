#include "daemon/protocol.h"

#include "common/assert.h"
#include "store/topology_store.h"

namespace mmlpt::daemon {
namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

[[nodiscard]] std::uint32_t get_u32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

[[nodiscard]] PayloadReader reader_for(const Frame& frame, FrameType expect) {
  if (frame.type != static_cast<std::uint8_t>(expect)) {
    throw ParseError("frame type mismatch: got " +
                     std::to_string(frame.type) + ", want " +
                     std::to_string(static_cast<int>(expect)));
  }
  return PayloadReader(frame.payload);
}

}  // namespace

bool is_known_frame_type(std::uint8_t type) noexcept {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kJobRequest:
    case FrameType::kCancel:
    case FrameType::kStatusRequest:
    case FrameType::kMetricsRequest:
    case FrameType::kHelloAck:
    case FrameType::kProgress:
    case FrameType::kResultLine:
    case FrameType::kStopSetSummary:
    case FrameType::kJobStatus:
    case FrameType::kError:
    case FrameType::kServerStatus:
    case FrameType::kMetrics:
      return true;
  }
  return false;
}

std::string encode_frame(const Frame& frame) {
  MMLPT_EXPECTS(frame.payload.size() <= kMaxFramePayload);
  std::string out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, store::crc32(frame.payload));
  out += frame.payload;
  return out;
}

std::optional<Frame> decode_frame(std::string_view buffer,
                                  std::size_t& offset) {
  MMLPT_EXPECTS(offset <= buffer.size());
  const std::size_t available = buffer.size() - offset;
  if (available < kFrameHeaderSize) return std::nullopt;
  const std::uint32_t length = get_u32(buffer.data() + offset);
  // Reject before waiting for the payload: a corrupt length must not
  // make the reader buffer (or "need") gigabytes.
  if (length > kMaxFramePayload) {
    throw ParseError("frame payload length " + std::to_string(length) +
                     " exceeds the " + std::to_string(kMaxFramePayload) +
                     "-byte cap");
  }
  if (available < kFrameHeaderSize + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<std::uint8_t>(buffer[offset + 4]);
  const std::uint32_t crc = get_u32(buffer.data() + offset + 5);
  frame.payload.assign(buffer.data() + offset + kFrameHeaderSize, length);
  if (store::crc32(frame.payload) != crc) {
    throw ParseError("frame CRC mismatch (torn or corrupted stream)");
  }
  offset += kFrameHeaderSize + length;
  return frame;
}

// ---- payload cursors ---------------------------------------------------

void PayloadWriter::u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

void PayloadWriter::u32(std::uint32_t v) { put_u32(out_, v); }

void PayloadWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::string(std::string_view v) {
  MMLPT_EXPECTS(v.size() <= kMaxFramePayload);
  u32(static_cast<std::uint32_t>(v.size()));
  out_ += v;
}

std::uint8_t PayloadReader::u8() {
  if (pos_ + 1 > data_.size()) throw ParseError("payload truncated (u8)");
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t PayloadReader::u32() {
  if (pos_ + 4 > data_.size()) throw ParseError("payload truncated (u32)");
  const std::uint32_t v = get_u32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::string PayloadReader::string() {
  const std::uint32_t length = u32();
  if (length > kMaxFramePayload || pos_ + length > data_.size()) {
    throw ParseError("payload truncated (string of " +
                     std::to_string(length) + " bytes)");
  }
  std::string v(data_.substr(pos_, length));
  pos_ += length;
  return v;
}

void PayloadReader::expect_end() const {
  if (pos_ != data_.size()) {
    throw ParseError("payload has " + std::to_string(data_.size() - pos_) +
                     " trailing bytes");
  }
}

// ---- frame payloads ----------------------------------------------------

std::optional<std::uint32_t> negotiate_version(const Hello& hello) noexcept {
  if (hello.min_version > hello.max_version) return std::nullopt;
  if (hello.min_version > kProtocolVersion ||
      hello.max_version < kProtocolVersion) {
    return std::nullopt;
  }
  return kProtocolVersion;
}

Frame encode_hello(const Hello& hello) {
  PayloadWriter w;
  w.u32(kProtocolMagic);
  w.u32(hello.min_version);
  w.u32(hello.max_version);
  w.string(hello.tenant);
  return {static_cast<std::uint8_t>(FrameType::kHello), std::move(w).take()};
}

Hello decode_hello(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kHello);
  if (r.u32() != kProtocolMagic) {
    throw ParseError("hello magic mismatch: not an mmlptd client");
  }
  Hello hello;
  hello.min_version = r.u32();
  hello.max_version = r.u32();
  hello.tenant = r.string();
  r.expect_end();
  return hello;
}

Frame encode_hello_ack(const HelloAck& ack) {
  PayloadWriter w;
  w.u32(ack.version);
  return {static_cast<std::uint8_t>(FrameType::kHelloAck),
          std::move(w).take()};
}

HelloAck decode_hello_ack(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kHelloAck);
  HelloAck ack;
  ack.version = r.u32();
  r.expect_end();
  return ack;
}

Frame encode_job_request(const JobRequest& request) {
  PayloadWriter w;
  w.u64(request.job_id);
  w.u8(static_cast<std::uint8_t>(request.spec.family));
  w.u8(static_cast<std::uint8_t>(request.spec.algorithm));
  w.u64(request.spec.routes);
  w.u64(request.spec.seed);
  w.u64(request.spec.distinct);
  w.u32(static_cast<std::uint32_t>(request.spec.shared_prefix));
  w.u32(static_cast<std::uint32_t>(request.spec.window));
  w.u32(static_cast<std::uint32_t>(request.spec.labels.size()));
  for (const auto& label : request.spec.labels) w.string(label);
  return {static_cast<std::uint8_t>(FrameType::kJobRequest),
          std::move(w).take()};
}

JobRequest decode_job_request(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kJobRequest);
  JobRequest request;
  request.job_id = r.u64();
  const auto family = r.u8();
  if (family != 4 && family != 6) {
    throw ParseError("job request: bad family tag " + std::to_string(family));
  }
  request.spec.family = static_cast<net::Family>(family);
  const auto algorithm = r.u8();
  if (algorithm > static_cast<std::uint8_t>(core::Algorithm::kSingleFlow)) {
    throw ParseError("job request: bad algorithm tag " +
                     std::to_string(algorithm));
  }
  request.spec.algorithm = static_cast<core::Algorithm>(algorithm);
  request.spec.routes = r.u64();
  request.spec.seed = r.u64();
  request.spec.distinct = r.u64();
  request.spec.shared_prefix = static_cast<int>(r.u32());
  request.spec.window = static_cast<int>(r.u32());
  if (request.spec.shared_prefix < 0 || request.spec.window < 1) {
    throw ParseError("job request: shared_prefix/window out of range");
  }
  const std::uint32_t label_count = r.u32();
  // Each label costs at least its 4-byte length prefix, so a count the
  // remaining payload cannot hold is torn — reject it BEFORE reserve()
  // turns a corrupt u32 into a multi-gigabyte allocation.
  if (label_count > (frame.payload.size() - r.consumed()) / 4) {
    throw ParseError("job request: label count " +
                     std::to_string(label_count) +
                     " exceeds the payload");
  }
  request.spec.labels.reserve(label_count);
  for (std::uint32_t i = 0; i < label_count; ++i) {
    request.spec.labels.push_back(r.string());
  }
  r.expect_end();
  return request;
}

Frame encode_cancel(const CancelRequest& cancel) {
  PayloadWriter w;
  w.u64(cancel.job_id);
  return {static_cast<std::uint8_t>(FrameType::kCancel), std::move(w).take()};
}

CancelRequest decode_cancel(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kCancel);
  CancelRequest cancel;
  cancel.job_id = r.u64();
  r.expect_end();
  return cancel;
}

Frame encode_status_request() {
  return {static_cast<std::uint8_t>(FrameType::kStatusRequest), ""};
}

Frame encode_progress(const Progress& progress) {
  PayloadWriter w;
  w.u64(progress.job_id);
  w.u64(progress.completed);
  w.u64(progress.total);
  w.u64(progress.packets);
  return {static_cast<std::uint8_t>(FrameType::kProgress),
          std::move(w).take()};
}

Progress decode_progress(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kProgress);
  Progress progress;
  progress.job_id = r.u64();
  progress.completed = r.u64();
  progress.total = r.u64();
  progress.packets = r.u64();
  r.expect_end();
  return progress;
}

Frame encode_result_line(const ResultLine& line) {
  PayloadWriter w;
  w.u64(line.job_id);
  w.string(line.line);
  return {static_cast<std::uint8_t>(FrameType::kResultLine),
          std::move(w).take()};
}

ResultLine decode_result_line(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kResultLine);
  ResultLine line;
  line.job_id = r.u64();
  line.line = r.string();
  r.expect_end();
  return line;
}

Frame encode_stop_set_summary(const StopSetSummary& summary) {
  PayloadWriter w;
  w.u64(summary.job_id);
  w.string(summary.text);
  return {static_cast<std::uint8_t>(FrameType::kStopSetSummary),
          std::move(w).take()};
}

StopSetSummary decode_stop_set_summary(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kStopSetSummary);
  StopSetSummary summary;
  summary.job_id = r.u64();
  summary.text = r.string();
  r.expect_end();
  return summary;
}

Frame encode_job_status(const JobStatus& status) {
  PayloadWriter w;
  w.u64(status.job_id);
  w.u8(static_cast<std::uint8_t>(status.outcome));
  w.string(status.message);
  w.u64(status.lines);
  w.u64(status.packets);
  return {static_cast<std::uint8_t>(FrameType::kJobStatus),
          std::move(w).take()};
}

JobStatus decode_job_status(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kJobStatus);
  JobStatus status;
  status.job_id = r.u64();
  const auto outcome = r.u8();
  if (outcome > static_cast<std::uint8_t>(JobOutcome::kFailed)) {
    throw ParseError("job status: bad outcome tag " +
                     std::to_string(outcome));
  }
  status.outcome = static_cast<JobOutcome>(outcome);
  status.message = r.string();
  status.lines = r.u64();
  status.packets = r.u64();
  r.expect_end();
  return status;
}

Frame encode_error(const ErrorFrame& error) {
  PayloadWriter w;
  w.string(error.message);
  return {static_cast<std::uint8_t>(FrameType::kError), std::move(w).take()};
}

ErrorFrame decode_error(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kError);
  ErrorFrame error;
  error.message = r.string();
  r.expect_end();
  return error;
}

Frame encode_server_status(const ServerStatus& status) {
  PayloadWriter w;
  w.string(status.json);
  return {static_cast<std::uint8_t>(FrameType::kServerStatus),
          std::move(w).take()};
}

ServerStatus decode_server_status(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kServerStatus);
  ServerStatus status;
  status.json = r.string();
  r.expect_end();
  return status;
}

Frame encode_metrics_request() {
  return {static_cast<std::uint8_t>(FrameType::kMetricsRequest), ""};
}

Frame encode_metrics(const MetricsText& metrics) {
  PayloadWriter w;
  w.string(metrics.text);
  return {static_cast<std::uint8_t>(FrameType::kMetrics),
          std::move(w).take()};
}

MetricsText decode_metrics(const Frame& frame) {
  auto r = reader_for(frame, FrameType::kMetrics);
  MetricsText metrics;
  metrics.text = r.string();
  r.expect_end();
  return metrics;
}

}  // namespace mmlpt::daemon
