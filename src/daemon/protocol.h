// The mmlptd wire protocol: length-prefixed, CRC-checked, versioned
// frames over a unix stream socket. One privileged daemon owns the fleet
// scheduler, transport hub and stop set; many cheap unprivileged clients
// connect, negotiate a protocol version, submit trace jobs and stream
// back progress, JSONL result lines and a final status.
//
// Frame layout (every integer little-endian):
//
//   u32 payload_len   u8 type   u32 crc32(payload)   payload bytes
//
// Properties the tests gate:
//   * a truncated frame decodes as "need more bytes", never as garbage;
//   * a torn frame (bad CRC) and an oversized length are ParseErrors —
//     the connection is poisoned, not the process;
//   * unknown frame TYPES decode fine and are skipped by receivers, so
//     the protocol can grow frame kinds without a version bump;
//   * version negotiation happens once, in the Hello/HelloAck handshake,
//     and a client outside the daemon's supported range is refused with
//     an Error frame before any job state exists.
//
// The payload of each frame kind is encoded with the PayloadWriter /
// PayloadReader cursor helpers below; every decode_* rejects trailing
// bytes, so frames cannot smuggle data past the schema.
#ifndef MMLPT_DAEMON_PROTOCOL_H
#define MMLPT_DAEMON_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"
#include "daemon/fleet_job.h"

namespace mmlpt::daemon {

/// Handshake magic ("MLPD" little-endian) — the first four payload bytes
/// of a Hello, so a daemon can refuse a stray non-mmlpt client cleanly.
inline constexpr std::uint32_t kProtocolMagic = 0x44504C4DU;
/// The one protocol version this build speaks.
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frame payloads larger than this are rejected without buffering — a
/// corrupt length prefix must not make the daemon allocate gigabytes.
inline constexpr std::size_t kMaxFramePayload = 4u << 20;
/// u32 length + u8 type + u32 crc.
inline constexpr std::size_t kFrameHeaderSize = 9;

enum class FrameType : std::uint8_t {
  // client -> daemon
  kHello = 1,
  kJobRequest = 2,
  kCancel = 3,
  kStatusRequest = 4,
  kMetricsRequest = 5,
  // daemon -> client
  kHelloAck = 16,
  kProgress = 17,
  kResultLine = 18,
  kStopSetSummary = 19,
  kJobStatus = 20,
  kError = 21,
  kServerStatus = 22,
  kMetrics = 23,
};

[[nodiscard]] bool is_known_frame_type(std::uint8_t type) noexcept;

struct Frame {
  std::uint8_t type = 0;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serialize one frame (header + payload).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Decode the frame starting at buffer[offset]. Returns nullopt when the
/// buffer holds only a prefix of the frame (read more and retry);
/// advances `offset` past the frame on success. Throws ParseError on an
/// oversized length or a CRC mismatch — the stream is torn and cannot be
/// resynchronized.
[[nodiscard]] std::optional<Frame> decode_frame(std::string_view buffer,
                                                std::size_t& offset);

// ---- payload cursors ---------------------------------------------------

/// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// u32 length prefix + raw bytes.
  void string(std::string_view v);

  [[nodiscard]] std::string take() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian payload cursor; every read past the end
/// is a ParseError.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string string();
  /// Throws ParseError unless the whole payload was consumed.
  void expect_end() const;

  /// Bytes read so far (decoders use the remainder to bound counts
  /// before pre-allocating for them).
  [[nodiscard]] std::size_t consumed() const noexcept { return pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- frame payloads ----------------------------------------------------

struct Hello {
  std::uint32_t min_version = kProtocolVersion;
  std::uint32_t max_version = kProtocolVersion;
  std::string tenant;  ///< rate-limit / admission accounting identity
};

struct HelloAck {
  std::uint32_t version = kProtocolVersion;
};

/// The version the daemon will speak with a client advertising
/// [min, max], or nullopt when the ranges do not meet (refusal).
[[nodiscard]] std::optional<std::uint32_t> negotiate_version(
    const Hello& hello) noexcept;

struct JobRequest {
  std::uint64_t job_id = 0;  ///< client-chosen; echoed on every response
  FleetJobSpec spec;
};

struct CancelRequest {
  std::uint64_t job_id = 0;
};

struct Progress {
  std::uint64_t job_id = 0;
  std::uint64_t completed = 0;  ///< destinations merged so far
  std::uint64_t total = 0;
  std::uint64_t packets = 0;
};

struct ResultLine {
  std::uint64_t job_id = 0;
  std::string line;  ///< one JSONL destination line, no trailing newline
};

struct StopSetSummary {
  std::uint64_t job_id = 0;
  /// The machine-parsable key=value text mmlpt_fleet prints to stderr.
  std::string text;
};

enum class JobOutcome : std::uint8_t {
  kOk = 0,
  kRejected = 1,  ///< admission control refused the job
  kCanceled = 2,
  kFailed = 3,
};

struct JobStatus {
  std::uint64_t job_id = 0;
  JobOutcome outcome = JobOutcome::kOk;
  std::string message;  ///< reject reason / error text; empty on success
  std::uint64_t lines = 0;
  std::uint64_t packets = 0;
};

struct ErrorFrame {
  std::string message;
};

struct ServerStatus {
  std::string json;  ///< machine-parsable daemon status document
};

struct MetricsText {
  std::string text;  ///< Prometheus text exposition of the daemon registry
};

[[nodiscard]] Frame encode_hello(const Hello& hello);
[[nodiscard]] Hello decode_hello(const Frame& frame);
[[nodiscard]] Frame encode_hello_ack(const HelloAck& ack);
[[nodiscard]] HelloAck decode_hello_ack(const Frame& frame);
[[nodiscard]] Frame encode_job_request(const JobRequest& request);
[[nodiscard]] JobRequest decode_job_request(const Frame& frame);
[[nodiscard]] Frame encode_cancel(const CancelRequest& cancel);
[[nodiscard]] CancelRequest decode_cancel(const Frame& frame);
[[nodiscard]] Frame encode_status_request();
[[nodiscard]] Frame encode_progress(const Progress& progress);
[[nodiscard]] Progress decode_progress(const Frame& frame);
[[nodiscard]] Frame encode_result_line(const ResultLine& line);
[[nodiscard]] ResultLine decode_result_line(const Frame& frame);
[[nodiscard]] Frame encode_stop_set_summary(const StopSetSummary& summary);
[[nodiscard]] StopSetSummary decode_stop_set_summary(const Frame& frame);
[[nodiscard]] Frame encode_job_status(const JobStatus& status);
[[nodiscard]] JobStatus decode_job_status(const Frame& frame);
[[nodiscard]] Frame encode_error(const ErrorFrame& error);
[[nodiscard]] ErrorFrame decode_error(const Frame& frame);
[[nodiscard]] Frame encode_server_status(const ServerStatus& status);
[[nodiscard]] ServerStatus decode_server_status(const Frame& frame);
[[nodiscard]] Frame encode_metrics_request();
[[nodiscard]] Frame encode_metrics(const MetricsText& metrics);
[[nodiscard]] MetricsText decode_metrics(const Frame& frame);

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_PROTOCOL_H
