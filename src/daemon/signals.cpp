#include "daemon/signals.h"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.h"

namespace mmlpt::daemon {
namespace {

// Handler-visible state. The token pointer is written only from the
// main thread (link) before signals are expected; the handler reads it.
volatile std::sig_atomic_t g_signal = 0;
std::atomic<probe::CancelToken*> g_token{nullptr};
int g_pipe_read = -1;
int g_pipe_write = -1;

extern "C" void handle_shutdown_signal(int sig) {
  if (g_signal != 0) {
    // Second delivery: the drain wedged or the user is insistent.
    _exit(128 + sig);
  }
  g_signal = sig;
  // relaxed: the pointer is published by link() before signals are
  // expected (program order on the main thread); only atomicity of the
  // read matters inside the handler.
  if (auto* token = g_token.load(std::memory_order_relaxed)) {
    token->request();  // relaxed atomic store: async-signal-safe
  }
  // One byte makes the read end readable forever (never drained). A full
  // pipe would mean it is already readable, so a failed write is fine.
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(g_pipe_write, &byte, 1);
}

}  // namespace

ShutdownSignal& ShutdownSignal::install() {
  static ShutdownSignal instance = [] {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw SystemError("cannot create shutdown self-pipe");
    }
    g_pipe_read = fds[0];
    g_pipe_write = fds[1];
    ::fcntl(g_pipe_write, F_SETFL, O_NONBLOCK);
    ::fcntl(g_pipe_read, F_SETFD, FD_CLOEXEC);
    ::fcntl(g_pipe_write, F_SETFD, FD_CLOEXEC);
    struct sigaction action {};
    action.sa_handler = handle_shutdown_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocked reads must wake
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    return ShutdownSignal();
  }();
  return instance;
}

bool ShutdownSignal::requested() const noexcept { return g_signal != 0; }

int ShutdownSignal::signal() const noexcept {
  return static_cast<int>(g_signal);
}

int ShutdownSignal::exit_code() const noexcept {
  return g_signal == 0 ? 0 : 128 + static_cast<int>(g_signal);
}

int ShutdownSignal::fd() const noexcept { return g_pipe_read; }

void ShutdownSignal::link(probe::CancelToken* token) noexcept {
  // relaxed: called before signals are expected; the handler needs only
  // an atomic read of the pointer, and the token object itself is
  // immortal for the link's duration.
  g_token.store(token, std::memory_order_relaxed);
}

}  // namespace mmlpt::daemon
