// mmlptd: the measurement daemon. ONE privileged process owns the whole
// probing stack — FleetScheduler (fleet-wide RateLimiter +
// FleetTransportHub) and StopSetSession — and serves trace jobs to many
// cheap unprivileged clients over a unix stream socket speaking the
// framed protocol in protocol.h.
//
// Concurrency shape:
//   * one accept thread polls { listen fd, shutdown pipe };
//   * one thread per connection polls { conn fd, shutdown pipe } and
//     decodes request frames;
//   * each admitted job runs on its own thread through the SHARED
//     scheduler (FleetScheduler::run is re-entrant; per-job determinism
//     comes from the job spec's seed alone), streaming ResultLine /
//     Progress frames back under a per-connection write mutex;
//   * jobs submitted while one is running queue per connection, bounded
//     — overflow is refused with a kRejected status, never buffered
//     unboundedly.
//
// Cancellation: a kCancel frame (or the client disconnecting) fires the
// job's probe::CancelToken; in-flight tickets resolve through
// TransportQueue::cancel and the job unwinds as probe::CanceledError —
// other tenants' jobs never notice.
//
// Shutdown (stop()): close the listener, wake every connection thread
// through the shutdown pipe, SHUT_RDWR idle connections, let RUNNING
// jobs finish (drain, not abort), join everything, flush the
// StopSetSession, unlink the socket.
#ifndef MMLPT_DAEMON_SERVER_H
#define MMLPT_DAEMON_SERVER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "daemon/admission.h"
#include "daemon/fleet_job.h"
#include "daemon/protocol.h"
#include "fakeroute/simulator.h"
#include "obs/metrics.h"
#include "orchestrator/fleet.h"
#include "orchestrator/stop_set.h"
#include "probe/transport_select.h"

namespace mmlpt::daemon {

struct DaemonConfig {
  std::string socket_path;
  orchestrator::FleetConfig fleet;  ///< shared scheduler (jobs/pps/burst/hub)
  AdmissionLimits admission;
  /// Stop-set store shared across ALL clients ("" = feature off).
  std::string topology_cache;
  bool consult_stop_set = true;
  fakeroute::SimConfig sim;
  /// Jobs a connection may have queued behind its running one.
  int max_queued_jobs_per_connection = 4;
  /// Real-network backend choice, echoed (resolved) in status_json so
  /// operators can tell which transport a daemon would probe with.
  probe::TransportKind transport = probe::TransportKind::kAuto;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind + listen on config.socket_path and spawn the accept thread.
  /// Throws SystemError when the socket cannot be set up.
  void start();

  /// Drain-and-exit: see the file comment. Idempotent; also runs from
  /// the destructor if the caller forgot.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    // relaxed: advisory liveness flag; start()/stop() synchronize with
    // the worker threads through join and the shutdown pipe, not here.
    return running_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const DaemonConfig& config() const noexcept { return config_; }
  [[nodiscard]] AdmissionController& admission() noexcept { return admission_; }
  /// The daemon status document sent in ServerStatus frames.
  [[nodiscard]] std::string status_json() const;
  /// The process-wide registry behind Metrics frames: every subsystem —
  /// transport backends, hub, stop set, admission — registers here.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  class Connection;

  void accept_loop();
  void reap_finished_connections() MMLPT_REQUIRES(connections_mutex_);

  DaemonConfig config_;
  /// Declared before fleet_: the scheduler (and everything it builds)
  /// holds instrument pointers into this registry.
  obs::MetricsRegistry metrics_;
  orchestrator::FleetScheduler fleet_;
  orchestrator::StopSetSession stop_set_session_;
  AdmissionController admission_;

  // Job-outcome counters (one family, labeled by outcome), bumped by
  // connections as their jobs finish.
  obs::Counter* jobs_completed_ = nullptr;
  obs::Counter* jobs_canceled_ = nullptr;
  obs::Counter* jobs_failed_ = nullptr;
  obs::Counter* jobs_refused_ = nullptr;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int shutdown_pipe_[2] = {-1, -1};  ///< [read, write]; never drained
  std::thread accept_thread_;

  mutable Mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_
      MMLPT_GUARDED_BY(connections_mutex_);
  std::uint64_t connections_accepted_ MMLPT_GUARDED_BY(connections_mutex_) =
      0;
};

}  // namespace mmlpt::daemon

#endif  // MMLPT_DAEMON_SERVER_H
