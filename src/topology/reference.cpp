#include "topology/reference.h"

#include <vector>

#include "common/assert.h"

namespace mmlpt::topo {

namespace {

/// Build a layered graph from hop widths; wiring is installed by `connect`.
class Builder {
 public:
  Builder(std::uint8_t block, const std::vector<int>& widths) : block_(block) {
    for (std::size_t h = 0; h < widths.size(); ++h) {
      graph_.add_hop();
      std::vector<VertexId> hop_vertices;
      for (int i = 0; i < widths[h]; ++i) {
        hop_vertices.push_back(graph_.add_vertex(
            static_cast<std::uint16_t>(h),
            reference_addr(block_, static_cast<std::uint8_t>(h),
                           static_cast<std::uint8_t>(i))));
      }
      ids_.push_back(std::move(hop_vertices));
    }
  }

  /// Edge by (hop, index) coordinates.
  void edge(std::size_t hop, int from_index, int to_index) {
    graph_.add_edge(ids_[hop][static_cast<std::size_t>(from_index)],
                    ids_[hop + 1][static_cast<std::size_t>(to_index)]);
  }

  /// Connect every vertex at `hop` to every vertex at hop+1.
  void full(std::size_t hop) {
    for (std::size_t i = 0; i < ids_[hop].size(); ++i) {
      for (std::size_t j = 0; j < ids_[hop + 1].size(); ++j) {
        edge(hop, static_cast<int>(i), static_cast<int>(j));
      }
    }
  }

  /// Out-degree-1 surjection from a wider (or equal) hop down to the next:
  /// vertex i -> i * b / a. Unmeshed by construction.
  void contract(std::size_t hop) {
    const auto a = ids_[hop].size();
    const auto b = ids_[hop + 1].size();
    MMLPT_EXPECTS(a >= b);
    for (std::size_t i = 0; i < a; ++i) {
      edge(hop, static_cast<int>(i), static_cast<int>(i * b / a));
    }
  }

  /// Even expansion from `a` vertices to `a*k`: vertex i -> [i*k, (i+1)*k).
  /// Uniform and unmeshed.
  void expand(std::size_t hop) {
    const auto a = ids_[hop].size();
    const auto b = ids_[hop + 1].size();
    MMLPT_EXPECTS(b % a == 0);
    const auto k = b / a;
    for (std::size_t i = 0; i < a; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        edge(hop, static_cast<int>(i), static_cast<int>(i * k + j));
      }
    }
  }

  /// Equal-width ring: vertex i -> {i, i+1 mod n}. Meshed, uniform.
  void ring(std::size_t hop) {
    const auto a = ids_[hop].size();
    MMLPT_EXPECTS(a == ids_[hop + 1].size());
    for (std::size_t i = 0; i < a; ++i) {
      edge(hop, static_cast<int>(i), static_cast<int>(i));
      edge(hop, static_cast<int>(i), static_cast<int>((i + 1) % a));
    }
  }

  [[nodiscard]] MultipathGraph take() && {
    graph_.validate();
    return std::move(graph_);
  }

 private:
  std::uint8_t block_;
  MultipathGraph graph_;
  std::vector<std::vector<VertexId>> ids_;
};

}  // namespace

net::Ipv4Address reference_addr(std::uint8_t block, std::uint8_t hop,
                                std::uint8_t index) {
  return net::Ipv4Address(10, block, hop, index);
}

MultipathGraph simplest_diamond() {
  Builder b(1, {1, 2, 1});
  b.full(0);
  b.full(1);
  return std::move(b).take();
}

MultipathGraph fig1_unmeshed() {
  Builder b(2, {1, 4, 2, 1});
  b.full(0);
  b.contract(1);  // two hop-2 vertices per hop-3 vertex, out-degree 1
  b.full(2);
  return std::move(b).take();
}

MultipathGraph fig1_meshed() {
  Builder b(3, {1, 4, 2, 1});
  b.full(0);
  b.full(1);  // every hop-2 vertex reaches both hop-3 vertices
  b.full(2);
  return std::move(b).take();
}

MultipathGraph max_length_2_diamond() {
  Builder b(4, {1, 28, 1});
  b.full(0);
  b.full(1);
  return std::move(b).take();
}

MultipathGraph symmetric_diamond() {
  Builder b(5, {1, 5, 10, 5, 1});
  b.full(0);
  b.expand(1);    // 5 -> 10, out-degree 2, in-degree 1
  b.contract(2);  // 10 -> 5, out-degree 1, in-degree 2
  b.full(3);
  return std::move(b).take();
}

MultipathGraph asymmetric_diamond() {
  // Nine multi-vertex hops; the 2 -> 19 expansion is lopsided: one vertex
  // keeps a single successor while the other fans out to 18, giving a
  // width asymmetry of 17. All out-degree-1 contractions afterwards.
  Builder b(6, {1, 2, 19, 16, 12, 8, 6, 4, 3, 2, 1});
  b.full(0);
  b.edge(1, 0, 0);
  for (int j = 1; j < 19; ++j) b.edge(1, 1, j);
  for (std::size_t h = 2; h <= 9; ++h) b.contract(h);
  return std::move(b).take();
}

MultipathGraph meshed_diamond() {
  Builder b(7, {1, 48, 48, 24, 12, 6, 1});
  b.full(0);
  b.ring(1);  // meshed pair (1,2)
  b.contract(2);
  b.contract(3);
  b.contract(4);
  b.full(5);
  return std::move(b).take();
}

MultipathGraph fig6_left() {
  Builder b(8, {1, 2, 5, 3, 1});
  b.full(0);
  // a -> {c,d}; b -> {e,f,g}: successor spread 1.
  b.edge(1, 0, 0);
  b.edge(1, 0, 1);
  b.edge(1, 1, 2);
  b.edge(1, 1, 3);
  b.edge(1, 1, 4);
  // {c,d} -> h; {e,f} -> i; g -> j: predecessor spread 1.
  b.edge(2, 0, 0);
  b.edge(2, 1, 0);
  b.edge(2, 2, 1);
  b.edge(2, 3, 1);
  b.edge(2, 4, 2);
  b.full(3);
  return std::move(b).take();
}

MultipathGraph prepend_source(const MultipathGraph& g,
                              net::Ipv4Address source_addr) {
  MultipathGraph out;
  out.add_hop();
  const VertexId source = out.add_vertex(0, source_addr);
  std::vector<VertexId> map(g.vertex_count(), kInvalidVertex);
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    out.add_hop();
    for (const VertexId v : g.vertices_at(h)) {
      map[v] = out.add_vertex(static_cast<std::uint16_t>(h + 1),
                              g.vertex(v).addr);
    }
  }
  out.add_edge(source, map[g.vertices_at(0)[0]]);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    for (const VertexId s : g.successors(v)) {
      out.add_edge(map[v], map[s]);
    }
  }
  out.validate();
  return out;
}

MultipathGraph fig6_right() {
  Builder b(9, {1, 3, 3, 4, 4, 1});
  b.full(0);
  b.ring(1);  // meshed
  // 3 -> 4 partition: successor counts 2,1,1; in-degrees 1 (unmeshed).
  b.edge(2, 0, 0);
  b.edge(2, 0, 1);
  b.edge(2, 1, 2);
  b.edge(2, 2, 3);
  b.ring(3);  // meshed
  b.full(4);
  return std::move(b).take();
}

}  // namespace mmlpt::topo
