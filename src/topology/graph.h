// Layered multipath DAG: the ground-truth and discovered representation of
// a load-balanced route. Hop 0 holds the trace source (or a diamond's
// divergence point); edges connect adjacent hops only.
#ifndef MMLPT_TOPOLOGY_GRAPH_H
#define MMLPT_TOPOLOGY_GRAPH_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/ip_address.h"

namespace mmlpt::topo {

using VertexId = std::uint32_t;
inline constexpr VertexId kInvalidVertex = UINT32_MAX;

struct Vertex {
  net::Ipv4Address addr;  ///< unspecified (0.0.0.0) marks a non-responding "star"
  std::uint16_t hop = 0;
};

/// A layered multipath graph. Vertices live at hops 0..hop_count()-1 and
/// every edge joins hop i to hop i+1.
class MultipathGraph {
 public:
  MultipathGraph() = default;

  /// Append an empty hop; returns its index.
  std::uint16_t add_hop();

  /// Add a vertex at `hop` (which must exist). Addresses must be unique
  /// within the graph except for the unspecified (star) address.
  VertexId add_vertex(std::uint16_t hop, net::Ipv4Address addr);

  /// Add an edge from `from` (hop i) to `to` (hop i+1). Duplicate edges are
  /// ignored.
  void add_edge(VertexId from, VertexId to);

  [[nodiscard]] std::uint16_t hop_count() const noexcept {
    return static_cast<std::uint16_t>(hops_.size());
  }
  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return vertices_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] const Vertex& vertex(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> vertices_at(std::uint16_t hop) const;
  [[nodiscard]] std::span<const VertexId> successors(VertexId v) const;
  [[nodiscard]] std::span<const VertexId> predecessors(VertexId v) const;
  [[nodiscard]] std::size_t out_degree(VertexId v) const {
    return successors(v).size();
  }
  [[nodiscard]] std::size_t in_degree(VertexId v) const {
    return predecessors(v).size();
  }

  /// Find a vertex by address; kInvalidVertex if absent. Stars cannot be
  /// looked up by address.
  [[nodiscard]] VertexId find(net::Ipv4Address addr) const noexcept;
  /// Find a vertex by address at one hop.
  [[nodiscard]] VertexId find_at(std::uint16_t hop,
                                 net::Ipv4Address addr) const noexcept;
  [[nodiscard]] bool has_edge(VertexId from, VertexId to) const noexcept;

  /// Probability that a probe with a uniformly random flow identifier
  /// reaches each vertex, assuming every load balancer dispatches uniformly
  /// across its successors (the MDA model assumption). Requires hop 0 to
  /// hold exactly one vertex (probability 1).
  [[nodiscard]] std::vector<double> reach_probabilities() const;

  /// Structural validation: every non-final vertex has a successor, every
  /// non-initial vertex a predecessor, all edges adjacent-hop. Throws
  /// TopologyError with a diagnostic if violated.
  void validate() const;

  /// Total number of (vertices, edges) — convenience for discovery ratios.
  [[nodiscard]] std::pair<std::size_t, std::size_t> size_pair() const noexcept {
    return {vertex_count(), edge_count()};
  }

  /// Human-readable multi-line rendering (one line per hop).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Vertex> vertices_;
  std::vector<std::vector<VertexId>> hops_;
  std::vector<std::vector<VertexId>> succ_;
  std::vector<std::vector<VertexId>> pred_;
  std::size_t edge_count_ = 0;
};

/// True if the two graphs contain the same set of addresses per hop and the
/// same address-level edges (vertex ids may differ).
[[nodiscard]] bool same_topology(const MultipathGraph& a,
                                 const MultipathGraph& b);

/// Count how many of `found`'s vertices/edges appear in `truth` (by address).
struct DiscoveryCount {
  std::size_t vertices = 0;
  std::size_t edges = 0;
};
[[nodiscard]] DiscoveryCount count_discovered(const MultipathGraph& truth,
                                              const MultipathGraph& found);

/// Deterministically embed every IPv4 address of `g` into the IPv6
/// documentation prefix (2001:db8:4::a.b.c.d), preserving structure and
/// stars — the one-line way to run any v4 reference topology as a v6
/// ground truth. Graphs that are already v6 pass through unchanged.
[[nodiscard]] MultipathGraph map_to_ipv6(const MultipathGraph& g);

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_GRAPH_H
