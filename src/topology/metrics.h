// Diamond extraction and the paper's diamond metrics (Sec. 2.2 and Sec. 5):
// maximum width, maximum length, maximum width asymmetry, ratio of meshed
// hops, uniformity, and the analytic meshing-miss probability of Eq. (1).
#ifndef MMLPT_TOPOLOGY_METRICS_H
#define MMLPT_TOPOLOGY_METRICS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/graph.h"

namespace mmlpt::topo {

/// A diamond inside a layered route graph: a single-vertex divergence hop,
/// a single-vertex convergence hop two or more hops later, and multi-vertex
/// hops in between.
struct Diamond {
  std::uint16_t divergence_hop = 0;
  std::uint16_t convergence_hop = 0;

  /// Number of hop pairs (== max length in our layered model).
  [[nodiscard]] int length() const noexcept {
    return convergence_hop - divergence_hop;
  }
};

/// Identity of a distinct diamond per the paper: its divergence and
/// convergence addresses (stars treated as distinct from any address).
struct DiamondKey {
  net::IpAddress divergence;
  net::IpAddress convergence;
  friend auto operator<=>(const DiamondKey&, const DiamondKey&) = default;
};

/// Scan a route graph for diamonds: maximal segments bounded by
/// single-vertex hops with at least one multi-vertex hop inside.
[[nodiscard]] std::vector<Diamond> extract_diamonds(const MultipathGraph& g);

[[nodiscard]] DiamondKey diamond_key(const MultipathGraph& g,
                                     const Diamond& d);

/// Sec. 2.2 meshing predicate for adjacent hops (i, i+1).
[[nodiscard]] bool hops_meshed(const MultipathGraph& g, std::uint16_t hop_i);

/// Sec. 5 width-asymmetry metric for adjacent hops (i, i+1).
[[nodiscard]] int hop_pair_width_asymmetry(const MultipathGraph& g,
                                           std::uint16_t hop_i);

struct DiamondMetrics {
  int max_width = 0;
  int max_length = 0;
  int max_width_asymmetry = 0;
  double meshed_hop_ratio = 0.0;
  bool meshed = false;
  /// All hops uniform: equal per-vertex reach probability at every hop.
  bool uniform = true;
  /// Largest reach-probability difference between two vertices at a common
  /// hop (Fig. 8's "max probability difference").
  double max_probability_difference = 0.0;
  /// Number of multi-vertex hops.
  int multi_vertex_hops = 0;
};

[[nodiscard]] DiamondMetrics compute_metrics(const MultipathGraph& g,
                                             const Diamond& d);

/// Convenience: metrics of a graph that is itself a single diamond
/// (hop 0 = divergence, last hop = convergence).
[[nodiscard]] DiamondMetrics compute_metrics(const MultipathGraph& g);

/// Probability that the MDA-Lite's meshing test with parameter `phi`
/// fails to detect the meshing of hop pair (i, i+1) — Eq. (1) generalized
/// to non-uniform arrival. Returns nullopt if the pair is not meshed.
/// Tracing direction follows Sec. 2.3.2: from the hop with more vertices
/// toward the one with fewer (forward when equal).
[[nodiscard]] std::optional<double> meshing_miss_probability(
    const MultipathGraph& g, std::uint16_t hop_i, int phi);

/// Worst (largest) meshing-miss probability across a diamond's meshed hop
/// pairs; nullopt if the diamond is unmeshed.
[[nodiscard]] std::optional<double> diamond_meshing_miss_probability(
    const MultipathGraph& g, const Diamond& d, int phi);

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_METRICS_H
