// Ground truth for a simulated route: the IP-level multipath graph plus the
// router-level structure (which IP interfaces belong to which router) and
// each router's observable behaviours. The Fakeroute simulator animates
// this description; alias resolution tries to recover it.
#ifndef MMLPT_TOPOLOGY_GROUND_TRUTH_H
#define MMLPT_TOPOLOGY_GROUND_TRUTH_H

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/graph.h"

namespace mmlpt::topo {

/// How a router assigns IP-ID values to the ICMP messages it emits.
enum class IpIdPolicy : std::uint8_t {
  kSharedCounter,   ///< one router-wide monotonic counter (MBT-friendly)
  kPerInterface,    ///< independent counter per interface (indirect MBT splits)
  kConstantZero,    ///< always 0 (unable for both probing styles)
  kZeroErrorCounterEcho,  ///< 0 in error replies, counter in echo replies —
                          ///< the dominant unable-indirect/accept-direct
                          ///< population of Table 2 / Sec. 5.2
  kEchoProbe,       ///< copies the probe's IP-ID (MIDAR "copy" failure class)
  kRandom,          ///< uniformly random (non-monotonic series)
};

/// TTL families observed by Network Fingerprinting (Vanaubel et al.).
struct TtlFingerprint {
  std::uint8_t initial_ttl_error = 255;  ///< ICMP TimeExceeded / Unreachable
  std::uint8_t initial_ttl_echo = 64;    ///< ICMP EchoReply

  friend bool operator==(const TtlFingerprint&,
                         const TtlFingerprint&) = default;
};

struct RouterSpec {
  std::uint32_t id = 0;
  IpIdPolicy ip_id_policy = IpIdPolicy::kSharedCounter;
  /// Baseline counter speed in IDs per second (background traffic).
  double ip_id_velocity = 500.0;
  TtlFingerprint fingerprint;
  bool responds_to_indirect = true;  ///< answers TTL-expiry probes
  bool responds_to_direct = true;    ///< answers echo probes
  /// MPLS label for this router's tunnel interfaces, if the route segment
  /// is an MPLS tunnel (labels constant per interface, shared per router).
  std::optional<std::uint32_t> mpls_label;
};

/// How an IP-level diamond changes when resolved to router level (Table 3).
enum class ResolutionClass : std::uint8_t {
  kNoChange,
  kSingleSmallerDiamond,
  kMultipleSmallerDiamonds,
  kOnePath,
};

struct GroundTruth {
  MultipathGraph graph;
  /// vertex -> index into `routers`.
  std::vector<std::uint32_t> vertex_router;
  std::vector<RouterSpec> routers;
  net::Ipv4Address source;
  net::Ipv4Address destination;

  [[nodiscard]] const RouterSpec& router_of(VertexId v) const {
    return routers[vertex_router[v]];
  }

  /// Number of interfaces per router (the paper's router "size").
  [[nodiscard]] std::vector<std::size_t> router_sizes() const;

  /// Merge vertices by router to obtain the router-level graph. The merged
  /// vertex takes the lowest interface address of the router at that hop.
  [[nodiscard]] MultipathGraph router_level_graph() const;

  /// True ground-truth alias sets restricted to one hop: lists of vertex
  /// ids at `hop` grouped by router, including singletons.
  [[nodiscard]] std::vector<std::vector<VertexId>> alias_sets_at(
      std::uint16_t hop) const;
};

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_GROUND_TRUTH_H
