// Plain-text (de)serialisation of multipath graphs, in the spirit of the
// original Fakeroute's topology input files.
//
// Format (order matters only in that hops/vertices precede edges):
//   # comment
//   hops <count>
//   vertex <hop> <dotted-quad | *>
//   edge <from-addr> <to-addr>
#ifndef MMLPT_TOPOLOGY_SERIALIZE_H
#define MMLPT_TOPOLOGY_SERIALIZE_H

#include <string>
#include <string_view>

#include "topology/graph.h"

namespace mmlpt::topo {

[[nodiscard]] std::string serialize(const MultipathGraph& g);

/// Parse the text format; throws mmlpt::ParseError / TopologyError on
/// malformed input. Star vertices ("*") are not addressable by edges.
[[nodiscard]] MultipathGraph deserialize(std::string_view text);

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_SERIALIZE_H
