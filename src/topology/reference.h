// The concrete topologies the paper uses: the Fig. 1 worked examples, the
// Sec. 2.4.1 simulation diamonds (reconstructed from their published
// shapes), the Sec. 3 "simplest possible diamond", and the two Fig. 6
// metric-illustration diamonds.
#ifndef MMLPT_TOPOLOGY_REFERENCE_H
#define MMLPT_TOPOLOGY_REFERENCE_H

#include "topology/graph.h"

namespace mmlpt::topo {

/// Deterministic address for reference topologies: 10.<block>.<hop>.<index>.
[[nodiscard]] net::Ipv4Address reference_addr(std::uint8_t block,
                                              std::uint8_t hop,
                                              std::uint8_t index);

/// Divergence point, two vertices, convergence point (Sec. 3): with
/// per-vertex failure bound 0.05 its exact MDA failure probability is
/// (1/2)^(n1-1) = 0.03125.
[[nodiscard]] MultipathGraph simplest_diamond();

/// Fig. 1: divergence, 4-vertex hop, 2-vertex hop, convergence; hop-2
/// vertices each reach exactly one hop-3 vertex (unmeshed).
[[nodiscard]] MultipathGraph fig1_unmeshed();

/// Fig. 1 meshed variant: every hop-2 vertex reaches both hop-3 vertices.
[[nodiscard]] MultipathGraph fig1_meshed();

/// Sec. 2.4.1 "max length 2" diamond: divergence, 28-vertex hop,
/// convergence (trace pl2.prakinf.tu-ilmenau.de -> 83.167.65.184).
[[nodiscard]] MultipathGraph max_length_2_diamond();

/// Sec. 2.4.1 "symmetric" diamond: three multi-vertex hops, widths
/// 5-10-5, uniform and unmeshed (ple1.cesnet.cz -> 203.195.189.3).
[[nodiscard]] MultipathGraph symmetric_diamond();

/// Sec. 2.4.1 "asymmetric" diamond: nine multi-vertex hops, max width 19,
/// width asymmetry 17, unmeshed (kulcha.mimuw.edu.pl -> 61.6.250.1).
[[nodiscard]] MultipathGraph asymmetric_diamond();

/// Sec. 2.4.1 "meshed" diamond: five multi-vertex hops, max width 48
/// (ple2.planetlab.eu -> 125.155.82.17).
[[nodiscard]] MultipathGraph meshed_diamond();

/// Fig. 6 left diamond: max length 4, max width 5, max width asymmetry 1.
[[nodiscard]] MultipathGraph fig6_left();

/// Fig. 6 right diamond: ratio of meshed hops 0.4 (2 of 5 pairs).
[[nodiscard]] MultipathGraph fig6_right();

/// A copy of `g` with a single-vertex hop prepended — the vantage point —
/// so hop numbering matches the paper's figures, where the divergence
/// point sits at TTL 1 (probed) rather than being the trace source.
[[nodiscard]] MultipathGraph prepend_source(const MultipathGraph& g,
                                            net::Ipv4Address source_addr);

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_REFERENCE_H
