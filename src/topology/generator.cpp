#include "topology/generator.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/error.h"

namespace mmlpt::topo {

namespace {

/// One wiring step between adjacent hops of a diamond under construction.
struct Step {
  enum class Kind { kExpand, kContract, kIdentity, kRing } kind;
  int to_width = 0;
  int asym_moves = 0;  ///< uneven-wiring strength (0 = even)
};

/// Install expansion edges from hop `h` (a vertices) to hop h+1 (b > a
/// vertices, in-degree 1). Even counts by default; `moves` shifts
/// successors from the last lower vertex to the first, creating width
/// asymmetry while staying unmeshed.
void wire_expand(MultipathGraph& g, std::span<const VertexId> lower,
                 std::span<const VertexId> upper, int moves) {
  const auto a = static_cast<int>(lower.size());
  const auto b = static_cast<int>(upper.size());
  MMLPT_EXPECTS(a < b);
  std::vector<int> counts(static_cast<std::size_t>(a));
  for (int i = 0; i < a; ++i) counts[i] = b / a + (i < b % a ? 1 : 0);
  if (moves > 0 && a >= 2) {
    const int give = std::min(moves, counts[a - 1] - 1);
    counts[0] += give;
    counts[a - 1] -= give;
  }
  int next = 0;
  for (int i = 0; i < a; ++i) {
    for (int j = 0; j < counts[i]; ++j) {
      g.add_edge(lower[static_cast<std::size_t>(i)],
                 upper[static_cast<std::size_t>(next++)]);
    }
  }
  MMLPT_ENSURES(next == b);
}

/// Contraction: out-degree-1 surjection i -> i*b/a (unmeshed; slight
/// natural asymmetry when a % b != 0).
void wire_contract(MultipathGraph& g, std::span<const VertexId> lower,
                   std::span<const VertexId> upper) {
  const auto a = lower.size();
  const auto b = upper.size();
  MMLPT_EXPECTS(a >= b && b >= 1);
  for (std::size_t i = 0; i < a; ++i) {
    g.add_edge(lower[i], upper[i * b / a]);
  }
}

void wire_identity(MultipathGraph& g, std::span<const VertexId> lower,
                   std::span<const VertexId> upper) {
  MMLPT_EXPECTS(lower.size() == upper.size());
  for (std::size_t i = 0; i < lower.size(); ++i) {
    g.add_edge(lower[i], upper[i]);
  }
}

/// Equal-width ring i -> {i, i+1 mod n}: meshed, uniform. `moves`
/// redirects secondary edges to skip a vertex, making in-degrees uneven
/// (meshed AND width-asymmetric).
void wire_ring(MultipathGraph& g, std::span<const VertexId> lower,
               std::span<const VertexId> upper, int moves) {
  const auto n = lower.size();
  MMLPT_EXPECTS(n == upper.size() && n >= 2);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(lower[i], upper[i]);
    std::size_t second = (i + 1) % n;
    if (moves > 0 && n >= 4 && i < static_cast<std::size_t>(moves)) {
      second = (i + 2) % n;  // skip one vertex; its in-degree drops
    }
    if (upper[second] != upper[i]) {
      g.add_edge(lower[i], upper[second]);
    } else {
      g.add_edge(lower[i], upper[(i + 1) % n]);
    }
  }
}

}  // namespace

RouteGenerator::RouteGenerator(GeneratorConfig config, std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed),
      next_addr_(net::Ipv4Address(11, 0, 0, 1).value()) {}

net::IpAddress RouteGenerator::fresh_addr() {
  const std::uint32_t n = next_addr_++;
  if (config_.family == net::Family::kIpv6) {
    // 2001:db8::<counter>: the RFC 3849 documentation prefix, allocated
    // by the same counter as the v4 pool.
    return net::IpAddress::v6(0x20010db8'00000000ULL, n);
  }
  return net::IpAddress(n);
}

RouterSpec RouteGenerator::make_router_spec(bool in_mpls_tunnel,
                                            bool multi_interface) {
  RouterSpec spec;
  spec.id = next_router_id_++;

  const double weights[] = {
      multi_interface ? config_.alias_ipid_shared : config_.ipid_shared,
      multi_interface ? config_.alias_ipid_per_interface
                      : config_.ipid_per_interface,
      multi_interface ? config_.alias_ipid_constant_zero
                      : config_.ipid_constant_zero,
      multi_interface ? config_.alias_ipid_zero_error_counter_echo
                      : config_.ipid_zero_error_counter_echo,
      multi_interface ? config_.alias_ipid_echo_probe
                      : config_.ipid_echo_probe,
      multi_interface ? config_.alias_ipid_random : config_.ipid_random};
  switch (rng_.weighted(weights)) {
    case 0: spec.ip_id_policy = IpIdPolicy::kSharedCounter; break;
    case 1: spec.ip_id_policy = IpIdPolicy::kPerInterface; break;
    case 2: spec.ip_id_policy = IpIdPolicy::kConstantZero; break;
    case 3: spec.ip_id_policy = IpIdPolicy::kZeroErrorCounterEcho; break;
    case 4: spec.ip_id_policy = IpIdPolicy::kEchoProbe; break;
    default: spec.ip_id_policy = IpIdPolicy::kRandom; break;
  }
  spec.ip_id_velocity = 100.0 * std::pow(10.0, rng_.real() * 1.3);

  const double fp_weights[] = {0.50, 0.30, 0.15, 0.05};
  switch (rng_.weighted(fp_weights)) {
    case 0: spec.fingerprint = {255, 255}; break;
    case 1: spec.fingerprint = {64, 64}; break;
    case 2: spec.fingerprint = {255, 64}; break;
    default: spec.fingerprint = {128, 128}; break;
  }
  spec.responds_to_indirect = true;
  spec.responds_to_direct = rng_.chance(config_.responds_to_direct);
  if (in_mpls_tunnel) {
    spec.mpls_label = 16 + (spec.id % 0xFFFF0);
  }
  return spec;
}

DiamondTemplate RouteGenerator::make_diamond() {
  // ---- sample intended shape ----
  const int length = static_cast<int>(rng_.weighted(config_.length_weights));
  MMLPT_ASSERT(length >= 2);

  std::vector<double> widths;
  widths.reserve(config_.width_weights.size());
  for (const auto& [w, weight] : config_.width_weights) {
    double adjusted = weight;
    if (w == 2 && length == 2) adjusted += config_.simple_width2_boost;
    if (w == 2 && length > 6) adjusted *= 0.3;  // long chains of width 2 rare
    widths.push_back(adjusted);
  }
  const int max_width =
      config_.width_weights[rng_.weighted(widths)].first;

  const bool meshed =
      length >= 3 && rng_.chance(config_.meshed_prob_given_long);
  // Asymmetry must stay mild to reproduce Fig. 8's small probability
  // differences: injected unevenness needs per-branch fan-out >= 4
  // (W >= 8 over two branches); odd widths get a natural spread of one
  // successor; meshed diamonds can take uneven ring wiring (W >= 4).
  const bool asym_shape_ok =
      meshed ? max_width >= 4
             : (max_width >= 8 || (max_width % 2 == 1 && max_width >= 3));
  const bool asym =
      length >= 3 && asym_shape_ok &&
      rng_.chance(meshed ? config_.asym_given_meshed
                         : config_.asym_given_unmeshed);

  // ---- plan the step sequence (length steps, widths 1 .. W .. 1) ----
  std::vector<Step> steps;
  int plateau = length - 2;  // steps left after 1->W and W->1
  bool split_ascent = false;
  if (asym && !meshed && plateau >= 1) {
    split_ascent = true;  // 1 -> a -> W with uneven second expansion
    plateau -= 1;
  }
  const int rings =
      meshed ? (plateau >= 2 && rng_.chance(config_.second_meshed_pair_prob)
                    ? 2
                    : 1)
             : 0;
  MMLPT_ASSERT(plateau >= rings);

  if (split_ascent) {
    const int a = 2;
    const int branch_fanout = max_width / a;
    int moves = 0;
    if (branch_fanout >= 4) {
      // Injected mild unevenness: shift d successors between branches;
      // the reach-probability difference stays ~<= 0.25 (Fig. 8).
      moves = static_cast<int>(rng_.pareto_int(
          1, static_cast<std::uint64_t>(std::max(1, branch_fanout / 2)),
          1.5));
    }
    // Odd widths additionally carry a natural spread of one successor.
    steps.push_back({Step::Kind::kExpand, a, 0});
    steps.push_back({Step::Kind::kExpand, max_width, moves});
  } else {
    steps.push_back({Step::Kind::kExpand, max_width, 0});
  }
  // Plateau: rings (meshed) then identities, shuffled.
  std::vector<Step> plateau_steps;
  for (int i = 0; i < rings; ++i) {
    const int ring_moves =
        (asym && meshed && max_width >= 4)
            ? static_cast<int>(rng_.pareto_int(
                  1, std::max<std::uint64_t>(1, max_width / 2), 1.2))
            : 0;
    plateau_steps.push_back({Step::Kind::kRing, max_width, ring_moves});
  }
  for (int i = rings; i < plateau; ++i) {
    plateau_steps.push_back({Step::Kind::kIdentity, max_width, 0});
  }
  rng_.shuffle(plateau_steps);
  steps.insert(steps.end(), plateau_steps.begin(), plateau_steps.end());
  steps.push_back({Step::Kind::kContract, 1, 0});

  // ---- build the graph ----
  DiamondTemplate tmpl;
  tmpl.is_mpls_tunnel = rng_.chance(config_.mpls_tunnel_prob);
  MultipathGraph& g = tmpl.truth.graph;

  g.add_hop();
  std::vector<VertexId> prev{g.add_vertex(0, fresh_addr())};
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const auto hop = g.add_hop();
    std::vector<VertexId> current;
    const int width = steps[s].to_width;
    current.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      current.push_back(g.add_vertex(hop, fresh_addr()));
    }
    switch (steps[s].kind) {
      case Step::Kind::kExpand:
        wire_expand(g, prev, current, steps[s].asym_moves);
        break;
      case Step::Kind::kContract:
        wire_contract(g, prev, current);
        break;
      case Step::Kind::kIdentity:
        wire_identity(g, prev, current);
        break;
      case Step::Kind::kRing:
        wire_ring(g, prev, current, steps[s].asym_moves);
        break;
    }
    prev = std::move(current);
  }
  g.validate();

  // ---- router-level ground truth ----
  const double class_weights[] = {
      config_.class_no_change, config_.class_single_smaller,
      config_.class_multiple_smaller, config_.class_one_path};
  ResolutionClass cls;
  switch (rng_.weighted(class_weights)) {
    case 0: cls = ResolutionClass::kNoChange; break;
    case 1: cls = ResolutionClass::kSingleSmallerDiamond; break;
    case 2: cls = ResolutionClass::kMultipleSmallerDiamonds; break;
    default: cls = ResolutionClass::kOnePath; break;
  }
  // Calibrated overrides reproducing Fig. 13: the width-56 IP-level peak
  // resolves away at router level while the width-48 peak persists.
  if (max_width == 56) {
    cls = length >= 4 ? ResolutionClass::kMultipleSmallerDiamonds
                      : ResolutionClass::kSingleSmallerDiamond;
  } else if (max_width == 48) {
    cls = ResolutionClass::kNoChange;
  }
  // Feasibility fallbacks.
  if (cls == ResolutionClass::kMultipleSmallerDiamonds && length < 4) {
    cls = ResolutionClass::kSingleSmallerDiamond;
  }
  if (cls == ResolutionClass::kSingleSmallerDiamond && max_width < 3) {
    cls = ResolutionClass::kNoChange;
  }
  tmpl.resolution = cls;

  auto& truth = tmpl.truth;
  truth.vertex_router.assign(g.vertex_count(), 0);
  const auto add_singleton = [&](VertexId v) {
    truth.vertex_router[v] =
        static_cast<std::uint32_t>(truth.routers.size());
    truth.routers.push_back(make_router_spec(false, false));
  };

  // Divergence and convergence points are always their own routers.
  add_singleton(g.vertices_at(0)[0]);

  std::optional<std::uint16_t> collapse_hop;
  if (cls == ResolutionClass::kMultipleSmallerDiamonds) {
    // Collapse a middle interior hop into one router, splitting the
    // diamond in two at router level.
    collapse_hop = static_cast<std::uint16_t>(1 + (g.hop_count() - 2) / 2);
  }

  for (std::uint16_t h = 1; h + 1 < g.hop_count(); ++h) {
    const auto hop_vertices = g.vertices_at(h);
    const auto w = hop_vertices.size();
    std::size_t group_size = 1;
    switch (cls) {
      case ResolutionClass::kNoChange:
        group_size = 1;
        break;
      case ResolutionClass::kOnePath:
        group_size = w;
        break;
      case ResolutionClass::kSingleSmallerDiamond:
        if (w >= 3) {
          // Mixed router sizes (Fig. 12: 68% size 2, most of the rest
          // 3..10), capped so the hop keeps at least two routers.
          const double size_weights[] = {0.60, 0.25, 0.15};
          group_size = 2 + rng_.weighted(size_weights);
          group_size = std::min(group_size, w - 1);
        } else {
          group_size = 1;
        }
        if (max_width == 56 && w >= 8) group_size = w / 4;
        break;
      case ResolutionClass::kMultipleSmallerDiamonds:
        if (collapse_hop && h == *collapse_hop) {
          group_size = w;
        } else {
          group_size = (w >= 4 && rng_.chance(0.5)) ? 2 : 1;
        }
        break;
    }
    group_size = std::max<std::size_t>(1, std::min(group_size, w));
    for (std::size_t start = 0; start < w; start += group_size) {
      const auto router_index =
          static_cast<std::uint32_t>(truth.routers.size());
      const bool multi_interface = std::min(group_size, w - start) >= 2;
      truth.routers.push_back(
          make_router_spec(tmpl.is_mpls_tunnel, multi_interface));
      for (std::size_t i = start; i < std::min(start + group_size, w); ++i) {
        truth.vertex_router[hop_vertices[i]] = router_index;
      }
    }
  }
  add_singleton(g.vertices_at(g.hop_count() - 1)[0]);

  truth.source = g.vertex(g.vertices_at(0)[0]).addr;
  truth.destination =
      g.vertex(g.vertices_at(g.hop_count() - 1)[0]).addr;

  tmpl.metrics = compute_metrics(g);
  return tmpl;
}

GroundTruth RouteGenerator::make_route(
    const std::vector<const DiamondTemplate*>& diamonds) {
  for (std::size_t i = 0; i < diamonds.size(); ++i) {
    for (std::size_t j = i + 1; j < diamonds.size(); ++j) {
      MMLPT_EXPECTS(diamonds[i] != diamonds[j]);
    }
  }

  GroundTruth route;
  MultipathGraph& g = route.graph;
  const auto add_single_hop = [&](net::Ipv4Address addr) -> VertexId {
    const auto hop = g.add_hop();
    const VertexId v = g.add_vertex(hop, addr);
    route.vertex_router.push_back(
        static_cast<std::uint32_t>(route.routers.size()));
    route.routers.push_back(make_router_spec(false, false));
    return v;
  };

  VertexId tail;
  if (config_.shared_prefix_hops > 0) {
    // Fleet-shared leading chain: the same vantage point and first
    // routers on every route (see GeneratorConfig::shared_prefix_hops).
    if (shared_prefix_.empty()) {
      shared_prefix_.reserve(
          static_cast<std::size_t>(config_.shared_prefix_hops) + 1);
      for (int i = 0; i <= config_.shared_prefix_hops; ++i) {
        shared_prefix_.push_back(
            {fresh_addr(), make_router_spec(false, false)});
      }
    }
    const auto add_shared = [&](const SharedHop& shared) -> VertexId {
      const auto hop = g.add_hop();
      const VertexId v = g.add_vertex(hop, shared.addr);
      route.vertex_router.push_back(
          static_cast<std::uint32_t>(route.routers.size()));
      route.routers.push_back(shared.spec);
      return v;
    };
    tail = add_shared(shared_prefix_[0]);
    route.source = g.vertex(tail).addr;
    for (std::size_t i = 1; i < shared_prefix_.size(); ++i) {
      const VertexId v = add_shared(shared_prefix_[i]);
      g.add_edge(tail, v);
      tail = v;
    }
  } else {
    // Hop 0: the vantage point itself.
    tail = add_single_hop(fresh_addr());
    route.source = g.vertex(tail).addr;

    const int prefix = static_cast<int>(
        rng_.uniform(static_cast<std::uint64_t>(config_.min_prefix_hops),
                     static_cast<std::uint64_t>(config_.max_prefix_hops)));
    for (int i = 0; i < prefix; ++i) {
      const VertexId v = add_single_hop(fresh_addr());
      g.add_edge(tail, v);
      tail = v;
    }
  }

  for (std::size_t d = 0; d < diamonds.size(); ++d) {
    const auto& tmpl = diamonds[d]->truth;
    // Embed the template graph hop by hop, remapping routers.
    std::vector<std::uint32_t> router_map(tmpl.routers.size(), UINT32_MAX);
    std::vector<VertexId> vertex_map(tmpl.graph.vertex_count(),
                                     kInvalidVertex);
    for (std::uint16_t th = 0; th < tmpl.graph.hop_count(); ++th) {
      const auto hop = g.add_hop();
      for (VertexId tv : tmpl.graph.vertices_at(th)) {
        const VertexId nv = g.add_vertex(hop, tmpl.graph.vertex(tv).addr);
        vertex_map[tv] = nv;
        const std::uint32_t tr = tmpl.vertex_router[tv];
        if (router_map[tr] == UINT32_MAX) {
          router_map[tr] = static_cast<std::uint32_t>(route.routers.size());
          route.routers.push_back(tmpl.routers[tr]);
        }
        MMLPT_ASSERT(route.vertex_router.size() == nv);
        route.vertex_router.push_back(router_map[tr]);
      }
    }
    for (VertexId tv = 0; tv < tmpl.graph.vertex_count(); ++tv) {
      for (VertexId ts : tmpl.graph.successors(tv)) {
        g.add_edge(vertex_map[tv], vertex_map[ts]);
      }
    }
    // Link the running tail to the divergence point.
    g.add_edge(tail, vertex_map[tmpl.graph.vertices_at(0)[0]]);
    tail = vertex_map[tmpl.graph.vertices_at(tmpl.graph.hop_count() - 1)[0]];

    if (d + 1 < diamonds.size()) {
      // Optional single hops between diamonds.
      const int mid = static_cast<int>(rng_.uniform(0, 2));
      for (int i = 0; i < mid; ++i) {
        const VertexId v = add_single_hop(fresh_addr());
        g.add_edge(tail, v);
        tail = v;
      }
    }
  }

  const int suffix = static_cast<int>(
      rng_.uniform(static_cast<std::uint64_t>(config_.min_suffix_hops),
                   static_cast<std::uint64_t>(config_.max_suffix_hops)));
  for (int i = 0; i < suffix; ++i) {
    const VertexId v = add_single_hop(fresh_addr());
    g.add_edge(tail, v);
    tail = v;
  }
  const VertexId dest = add_single_hop(fresh_addr());
  g.add_edge(tail, dest);
  route.destination = g.vertex(dest).addr;

  g.validate();
  MMLPT_ENSURES(route.vertex_router.size() == g.vertex_count());
  return route;
}

GroundTruth RouteGenerator::make_route() {
  const DiamondTemplate tmpl = make_diamond();
  return make_route({&tmpl});
}

SurveyWorld::SurveyWorld(GeneratorConfig config, std::size_t distinct_diamonds,
                         std::uint64_t seed)
    : generator_(config, seed) {
  MMLPT_EXPECTS(distinct_diamonds >= 1);
  templates_.reserve(distinct_diamonds);
  for (std::size_t i = 0; i < distinct_diamonds; ++i) {
    templates_.push_back(generator_.make_diamond());
  }
  encounter_weights_.reserve(distinct_diamonds);
  for (std::size_t i = 0; i < distinct_diamonds; ++i) {
    double weight = 1.0 / std::pow(static_cast<double>(i + 1),
                                   generator_.config_.encounter_zipf_s);
    // The 48/56-wide structures are shared infrastructure reached via
    // many ingress points — they dominate the measured distributions.
    if (templates_[i].metrics.max_width >= 48 &&
        !templates_[i].metrics.meshed) {
      weight *= generator_.config_.wide_encounter_boost;
    }
    // Meshed diamonds are re-encountered less often than unmeshed ones:
    // the paper's meshed fraction is 31% of distinct diamonds but only
    // 15% of measured ones.
    if (templates_[i].metrics.meshed) {
      weight *= 0.55;
    }
    encounter_weights_.push_back(weight);
  }
}

GroundTruth SurveyWorld::next_route() {
  auto& rng = generator_.rng();
  last_templates_.clear();
  const std::size_t first = rng.weighted(encounter_weights_);
  last_templates_.push_back(first);
  std::vector<const DiamondTemplate*> picks{&templates_[first]};
  if (templates_.size() >= 2 &&
      rng.chance(generator_.config_.second_diamond_prob)) {
    std::size_t second = rng.weighted(encounter_weights_);
    for (int attempts = 0; second == first && attempts < 8; ++attempts) {
      second = rng.weighted(encounter_weights_);
    }
    if (second != first) {
      last_templates_.push_back(second);
      picks.push_back(&templates_[second]);
    }
  }
  return generator_.make_route(picks);
}

}  // namespace mmlpt::topo
