#include "topology/serialize.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace mmlpt::topo {

std::string serialize(const MultipathGraph& g) {
  std::ostringstream out;
  out << "hops " << g.hop_count() << '\n';
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (VertexId v : g.vertices_at(h)) {
      const auto& addr = g.vertex(v).addr;
      out << "vertex " << h << ' '
          << (addr.is_unspecified() ? std::string("*") : addr.to_string())
          << '\n';
    }
  }
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    for (VertexId v : g.vertices_at(h)) {
      for (VertexId s : g.successors(v)) {
        out << "edge " << g.vertex(v).addr.to_string() << ' '
            << g.vertex(s).addr.to_string() << '\n';
      }
    }
  }
  return out.str();
}

MultipathGraph deserialize(std::string_view text) {
  MultipathGraph g;
  bool have_hops = false;
  std::optional<net::Family> family;  // of the first literal; must agree
  std::size_t line_number = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++line_number;
    const auto line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto fail = [&](const std::string& why) -> void {
      throw ParseError("topology line " + std::to_string(line_number) + ": " +
                       why);
    };

    const auto tokens = split(line, ' ');
    if (tokens[0] == "hops") {
      if (tokens.size() != 2) fail("expected 'hops <count>'");
      const int count = std::stoi(tokens[1]);
      if (count <= 0 || count > 256) fail("hop count out of range");
      for (int i = 0; i < count; ++i) g.add_hop();
      have_hops = true;
    } else if (tokens[0] == "vertex") {
      if (!have_hops) fail("'vertex' before 'hops'");
      if (tokens.size() != 3) fail("expected 'vertex <hop> <addr>'");
      const int hop = std::stoi(tokens[1]);
      if (hop < 0 || hop >= g.hop_count()) fail("hop out of range");
      if (tokens[2] == "*") {
        (void)g.add_vertex(static_cast<std::uint16_t>(hop), {});
      } else {
        const auto addr = net::IpAddress::parse_or_throw(tokens[2]);
        if (family && *family != addr.family()) {
          fail("mixed address families in one topology");
        }
        family = addr.family();
        (void)g.add_vertex(static_cast<std::uint16_t>(hop), addr);
      }
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 3) fail("expected 'edge <from> <to>'");
      const auto from = g.find(net::Ipv4Address::parse_or_throw(tokens[1]));
      const auto to = g.find(net::Ipv4Address::parse_or_throw(tokens[2]));
      if (from == kInvalidVertex || to == kInvalidVertex) {
        fail("edge references unknown vertex");
      }
      g.add_edge(from, to);
    } else {
      fail("unknown directive '" + tokens[0] + "'");
    }
  }
  g.validate();
  return g;
}

}  // namespace mmlpt::topo
