// Synthetic Internet generator, calibrated to the paper's Sec. 5.1 survey
// marginals. Produces distinct diamond templates (with router-level ground
// truth and per-router behaviours) and assembles them into full
// source-to-destination routes, re-encountering templates with a
// heavy-tailed multiplicity so that "measured" vs "distinct" accounting
// behaves like the paper's.
#ifndef MMLPT_TOPOLOGY_GENERATOR_H
#define MMLPT_TOPOLOGY_GENERATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "topology/ground_truth.h"
#include "topology/metrics.h"

namespace mmlpt::topo {

struct GeneratorConfig {
  // ---- diamond shape (distinct-diamond marginals, Sec. 5.1) ----
  /// Weight of max length L at index L (indices 0,1 unused).
  std::vector<double> length_weights = {
      0, 0, 0.45, 0.17, 0.11, 0.07, 0.05, 0.035, 0.025, 0.018, 0.013,
      0.009, 0.007, 0.005, 0.004, 0.003, 0.0025, 0.002, 0.0015, 0.0012, 0.001};
  /// (width, weight) support for max width; all widths factor into small
  /// primes so uniform diamonds can be built at any length. Peaks at 48
  /// and 56 reproduce Fig. 10's distinctive modes.
  std::vector<std::pair<int, double>> width_weights = {
      {2, 0.33}, {3, 0.15}, {4, 0.12}, {5, 0.06},  {6, 0.07},  {8, 0.05},
      {9, 0.02}, {12, 0.04}, {16, 0.025}, {18, 0.01}, {24, 0.02}, {27, 0.005},
      {32, 0.012}, {36, 0.008}, {48, 0.015}, {56, 0.012}, {64, 0.004},
      {72, 0.003}, {81, 0.002}, {96, 0.006}};
  /// Extra weight on width 2 for length-2 diamonds (joint calibration:
  /// the paper sees 27.4% of distinct diamonds at 2x2).
  double simple_width2_boost = 0.30;
  /// P(meshed | max length >= 3): yields ~31% meshed distinct diamonds
  /// overall, matching 19138/60921 (meshed templates are encountered
  /// less often, so the raw prior sits a little above the target).
  double meshed_prob_given_long = 0.62;
  /// Of meshed diamonds, P(two meshed hop pairs rather than one).
  double second_meshed_pair_prob = 0.20;
  /// P(width asymmetry | meshed) and P(width asymmetry | unmeshed),
  /// applied to shape-eligible diamonds (length >= 3 and a width whose
  /// wiring can be made mildly uneven). Calibrated so ~11% of diamonds
  /// end up asymmetric overall and asymmetric-and-unmeshed stays rare
  /// (paper: 3.6% of distinct diamonds).
  double asym_given_meshed = 0.50;
  double asym_given_unmeshed = 0.18;

  // ---- route shape ----
  int min_prefix_hops = 1;
  int max_prefix_hops = 4;
  /// When > 0, every route starts with the SAME vantage point followed by
  /// this many shared single-interface routers (addresses and router
  /// specs reused verbatim), replacing the random per-route prefix. This
  /// models a fleet probing from one site whose first hops are common —
  /// the regime where Doubletree stop sets pay off, and the topology the
  /// warm-cache savings gates measure against. 0 keeps the fully random
  /// prefix.
  int shared_prefix_hops = 0;
  int min_suffix_hops = 1;
  int max_suffix_hops = 2;
  /// P(a route contains a second diamond): the survey saw 220,193 measured
  /// diamonds over 155,030 multipath traces (~1.42 per trace).
  double second_diamond_prob = 0.50;
  /// Zipf exponent for template re-encounter multiplicity.
  double encounter_zipf_s = 0.9;
  /// Encounter-weight boost for very wide (>= 48) diamonds: the paper
  /// finds the 48/56-wide structures "frequently encountered via a
  /// variety of ingress points", making them modes of the *measured*
  /// distributions.
  double wide_encounter_boost = 6.0;

  // ---- router-level ground truth ----
  // Priors sit above the paper's Table 3 *findings* (0.579 / 0.355 /
  // 0.006 / 0.058) because the tool only observes merges whose routers
  // cooperate with the MBT; with the alias_* IP-ID mix below, detection
  // lands the measured fractions near the paper's.
  double class_no_change = 0.40;
  double class_single_smaller = 0.50;
  double class_multiple_smaller = 0.005;
  double class_one_path = 0.08;

  // ---- per-router observable behaviours ----
  // Singleton (non-aliased) routers: the general Internet mix.
  double ipid_shared = 0.40;
  double ipid_per_interface = 0.14;
  double ipid_constant_zero = 0.10;
  double ipid_zero_error_counter_echo = 0.24;
  double ipid_echo_probe = 0.07;
  double ipid_random = 0.05;
  // Multi-interface (aliased) routers: parallel load-balanced interfaces
  // are typically the same core hardware, heavily shared-counter — this
  // is what lets the survey's alias resolution succeed at Table 3 rates.
  double alias_ipid_shared = 0.80;
  double alias_ipid_per_interface = 0.12;
  double alias_ipid_constant_zero = 0.02;
  double alias_ipid_zero_error_counter_echo = 0.04;
  double alias_ipid_echo_probe = 0.01;
  double alias_ipid_random = 0.01;
  double responds_to_direct = 0.60;
  double mpls_tunnel_prob = 0.15;  ///< per diamond

  // ---- address family ----
  /// Family of every generated interface address. kIpv6 allocates from a
  /// documentation prefix (2001:db8::/32) with the same deterministic
  /// counter, so v6 worlds are as reproducible as v4 ones — and the RNG
  /// draw sequence is identical across families.
  net::Family family = net::Family::kIpv4;

  /// Paper-default survey defaults; tweak for ablations.
  GeneratorConfig() = default;
};

/// A distinct diamond with its ground truth and intended properties.
struct DiamondTemplate {
  GroundTruth truth;  ///< graph spans divergence (hop 0) .. convergence
  DiamondMetrics metrics;
  ResolutionClass resolution = ResolutionClass::kNoChange;
  bool is_mpls_tunnel = false;
};

/// Generates diamond templates and whole routes.
///
/// Shared-state audit (fleet orchestrator): this class owns ONE `Rng`
/// that every make_diamond()/make_route() call (and, via the rng()
/// accessor, SurveyWorld's encounter sampling) draws from, plus the
/// `next_addr_`/`next_router_id_` allocation counters. It is therefore
/// strictly single-threaded: concurrent calls would interleave draws
/// non-deterministically and race the counters. The fleet engine keeps
/// route generation as a serial phase on the scheduler thread and hands
/// workers immutable `GroundTruth` snapshots; per-worker randomness
/// comes from `Rng::fork(stream_id)` instead.
class RouteGenerator {
 public:
  RouteGenerator(GeneratorConfig config, std::uint64_t seed);

  /// One distinct diamond with fresh addresses.
  [[nodiscard]] DiamondTemplate make_diamond();

  /// A full route embedding the given templates in encounter order.
  /// Prefix/suffix hops and source/destination get fresh addresses and
  /// fresh single-interface routers.
  [[nodiscard]] GroundTruth make_route(
      const std::vector<const DiamondTemplate*>& diamonds);

  /// Convenience: route around one fresh diamond.
  [[nodiscard]] GroundTruth make_route();

  /// The generator's own stream — shared with SurveyWorld's encounter
  /// sampling (draws interleave with route construction; see the class
  /// comment). Never hand this to another thread: fork per-worker
  /// streams with `rng().fork(stream_id)` instead.
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  friend class SurveyWorld;

  [[nodiscard]] net::IpAddress fresh_addr();
  [[nodiscard]] RouterSpec make_router_spec(bool in_mpls_tunnel,
                                            bool multi_interface);

  GeneratorConfig config_;
  Rng rng_;
  std::uint32_t next_addr_;
  std::uint32_t next_router_id_ = 0;
  /// Lazily built shared leading chain ([0] is the vantage point) when
  /// `shared_prefix_hops > 0`; reused verbatim by every make_route().
  struct SharedHop {
    net::IpAddress addr;
    RouterSpec spec;
  };
  std::vector<SharedHop> shared_prefix_;
};

/// A pool of distinct diamonds plus a stream of routes over them — the
/// synthetic counterpart of the paper's two-week survey. Single-threaded
/// like RouteGenerator (next_route() draws from the generator's RNG);
/// the routes it returns are self-contained and safe to trace from any
/// thread once generated.
class SurveyWorld {
 public:
  /// Create a world with `distinct_diamonds` templates.
  SurveyWorld(GeneratorConfig config, std::size_t distinct_diamonds,
              std::uint64_t seed);

  [[nodiscard]] std::size_t distinct_count() const noexcept {
    return templates_.size();
  }
  [[nodiscard]] const DiamondTemplate& diamond(std::size_t i) const {
    return templates_[i];
  }

  /// Next route: samples 1-2 templates Zipf-style and embeds them.
  [[nodiscard]] GroundTruth next_route();

  /// Indices of the templates embedded in the most recent route.
  [[nodiscard]] const std::vector<std::size_t>& last_route_templates() const {
    return last_templates_;
  }

 private:
  RouteGenerator generator_;
  std::vector<DiamondTemplate> templates_;
  std::vector<double> encounter_weights_;
  std::vector<std::size_t> last_templates_;
};

}  // namespace mmlpt::topo

#endif  // MMLPT_TOPOLOGY_GENERATOR_H
