#include "topology/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace mmlpt::topo {

std::vector<Diamond> extract_diamonds(const MultipathGraph& g) {
  std::vector<Diamond> diamonds;
  std::optional<std::uint16_t> open_divergence;
  for (std::uint16_t h = 0; h < g.hop_count(); ++h) {
    const bool single = g.vertices_at(h).size() == 1;
    if (single) {
      if (open_divergence && h > *open_divergence + 1) {
        diamonds.push_back({*open_divergence, h});
      }
      open_divergence = h;
    }
  }
  return diamonds;
}

DiamondKey diamond_key(const MultipathGraph& g, const Diamond& d) {
  const VertexId dv = g.vertices_at(d.divergence_hop)[0];
  const VertexId cv = g.vertices_at(d.convergence_hop)[0];
  return {g.vertex(dv).addr, g.vertex(cv).addr};
}

bool hops_meshed(const MultipathGraph& g, std::uint16_t hop_i) {
  MMLPT_EXPECTS(hop_i + 1 < g.hop_count());
  const auto lower = g.vertices_at(hop_i);
  const auto upper = g.vertices_at(hop_i + 1);
  const auto max_out = [&] {
    std::size_t m = 0;
    for (VertexId v : lower) m = std::max(m, g.out_degree(v));
    return m;
  };
  const auto max_in = [&] {
    std::size_t m = 0;
    for (VertexId v : upper) m = std::max(m, g.in_degree(v));
    return m;
  };
  if (lower.size() == upper.size()) {
    return max_out() >= 2;  // equivalently max_in() >= 2
  }
  if (lower.size() < upper.size()) {
    return max_in() >= 2;
  }
  return max_out() >= 2;
}

int hop_pair_width_asymmetry(const MultipathGraph& g, std::uint16_t hop_i) {
  MMLPT_EXPECTS(hop_i + 1 < g.hop_count());
  const auto lower = g.vertices_at(hop_i);
  const auto upper = g.vertices_at(hop_i + 1);
  const auto successor_spread = [&] {
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (VertexId v : lower) {
      lo = std::min(lo, g.out_degree(v));
      hi = std::max(hi, g.out_degree(v));
    }
    return static_cast<int>(hi - lo);
  };
  const auto predecessor_spread = [&] {
    std::size_t lo = SIZE_MAX;
    std::size_t hi = 0;
    for (VertexId v : upper) {
      lo = std::min(lo, g.in_degree(v));
      hi = std::max(hi, g.in_degree(v));
    }
    return static_cast<int>(hi - lo);
  };
  if (lower.size() < upper.size()) return successor_spread();
  if (lower.size() > upper.size()) return predecessor_spread();
  return std::max(successor_spread(), predecessor_spread());
}

DiamondMetrics compute_metrics(const MultipathGraph& g, const Diamond& d) {
  MMLPT_EXPECTS(d.divergence_hop < d.convergence_hop);
  MMLPT_EXPECTS(d.convergence_hop < g.hop_count());
  DiamondMetrics m;
  m.max_length = d.length();

  const auto probabilities = g.reach_probabilities();

  int meshed_pairs = 0;
  for (std::uint16_t h = d.divergence_hop; h < d.convergence_hop; ++h) {
    if (hops_meshed(g, h)) {
      ++meshed_pairs;
      m.meshed = true;
    }
    m.max_width_asymmetry =
        std::max(m.max_width_asymmetry, hop_pair_width_asymmetry(g, h));
  }
  m.meshed_hop_ratio =
      static_cast<double>(meshed_pairs) / static_cast<double>(d.length());

  for (std::uint16_t h = d.divergence_hop; h <= d.convergence_hop; ++h) {
    const auto hop_vertices = g.vertices_at(h);
    m.max_width = std::max(m.max_width, static_cast<int>(hop_vertices.size()));
    if (hop_vertices.size() >= 2) ++m.multi_vertex_hops;

    double lo = 1.0;
    double hi = 0.0;
    for (VertexId v : hop_vertices) {
      lo = std::min(lo, probabilities[v]);
      hi = std::max(hi, probabilities[v]);
    }
    const double diff = hi - lo;
    if (diff > 1e-12) m.uniform = false;
    m.max_probability_difference = std::max(m.max_probability_difference, diff);
  }
  return m;
}

DiamondMetrics compute_metrics(const MultipathGraph& g) {
  MMLPT_EXPECTS(g.hop_count() >= 3);
  return compute_metrics(
      g, Diamond{0, static_cast<std::uint16_t>(g.hop_count() - 1)});
}

std::optional<double> meshing_miss_probability(const MultipathGraph& g,
                                               std::uint16_t hop_i, int phi) {
  MMLPT_EXPECTS(phi >= 2);
  if (!hops_meshed(g, hop_i)) return std::nullopt;
  const auto lower = g.vertices_at(hop_i);
  const auto upper = g.vertices_at(hop_i + 1);
  const bool forward = lower.size() >= upper.size();

  double miss = 1.0;
  if (forward) {
    // P(phi probes through v all take one successor) = 1/outdeg^(phi-1)
    // under the uniform-dispatch assumption — exactly Eq. (1).
    for (VertexId v : lower) {
      const auto k = static_cast<double>(g.out_degree(v));
      if (k >= 2.0) miss *= 1.0 / std::pow(k, phi - 1);
    }
  } else {
    // Backward: probes known to reach v at hop i+1 arrived via predecessor
    // u with probability proportional to p(u)/outdeg(u).
    const auto probabilities = g.reach_probabilities();
    for (VertexId v : upper) {
      const auto preds = g.predecessors(v);
      if (preds.size() < 2) continue;
      double total = 0.0;
      for (VertexId u : preds) {
        total += probabilities[u] / static_cast<double>(g.out_degree(u));
      }
      if (total <= 0.0) continue;
      double same_entry = 0.0;
      for (VertexId u : preds) {
        const double w =
            probabilities[u] / static_cast<double>(g.out_degree(u)) / total;
        same_entry += std::pow(w, phi);
      }
      miss *= same_entry;
    }
  }
  return miss;
}

std::optional<double> diamond_meshing_miss_probability(const MultipathGraph& g,
                                                       const Diamond& d,
                                                       int phi) {
  std::optional<double> worst;
  for (std::uint16_t h = d.divergence_hop; h < d.convergence_hop; ++h) {
    const auto miss = meshing_miss_probability(g, h, phi);
    if (miss && (!worst || *miss > *worst)) worst = miss;
  }
  return worst;
}

}  // namespace mmlpt::topo
