#include "topology/ground_truth.h"

#include <algorithm>
#include <map>

#include "common/assert.h"

namespace mmlpt::topo {

std::vector<std::size_t> GroundTruth::router_sizes() const {
  std::vector<std::size_t> sizes(routers.size(), 0);
  for (std::uint32_t r : vertex_router) {
    MMLPT_EXPECTS(r < routers.size());
    ++sizes[r];
  }
  return sizes;
}

MultipathGraph GroundTruth::router_level_graph() const {
  MMLPT_EXPECTS(vertex_router.size() == graph.vertex_count());
  MultipathGraph merged;
  // (hop, router) -> merged vertex id; representative address = lowest
  // interface address of that router at that hop.
  std::map<std::pair<std::uint16_t, std::uint32_t>, VertexId> merged_id;

  for (std::uint16_t h = 0; h < graph.hop_count(); ++h) {
    merged.add_hop();
    std::map<std::uint32_t, net::Ipv4Address> representative;
    for (VertexId v : graph.vertices_at(h)) {
      const std::uint32_t r = vertex_router[v];
      const auto addr = graph.vertex(v).addr;
      const auto it = representative.find(r);
      if (it == representative.end() || addr < it->second) {
        representative[r] = addr;
      }
    }
    for (const auto& [r, addr] : representative) {
      merged_id[{h, r}] = merged.add_vertex(h, addr);
    }
  }

  for (std::uint16_t h = 0; h + 1 < graph.hop_count(); ++h) {
    for (VertexId v : graph.vertices_at(h)) {
      for (VertexId s : graph.successors(v)) {
        merged.add_edge(merged_id.at({h, vertex_router[v]}),
                        merged_id.at({static_cast<std::uint16_t>(h + 1),
                                      vertex_router[s]}));
      }
    }
  }
  return merged;
}

std::vector<std::vector<VertexId>> GroundTruth::alias_sets_at(
    std::uint16_t hop) const {
  std::map<std::uint32_t, std::vector<VertexId>> by_router;
  for (VertexId v : graph.vertices_at(hop)) {
    by_router[vertex_router[v]].push_back(v);
  }
  std::vector<std::vector<VertexId>> sets;
  sets.reserve(by_router.size());
  for (auto& [r, members] : by_router) sets.push_back(std::move(members));
  return sets;
}

}  // namespace mmlpt::topo
